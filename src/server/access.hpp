// The database's shared/exclusive access layer (readers-writer
// discipline): read-only scripts execute concurrently under *shared*
// access; mutating scripts, catalog commits of deferred `into` results,
// and checkpoints take brief *exclusive* access. This is what turns the
// multi-worker net::Server into actual read parallelism — before this
// layer every script, including pure path queries, serialized behind one
// mutex.
//
// The guard also meters itself: per-mode acquisition counts, time spent
// blocked waiting for the lock, time spent holding it, and the peak
// number of concurrent shared holders. Those counters surface in
// Database metrics, the net `stats` verb, and the shell's `\accessstats`.
//
// Lock order (see DESIGN.md §5g): the access guard is always the
// *outermost* lock; `stats_mutex_` and `wal_mutex_` are only ever taken
// while it is held, and never the other way around.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

namespace gems::server {

/// How a script (or maintenance task) may touch the shared state.
enum class AccessMode : std::uint8_t {
  kShared,     // read-only: any number of concurrent holders
  kExclusive,  // mutating: sole holder, waits out all readers
};

std::string_view access_mode_name(AccessMode mode) noexcept;

/// Point-in-time view of the guard's counters. All durations are
/// microseconds, aggregated since database open.
struct AccessMetricsSnapshot {
  std::uint64_t shared_acquired = 0;
  std::uint64_t exclusive_acquired = 0;
  std::uint64_t shared_wait_us = 0;     // total time blocked acquiring
  std::uint64_t exclusive_wait_us = 0;
  std::uint64_t shared_held_us = 0;     // total time held (sums overlaps)
  std::uint64_t exclusive_held_us = 0;
  std::uint64_t peak_concurrent_shared = 0;

  /// Human-readable `\accessstats` rendering.
  std::string to_string() const;
};

/// A writer-preferring readers-writer lock with RAII acquisition and
/// wait/hold-time accounting. Hand-rolled over mutex + condvar rather
/// than std::shared_mutex because glibc's pthread_rwlock default prefers
/// readers: a steady stream of read-only scripts would starve ingest and
/// checkpoints indefinitely. Here a waiting writer blocks *new* shared
/// acquisitions, so mutations wait only for in-flight readers to drain
/// (read-mostly workloads keep that wait brief). Counter updates are
/// relaxed atomics: they order nothing, they only have to add up.
class AccessGuard {
 public:
  /// Movable RAII hold on the guard. `release()` ends the hold early —
  /// the shared execution path uses that to drop shared access before
  /// re-acquiring exclusively for the overlay commit (there is no
  /// shared->exclusive upgrade, and holding shared while requesting
  /// exclusive would deadlock).
  class [[nodiscard]] Lock {
   public:
    Lock() = default;
    Lock(Lock&& other) noexcept { *this = std::move(other); }
    Lock& operator=(Lock&& other) noexcept;
    Lock(const Lock&) = delete;
    Lock& operator=(const Lock&) = delete;
    ~Lock() { release(); }

    void release();
    bool held() const { return guard_ != nullptr; }
    AccessMode mode() const { return mode_; }

   private:
    friend class AccessGuard;
    Lock(AccessGuard* guard, AccessMode mode,
         std::chrono::steady_clock::time_point acquired)
        : guard_(guard), mode_(mode), acquired_(acquired) {}

    AccessGuard* guard_ = nullptr;
    AccessMode mode_ = AccessMode::kShared;
    std::chrono::steady_clock::time_point acquired_{};
  };

  /// Blocks until access is granted. Shared requests coexist; an
  /// exclusive request waits for every holder to release and excludes
  /// everyone (including new shared requests) while pending or held.
  Lock acquire(AccessMode mode);

  AccessMetricsSnapshot snapshot() const;

 private:
  void release(AccessMode mode,
               std::chrono::steady_clock::time_point acquired);

  std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t readers_ = 0;        // active shared holders   (mutex_)
  std::uint64_t writers_waiting_ = 0;  // queued exclusives      (mutex_)
  bool writer_active_ = false;       // exclusive holder present (mutex_)

  std::atomic<std::uint64_t> shared_acquired_{0};
  std::atomic<std::uint64_t> exclusive_acquired_{0};
  std::atomic<std::uint64_t> shared_wait_us_{0};
  std::atomic<std::uint64_t> exclusive_wait_us_{0};
  std::atomic<std::uint64_t> shared_held_us_{0};
  std::atomic<std::uint64_t> exclusive_held_us_{0};
  std::atomic<std::uint64_t> active_shared_{0};
  std::atomic<std::uint64_t> peak_shared_{0};
};

}  // namespace gems::server
