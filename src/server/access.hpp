// The database's shared/exclusive access layer (readers-writer
// discipline): read-only scripts execute concurrently under *shared*
// access; mutating scripts, catalog commits of deferred `into` results,
// and checkpoints take brief *exclusive* access. This is what turns the
// multi-worker net::Server into actual read parallelism — before this
// layer every script, including pure path queries, serialized behind one
// mutex.
//
// The guard also meters itself: per-mode acquisition counts, time spent
// blocked waiting for the lock, time spent holding it, and the peak
// number of concurrent shared holders. Those counters surface in
// Database metrics, the net `stats` verb, and the shell's `\accessstats`.
//
// Lock order (see DESIGN.md §5j): the access guard is always the
// *outermost* database lock; `stats_mutex_` and `wal_mutex_` are only
// ever taken while it is held, and never the other way around. That
// order is encoded with GEMS_ACQUIRED_BEFORE in database.hpp so clang's
// thread safety analysis rejects inversions at compile time.
//
// AccessGuard itself is a GEMS_CAPABILITY: members the guard protects
// can be declared GEMS_GUARDED_BY(access_), functions that require it
// held GEMS_REQUIRES(access_). Acquisition goes through the scoped
// holders SharedAccessLock / ExclusiveAccessLock — there is no movable
// hold object, because the analysis cannot track capabilities through
// moves.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/sync.hpp"

namespace gems::server {

/// How a script (or maintenance task) may touch the shared state.
enum class AccessMode : std::uint8_t {
  kShared,     // read-only: any number of concurrent holders
  kExclusive,  // mutating: sole holder, waits out all readers
};

std::string_view access_mode_name(AccessMode mode) noexcept;

/// Point-in-time view of the guard's counters. All durations are
/// microseconds, aggregated since database open.
struct AccessMetricsSnapshot {
  std::uint64_t shared_acquired = 0;
  std::uint64_t exclusive_acquired = 0;
  std::uint64_t shared_wait_us = 0;     // total time blocked acquiring
  std::uint64_t exclusive_wait_us = 0;
  std::uint64_t shared_held_us = 0;     // total time held (sums overlaps)
  std::uint64_t exclusive_held_us = 0;
  std::uint64_t peak_concurrent_shared = 0;

  /// Human-readable `\accessstats` rendering.
  std::string to_string() const;
};

/// A writer-preferring readers-writer lock with wait/hold-time
/// accounting. Hand-rolled over mutex + condvar rather than
/// std::shared_mutex because glibc's pthread_rwlock default prefers
/// readers: a steady stream of read-only scripts would starve ingest and
/// checkpoints indefinitely. Here a waiting writer blocks *new* shared
/// acquisitions, so mutations wait only for in-flight readers to drain
/// (read-mostly workloads keep that wait brief). Counter updates are
/// relaxed atomics: they order nothing, they only have to add up.
class GEMS_CAPABILITY("AccessGuard") AccessGuard {
 public:
  using Clock = std::chrono::steady_clock;

  AccessGuard() = default;
  AccessGuard(const AccessGuard&) = delete;
  AccessGuard& operator=(const AccessGuard&) = delete;

  /// Blocks until sole (exclusive) access is granted: waits for every
  /// holder to release and excludes everyone — including new shared
  /// requests — while pending or held. Prefer ExclusiveAccessLock.
  void lock() GEMS_ACQUIRE();
  void unlock() GEMS_RELEASE();

  /// Blocks until shared access is granted (coexists with other shared
  /// holders; defers to queued writers). Returns the acquisition
  /// timestamp — hand it back to unlock_shared() so hold time is
  /// attributed per holder. Prefer SharedAccessLock.
  Clock::time_point lock_shared() GEMS_ACQUIRE_SHARED();
  void unlock_shared(Clock::time_point acquired) GEMS_RELEASE_SHARED();

  /// Runtime-verified assertion that the caller has sole use of the
  /// guarded state: either it holds the exclusive lock, or the access
  /// layer is quiescent (no readers, no queued writers — the documented
  /// single-threaded tooling mode that drives `Database::context()`
  /// directly). For closures (planner hooks, mutation callbacks) that
  /// run under exclusive access but where the analysis cannot see the
  /// caller's capability across the std::function boundary. A shared
  /// reader reaching one of those closures registers as a reader and
  /// fails the check.
  void assert_exclusive_held() const GEMS_ASSERT_CAPABILITY(this);

  AccessMetricsSnapshot snapshot() const;

 private:
  mutable sync::Mutex mutex_;
  sync::CondVar cv_;
  std::uint64_t readers_ GEMS_GUARDED_BY(mutex_) = 0;
  std::uint64_t writers_waiting_ GEMS_GUARDED_BY(mutex_) = 0;
  bool writer_active_ GEMS_GUARDED_BY(mutex_) = false;
  // Exclusive holds never overlap, so one slot suffices (shared holds
  // overlap; their timestamps live in each SharedAccessLock).
  Clock::time_point exclusive_acquired_at_ GEMS_GUARDED_BY(mutex_){};

  std::atomic<std::uint64_t> shared_acquired_{0};
  std::atomic<std::uint64_t> exclusive_acquired_{0};
  std::atomic<std::uint64_t> shared_wait_us_{0};
  std::atomic<std::uint64_t> exclusive_wait_us_{0};
  std::atomic<std::uint64_t> shared_held_us_{0};
  std::atomic<std::uint64_t> exclusive_held_us_{0};
  std::atomic<std::uint64_t> active_shared_{0};
  std::atomic<std::uint64_t> peak_shared_{0};
};

/// Scoped exclusive hold on an AccessGuard.
class GEMS_SCOPED_CAPABILITY [[nodiscard]] ExclusiveAccessLock {
 public:
  explicit ExclusiveAccessLock(AccessGuard& guard) GEMS_ACQUIRE(guard)
      : guard_(guard) {
    guard_.lock();
  }
  ~ExclusiveAccessLock() GEMS_RELEASE() { guard_.unlock(); }

  ExclusiveAccessLock(const ExclusiveAccessLock&) = delete;
  ExclusiveAccessLock& operator=(const ExclusiveAccessLock&) = delete;

 private:
  AccessGuard& guard_;
};

/// Scoped shared hold on an AccessGuard. There is no shared->exclusive
/// upgrade: holding shared while requesting exclusive would deadlock, so
/// code that needs to commit drops its shared hold (end of scope) before
/// constructing an ExclusiveAccessLock.
class GEMS_SCOPED_CAPABILITY [[nodiscard]] SharedAccessLock {
 public:
  explicit SharedAccessLock(AccessGuard& guard) GEMS_ACQUIRE_SHARED(guard)
      : guard_(guard), acquired_(guard.lock_shared()) {}
  ~SharedAccessLock() GEMS_RELEASE_GENERIC() { guard_.unlock_shared(acquired_); }

  SharedAccessLock(const SharedAccessLock&) = delete;
  SharedAccessLock& operator=(const SharedAccessLock&) = delete;

 private:
  AccessGuard& guard_;
  AccessGuard::Clock::time_point acquired_;
};

}  // namespace gems::server
