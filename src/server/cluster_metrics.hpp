// Cluster observability snapshot: per-rank BSP communication counters the
// coordinator accumulates from rank kJobDone reports (src/cluster), plus
// coordinator-side job/sync totals. Lives in server/ (not cluster/) so the
// net layer can ship it through the stats verb without depending on the
// cluster subsystem — net already links server.
//
// Wire compatibility: the snapshot travels at the *tail* of the kStats
// response payload (after the access counters). Old peers ignore trailing
// bytes; new peers tolerate their absence — same discipline as the access
// block, so kWireVersion stays at 1.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace gems::server {

struct ClusterRankMetrics {
  bool connected = false;
  std::uint64_t jobs = 0;           // distributed matches this rank ran
  std::uint64_t messages = 0;       // BSP messages sent (excl. self-sends)
  std::uint64_t payload_bytes = 0;  // BSP payload bytes (sim-comparable)
  std::uint64_t wire_bytes = 0;     // frame bytes incl. headers
  std::uint64_t supersteps = 0;     // counted on rank 0 only
  std::uint64_t stall_us = 0;       // blocked waiting on the wire
};

struct ClusterMetricsSnapshot {
  std::uint32_t num_ranks = 0;  // 0 = no cluster attached
  std::uint64_t jobs = 0;       // distributed matches completed
  std::uint64_t fallbacks = 0;  // networks declined (ran locally)
  std::uint64_t syncs = 0;      // state images shipped to ranks
  std::uint64_t sync_bytes = 0;
  std::vector<ClusterRankMetrics> ranks;

  std::string to_string() const {
    std::ostringstream out;
    if (num_ranks == 0) {
      out << "cluster: not attached\n";
      return out.str();
    }
    out << "cluster: " << num_ranks << " ranks, " << jobs << " jobs, "
        << fallbacks << " local fallbacks, " << syncs << " syncs ("
        << sync_bytes << " bytes)\n";
    for (std::size_t r = 0; r < ranks.size(); ++r) {
      const ClusterRankMetrics& m = ranks[r];
      out << "  rank " << r << (m.connected ? "" : " [down]") << ": "
          << m.jobs << " jobs, " << m.messages << " msgs, "
          << m.payload_bytes << " payload B, " << m.wire_bytes
          << " wire B, " << m.supersteps << " supersteps, " << m.stall_us
          << " us stalled\n";
    }
    return out.str();
  }
};

}  // namespace gems::server
