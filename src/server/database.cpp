#include "server/database.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/logging.hpp"
#include "exec/lowering.hpp"
#include "graql/ir.hpp"
#include "graql/parser.hpp"
#include "plan/planner.hpp"
#include "store/snapshot.hpp"

namespace gems::server {

using exec::StatementResult;
using graql::MetaCatalog;
using graql::Script;

Database::Database(DatabaseOptions options) : options_(std::move(options)) {
  ctx_.pool = &pool_;
  ctx_.data_dir = options_.data_dir;
  ctx_.max_result_rows = options_.max_result_rows;
  // gems::mvcc: ingest appends to copy-on-write table clones (epochs
  // pinned on the previous catalog keep their rows) and maintains the CSR
  // graph incrementally. Set before Store::open so WAL replay takes the
  // identical per-record delta-or-rebuild decisions the live execution
  // took — that is what makes recovery byte-identical.
  ctx_.copy_on_write = true;
  ctx_.incremental_ingest = options_.incremental_ingest;
  ctx_.batch_policy = options_.vectorized_execution
                          ? relational::BatchPolicy{}
                          : relational::BatchPolicy::row_engine();
  ctx_.on_graph_maintenance = [this](bool delta, std::uint64_t ns) {
    epochs_.record_maintenance(delta, ns);
  };
  if (options_.enable_planner) {
    // Sec. III-B's "dynamic properties of the data": graph statistics are
    // collected lazily and cached until DDL/ingest changes the instances
    // (graph_version), so per-query planning costs only the pivot choice.
    // This hook serves the writer path, which executes against the live
    // context under exclusive access.
    ctx_.planner = [this](const exec::ConstraintNetwork& net) {
      // The executor invokes this while a mutating script holds
      // exclusive access (or from single-threaded tooling driving the
      // live context directly — the quiescent case the assert also
      // accepts), but the std::function boundary hides that from the
      // static analysis — assert the capability (runtime-checked) so
      // the guarded reads below are verified, not waived.
      access_.assert_exclusive_held();
      // Keep the snapshot alive across planning: a concurrent DDL/ingest
      // (impossible under exclusive access, but cheap to be safe) would
      // otherwise swap the cache out from under us.
      const std::shared_ptr<const plan::GraphStats> stats = cached_stats();
      const plan::PathPlan plan =
          plan::plan_network(net, ctx_.graph, pool_, *stats);
      return exec::NetworkPlan{plan.root_var, plan.constraint_order};
    };
    // Read paths execute against pinned epochs; each epoch carries a
    // planner over its own immutable graph with per-epoch memoized stats
    // (adopted from the previous epoch when the graph is unchanged). The
    // closure captures the epoch raw: it is stored inside that epoch's
    // context, so it cannot outlive what it points at.
    epochs_.set_planner_factory([this](const mvcc::GraphEpoch& epoch) {
      const mvcc::GraphEpoch* e = &epoch;
      return [this, e](const exec::ConstraintNetwork& net) {
        const std::shared_ptr<const plan::GraphStats> stats = e->stats();
        const plan::PathPlan plan =
            plan::plan_network(net, e->ctx().graph, pool_, *stats);
        return exec::NetworkPlan{plan.root_var, plan.constraint_order};
      };
    });
  }
  if (options_.parallel_statements) {
    statement_pool_ = std::make_unique<ThreadPool>(
        std::max(2u, std::thread::hardware_concurrency()));
  }
  if (options_.intra_node_threads > 0) {
    intra_pool_ = std::make_unique<ThreadPool>(options_.intra_node_threads);
    ctx_.intra_pool = intra_pool_.get();
  }

  if (!options_.store_dir.empty()) {
    // Recovery runs with the mutation hook unset, so replayed statements
    // are not re-logged. A failed open is fail-stop (see store_status()).
    store::StoreOptions sopts;
    sopts.dir = options_.store_dir;
    sopts.wal_fsync = options_.wal_fsync;
    auto store = store::Store::open(std::move(sopts), ctx_);
    if (!store.is_ok()) {
      store_status_ =
          store.status().with_context("opening persistent store");
      GEMS_LOG(Error) << store_status_.to_string();
      // Publish whatever recovered so introspection (catalog, stats) can
      // still pin an epoch; scripts fail-stop on store_status_ regardless.
      epochs_.publish(ctx_);
      return;
    }
    store_ = std::move(store).value();
    ctx_.on_mutation = [this](const exec::MutationEvent& ev) {
      sync::MutexLock lock(wal_mutex_);
      Status s = store_->log_mutation(ev);
      if (!s.is_ok()) {
        // The mutation is applied in memory but missing from the log:
        // continuing would serve state a restart cannot reproduce.
        sync::MutexLock status_lock(store_status_mutex_);
        store_status_ = s;
      }
      return s;
    };
  }
  // Epoch zero: the recovered (or empty) state. Every read path pins an
  // epoch, so one must exist before the first script — and before the
  // background checkpoint thread starts pinning.
  epochs_.publish(ctx_);
  if (store_ != nullptr) {
    if (options_.checkpoint_interval_ms > 0) {
      checkpoint_thread_ = std::thread([this] {
        sync::MutexLock lk(checkpoint_mutex_);
        while (!stop_checkpoint_) {
          checkpoint_cv_.wait_for(
              checkpoint_mutex_,
              std::chrono::milliseconds(options_.checkpoint_interval_ms));
          if (stop_checkpoint_) break;
          // Drop checkpoint_mutex_ around the checkpoint: it sits outside
          // the lock hierarchy and must never be held across the access
          // guard acquisition inside checkpoint().
          lk.unlock();
          const Status s = checkpoint();
          if (!s.is_ok()) {
            GEMS_LOG(Warning) << "background checkpoint failed: "
                              << s.to_string();
          }
          lk.lock();
        }
      });
    }
  }
}

Database::~Database() {
  if (checkpoint_thread_.joinable()) {
    {
      sync::MutexLock lk(checkpoint_mutex_);
      stop_checkpoint_ = true;
    }
    checkpoint_cv_.notify_all();
    checkpoint_thread_.join();
  }
}

Status Database::store_status() const {
  sync::MutexLock lock(store_status_mutex_);
  return store_status_;
}

Status Database::checkpoint() {
  if (store_ == nullptr) {
    return invalid_argument(
        "database has no persistent store (open with store_dir)");
  }
  // Serialize whole checkpoints: two interleaved capture/encode/finish
  // sequences could rotate the WAL on a stale sequence number.
  sync::MutexLock serial(checkpoint_serial_mutex_);
  mvcc::EpochPin pin;
  std::uint64_t seq = 0;
  {
    // Brief exclusive window — a statement boundary. The pinned epoch and
    // the WAL sequence number are captured consistently: the current
    // epoch is exactly the state the log reaches at `seq` (every
    // mutating script publishes before releasing exclusive access).
    // epoch-pin-lint: allow (pin taken *after* the acquisition; the scope
    // releases the guard while the pin stays live, never the reverse)
    const ExclusiveAccessLock lock(access_);
    GEMS_RETURN_IF_ERROR(store_status());
    pin = epochs_.pin();
    seq = store_->wal_seq();
  }
  // Encode outside every lock: writers keep publishing while the
  // (possibly large) image is built from the pinned immutable epoch.
  GEMS_RETURN_IF_ERROR(store_->write_snapshot(pin.ctx(), seq));
  pin.release();
  // Rotate under exclusive access so no writer appends mid-rotate.
  // finish_checkpoint skips the rotation when the WAL advanced past
  // `seq` while we encoded — the snapshot is still valid, replay skips
  // the records it covers.
  const ExclusiveAccessLock lock(access_);
  return store_->finish_checkpoint(seq);
}

void Database::refresh_epoch() {
  const ExclusiveAccessLock lock(access_);
  epochs_.publish(ctx_);
}

std::vector<std::uint8_t> Database::snapshot_bytes(
    std::uint64_t* graph_version) const {
  const mvcc::EpochPin pin = epochs_.pin();
  if (graph_version != nullptr) *graph_version = pin.ctx().graph_version;
  return store::encode_snapshot(pin.ctx(), 0);
}

void Database::set_cluster_metrics_provider(
    std::function<ClusterMetricsSnapshot()> provider) {
  sync::MutexLock lock(cluster_mutex_);
  cluster_provider_ = std::move(provider);
}

bool Database::has_cluster() const {
  sync::MutexLock lock(cluster_mutex_);
  return cluster_provider_ != nullptr;
}

ClusterMetricsSnapshot Database::cluster_metrics() const {
  std::function<ClusterMetricsSnapshot()> provider;
  {
    sync::MutexLock lock(cluster_mutex_);
    provider = cluster_provider_;
  }
  if (!provider) return {};
  return provider();
}

store::StoreMetricsSnapshot Database::store_metrics() const {
  if (store_ == nullptr) return {};
  return store_->metrics().snapshot();
}

std::string Database::store_stats() const {
  if (store_ == nullptr) {
    std::string out = "no persistent store";
    const Status status = store_status();
    if (!status.is_ok()) {
      out += " (open failed: " + status.to_string() + ")";
    }
    return out;
  }
  return store_->metrics().snapshot().to_string();
}

exec::MatcherMetricsSnapshot Database::match_metrics() const {
  return ctx_.matcher_metrics->snapshot();
}

std::string Database::match_stats() const {
  return ctx_.matcher_metrics->snapshot().to_string();
}

std::shared_ptr<const plan::GraphStats> Database::cached_stats() {
  sync::MutexLock lock(stats_mutex_);
  if (stats_ == nullptr || stats_version_ != ctx_.graph_version) {
    stats_ = std::make_shared<const plan::GraphStats>(
        plan::GraphStats::collect(ctx_.graph));
    stats_version_ = ctx_.graph_version;
  }
  return stats_;
}

MetaCatalog Database::meta_catalog() const {
  const mvcc::EpochPin pin = epochs_.pin();
  return meta_catalog_from(pin.ctx());
}

MetaCatalog Database::meta_catalog_from(const exec::ExecContext& ctx) const {
  MetaCatalog meta;
  for (const auto& name : ctx.tables.names()) {
    auto table = ctx.tables.find(name);
    GEMS_CHECK(table.is_ok());
    GEMS_CHECK(meta.add_table(name, (*table)->schema()).is_ok());
  }
  for (const auto& decl : ctx.vertex_decls) {
    auto table = ctx.tables.find(decl.table);
    GEMS_CHECK(table.is_ok());
    GEMS_CHECK(meta.add_vertex(decl.name,
                               graql::VertexMeta{decl.table,
                                                 (*table)->schema(),
                                                 decl.key_columns})
                   .is_ok());
  }
  for (const auto& decl : ctx.edge_decls) {
    std::optional<storage::Schema> attrs;
    auto id = ctx.graph.find_edge_type(decl.name);
    if (id.is_ok()) {
      const storage::Table* attr_table =
          ctx.graph.edge_type(id.value()).attr_table();
      if (attr_table != nullptr) attrs = attr_table->schema();
    }
    GEMS_CHECK(meta.add_edge(decl.name,
                             graql::EdgeMeta{decl.source.vertex_type,
                                             decl.target.vertex_type,
                                             std::move(attrs)})
                   .is_ok());
  }
  for (const auto& [name, subgraph] : ctx.subgraphs) {
    graql::SubgraphMeta sm;
    for (graph::VertexTypeId t = 0; t < ctx.graph.num_vertex_types(); ++t) {
      const DynamicBitset* bits = subgraph->vertices(t);
      if (bits != nullptr && bits->any()) {
        sm.vertex_steps.insert(ctx.graph.vertex_type(t).name());
      }
    }
    meta.add_subgraph(name, std::move(sm));
  }
  return meta;
}

Status Database::check_script(const std::string& text,
                              const relational::ParamMap* params) const {
  GEMS_ASSIGN_OR_RETURN(Script script, graql::parse_script(text));
  MetaCatalog meta = meta_catalog();
  return graql::analyze_script(script, meta, params);
}

Result<std::vector<graql::Diagnostic>> Database::check(
    const std::string& text, const relational::ParamMap* params) {
  graql::DiagnosticEngine diags;
  Script script = graql::parse_script_collect(text, diags);
  check_parsed(script, diags, params);
  return diags.take();
}

Result<std::vector<graql::Diagnostic>> Database::check_ir(
    std::span<const std::uint8_t> ir, const relational::ParamMap* params) {
  GEMS_ASSIGN_OR_RETURN(Script script, graql::decode_script(ir));
  graql::DiagnosticEngine diags;
  check_parsed(script, diags, params);
  return diags.take();
}

void Database::check_parsed(const Script& script,
                            graql::DiagnosticEngine& diags,
                            const relational::ParamMap* params) {
  // Analysis only reads catalog/graph state: pin the current epoch and
  // analyze against that immutable snapshot — zero coordination with
  // writers or other readers.
  const mvcc::EpochPin pin = epochs_.pin();
  const exec::ExecContext& snap = pin.ctx();
  MetaCatalog meta = meta_catalog_from(snap);
  const std::shared_ptr<const plan::GraphStats> stats = pin.epoch().stats();
  graql::AnalyzeOptions opts;
  opts.params = params;
  // Pass 4 consumes plan-layer degree statistics; graql sits below plan in
  // the dependency order, so they arrive through this callback. Both the
  // stats snapshot and the epoch outlive the analysis (the pin holds the
  // epoch for this whole function).
  opts.edge_stats = [&snap, stats](const std::string& name)
      -> std::optional<graql::EdgeDegreeInfo> {
    auto id = snap.graph.find_edge_type(name);
    if (!id.is_ok() || id.value() >= stats->edge_stats.size()) {
      return std::nullopt;
    }
    const plan::EdgeTypeStats& es = stats->edge_stats[id.value()];
    graql::EdgeDegreeInfo info;
    info.num_edges = es.num_edges;
    info.avg_out = es.degrees.avg_out;
    info.avg_in = es.degrees.avg_in;
    info.max_out = es.degrees.max_out;
    info.max_in = es.degrees.max_in;
    return info;
  };
  graql::analyze_script_collect(script, meta, diags, opts);
}

Result<std::string> Database::explain(const std::string& text,
                                      const relational::ParamMap& params) {
  GEMS_ASSIGN_OR_RETURN(Script script, graql::parse_script(text));
  return explain_parsed(script, params);
}

Result<std::string> Database::explain_ir(std::span<const std::uint8_t> ir,
                                         const relational::ParamMap& params) {
  GEMS_ASSIGN_OR_RETURN(Script script, graql::decode_script(ir));
  return explain_parsed(script, params);
}

Result<std::string> Database::explain_parsed(
    const Script& script, const relational::ParamMap& params) {
  // Planning reads the graph, statistics and subgraph catalog but mutates
  // nothing: pin the current epoch and plan against it.
  const mvcc::EpochPin pin = epochs_.pin();
  const exec::ExecContext& snap = pin.ctx();
  MetaCatalog meta = meta_catalog_from(snap);
  GEMS_RETURN_IF_ERROR(graql::analyze_script(script, meta, &params));

  std::ostringstream out;
  const std::shared_ptr<const plan::GraphStats> stats = pin.epoch().stats();
  exec::SubgraphResolver resolver =
      [&snap](const std::string& name) -> Result<exec::SubgraphPtr> {
    auto it = snap.subgraphs.find(name);
    if (it == snap.subgraphs.end()) {
      return not_found("unknown result subgraph '" + name + "'");
    }
    return it->second;
  };

  for (std::size_t i = 0; i < script.statements.size(); ++i) {
    const graql::Statement& stmt = script.statements[i];
    const std::string rendered = graql::to_string(stmt);
    out << "-- statement " << (i + 1) << ": " << rendered.substr(0, 72)
        << (rendered.size() > 72 ? "..." : "") << "\n";
    const auto* q = std::get_if<graql::GraphQueryStmt>(&stmt);
    if (q == nullptr) {
      out << "   (no path plan)\n";
      continue;
    }
    GEMS_ASSIGN_OR_RETURN(
        exec::LoweredQuery lowered,
        exec::lower_graph_query(*q, snap.graph, resolver, params, pool_));
    for (std::size_t n = 0; n < lowered.networks.size(); ++n) {
      const exec::ConstraintNetwork& net = lowered.networks[n];
      if (lowered.networks.size() > 1) out << "   or-branch " << n << ":\n";
      for (std::size_t v = 0; v < net.num_vars(); ++v) {
        const double card = plan::estimate_cardinality(
            net, snap.graph, pool_, *stats, static_cast<int>(v));
        out << "   var " << v << " (" << net.vars[v].display
            << "): est. " << static_cast<std::size_t>(card)
            << " candidates\n";
      }
      const plan::PathPlan path_plan = options_.enable_planner
                                           ? plan::plan_network(
                                                 net, snap.graph, pool_,
                                                 *stats)
                                           : plan::lexical_plan(net);
      out << "   pivot: var " << path_plan.root_var << " ("
          << net.vars[path_plan.root_var].display << "), order:";
      for (const int c : path_plan.constraint_order) out << " " << c;
      out << (net.tree_exact ? "  [fixpoint-exact]\n"
                             : "  [needs enumeration]\n");
    }
  }
  const plan::Schedule schedule = plan::build_schedule(script);
  out << "-- schedule: " << schedule.levels.size() << " level(s), max width "
      << schedule.max_width() << "\n";
  return out.str();
}

Result<std::vector<StatementResult>> Database::run_script(
    const std::string& text, const relational::ParamMap& params) {
  // 1. Front-end: parse.
  GEMS_ASSIGN_OR_RETURN(Script script, graql::parse_script(text));

  // 2. Hand-off: compile to the binary IR and decode it "on the backend"
  //    (Sec. III). The decoded script is what gets analyzed and executed,
  //    exactly as if it had arrived over the wire (net::Server feeds
  //    run_ir with remotely-encoded blobs through the same path).
  if (!options_.skip_ir_roundtrip) {
    const std::vector<std::uint8_t> ir = graql::encode_script(script);
    GEMS_ASSIGN_OR_RETURN(script, graql::decode_script(ir));
  }

  return run_parsed(std::move(script), params);
}

Result<std::vector<StatementResult>> Database::run_ir(
    std::span<const std::uint8_t> ir, const relational::ParamMap& params) {
  GEMS_ASSIGN_OR_RETURN(Script script, graql::decode_script(ir));
  return run_parsed(std::move(script), params);
}

Result<std::vector<StatementResult>> Database::run_parsed(
    Script script, const relational::ParamMap& params) {
  // Classify before locking: the schedule (and its barrier analysis) only
  // depends on the script text, not on database state.
  const plan::Schedule schedule = plan::build_schedule(script);
  if (plan::script_is_read_only(script)) {
    return run_parsed_shared(script, schedule, params);
  }

  // Mutating script: sole holder — excludes other writers, overlay
  // commits and checkpoint capture windows while it applies. Readers are
  // unaffected: they execute against previously pinned epochs.
  const ExclusiveAccessLock lock(access_);

  // Fail-stop: a broken store (failed open, or a WAL append that diverged
  // the log from memory) refuses all further scripts.
  GEMS_RETURN_IF_ERROR(store_status());

  // Front-end: static analysis against the metadata catalog (Sec. III-A).
  // Params are known here, so their types participate.
  if (!options_.skip_static_analysis) {
    MetaCatalog meta = meta_catalog_from(ctx_);
    GEMS_RETURN_IF_ERROR(graql::analyze_script(script, meta, &params));
  }

  // Backend: dependence scheduling (Sec. III-B1) + execution. Skip the
  // ParamMap copy when both maps are empty (the common no-params case);
  // when the previous script bound params, assignment also clears them.
  if (!params.empty() || !ctx_.params.empty()) ctx_.params = params;
  auto results = plan::run_scheduled(script, schedule, ctx_,
                                     options_.parallel_statements
                                         ? statement_pool_.get()
                                         : nullptr);
  // Publish the post-script state as a new epoch — also on error: a
  // mid-script failure may have applied earlier statements, and readers
  // must see that state, not a snapshot that pretends it never happened.
  epochs_.publish(ctx_);
  return results;
}

Result<std::vector<StatementResult>> Database::run_parsed_shared(
    const Script& script, const plan::Schedule& schedule,
    const relational::ParamMap& params) {
  GEMS_RETURN_IF_ERROR(store_status());

  // Pin the current epoch and execute against that immutable snapshot —
  // no lock is held for the read, so a writer can publish any number of
  // new epochs while this script runs; the pin keeps our state alive and
  // byte-stable (deferred retirement).
  mvcc::EpochPin pin = epochs_.pin();
  const exec::ExecContext& snap = pin.ctx();

  if (!options_.skip_static_analysis) {
    MetaCatalog meta = meta_catalog_from(snap);
    GEMS_RETURN_IF_ERROR(graql::analyze_script(script, meta, &params));
  }

  // Params stay script-local (never written into the epoch), and `into`
  // results land in the overlay.
  exec::CatalogOverlay overlay;
  const std::uint64_t renumber_at_read = snap.renumber_version;
  const std::uint64_t version_at_read = snap.graph_version;
  GEMS_ASSIGN_OR_RETURN(
      std::vector<StatementResult> results,
      plan::run_scheduled_shared(script, schedule, snap, params, overlay,
                                 options_.parallel_statements
                                     ? statement_pool_.get()
                                     : nullptr));
  if (overlay.empty()) return results;

  // Fold the script's `into` results into the live context and publish a
  // fresh epoch, all under brief exclusive access — no reader ever
  // observes a half-committed catalog (they pin whole epochs).
  pin.release();
  const ExclusiveAccessLock commit(access_);
  if (!overlay.subgraphs.empty() &&
      ctx_.renumber_version != renumber_at_read) {
    // A full graph rebuild happened between pin and commit, so existing
    // vertex/edge numbering may have changed and the staged subgraph
    // bitsets are meaningless against the live graph. Rare: incremental
    // ingest preserves numbering (base rows keep their indices) and does
    // not bump renumber_version — only a fallback rebuild (parameterized
    // declarations, a one-to-one key collapse) or explicit DDL does.
    return unavailable(
        "concurrent ingest/DDL renumbered the graph under this script's "
        "subgraph results; re-run the script");
  }
  exec::commit_overlay(overlay, ctx_);
  if (!overlay.subgraphs.empty() && ctx_.graph_version != version_at_read) {
    // Numbering is intact but the graph grew (delta ingests since the
    // pin): pad the committed bitsets to the live type sizes.
    for (const auto& entry : overlay.subgraphs) {
      auto it = ctx_.subgraphs.find(entry.first);
      if (it != ctx_.subgraphs.end()) {
        it->second = it->second->resized_for(ctx_.graph);
      }
    }
  }
  epochs_.publish(ctx_);
  return results;
}

Result<StatementResult> Database::run_statement(
    const std::string& text, const relational::ParamMap& params) {
  GEMS_ASSIGN_OR_RETURN(auto results, run_script(text, params));
  if (results.empty()) {
    return invalid_argument("no statement in input");
  }
  return std::move(results.back());
}

Result<exec::SubgraphPtr> Database::subgraph(const std::string& name) const {
  const mvcc::EpochPin pin = epochs_.pin();
  auto it = pin.ctx().subgraphs.find(name);
  if (it == pin.ctx().subgraphs.end()) {
    return not_found("no subgraph named '" + name + "'");
  }
  return it->second;
}

std::vector<CatalogEntry> Database::catalog() const {
  const mvcc::EpochPin pin = epochs_.pin();
  return catalog_from(pin.ctx());
}

std::vector<CatalogEntry> Database::catalog_from(
    const exec::ExecContext& ctx) const {
  std::vector<CatalogEntry> entries;
  for (const auto& name : ctx.tables.names()) {
    auto table = ctx.tables.find(name);
    GEMS_CHECK(table.is_ok());
    entries.push_back({CatalogEntry::Kind::kTable, name,
                       (*table)->num_rows(), (*table)->byte_size()});
  }
  for (graph::VertexTypeId t = 0; t < ctx.graph.num_vertex_types(); ++t) {
    const auto& vt = ctx.graph.vertex_type(t);
    entries.push_back({CatalogEntry::Kind::kVertexType, vt.name(),
                       vt.num_vertices(), 0});
  }
  for (graph::EdgeTypeId e = 0; e < ctx.graph.num_edge_types(); ++e) {
    const auto& et = ctx.graph.edge_type(e);
    entries.push_back(
        {CatalogEntry::Kind::kEdgeType, et.name(), et.num_edges(),
         et.forward().byte_size() + et.reverse().byte_size()});
  }
  for (const auto& [name, subgraph] : ctx.subgraphs) {
    entries.push_back({CatalogEntry::Kind::kSubgraph, name,
                       subgraph->num_vertices() + subgraph->num_edges(), 0});
  }
  return entries;
}

std::string Database::catalog_summary() const {
  const mvcc::EpochPin pin = epochs_.pin();
  std::ostringstream out;
  auto kind_name = [](CatalogEntry::Kind k) {
    switch (k) {
      case CatalogEntry::Kind::kTable:
        return "table   ";
      case CatalogEntry::Kind::kVertexType:
        return "vertex  ";
      case CatalogEntry::Kind::kEdgeType:
        return "edge    ";
      case CatalogEntry::Kind::kSubgraph:
        return "subgraph";
    }
    return "?";
  };
  for (const auto& e : catalog_from(pin.ctx())) {
    out << kind_name(e.kind) << "  " << e.name << "  " << e.instances
        << " instances";
    if (e.byte_size > 0) out << ", " << e.byte_size << " bytes";
    out << "\n";
  }
  return out.str();
}

}  // namespace gems::server
