// The GEMS database facade (paper Sec. III): ties together the three
// system components —
//   1. clients (Session / the graql_shell example) submit GraQL text,
//   2. the server parses it, statically checks it against the metadata
//      catalog (Sec. III-A), and compiles it to the binary IR,
//   3. the "backend" decodes the IR, plans (Sec. III-B) and executes it
//      over the in-memory tables and graph views.
//
// In this reproduction front-end and backend live in one process, but the
// hand-off genuinely goes through the serialized IR, so splitting them
// across a wire needs no query-path changes.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>

#include "common/status.hpp"
#include "common/sync.hpp"
#include "common/thread_pool.hpp"
#include "exec/executor.hpp"
#include "graql/analyzer.hpp"
#include "mvcc/epoch.hpp"
#include "plan/schedule.hpp"
#include "plan/stats.hpp"
#include "server/access.hpp"
#include "server/cluster_metrics.hpp"
#include "store/store.hpp"

namespace gems::server {

struct DatabaseOptions {
  /// Directory prepended to relative `ingest` paths.
  std::string data_dir;
  /// Row cap for graph-query results (0 = unlimited).
  std::uint64_t max_result_rows = 0;
  /// Use the statistics-driven planner (Sec. III-B). Off = lexical order.
  bool enable_planner = true;
  /// Run independent statements of a script in parallel (Sec. III-B1).
  bool parallel_statements = false;
  /// Intra-node worker threads for parallel scans (0 = serial scans).
  std::size_t intra_node_threads = 0;
  /// Skip front-end static analysis (for ablation benches only).
  bool skip_static_analysis = false;
  /// Skip the IR encode/decode round-trip (for ablation benches only).
  bool skip_ir_roundtrip = false;

  /// Persistent store directory (gems::store). Empty = in-memory only.
  /// When set, opening the database recovers the directory's snapshot +
  /// WAL, every DDL/ingest statement is write-ahead logged, and
  /// checkpoint() snapshots the live state. If the directory holds a
  /// corrupt snapshot the database is fail-stop: every script returns the
  /// open error (see store_status()) instead of silently running
  /// non-durably over partial state.
  std::string store_dir;
  /// fsync the WAL on every logged mutation (see StoreOptions::wal_fsync).
  bool wal_fsync = true;
  /// Background checkpoint period in milliseconds (0 = only explicit
  /// checkpoint() calls). The background thread pins the current epoch
  /// under a brief exclusive window (a statement boundary) and encodes
  /// the snapshot outside every lock, so checkpoints never observe a
  /// half-applied script and never stall readers or writers.
  std::uint64_t checkpoint_interval_ms = 0;

  /// gems::mvcc: maintain the CSR graph incrementally on ingest (share
  /// unaffected types, extend affected ones from the appended rows) and
  /// fall back to a full rebuild only when the delta is unsound
  /// (parameterized declarations, a one-to-one key collapse). Off =
  /// every ingest rebuilds the whole graph, as before.
  bool incremental_ingest = true;

  /// Vectorized batch execution for the relational operators and matcher
  /// domain scans (relational/vector_eval.hpp). Off = row-at-a-time
  /// interpretation — the two produce byte-identical results
  /// (property-tested); the switch exists for A/B measurement and as an
  /// escape hatch.
  bool vectorized_execution = true;
};

/// Catalog entry sizes, as the GEMS server's metadata repository reports
/// them ("updated information on the sizes of those objects").
struct CatalogEntry {
  enum class Kind { kTable, kVertexType, kEdgeType, kSubgraph };
  Kind kind;
  std::string name;
  std::size_t instances = 0;   // rows / vertices / edges
  std::size_t byte_size = 0;   // storage footprint (tables only)
};

class Database {
 public:
  explicit Database(DatabaseOptions options = {});
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Parses, checks, compiles, schedules and executes a whole script.
  /// `params` bind %placeholders%. Statements execute in dependence order;
  /// results are returned in statement order.
  Result<std::vector<exec::StatementResult>> run_script(
      const std::string& text, const relational::ParamMap& params = {});

  /// Runs a single statement.
  Result<exec::StatementResult> run_statement(
      const std::string& text, const relational::ParamMap& params = {});

  /// Runs a pre-compiled binary IR blob (the wire hand-off, paper
  /// Sec. III): decode -> static analysis -> schedule -> execute. This is
  /// what `net::Server` calls for remote clients, which parse and encode
  /// locally and ship only the IR.
  Result<std::vector<exec::StatementResult>> run_ir(
      std::span<const std::uint8_t> ir,
      const relational::ParamMap& params = {});

  /// Front-end static analysis only (no execution). Fail-stop: the first
  /// problem as a bare Status. Kept for callers that only need ok/err;
  /// `check` below returns the full structured list.
  Status check_script(const std::string& text,
                      const relational::ParamMap* params = nullptr) const;

  /// Multi-error static analysis: every lex, parse, and semantic problem
  /// in the script, with source spans and stable GQLxxxx codes (the
  /// shell's `\lint`). Lex/parse problems are diagnostics, not a failed
  /// Result. Non-const: pass 4 (closure cost) consults the cached degree
  /// statistics.
  Result<std::vector<graql::Diagnostic>> check(
      const std::string& text,
      const relational::ParamMap* params = nullptr);

  /// Multi-error static analysis of a pre-compiled IR blob (what the net
  /// `check` verb calls). Fails only when the blob itself is undecodable.
  Result<std::vector<graql::Diagnostic>> check_ir(
      std::span<const std::uint8_t> ir,
      const relational::ParamMap* params = nullptr);

  /// Human-readable query plan (Sec. III-B) for a script, without
  /// executing it: per-statement variable cardinality estimates, the
  /// chosen pivot and propagation order, and the multi-statement schedule.
  Result<std::string> explain(const std::string& text,
                              const relational::ParamMap& params = {});

  /// `explain` for a pre-compiled IR blob.
  Result<std::string> explain_ir(std::span<const std::uint8_t> ir,
                                 const relational::ParamMap& params = {});

  // ---- Introspection --------------------------------------------------
  // These accessors hand out references into the *live* context without
  // holding the access guard: they exist for single-threaded tooling
  // (benchmark generators, test fixtures) that owns the database outright.
  // Concurrent readers must use the epoch-pinned paths (pin_epoch(),
  // catalog(), meta_catalog()) instead — hence the explicit opt-out from
  // the analysis rather than a GEMS_REQUIRES(access_) they could not
  // satisfy.
  const storage::TableCatalog& tables() const
      GEMS_NO_THREAD_SAFETY_ANALYSIS {
    return ctx_.tables;
  }
  const graph::GraphView& graph() const GEMS_NO_THREAD_SAFETY_ANALYSIS {
    return ctx_.graph;
  }
  Result<storage::TablePtr> table(const std::string& name) const
      GEMS_NO_THREAD_SAFETY_ANALYSIS {
    return ctx_.tables.find(name);
  }
  Result<exec::SubgraphPtr> subgraph(const std::string& name) const;
  StringPool& pool() { return pool_; }
  exec::ExecContext& context() GEMS_NO_THREAD_SAFETY_ANALYSIS {
    return ctx_;
  }

  /// All catalog objects with sizes, sorted by name within kind.
  std::vector<CatalogEntry> catalog() const;

  /// Human-readable catalog dump.
  std::string catalog_summary() const;

  /// Snapshot of the live state as an analyzer catalog (the front-end's
  /// metadata mirror).
  graql::MetaCatalog meta_catalog() const;

  /// Graph statistics over the *live* context (Sec. III-B), cached until
  /// DDL/ingest changes the instance sets. Used by the writer-path
  /// planner; the caller must hold exclusive access (compiler-enforced
  /// under clang; closures that the analysis cannot see through call
  /// access_.assert_exclusive_held() first). Read paths use the pinned
  /// epoch's memoized stats (GraphEpoch::stats()) instead.
  std::shared_ptr<const plan::GraphStats> cached_stats()
      GEMS_REQUIRES(access_);

  // ---- Durability (gems::store) ---------------------------------------
  /// True when the database runs over a persistent store.
  bool durable() const { return store_ != nullptr; }

  /// Error from opening the store, or from a WAL append that diverged the
  /// log from memory. Non-OK means fail-stop: run_script returns this.
  Status store_status() const;

  /// Snapshots the current state and rotates the WAL. Pins the current
  /// epoch under a brief exclusive window, then encodes the image outside
  /// all locks (writers keep running). Fails when the database has no
  /// store. Callers must not already hold the access guard (the capture
  /// window acquires it).
  Status checkpoint() GEMS_EXCLUDES(access_);

  /// Recovery info from open (zeroed for in-memory databases).
  store::StoreMetricsSnapshot store_metrics() const;

  /// Human-readable `\storestats` rendering.
  std::string store_stats() const;

  // ---- Matcher observability -------------------------------------------
  /// Aggregate matcher activity since open (fixpoint passes, edge
  /// traversals, parallel task/merge accounting).
  ///
  /// Analysis waiver: reaches through `ctx_` (guarded by `access_`), but
  /// only to the `matcher_metrics` shared_ptr, which is set at open and
  /// never reassigned; the metrics object is internally synchronized.
  exec::MatcherMetricsSnapshot match_metrics() const
      GEMS_NO_THREAD_SAFETY_ANALYSIS;

  /// Human-readable `\matchstats` rendering. Same waiver as above.
  std::string match_stats() const GEMS_NO_THREAD_SAFETY_ANALYSIS;

  // ---- Access-layer observability --------------------------------------
  /// Shared/exclusive acquisition, wait and hold counters since open.
  AccessMetricsSnapshot access_metrics() const { return access_.snapshot(); }

  /// Human-readable `\accessstats` rendering: lock-layer counters plus the
  /// epoch lifecycle block (read-only scripts no longer touch the lock —
  /// they pin epochs, which is where their activity shows up).
  std::string access_stats() const {
    return access_.snapshot().to_string() + "\n" + epoch_stats();
  }

  // ---- Epoch observability (gems::mvcc) ---------------------------------
  /// Epoch lifecycle counters: publish/retire/free, pin activity, and the
  /// incremental-vs-rebuild ingest maintenance split.
  mvcc::EpochMetricsSnapshot epoch_metrics() const {
    return epochs_.snapshot();
  }

  /// Human-readable `\epochstats` rendering.
  std::string epoch_stats() const { return epochs_.snapshot().to_string(); }

  /// Pins the current epoch (RAII). Test and tooling hook: the returned
  /// pin keeps that database state alive and byte-stable across any
  /// number of concurrent publications.
  mvcc::EpochPin pin_epoch() const { return epochs_.pin(); }

  /// Re-publishes the live context as a fresh epoch under brief exclusive
  /// access. Call after mutating `context()` directly (benchmark
  /// generators do); scripts publish automatically.
  void refresh_epoch();

  // ---- Cluster attachment ----------------------------------------------
  /// Deterministic image of a pinned epoch (store snapshot encoding) plus
  /// its graph version. The cluster coordinator uses this to prime rank
  /// state before any script runs; zero coordination with running
  /// scripts — safe to call from any thread.
  std::vector<std::uint8_t> snapshot_bytes(
      std::uint64_t* graph_version = nullptr) const;

  /// Installed by cluster::Coordinator::attach(); nullptr detaches.
  void set_cluster_metrics_provider(
      std::function<ClusterMetricsSnapshot()> provider);

  /// True when a cluster coordinator is attached.
  bool has_cluster() const;

  /// Per-rank communication counters from the attached coordinator
  /// (zeroed snapshot when no cluster is attached).
  ClusterMetricsSnapshot cluster_metrics() const;

  /// Human-readable `\clusterstats` rendering.
  std::string cluster_stats() const { return cluster_metrics().to_string(); }

 private:
  /// Shared back half of run_script / run_ir: analyze (unless skipped),
  /// schedule and execute an already-parsed script. Classifies the script
  /// (plan::script_is_read_only) and routes it to the shared or exclusive
  /// access path.
  Result<std::vector<exec::StatementResult>> run_parsed(
      graql::Script script, const relational::ParamMap& params);

  /// Read-only script execution against a pinned epoch: zero coordination
  /// with writers (no lock acquired for the read itself); `into` results
  /// are staged in a script-local overlay and folded into a fresh epoch
  /// publication under brief exclusive access at the end.
  Result<std::vector<exec::StatementResult>> run_parsed_shared(
      const graql::Script& script, const plan::Schedule& schedule,
      const relational::ParamMap& params);

  /// Shared body of explain / explain_ir over a parsed+analyzed script.
  Result<std::string> explain_parsed(const graql::Script& script,
                                     const relational::ParamMap& params);

  /// Shared back half of check / check_ir: runs the multi-pass analyzer
  /// over a parsed script with degree statistics wired in for pass 4.
  void check_parsed(const graql::Script& script,
                    graql::DiagnosticEngine& diags,
                    const relational::ParamMap* params);

  /// Bodies of meta_catalog() / catalog() over an explicit context —
  /// either a pinned epoch's (read paths) or the live ctx_ (the exclusive
  /// writer path).
  graql::MetaCatalog meta_catalog_from(const exec::ExecContext& ctx) const;
  std::vector<CatalogEntry> catalog_from(const exec::ExecContext& ctx) const;

  DatabaseOptions options_;
  StringPool pool_;

  // ---- Lock hierarchy (DESIGN.md §5j) ----------------------------------
  // checkpoint_serial_mutex_ > access_ > stats_mutex_ > wal_mutex_ >
  // store_status_mutex_. The GEMS_ACQUIRED_BEFORE chain below encodes the
  // order: under clang -Wthread-safety-beta an inversion is a compile
  // error, not a deadlock in production.

  /// Serializes whole checkpoints against each other: two interleaved
  /// capture/encode/finish sequences could rotate the WAL on a stale
  /// sequence number. Taken before (outside) the access guard.
  sync::Mutex checkpoint_serial_mutex_ GEMS_ACQUIRED_BEFORE(access_);

  /// The writer-side access layer (see access.hpp): mutating scripts,
  /// overlay commits and checkpoint capture windows hold it exclusively.
  /// Read-only scripts no longer acquire it at all — they pin an epoch
  /// (epochs_) and execute against that immutable snapshot, so writers
  /// never block readers and readers never block writers beyond the brief
  /// publication window. Outermost of the database's per-statement locks.
  mutable AccessGuard access_ GEMS_ACQUIRED_BEFORE(stats_mutex_, wal_mutex_);

  /// Live execution context: tables, graph, subgraphs, bound params.
  /// Mutated only under exclusive access; read paths never touch it (they
  /// pin an epoch). The raw accessors above opt out of the analysis for
  /// single-threaded tooling.
  exec::ExecContext ctx_ GEMS_GUARDED_BY(access_);
  std::unique_ptr<ThreadPool> statement_pool_;  // for parallel_statements
  std::unique_ptr<ThreadPool> intra_pool_;      // for parallel scans

  mutable sync::Mutex stats_mutex_ GEMS_ACQUIRED_BEFORE(wal_mutex_);
  std::shared_ptr<const plan::GraphStats> stats_
      GEMS_GUARDED_BY(stats_mutex_);
  std::uint64_t stats_version_ GEMS_GUARDED_BY(stats_mutex_) = ~0ull;

  /// gems::mvcc epoch chain: every mutating script (and overlay commit)
  /// ends by publishing ctx_ as a new immutable epoch; every read path
  /// pins the current one. `mutable` so const introspection can pin.
  mutable mvcc::EpochManager epochs_;

  /// Cluster metrics provider (set while a coordinator is attached).
  mutable sync::Mutex cluster_mutex_;
  std::function<ClusterMetricsSnapshot()> cluster_provider_
      GEMS_GUARDED_BY(cluster_mutex_);

  std::unique_ptr<store::Store> store_;
  /// Sole owner of store_status_: the WAL hook writes it (nested under
  /// wal_mutex_) while pinned-epoch readers poll it without holding any
  /// access lock — store_status_mutex_ is the one capability both sides
  /// go through.
  mutable sync::Mutex store_status_mutex_;
  Status store_status_ GEMS_GUARDED_BY(store_status_mutex_);
  /// Serializes WAL appends from parallel statements.
  sync::Mutex wal_mutex_ GEMS_ACQUIRED_BEFORE(store_status_mutex_);

  std::thread checkpoint_thread_;
  /// Guards only the background thread's stop flag; disjoint from the
  /// chain above (the thread drops it around the checkpoint() call).
  sync::Mutex checkpoint_mutex_;
  sync::CondVar checkpoint_cv_;
  bool stop_checkpoint_ GEMS_GUARDED_BY(checkpoint_mutex_) = false;
};

/// A client session: per-session parameters layered over the database
/// (paper Sec. III component 1).
class Session {
 public:
  explicit Session(Database& db) : db_(db) {}

  void set_param(const std::string& name, storage::Value value) {
    params_[name] = std::move(value);
  }
  void clear_params() { params_.clear(); }

  Result<std::vector<exec::StatementResult>> run(const std::string& text) {
    return db_.run_script(text, params_);
  }

 private:
  Database& db_;
  relational::ParamMap params_;
};

}  // namespace gems::server
