#include "server/access.hpp"

#include <sstream>

#include "common/check.hpp"

namespace gems::server {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_us(Clock::time_point from, Clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

}  // namespace

std::string_view access_mode_name(AccessMode mode) noexcept {
  return mode == AccessMode::kShared ? "shared" : "exclusive";
}

std::string AccessMetricsSnapshot::to_string() const {
  auto avg = [](std::uint64_t total_us, std::uint64_t n) {
    return n == 0 ? 0ull : total_us / n;
  };
  std::ostringstream out;
  out << "access     shared: " << shared_acquired << " acquisitions, avg wait "
      << avg(shared_wait_us, shared_acquired) << " us, avg hold "
      << avg(shared_held_us, shared_acquired) << " us, peak concurrent "
      << peak_concurrent_shared << "\n"
      << "        exclusive: " << exclusive_acquired
      << " acquisitions, avg wait "
      << avg(exclusive_wait_us, exclusive_acquired) << " us, avg hold "
      << avg(exclusive_held_us, exclusive_acquired) << " us\n";
  return out.str();
}

void AccessGuard::lock() {
  const Clock::time_point requested = Clock::now();
  {
    sync::MutexLock lk(mutex_);
    ++writers_waiting_;
    while (writer_active_ || readers_ != 0) cv_.wait(mutex_);
    --writers_waiting_;
    writer_active_ = true;
    exclusive_acquired_at_ = Clock::now();
    exclusive_wait_us_.fetch_add(elapsed_us(requested, exclusive_acquired_at_),
                                 std::memory_order_relaxed);
  }
  exclusive_acquired_.fetch_add(1, std::memory_order_relaxed);
}

void AccessGuard::unlock() {
  {
    sync::MutexLock lk(mutex_);
    exclusive_held_us_.fetch_add(
        elapsed_us(exclusive_acquired_at_, Clock::now()),
        std::memory_order_relaxed);
    writer_active_ = false;
  }
  cv_.notify_all();
}

Clock::time_point AccessGuard::lock_shared() {
  const Clock::time_point requested = Clock::now();
  {
    sync::MutexLock lk(mutex_);
    // Writer preference: a queued exclusive blocks *new* readers, so
    // mutations only wait for in-flight readers to drain.
    while (writer_active_ || writers_waiting_ != 0) cv_.wait(mutex_);
    ++readers_;
  }
  const Clock::time_point acquired = Clock::now();
  shared_acquired_.fetch_add(1, std::memory_order_relaxed);
  shared_wait_us_.fetch_add(elapsed_us(requested, acquired),
                            std::memory_order_relaxed);
  const std::uint64_t active =
      active_shared_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t peak = peak_shared_.load(std::memory_order_relaxed);
  while (active > peak &&
         !peak_shared_.compare_exchange_weak(peak, active,
                                             std::memory_order_relaxed)) {
  }
  return acquired;
}

void AccessGuard::unlock_shared(Clock::time_point acquired) {
  shared_held_us_.fetch_add(elapsed_us(acquired, Clock::now()),
                            std::memory_order_relaxed);
  active_shared_.fetch_sub(1, std::memory_order_relaxed);
  {
    sync::MutexLock lk(mutex_);
    --readers_;
  }
  cv_.notify_all();
}

void AccessGuard::assert_exclusive_held() const {
  sync::MutexLock lk(mutex_);
  // Quiescent (readers_ == 0, nothing queued) covers single-threaded
  // tooling that drives the live context without going through the
  // guard; any concurrent shared holder makes this fail loudly.
  GEMS_CHECK(writer_active_ || (readers_ == 0 && writers_waiting_ == 0));
}

AccessMetricsSnapshot AccessGuard::snapshot() const {
  AccessMetricsSnapshot snap;
  snap.shared_acquired = shared_acquired_.load(std::memory_order_relaxed);
  snap.exclusive_acquired =
      exclusive_acquired_.load(std::memory_order_relaxed);
  snap.shared_wait_us = shared_wait_us_.load(std::memory_order_relaxed);
  snap.exclusive_wait_us =
      exclusive_wait_us_.load(std::memory_order_relaxed);
  snap.shared_held_us = shared_held_us_.load(std::memory_order_relaxed);
  snap.exclusive_held_us =
      exclusive_held_us_.load(std::memory_order_relaxed);
  snap.peak_concurrent_shared =
      peak_shared_.load(std::memory_order_relaxed);
  return snap;
}

}  // namespace gems::server
