#include "server/access.hpp"

#include <sstream>

namespace gems::server {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_us(Clock::time_point from, Clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

}  // namespace

std::string_view access_mode_name(AccessMode mode) noexcept {
  return mode == AccessMode::kShared ? "shared" : "exclusive";
}

std::string AccessMetricsSnapshot::to_string() const {
  auto avg = [](std::uint64_t total_us, std::uint64_t n) {
    return n == 0 ? 0ull : total_us / n;
  };
  std::ostringstream out;
  out << "access     shared: " << shared_acquired << " acquisitions, avg wait "
      << avg(shared_wait_us, shared_acquired) << " us, avg hold "
      << avg(shared_held_us, shared_acquired) << " us, peak concurrent "
      << peak_concurrent_shared << "\n"
      << "        exclusive: " << exclusive_acquired
      << " acquisitions, avg wait "
      << avg(exclusive_wait_us, exclusive_acquired) << " us, avg hold "
      << avg(exclusive_held_us, exclusive_acquired) << " us\n";
  return out.str();
}

AccessGuard::Lock& AccessGuard::Lock::operator=(Lock&& other) noexcept {
  if (this != &other) {
    release();
    guard_ = other.guard_;
    mode_ = other.mode_;
    acquired_ = other.acquired_;
    other.guard_ = nullptr;
  }
  return *this;
}

void AccessGuard::Lock::release() {
  if (guard_ == nullptr) return;
  guard_->release(mode_, acquired_);
  guard_ = nullptr;
}

AccessGuard::Lock AccessGuard::acquire(AccessMode mode) {
  const Clock::time_point requested = Clock::now();
  if (mode == AccessMode::kShared) {
    {
      std::unique_lock<std::mutex> lk(mutex_);
      // Writer preference: a queued exclusive blocks *new* readers, so
      // mutations only wait for in-flight readers to drain.
      cv_.wait(lk, [this] {
        return !writer_active_ && writers_waiting_ == 0;
      });
      ++readers_;
    }
    const Clock::time_point acquired = Clock::now();
    shared_acquired_.fetch_add(1, std::memory_order_relaxed);
    shared_wait_us_.fetch_add(elapsed_us(requested, acquired),
                              std::memory_order_relaxed);
    const std::uint64_t active =
        active_shared_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::uint64_t peak = peak_shared_.load(std::memory_order_relaxed);
    while (active > peak &&
           !peak_shared_.compare_exchange_weak(peak, active,
                                               std::memory_order_relaxed)) {
    }
    return Lock(this, mode, acquired);
  }
  {
    std::unique_lock<std::mutex> lk(mutex_);
    ++writers_waiting_;
    cv_.wait(lk, [this] { return !writer_active_ && readers_ == 0; });
    --writers_waiting_;
    writer_active_ = true;
  }
  const Clock::time_point acquired = Clock::now();
  exclusive_acquired_.fetch_add(1, std::memory_order_relaxed);
  exclusive_wait_us_.fetch_add(elapsed_us(requested, acquired),
                               std::memory_order_relaxed);
  return Lock(this, mode, acquired);
}

void AccessGuard::release(AccessMode mode, Clock::time_point acquired) {
  const std::uint64_t held_us = elapsed_us(acquired, Clock::now());
  if (mode == AccessMode::kShared) {
    shared_held_us_.fetch_add(held_us, std::memory_order_relaxed);
    active_shared_.fetch_sub(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(mutex_);
      --readers_;
    }
    cv_.notify_all();
    return;
  }
  exclusive_held_us_.fetch_add(held_us, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(mutex_);
    writer_active_ = false;
  }
  cv_.notify_all();
}

AccessMetricsSnapshot AccessGuard::snapshot() const {
  AccessMetricsSnapshot snap;
  snap.shared_acquired = shared_acquired_.load(std::memory_order_relaxed);
  snap.exclusive_acquired =
      exclusive_acquired_.load(std::memory_order_relaxed);
  snap.shared_wait_us = shared_wait_us_.load(std::memory_order_relaxed);
  snap.exclusive_wait_us =
      exclusive_wait_us_.load(std::memory_order_relaxed);
  snap.shared_held_us = shared_held_us_.load(std::memory_order_relaxed);
  snap.exclusive_held_us =
      exclusive_held_us_.load(std::memory_order_relaxed);
  snap.peak_concurrent_shared =
      peak_shared_.load(std::memory_order_relaxed);
  return snap;
}

}  // namespace gems::server
