#include "plan/schedule.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace gems::plan {

using exec::ExecContext;
using exec::StatementResult;
using graql::EdgeStep;
using graql::PathElement;
using graql::PathGroup;
using graql::Script;
using graql::Statement;
using graql::VertexStep;

namespace {

void add_name(std::vector<std::string>& names, const std::string& name) {
  if (name.empty()) return;
  if (std::find(names.begin(), names.end(), name) == names.end()) {
    names.push_back(name);
  }
}

void collect_path_reads(const graql::PathPattern& path,
                        std::vector<std::string>& reads) {
  for (const PathElement& el : path.elements) {
    if (const auto* v = std::get_if<VertexStep>(&el)) {
      add_name(reads, v->type_name);
      add_name(reads, v->seed_result);
    } else if (const auto* e = std::get_if<EdgeStep>(&el)) {
      add_name(reads, e->type_name);
    } else {
      for (const PathElement& inner : std::get<PathGroup>(el).body) {
        if (const auto* iv = std::get_if<VertexStep>(&inner)) {
          add_name(reads, iv->type_name);
        } else if (const auto* ie = std::get_if<EdgeStep>(&inner)) {
          add_name(reads, ie->type_name);
        }
      }
    }
  }
}

bool intersects(const std::vector<std::string>& a,
                const std::vector<std::string>& b) {
  for (const auto& x : a) {
    if (std::find(b.begin(), b.end(), x) != b.end()) return true;
  }
  return false;
}

}  // namespace

StatementIo analyze_io(const Statement& stmt) {
  StatementIo io;
  if (const auto* s = std::get_if<graql::CreateTableStmt>(&stmt)) {
    io.writes.push_back(s->name);
    io.barrier = true;
    return io;
  }
  if (const auto* s = std::get_if<graql::CreateVertexStmt>(&stmt)) {
    io.reads.push_back(s->decl.table);
    io.writes.push_back(s->decl.name);
    io.barrier = true;
    return io;
  }
  if (const auto* s = std::get_if<graql::CreateEdgeStmt>(&stmt)) {
    io.reads.push_back(s->decl.source.vertex_type);
    io.reads.push_back(s->decl.target.vertex_type);
    for (const auto& t : s->decl.assoc_tables) io.reads.push_back(t);
    io.writes.push_back(s->decl.name);
    io.barrier = true;
    return io;
  }
  if (const auto* s = std::get_if<graql::IngestStmt>(&stmt)) {
    io.writes.push_back(s->table);
    io.barrier = true;  // regenerates derived vertex/edge instances
    return io;
  }
  if (const auto* s = std::get_if<graql::OutputStmt>(&stmt)) {
    io.reads.push_back(s->table);  // external file write, catalog read-only
    return io;
  }
  if (const auto* s = std::get_if<graql::GraphQueryStmt>(&stmt)) {
    for (const auto& group : s->or_groups) {
      for (const auto& path : group) collect_path_reads(path, io.reads);
    }
    if (s->into != graql::IntoKind::kNone) add_name(io.writes, s->into_name);
    return io;
  }
  if (const auto* s = std::get_if<graql::TableQueryStmt>(&stmt)) {
    io.reads.push_back(s->from_table);
    if (s->into != graql::IntoKind::kNone) add_name(io.writes, s->into_name);
    return io;
  }
  GEMS_UNREACHABLE("unhandled statement kind");
}

Schedule build_schedule(const Script& script) {
  const std::size_t n = script.statements.size();
  std::vector<StatementIo> io;
  io.reserve(n);
  for (const auto& stmt : script.statements) io.push_back(analyze_io(stmt));

  std::vector<std::size_t> level(n, 0);
  std::size_t max_level = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t min_level = 0;
    for (std::size_t j = 0; j < i; ++j) {
      const bool conflict =
          io[i].barrier || io[j].barrier ||
          intersects(io[j].writes, io[i].reads) ||   // RAW
          intersects(io[j].writes, io[i].writes) ||  // WAW
          intersects(io[j].reads, io[i].writes);     // WAR
      if (conflict) min_level = std::max(min_level, level[j] + 1);
    }
    level[i] = min_level;
    max_level = std::max(max_level, min_level);
  }

  Schedule schedule;
  schedule.levels.resize(max_level + 1);
  for (std::size_t i = 0; i < n; ++i) schedule.levels[level[i]].push_back(i);
  // Remove empty levels (can appear when barriers collapse).
  schedule.levels.erase(
      std::remove_if(schedule.levels.begin(), schedule.levels.end(),
                     [](const auto& l) { return l.empty(); }),
      schedule.levels.end());
  return schedule;
}

bool script_is_read_only(const Script& script) {
  for (const Statement& stmt : script.statements) {
    if (analyze_io(stmt).barrier) return false;
  }
  return true;
}

Result<std::vector<StatementResult>> run_scheduled(const Script& script,
                                                   const Schedule& schedule,
                                                   ExecContext& ctx,
                                                   ThreadPool* pool) {
  std::vector<StatementResult> results(script.statements.size());
  for (const auto& level : schedule.levels) {
    if (pool == nullptr || level.size() == 1) {
      for (const std::size_t i : level) {
        GEMS_ASSIGN_OR_RETURN(results[i],
                              execute_statement(script.statements[i], ctx));
      }
      continue;
    }
    // Parallel level: run against read-only shared state, commit results
    // afterwards in script order (deterministic catalog contents).
    ctx.defer_catalog_writes = true;
    std::vector<Result<StatementResult>> outcomes(
        level.size(), Status(StatusCode::kInternal, "not run"));
    std::vector<std::future<void>> futures;
    futures.reserve(level.size());
    for (std::size_t k = 0; k < level.size(); ++k) {
      futures.push_back(pool->submit([&, k] {
        outcomes[k] = execute_statement(script.statements[level[k]], ctx);
      }));
    }
    for (auto& f : futures) f.get();
    ctx.defer_catalog_writes = false;
    for (std::size_t k = 0; k < level.size(); ++k) {
      if (!outcomes[k].is_ok()) return outcomes[k].status();
      results[level[k]] = std::move(outcomes[k]).value();
      exec::commit_result(results[level[k]], ctx);
    }
  }
  return results;
}

Result<std::vector<StatementResult>> run_scheduled_shared(
    const Script& script, const Schedule& schedule, const ExecContext& ctx,
    const relational::ParamMap& params, exec::CatalogOverlay& overlay,
    ThreadPool* pool) {
  const exec::ReadView view{&ctx, &params, &overlay};
  std::vector<StatementResult> results(script.statements.size());
  for (const auto& level : schedule.levels) {
    if (pool == nullptr || level.size() == 1) {
      for (const std::size_t i : level) {
        GEMS_ASSIGN_OR_RETURN(
            results[i], execute_statement_read(script.statements[i], view));
        // Stage immediately: the next serial statement may read this name.
        exec::stage_result(results[i], overlay);
      }
      continue;
    }
    // Parallel level: statements in one level are independent by
    // construction, so they share the (immutable) view; their results are
    // staged afterwards in script order, exactly like run_scheduled
    // commits deferred results.
    std::vector<Result<StatementResult>> outcomes(
        level.size(), Status(StatusCode::kInternal, "not run"));
    std::vector<std::future<void>> futures;
    futures.reserve(level.size());
    for (std::size_t k = 0; k < level.size(); ++k) {
      futures.push_back(pool->submit([&, k] {
        outcomes[k] =
            exec::execute_statement_read(script.statements[level[k]], view);
      }));
    }
    for (auto& f : futures) f.get();
    for (std::size_t k = 0; k < level.size(); ++k) {
      if (!outcomes[k].is_ok()) return outcomes[k].status();
      results[level[k]] = std::move(outcomes[k]).value();
      exec::stage_result(results[level[k]], overlay);
    }
  }
  return results;
}

}  // namespace gems::plan
