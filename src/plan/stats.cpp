#include "plan/stats.hpp"

#include <algorithm>

#include "exec/matcher.hpp"

namespace gems::plan {

using graph::EdgeTypeId;
using graph::GraphView;
using graph::VertexIndex;
using graph::VertexTypeId;

GraphStats GraphStats::collect(const GraphView& graph) {
  GraphStats stats;
  stats.vertex_counts.reserve(graph.num_vertex_types());
  for (VertexTypeId t = 0; t < graph.num_vertex_types(); ++t) {
    stats.vertex_counts.push_back(graph.vertex_type(t).num_vertices());
  }
  stats.edge_stats.reserve(graph.num_edge_types());
  for (EdgeTypeId e = 0; e < graph.num_edge_types(); ++e) {
    const graph::EdgeType& et = graph.edge_type(e);
    EdgeTypeStats es;
    es.num_edges = et.num_edges();
    const auto& fwd = et.forward();
    const auto& rev = et.reverse();
    std::uint64_t out_sum = 0;
    for (VertexIndex v = 0; v < fwd.num_vertices(); ++v) {
      out_sum += fwd.degree(v);
      es.degrees.max_out = std::max(es.degrees.max_out, fwd.degree(v));
    }
    std::uint64_t in_sum = 0;
    for (VertexIndex v = 0; v < rev.num_vertices(); ++v) {
      in_sum += rev.degree(v);
      es.degrees.max_in = std::max(es.degrees.max_in, rev.degree(v));
    }
    es.degrees.avg_out =
        fwd.num_vertices() == 0
            ? 0
            : static_cast<double>(out_sum) / fwd.num_vertices();
    es.degrees.avg_in =
        rev.num_vertices() == 0
            ? 0
            : static_cast<double>(in_sum) / rev.num_vertices();
    stats.edge_stats.push_back(es);
  }
  return stats;
}

double estimate_selectivity(const exec::ConstraintNetwork& net,
                            const GraphView& graph, const StringPool& pool,
                            int var, std::size_t sample_limit) {
  const exec::VertexVar& vv = net.vars[var];
  if (vv.self_conds.empty() && !vv.seed) return 1.0;
  std::size_t sampled = 0;
  std::size_t passed = 0;
  for (const VertexTypeId t : vv.types) {
    const std::size_t n = graph.vertex_type(t).num_vertices();
    // Deterministic stride sampling across the extent.
    const std::size_t stride =
        std::max<std::size_t>(1, n / std::max<std::size_t>(1, sample_limit));
    for (std::size_t v = 0; v < n && sampled < sample_limit;
         v += stride, ++sampled) {
      const VertexIndex idx = static_cast<VertexIndex>(v);
      if (vv.seed) {
        const DynamicBitset* bits = vv.seed->vertices(t);
        if (bits == nullptr || !bits->test(idx)) continue;
      }
      if (exec::vertex_passes(net, graph, pool, var, t, idx)) ++passed;
    }
  }
  if (sampled == 0) return 1.0;
  return static_cast<double>(passed) / static_cast<double>(sampled);
}

double estimate_cardinality(const exec::ConstraintNetwork& net,
                            const GraphView& graph, const StringPool& pool,
                            const GraphStats& stats, int var) {
  std::size_t extent = 0;
  for (const auto t : net.vars[var].types) extent += stats.vertices_of(t);
  return static_cast<double>(extent) *
         estimate_selectivity(net, graph, pool, var);
}

}  // namespace gems::plan
