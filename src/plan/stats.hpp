// Catalog statistics (paper Sec. III-B): "number of instances of vertex
// and edge types, as well as statistical properties of the degree
// distribution of a vertex type with respect to an edge type". The planner
// consumes these to pick traversal orders; the GEMS server exposes them in
// its metadata catalog.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "exec/network.hpp"
#include "graph/graph_view.hpp"

namespace gems::plan {

struct DegreeStats {
  double avg_out = 0;
  std::uint32_t max_out = 0;
  double avg_in = 0;
  std::uint32_t max_in = 0;
};

struct EdgeTypeStats {
  std::size_t num_edges = 0;
  DegreeStats degrees;  // w.r.t. the edge's source/target vertex types
};

struct GraphStats {
  std::vector<std::size_t> vertex_counts;  // per vertex type id
  std::vector<EdgeTypeStats> edge_stats;   // per edge type id

  static GraphStats collect(const graph::GraphView& graph);

  std::size_t vertices_of(graph::VertexTypeId t) const {
    return vertex_counts.at(t);
  }
};

/// Estimated fraction of a vertex type passing a variable's self
/// conditions, measured on a bounded sample (dynamic analysis: the
/// backend has the data; the front-end catalog does not).
double estimate_selectivity(const exec::ConstraintNetwork& net,
                            const graph::GraphView& graph,
                            const StringPool& pool, int var,
                            std::size_t sample_limit = 256);

/// Estimated candidate cardinality of a variable: Σ_type |type| × sel.
double estimate_cardinality(const exec::ConstraintNetwork& net,
                            const graph::GraphView& graph,
                            const StringPool& pool, const GraphStats& stats,
                            int var);

}  // namespace gems::plan
