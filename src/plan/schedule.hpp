// Multi-statement GraQL scheduling & planning (paper Sec. III-B1): "given
// a multistatement GraQL script Ω = q1..qn, and the explicit
// representation of outputs and inputs for each query via the use of the
// 'into subgraph' and 'into table' expressions, we can build a
// multi-statement dependence representation" allowing independent
// statements to execute in parallel.
//
// DDL and ingest statements act as barriers (they are "atomic with
// respect to subsequent query commands", Sec. II-A2/III).
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "exec/executor.hpp"
#include "graql/ast.hpp"

namespace gems::plan {

/// Read/write sets of one statement over the named-object space (tables,
/// subgraphs, graph element types).
struct StatementIo {
  std::vector<std::string> reads;
  std::vector<std::string> writes;
  bool barrier = false;  // DDL / ingest: serializes with everything
};

StatementIo analyze_io(const graql::Statement& stmt);

/// Parallel execution levels: statements within a level have no
/// dependencies on each other; level i+1 may depend on levels <= i.
/// Statement order within a level preserves script order.
struct Schedule {
  std::vector<std::vector<std::size_t>> levels;

  std::size_t num_statements() const {
    std::size_t n = 0;
    for (const auto& l : levels) n += l.size();
    return n;
  }
  std::size_t max_width() const {
    std::size_t w = 0;
    for (const auto& l : levels) w = std::max(w, l.size());
    return w;
  }
};

/// Builds the dependence schedule. RAW, WAR and WAW conflicts all order
/// statements; barriers get singleton levels.
Schedule build_schedule(const graql::Script& script);

/// True when no statement of the script is a DDL/ingest barrier — such
/// scripts never mutate the shared database state (their `into` results
/// are script-local until committed) and may execute concurrently under
/// shared access (see server::AccessGuard). The classification reuses
/// analyze_io so it cannot drift from the scheduler's barrier notion.
bool script_is_read_only(const graql::Script& script);

/// Executes a script per `schedule`. When `pool` is non-null, statements
/// in the same level run concurrently (their `into` results are committed
/// in script order after the level completes); otherwise execution is
/// serial but still level-ordered.
Result<std::vector<exec::StatementResult>> run_scheduled(
    const graql::Script& script, const Schedule& schedule,
    exec::ExecContext& ctx, ThreadPool* pool);

/// Shared-access variant of run_scheduled for read-only scripts (the
/// caller must have classified the script with script_is_read_only): the
/// context is never mutated; `into` results are staged in `overlay`
/// (later statements resolve names overlay-first, preserving serial
/// semantics) for the caller to publish under exclusive access. `params`
/// are the script's own bindings — they never touch ctx.params, so many
/// scripts with different params can share one context concurrently.
Result<std::vector<exec::StatementResult>> run_scheduled_shared(
    const graql::Script& script, const Schedule& schedule,
    const exec::ExecContext& ctx, const relational::ParamMap& params,
    exec::CatalogOverlay& overlay, ThreadPool* pool);

}  // namespace gems::plan
