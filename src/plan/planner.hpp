// Dynamic query planning (paper Sec. III-B): "with the underlying
// knowledge of the existence of bidirectional edge indices, we can
// formulate path query planning as a series of decisions on which order to
// traverse the edge indices indicated by the query."
//
// The planner picks a pivot variable (lowest estimated cardinality) and a
// constraint propagation/enumeration order that expands outward from the
// pivot — the non-lexical execution order the reverse indices make
// possible. bench_planner_ablation compares this against forced
// lexical-forward execution.
#pragma once

#include "common/status.hpp"
#include "exec/network.hpp"
#include "plan/stats.hpp"

namespace gems::plan {

struct PathPlan {
  int root_var = 0;
  /// Constraint visit order for the matcher's first propagation pass:
  /// indices into the combined [edges | groups | set_eqs] space.
  std::vector<int> constraint_order;
  double estimated_root_cardinality = 0;
};

/// Statistics-driven plan: pivot at the most selective variable, BFS
/// outward.
PathPlan plan_network(const exec::ConstraintNetwork& net,
                      const graph::GraphView& graph, const StringPool& pool,
                      const GraphStats& stats);

/// Baseline plan: lexical order, pivot at the first step (what a system
/// without reverse indices or statistics would do).
PathPlan lexical_plan(const exec::ConstraintNetwork& net);

}  // namespace gems::plan
