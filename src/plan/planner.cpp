#include "plan/planner.hpp"

#include <algorithm>
#include <limits>

namespace gems::plan {

using exec::ConstraintNetwork;

PathPlan plan_network(const ConstraintNetwork& net,
                      const graph::GraphView& graph, const StringPool& pool,
                      const GraphStats& stats) {
  PathPlan plan;
  if (net.num_vars() == 0) return plan;

  // Pivot: the variable with the smallest estimated candidate set.
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t v = 0; v < net.num_vars(); ++v) {
    const double card =
        estimate_cardinality(net, graph, pool, stats, static_cast<int>(v));
    if (card < best) {
      best = card;
      plan.root_var = static_cast<int>(v);
    }
  }
  plan.estimated_root_cardinality = best;

  // Constraint order: BFS outward from the pivot so the first propagation
  // pass pushes the pivot's selectivity through the whole query before
  // any full-extent work happens.
  const std::size_t n_constraints =
      net.edges.size() + net.groups.size() + net.set_eqs.size();
  std::vector<bool> var_reached(net.num_vars(), false);
  std::vector<bool> used(n_constraints, false);
  var_reached[plan.root_var] = true;

  auto endpoints = [&](std::size_t c) -> std::pair<int, int> {
    if (c < net.edges.size()) {
      return {net.edges[c].left_var, net.edges[c].right_var};
    }
    std::size_t i = c - net.edges.size();
    if (i < net.groups.size()) {
      return {net.groups[i].left_var, net.groups[i].right_var};
    }
    i -= net.groups.size();
    return {net.set_eqs[i].var_a, net.set_eqs[i].var_b};
  };

  while (plan.constraint_order.size() < n_constraints) {
    bool progressed = false;
    for (std::size_t c = 0; c < n_constraints; ++c) {
      if (used[c]) continue;
      const auto [a, b] = endpoints(c);
      if (!var_reached[a] && !var_reached[b]) continue;
      used[c] = true;
      var_reached[a] = true;
      var_reached[b] = true;
      plan.constraint_order.push_back(static_cast<int>(c));
      progressed = true;
    }
    if (!progressed) {
      // Disconnected component: seed it with its cheapest variable.
      for (std::size_t c = 0; c < n_constraints; ++c) {
        if (!used[c]) {
          var_reached[endpoints(c).first] = true;
          break;
        }
      }
    }
  }
  return plan;
}

PathPlan lexical_plan(const ConstraintNetwork& net) {
  PathPlan plan;
  plan.root_var = net.path_vars.empty() || net.path_vars[0].empty()
                      ? 0
                      : net.path_vars[0][0];
  const std::size_t n_constraints =
      net.edges.size() + net.groups.size() + net.set_eqs.size();
  plan.constraint_order.resize(n_constraints);
  for (std::size_t i = 0; i < n_constraints; ++i) {
    plan.constraint_order[i] = static_cast<int>(i);
  }
  return plan;
}

}  // namespace gems::plan
