// Append-only string interning pool.
//
// GEMS stores varchar column data as 32-bit pool ids: equality comparisons
// and hash joins on string keys (the dominant operation in the Berlin
// schema, whose keys are all varchar) become integer operations, and each
// distinct string is stored once regardless of how many rows reference it.
// Ordering comparisons go back through the pool.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/sync.hpp"

namespace gems {

/// Id of an interned string. Dense, starting at 0. kInvalid doubles as the
/// encoding of NULL in varchar columns.
using StringId = std::uint32_t;
inline constexpr StringId kInvalidStringId = 0xffffffffu;

/// Thread-safe append-only interner. Lookup of an existing id is lock-free
/// for the string data itself (deque never relocates), interning takes a
/// mutex (ingest is bandwidth-bound on parsing, not on this lock).
class StringPool {
 public:
  StringPool() = default;

  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  /// Interns `s`, returning its id (existing or new).
  StringId intern(std::string_view s);

  /// Returns the id of `s` if already interned, kInvalidStringId otherwise.
  /// Useful to prove a constant cannot match any row without scanning.
  StringId find(std::string_view s) const;

  /// Returns the string for a valid id. The view stays valid for the pool's
  /// lifetime (storage never relocates).
  std::string_view view(StringId id) const;

  std::size_t size() const;

  /// Total bytes of interned character data (for catalog sizing stats).
  std::size_t byte_size() const;

  /// Calls `fn(id, string)` for every interned string in ascending id
  /// order, under one lock acquisition. The enumeration order is
  /// *deterministic* — ids are assigned densely in intern order and the
  /// deque is indexed by id — which is what makes gems::store snapshots
  /// byte-reproducible: two snapshots of the same database state produce
  /// identical pool sections. (Never iterate `index_` for serialization;
  /// unordered_map order is not stable across runs.)
  template <typename Fn>
  void for_each(Fn&& fn) const {
    sync::MutexLock lock(mutex_);
    for (std::size_t id = 0; id < strings_.size(); ++id) {
      fn(static_cast<StringId>(id), std::string_view(strings_[id]));
    }
  }

 private:
  mutable sync::Mutex mutex_;
  std::deque<std::string> strings_ GEMS_GUARDED_BY(mutex_);
  std::unordered_map<std::string_view, StringId> index_
      GEMS_GUARDED_BY(mutex_);
  std::size_t bytes_ GEMS_GUARDED_BY(mutex_) = 0;
};

}  // namespace gems
