// Status / Result error-handling primitives for the GEMS / GraQL library.
//
// The library reports recoverable errors (bad queries, type mismatches,
// malformed input files) through `Status` and `Result<T>` values rather
// than exceptions, so that the hot execution paths stay exception-free and
// error propagation is explicit at every call site. Programming errors
// (broken invariants) use GEMS_CHECK from check.hpp instead.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace gems {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something structurally wrong
  kNotFound,          // named object (table/vertex/edge/column) missing
  kAlreadyExists,     // duplicate definition
  kTypeError,         // static type-checking failure (Sec. III-A)
  kParseError,        // GraQL lexer/parser failure
  kIoError,           // filesystem / CSV ingest failure
  kUnimplemented,     // declared-but-unsupported feature
  kInternal,          // invariant failure surfaced as a status
  kOverloaded,        // admission control rejected (queue full); retryable
  kDeadlineExceeded,  // request deadline/timeout elapsed
  kCancelled,         // request cancelled by the client
  kUnavailable,       // transport failure (connect/send/recv); retryable
};

/// Human-readable name of a status code ("Ok", "ParseError", ...).
std::string_view status_code_name(StatusCode code) noexcept;

/// A success-or-error value. Cheap to copy on success (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return Status(); }

  bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  explicit operator bool() const noexcept { return is_ok(); }

  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "ParseError: unexpected token ')'" or "Ok".
  std::string to_string() const;

  /// Prepends context to the message, returning a new status with the same
  /// code. No-op on OK statuses.
  Status with_context(std::string_view context) const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status invalid_argument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status not_found(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status already_exists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status type_error(std::string msg) {
  return Status(StatusCode::kTypeError, std::move(msg));
}
inline Status parse_error(std::string msg) {
  return Status(StatusCode::kParseError, std::move(msg));
}
inline Status io_error(std::string msg) {
  return Status(StatusCode::kIoError, std::move(msg));
}
inline Status unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status internal_error(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status overloaded(std::string msg) {
  return Status(StatusCode::kOverloaded, std::move(msg));
}
inline Status deadline_exceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
inline Status cancelled(std::string msg) {
  return Status(StatusCode::kCancelled, std::move(msg));
}
inline Status unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}

/// A value of type T or an error Status. Accessing the value of a failed
/// Result is a checked fatal error (see check.hpp).
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // absl::StatusOr, so `return value;` works in functions returning Result.
  Result(T value) : storage_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : storage_(std::move(status)) {}

  bool is_ok() const noexcept { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const noexcept { return is_ok(); }

  /// Returns the error status; OK if the result holds a value.
  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(storage_);
  }

  const T& value() const& { return std::get<T>(storage_); }
  T& value() & { return std::get<T>(storage_); }
  T&& value() && { return std::get<T>(std::move(storage_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> storage_;
};

// Propagates an error status out of the current function.
//
//   GEMS_RETURN_IF_ERROR(do_thing());
#define GEMS_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::gems::Status gems_status_ = (expr);           \
    if (!gems_status_.is_ok()) return gems_status_; \
  } while (0)

// Unwraps a Result<T> into a variable, or propagates its error.
//
//   GEMS_ASSIGN_OR_RETURN(auto table, catalog.find_table("Products"));
#define GEMS_ASSIGN_OR_RETURN(decl, expr)                    \
  GEMS_ASSIGN_OR_RETURN_IMPL_(                               \
      GEMS_STATUS_CONCAT_(gems_result_, __LINE__), decl, expr)

#define GEMS_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.is_ok()) return tmp.status();             \
  decl = std::move(tmp).value()

#define GEMS_STATUS_CONCAT_INNER_(a, b) a##b
#define GEMS_STATUS_CONCAT_(a, b) GEMS_STATUS_CONCAT_INNER_(a, b)

}  // namespace gems
