// Fatal invariant checks. These fire on programming errors, never on bad
// user input (bad input is reported via Status, see status.hpp).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace gems::internal {

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr, const char* msg) {
  std::fprintf(stderr, "GEMS_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace gems::internal

// Always-on invariant check (enabled in release builds too: the cost is
// negligible outside the innermost matcher loops, which use GEMS_DCHECK).
#define GEMS_CHECK(expr)                                            \
  do {                                                              \
    if (!(expr))                                                    \
      ::gems::internal::check_failed(__FILE__, __LINE__, #expr, ""); \
  } while (0)

#define GEMS_CHECK_MSG(expr, msg)                                      \
  do {                                                                 \
    if (!(expr))                                                       \
      ::gems::internal::check_failed(__FILE__, __LINE__, #expr, (msg)); \
  } while (0)

// Debug-only check for hot loops.
#ifdef NDEBUG
#define GEMS_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define GEMS_DCHECK(expr) GEMS_CHECK(expr)
#endif

// Marks unreachable control flow.
#define GEMS_UNREACHABLE(msg) \
  ::gems::internal::check_failed(__FILE__, __LINE__, "unreachable", (msg))
