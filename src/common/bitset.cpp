#include "common/bitset.hpp"

#include <bit>

namespace gems {

void DynamicBitset::resize(std::size_t size, bool value) {
  const std::size_t old_size = size_;
  size_ = size;
  words_.resize((size + 63) / 64, value ? ~0ull : 0ull);
  if (value && old_size < size && old_size % 64 != 0) {
    // Fill the tail of the word that straddled the old boundary.
    words_[old_size >> 6] |= ~((1ull << (old_size % 64)) - 1);
  }
  clear_trailing();
}

void DynamicBitset::set_all() noexcept {
  for (auto& w : words_) w = ~0ull;
  clear_trailing();
}

void DynamicBitset::reset_all() noexcept {
  for (auto& w : words_) w = 0;
}

std::size_t DynamicBitset::count() const noexcept {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool DynamicBitset::any() const noexcept {
  for (auto w : words_) {
    if (w != 0) return true;
  }
  return false;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) noexcept {
  GEMS_DCHECK(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) noexcept {
  GEMS_DCHECK(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

bool DynamicBitset::intersect_changed(const DynamicBitset& other) noexcept {
  GEMS_DCHECK(size_ == other.size_);
  std::uint64_t diff = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t next = words_[i] & other.words_[i];
    diff |= words_[i] ^ next;
    words_[i] = next;
  }
  return diff != 0;
}

DynamicBitset& DynamicBitset::subtract(const DynamicBitset& other) noexcept {
  GEMS_DCHECK(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

void DynamicBitset::append_words(const std::uint64_t* words,
                                 std::size_t nbits) {
  if (nbits == 0) return;
  const std::size_t offset = size_ % 64;
  const std::size_t new_size = size_ + nbits;
  words_.resize((new_size + 63) / 64, 0);
  const std::size_t in_words = (nbits + 63) / 64;
  std::size_t w = size_ >> 6;
  if (offset == 0) {
    for (std::size_t i = 0; i < in_words; ++i) words_[w + i] = words[i];
  } else {
    for (std::size_t i = 0; i < in_words; ++i) {
      const std::uint64_t word = words[i];
      words_[w + i] |= word << offset;
      if (w + i + 1 < words_.size()) {
        words_[w + i + 1] = word >> (64 - offset);
      } else {
        // Spill past the final backing word must be zero (tail-bit
        // contract); anything else would silently drop set bits.
        GEMS_DCHECK((word >> (64 - offset)) == 0);
      }
    }
  }
  size_ = new_size;
  clear_trailing();
}

Result<DynamicBitset> DynamicBitset::from_words(
    std::size_t size, std::vector<std::uint64_t> words) {
  if (words.size() != (size + 63) / 64) {
    return invalid_argument("bitset word count " +
                            std::to_string(words.size()) +
                            " does not match size " + std::to_string(size));
  }
  if (size % 64 != 0 && !words.empty() &&
      (words.back() & ~((1ull << (size % 64)) - 1)) != 0) {
    return invalid_argument("bitset has bits set past its size");
  }
  DynamicBitset out;
  out.size_ = size;
  out.words_ = std::move(words);
  return out;
}

std::vector<std::uint32_t> DynamicBitset::to_indices() const {
  std::vector<std::uint32_t> out;
  out.reserve(count());
  for_each([&](std::size_t i) { out.push_back(static_cast<std::uint32_t>(i)); });
  return out;
}

}  // namespace gems
