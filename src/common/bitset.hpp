// Dynamic bitset used for null bitmaps, selection vectors and frontier
// sets in the path matcher. Word-level operations are the workhorse of the
// Eq. 5 culling fixpoint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/status.hpp"

namespace gems {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t size, bool value = false)
      : size_(size),
        words_((size + 63) / 64, value ? ~0ull : 0ull) {
    clear_trailing();
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  void resize(std::size_t size, bool value = false);

  bool test(std::size_t i) const noexcept {
    GEMS_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(std::size_t i) noexcept {
    GEMS_DCHECK(i < size_);
    words_[i >> 6] |= 1ull << (i & 63);
  }

  void reset(std::size_t i) noexcept {
    GEMS_DCHECK(i < size_);
    words_[i >> 6] &= ~(1ull << (i & 63));
  }

  void assign(std::size_t i, bool value) noexcept {
    if (value) {
      set(i);
    } else {
      reset(i);
    }
  }

  void set_all() noexcept;
  void reset_all() noexcept;

  /// Number of set bits.
  std::size_t count() const noexcept;

  bool any() const noexcept;
  bool none() const noexcept { return !any(); }

  /// In-place intersection/union/difference; sizes must match.
  DynamicBitset& operator&=(const DynamicBitset& other) noexcept;
  DynamicBitset& operator|=(const DynamicBitset& other) noexcept;
  DynamicBitset& subtract(const DynamicBitset& other) noexcept;

  /// In-place AND that reports whether any bit changed, from the word
  /// compare of the same pass. Equivalent to comparing count() before and
  /// after `*this &= other`, without the two extra popcount passes — the
  /// matcher fixpoint runs this on every constraint of every pass.
  bool intersect_changed(const DynamicBitset& other) noexcept;

  bool operator==(const DynamicBitset& other) const noexcept = default;

  /// Calls fn(index) for every set bit in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Number of backing 64-bit words. Word w covers bits [w*64, w*64+64);
  /// the parallel matcher shards frontier iteration on word boundaries so
  /// concurrent writers never touch the same word.
  std::size_t num_words() const noexcept { return words_.size(); }

  /// Calls fn(index) for every set bit whose word index lies in
  /// [word_begin, word_end), ascending. `word_end` is clamped.
  template <typename Fn>
  void for_each_in_range(std::size_t word_begin, std::size_t word_end,
                         Fn&& fn) const {
    if (word_end > words_.size()) word_end = words_.size();
    for (std::size_t w = word_begin; w < word_end; ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Appends `nbits` bits from packed little-endian words (bit i of the
  /// block is bit i%64 of words[i/64]). Bits at or past `nbits` in the
  /// final input word must be zero. The bulk form of nbits single
  /// appends; the vectorized column writers append validity this way.
  void append_words(const std::uint64_t* words, std::size_t nbits);

  /// Indices of all set bits.
  std::vector<std::uint32_t> to_indices() const;

  /// Raw 64-bit words (little-endian bit order within each word), for the
  /// snapshot serializer. Trailing bits past size() are guaranteed zero.
  std::span<const std::uint64_t> words() const noexcept {
    return {words_.data(), words_.size()};
  }

  /// Rebuilds a bitset from serialized words. Rejects a word count that
  /// does not match `size`, or set bits past `size` (corrupt input).
  static Result<DynamicBitset> from_words(std::size_t size,
                                          std::vector<std::uint64_t> words);

 private:
  void clear_trailing() noexcept {
    if (size_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (1ull << (size_ % 64)) - 1;
    }
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace gems
