#include "common/status.hpp"

namespace gems {

std::string_view status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "Ok";
  std::string out(status_code_name(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::with_context(std::string_view context) const {
  if (is_ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message_;
  return Status(code_, std::move(msg));
}

}  // namespace gems
