// Wall-clock timing helpers for benches and the catalog's ingest stats.
#pragma once

#include <chrono>

namespace gems {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }
  double elapsed_us() const { return elapsed_seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gems
