// Wall-clock timing helpers for benches and the catalog's ingest stats.
#pragma once

#include <chrono>
#include <string>
#include <utility>

#include "common/logging.hpp"

namespace gems {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }
  double elapsed_us() const { return elapsed_seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII scope timer: logs "<label>: <elapsed> ms" at Info level on
/// destruction. Used by the ingest and recovery paths so a re-ingest run
/// and a snapshot+WAL recovery of the same data can be compared from the
/// logs alone. `append` lets the scope add detail ("42 rows") before the
/// line is emitted.
class ScopeTimer {
 public:
  explicit ScopeTimer(std::string label) : label_(std::move(label)) {}

  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

  ~ScopeTimer() {
    GEMS_LOG(Info) << label_ << (detail_.empty() ? "" : " (" + detail_ + ")")
                   << ": " << timer_.elapsed_ms() << " ms";
  }

  void append(const std::string& detail) {
    if (!detail_.empty()) detail_ += ", ";
    detail_ += detail;
  }

  double elapsed_ms() const { return timer_.elapsed_ms(); }

 private:
  std::string label_;
  std::string detail_;
  Timer timer_;
};

}  // namespace gems
