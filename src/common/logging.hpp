// Minimal leveled logging. The library is quiet by default (kWarning);
// benches and the shell raise the level for progress reporting.
#pragma once

#include <sstream>
#include <string>

namespace gems {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that will be emitted.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

namespace internal {

/// Collects one log line and emits it to stderr on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace gems

#define GEMS_LOG(level)                                      \
  ::gems::internal::LogLine(::gems::LogLevel::k##level, __FILE__, __LINE__)
