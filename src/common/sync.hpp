// gems::sync — capability-annotated synchronization primitives.
//
// Every lock in the concurrency stack (AccessGuard, epoch manager, wire
// metrics, coordinator routing state, thread pool, ...) is built on the
// wrappers below so Clang's Thread Safety Analysis can prove the lock
// discipline at compile time: which capability guards which field
// (GEMS_GUARDED_BY), which internal helpers may only run with a lock held
// (GEMS_REQUIRES), and the global acquisition order
// (GEMS_ACQUIRED_BEFORE/AFTER, checked under -Wthread-safety-beta). The
// rules used to live in comments — see DESIGN.md §5j for the full
// capability map — and were only caught when TSan happened to execute a
// violating interleaving; now a clang build refuses to compile them.
//
// On non-Clang compilers (and pre-TSA Clang) every macro expands to
// nothing and the wrappers are zero-cost veneers over the std primitives,
// so GCC/TSan/ASan builds are byte-for-byte the old behavior.
//
// Annotation cheat-sheet for new code:
//   sync::Mutex mu_;                      — a capability
//   int x_ GEMS_GUARDED_BY(mu_);          — reads/writes require mu_
//   T* p_ GEMS_PT_GUARDED_BY(mu_);        — *p_ requires mu_ (p_ itself not)
//   void f() GEMS_REQUIRES(mu_);          — caller must hold mu_ (the
//                                           `_locked`/`_unlocked` variants)
//   sync::Mutex a_ GEMS_ACQUIRED_BEFORE(b_); — lock order a_ → b_
//   { sync::MutexLock lock(mu_); ... }    — scoped acquisition
//   cv_.wait(mu_, pred);                  — condvar waits name their mutex
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---- Thread Safety Analysis attribute macros ------------------------------
//
// Gated on the attribute actually existing, not just on __clang__, so old
// clangs and every other compiler compile the annotations away.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define GEMS_TSA(x) __attribute__((x))
#endif
#endif
#ifndef GEMS_TSA
#define GEMS_TSA(x)
#endif

/// Declares a class to be a lockable capability (mutexes, the AccessGuard).
#define GEMS_CAPABILITY(name) GEMS_TSA(capability(name))

/// Declares an RAII class whose constructor acquires and destructor
/// releases a capability.
#define GEMS_SCOPED_CAPABILITY GEMS_TSA(scoped_lockable)

/// Data member readable/writable only while holding the capability.
#define GEMS_GUARDED_BY(x) GEMS_TSA(guarded_by(x))

/// Pointer member whose *pointee* is guarded (the pointer itself is not).
#define GEMS_PT_GUARDED_BY(x) GEMS_TSA(pt_guarded_by(x))

/// Lock-order edges, enforced under -Wthread-safety-beta: acquiring in the
/// opposite order is a compile error.
#define GEMS_ACQUIRED_BEFORE(...) GEMS_TSA(acquired_before(__VA_ARGS__))
#define GEMS_ACQUIRED_AFTER(...) GEMS_TSA(acquired_after(__VA_ARGS__))

/// The caller must already hold the capability (exclusively / shared).
/// This is what turns "only call this with the lock held" comments on
/// `_locked` helpers into compile-checked contracts.
#define GEMS_REQUIRES(...) GEMS_TSA(requires_capability(__VA_ARGS__))
#define GEMS_REQUIRES_SHARED(...) \
  GEMS_TSA(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the capability.
#define GEMS_ACQUIRE(...) GEMS_TSA(acquire_capability(__VA_ARGS__))
#define GEMS_ACQUIRE_SHARED(...) GEMS_TSA(acquire_shared_capability(__VA_ARGS__))
#define GEMS_RELEASE(...) GEMS_TSA(release_capability(__VA_ARGS__))
#define GEMS_RELEASE_SHARED(...) GEMS_TSA(release_shared_capability(__VA_ARGS__))
#define GEMS_RELEASE_GENERIC(...) GEMS_TSA(release_generic_capability(__VA_ARGS__))
#define GEMS_TRY_ACQUIRE(...) GEMS_TSA(try_acquire_capability(__VA_ARGS__))

/// The caller must NOT hold the capability (deadlock prevention for
/// functions that acquire it themselves).
#define GEMS_EXCLUDES(...) GEMS_TSA(locks_excluded(__VA_ARGS__))

/// Tells the analysis the capability is held here (for runtime-verified
/// preconditions the static analysis cannot see, e.g. inside callbacks
/// that only ever run under exclusive access).
#define GEMS_ASSERT_CAPABILITY(x) GEMS_TSA(assert_capability(x))
#define GEMS_ASSERT_SHARED_CAPABILITY(x) GEMS_TSA(assert_shared_capability(x))

/// The function returns a reference to the named capability.
#define GEMS_RETURN_CAPABILITY(x) GEMS_TSA(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment saying why the discipline cannot be expressed.
#define GEMS_NO_THREAD_SAFETY_ANALYSIS GEMS_TSA(no_thread_safety_analysis)

namespace gems::sync {

class CondVar;

/// A std::mutex the analysis can see. Same storage, same codegen; the
/// only addition is the capability attribute and annotated lock/unlock.
class GEMS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GEMS_ACQUIRE() { mutex_.lock(); }
  void unlock() GEMS_RELEASE() { mutex_.unlock(); }
  bool try_lock() GEMS_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// Scoped (RAII) holder on a sync::Mutex — the std::lock_guard /
/// std::unique_lock replacement the analysis understands. Supports the
/// unlock-work-relock shape of worker loops; the destructor releases only
/// if currently held (the documented scoped_lockable pattern).
class GEMS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GEMS_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~MutexLock() GEMS_RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early (to run work outside the critical section).
  void unlock() GEMS_RELEASE() {
    held_ = false;
    mu_.unlock();
  }

  /// Re-acquires after an early unlock().
  void lock() GEMS_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  friend class CondVar;
  Mutex& mu_;
  bool held_;
};

/// Condition variable whose waits name the mutex they release, so the
/// analysis knows the capability is (conceptually) held across the wait.
/// Wraps std::condition_variable on the Mutex's native handle — not
/// condition_variable_any — so the fast native-mutex path is kept.
///
/// Deliberately predicate-free: a predicate lambda is analyzed as its own
/// unannotated function, so `wait(lock, [&]{ return guarded_; })` would
/// defeat GUARDED_BY checking exactly where it matters. Call sites write
/// the standard explicit loop instead, which the analysis fully verifies:
///
///   sync::MutexLock lock(mutex_);
///   while (!guarded_condition_) cv_.wait(mutex_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Caller holds `mu` (typically via a MutexLock in scope); the wait
  /// atomically releases and re-acquires it.
  void wait(Mutex& mu) GEMS_REQUIRES(mu);

  /// Returns false when the wait timed out, true when notified (possibly
  /// spuriously) before `timeout` elapsed.
  template <typename Rep, typename Period>
  bool wait_for(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      GEMS_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mutex_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, timeout);
    native.release();
    return status == std::cv_status::no_timeout;
  }

  /// Returns false when `deadline` passed, true when notified before it.
  template <typename Clock, typename Duration>
  bool wait_until(Mutex& mu,
                  std::chrono::time_point<Clock, Duration> deadline)
      GEMS_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mutex_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status == std::cv_status::no_timeout;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace gems::sync
