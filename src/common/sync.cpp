#include "common/sync.hpp"

namespace gems::sync {

void CondVar::wait(Mutex& mu) {
  // The caller's MutexLock (or annotated lock()) owns the capability; the
  // adopt/release pair below moves the *native* mutex through the wait
  // without ever transferring ownership as far as RAII is concerned.
  std::unique_lock<std::mutex> native(mu.mutex_, std::adopt_lock);
  cv_.wait(native);
  native.release();
}

}  // namespace gems::sync
