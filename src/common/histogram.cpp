#include "common/histogram.hpp"

#include <algorithm>
#include <bit>

namespace gems {

void LatencyHistogram::record(std::uint64_t us) {
  const std::size_t bucket =
      std::min<std::size_t>(std::bit_width(us), kBuckets - 1);
  ++buckets[bucket];
  ++count;
  sum_us += us;
  if (us > max_us) max_us = us;
}

std::uint64_t LatencyHistogram::quantile_us(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the q-th sample, 1-based, then walk the buckets.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(q * count + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // Upper edge of bucket i (samples with bit-width i), capped by the
      // recorded maximum so an outlier-free p99 never exceeds max.
      const std::uint64_t edge =
          i == 0 ? 0 : (i >= 63 ? max_us : (std::uint64_t{1} << i) - 1);
      return std::min(edge, max_us);
    }
  }
  return max_us;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum_us += other.sum_us;
  max_us = std::max(max_us, other.max_us);
}

}  // namespace gems
