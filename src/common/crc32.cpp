#include "common/crc32.hpp"

#include <array>

namespace gems {

namespace {

// Table generated once at startup from the reflected polynomial; a plain
// byte-at-a-time table CRC runs well above disk bandwidth, which is all
// the snapshot/WAL paths need.
std::array<std::uint32_t, 256> make_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() noexcept {
  static const std::array<std::uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t state,
                           std::span<const std::uint8_t> bytes) noexcept {
  const auto& t = table();
  for (const std::uint8_t b : bytes) {
    state = t[(state ^ b) & 0xffu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept {
  return crc32_final(crc32_update(kCrc32Init, bytes));
}

}  // namespace gems
