// Log-scale latency histogram, shared by the wire layer's per-request
// metrics (src/net) and the durability layer's per-operation metrics
// (src/store). Bucket i counts samples whose latency in microseconds has
// bit-width i (i.e. [2^(i-1), 2^i)). 40 buckets cover up to ~12.7 days,
// so nothing ever clips.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace gems {

struct LatencyHistogram {
  static constexpr std::size_t kBuckets = 40;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum_us = 0;
  std::uint64_t max_us = 0;

  void record(std::uint64_t us);

  /// Quantile estimate (q in [0,1]) in microseconds: the upper edge of the
  /// bucket holding the q-th sample. 0 when empty.
  std::uint64_t quantile_us(double q) const;

  double mean_us() const {
    return count == 0 ? 0.0 : static_cast<double>(sum_us) / count;
  }

  /// Merges another histogram into this one.
  void merge(const LatencyHistogram& other);
};

}  // namespace gems
