#include "common/string_pool.hpp"

#include "common/check.hpp"

namespace gems {

StringId StringPool::intern(std::string_view s) {
  sync::MutexLock lock(mutex_);
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  GEMS_CHECK_MSG(strings_.size() < kInvalidStringId,
                 "string pool exhausted 2^32-1 entries");
  strings_.emplace_back(s);
  bytes_ += s.size();
  const StringId id = static_cast<StringId>(strings_.size() - 1);
  // Key the index by a view into the deque-owned string, which never moves.
  index_.emplace(std::string_view(strings_.back()), id);
  return id;
}

StringId StringPool::find(std::string_view s) const {
  sync::MutexLock lock(mutex_);
  auto it = index_.find(s);
  return it == index_.end() ? kInvalidStringId : it->second;
}

std::string_view StringPool::view(StringId id) const {
  sync::MutexLock lock(mutex_);
  GEMS_DCHECK(id < strings_.size());
  return strings_[id];
}

std::size_t StringPool::size() const {
  sync::MutexLock lock(mutex_);
  return strings_.size();
}

std::size_t StringPool::byte_size() const {
  sync::MutexLock lock(mutex_);
  return bytes_;
}

}  // namespace gems
