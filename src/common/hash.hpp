// Hash utilities shared by join operators, vertex-key maps and the
// distributed partitioner.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

namespace gems {

/// Mixes a 64-bit value (finalizer from MurmurHash3); used to spread dense
/// ids before modulo-partitioning across ranks.
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

/// boost-style hash combiner.
inline void hash_combine(std::size_t& seed, std::size_t value) noexcept {
  seed ^= value + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

/// Hash for pairs, usable as std::unordered_map hasher.
struct PairHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const noexcept {
    std::size_t seed = std::hash<A>{}(p.first);
    hash_combine(seed, std::hash<B>{}(p.second));
    return seed;
  }
};

}  // namespace gems
