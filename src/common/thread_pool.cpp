#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "common/check.hpp"

namespace gems {

ThreadPool::ThreadPool(std::size_t num_threads) {
  GEMS_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    sync::MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      sync::MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stop_ was set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t num_chunks = std::min(n, size() * 4);
  const std::size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    futures.push_back(submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

void ThreadPool::parallel_for_ranges(
    std::size_t n, std::size_t num_chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0 || num_chunks == 0) return;
  const std::size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    futures.push_back(submit([c, begin, end, &fn] { fn(c, begin, end); }));
  }
  for (auto& f : futures) f.get();
}

ThreadPool& default_thread_pool() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace gems
