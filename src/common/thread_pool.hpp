// Fixed-size worker pool used for intra-node parallel operators and for the
// multi-statement scheduler (Sec. III-B1). The simulated cluster in
// src/dist uses dedicated per-rank threads instead, because ranks are
// long-lived peers, not tasks.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/sync.hpp"

namespace gems {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future reports completion/exceptions.
  template <typename Fn>
  std::future<void> submit(Fn&& fn) {
    auto task = std::make_shared<std::packaged_task<void()>>(
        std::forward<Fn>(fn));
    std::future<void> future = task->get_future();
    {
      sync::MutexLock lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Work is chunked to keep per-task overhead low.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Runs fn(chunk, begin, end) for `num_chunks` contiguous ranges that
  /// partition [0, n), and waits for completion. Chunk boundaries are a
  /// deterministic function of (n, num_chunks) alone, so callers can give
  /// every chunk a private output shard and merge in chunk order — the
  /// shape behind the matcher's sharded frontier expansion. Trailing
  /// chunks may be empty (fn is not called for them).
  void parallel_for_ranges(
      std::size_t n, std::size_t num_chunks,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  sync::Mutex mutex_;
  sync::CondVar cv_;
  std::deque<std::function<void()>> queue_ GEMS_GUARDED_BY(mutex_);
  bool stop_ GEMS_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

/// Pool sized to the hardware, shared by operators that do not need
/// isolation. Lazily constructed.
ThreadPool& default_thread_pool();

}  // namespace gems
