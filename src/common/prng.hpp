// Deterministic pseudo-random number generation for data generators and
// property tests. All GEMS experiments are seed-reproducible.
#pragma once

#include <cstdint>

namespace gems {

/// SplitMix64 — used to expand a single seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — fast general-purpose generator for workload synthesis.
/// Satisfies UniformRandomBitGenerator so it plugs into <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) — Lemire's multiply-shift reduction
  /// (slightly biased for huge bounds; fine for workload generation).
  std::uint64_t below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool chance(double p) noexcept { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace gems
