#include "common/logging.hpp"

#include <atomic>
#include <cstdio>

#include "common/sync.hpp"

namespace gems {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

// Serializes whole lines so concurrent ranks don't interleave mid-line.
sync::Mutex& emit_mutex() {
  static sync::Mutex m;
  return m;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

namespace internal {

LogLine::LogLine(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    // Keep only the basename to keep lines short.
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << level_tag(level) << " " << base << ":" << line << "] ";
  }
}

LogLine::~LogLine() {
  if (!enabled_) return;
  sync::MutexLock lock(emit_mutex());
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal
}  // namespace gems
