// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
// checksum of every on-disk artifact in gems::store (snapshot header/body,
// WAL record frames). A torn or bit-flipped write is detected by the
// checksum before any length field is trusted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace gems {

/// One-shot CRC-32 of `bytes`.
std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept;

/// Incremental form: feed `crc32_update` a running value seeded with
/// `kCrc32Init`, then finalize with `crc32_final`. Equivalent to the
/// one-shot form over the concatenated inputs.
inline constexpr std::uint32_t kCrc32Init = 0xffffffffu;

std::uint32_t crc32_update(std::uint32_t state,
                           std::span<const std::uint8_t> bytes) noexcept;

inline std::uint32_t crc32_final(std::uint32_t state) noexcept {
  return state ^ 0xffffffffu;
}

}  // namespace gems
