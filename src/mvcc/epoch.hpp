// gems::mvcc — epoch-versioned database snapshots (ROADMAP item 1).
//
// An epoch is an immutable copy of the execution context (catalog, CSR
// graph, subgraphs — all column/type payloads shared by shared_ptr, so a
// snapshot is a few map copies, not a data copy). Writers mutate the live
// context under exclusive access as before, then *publish*: the manager
// snapshots the new state and swaps the current-epoch pointer under a
// brief mutex. Readers, checkpoints and cluster state syncs *pin* an
// epoch (RAII EpochPin) and execute against it with zero further
// coordination — a writer can publish ten epochs while a long closure
// query runs; the reader keeps its pinned state alive and byte-stable.
//
// Lifecycle: build → publish → pin → retire → free. A superseded epoch
// with outstanding pins moves to the retired list and is freed only when
// its pin count drains to zero (deferred retirement — no use-after-free
// for a reader pinned across a publish). Memory bound: at most one epoch
// per concurrently pinned reader generation, each sharing all unmodified
// payloads with its neighbors via shared_ptr.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/sync.hpp"
#include "exec/executor.hpp"
#include "mvcc/metrics.hpp"
#include "plan/stats.hpp"

namespace gems::mvcc {

class EpochManager;

/// One immutable published database state. The context is fully formed
/// (planner installed, mutation hooks stripped) — the shared execution
/// path can run against it directly.
class GraphEpoch {
 public:
  std::uint64_t id() const noexcept { return id_; }
  const exec::ExecContext& ctx() const noexcept { return ctx_; }

  /// Planner statistics over this epoch's graph, computed lazily on first
  /// use and memoized for the epoch's lifetime (epochs are immutable, so
  /// the snapshot can never go stale). Publication adopts the previous
  /// epoch's stats when the graph is unchanged.
  std::shared_ptr<const plan::GraphStats> stats() const;

 private:
  friend class EpochManager;
  GraphEpoch() = default;

  std::uint64_t id_ = 0;
  exec::ExecContext ctx_;

  mutable sync::Mutex stats_mutex_;
  mutable std::shared_ptr<const plan::GraphStats> stats_
      GEMS_GUARDED_BY(stats_mutex_);
};

using EpochPtr = std::shared_ptr<const GraphEpoch>;

/// RAII pin on one epoch: the epoch (and everything it references) stays
/// alive and immutable until the pin is dropped. Move-only.
class EpochPin {
 public:
  EpochPin() = default;
  EpochPin(EpochPin&& other) noexcept { swap(other); }
  EpochPin& operator=(EpochPin&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }
  EpochPin(const EpochPin&) = delete;
  EpochPin& operator=(const EpochPin&) = delete;
  ~EpochPin() { release(); }

  bool valid() const noexcept { return epoch_ != nullptr; }
  const GraphEpoch& epoch() const noexcept { return *epoch_; }
  const exec::ExecContext& ctx() const noexcept { return epoch_->ctx(); }

  /// Drops the pin early (destructor otherwise).
  void release();

 private:
  friend class EpochManager;
  EpochPin(EpochManager* manager, std::shared_ptr<GraphEpoch> epoch,
           std::uint64_t pin_id)
      : manager_(manager), epoch_(std::move(epoch)), pin_id_(pin_id) {}
  void swap(EpochPin& other) noexcept {
    std::swap(manager_, other.manager_);
    std::swap(epoch_, other.epoch_);
    std::swap(pin_id_, other.pin_id_);
  }

  EpochManager* manager_ = nullptr;
  std::shared_ptr<GraphEpoch> epoch_;
  std::uint64_t pin_id_ = 0;
};

class EpochManager {
 public:
  /// Installed by the server layer: given a freshly snapshotted epoch,
  /// returns the planner hook its context should carry (capturing the
  /// epoch's own graph and memoized stats). May be empty (no planner).
  using PlannerFactory = std::function<
      std::function<exec::NetworkPlan(const exec::ConstraintNetwork&)>(
          const GraphEpoch&)>;

  EpochManager() = default;

  void set_planner_factory(PlannerFactory factory) {
    sync::MutexLock lock(mutex_);
    planner_factory_ = std::move(factory);
  }

  /// Publishes a snapshot of `base` as the new current epoch. The caller
  /// must hold the database's exclusive access (the brief exclusive
  /// publication window) so `base` is quiescent during the copy. The
  /// superseded epoch retires if pinned, frees otherwise. Returns the new
  /// epoch's id.
  std::uint64_t publish(const exec::ExecContext& base);

  /// Pins the current epoch. Never blocks on writers (the manager mutex
  /// is held for pointer bookkeeping only).
  EpochPin pin();

  /// True once publish() has been called at least once.
  bool has_epoch() const;

  /// Ingest maintenance accounting (wired to ExecContext's
  /// on_graph_maintenance hook).
  void record_maintenance(bool delta, std::uint64_t ns);

  EpochMetricsSnapshot snapshot() const;

 private:
  friend class EpochPin;
  void unpin(const GraphEpoch* epoch, std::uint64_t pin_id);
  /// Frees retired epochs whose pins drained. The REQUIRES annotation is
  /// the compiler-checked version of the old "call with mutex_ held"
  /// comment: forgetting the lock is now a clang error, not a race.
  void drain_locked() GEMS_REQUIRES(mutex_);
  /// Outstanding pins for `epoch` (absent entry = zero).
  std::uint64_t pin_count_locked(const GraphEpoch* epoch) const
      GEMS_REQUIRES(mutex_);

  mutable sync::Mutex mutex_;
  PlannerFactory planner_factory_ GEMS_GUARDED_BY(mutex_);
  std::shared_ptr<GraphEpoch> current_ GEMS_GUARDED_BY(mutex_);
  std::vector<std::shared_ptr<GraphEpoch>> retired_ GEMS_GUARDED_BY(mutex_);

  std::uint64_t next_epoch_id_ GEMS_GUARDED_BY(mutex_) = 0;
  std::uint64_t next_pin_id_ GEMS_GUARDED_BY(mutex_) = 0;
  // pin id -> start time; ordered, so begin() is the oldest pin.
  std::map<std::uint64_t, std::chrono::steady_clock::time_point>
      outstanding_ GEMS_GUARDED_BY(mutex_);
  // Per-epoch outstanding pin counts. Lives here (not in GraphEpoch)
  // so the counter and the mutex that guards it share one owner — the
  // old in-epoch counter was "guarded by the owning manager's mutex",
  // a relationship the analysis cannot express or enforce.
  std::unordered_map<const GraphEpoch*, std::uint64_t> pin_counts_
      GEMS_GUARDED_BY(mutex_);

  std::uint64_t published_ GEMS_GUARDED_BY(mutex_) = 0;
  std::uint64_t retired_count_ GEMS_GUARDED_BY(mutex_) = 0;
  std::uint64_t freed_ GEMS_GUARDED_BY(mutex_) = 0;
  std::uint64_t pins_taken_ GEMS_GUARDED_BY(mutex_) = 0;
  std::uint64_t peak_pinned_ GEMS_GUARDED_BY(mutex_) = 0;
  std::uint64_t delta_ingests_ GEMS_GUARDED_BY(mutex_) = 0;
  std::uint64_t full_rebuilds_ GEMS_GUARDED_BY(mutex_) = 0;
  std::uint64_t delta_ns_ GEMS_GUARDED_BY(mutex_) = 0;
  std::uint64_t rebuild_ns_ GEMS_GUARDED_BY(mutex_) = 0;
};

}  // namespace gems::mvcc
