#include "mvcc/metrics.hpp"

namespace gems::mvcc {

std::string EpochMetricsSnapshot::to_string() const {
  std::string out;
  out += "epochs:   published=" + std::to_string(published) +
         " retired=" + std::to_string(retired) +
         " freed=" + std::to_string(freed) +
         " live=" + std::to_string(live) +
         " current=" + std::to_string(current_epoch) + "\n";
  out += "pins:     taken=" + std::to_string(pins_taken) +
         " outstanding=" + std::to_string(pinned_readers) +
         " peak=" + std::to_string(peak_pinned_readers) +
         " oldest_age_us=" + std::to_string(oldest_pin_age_us) + "\n";
  out += "ingest:   delta=" + std::to_string(delta_ingests) +
         " rebuild=" + std::to_string(full_rebuilds) +
         " delta_ns=" + std::to_string(delta_build_ns) +
         " rebuild_ns=" + std::to_string(rebuild_ns);
  return out;
}

}  // namespace gems::mvcc
