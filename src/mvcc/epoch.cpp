#include "mvcc/epoch.hpp"

#include <utility>

namespace gems::mvcc {

std::shared_ptr<const plan::GraphStats> GraphEpoch::stats() const {
  sync::MutexLock lock(stats_mutex_);
  if (!stats_) {
    stats_ = std::make_shared<const plan::GraphStats>(
        plan::GraphStats::collect(ctx_.graph));
  }
  return stats_;
}

void EpochPin::release() {
  if (manager_ != nullptr) {
    manager_->unpin(epoch_.get(), pin_id_);
    manager_ = nullptr;
  }
  epoch_.reset();
}

std::uint64_t EpochManager::publish(const exec::ExecContext& base) {
  auto epoch = std::shared_ptr<GraphEpoch>(new GraphEpoch());
  epoch->ctx_ = base;
  // The snapshot is a pure read view: no durability hooks, no staging
  // flags, no leftover script parameters. Graph payloads (tables, types,
  // subgraph bitsets) are all shared_ptr — the copy is shallow.
  epoch->ctx_.on_mutation = nullptr;
  epoch->ctx_.on_graph_maintenance = nullptr;
  epoch->ctx_.defer_catalog_writes = false;
  epoch->ctx_.params.clear();

  sync::MutexLock lock(mutex_);
  epoch->id_ = ++next_epoch_id_;
  if (planner_factory_) {
    // The closure captures the epoch raw — it is stored inside the epoch
    // itself, so it can never outlive what it points at (and holding a
    // shared_ptr instead would cycle).
    epoch->ctx_.planner = planner_factory_(*epoch);
  } else {
    epoch->ctx_.planner = nullptr;
  }
  if (current_ && current_->ctx_.graph_version == base.graph_version) {
    // Same graph (e.g. an overlay-only publication): adopt the previous
    // epoch's memoized planner stats instead of recollecting. Both stats
    // mutexes are taken (the new epoch's is private and uncontended, but
    // the guarded write still goes through its capability).
    sync::MutexLock stats_lock(current_->stats_mutex_);
    sync::MutexLock new_stats_lock(epoch->stats_mutex_);
    epoch->stats_ = current_->stats_;
  }
  if (current_) {
    if (pin_count_locked(current_.get()) > 0) {
      retired_.push_back(std::move(current_));
      ++retired_count_;
    } else {
      ++freed_;
    }
  }
  current_ = std::move(epoch);
  ++published_;
  drain_locked();
  return current_->id_;
}

EpochPin EpochManager::pin() {
  sync::MutexLock lock(mutex_);
  GEMS_CHECK(current_ != nullptr);
  ++pins_taken_;
  ++pin_counts_[current_.get()];
  const std::uint64_t pin_id = ++next_pin_id_;
  outstanding_.emplace(pin_id, std::chrono::steady_clock::now());
  peak_pinned_ = std::max<std::uint64_t>(peak_pinned_, outstanding_.size());
  return EpochPin(this, current_, pin_id);
}

bool EpochManager::has_epoch() const {
  sync::MutexLock lock(mutex_);
  return current_ != nullptr;
}

void EpochManager::unpin(const GraphEpoch* epoch, std::uint64_t pin_id) {
  sync::MutexLock lock(mutex_);
  outstanding_.erase(pin_id);
  auto it = pin_counts_.find(epoch);
  if (it != pin_counts_.end() && it->second > 0 && --it->second == 0) {
    pin_counts_.erase(it);
  }
  drain_locked();
}

std::uint64_t EpochManager::pin_count_locked(const GraphEpoch* epoch) const {
  auto it = pin_counts_.find(epoch);
  return it == pin_counts_.end() ? 0 : it->second;
}

void EpochManager::drain_locked() {
  for (auto it = retired_.begin(); it != retired_.end();) {
    if (pin_count_locked(it->get()) == 0) {
      it = retired_.erase(it);
      ++freed_;
    } else {
      ++it;
    }
  }
}

void EpochManager::record_maintenance(bool delta, std::uint64_t ns) {
  sync::MutexLock lock(mutex_);
  if (delta) {
    ++delta_ingests_;
    delta_ns_ += ns;
  } else {
    ++full_rebuilds_;
    rebuild_ns_ += ns;
  }
}

EpochMetricsSnapshot EpochManager::snapshot() const {
  sync::MutexLock lock(mutex_);
  EpochMetricsSnapshot snap;
  snap.published = published_;
  snap.retired = retired_count_;
  snap.freed = freed_;
  snap.live = (current_ != nullptr ? 1 : 0) + retired_.size();
  snap.pins_taken = pins_taken_;
  snap.pinned_readers = outstanding_.size();
  snap.peak_pinned_readers = peak_pinned_;
  if (!outstanding_.empty()) {
    snap.oldest_pin_age_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - outstanding_.begin()->second)
            .count());
  }
  snap.delta_ingests = delta_ingests_;
  snap.full_rebuilds = full_rebuilds_;
  snap.delta_build_ns = delta_ns_;
  snap.rebuild_ns = rebuild_ns_;
  snap.current_epoch = current_ != nullptr ? current_->id_ : 0;
  return snap;
}

}  // namespace gems::mvcc
