// Epoch lifecycle counters (gems::mvcc), exposed through
// Database::epoch_stats(), the kStats wire tail and the shell's
// \epochstats. Small standalone header so src/net can embed a snapshot in
// its MetricsSnapshot without pulling in the epoch machinery.
#pragma once

#include <cstdint>
#include <string>

namespace gems::mvcc {

struct EpochMetricsSnapshot {
  std::uint64_t published = 0;       // epochs made current
  std::uint64_t retired = 0;         // superseded while still pinned
  std::uint64_t freed = 0;           // retired epochs whose pins drained
  std::uint64_t live = 0;            // current + still-pinned retired
  std::uint64_t pins_taken = 0;      // EpochPins ever handed out
  std::uint64_t pinned_readers = 0;  // pins currently outstanding
  std::uint64_t peak_pinned_readers = 0;
  std::uint64_t oldest_pin_age_us = 0;  // age of the longest-held pin
  std::uint64_t delta_ingests = 0;      // incremental CSR maintenance runs
  std::uint64_t full_rebuilds = 0;      // fallback full graph rebuilds
  std::uint64_t delta_build_ns = 0;     // total ns in delta maintenance
  std::uint64_t rebuild_ns = 0;         // total ns in fallback rebuilds
  std::uint64_t current_epoch = 0;      // id of the current epoch

  bool empty() const {
    return published == 0 && pins_taken == 0 && delta_ingests == 0 &&
           full_rebuilds == 0;
  }

  /// Multi-line human-readable rendering (shell \epochstats).
  std::string to_string() const;
};

}  // namespace gems::mvcc
