#include "exec/subgraph.hpp"

namespace gems::exec {

DynamicBitset& Subgraph::vertices(graph::VertexTypeId type,
                                  std::size_t size) {
  auto it = vertices_.find(type);
  if (it == vertices_.end()) {
    it = vertices_.emplace(type, DynamicBitset(size)).first;
  }
  GEMS_CHECK(it->second.size() == size);
  return it->second;
}

DynamicBitset& Subgraph::edges(graph::EdgeTypeId type, std::size_t size) {
  auto it = edges_.find(type);
  if (it == edges_.end()) {
    it = edges_.emplace(type, DynamicBitset(size)).first;
  }
  GEMS_CHECK(it->second.size() == size);
  return it->second;
}

const DynamicBitset* Subgraph::vertices(graph::VertexTypeId type) const {
  auto it = vertices_.find(type);
  return it == vertices_.end() ? nullptr : &it->second;
}

const DynamicBitset* Subgraph::edges(graph::EdgeTypeId type) const {
  auto it = edges_.find(type);
  return it == edges_.end() ? nullptr : &it->second;
}

bool Subgraph::contains(graph::VertexRef v) const {
  const DynamicBitset* set = vertices(v.type);
  return set != nullptr && v.index < set->size() && set->test(v.index);
}

bool Subgraph::contains(graph::EdgeRef e) const {
  const DynamicBitset* set = edges(e.type);
  return set != nullptr && e.index < set->size() && set->test(e.index);
}

std::size_t Subgraph::num_vertices() const {
  std::size_t n = 0;
  for (const auto& [type, set] : vertices_) n += set.count();
  return n;
}

std::size_t Subgraph::num_edges() const {
  std::size_t n = 0;
  for (const auto& [type, set] : edges_) n += set.count();
  return n;
}

void Subgraph::merge(const Subgraph& other) {
  for (const auto& [type, set] : other.vertices_) {
    auto it = vertices_.find(type);
    if (it == vertices_.end()) {
      vertices_.emplace(type, set);
    } else {
      it->second |= set;
    }
  }
  for (const auto& [type, set] : other.edges_) {
    auto it = edges_.find(type);
    if (it == edges_.end()) {
      edges_.emplace(type, set);
    } else {
      it->second |= set;
    }
  }
}

SubgraphPtr Subgraph::resized_for(const graph::GraphView& graph) const {
  auto out = std::make_shared<Subgraph>(name_);
  for (const auto& [type, set] : vertices_) {
    DynamicBitset grown = set;
    if (type < graph.num_vertex_types()) {
      grown.resize(graph.vertex_type(type).num_vertices(), false);
    }
    out->vertices_.emplace(type, std::move(grown));
  }
  for (const auto& [type, set] : edges_) {
    DynamicBitset grown = set;
    if (type < graph.num_edge_types()) {
      grown.resize(graph.edge_type(type).num_edges(), false);
    }
    out->edges_.emplace(type, std::move(grown));
  }
  return out;
}

std::string Subgraph::summary() const {
  return name_ + ": " + std::to_string(num_vertices()) + " vertices, " +
         std::to_string(num_edges()) + " edges";
}

}  // namespace gems::exec
