#include "exec/enumerate.hpp"

#include <map>

#include "common/check.hpp"
#include "relational/eval.hpp"

namespace gems::exec {

namespace {

using graph::CsrIndex;
using graph::EdgeRef;
using graph::EdgeType;
using graph::EdgeTypeId;
using graph::GraphView;
using graph::VertexIndex;
using graph::VertexRef;
using graph::VertexType;
using graph::VertexTypeId;
using relational::RowCursor;

enum class OpKind : std::uint8_t {
  kStartVar,    // iterate a variable's domain
  kExtendEdge,  // one endpoint assigned: walk adjacency
  kCheckEdge,   // both assigned: find connecting edges
  kExtendGroup,
  kCheckGroup,
};

struct EnumOp {
  OpKind kind;
  int index;              // var index (kStartVar) or constraint index
  bool from_left = true;  // extension direction
};

/// Builds the DFS schedule: start at `root`, repeatedly attach the first
/// unprocessed constraint touching an assigned variable; open new
/// components with kStartVar.
std::vector<EnumOp> build_plan(const ConstraintNetwork& net, int root) {
  std::vector<EnumOp> ops;
  std::vector<bool> var_assigned(net.num_vars(), false);
  std::vector<bool> edge_done(net.edges.size(), false);
  std::vector<bool> group_done(net.groups.size(), false);

  auto start_var = [&](int v) {
    ops.push_back({OpKind::kStartVar, v, true});
    var_assigned[v] = true;
  };
  if (net.num_vars() == 0) return ops;
  start_var(root >= 0 && root < static_cast<int>(net.num_vars()) ? root : 0);

  const std::size_t total = net.edges.size() + net.groups.size();
  std::size_t done = 0;
  while (done < total) {
    bool progressed = false;
    for (std::size_t c = 0; c < net.edges.size(); ++c) {
      if (edge_done[c]) continue;
      const EdgeConstraint& con = net.edges[c];
      const bool l = var_assigned[con.left_var];
      const bool r = var_assigned[con.right_var];
      if (!l && !r) continue;
      if (l && r) {
        ops.push_back({OpKind::kCheckEdge, static_cast<int>(c), true});
      } else {
        ops.push_back({OpKind::kExtendEdge, static_cast<int>(c), l});
        var_assigned[l ? con.right_var : con.left_var] = true;
      }
      edge_done[c] = true;
      ++done;
      progressed = true;
    }
    for (std::size_t g = 0; g < net.groups.size(); ++g) {
      if (group_done[g]) continue;
      const GroupConstraint& con = net.groups[g];
      const bool l = var_assigned[con.left_var];
      const bool r = var_assigned[con.right_var];
      if (!l && !r) continue;
      if (l && r) {
        ops.push_back({OpKind::kCheckGroup, static_cast<int>(g), true});
      } else {
        ops.push_back({OpKind::kExtendGroup, static_cast<int>(g), l});
        var_assigned[l ? con.right_var : con.left_var] = true;
      }
      group_done[g] = true;
      ++done;
      progressed = true;
    }
    if (!progressed) {
      // Disconnected component: anchor its first variable.
      for (std::size_t c = 0; c < net.edges.size(); ++c) {
        if (!edge_done[c]) {
          start_var(net.edges[c].left_var);
          break;
        }
      }
      for (std::size_t g = 0; g < net.groups.size(); ++g) {
        if (!group_done[g] && !var_assigned[net.groups[g].left_var]) {
          bool anchored = false;
          for (std::size_t c = 0; c < net.edges.size(); ++c) {
            if (!edge_done[c]) {
              anchored = true;
              break;
            }
          }
          if (!anchored) start_var(net.groups[g].left_var);
          break;
        }
      }
    }
  }
  // Variables not touched by any constraint.
  for (std::size_t v = 0; v < net.num_vars(); ++v) {
    if (!var_assigned[v]) start_var(static_cast<int>(v));
  }
  return ops;
}

class Enumerator {
 public:
  Enumerator(const ConstraintNetwork& net, const GraphView& graph,
             const StringPool& pool, const MatchResult& match,
             const EnumOptions& options, const EmitFn& emit)
      : net_(net),
        graph_(graph),
        pool_(pool),
        match_(match),
        options_(options),
        emit_(emit),
        plan_(build_plan(net, options.root_var)),
        vertices_(net.num_vars()),
        edges_(net.edges.size()) {
    cursors_.resize(kEdgeSourceBase + net.edges.size());
  }

  Result<EnumStats> run() {
    if (!net_.set_eqs.empty()) {
      // Set-label references are set-level constraints already folded
      // into the domains; nothing per-assignment to do.
    }
    GEMS_RETURN_IF_ERROR(dfs(0));
    return stats_;
  }

 private:
  Status dfs(std::size_t op_index) {
    if (stop_) return Status::ok();
    if (op_index == plan_.size()) return leaf();
    const EnumOp& op = plan_[op_index];
    switch (op.kind) {
      case OpKind::kStartVar:
        return op_start_var(op, op_index);
      case OpKind::kExtendEdge:
        return op_extend_edge(op, op_index);
      case OpKind::kCheckEdge:
        return op_check_edge(op, op_index);
      case OpKind::kExtendGroup:
        return op_extend_group(op, op_index);
      case OpKind::kCheckGroup:
        return op_check_group(op, op_index);
    }
    GEMS_UNREACHABLE("bad op kind");
  }

  Status leaf() {
    // Eq. 12 type bindings: label occurrences on type-matching steps must
    // agree on their matched type.
    for (const TypeEqConstraint& te : net_.type_eqs) {
      if (vertices_[te.var_a].type != vertices_[te.var_b].type) {
        return Status::ok();
      }
    }
    // Cross predicates: all variables are assigned now.
    for (const CrossPred& pred : net_.cross_preds) {
      if (!relational::eval_predicate(*pred.pred, cursors_, pool_)) {
        return Status::ok();
      }
    }
    ++stats_.emitted;
    if (!emit_(vertices_, edges_)) {
      stop_ = true;
      return Status::ok();
    }
    if (options_.max_rows != 0 && stats_.emitted >= options_.max_rows) {
      stats_.truncated = true;
      stop_ = true;
    }
    return Status::ok();
  }

  void bind_vertex(int var, VertexRef ref) {
    vertices_[var] = ref;
    const VertexType& vt = graph_.vertex_type(ref.type);
    cursors_[var] = {&vt.source(), vt.representative_row(ref.index)};
  }

  void bind_edge(int con, EdgeRef ref) {
    edges_[con] = ref;
    const EdgeType& et = graph_.edge_type(ref.type);
    if (et.attr_table() != nullptr) {
      cursors_[kEdgeSourceBase + con] = {et.attr_table(), ref.index};
    }
  }

  Status op_start_var(const EnumOp& op, std::size_t op_index) {
    const Domain& domain = match_.domains[op.index];
    for (const auto& [type, bits] : domain.sets) {
      const auto indices = bits.to_indices();
      for (const VertexIndex v : indices) {
        bind_vertex(op.index, VertexRef{type, v});
        GEMS_RETURN_IF_ERROR(dfs(op_index + 1));
        if (stop_) return Status::ok();
      }
    }
    return Status::ok();
  }

  Status op_extend_edge(const EnumOp& op, std::size_t op_index) {
    const EdgeConstraint& con = net_.edges[op.index];
    const int from_var = op.from_left ? con.left_var : con.right_var;
    const int to_var = op.from_left ? con.right_var : con.left_var;
    const VertexRef from = vertices_[from_var];
    const auto& matched = match_.matched_edges[op.index];

    for (const EdgeMove& move : con.moves) {
      const EdgeType& et = graph_.edge_type(move.type);
      // move.forward: the edge runs left->right. Walking from the left
      // uses the forward CSR (keyed by edge source).
      const bool walk_forward = move.forward == op.from_left;
      const VertexTypeId from_type =
          walk_forward ? et.source_type() : et.target_type();
      const VertexTypeId to_type =
          walk_forward ? et.target_type() : et.source_type();
      if (from.type != from_type) continue;
      auto matched_it = matched.find(move.type);
      if (matched_it == matched.end()) continue;
      const CsrIndex& index = walk_forward ? et.forward() : et.reverse();
      const auto neighbors = index.neighbors(from.index);
      const auto edge_ids = index.edges(from.index);
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        ++stats_.extensions;
        if (!matched_it->second.test(edge_ids[i])) continue;
        bind_vertex(to_var, VertexRef{to_type, neighbors[i]});
        bind_edge(op.index, EdgeRef{move.type, edge_ids[i]});
        GEMS_RETURN_IF_ERROR(dfs(op_index + 1));
        if (stop_) return Status::ok();
      }
    }
    return Status::ok();
  }

  Status op_check_edge(const EnumOp& op, std::size_t op_index) {
    const EdgeConstraint& con = net_.edges[op.index];
    const VertexRef left = vertices_[con.left_var];
    const VertexRef right = vertices_[con.right_var];
    const auto& matched = match_.matched_edges[op.index];

    for (const EdgeMove& move : con.moves) {
      const EdgeType& et = graph_.edge_type(move.type);
      const VertexRef& src = move.forward ? left : right;
      const VertexRef& dst = move.forward ? right : left;
      if (src.type != et.source_type() || dst.type != et.target_type()) {
        continue;
      }
      auto matched_it = matched.find(move.type);
      if (matched_it == matched.end()) continue;
      const CsrIndex& index = et.forward();
      const auto neighbors = index.neighbors(src.index);
      const auto edge_ids = index.edges(src.index);
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        ++stats_.extensions;
        if (neighbors[i] != dst.index) continue;
        if (!matched_it->second.test(edge_ids[i])) continue;
        bind_edge(op.index, EdgeRef{move.type, edge_ids[i]});
        GEMS_RETURN_IF_ERROR(dfs(op_index + 1));
        if (stop_) return Status::ok();
      }
    }
    return Status::ok();
  }

  /// Reach set of a group from a single start vertex, memoized.
  Result<const Domain*> group_reach(int group, VertexRef start,
                                    bool forward) {
    auto key = std::make_tuple(group, start, forward);
    auto it = reach_cache_.find(key);
    if (it != reach_cache_.end()) return &it->second;
    const GroupConstraint& g = net_.groups[group];
    Domain single;
    single.sets.emplace(
        start.type,
        DynamicBitset(graph_.vertex_type(start.type).num_vertices()));
    single.sets.at(start.type).set(start.index);
    // Reuse the matcher's closure via a tiny shim network: call the
    // internal helpers through match-level API (group closures are
    // deterministic functions of the domain).
    GEMS_ASSIGN_OR_RETURN(Domain reach,
                          group_closure(g, std::move(single), forward));
    auto [pos, inserted] = reach_cache_.emplace(key, std::move(reach));
    return &pos->second;
  }

  Result<Domain> group_closure(const GroupConstraint& g, Domain start,
                               bool forward) {
    if (forward) {
      return group_closure_forward(graph_, pool_, g, start, nullptr);
    }
    return group_closure_backward(graph_, pool_, g, start, nullptr);
  }

  Status op_extend_group(const EnumOp& op, std::size_t op_index) {
    const GroupConstraint& g = net_.groups[op.index];
    const int from_var = op.from_left ? g.left_var : g.right_var;
    const int to_var = op.from_left ? g.right_var : g.left_var;
    GEMS_ASSIGN_OR_RETURN(
        const Domain* reach,
        group_reach(op.index, vertices_[from_var], op.from_left));
    // Iterate reach ∩ target domain.
    for (const auto& [type, bits] : reach->sets) {
      auto dom_it = match_.domains[to_var].sets.find(type);
      if (dom_it == match_.domains[to_var].sets.end()) continue;
      DynamicBitset candidates = bits;
      candidates &= dom_it->second;
      const auto indices = candidates.to_indices();
      for (const VertexIndex v : indices) {
        bind_vertex(to_var, VertexRef{type, v});
        GEMS_RETURN_IF_ERROR(dfs(op_index + 1));
        if (stop_) return Status::ok();
      }
    }
    return Status::ok();
  }

  Status op_check_group(const EnumOp& op, std::size_t op_index) {
    const GroupConstraint& g = net_.groups[op.index];
    GEMS_ASSIGN_OR_RETURN(
        const Domain* reach,
        group_reach(op.index, vertices_[g.left_var], /*forward=*/true));
    const VertexRef right = vertices_[g.right_var];
    auto it = reach->sets.find(right.type);
    if (it == reach->sets.end() || !it->second.test(right.index)) {
      return Status::ok();
    }
    return dfs(op_index + 1);
  }

  const ConstraintNetwork& net_;
  const GraphView& graph_;
  const StringPool& pool_;
  const MatchResult& match_;
  const EnumOptions& options_;
  const EmitFn& emit_;
  std::vector<EnumOp> plan_;

  std::vector<VertexRef> vertices_;
  std::vector<EdgeRef> edges_;
  std::vector<RowCursor> cursors_;
  std::map<std::tuple<int, VertexRef, bool>, Domain> reach_cache_;

  EnumStats stats_;
  bool stop_ = false;
};

}  // namespace

Result<EnumStats> enumerate_assignments(const ConstraintNetwork& net,
                                        const GraphView& graph,
                                        const StringPool& pool,
                                        const MatchResult& match,
                                        const EnumOptions& options,
                                        const EmitFn& emit) {
  Enumerator e(net, graph, pool, match, options, emit);
  return e.run();
}

}  // namespace gems::exec
