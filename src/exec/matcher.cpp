#include "exec/matcher.hpp"

#include <algorithm>
#include <array>
#include <sstream>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "relational/eval.hpp"
#include "relational/vector_eval.hpp"

namespace gems::exec {

namespace {

using graph::CsrIndex;
using graph::EdgeType;
using graph::EdgeTypeId;
using graph::GraphView;
using graph::VertexIndex;
using graph::VertexType;
using graph::VertexTypeId;
using relational::RowCursor;

/// Frontiers narrower than this many 64-bit words stay on the calling
/// thread even when a pool is available: fan-out/merge overhead would
/// dominate a sub-512-vertex expansion.
constexpr std::size_t kParallelFrontierWords = 8;

}  // namespace

std::size_t Domain::count() const {
  std::size_t n = 0;
  for (const auto& [type, bits] : sets) n += bits.count();
  return n;
}

bool Domain::empty() const {
  for (const auto& [type, bits] : sets) {
    if (bits.any()) return false;
  }
  return true;
}

bool Domain::intersect(const Domain& other) {
  bool changed = false;
  for (auto& [type, bits] : sets) {
    auto it = other.sets.find(type);
    if (it == other.sets.end()) {
      if (bits.any()) {
        bits.reset_all();
        changed = true;
      }
      continue;
    }
    changed |= bits.intersect_changed(it->second);
  }
  return changed;
}

namespace {

/// Scratch evaluation state: one cursor slot per variable plus the edge
/// band starting at kEdgeSourceBase. One instance per worker shard — the
/// cursors are mutable scratch and must not be shared across threads.
class Evaluator {
 public:
  Evaluator(const ConstraintNetwork& net, const GraphView& graph,
            const StringPool& pool)
      : net_(net), graph_(graph), pool_(pool) {
    cursors_.resize(kEdgeSourceBase + net.edges.size());
  }

  void set_vertex(int var, VertexTypeId type, VertexIndex v) {
    const VertexType& vt = graph_.vertex_type(type);
    cursors_[var] = {&vt.source(), vt.representative_row(v)};
  }

  void set_edge(int edge_con, EdgeTypeId type, graph::EdgeIndex e) {
    const EdgeType& et = graph_.edge_type(type);
    GEMS_DCHECK(et.attr_table() != nullptr);
    cursors_[kEdgeSourceBase + edge_con] = {et.attr_table(), e};
  }

  bool eval(const relational::BoundExprPtr& pred) const {
    return relational::eval_predicate(*pred, cursors_, pool_);
  }

  bool eval_all(const std::vector<relational::BoundExprPtr>& preds) const {
    for (const auto& p : preds) {
      if (!eval(p)) return false;
    }
    return true;
  }

 private:
  const ConstraintNetwork& net_;
  const GraphView& graph_;
  const StringPool& pool_;
  std::vector<RowCursor> cursors_;
};

// ---- Sharded frontier expansion -------------------------------------------
//
// Every propagation step is a union of CSR walks: for each admissible edge
// type, visit the neighbors of every frontier vertex, filter by edge and
// target predicates, and set the survivors in a per-type output bitset.
// `expand_traversals` runs that shape either serially or morsel-style:
// workers take contiguous word-ranges of the frontier bitset and write
// private per-type shards (own MatchStats, own predicate scratch via the
// shard index handed to the filters), which are OR-merged at the join.
// Set union is order- and partition-independent and the filters are pure,
// so the merged result is bit-identical to the serial walk for any thread
// count. `edge_traversals` is counted per neighbor visit *before* the
// dedup test, making it partition-invariant too.

/// One CSR walk of an expansion: frontier bits -> out_type candidates.
struct Traversal {
  const EdgeType* et = nullptr;
  VertexTypeId out_type = 0;
  const CsrIndex* index = nullptr;
  const DynamicBitset* from_bits = nullptr;
};

/// Walks `t` over frontier words [word_begin, word_end). `failed_bits`
/// (may be null) memoizes vertices whose vertex filter already failed, so
/// a high-in-degree target is evaluated at most once per expansion.
template <typename EdgeFilter, typename VertexFilter>
void walk_range(const Traversal& t, std::size_t word_begin,
                std::size_t word_end, std::size_t shard,
                DynamicBitset& out_bits, DynamicBitset* failed_bits,
                MatchStats* stats, const EdgeFilter& edge_ok,
                const VertexFilter& vertex_ok) {
  t.from_bits->for_each_in_range(word_begin, word_end, [&](std::size_t v) {
    const auto neighbors = t.index->neighbors(static_cast<VertexIndex>(v));
    const auto edge_ids = t.index->edges(static_cast<VertexIndex>(v));
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const VertexIndex u = neighbors[i];
      if (stats != nullptr) ++stats->edge_traversals;
      if (out_bits.test(u)) continue;
      if (failed_bits != nullptr && failed_bits->test(u)) continue;
      if (!edge_ok(shard, *t.et, edge_ids[i])) continue;
      if (vertex_ok(shard, t.out_type, u)) {
        out_bits.set(u);
      } else if (failed_bits != nullptr) {
        failed_bits->set(u);
      }
    }
  });
}

/// Runs all traversals into `out` (whose per-type bitsets must already
/// exist). Parallel iff a pool is given and the widest frontier crosses
/// kParallelFrontierWords; the filters receive the shard index to select
/// private evaluation scratch.
template <typename EdgeFilter, typename VertexFilter>
void expand_traversals(const std::vector<Traversal>& traversals, Domain& out,
                       bool memo_failed, MatchStats* stats, ThreadPool* intra,
                       const EdgeFilter& edge_ok,
                       const VertexFilter& vertex_ok) {
  if (traversals.empty()) return;
  std::size_t max_words = 0;
  for (const Traversal& t : traversals) {
    max_words = std::max(max_words, t.from_bits->num_words());
  }

  if (intra == nullptr || max_words < kParallelFrontierWords) {
    Domain failed;  // per-out-type "evaluated and rejected" memo
    for (const Traversal& t : traversals) {
      DynamicBitset& out_bits = out.sets.at(t.out_type);
      DynamicBitset* failed_bits = nullptr;
      if (memo_failed) {
        auto [it, inserted] =
            failed.sets.try_emplace(t.out_type, DynamicBitset(out_bits.size()));
        failed_bits = &it->second;
      }
      walk_range(t, 0, t.from_bits->num_words(), /*shard=*/0, out_bits,
                 failed_bits, stats, edge_ok, vertex_ok);
    }
    return;
  }

  const std::size_t shards = intra->size();
  std::vector<Domain> shard_out(shards);
  std::vector<Domain> shard_failed(memo_failed ? shards : 0);
  std::vector<MatchStats> shard_stats(shards);
  for (const auto& [type, bits] : out.sets) {
    for (std::size_t s = 0; s < shards; ++s) {
      shard_out[s].sets.emplace(type, DynamicBitset(bits.size()));
      if (memo_failed) {
        shard_failed[s].sets.emplace(type, DynamicBitset(bits.size()));
      }
    }
  }

  // One barrier per traversal: chunk index == shard index, so a shard's
  // bitsets and stats are only ever touched by one task at a time.
  for (const Traversal& t : traversals) {
    intra->parallel_for_ranges(
        t.from_bits->num_words(), shards,
        [&](std::size_t shard, std::size_t wb, std::size_t we) {
          Timer timer;
          DynamicBitset& sbits = shard_out[shard].sets.at(t.out_type);
          DynamicBitset* fbits =
              memo_failed ? &shard_failed[shard].sets.at(t.out_type) : nullptr;
          walk_range(t, wb, we, shard, sbits, fbits, &shard_stats[shard],
                     edge_ok, vertex_ok);
          ++shard_stats[shard].parallel_tasks;
          shard_stats[shard].worker_us.record(
              static_cast<std::uint64_t>(timer.elapsed_us()));
        });
  }

  Timer merge_timer;
  for (auto& [type, bits] : out.sets) {
    for (std::size_t s = 0; s < shards; ++s) {
      bits |= shard_out[s].sets.at(type);
    }
  }
  if (stats != nullptr) {
    stats->merge_ns +=
        static_cast<std::uint64_t>(merge_timer.elapsed_us() * 1e3);
    for (const MatchStats& ss : shard_stats) stats->absorb(ss);
  }
}

/// Marks bits of a single shared output bitset (edge sets) from a CSR walk
/// over `walk_bits`. The kernel visits frontier words [wb, we) and sets
/// bits in the bitset it is handed; shards get private bitsets that are
/// OR-merged, since distinct source vertices can own edge ids in the same
/// output word.
template <typename Kernel>
void sharded_mark(const DynamicBitset& walk_bits, DynamicBitset& out,
                  MatchStats* stats, ThreadPool* intra, const Kernel& kernel) {
  const std::size_t words = walk_bits.num_words();
  if (intra == nullptr || words < kParallelFrontierWords) {
    kernel(/*shard=*/std::size_t{0}, std::size_t{0}, words, out, stats);
    return;
  }
  const std::size_t shards = intra->size();
  std::vector<DynamicBitset> shard_bits(shards, DynamicBitset(out.size()));
  std::vector<MatchStats> shard_stats(shards);
  intra->parallel_for_ranges(
      words, shards, [&](std::size_t shard, std::size_t wb, std::size_t we) {
        Timer timer;
        kernel(shard, wb, we, shard_bits[shard], &shard_stats[shard]);
        ++shard_stats[shard].parallel_tasks;
        shard_stats[shard].worker_us.record(
            static_cast<std::uint64_t>(timer.elapsed_us()));
      });
  Timer merge_timer;
  for (std::size_t s = 0; s < shards; ++s) out |= shard_bits[s];
  if (stats != nullptr) {
    stats->merge_ns +=
        static_cast<std::uint64_t>(merge_timer.elapsed_us() * 1e3);
    for (const MatchStats& ss : shard_stats) stats->absorb(ss);
  }
}

/// Expands one group hop forward: all vertices reachable from `from` via
/// the hop's edge types, filtered by the hop's vertex types/conditions.
Domain expand_hop(const GraphView& graph, const StringPool& pool,
                  const GroupHop& hop, const Domain& from, MatchStats* stats,
                  ThreadPool* intra) {
  Domain out;
  for (const VertexTypeId t : hop.vertex_types) {
    out.sets.emplace(t, DynamicBitset(graph.vertex_type(t).num_vertices()));
  }

  std::vector<Traversal> traversals;
  auto add = [&](const EdgeType& et) {
    // Forward hop: current --e--> next (current is source).
    // Reversed hop: next --e--> current (current is target).
    const VertexTypeId cur_type =
        hop.reversed ? et.target_type() : et.source_type();
    const VertexTypeId next_type =
        hop.reversed ? et.source_type() : et.target_type();
    if (!out.sets.contains(next_type)) return;
    auto it = from.sets.find(cur_type);
    if (it == from.sets.end() || !it->second.any()) return;
    traversals.push_back({&et, next_type,
                          hop.reversed ? &et.reverse() : &et.forward(),
                          &it->second});
  };
  if (!hop.edge_types.empty()) {
    for (const EdgeTypeId id : hop.edge_types) add(graph.edge_type(id));
  } else {
    for (EdgeTypeId id = 0; id < graph.num_edge_types(); ++id) {
      add(graph.edge_type(id));
    }
  }

  // Hop conditions evaluate against a single-source scope; the cursors
  // live on the worker's stack, so no per-shard scratch is needed.
  auto edge_ok = [&](std::size_t, const EdgeType& et, graph::EdgeIndex e) {
    if (hop.edge_conds.empty()) return true;
    GEMS_DCHECK(et.attr_table() != nullptr);
    RowCursor cursor{et.attr_table(), e};
    const std::span<const RowCursor> span(&cursor, 1);
    for (const auto& cond : hop.edge_conds) {
      if (!relational::eval_predicate(*cond, span, pool)) return false;
    }
    return true;
  };
  auto vertex_ok = [&](std::size_t, VertexTypeId t, VertexIndex v) {
    if (hop.vertex_conds.empty()) return true;
    const VertexType& vt = graph.vertex_type(t);
    RowCursor cursor{&vt.source(), vt.representative_row(v)};
    const std::span<const RowCursor> span(&cursor, 1);
    for (const auto& cond : hop.vertex_conds) {
      if (!relational::eval_predicate(*cond, span, pool)) return false;
    }
    return true;
  };
  expand_traversals(traversals, out, /*memo_failed=*/!hop.vertex_conds.empty(),
                    stats, intra, edge_ok, vertex_ok);
  return out;
}

/// The same hop walked right-to-left. `target_hop` (may be null) supplies
/// the vertex conditions of the position being landed on.
Domain expand_hop_back(const GraphView& graph, const StringPool& pool,
                       const GroupHop& hop, const Domain& from,
                       const GroupHop* target_hop, MatchStats* stats,
                       ThreadPool* intra) {
  // Walking hop backwards flips the traversal direction; the vertex
  // filter comes from the *previous* position (target_hop), not this hop.
  Domain out;
  std::vector<VertexTypeId> target_types;
  if (target_hop != nullptr) {
    target_types = target_hop->vertex_types;
  } else {
    target_types.resize(graph.num_vertex_types());
    for (std::size_t i = 0; i < target_types.size(); ++i) {
      target_types[i] = static_cast<VertexTypeId>(i);
    }
  }
  for (const VertexTypeId t : target_types) {
    out.sets.emplace(t, DynamicBitset(graph.vertex_type(t).num_vertices()));
  }

  std::vector<Traversal> traversals;
  auto add = [&](const EdgeType& et) {
    // Forward hop prev --e--> cur: walking back from cur, prev is the
    // edge source -> use the reverse index keyed by target.
    const VertexTypeId cur_type =
        hop.reversed ? et.source_type() : et.target_type();
    const VertexTypeId prev_type =
        hop.reversed ? et.target_type() : et.source_type();
    if (!out.sets.contains(prev_type)) return;
    auto it = from.sets.find(cur_type);
    if (it == from.sets.end() || !it->second.any()) return;
    traversals.push_back({&et, prev_type,
                          hop.reversed ? &et.forward() : &et.reverse(),
                          &it->second});
  };
  if (!hop.edge_types.empty()) {
    for (const EdgeTypeId id : hop.edge_types) add(graph.edge_type(id));
  } else {
    for (EdgeTypeId id = 0; id < graph.num_edge_types(); ++id) {
      add(graph.edge_type(id));
    }
  }

  auto edge_ok = [&](std::size_t, const EdgeType& et, graph::EdgeIndex e) {
    if (hop.edge_conds.empty()) return true;
    GEMS_DCHECK(et.attr_table() != nullptr);
    RowCursor cursor{et.attr_table(), e};
    const std::span<const RowCursor> span(&cursor, 1);
    for (const auto& cond : hop.edge_conds) {
      if (!relational::eval_predicate(*cond, span, pool)) return false;
    }
    return true;
  };
  auto vertex_ok = [&](std::size_t, VertexTypeId t, VertexIndex v) {
    if (target_hop == nullptr || target_hop->vertex_conds.empty()) {
      return true;
    }
    const VertexType& vt = graph.vertex_type(t);
    RowCursor cursor{&vt.source(), vt.representative_row(v)};
    const std::span<const RowCursor> span(&cursor, 1);
    for (const auto& cond : target_hop->vertex_conds) {
      if (!relational::eval_predicate(*cond, span, pool)) return false;
    }
    return true;
  };
  const bool memo =
      target_hop != nullptr && !target_hop->vertex_conds.empty();
  expand_traversals(traversals, out, memo, stats, intra, edge_ok, vertex_ok);
  return out;
}

Domain domain_union(Domain a, const Domain& b) {
  for (const auto& [type, bits] : b.sets) {
    auto it = a.sets.find(type);
    if (it == a.sets.end()) {
      a.sets.emplace(type, bits);
    } else {
      it->second |= bits;
    }
  }
  return a;
}

bool domain_subtract_into(Domain& frontier, const Domain& seen) {
  // frontier -= seen; returns whether anything remains.
  bool any = false;
  for (auto& [type, bits] : frontier.sets) {
    auto it = seen.sets.find(type);
    if (it != seen.sets.end()) bits.subtract(it->second);
    any = any || bits.any();
  }
  return any;
}

constexpr std::uint32_t kMaxExactRepeats = 1024;

/// Full-body forward application: runs all hops once.
Domain apply_body(const GraphView& graph, const StringPool& pool,
                  const GroupConstraint& g, Domain d, MatchStats* stats,
                  ThreadPool* intra) {
  for (const GroupHop& hop : g.hops) {
    d = expand_hop(graph, pool, hop, d, stats, intra);
    if (d.empty()) break;
  }
  return d;
}

Domain apply_body_back(const GraphView& graph, const StringPool& pool,
                       const GroupConstraint& g, Domain d, MatchStats* stats,
                       ThreadPool* intra) {
  for (std::size_t i = g.hops.size(); i-- > 0;) {
    const GroupHop* target = i == 0 ? nullptr : &g.hops[i - 1];
    d = expand_hop_back(graph, pool, g.hops[i], d, target, stats, intra);
    if (d.empty()) break;
  }
  return d;
}

}  // namespace

/// Closure of the group going forward from `start`: all end-position
/// vertices after an admissible number of body iterations.
Result<Domain> group_closure_forward(const GraphView& graph,
                                     const StringPool& pool,
                                     const GroupConstraint& g,
                                     const Domain& start, MatchStats* stats,
                                     ThreadPool* intra_pool) {
  using Quant = graql::PathGroup::Quant;
  if (g.quant == Quant::kExact) {
    if (g.count > kMaxExactRepeats) {
      return invalid_argument("path repetition count exceeds " +
                              std::to_string(kMaxExactRepeats));
    }
    Domain d = start;
    for (std::uint32_t i = 0; i < g.count && !d.empty(); ++i) {
      d = apply_body(graph, pool, g, std::move(d), stats, intra_pool);
    }
    return d;
  }
  // * and +: fixpoint over boundary positions.
  Domain reached =
      apply_body(graph, pool, g, start, stats, intra_pool);  // 1 iteration
  Domain frontier = reached;
  while (!frontier.empty()) {
    Domain next =
        apply_body(graph, pool, g, std::move(frontier), stats, intra_pool);
    if (!domain_subtract_into(next, reached)) break;
    reached = domain_union(std::move(reached), next);
    frontier = std::move(next);
  }
  if (g.quant == Quant::kStar) {
    // Zero iterations: the start vertices themselves qualify.
    reached = domain_union(std::move(reached), start);
  }
  return reached;
}

Result<Domain> group_closure_backward(const GraphView& graph,
                                      const StringPool& pool,
                                      const GroupConstraint& g,
                                      const Domain& end, MatchStats* stats,
                                      ThreadPool* intra_pool) {
  using Quant = graql::PathGroup::Quant;
  if (g.quant == Quant::kExact) {
    if (g.count > kMaxExactRepeats) {
      return invalid_argument("path repetition count exceeds " +
                              std::to_string(kMaxExactRepeats));
    }
    Domain d = end;
    for (std::uint32_t i = 0; i < g.count && !d.empty(); ++i) {
      d = apply_body_back(graph, pool, g, std::move(d), stats, intra_pool);
    }
    return d;
  }
  Domain reached = apply_body_back(graph, pool, g, end, stats, intra_pool);
  Domain frontier = reached;
  while (!frontier.empty()) {
    Domain next =
        apply_body_back(graph, pool, g, std::move(frontier), stats, intra_pool);
    if (!domain_subtract_into(next, reached)) break;
    reached = domain_union(std::move(reached), next);
    frontier = std::move(next);
  }
  if (g.quant == Quant::kStar) {
    reached = domain_union(std::move(reached), end);
  }
  return reached;
}

bool vertex_passes(const ConstraintNetwork& net, const GraphView& graph,
                   const StringPool& pool, int var, VertexTypeId type,
                   VertexIndex v) {
  const VertexVar& vv = net.vars[var];
  if (vv.self_conds.empty()) return true;
  // Self conditions only dereference this variable's slot, so a cursor
  // span of var+1 entries suffices (the full kEdgeSourceBase-wide band
  // would cost a 64 KiB allocation per call — measured hot in planning).
  std::vector<RowCursor> cursors(static_cast<std::size_t>(var) + 1);
  const VertexType& vt = graph.vertex_type(type);
  cursors[var] = {&vt.source(), vt.representative_row(v)};
  for (const auto& pred : vv.self_conds) {
    if (!relational::eval_predicate(*pred, cursors, pool)) return false;
  }
  return true;
}

Domain initial_domain(const ConstraintNetwork& net, const GraphView& graph,
                      const StringPool& pool, int var,
                      ThreadPool* intra_pool) {
  const VertexVar& vv = net.vars[var];
  Domain d;
  for (const VertexTypeId t : vv.types) {
    const VertexType& vt = graph.vertex_type(t);
    DynamicBitset bits(vt.num_vertices());
    const DynamicBitset* seed_bits = vv.seed ? vv.seed->vertices(t) : nullptr;
    if (vv.seed && seed_bits == nullptr) {
      // Seeded step with no members of this type: empty.
      d.sets.emplace(t, std::move(bits));
      continue;
    }
    if (vv.self_conds.empty()) {
      if (seed_bits != nullptr) {
        bits |= *seed_bits;
      } else {
        bits.set_all();
      }
      d.sets.emplace(t, std::move(bits));
      continue;
    }
    // Condition evaluation per candidate vertex. Workers own disjoint
    // word-aligned vertex ranges of the output bitset, so they can write
    // it directly — no shards, no merge. Self conditions reference only
    // this variable's slot (see vertex_passes): a right-sized private
    // cursor span per worker avoids the wide band.
    //
    // When every self conjunct compiled to a kernel (lowering), the scan
    // gathers representative rows of seed-surviving vertices into batches
    // and ANDs the kernels' accepting-lane words — bit-identical to the
    // row loop (kernels reproduce eval_predicate; property-tested), and
    // race-free because workers still own disjoint word ranges.
    const bool use_kernels =
        net.batch_policy.vectorized() &&
        vv.self_cond_kernels.size() == vv.self_conds.size() &&
        std::all_of(vv.self_cond_kernels.begin(), vv.self_cond_kernels.end(),
                    [](const relational::VectorExprPtr& k) {
                      return k != nullptr;
                    });
    auto fill_range = [&](std::size_t word_begin, std::size_t word_end) {
      const std::size_t v_end =
          std::min<std::size_t>(vt.num_vertices(), word_end * 64);
      if (use_kernels) {
        const std::size_t window = net.batch_policy.clamped_rows();
        std::vector<relational::EvalScratch> scratches;
        scratches.reserve(vv.self_cond_kernels.size());
        for (const auto& k : vv.self_cond_kernels) {
          scratches.push_back(k->make_scratch());
        }
        std::array<storage::RowIndex, relational::kBatchRows> rows;
        std::array<std::size_t, relational::kBatchRows> verts;
        std::array<std::uint64_t, relational::kBatchWords> acc;
        std::size_t count = 0;
        auto flush = [&] {
          if (count == 0) return;
          const relational::RowBatch rb{&vt.source(), 0, rows.data(), count};
          relational::fill_ones_words(acc.data(), count);
          const std::size_t nw = relational::batch_words(count);
          for (std::size_t k = 0; k < vv.self_cond_kernels.size(); ++k) {
            const relational::ValueVector res =
                vv.self_cond_kernels[k]->eval(rb, scratches[k]);
            // bits ⊆ valid: set bits are exactly the truthy lanes.
            bool any = false;
            for (std::size_t w = 0; w < nw; ++w) {
              acc[w] &= res.bits[w];
              any |= acc[w] != 0;
            }
            if (!any) break;
          }
          relational::for_each_lane(
              acc.data(), count,
              [&](std::size_t lane) { bits.set(verts[lane]); });
          count = 0;
        };
        for (std::size_t v = word_begin * 64; v < v_end; ++v) {
          if (seed_bits != nullptr && !seed_bits->test(v)) continue;
          rows[count] =
              vt.representative_row(static_cast<VertexIndex>(v));
          verts[count] = v;
          if (++count == window) flush();
        }
        flush();
        return;
      }
      std::vector<RowCursor> cursors(static_cast<std::size_t>(var) + 1);
      for (std::size_t v = word_begin * 64; v < v_end; ++v) {
        if (seed_bits != nullptr && !seed_bits->test(v)) continue;
        cursors[var] = {&vt.source(),
                        vt.representative_row(static_cast<VertexIndex>(v))};
        bool ok = true;
        for (const auto& pred : vv.self_conds) {
          if (!relational::eval_predicate(*pred, cursors, pool)) {
            ok = false;
            break;
          }
        }
        if (ok) bits.set(v);
      }
    };
    if (intra_pool != nullptr && bits.num_words() >= kParallelFrontierWords) {
      intra_pool->parallel_for_ranges(
          bits.num_words(), intra_pool->size(),
          [&](std::size_t, std::size_t wb, std::size_t we) {
            fill_range(wb, we);
          });
    } else {
      fill_range(0, bits.num_words());
    }
    d.sets.emplace(t, std::move(bits));
  }
  return d;
}

std::vector<std::map<graph::EdgeTypeId, DynamicBitset>> matched_edge_sets(
    const ConstraintNetwork& net, const GraphView& graph,
    const StringPool& pool, const std::vector<Domain>& domains,
    MatchStats* stats, ThreadPool* intra_pool) {
  std::vector<std::map<EdgeTypeId, DynamicBitset>> out(net.edges.size());
  const std::size_t n_shards = intra_pool != nullptr ? intra_pool->size() : 1;
  std::vector<Evaluator> evs;
  evs.reserve(n_shards);
  for (std::size_t s = 0; s < n_shards; ++s) evs.emplace_back(net, graph, pool);

  for (std::size_t c = 0; c < net.edges.size(); ++c) {
    const EdgeConstraint& con = net.edges[c];
    for (const EdgeMove& move : con.moves) {
      const EdgeType& et = graph.edge_type(move.type);
      const Domain& src_dom =
          domains[move.forward ? con.left_var : con.right_var];
      const Domain& dst_dom =
          domains[move.forward ? con.right_var : con.left_var];
      auto src_it = src_dom.sets.find(et.source_type());
      auto dst_it = dst_dom.sets.find(et.target_type());
      if (src_it == src_dom.sets.end() || dst_it == dst_dom.sets.end()) {
        continue;
      }
      // Walk the CSR from the smaller matched domain; every edge appears
      // exactly once in each index, so the walk touches each candidate
      // edge once and never scans the full edge table.
      const bool walk_src = src_it->second.count() <= dst_it->second.count();
      const DynamicBitset& walk_bits =
          walk_src ? src_it->second : dst_it->second;
      const DynamicBitset& other_bits =
          walk_src ? dst_it->second : src_it->second;
      const CsrIndex& index = walk_src ? et.forward() : et.reverse();
      DynamicBitset bits(et.num_edges());
      sharded_mark(
          walk_bits, bits, stats, intra_pool,
          [&](std::size_t shard, std::size_t wb, std::size_t we,
              DynamicBitset& mark, MatchStats* ms) {
            walk_bits.for_each_in_range(wb, we, [&](std::size_t v) {
              const auto neighbors =
                  index.neighbors(static_cast<VertexIndex>(v));
              const auto edge_ids = index.edges(static_cast<VertexIndex>(v));
              for (std::size_t i = 0; i < neighbors.size(); ++i) {
                if (ms != nullptr) ++ms->edge_traversals;
                if (!other_bits.test(neighbors[i])) continue;
                const graph::EdgeIndex e = edge_ids[i];
                if (!con.self_conds.empty()) {
                  evs[shard].set_edge(static_cast<int>(c), move.type, e);
                  if (!evs[shard].eval_all(con.self_conds)) continue;
                }
                mark.set(e);
              }
            });
          });
      auto it = out[c].find(move.type);
      if (it == out[c].end()) {
        out[c].emplace(move.type, std::move(bits));
      } else {
        it->second |= bits;
      }
    }
  }
  return out;
}

Result<MatchResult> match_network(const ConstraintNetwork& net,
                                  const GraphView& graph,
                                  const StringPool& pool,
                                  const std::vector<int>* order,
                                  ThreadPool* intra_pool) {
  MatchResult result;
  result.domains.reserve(net.num_vars());
  for (std::size_t v = 0; v < net.num_vars(); ++v) {
    result.domains.push_back(
        initial_domain(net, graph, pool, static_cast<int>(v), intra_pool));
  }

  // One predicate evaluator per worker shard (the cursor band is mutable
  // scratch); shard 0 doubles as the serial evaluator.
  const std::size_t n_shards = intra_pool != nullptr ? intra_pool->size() : 1;
  std::vector<Evaluator> evs;
  evs.reserve(n_shards);
  for (std::size_t s = 0; s < n_shards; ++s) evs.emplace_back(net, graph, pool);

  // Support set of one side of an edge constraint given the other side.
  auto edge_support = [&](const EdgeConstraint& con,
                          bool from_left) -> Domain {
    const Domain& from =
        result.domains[from_left ? con.left_var : con.right_var];
    const Domain& to_shape =
        result.domains[from_left ? con.right_var : con.left_var];
    Domain support;
    for (const auto& [type, bits] : to_shape.sets) {
      support.sets.emplace(type, DynamicBitset(bits.size()));
    }
    const int con_index = static_cast<int>(&con - net.edges.data());
    std::vector<Traversal> traversals;
    for (const EdgeMove& move : con.moves) {
      const EdgeType& et = graph.edge_type(move.type);
      // move.forward: edge runs left->right. Walking from_left therefore
      // uses the forward CSR; walking from the right uses the reverse.
      const bool walk_forward = move.forward == from_left;
      const VertexTypeId from_type =
          walk_forward ? et.source_type() : et.target_type();
      const VertexTypeId to_type =
          walk_forward ? et.target_type() : et.source_type();
      auto from_it = from.sets.find(from_type);
      if (from_it == from.sets.end() || !support.sets.contains(to_type) ||
          !from_it->second.any()) {
        continue;
      }
      traversals.push_back({&et, to_type,
                            walk_forward ? &et.forward() : &et.reverse(),
                            &from_it->second});
    }
    expand_traversals(
        traversals, support, /*memo_failed=*/false, &result.stats, intra_pool,
        [&](std::size_t shard, const EdgeType& et, graph::EdgeIndex e) {
          if (con.self_conds.empty()) return true;
          evs[shard].set_edge(con_index, et.id(), e);
          return evs[shard].eval_all(con.self_conds);
        },
        [](std::size_t, VertexTypeId, VertexIndex) { return true; });
    return support;
  };

  // Constraint visit order: planner-supplied or natural.
  std::vector<int> visit;
  const std::size_t n_constraints =
      net.edges.size() + net.groups.size() + net.set_eqs.size();
  if (order != nullptr) {
    visit = *order;
    GEMS_CHECK(visit.size() == n_constraints);
  } else {
    visit.resize(n_constraints);
    for (std::size_t i = 0; i < n_constraints; ++i) {
      visit[i] = static_cast<int>(i);
    }
  }

  // Per-group closure cache. The fixpoint only terminates after a pass in
  // which no domain changed, so by convergence the cache necessarily holds
  // the closures of the *final* endpoint domains — the group-elements
  // section below re-requests them and always hits.
  struct ClosureCache {
    bool fwd_valid = false;
    bool bwd_valid = false;
    Domain fwd_in, fwd_out;
    Domain bwd_in, bwd_out;
  };
  std::vector<ClosureCache> closures(net.groups.size());

  auto cached_fwd = [&](std::size_t gi) -> Result<const Domain*> {
    const GroupConstraint& g = net.groups[gi];
    ClosureCache& cc = closures[gi];
    const Domain& in = result.domains[g.left_var];
    if (cc.fwd_valid && cc.fwd_in == in) return &cc.fwd_out;
    cc.fwd_valid = false;
    cc.fwd_in = in;
    GEMS_ASSIGN_OR_RETURN(
        cc.fwd_out,
        group_closure_forward(graph, pool, g, in, &result.stats, intra_pool));
    cc.fwd_valid = true;
    return &cc.fwd_out;
  };
  auto cached_bwd = [&](std::size_t gi) -> Result<const Domain*> {
    const GroupConstraint& g = net.groups[gi];
    ClosureCache& cc = closures[gi];
    const Domain& in = result.domains[g.right_var];
    if (cc.bwd_valid && cc.bwd_in == in) return &cc.bwd_out;
    cc.bwd_valid = false;
    cc.bwd_in = in;
    GEMS_ASSIGN_OR_RETURN(
        cc.bwd_out,
        group_closure_backward(graph, pool, g, in, &result.stats, intra_pool));
    cc.bwd_valid = true;
    return &cc.bwd_out;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    ++result.stats.propagation_passes;
    for (const int c : visit) {
      if (static_cast<std::size_t>(c) < net.edges.size()) {
        const EdgeConstraint& con = net.edges[c];
        Domain right_support = edge_support(con, /*from_left=*/true);
        changed |= result.domains[con.right_var].intersect(right_support);
        Domain left_support = edge_support(con, /*from_left=*/false);
        changed |= result.domains[con.left_var].intersect(left_support);
        continue;
      }
      std::size_t idx = static_cast<std::size_t>(c) - net.edges.size();
      if (idx < net.groups.size()) {
        const GroupConstraint& g = net.groups[idx];
        GEMS_ASSIGN_OR_RETURN(const Domain* fwd, cached_fwd(idx));
        changed |= result.domains[g.right_var].intersect(*fwd);
        GEMS_ASSIGN_OR_RETURN(const Domain* bwd, cached_bwd(idx));
        changed |= result.domains[g.left_var].intersect(*bwd);
        continue;
      }
      idx -= net.groups.size();
      const SetEqConstraint& se = net.set_eqs[idx];
      changed |= result.domains[se.var_a].intersect(result.domains[se.var_b]);
      changed |= result.domains[se.var_b].intersect(result.domains[se.var_a]);
    }
  }

  // ---- Matched edge sets (Eq. 5's E(q)) --------------------------------
  result.matched_edges = matched_edge_sets(net, graph, pool, result.domains,
                                           &result.stats, intra_pool);

  // ---- Group interior elements (for subgraph output) --------------------
  result.group_elements.reserve(net.groups.size());
  for (std::size_t gi = 0; gi < net.groups.size(); ++gi) {
    const GroupConstraint& g = net.groups[gi];
    Subgraph elements("group");
    // On-path boundary vertices: those both forward-reachable from the
    // left domain and backward-reachable from the right domain. The
    // closures of the converged domains are cache hits (see above), so
    // nothing is recomputed here.
    GEMS_ASSIGN_OR_RETURN(const Domain* fwd_ptr, cached_fwd(gi));
    GEMS_ASSIGN_OR_RETURN(const Domain* bwd_ptr, cached_bwd(gi));
    const Domain& fwd = *fwd_ptr;
    const Domain& bwd = *bwd_ptr;
    // Boundary vertices usable mid-path (between iterations).
    Domain boundary = fwd;
    boundary.intersect(bwd);
    boundary = domain_union(std::move(boundary),
                            [&] {
                              Domain d = result.domains[g.left_var];
                              d.intersect(bwd);
                              return d;
                            }());
    Domain end = result.domains[g.right_var];
    end.intersect(fwd);
    boundary = domain_union(std::move(boundary), end);

    // Mark interior: walk hops forward from the boundary set, culling each
    // position by its backward reachability toward the boundary.
    std::vector<Domain> fwd_pos(g.hops.size() + 1);
    fwd_pos[0] = boundary;
    for (std::size_t i = 0; i < g.hops.size(); ++i) {
      fwd_pos[i + 1] = expand_hop(graph, pool, g.hops[i], fwd_pos[i],
                                  &result.stats, intra_pool);
    }
    std::vector<Domain> bwd_pos(g.hops.size() + 1);
    bwd_pos[g.hops.size()] = boundary;
    for (std::size_t i = g.hops.size(); i-- > 0;) {
      const GroupHop* target = i == 0 ? nullptr : &g.hops[i - 1];
      bwd_pos[i] = expand_hop_back(graph, pool, g.hops[i], bwd_pos[i + 1],
                                   target, &result.stats, intra_pool);
    }
    for (std::size_t i = 0; i <= g.hops.size(); ++i) {
      Domain on_path = fwd_pos[i];
      on_path.intersect(bwd_pos[i]);
      for (const auto& [type, bits] : on_path.sets) {
        if (!bits.any()) continue;
        DynamicBitset& out =
            elements.vertices(type, graph.vertex_type(type).num_vertices());
        out |= bits;
      }
    }
    // Mark on-path edges per hop: CSR walk from the smaller on-path
    // endpoint set (never a full edge scan).
    for (std::size_t i = 0; i < g.hops.size(); ++i) {
      Domain from = fwd_pos[i];
      from.intersect(bwd_pos[i]);
      Domain to = fwd_pos[i + 1];
      to.intersect(bwd_pos[i + 1]);
      const GroupHop& hop = g.hops[i];
      auto mark_edges = [&](const EdgeType& et) -> void {
        const VertexTypeId cur_type =
            hop.reversed ? et.target_type() : et.source_type();
        const VertexTypeId next_type =
            hop.reversed ? et.source_type() : et.target_type();
        auto from_it = from.sets.find(cur_type);
        auto to_it = to.sets.find(next_type);
        if (from_it == from.sets.end() || to_it == to.sets.end()) return;
        DynamicBitset& out = elements.edges(et.id(), et.num_edges());
        const bool walk_from =
            from_it->second.count() <= to_it->second.count();
        // `from` holds the hop's origin position: with a reversed hop the
        // origin is the edge's *target*, so walking from it uses the
        // reverse index.
        const CsrIndex& index = (walk_from != hop.reversed) ? et.forward()
                                                            : et.reverse();
        const DynamicBitset& walk_bits =
            walk_from ? from_it->second : to_it->second;
        const DynamicBitset& other_bits =
            walk_from ? to_it->second : from_it->second;
        sharded_mark(
            walk_bits, out, &result.stats, intra_pool,
            [&](std::size_t, std::size_t wb, std::size_t we,
                DynamicBitset& mark, MatchStats* ms) {
              walk_bits.for_each_in_range(wb, we, [&](std::size_t v) {
                const auto neighbors =
                    index.neighbors(static_cast<VertexIndex>(v));
                const auto edge_ids =
                    index.edges(static_cast<VertexIndex>(v));
                for (std::size_t j = 0; j < neighbors.size(); ++j) {
                  if (ms != nullptr) ++ms->edge_traversals;
                  if (!other_bits.test(neighbors[j])) continue;
                  const graph::EdgeIndex e = edge_ids[j];
                  if (!hop.edge_conds.empty()) {
                    RowCursor cursor{et.attr_table(), e};
                    const std::span<const RowCursor> span(&cursor, 1);
                    bool ok = true;
                    for (const auto& cond : hop.edge_conds) {
                      if (!relational::eval_predicate(*cond, span, pool)) {
                        ok = false;
                        break;
                      }
                    }
                    if (!ok) continue;
                  }
                  mark.set(e);
                }
              });
            });
      };
      if (!hop.edge_types.empty()) {
        for (const EdgeTypeId id : hop.edge_types) {
          mark_edges(graph.edge_type(id));
        }
      } else {
        for (EdgeTypeId id = 0; id < graph.num_edge_types(); ++id) {
          mark_edges(graph.edge_type(id));
        }
      }
    }
    result.group_elements.push_back(std::move(elements));
  }

  return result;
}

// ---- Matcher observability ------------------------------------------------

void MatcherMetrics::record(const MatchStats& stats) {
  sync::MutexLock lock(mutex_);
  ++agg_.queries;
  agg_.propagation_passes += stats.propagation_passes;
  agg_.edge_traversals += stats.edge_traversals;
  agg_.parallel_tasks += stats.parallel_tasks;
  agg_.merge_ns += stats.merge_ns;
  agg_.worker_us.merge(stats.worker_us);
}

MatcherMetricsSnapshot MatcherMetrics::snapshot() const {
  sync::MutexLock lock(mutex_);
  return agg_;
}

std::string MatcherMetricsSnapshot::to_string() const {
  std::ostringstream os;
  os << "matcher: queries=" << queries << " passes=" << propagation_passes
     << " edge_traversals=" << edge_traversals << "\n";
  os << "parallel: tasks=" << parallel_tasks << " worker_p50_us="
     << worker_us.quantile_us(0.5) << " worker_p99_us="
     << worker_us.quantile_us(0.99) << " worker_max_us=" << worker_us.max_us
     << " merge_ms=" << static_cast<double>(merge_ns) / 1e6 << "\n";
  return os.str();
}

}  // namespace gems::exec
