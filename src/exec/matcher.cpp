#include "exec/matcher.hpp"

#include "common/check.hpp"
#include "relational/eval.hpp"

namespace gems::exec {

namespace {

using graph::CsrIndex;
using graph::EdgeType;
using graph::EdgeTypeId;
using graph::GraphView;
using graph::VertexIndex;
using graph::VertexType;
using graph::VertexTypeId;
using relational::RowCursor;

}  // namespace

std::size_t Domain::count() const {
  std::size_t n = 0;
  for (const auto& [type, bits] : sets) n += bits.count();
  return n;
}

bool Domain::empty() const {
  for (const auto& [type, bits] : sets) {
    if (bits.any()) return false;
  }
  return true;
}

bool Domain::intersect(const Domain& other) {
  bool changed = false;
  for (auto& [type, bits] : sets) {
    auto it = other.sets.find(type);
    if (it == other.sets.end()) {
      if (bits.any()) {
        bits.reset_all();
        changed = true;
      }
      continue;
    }
    const std::size_t before = bits.count();
    bits &= it->second;
    if (bits.count() != before) changed = true;
  }
  return changed;
}

namespace {

/// Scratch evaluation state: one cursor slot per variable plus the edge
/// band starting at kEdgeSourceBase.
class Evaluator {
 public:
  Evaluator(const ConstraintNetwork& net, const GraphView& graph,
            const StringPool& pool)
      : net_(net), graph_(graph), pool_(pool) {
    cursors_.resize(kEdgeSourceBase + net.edges.size());
  }

  void set_vertex(int var, VertexTypeId type, VertexIndex v) {
    const VertexType& vt = graph_.vertex_type(type);
    cursors_[var] = {&vt.source(), vt.representative_row(v)};
  }

  void set_edge(int edge_con, EdgeTypeId type, graph::EdgeIndex e) {
    const EdgeType& et = graph_.edge_type(type);
    GEMS_DCHECK(et.attr_table() != nullptr);
    cursors_[kEdgeSourceBase + edge_con] = {et.attr_table(), e};
  }

  bool eval(const relational::BoundExprPtr& pred) const {
    return relational::eval_predicate(*pred, cursors_, pool_);
  }

  bool eval_all(const std::vector<relational::BoundExprPtr>& preds) const {
    for (const auto& p : preds) {
      if (!eval(p)) return false;
    }
    return true;
  }

 private:
  const ConstraintNetwork& net_;
  const GraphView& graph_;
  const StringPool& pool_;
  std::vector<RowCursor> cursors_;
};

/// Expands one group hop forward: all vertices reachable from `from` via
/// the hop's edge types, filtered by the hop's vertex types/conditions.
Domain expand_hop(const GraphView& graph, const StringPool& pool,
                  const GroupHop& hop, const Domain& from,
                  MatchStats* stats) {
  Domain out;
  for (const VertexTypeId t : hop.vertex_types) {
    out.sets.emplace(t, DynamicBitset(graph.vertex_type(t).num_vertices()));
  }
  auto allowed_vertex_type = [&](VertexTypeId t) {
    return out.sets.contains(t);
  };

  // Hop vertex conditions evaluate against a single-source scope.
  auto target_passes = [&](VertexTypeId t, VertexIndex v) {
    if (hop.vertex_conds.empty()) return true;
    const VertexType& vt = graph.vertex_type(t);
    RowCursor cursor{&vt.source(), vt.representative_row(v)};
    const std::span<const RowCursor> span(&cursor, 1);
    for (const auto& cond : hop.vertex_conds) {
      if (!relational::eval_predicate(*cond, span, pool)) return false;
    }
    return true;
  };

  auto edge_passes = [&](const EdgeType& et, graph::EdgeIndex e) {
    if (hop.edge_conds.empty()) return true;
    GEMS_DCHECK(et.attr_table() != nullptr);
    RowCursor cursor{et.attr_table(), e};
    const std::span<const RowCursor> span(&cursor, 1);
    for (const auto& cond : hop.edge_conds) {
      if (!relational::eval_predicate(*cond, span, pool)) return false;
    }
    return true;
  };

  auto traverse = [&](const EdgeType& et) {
    // Forward hop: current --e--> next (current is source).
    // Reversed hop: next --e--> current (current is target).
    const VertexTypeId cur_type =
        hop.reversed ? et.target_type() : et.source_type();
    const VertexTypeId next_type =
        hop.reversed ? et.source_type() : et.target_type();
    if (!allowed_vertex_type(next_type)) return;
    auto it = from.sets.find(cur_type);
    if (it == from.sets.end() || !it->second.any()) return;
    const CsrIndex& index = hop.reversed ? et.reverse() : et.forward();
    DynamicBitset& out_bits = out.sets.at(next_type);
    it->second.for_each([&](std::size_t v) {
      const auto neighbors = index.neighbors(static_cast<VertexIndex>(v));
      const auto edge_ids = index.edges(static_cast<VertexIndex>(v));
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        const VertexIndex u = neighbors[i];
        if (stats != nullptr) ++stats->edge_traversals;
        if (out_bits.test(u)) continue;
        if (!edge_passes(et, edge_ids[i])) continue;
        if (target_passes(next_type, u)) out_bits.set(u);
      }
    });
  };

  if (!hop.edge_types.empty()) {
    for (const EdgeTypeId id : hop.edge_types) {
      traverse(graph.edge_type(id));
    }
  } else {
    for (EdgeTypeId id = 0; id < graph.num_edge_types(); ++id) {
      traverse(graph.edge_type(id));
    }
  }
  return out;
}

/// The same hop walked right-to-left. `target_filter` (may be null)
/// supplies the vertex conditions of the position being landed on.
Domain expand_hop_back(const GraphView& graph, const StringPool& pool,
                       const GroupHop& hop, const Domain& from,
                       const GroupHop* target_hop, MatchStats* stats) {
  // Walking hop backwards flips the traversal direction; the vertex
  // filter comes from the *previous* position (target_hop), not this hop.
  Domain out;
  std::vector<VertexTypeId> target_types;
  if (target_hop != nullptr) {
    target_types = target_hop->vertex_types;
  } else {
    target_types.resize(graph.num_vertex_types());
    for (std::size_t i = 0; i < target_types.size(); ++i) {
      target_types[i] = static_cast<VertexTypeId>(i);
    }
  }
  for (const VertexTypeId t : target_types) {
    out.sets.emplace(t, DynamicBitset(graph.vertex_type(t).num_vertices()));
  }
  auto target_passes = [&](VertexTypeId t, VertexIndex v) {
    if (target_hop == nullptr || target_hop->vertex_conds.empty()) {
      return true;
    }
    const VertexType& vt = graph.vertex_type(t);
    RowCursor cursor{&vt.source(), vt.representative_row(v)};
    const std::span<const RowCursor> span(&cursor, 1);
    for (const auto& cond : target_hop->vertex_conds) {
      if (!relational::eval_predicate(*cond, span, pool)) return false;
    }
    return true;
  };
  auto edge_passes = [&](const EdgeType& et, graph::EdgeIndex e) {
    if (hop.edge_conds.empty()) return true;
    GEMS_DCHECK(et.attr_table() != nullptr);
    RowCursor cursor{et.attr_table(), e};
    const std::span<const RowCursor> span(&cursor, 1);
    for (const auto& cond : hop.edge_conds) {
      if (!relational::eval_predicate(*cond, span, pool)) return false;
    }
    return true;
  };

  auto traverse = [&](const EdgeType& et) {
    // Forward hop prev --e--> cur: walking back from cur, prev is the
    // edge source -> use the reverse index keyed by target.
    const VertexTypeId cur_type =
        hop.reversed ? et.source_type() : et.target_type();
    const VertexTypeId prev_type =
        hop.reversed ? et.target_type() : et.source_type();
    if (!out.sets.contains(prev_type)) return;
    auto it = from.sets.find(cur_type);
    if (it == from.sets.end() || !it->second.any()) return;
    const CsrIndex& index = hop.reversed ? et.forward() : et.reverse();
    DynamicBitset& out_bits = out.sets.at(prev_type);
    it->second.for_each([&](std::size_t v) {
      const auto neighbors = index.neighbors(static_cast<VertexIndex>(v));
      const auto edge_ids = index.edges(static_cast<VertexIndex>(v));
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        const VertexIndex u = neighbors[i];
        if (stats != nullptr) ++stats->edge_traversals;
        if (out_bits.test(u)) continue;
        if (!edge_passes(et, edge_ids[i])) continue;
        if (target_passes(prev_type, u)) out_bits.set(u);
      }
    });
  };
  if (!hop.edge_types.empty()) {
    for (const EdgeTypeId id : hop.edge_types) traverse(graph.edge_type(id));
  } else {
    for (EdgeTypeId id = 0; id < graph.num_edge_types(); ++id) {
      traverse(graph.edge_type(id));
    }
  }
  return out;
}

Domain domain_union(Domain a, const Domain& b) {
  for (const auto& [type, bits] : b.sets) {
    auto it = a.sets.find(type);
    if (it == a.sets.end()) {
      a.sets.emplace(type, bits);
    } else {
      it->second |= bits;
    }
  }
  return a;
}

bool domain_subtract_into(Domain& frontier, const Domain& seen) {
  // frontier -= seen; returns whether anything remains.
  bool any = false;
  for (auto& [type, bits] : frontier.sets) {
    auto it = seen.sets.find(type);
    if (it != seen.sets.end()) bits.subtract(it->second);
    any = any || bits.any();
  }
  return any;
}

constexpr std::uint32_t kMaxExactRepeats = 1024;

/// Full-body forward application: runs all hops once.
Domain apply_body(const GraphView& graph, const StringPool& pool,
                  const GroupConstraint& g, Domain d, MatchStats* stats) {
  for (const GroupHop& hop : g.hops) {
    d = expand_hop(graph, pool, hop, d, stats);
    if (d.empty()) break;
  }
  return d;
}

Domain apply_body_back(const GraphView& graph, const StringPool& pool,
                       const GroupConstraint& g, Domain d,
                       MatchStats* stats) {
  for (std::size_t i = g.hops.size(); i-- > 0;) {
    const GroupHop* target = i == 0 ? nullptr : &g.hops[i - 1];
    d = expand_hop_back(graph, pool, g.hops[i], d, target, stats);
    if (d.empty()) break;
  }
  return d;
}

}  // namespace

/// Closure of the group going forward from `start`: all end-position
/// vertices after an admissible number of body iterations.
Result<Domain> group_closure_forward(const GraphView& graph,
                                     const StringPool& pool,
                                     const GroupConstraint& g,
                                     const Domain& start, MatchStats* stats) {
  using Quant = graql::PathGroup::Quant;
  if (g.quant == Quant::kExact) {
    if (g.count > kMaxExactRepeats) {
      return invalid_argument("path repetition count exceeds " +
                              std::to_string(kMaxExactRepeats));
    }
    Domain d = start;
    for (std::uint32_t i = 0; i < g.count && !d.empty(); ++i) {
      d = apply_body(graph, pool, g, std::move(d), stats);
    }
    return d;
  }
  // * and +: fixpoint over boundary positions.
  Domain reached = apply_body(graph, pool, g, start, stats);  // 1 iteration
  Domain frontier = reached;
  while (!frontier.empty()) {
    Domain next = apply_body(graph, pool, g, std::move(frontier), stats);
    if (!domain_subtract_into(next, reached)) break;
    reached = domain_union(std::move(reached), next);
    frontier = std::move(next);
  }
  if (g.quant == Quant::kStar) {
    // Zero iterations: the start vertices themselves qualify.
    reached = domain_union(std::move(reached), start);
  }
  return reached;
}

Result<Domain> group_closure_backward(const GraphView& graph,
                                      const StringPool& pool,
                                      const GroupConstraint& g,
                                      const Domain& end, MatchStats* stats) {
  using Quant = graql::PathGroup::Quant;
  if (g.quant == Quant::kExact) {
    if (g.count > kMaxExactRepeats) {
      return invalid_argument("path repetition count exceeds " +
                              std::to_string(kMaxExactRepeats));
    }
    Domain d = end;
    for (std::uint32_t i = 0; i < g.count && !d.empty(); ++i) {
      d = apply_body_back(graph, pool, g, std::move(d), stats);
    }
    return d;
  }
  Domain reached = apply_body_back(graph, pool, g, end, stats);
  Domain frontier = reached;
  while (!frontier.empty()) {
    Domain next = apply_body_back(graph, pool, g, std::move(frontier), stats);
    if (!domain_subtract_into(next, reached)) break;
    reached = domain_union(std::move(reached), next);
    frontier = std::move(next);
  }
  if (g.quant == Quant::kStar) {
    reached = domain_union(std::move(reached), end);
  }
  return reached;
}

bool vertex_passes(const ConstraintNetwork& net, const GraphView& graph,
                   const StringPool& pool, int var, VertexTypeId type,
                   VertexIndex v) {
  const VertexVar& vv = net.vars[var];
  if (vv.self_conds.empty()) return true;
  // Self conditions only dereference this variable's slot, so a cursor
  // span of var+1 entries suffices (the full kEdgeSourceBase-wide band
  // would cost a 64 KiB allocation per call — measured hot in planning).
  std::vector<RowCursor> cursors(static_cast<std::size_t>(var) + 1);
  const VertexType& vt = graph.vertex_type(type);
  cursors[var] = {&vt.source(), vt.representative_row(v)};
  for (const auto& pred : vv.self_conds) {
    if (!relational::eval_predicate(*pred, cursors, pool)) return false;
  }
  return true;
}

Domain initial_domain(const ConstraintNetwork& net, const GraphView& graph,
                      const StringPool& pool, int var) {
  const VertexVar& vv = net.vars[var];
  Domain d;
  // Self conditions reference only this variable's slot (see
  // vertex_passes): a right-sized cursor span avoids the wide band.
  std::vector<RowCursor> cursors(static_cast<std::size_t>(var) + 1);
  for (const VertexTypeId t : vv.types) {
    const VertexType& vt = graph.vertex_type(t);
    DynamicBitset bits(vt.num_vertices());
    const DynamicBitset* seed_bits =
        vv.seed ? vv.seed->vertices(t) : nullptr;
    if (vv.seed && seed_bits == nullptr) {
      // Seeded step with no members of this type: empty.
      d.sets.emplace(t, std::move(bits));
      continue;
    }
    for (VertexIndex v = 0; v < vt.num_vertices(); ++v) {
      if (seed_bits != nullptr && !seed_bits->test(v)) continue;
      if (!vv.self_conds.empty()) {
        cursors[var] = {&vt.source(), vt.representative_row(v)};
        bool ok = true;
        for (const auto& pred : vv.self_conds) {
          if (!relational::eval_predicate(*pred, cursors, pool)) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
      }
      bits.set(v);
    }
    d.sets.emplace(t, std::move(bits));
  }
  return d;
}

Result<MatchResult> match_network(const ConstraintNetwork& net,
                                  const GraphView& graph,
                                  const StringPool& pool,
                                  const std::vector<int>* order) {
  MatchResult result;
  result.domains.reserve(net.num_vars());
  for (std::size_t v = 0; v < net.num_vars(); ++v) {
    result.domains.push_back(
        initial_domain(net, graph, pool, static_cast<int>(v)));
  }

  Evaluator ev(net, graph, pool);

  // Support set of one side of an edge constraint given the other side.
  auto edge_support = [&](const EdgeConstraint& con,
                          bool from_left) -> Domain {
    const Domain& from =
        result.domains[from_left ? con.left_var : con.right_var];
    const Domain& to_shape =
        result.domains[from_left ? con.right_var : con.left_var];
    Domain support;
    for (const auto& [type, bits] : to_shape.sets) {
      support.sets.emplace(type, DynamicBitset(bits.size()));
    }
    const int con_index = static_cast<int>(&con - net.edges.data());
    for (const EdgeMove& move : con.moves) {
      const EdgeType& et = graph.edge_type(move.type);
      // move.forward: edge runs left->right. Walking from_left therefore
      // uses the forward CSR; walking from the right uses the reverse.
      const bool walk_forward = move.forward == from_left;
      const VertexTypeId from_type =
          walk_forward ? et.source_type() : et.target_type();
      const VertexTypeId to_type =
          walk_forward ? et.target_type() : et.source_type();
      auto from_it = from.sets.find(from_type);
      auto to_it = support.sets.find(to_type);
      if (from_it == from.sets.end() || to_it == support.sets.end()) {
        continue;
      }
      const CsrIndex& index = walk_forward ? et.forward() : et.reverse();
      const bool has_conds = !con.self_conds.empty();
      DynamicBitset& out_bits = to_it->second;
      from_it->second.for_each([&](std::size_t v) {
        const auto neighbors = index.neighbors(static_cast<VertexIndex>(v));
        const auto edges = index.edges(static_cast<VertexIndex>(v));
        for (std::size_t i = 0; i < neighbors.size(); ++i) {
          ++result.stats.edge_traversals;
          if (out_bits.test(neighbors[i])) continue;
          if (has_conds) {
            ev.set_edge(con_index, move.type, edges[i]);
            if (!ev.eval_all(con.self_conds)) continue;
          }
          out_bits.set(neighbors[i]);
        }
      });
    }
    return support;
  };

  // Constraint visit order: planner-supplied or natural.
  std::vector<int> visit;
  const std::size_t n_constraints =
      net.edges.size() + net.groups.size() + net.set_eqs.size();
  if (order != nullptr) {
    visit = *order;
    GEMS_CHECK(visit.size() == n_constraints);
  } else {
    visit.resize(n_constraints);
    for (std::size_t i = 0; i < n_constraints; ++i) {
      visit[i] = static_cast<int>(i);
    }
  }

  bool changed = true;
  while (changed) {
    changed = false;
    ++result.stats.propagation_passes;
    for (const int c : visit) {
      if (static_cast<std::size_t>(c) < net.edges.size()) {
        const EdgeConstraint& con = net.edges[c];
        Domain right_support = edge_support(con, /*from_left=*/true);
        changed |= result.domains[con.right_var].intersect(right_support);
        Domain left_support = edge_support(con, /*from_left=*/false);
        changed |= result.domains[con.left_var].intersect(left_support);
        continue;
      }
      std::size_t idx = static_cast<std::size_t>(c) - net.edges.size();
      if (idx < net.groups.size()) {
        const GroupConstraint& g = net.groups[idx];
        GEMS_ASSIGN_OR_RETURN(
            Domain fwd, group_closure_forward(graph, pool, g,
                                      result.domains[g.left_var],
                                      &result.stats));
        changed |= result.domains[g.right_var].intersect(fwd);
        GEMS_ASSIGN_OR_RETURN(
            Domain bwd, group_closure_backward(graph, pool, g,
                                       result.domains[g.right_var],
                                       &result.stats));
        changed |= result.domains[g.left_var].intersect(bwd);
        continue;
      }
      idx -= net.groups.size();
      const SetEqConstraint& se = net.set_eqs[idx];
      changed |= result.domains[se.var_a].intersect(result.domains[se.var_b]);
      changed |= result.domains[se.var_b].intersect(result.domains[se.var_a]);
    }
  }

  // ---- Matched edge sets (Eq. 5's E(q)) --------------------------------
  result.matched_edges.resize(net.edges.size());
  for (std::size_t c = 0; c < net.edges.size(); ++c) {
    const EdgeConstraint& con = net.edges[c];
    for (const EdgeMove& move : con.moves) {
      const EdgeType& et = graph.edge_type(move.type);
      const Domain& src_dom =
          result.domains[move.forward ? con.left_var : con.right_var];
      const Domain& dst_dom =
          result.domains[move.forward ? con.right_var : con.left_var];
      auto src_it = src_dom.sets.find(et.source_type());
      auto dst_it = dst_dom.sets.find(et.target_type());
      if (src_it == src_dom.sets.end() || dst_it == dst_dom.sets.end()) {
        continue;
      }
      DynamicBitset bits(et.num_edges());
      for (graph::EdgeIndex e = 0; e < et.num_edges(); ++e) {
        if (!src_it->second.test(et.source_vertex(e))) continue;
        if (!dst_it->second.test(et.target_vertex(e))) continue;
        if (!con.self_conds.empty()) {
          ev.set_edge(static_cast<int>(c), move.type, e);
          if (!ev.eval_all(con.self_conds)) continue;
        }
        bits.set(e);
      }
      auto [it, inserted] = result.matched_edges[c].emplace(move.type,
                                                            std::move(bits));
      if (!inserted) it->second |= bits;
    }
  }

  // ---- Group interior elements (for subgraph output) --------------------
  result.group_elements.reserve(net.groups.size());
  for (const GroupConstraint& g : net.groups) {
    Subgraph elements("group");
    // On-path boundary vertices: those both forward-reachable from the
    // left domain and backward-reachable from the right domain. Interior
    // marking walks the body once per boundary fixpoint position.
    GEMS_ASSIGN_OR_RETURN(
        Domain fwd, group_closure_forward(graph, pool, g, result.domains[g.left_var],
                                  &result.stats));
    GEMS_ASSIGN_OR_RETURN(
        Domain bwd, group_closure_backward(graph, pool, g,
                                   result.domains[g.right_var],
                                   &result.stats));
    // Boundary vertices usable mid-path (between iterations).
    Domain boundary = fwd;
    boundary.intersect(bwd);
    boundary = domain_union(std::move(boundary),
                            [&] {
                              Domain d = result.domains[g.left_var];
                              d.intersect(bwd);
                              return d;
                            }());
    Domain end = result.domains[g.right_var];
    end.intersect(fwd);
    boundary = domain_union(std::move(boundary), end);

    // Mark interior: walk hops forward from the boundary set, culling each
    // position by its backward reachability toward the boundary.
    std::vector<Domain> fwd_pos(g.hops.size() + 1);
    fwd_pos[0] = boundary;
    for (std::size_t i = 0; i < g.hops.size(); ++i) {
      fwd_pos[i + 1] =
          expand_hop(graph, pool, g.hops[i], fwd_pos[i], &result.stats);
    }
    std::vector<Domain> bwd_pos(g.hops.size() + 1);
    bwd_pos[g.hops.size()] = boundary;
    for (std::size_t i = g.hops.size(); i-- > 0;) {
      const GroupHop* target = i == 0 ? nullptr : &g.hops[i - 1];
      bwd_pos[i] = expand_hop_back(graph, pool, g.hops[i], bwd_pos[i + 1],
                                   target, &result.stats);
    }
    for (std::size_t i = 0; i <= g.hops.size(); ++i) {
      Domain on_path = fwd_pos[i];
      on_path.intersect(bwd_pos[i]);
      for (const auto& [type, bits] : on_path.sets) {
        if (!bits.any()) continue;
        DynamicBitset& out = elements.vertices(
            type, graph.vertex_type(type).num_vertices());
        out |= bits;
      }
    }
    // Mark on-path edges per hop.
    for (std::size_t i = 0; i < g.hops.size(); ++i) {
      Domain from = fwd_pos[i];
      from.intersect(bwd_pos[i]);
      Domain to = fwd_pos[i + 1];
      to.intersect(bwd_pos[i + 1]);
      const GroupHop& hop = g.hops[i];
      auto mark_edges = [&](const EdgeType& et) {
        const VertexTypeId cur_type =
            hop.reversed ? et.target_type() : et.source_type();
        const VertexTypeId next_type =
            hop.reversed ? et.source_type() : et.target_type();
        auto from_it = from.sets.find(cur_type);
        auto to_it = to.sets.find(next_type);
        if (from_it == from.sets.end() || to_it == to.sets.end()) return;
        DynamicBitset& out = elements.edges(et.id(), et.num_edges());
        for (graph::EdgeIndex e = 0; e < et.num_edges(); ++e) {
          const VertexIndex s = hop.reversed ? et.target_vertex(e)
                                             : et.source_vertex(e);
          const VertexIndex d = hop.reversed ? et.source_vertex(e)
                                             : et.target_vertex(e);
          if (!from_it->second.test(s) || !to_it->second.test(d)) continue;
          if (!hop.edge_conds.empty()) {
            RowCursor cursor{et.attr_table(), e};
            const std::span<const RowCursor> span(&cursor, 1);
            bool ok = true;
            for (const auto& cond : hop.edge_conds) {
              if (!relational::eval_predicate(*cond, span, pool)) {
                ok = false;
                break;
              }
            }
            if (!ok) continue;
          }
          out.set(e);
        }
      };
      if (!hop.edge_types.empty()) {
        for (const EdgeTypeId id : hop.edge_types) {
          mark_edges(graph.edge_type(id));
        }
      } else {
        for (EdgeTypeId id = 0; id < graph.num_edge_types(); ++id) {
          mark_edges(graph.edge_type(id));
        }
      }
    }
    result.group_elements.push_back(std::move(elements));
  }

  return result;
}

}  // namespace gems::exec
