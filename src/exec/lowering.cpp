#include "exec/lowering.hpp"

#include <unordered_set>

#include "common/check.hpp"

namespace gems::exec {

namespace {

using graph::EdgeType;
using graph::EdgeTypeId;
using graph::GraphView;
using graph::VertexType;
using graph::VertexTypeId;
using graql::EdgeStep;
using graql::GraphQueryStmt;
using graql::LabelKind;
using graql::PathElement;
using graql::PathGroup;
using graql::PathPattern;
using graql::VertexStep;
using relational::BoundExpr;
using relational::BoundExprPtr;
using relational::ExprPtr;
using relational::ParamMap;
using relational::Slot;
using storage::DataType;

/// All vertex type ids of the graph (variant step domain).
std::vector<VertexTypeId> all_vertex_types(const GraphView& graph) {
  std::vector<VertexTypeId> out(graph.num_vertex_types());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<VertexTypeId>(i);
  }
  return out;
}

/// Builds one network from one and-group.
class NetworkBuilder {
 public:
  NetworkBuilder(const GraphView& graph, const SubgraphResolver& subgraphs,
                 const ParamMap& params, StringPool& pool)
      : graph_(graph), subgraphs_(subgraphs), params_(params), pool_(pool) {}

  Status add_path(const PathPattern& path) {
    if (path.elements.empty() ||
        !std::holds_alternative<VertexStep>(path.elements.front())) {
      return invalid_argument("a path must start with a vertex step");
    }
    std::vector<int> chain;
    int prev_var = -1;
    const graql::EdgeStep* pending_edge = nullptr;

    for (const PathElement& el : path.elements) {
      if (const auto* v = std::get_if<VertexStep>(&el)) {
        GEMS_ASSIGN_OR_RETURN(int var, add_vertex_step(*v));
        if (pending_edge != nullptr) {
          GEMS_RETURN_IF_ERROR(add_edge_constraint(*pending_edge, prev_var,
                                                   var));
          pending_edge = nullptr;
        }
        prev_var = var;
        chain.push_back(var);
        continue;
      }
      if (const auto* e = std::get_if<EdgeStep>(&el)) {
        GEMS_CHECK(pending_edge == nullptr);
        pending_edge = e;
        continue;
      }
      const auto& group = std::get<PathGroup>(el);
      GEMS_ASSIGN_OR_RETURN(int var, add_group(group, prev_var));
      prev_var = var;
      chain.push_back(var);
    }
    if (pending_edge != nullptr) {
      return invalid_argument("a path must end with a vertex step");
    }
    net_.path_vars.push_back(std::move(chain));
    return Status::ok();
  }

  ConstraintNetwork take_network() {
    finalize_exactness();
    return std::move(net_);
  }
  std::map<std::string, StepRef> take_refs() { return std::move(refs_); }
  std::vector<std::pair<std::string, StepRef>> take_ordered() {
    return std::move(ordered_);
  }

 private:
  // ---- Steps ----------------------------------------------------------

  Result<int> add_vertex_step(const VertexStep& step) {
    // Label reference? (a name that matches a previously defined label)
    auto label_it = labels_.find(step.type_name);
    if (!step.variant && step.seed_result.empty() &&
        label_it != labels_.end()) {
      const LabelBinding& binding = label_it->second;
      if (binding.is_edge) {
        return type_error("label '" + step.type_name +
                          "' names an edge step");
      }
      int var;
      if (binding.element_wise) {
        var = binding.var;  // alias: the very same variable (Eq. 8)
        var_use_count_[var] += 1;
      } else {
        // Set label: fresh variable of the same types, tied by set
        // equality (Eq. 6/7).
        var = clone_var_shape(binding.var);
        net_.set_eqs.push_back({binding.var, var});
        // Eq. 12: when the labeled step is type-matching, the label's
        // type binds at matching time — occurrences must agree per
        // assignment.
        if (net_.vars[binding.var].variant) {
          net_.type_eqs.push_back({binding.var, var});
        }
      }
      if (step.condition) {
        GEMS_RETURN_IF_ERROR(attach_vertex_condition(var, step));
      }
      GEMS_RETURN_IF_ERROR(register_label(step, var, /*is_edge=*/false));
      return var;
    }

    VertexVar var;
    if (step.variant) {
      var.variant = true;
      var.types = all_vertex_types(graph_);
      var.display = step.label.empty()
                        ? "_v" + std::to_string(net_.vars.size())
                        : step.label;
    } else {
      GEMS_ASSIGN_OR_RETURN(VertexTypeId type,
                            graph_.find_vertex_type(step.type_name));
      var.types = {type};
      var.type_name = step.type_name;
      var.display = step.label.empty() ? step.type_name : step.label;
      if (!step.seed_result.empty()) {
        GEMS_ASSIGN_OR_RETURN(var.seed, subgraphs_(step.seed_result));
      }
    }
    var.label = step.label;
    const int index = static_cast<int>(net_.vars.size());
    net_.vars.push_back(std::move(var));
    var_use_count_[index] = 1;

    if (step.condition) {
      GEMS_RETURN_IF_ERROR(attach_vertex_condition(index, step));
    }
    GEMS_RETURN_IF_ERROR(register_label(step, index, /*is_edge=*/false));
    record_step(net_.vars[index].display, StepRef{false, index},
                net_.vars[index].type_name);
    return index;
  }

  int clone_var_shape(int src) {
    VertexVar var;
    var.types = net_.vars[src].types;
    var.variant = net_.vars[src].variant;
    var.type_name = net_.vars[src].type_name;
    var.display = "_ref" + std::to_string(net_.vars.size());
    const int index = static_cast<int>(net_.vars.size());
    net_.vars.push_back(std::move(var));
    var_use_count_[index] = 1;
    return index;
  }

  Status add_edge_constraint(const EdgeStep& step, int left, int right) {
    EdgeConstraint con;
    con.left_var = left;
    con.right_var = right;
    con.reversed = step.reversed;
    con.variant = step.variant;
    con.type_name = step.variant ? "" : step.type_name;
    con.label = step.label;
    con.display = !step.label.empty()
                      ? step.label
                      : (step.variant ? "_e" + std::to_string(net_.edges.size())
                                      : step.type_name);
    con.output_index = static_cast<int>(net_.edges.size());

    GEMS_ASSIGN_OR_RETURN(
        con.moves, resolve_moves(step, net_.vars[left], net_.vars[right]));

    // Push before binding conditions: slot_for() resolves the constraint
    // through net_.edges[edge_index].
    const int edge_index = static_cast<int>(net_.edges.size());
    net_.edges.push_back(std::move(con));
    if (step.condition) {
      GEMS_RETURN_IF_ERROR(
          attach_edge_condition(edge_index, net_.edges[edge_index], step));
    }
    if (step.label_kind != LabelKind::kNone) {
      if (labels_.contains(step.label)) {
        return already_exists("label '" + step.label + "' defined twice");
      }
      labels_.emplace(step.label,
                      LabelBinding{true, edge_index,
                                   step.label_kind == LabelKind::kForeach});
    }
    record_step(net_.edges[edge_index].display, StepRef{true, edge_index},
                net_.edges[edge_index].type_name);
    return Status::ok();
  }

  /// Resolves the admissible (edge type, direction) moves for a step
  /// between two variables — Eq. 10's union over matching edge types.
  Result<std::vector<EdgeMove>> resolve_moves(const EdgeStep& step,
                                              const VertexVar& left,
                                              const VertexVar& right) {
    std::vector<EdgeMove> moves;
    if (!step.variant) {
      GEMS_ASSIGN_OR_RETURN(EdgeTypeId id,
                            graph_.find_edge_type(step.type_name));
      const EdgeType& et = graph_.edge_type(id);
      // Forward lexical step: left --e--> right needs src=left, dst=right.
      // Reversed: left <--e-- right needs src=right, dst=left.
      const auto& src_types = step.reversed ? right.types : left.types;
      const auto& dst_types = step.reversed ? left.types : right.types;
      const bool src_ok =
          std::find(src_types.begin(), src_types.end(), et.source_type()) !=
          src_types.end();
      const bool dst_ok =
          std::find(dst_types.begin(), dst_types.end(), et.target_type()) !=
          dst_types.end();
      if (!src_ok || !dst_ok) {
        return type_error("edge '" + step.type_name +
                          "' does not connect these step types in this "
                          "direction");
      }
      moves.push_back({id, /*forward=*/!step.reversed});
      return moves;
    }
    // Variant edge: any edge type whose endpoints fit the adjacent
    // variables given the lexical direction.
    for (EdgeTypeId id = 0; id < graph_.num_edge_types(); ++id) {
      const EdgeType& et = graph_.edge_type(id);
      const auto& src_types = step.reversed ? right.types : left.types;
      const auto& dst_types = step.reversed ? left.types : right.types;
      const bool src_ok =
          std::find(src_types.begin(), src_types.end(), et.source_type()) !=
          src_types.end();
      const bool dst_ok =
          std::find(dst_types.begin(), dst_types.end(), et.target_type()) !=
          dst_types.end();
      if (src_ok && dst_ok) moves.push_back({id, !step.reversed});
    }
    if (moves.empty()) {
      return invalid_argument(
          "no edge type connects the adjacent steps (statically empty "
          "variant step)");
    }
    return moves;
  }

  Result<int> add_group(const PathGroup& group, int prev_var) {
    GEMS_CHECK(prev_var >= 0);
    GroupConstraint con;
    con.left_var = prev_var;
    con.quant = group.quant;
    con.count = group.count;

    // Body: alternating edge/vertex steps (parser guarantees shape).
    // The final body vertex becomes an implicit variable (the group's
    // right endpoint): the closure lands on vertices satisfying it.
    const VertexStep* last_vertex = nullptr;
    for (std::size_t i = 0; i < group.body.size(); i += 2) {
      const auto& e = std::get<EdgeStep>(group.body[i]);
      const auto& v = std::get<VertexStep>(group.body[i + 1]);
      if (e.label_kind != LabelKind::kNone ||
          v.label_kind != LabelKind::kNone) {
        return invalid_argument(
            "labels are not allowed inside path regular expressions");
      }
      GroupHop hop;
      hop.reversed = e.reversed;
      hop.edge_variant = e.variant;
      if (!e.variant) {
        GEMS_ASSIGN_OR_RETURN(EdgeTypeId id,
                              graph_.find_edge_type(e.type_name));
        hop.edge_types = {id};
      }
      if (e.condition) {
        if (e.variant) {
          return invalid_argument("conditions on variant steps");
        }
        const graph::EdgeType& et =
            graph_.edge_type(hop.edge_types.front());
        if (et.attr_table() == nullptr) {
          return type_error("edge type '" + e.type_name +
                            "' has no attributes to filter on");
        }
        relational::TableScope scope(*et.attr_table(), e.type_name);
        GEMS_ASSIGN_OR_RETURN(
            BoundExprPtr bound,
            relational::bind_predicate(e.condition, scope, params_, pool_));
        hop.edge_conds.push_back(std::move(bound));
      }
      hop.vertex_variant = v.variant;
      if (!v.variant) {
        GEMS_ASSIGN_OR_RETURN(VertexTypeId id,
                              graph_.find_vertex_type(v.type_name));
        hop.vertex_types = {id};
      } else {
        hop.vertex_types = all_vertex_types(graph_);
      }
      if (v.condition) {
        if (v.variant) {
          return invalid_argument("conditions on variant steps");
        }
        // Bound with slot source pointing at the group's right var; but
        // hop conditions apply to intermediate vertices too — they are
        // evaluated against the hop vertex's own cursor, so bind with a
        // dedicated single-source scope (source id = 0) and evaluate with
        // a one-element cursor span at match time.
        const VertexType& vt =
            graph_.vertex_type(hop.vertex_types.front());
        relational::TableScope scope(vt.source(), v.type_name);
        GEMS_ASSIGN_OR_RETURN(
            BoundExprPtr bound,
            relational::bind_predicate(v.condition, scope, params_, pool_));
        hop.vertex_conds.push_back(std::move(bound));
      }
      con.hops.push_back(std::move(hop));
      last_vertex = &v;
    }
    GEMS_CHECK(last_vertex != nullptr);

    // Right endpoint variable: shaped like the last body vertex.
    VertexVar var;
    var.variant = last_vertex->variant;
    var.types = con.hops.back().vertex_types;
    var.type_name = last_vertex->variant ? "" : last_vertex->type_name;
    var.display = "_g" + std::to_string(net_.groups.size());
    const int index = static_cast<int>(net_.vars.size());
    net_.vars.push_back(std::move(var));
    var_use_count_[index] = 1;
    con.right_var = index;
    net_.groups.push_back(std::move(con));
    // Groups are opaque: no step registration, no labels inside.
    return index;
  }

  // ---- Conditions -------------------------------------------------------

  /// Scope for a step condition: bare columns and the step's own names
  /// resolve to `self`; labels and earlier step type names resolve to
  /// their variables/edges.
  class StepScope final : public relational::Scope {
   public:
    StepScope(NetworkBuilder& b, StepRef self, std::string self_name,
              std::string self_label)
        : b_(b),
          self_(self),
          self_name_(std::move(self_name)),
          self_label_(std::move(self_label)) {}

    Result<Slot> resolve(std::string_view qual,
                         std::string_view col) const override {
      StepRef target = self_;
      if (!(qual.empty() || qual == self_name_ ||
            (!self_label_.empty() && qual == self_label_))) {
        auto it = b_.refs_.find(std::string(qual));
        if (it == b_.refs_.end()) {
          return not_found("unknown qualifier '" + std::string(qual) +
                           "' in step condition");
        }
        target = it->second;
      }
      return b_.slot_for(target, col);
    }

   private:
    NetworkBuilder& b_;
    StepRef self_;
    std::string self_name_;
    std::string self_label_;
  };

  /// Slot for (step, column): source id = var index for vertices,
  /// num_vars_budget + edge index for edges. Because var count grows
  /// during lowering, edge sources use a fixed offset (kEdgeSourceBase).
  Result<Slot> slot_for(StepRef ref, std::string_view col) {
    if (!ref.is_edge) {
      const VertexVar& var = net_.vars[ref.index];
      if (var.variant) {
        return type_error("variant steps have no referencable attributes");
      }
      const VertexType& vt = graph_.vertex_type(var.types.front());
      GEMS_ASSIGN_OR_RETURN(storage::ColumnIndex idx,
                            vt.resolve_attribute(col));
      return Slot{static_cast<std::uint16_t>(ref.index), idx,
                  vt.source().schema().column(idx).type};
    }
    const EdgeConstraint& con = net_.edges[ref.index];
    if (con.variant) {
      return type_error("variant steps have no referencable attributes");
    }
    const EdgeType& et = graph_.edge_type(con.moves.front().type);
    GEMS_ASSIGN_OR_RETURN(storage::ColumnIndex idx,
                          et.resolve_attribute(col));
    return Slot{static_cast<std::uint16_t>(kEdgeSourceBase + ref.index), idx,
                et.attr_table()->schema().column(idx).type};
  }

  Status attach_vertex_condition(int var, const VertexStep& step) {
    StepScope scope(*this, StepRef{false, var}, step.type_name, step.label);
    return attach_condition(step.condition, scope, var, /*self_edge=*/-1);
  }

  Status attach_edge_condition(int edge_index, EdgeConstraint& con,
                               const EdgeStep& step) {
    StepScope scope(*this, StepRef{true, edge_index}, step.type_name,
                    step.label);
    // Bind each conjunct; self-only ones filter during propagation.
    for (const ExprPtr& conjunct :
         relational::split_conjuncts(step.condition)) {
      GEMS_ASSIGN_OR_RETURN(
          BoundExprPtr bound,
          relational::bind_predicate(conjunct, scope, params_, pool_));
      std::vector<int> sources;
      collect_slot_sources(*bound, sources);
      const int self_source = kEdgeSourceBase + edge_index;
      const bool self_only =
          sources.empty() ||
          (sources.size() == 1 && sources[0] == self_source);
      if (self_only) {
        con.self_conds.push_back(std::move(bound));
      } else {
        CrossPred pred;
        pred.pred = std::move(bound);
        pred.vars = std::move(sources);
        net_.cross_preds.push_back(std::move(pred));
      }
    }
    return Status::ok();
  }

  Status attach_condition(const ExprPtr& condition, const StepScope& scope,
                          int self_var, int /*self_edge*/) {
    for (const ExprPtr& conjunct : relational::split_conjuncts(condition)) {
      GEMS_ASSIGN_OR_RETURN(
          BoundExprPtr bound,
          relational::bind_predicate(conjunct, scope, params_, pool_));
      std::vector<int> sources;
      collect_slot_sources(*bound, sources);
      const bool self_only =
          sources.empty() ||
          (sources.size() == 1 && sources[0] == self_var);
      if (self_only) {
        VertexVar& vv = net_.vars[self_var];
        vv.self_conds.push_back(std::move(bound));
        // Kernel form for the matcher's batched domain scan. A nullptr
        // entry (conjunct not vectorizable) keeps the slot index-aligned;
        // the matcher then falls back to row evaluation for this var.
        vv.self_cond_kernels.push_back(relational::VectorExpr::compile(
            *vv.self_conds.back(), static_cast<std::uint16_t>(self_var),
            pool_));
      } else {
        CrossPred pred;
        pred.pred = std::move(bound);
        pred.vars = std::move(sources);
        net_.cross_preds.push_back(std::move(pred));
      }
    }
    return Status::ok();
  }

  static void collect_slot_sources(const BoundExpr& e,
                                   std::vector<int>& out) {
    switch (e.kind) {
      case BoundExpr::Kind::kColumnRef: {
        const int s = e.slot.source;
        if (std::find(out.begin(), out.end(), s) == out.end()) {
          out.push_back(s);
        }
        return;
      }
      case BoundExpr::Kind::kConst:
        return;
      case BoundExpr::Kind::kUnary:
        collect_slot_sources(*e.lhs, out);
        return;
      case BoundExpr::Kind::kBinary:
        collect_slot_sources(*e.lhs, out);
        collect_slot_sources(*e.rhs, out);
        return;
    }
  }

  // ---- Labels / registry -----------------------------------------------

  struct LabelBinding {
    bool is_edge = false;
    int var = -1;  // var index or edge index
    bool element_wise = false;
  };

  Status register_label(const VertexStep& step, int var, bool is_edge) {
    if (step.label_kind == LabelKind::kNone) return Status::ok();
    if (labels_.contains(step.label)) {
      return already_exists("label '" + step.label + "' defined twice");
    }
    labels_.emplace(step.label,
                    LabelBinding{is_edge, var,
                                 step.label_kind == LabelKind::kForeach});
    record_step(step.label, StepRef{is_edge, var});
    return Status::ok();
  }

  /// Registers a step in the target registry under its display name (and
  /// optionally an alias — labeled steps stay addressable by their type
  /// name too, matching the analyzer). Only the display name enters the
  /// `select *` ordering.
  void record_step(const std::string& display, StepRef ref,
                   const std::string& alias = "") {
    if (display.empty() || display[0] == '_') return;  // internal names
    if (refs_.emplace(display, ref).second) {
      ordered_.emplace_back(display, ref);
    }
    if (!alias.empty() && alias[0] != '_') refs_.emplace(alias, ref);
  }

  // ---- Exactness ---------------------------------------------------------

  void finalize_exactness() {
    if (!net_.cross_preds.empty() || !net_.type_eqs.empty()) {
      net_.tree_exact = false;
      return;
    }
    // Cycle check over vars with edge/group/set-eq constraints as edges.
    std::vector<int> parent(net_.vars.size());
    for (std::size_t i = 0; i < parent.size(); ++i) {
      parent[i] = static_cast<int>(i);
    }
    std::function<int(int)> find = [&](int x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    auto unite = [&](int a, int b) {
      a = find(a);
      b = find(b);
      if (a == b) {
        net_.tree_exact = false;  // cycle
        return;
      }
      parent[a] = b;
    };
    for (const auto& e : net_.edges) unite(e.left_var, e.right_var);
    for (const auto& g : net_.groups) unite(g.left_var, g.right_var);
    for (const auto& s : net_.set_eqs) unite(s.var_a, s.var_b);
  }

 private:
  const GraphView& graph_;
  const SubgraphResolver& subgraphs_;
  const ParamMap& params_;
  StringPool& pool_;

  ConstraintNetwork net_;
  std::map<std::string, LabelBinding> labels_;
  std::map<std::string, StepRef> refs_;
  std::vector<std::pair<std::string, StepRef>> ordered_;
  std::map<int, int> var_use_count_;
};

}  // namespace

Result<LoweredQuery> lower_graph_query(const GraphQueryStmt& stmt,
                                       const GraphView& graph,
                                       const SubgraphResolver& subgraphs,
                                       const ParamMap& params,
                                       StringPool& pool) {
  LoweredQuery out;
  for (const auto& and_group : stmt.or_groups) {
    NetworkBuilder builder(graph, subgraphs, params, pool);
    for (const PathPattern& path : and_group) {
      GEMS_RETURN_IF_ERROR(builder.add_path(path));
    }
    out.networks.push_back(builder.take_network());
    out.step_refs.push_back(builder.take_refs());
    out.ordered_steps.push_back(builder.take_ordered());
  }
  return out;
}

}  // namespace gems::exec
