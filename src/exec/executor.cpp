#include "exec/executor.hpp"

#include <algorithm>
#include <chrono>
#include "graph/delta.hpp"

#include "common/check.hpp"
#include "common/timer.hpp"
#include "exec/enumerate.hpp"
#include "exec/lowering.hpp"
#include "exec/matcher.hpp"
#include "relational/eval.hpp"
#include "relational/operators.hpp"
#include "storage/csv.hpp"

namespace gems::exec {

namespace {

using graph::EdgeRef;
using graph::EdgeType;
using graph::GraphView;
using graph::VertexRef;
using graph::VertexType;
using graql::AggFunc;
using graql::GraphQueryStmt;
using graql::IntoKind;
using graql::TableQueryStmt;
using relational::AggKind;
using relational::AggSpec;
using relational::BoundExprPtr;
using relational::OutputColumn;
using relational::SortKey;
using storage::ColumnDef;
using storage::ColumnIndex;
using storage::DataType;
using storage::RowIndex;
using storage::Schema;
using storage::Table;
using storage::TablePtr;
using storage::Value;

// =====================  Graph queries  ====================================

/// Attribute source of one output column within one network.
struct ColSource {
  enum class Kind : std::uint8_t { kNone, kVertex, kEdge };
  Kind kind = Kind::kNone;
  int index = -1;  // var index or edge-constraint index
  ColumnIndex column = 0;
};

struct OutCol {
  std::string name;
  DataType type;
  std::vector<ColSource> per_network;  // indexed by network
};

/// Attribute schema of a step (vertex: full source schema; edge: attribute
/// table schema; null when the step has none or is variant).
const Schema* step_schema(const ConstraintNetwork& net, const GraphView& g,
                          const StepRef& ref) {
  if (!ref.is_edge) {
    const VertexVar& var = net.vars[ref.index];
    if (var.variant) return nullptr;
    return &g.vertex_type(var.types.front()).source().schema();
  }
  const EdgeConstraint& con = net.edges[ref.index];
  if (con.variant) return nullptr;
  const Table* attrs = g.edge_type(con.moves.front().type).attr_table();
  return attrs == nullptr ? nullptr : &attrs->schema();
}

struct MergedStep {
  std::string display;
  std::vector<std::optional<StepRef>> per_network;
};

std::vector<MergedStep> merge_steps(const LoweredQuery& lowered) {
  std::vector<MergedStep> merged;
  std::map<std::string, std::size_t> index;
  const std::size_t n = lowered.networks.size();
  for (std::size_t net = 0; net < n; ++net) {
    for (const auto& [display, ref] : lowered.ordered_steps[net]) {
      auto [it, inserted] = index.emplace(display, merged.size());
      if (inserted) {
        merged.push_back({display, std::vector<std::optional<StepRef>>(n)});
      }
      merged[it->second].per_network[net] = ref;
    }
  }
  return merged;
}

/// Builds the output schema for table materialization, matching the
/// analyzer's inference (both use OutputNamer and the same expansion
/// rules).
Result<std::vector<OutCol>> build_out_cols(const GraphQueryStmt& stmt,
                                           const LoweredQuery& lowered,
                                           const GraphView& graph) {
  const std::size_t n = lowered.networks.size();
  const auto merged = merge_steps(lowered);
  graql::OutputNamer namer;
  std::vector<OutCol> cols;

  auto expand_step = [&](const MergedStep& step,
                         const std::string& display) -> Status {
    // Column set comes from the first network defining the step.
    const Schema* schema = nullptr;
    for (std::size_t net = 0; net < n && schema == nullptr; ++net) {
      if (!step.per_network[net]) continue;
      const StepRef& ref = *step.per_network[net];
      if ((ref.is_edge && lowered.networks[net].edges[ref.index].variant) ||
          (!ref.is_edge && lowered.networks[net].vars[ref.index].variant)) {
        return type_error(
            "variant '[ ]' steps cannot be selected into a table; use "
            "'into subgraph'");
      }
      schema = step_schema(lowered.networks[net], graph, ref);
    }
    if (schema == nullptr) return Status::ok();  // attribute-less edge
    for (ColumnIndex c = 0; c < schema->num_columns(); ++c) {
      OutCol col;
      col.name = namer.assign(display + "_" + schema->column(c).name, "");
      col.type = schema->column(c).type;
      col.per_network.resize(n);
      for (std::size_t net = 0; net < n; ++net) {
        if (!step.per_network[net]) continue;
        const StepRef& ref = *step.per_network[net];
        const Schema* s = step_schema(lowered.networks[net], graph, ref);
        if (s == nullptr) continue;
        auto idx = s->find(schema->column(c).name);
        if (!idx) continue;
        col.per_network[net] = {ref.is_edge ? ColSource::Kind::kEdge
                                            : ColSource::Kind::kVertex,
                                ref.index, *idx};
      }
      cols.push_back(std::move(col));
    }
    return Status::ok();
  };

  for (const auto& target : stmt.targets) {
    if (target.star) {
      // Fig. 13: "each row has all the attributes of all entities involved
      // in the query path" — impossible when a step is variant, so reject
      // (matches the static analyzer).
      for (const auto& net : lowered.networks) {
        for (const auto& var : net.vars) {
          // Group endpoints (display "_g<n>") are opaque regex interiors
          // and simply contribute no columns; explicit `[ ]` steps are an
          // error.
          const bool group_endpoint = var.display.rfind("_g", 0) == 0;
          if (var.variant && !group_endpoint) {
            return type_error(
                "variant '[ ]' steps cannot be selected into a table; use "
                "'into subgraph'");
          }
        }
        for (const auto& con : net.edges) {
          if (con.variant) {
            return type_error(
                "variant '[ ]' steps cannot be selected into a table; use "
                "'into subgraph'");
          }
        }
      }
      for (const auto& step : merged) {
        GEMS_RETURN_IF_ERROR(expand_step(step, step.display));
      }
      continue;
    }
    // Locate the step by qualifier in each network's registry (covers
    // labels and the type-name aliases of labeled steps).
    MergedStep resolved;
    resolved.display = target.qualifier;
    resolved.per_network.resize(n);
    bool found = false;
    for (std::size_t net = 0; net < n; ++net) {
      auto it = lowered.step_refs[net].find(target.qualifier);
      if (it == lowered.step_refs[net].end()) continue;
      resolved.per_network[net] = it->second;
      found = true;
    }
    if (!found) {
      return not_found("select target '" + target.qualifier +
                       "' does not name a step of this query");
    }
    const MergedStep* step = &resolved;
    if (target.column.empty()) {
      GEMS_RETURN_IF_ERROR(expand_step(
          *step, target.alias.empty() ? target.qualifier : target.alias));
      continue;
    }
    OutCol col;
    col.per_network.resize(n);
    bool typed = false;
    for (std::size_t net = 0; net < n; ++net) {
      if (!step->per_network[net]) continue;
      const StepRef& ref = *step->per_network[net];
      const Schema* s = step_schema(lowered.networks[net], graph, ref);
      if (s == nullptr) {
        return type_error("step '" + target.qualifier +
                          "' has no attributes");
      }
      auto idx = s->find(target.column);
      if (!idx) {
        return not_found("step '" + target.qualifier +
                         "' has no attribute '" + target.column + "'");
      }
      // For vertex steps, enforce many-to-one visibility.
      if (!ref.is_edge) {
        const VertexVar& var = lowered.networks[net].vars[ref.index];
        const VertexType& vt = graph.vertex_type(var.types.front());
        GEMS_RETURN_IF_ERROR(vt.resolve_attribute(target.column).status());
      }
      if (!typed) {
        col.type = s->column(*idx).type;
        typed = true;
      }
      col.per_network[net] = {ref.is_edge ? ColSource::Kind::kEdge
                                          : ColSource::Kind::kVertex,
                              ref.index, *idx};
    }
    GEMS_CHECK(typed);
    col.name = namer.assign(
        target.alias.empty() ? target.column : target.alias,
        target.qualifier);
    cols.push_back(std::move(col));
  }
  return cols;
}

/// Steps contributing elements to a subgraph result.
struct SubgraphSelection {
  bool star = false;
  std::vector<int> vertex_vars;
  std::vector<int> edge_cons;
};

Result<SubgraphSelection> resolve_subgraph_targets(
    const GraphQueryStmt& stmt, const LoweredQuery& lowered,
    std::size_t net_index) {
  SubgraphSelection sel;
  const auto& refs = lowered.step_refs[net_index];
  for (const auto& target : stmt.targets) {
    if (target.star) {
      sel.star = true;
      for (std::size_t v = 0; v < lowered.networks[net_index].num_vars();
           ++v) {
        sel.vertex_vars.push_back(static_cast<int>(v));
      }
      for (std::size_t c = 0; c < lowered.networks[net_index].edges.size();
           ++c) {
        sel.edge_cons.push_back(static_cast<int>(c));
      }
      return sel;
    }
    if (!target.column.empty()) {
      return invalid_argument(
          "attribute selections ('" + target.qualifier + "." +
          target.column + "') require 'into table'");
    }
    auto it = refs.find(target.qualifier);
    if (it == refs.end()) continue;  // step lives in another or-branch
    if (it->second.is_edge) {
      sel.edge_cons.push_back(it->second.index);
    } else {
      sel.vertex_vars.push_back(it->second.index);
    }
  }
  return sel;
}

void mark_domain(Subgraph& out, const GraphView& graph, const Domain& d) {
  for (const auto& [type, bits] : d.sets) {
    if (!bits.any()) continue;
    out.vertices(type, graph.vertex_type(type).num_vertices()) |= bits;
  }
}

Result<SubgraphPtr> collect_subgraph(const GraphQueryStmt& stmt,
                                     const LoweredQuery& lowered,
                                     const ExecContext& ctx,
                                     const std::vector<MatchResult>& matches,
                                     const std::vector<NetworkPlan>& plans,
                                     bool* truncated) {
  auto out = std::make_shared<Subgraph>(
      stmt.into_name.empty() ? "result" : stmt.into_name);
  const GraphView& graph = ctx.graph;

  for (std::size_t n = 0; n < lowered.networks.size(); ++n) {
    const ConstraintNetwork& net = lowered.networks[n];
    const MatchResult& match = matches[n];
    if (match.empty()) continue;
    GEMS_ASSIGN_OR_RETURN(SubgraphSelection sel,
                          resolve_subgraph_targets(stmt, lowered, n));

    if (net.tree_exact) {
      for (const int v : sel.vertex_vars) {
        mark_domain(*out, graph, match.domains[v]);
      }
      for (const int c : sel.edge_cons) {
        for (const auto& [type, bits] : match.matched_edges[c]) {
          if (!bits.any()) continue;
          out->edges(type, graph.edge_type(type).num_edges()) |= bits;
        }
      }
      if (sel.star) {
        for (const Subgraph& g : match.group_elements) out->merge(g);
      }
      continue;
    }

    // Non-tree networks: enumerate and mark elements actually used.
    EnumOptions options;
    options.max_rows = ctx.max_result_rows;
    options.root_var = plans[n].root_var;
    auto emit = [&](std::span<const VertexRef> vertices,
                    std::span<const EdgeRef> edges) {
      for (const int v : sel.vertex_vars) {
        const VertexRef ref = vertices[v];
        out->vertices(ref.type,
                      graph.vertex_type(ref.type).num_vertices())
            .set(ref.index);
      }
      for (const int c : sel.edge_cons) {
        const EdgeRef ref = edges[c];
        if (!ref.valid()) continue;
        out->edges(ref.type, graph.edge_type(ref.type).num_edges())
            .set(ref.index);
      }
      return true;
    };
    GEMS_ASSIGN_OR_RETURN(
        EnumStats stats,
        enumerate_assignments(net, graph, *ctx.pool, match, options, emit));
    if (stats.truncated && truncated != nullptr) *truncated = true;
    if (sel.star) {
      // Group interiors come from the fixpoint marking (groups cannot be
      // constrained by cross predicates, so this stays exact).
      for (const Subgraph& g : match.group_elements) out->merge(g);
    }
  }
  return out;
}

Result<TablePtr> collect_table(const GraphQueryStmt& stmt,
                               const LoweredQuery& lowered,
                               const ExecContext& ctx,
                               const std::vector<MatchResult>& matches,
                               const std::vector<NetworkPlan>& plans,
                               bool* truncated) {
  const GraphView& graph = ctx.graph;
  GEMS_ASSIGN_OR_RETURN(std::vector<OutCol> cols,
                        build_out_cols(stmt, lowered, graph));
  std::vector<ColumnDef> defs;
  defs.reserve(cols.size());
  for (const auto& c : cols) defs.push_back({c.name, c.type});
  GEMS_ASSIGN_OR_RETURN(Schema schema, Schema::create(std::move(defs)));
  auto out = std::make_shared<Table>(
      stmt.into_name.empty() ? "result" : stmt.into_name, std::move(schema),
      *ctx.pool);

  std::vector<Value> row(cols.size());
  for (std::size_t n = 0; n < lowered.networks.size(); ++n) {
    const ConstraintNetwork& net = lowered.networks[n];
    const MatchResult& match = matches[n];
    if (match.empty()) continue;

    EnumOptions options;
    options.max_rows = ctx.max_result_rows;
    options.root_var = plans[n].root_var;
    auto emit = [&](std::span<const VertexRef> vertices,
                    std::span<const EdgeRef> edges) {
      for (std::size_t c = 0; c < cols.size(); ++c) {
        const ColSource& src = cols[c].per_network[n];
        switch (src.kind) {
          case ColSource::Kind::kNone:
            row[c] = Value::null();
            break;
          case ColSource::Kind::kVertex: {
            const VertexRef ref = vertices[src.index];
            const VertexType& vt = graph.vertex_type(ref.type);
            row[c] = vt.source().value_at(vt.representative_row(ref.index),
                                          src.column);
            break;
          }
          case ColSource::Kind::kEdge: {
            const EdgeRef ref = edges[src.index];
            const Table* attrs = graph.edge_type(ref.type).attr_table();
            row[c] = attrs == nullptr
                         ? Value::null()
                         : attrs->value_at(ref.index, src.column);
            break;
          }
        }
      }
      out->append_row_unchecked(row);
      return true;
    };
    GEMS_ASSIGN_OR_RETURN(
        EnumStats stats,
        enumerate_assignments(net, graph, *ctx.pool, match, options, emit));
    if (stats.truncated && truncated != nullptr) *truncated = true;
  }
  return out;
}

/// Resolves the `from table` / `output` source: the script-local overlay
/// shadows the shared catalog (shared-path scripts see their own staged
/// `into` results, exactly as a serial script would).
Result<TablePtr> find_source_table(const ExecContext& ctx,
                                   const CatalogOverlay* overlay,
                                   const std::string& name) {
  if (overlay != nullptr) {
    auto it = overlay->tables.find(name);
    if (it != overlay->tables.end()) return it->second;
  }
  return ctx.tables.find(name);
}

/// Shared body of execute_graph_query / execute_statement_read: runs the
/// query against an immutable context with explicit params and returns
/// the result *without* registering `into` objects anywhere — the caller
/// decides between the shared catalog (exclusive path) and a script-local
/// overlay (shared path).
Result<StatementResult> graph_query_core(const GraphQueryStmt& stmt,
                                         const ExecContext& ctx,
                                         const relational::ParamMap& params,
                                         const CatalogOverlay* overlay) {
  SubgraphResolver resolver =
      [&ctx, overlay](const std::string& name) -> Result<SubgraphPtr> {
    if (overlay != nullptr) {
      auto staged = overlay->subgraphs.find(name);
      if (staged != overlay->subgraphs.end()) return staged->second;
    }
    auto it = ctx.subgraphs.find(name);
    if (it == ctx.subgraphs.end()) {
      return not_found("unknown result subgraph '" + name + "'");
    }
    return it->second;
  };
  GEMS_ASSIGN_OR_RETURN(
      LoweredQuery lowered,
      lower_graph_query(stmt, ctx.graph, resolver, params, *ctx.pool));
  // Lowering has no ExecContext access, so the batch policy is stamped
  // onto each network here (matcher domain scans consult it).
  for (auto& net : lowered.networks) net.batch_policy = ctx.batch_policy;

  std::vector<MatchResult> matches;
  std::vector<NetworkPlan> plans(lowered.networks.size());
  matches.reserve(lowered.networks.size());
  for (std::size_t i = 0; i < lowered.networks.size(); ++i) {
    const auto& net = lowered.networks[i];
    if (ctx.planner) plans[i] = ctx.planner(net);
    const std::vector<int>* order =
        plans[i].constraint_order.empty() ? nullptr
                                          : &plans[i].constraint_order;
    // Cluster hand-off: offer the network to the distributed matcher
    // first. kUnimplemented = not distributable, fall through to the
    // local matcher; any other error fails the statement.
    if (ctx.dist_matcher) {
      Result<MatchResult> dist =
          ctx.dist_matcher(stmt, i, net, params, ctx);
      if (dist.is_ok()) {
        matches.push_back(std::move(dist).value());
        continue;
      }
      if (dist.status().code() != StatusCode::kUnimplemented) {
        return dist.status();
      }
    }
    GEMS_ASSIGN_OR_RETURN(MatchResult m,
                          match_network(net, ctx.graph, *ctx.pool, order,
                                        ctx.intra_pool));
    if (ctx.matcher_metrics) ctx.matcher_metrics->record(m.stats);
    matches.push_back(std::move(m));
  }

  StatementResult result;
  result.into = stmt.into;
  result.into_name = stmt.into_name;
  if (stmt.into == IntoKind::kSubgraph) {
    GEMS_ASSIGN_OR_RETURN(
        SubgraphPtr sub,
        collect_subgraph(stmt, lowered, ctx, matches, plans,
                         &result.truncated));
    result.kind = StatementResult::Kind::kSubgraph;
    result.subgraph = std::move(sub);
    result.message = result.subgraph->summary();
    return result;
  }

  GEMS_ASSIGN_OR_RETURN(
      TablePtr table,
      collect_table(stmt, lowered, ctx, matches, plans,
                    &result.truncated));
  result.kind = StatementResult::Kind::kTable;
  result.table = std::move(table);
  result.message = result.table->name() + ": " +
                   std::to_string(result.table->num_rows()) + " rows";
  return result;
}

}  // namespace

Result<StatementResult> execute_graph_query(const GraphQueryStmt& stmt,
                                            ExecContext& ctx) {
  GEMS_ASSIGN_OR_RETURN(
      StatementResult result,
      graph_query_core(stmt, ctx, ctx.params, /*overlay=*/nullptr));
  if (!ctx.defer_catalog_writes) commit_result(result, ctx);
  return result;
}

// =====================  Table queries  =====================================

namespace {

Result<AggKind> to_agg_kind(AggFunc f) {
  switch (f) {
    case AggFunc::kCountStar:
      return AggKind::kCountStar;
    case AggFunc::kCount:
      return AggKind::kCount;
    case AggFunc::kSum:
      return AggKind::kSum;
    case AggFunc::kAvg:
      return AggKind::kAvg;
    case AggFunc::kMin:
      return AggKind::kMin;
    case AggFunc::kMax:
      return AggKind::kMax;
    case AggFunc::kNone:
      break;
  }
  return internal_error("not an aggregate");
}

std::string default_item_name(const graql::SelectItem& item,
                              std::size_t* anon) {
  switch (item.agg) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kNone:
      break;
  }
  if (item.expr->kind == relational::Expr::Kind::kColumnRef) {
    return item.expr->column;
  }
  return "expr" + std::to_string((*anon)++);
}

}  // namespace

namespace {

/// Shared body of execute_table_query / execute_statement_read (see
/// graph_query_core for the contract: immutable context, explicit params,
/// no catalog registration).
Result<StatementResult> table_query_core(const TableQueryStmt& stmt,
                                         const ExecContext& ctx,
                                         const relational::ParamMap& params,
                                         const CatalogOverlay* overlay) {
  GEMS_ASSIGN_OR_RETURN(TablePtr source,
                        find_source_table(ctx, overlay, stmt.from_table));
  StringPool& pool = *ctx.pool;
  relational::TableScope scope(*source);

  // WHERE. Large tables scan in parallel over the intra-node pool (the
  // shared-memory half of the paper's "massively parallel execution").
  std::vector<RowIndex> rows;
  if (stmt.where) {
    GEMS_ASSIGN_OR_RETURN(
        BoundExprPtr pred,
        relational::bind_predicate(stmt.where, scope, params, pool));
    if (ctx.intra_pool != nullptr &&
        source->num_rows() >= ExecContext::kParallelScanThreshold) {
      rows = relational::filter_rows_parallel(*source, *pred,
                                              *ctx.intra_pool,
                                              ctx.batch_policy);
    } else {
      rows = relational::filter_rows(*source, *pred, ctx.batch_policy);
    }
  } else {
    rows.resize(source->num_rows());
    for (std::size_t r = 0; r < rows.size(); ++r) {
      rows[r] = static_cast<RowIndex>(r);
    }
  }

  const bool has_agg =
      std::any_of(stmt.items.begin(), stmt.items.end(),
                  [](const auto& i) { return i.agg != AggFunc::kNone; });
  const bool grouped = has_agg || !stmt.group_by.empty();
  const std::string out_name =
      stmt.into == IntoKind::kTable ? stmt.into_name : "result";

  TablePtr out;
  if (!grouped) {
    // Plain selection/projection. Expand `*` to all source columns.
    std::vector<OutputColumn> outputs;
    graql::OutputNamer namer;
    std::size_t anon = 0;
    for (const auto& item : stmt.items) {
      if (item.star) {
        for (ColumnIndex c = 0; c < source->num_columns(); ++c) {
          OutputColumn oc;
          oc.name = namer.assign(source->schema().column(c).name, "");
          GEMS_ASSIGN_OR_RETURN(
              oc.expr, relational::bind_expr(
                           relational::Expr::make_column(
                               "", source->schema().column(c).name),
                           scope, params, pool));
          outputs.push_back(std::move(oc));
        }
        continue;
      }
      OutputColumn oc;
      const std::string base =
          item.alias.empty() ? default_item_name(item, &anon) : item.alias;
      oc.name = namer.assign(base, "");
      GEMS_ASSIGN_OR_RETURN(
          oc.expr, relational::bind_expr(item.expr, scope, params, pool));
      outputs.push_back(std::move(oc));
    }

    // ORDER BY: by output columns when possible, else by source columns
    // before projection.
    std::vector<std::string> out_names;
    for (const auto& o : outputs) out_names.push_back(o.name);
    bool order_on_output = !stmt.order_by.empty();
    bool order_on_source = !stmt.order_by.empty();
    for (const auto& ord : stmt.order_by) {
      if (std::find(out_names.begin(), out_names.end(), ord.column) ==
          out_names.end()) {
        order_on_output = false;
      }
      if (!source->schema().find(ord.column)) order_on_source = false;
    }
    if (!stmt.order_by.empty() && !order_on_output && !order_on_source) {
      return not_found("order by columns must all be output columns or all "
                       "be source columns");
    }
    if (!stmt.order_by.empty() && !order_on_output) {
      std::vector<SortKey> keys;
      for (const auto& ord : stmt.order_by) {
        keys.push_back({*source->schema().find(ord.column), ord.descending});
      }
      std::stable_sort(rows.begin(), rows.end(),
                       [&](RowIndex a, RowIndex b) {
                         for (const auto& k : keys) {
                           const int c = relational::compare_table_cells(
                               *source, a, b, k.column);
                           if (c != 0) return k.descending ? c > 0 : c < 0;
                         }
                         return false;
                       });
    }

    out = relational::project(*source, rows, outputs, out_name,
                              ctx.batch_policy);
    if (stmt.distinct) {
      out = relational::distinct(*out, out_name, ctx.batch_policy);
    }
    if (!stmt.order_by.empty() && order_on_output) {
      std::vector<SortKey> keys;
      for (const auto& ord : stmt.order_by) {
        keys.push_back({*out->schema().find(ord.column), ord.descending});
      }
      out = relational::order_by(*out, keys, out_name);
    }
    if (stmt.top_n > 0) out = relational::head(*out, stmt.top_n, out_name);
  } else {
    // Aggregation pipeline: pre-project group keys + aggregate inputs,
    // group, then arrange outputs in item order.
    std::vector<OutputColumn> pre_outputs;
    // Group keys first (named g<i>).
    for (std::size_t k = 0; k < stmt.group_by.size(); ++k) {
      OutputColumn oc;
      oc.name = "g" + std::to_string(k);
      GEMS_ASSIGN_OR_RETURN(
          oc.expr,
          relational::bind_expr(
              relational::Expr::make_column("", stmt.group_by[k]), scope,
              params, pool));
      pre_outputs.push_back(std::move(oc));
    }
    // Aggregate inputs (named a<i> aligned with item order).
    std::vector<AggSpec> aggs;
    for (std::size_t i = 0; i < stmt.items.size(); ++i) {
      const auto& item = stmt.items[i];
      if (item.agg == AggFunc::kNone) {
        if (item.star) {
          return type_error("'*' cannot be combined with aggregation");
        }
        if (item.expr->kind != relational::Expr::Kind::kColumnRef ||
            std::find(stmt.group_by.begin(), stmt.group_by.end(),
                      item.expr->column) == stmt.group_by.end()) {
          return type_error("select item '" + item.expr->to_string() +
                            "' must be aggregated or listed in group by");
        }
        continue;
      }
      AggSpec spec;
      GEMS_ASSIGN_OR_RETURN(spec.kind, to_agg_kind(item.agg));
      spec.output_name = "a" + std::to_string(i);
      if (item.agg != AggFunc::kCountStar) {
        OutputColumn oc;
        oc.name = "in" + std::to_string(i);
        GEMS_ASSIGN_OR_RETURN(
            oc.expr,
            relational::bind_expr(item.expr, scope, params, pool));
        spec.input = static_cast<ColumnIndex>(pre_outputs.size());
        pre_outputs.push_back(std::move(oc));
      }
      aggs.push_back(std::move(spec));
    }

    TablePtr pre = relational::project(*source, rows, pre_outputs, "$pre",
                                       ctx.batch_policy);
    std::vector<ColumnIndex> keys(stmt.group_by.size());
    for (std::size_t k = 0; k < keys.size(); ++k) {
      keys[k] = static_cast<ColumnIndex>(k);
    }
    GEMS_ASSIGN_OR_RETURN(
        TablePtr grouped_table,
        relational::group_by(*pre, keys, aggs, "$grouped", ctx.batch_policy));

    // Final projection into item order with user-facing names.
    std::vector<ColumnIndex> out_cols;
    std::vector<std::string> names;
    graql::OutputNamer namer;
    std::size_t anon = 0;
    std::size_t agg_pos = 0;
    for (std::size_t i = 0; i < stmt.items.size(); ++i) {
      const auto& item = stmt.items[i];
      const std::string base =
          item.alias.empty() ? default_item_name(item, &anon) : item.alias;
      names.push_back(namer.assign(base, ""));
      if (item.agg == AggFunc::kNone) {
        // Key column: position in group_by.
        const auto key_it = std::find(stmt.group_by.begin(),
                                      stmt.group_by.end(), item.expr->column);
        out_cols.push_back(static_cast<ColumnIndex>(
            key_it - stmt.group_by.begin()));
      } else {
        out_cols.push_back(
            static_cast<ColumnIndex>(stmt.group_by.size() + agg_pos));
        ++agg_pos;
      }
    }
    std::vector<RowIndex> all(grouped_table->num_rows());
    for (std::size_t r = 0; r < all.size(); ++r) {
      all[r] = static_cast<RowIndex>(r);
    }
    out = relational::materialize(*grouped_table, all, out_cols, out_name,
                                  &names);
    if (stmt.distinct) {
      out = relational::distinct(*out, out_name, ctx.batch_policy);
    }
    if (!stmt.order_by.empty()) {
      std::vector<SortKey> sort_keys;
      for (const auto& ord : stmt.order_by) {
        auto idx = out->schema().find(ord.column);
        if (!idx) {
          return not_found("order by column '" + ord.column +
                           "' is not an output column");
        }
        sort_keys.push_back({*idx, ord.descending});
      }
      out = relational::order_by(*out, sort_keys, out_name);
    }
    if (stmt.top_n > 0) out = relational::head(*out, stmt.top_n, out_name);
  }

  StatementResult result;
  result.kind = StatementResult::Kind::kTable;
  result.into = stmt.into;
  result.into_name = stmt.into_name;
  result.table = std::move(out);
  result.message = result.table->name() + ": " +
                   std::to_string(result.table->num_rows()) + " rows";
  return result;
}

}  // namespace

Result<StatementResult> execute_table_query(const TableQueryStmt& stmt,
                                            ExecContext& ctx) {
  GEMS_ASSIGN_OR_RETURN(
      StatementResult result,
      table_query_core(stmt, ctx, ctx.params, /*overlay=*/nullptr));
  if (!ctx.defer_catalog_writes) commit_result(result, ctx);
  return result;
}

void commit_result(const StatementResult& result, ExecContext& ctx) {
  if (result.into == IntoKind::kTable && result.table != nullptr) {
    ctx.tables.add_or_replace(result.table);
  }
  if (result.into == IntoKind::kSubgraph && result.subgraph != nullptr) {
    ctx.subgraphs[result.into_name] = result.subgraph;
  }
}

void stage_result(const StatementResult& result, CatalogOverlay& overlay) {
  if (result.into == IntoKind::kTable && result.table != nullptr) {
    overlay.tables[result.into_name] = result.table;
  }
  if (result.into == IntoKind::kSubgraph && result.subgraph != nullptr) {
    overlay.subgraphs[result.into_name] = result.subgraph;
  }
}

void commit_overlay(const CatalogOverlay& overlay, ExecContext& ctx) {
  for (const auto& [name, table] : overlay.tables) {
    (void)name;
    ctx.tables.add_or_replace(table);
  }
  for (const auto& [name, subgraph] : overlay.subgraphs) {
    ctx.subgraphs[name] = subgraph;
  }
}

// =====================  DDL / ingest  ======================================

Status ExecContext::rebuild_graph() {
  ScopeTimer timer("graph rebuild");
  graph::GraphView fresh;
  for (const auto& decl : vertex_decls) {
    GEMS_RETURN_IF_ERROR(
        graph::add_vertex_type(fresh, decl, tables, *pool, params));
  }
  for (const auto& decl : edge_decls) {
    GEMS_RETURN_IF_ERROR(
        graph::add_edge_type(fresh, decl, tables, *pool, params));
  }
  graph = std::move(fresh);
  timer.append(std::to_string(graph.total_vertices()) + " vertices, " +
               std::to_string(graph.total_edges()) + " edges");
  ++graph_version;
  ++renumber_version;
  // Prior subgraph results index the old instance numbering.
  subgraphs.clear();
  return Status::ok();
}

namespace {

/// Fires the durability hook for a successful mutation (no-op when the
/// database runs without a store).
Status notify_mutation(ExecContext& ctx, const graql::Statement& stmt,
                       const storage::Table* table = nullptr,
                       std::size_t first_row = 0, std::size_t num_rows = 0) {
  if (!ctx.on_mutation) return Status::ok();
  MutationEvent ev;
  ev.statement = &stmt;
  ev.table = table;
  ev.first_row = first_row;
  ev.num_rows = num_rows;
  return ctx.on_mutation(ev).with_context("write-ahead log");
}

}  // namespace

Result<StatementResult> execute_statement(const graql::Statement& stmt,
                                          ExecContext& ctx) {
  GEMS_CHECK(ctx.pool != nullptr);
  StatementResult result;

  if (const auto* s = std::get_if<graql::CreateTableStmt>(&stmt)) {
    GEMS_ASSIGN_OR_RETURN(Schema schema, Schema::create(s->columns));
    GEMS_RETURN_IF_ERROR(ctx.tables.add(
        std::make_shared<Table>(s->name, std::move(schema), *ctx.pool)));
    GEMS_RETURN_IF_ERROR(notify_mutation(ctx, stmt));
    result.message = "created table " + s->name;
    return result;
  }
  if (const auto* s = std::get_if<graql::CreateVertexStmt>(&stmt)) {
    GEMS_RETURN_IF_ERROR(graph::add_vertex_type(ctx.graph, s->decl,
                                                ctx.tables, *ctx.pool,
                                                ctx.params));
    ctx.vertex_decls.push_back(s->decl);
    ++ctx.graph_version;
    GEMS_RETURN_IF_ERROR(notify_mutation(ctx, stmt));
    result.message = "created vertex type " + s->decl.name;
    return result;
  }
  if (const auto* s = std::get_if<graql::CreateEdgeStmt>(&stmt)) {
    GEMS_RETURN_IF_ERROR(graph::add_edge_type(ctx.graph, s->decl, ctx.tables,
                                              *ctx.pool, ctx.params));
    ctx.edge_decls.push_back(s->decl);
    ++ctx.graph_version;
    GEMS_RETURN_IF_ERROR(notify_mutation(ctx, stmt));
    result.message = "created edge type " + s->decl.name;
    return result;
  }
  if (const auto* s = std::get_if<graql::IngestStmt>(&stmt)) {
    // Timed + logged so a CSV re-ingest and a store recovery of the same
    // data can be compared from the logs (see gems::store).
    ScopeTimer timer("ingest " + s->table);
    GEMS_ASSIGN_OR_RETURN(TablePtr table, ctx.tables.find(s->table));
    std::string path = s->path;
    if (!ctx.data_dir.empty() && !path.empty() && path.front() != '/') {
      path = ctx.data_dir + "/" + path;
    }
    storage::CsvOptions options;
    options.has_header = s->has_header;
    if (ctx.copy_on_write) {
      // Epochs pinned on the previous catalog share the Table object;
      // append to a clone and swap it in so they never see the new rows.
      table = std::make_shared<Table>(*table);
      ctx.tables.add_or_replace(table);
    }
    const std::size_t rows_before = table->num_rows();
    GEMS_ASSIGN_OR_RETURN(storage::CsvIngestStats stats,
                          storage::ingest_csv_file(*table, path, options));
    timer.append(std::to_string(stats.rows) + " rows, " +
                 std::to_string(stats.bytes) + " bytes");
    // Paper Sec. II-A2: ingest also (re)generates derived vertex and edge
    // instances — incrementally when possible (gems::mvcc), with a full
    // rebuild as the sound fallback.
    const auto maintain_start = std::chrono::steady_clock::now();
    bool delta_applied = false;
    if (ctx.incremental_ingest) {
      GEMS_ASSIGN_OR_RETURN(
          delta_applied,
          graph::extend_graph_for_ingest(
              ctx.graph, s->table,
              static_cast<storage::RowIndex>(rows_before), ctx.vertex_decls,
              ctx.edge_decls, ctx.tables, *ctx.pool, ctx.params));
    }
    if (delta_applied) {
      ++ctx.graph_version;
      // Instance numbering is preserved: named subgraphs stay valid,
      // zero-padded to the grown type sizes (fresh copies — the old ones
      // may be shared with pinned epochs).
      for (auto& [name, sub] : ctx.subgraphs) {
        sub = sub->resized_for(ctx.graph);
      }
    } else {
      GEMS_RETURN_IF_ERROR(ctx.rebuild_graph());
    }
    if (ctx.on_graph_maintenance) {
      ctx.on_graph_maintenance(
          delta_applied,
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - maintain_start)
                  .count()));
    }
    GEMS_RETURN_IF_ERROR(
        notify_mutation(ctx, stmt, table.get(), rows_before, stats.rows));
    result.message = "ingested " + std::to_string(stats.rows) +
                     " rows into " + s->table;
    return result;
  }
  if (const auto* s = std::get_if<graql::OutputStmt>(&stmt)) {
    GEMS_ASSIGN_OR_RETURN(TablePtr table, ctx.tables.find(s->table));
    std::string path = s->path;
    if (!ctx.data_dir.empty() && !path.empty() && path.front() != '/') {
      path = ctx.data_dir + "/" + path;
    }
    GEMS_RETURN_IF_ERROR(storage::write_csv_file(*table, path));
    result.message = "wrote " + std::to_string(table->num_rows()) +
                     " rows of " + s->table + " to " + s->path;
    return result;
  }
  if (const auto* s = std::get_if<graql::GraphQueryStmt>(&stmt)) {
    return execute_graph_query(*s, ctx);
  }
  if (const auto* s = std::get_if<graql::TableQueryStmt>(&stmt)) {
    return execute_table_query(*s, ctx);
  }
  GEMS_UNREACHABLE("unhandled statement kind");
}

Result<StatementResult> execute_statement_read(const graql::Statement& stmt,
                                               const ReadView& view) {
  GEMS_CHECK(view.base != nullptr && view.params != nullptr);
  const ExecContext& ctx = *view.base;
  GEMS_CHECK(ctx.pool != nullptr);

  if (const auto* s = std::get_if<graql::OutputStmt>(&stmt)) {
    GEMS_ASSIGN_OR_RETURN(TablePtr table,
                          find_source_table(ctx, view.overlay, s->table));
    std::string path = s->path;
    if (!ctx.data_dir.empty() && !path.empty() && path.front() != '/') {
      path = ctx.data_dir + "/" + path;
    }
    GEMS_RETURN_IF_ERROR(storage::write_csv_file(*table, path));
    StatementResult result;
    result.message = "wrote " + std::to_string(table->num_rows()) +
                     " rows of " + s->table + " to " + s->path;
    return result;
  }
  if (const auto* s = std::get_if<graql::GraphQueryStmt>(&stmt)) {
    return graph_query_core(*s, ctx, *view.params, view.overlay);
  }
  if (const auto* s = std::get_if<graql::TableQueryStmt>(&stmt)) {
    return table_query_core(*s, ctx, *view.params, view.overlay);
  }
  // DDL / ingest: the server's classification routes such scripts to the
  // exclusive path before execution ever starts.
  return internal_error("mutating statement reached the shared execution path");
}

}  // namespace gems::exec
