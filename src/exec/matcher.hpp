// Fixpoint path matcher (Eq. 5). Computes, for every variable of a
// constraint network, the set of vertices that participate in at least one
// fully satisfying assignment — "the set of vertices selected at a
// particular step will be culled by subsequent steps of all vertices that
// have no path to vertices selected at that step".
//
// Mechanics: per-variable candidate domains are initialized from the
// steps' self conditions (and Fig. 12 seeds), then every edge, group and
// set-label constraint is propagated in both directions until nothing
// changes. Propagating an edge constraint right-to-left is exactly the
// reverse-edge-index traversal of paper Sec. III-B; bench_planner_ablation
// quantifies it.
//
// The fixpoint is exact (arc consistency == satisfiability) when the
// constraint graph is a tree and there are no cross predicates
// (network.tree_exact). Otherwise the enumerator refines it.
#pragma once

#include "common/status.hpp"
#include "exec/network.hpp"

namespace gems::exec {

struct MatchStats {
  std::size_t propagation_passes = 0;
  std::size_t edge_traversals = 0;  // CSR adjacency visits
};

struct MatchResult {
  std::vector<Domain> domains;  // per variable, post-fixpoint

  /// Per edge constraint: matched edges per edge type (endpoints in the
  /// final domains, self conditions satisfied).
  std::vector<std::map<graph::EdgeTypeId, DynamicBitset>> matched_edges;

  /// Per group constraint: on-path interior vertices and edges (for
  /// subgraph output of regex queries).
  std::vector<Subgraph> group_elements;

  MatchStats stats;

  bool empty() const {
    for (const auto& d : domains) {
      if (d.empty()) return true;
    }
    return domains.empty();
  }
};

/// Runs the fixpoint. `order` optionally gives the constraint visit order
/// for the first pass (the planner's choice, Sec. III-B); subsequent
/// passes run until quiescent regardless.
Result<MatchResult> match_network(const ConstraintNetwork& net,
                                  const graph::GraphView& graph,
                                  const StringPool& pool,
                                  const std::vector<int>* order = nullptr);

/// Shared helper: evaluates a vertex variable's self conditions for one
/// vertex (cursor at the representative row).
bool vertex_passes(const ConstraintNetwork& net, const graph::GraphView& graph,
                   const StringPool& pool, int var,
                   graph::VertexTypeId type, graph::VertexIndex v);

/// Initial (pre-propagation) domain of a variable: type extents filtered
/// by self conditions and seeds.
Domain initial_domain(const ConstraintNetwork& net,
                      const graph::GraphView& graph, const StringPool& pool,
                      int var);

/// Closure of a regex group: all end vertices reachable from `start` with
/// an admissible number of body iterations (forward), or all start
/// vertices that can reach `start` (backward). Used by the fixpoint and
/// by the enumerator's per-start memoized reachability.
Result<Domain> group_closure_forward(const graph::GraphView& graph,
                                     const StringPool& pool,
                                     const GroupConstraint& g,
                                     const Domain& start, MatchStats* stats);
Result<Domain> group_closure_backward(const graph::GraphView& graph,
                                      const StringPool& pool,
                                      const GroupConstraint& g,
                                      const Domain& end, MatchStats* stats);

}  // namespace gems::exec
