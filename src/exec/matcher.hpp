// Fixpoint path matcher (Eq. 5). Computes, for every variable of a
// constraint network, the set of vertices that participate in at least one
// fully satisfying assignment — "the set of vertices selected at a
// particular step will be culled by subsequent steps of all vertices that
// have no path to vertices selected at that step".
//
// Mechanics: per-variable candidate domains are initialized from the
// steps' self conditions (and Fig. 12 seeds), then every edge, group and
// set-label constraint is propagated in both directions until nothing
// changes. Propagating an edge constraint right-to-left is exactly the
// reverse-edge-index traversal of paper Sec. III-B; bench_planner_ablation
// quantifies it.
//
// Intra-node parallelism (DESIGN.md §5e): every frontier expansion —
// edge-constraint support, group-hop closure, matched-edge and
// group-interior marking — optionally fans out over a ThreadPool. Workers
// take contiguous word-ranges of the source frontier bitset and write
// private per-type output shards that are OR-merged at the join, so
// results are bit-identical for every thread count (including serial) and
// the inner loops carry no atomics.
//
// The fixpoint is exact (arc consistency == satisfiability) when the
// constraint graph is a tree and there are no cross predicates
// (network.tree_exact). Otherwise the enumerator refines it.
#pragma once

#include "common/histogram.hpp"
#include "common/sync.hpp"
#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "exec/network.hpp"

namespace gems::exec {

struct MatchStats {
  std::size_t propagation_passes = 0;
  std::size_t edge_traversals = 0;  // CSR adjacency visits
  std::size_t parallel_tasks = 0;   // sharded frontier-expansion tasks run
  std::uint64_t merge_ns = 0;       // wall time OR-merging worker shards
  LatencyHistogram worker_us;       // per-task worker wall time

  /// Folds a worker shard's counters into this (aggregate) stats object.
  /// edge_traversals is partitioned across shards, so the sum is identical
  /// to the serial count; timings are additive.
  void absorb(const MatchStats& shard) {
    edge_traversals += shard.edge_traversals;
    parallel_tasks += shard.parallel_tasks;
    merge_ns += shard.merge_ns;
    worker_us.merge(shard.worker_us);
  }
};

struct MatchResult {
  std::vector<Domain> domains;  // per variable, post-fixpoint

  /// Per edge constraint: matched edges per edge type (endpoints in the
  /// final domains, self conditions satisfied).
  std::vector<std::map<graph::EdgeTypeId, DynamicBitset>> matched_edges;

  /// Per group constraint: on-path interior vertices and edges (for
  /// subgraph output of regex queries).
  std::vector<Subgraph> group_elements;

  MatchStats stats;

  bool empty() const {
    for (const auto& d : domains) {
      if (d.empty()) return true;
    }
    return domains.empty();
  }
};

/// Runs the fixpoint. `order` optionally gives the constraint visit order
/// for the first pass (the planner's choice, Sec. III-B); subsequent
/// passes run until quiescent regardless. `intra_pool` (may be null =
/// serial) parallelizes frontier expansion; the result is bit-identical
/// either way.
Result<MatchResult> match_network(const ConstraintNetwork& net,
                                  const graph::GraphView& graph,
                                  const StringPool& pool,
                                  const std::vector<int>* order = nullptr,
                                  ThreadPool* intra_pool = nullptr);

/// Shared helper: evaluates a vertex variable's self conditions for one
/// vertex (cursor at the representative row).
bool vertex_passes(const ConstraintNetwork& net, const graph::GraphView& graph,
                   const StringPool& pool, int var,
                   graph::VertexTypeId type, graph::VertexIndex v);

/// Initial (pre-propagation) domain of a variable: type extents filtered
/// by self conditions and seeds. Condition evaluation parallelizes over
/// `intra_pool` (workers own disjoint word-aligned ranges of the output
/// bitset, so no merge is needed).
Domain initial_domain(const ConstraintNetwork& net,
                      const graph::GraphView& graph, const StringPool& pool,
                      int var, ThreadPool* intra_pool = nullptr);

/// Closure of a regex group: all end vertices reachable from `start` with
/// an admissible number of body iterations (forward), or all start
/// vertices that can reach `start` (backward). Used by the fixpoint and
/// by the enumerator's per-start memoized reachability.
Result<Domain> group_closure_forward(const graph::GraphView& graph,
                                     const StringPool& pool,
                                     const GroupConstraint& g,
                                     const Domain& start, MatchStats* stats,
                                     ThreadPool* intra_pool = nullptr);
Result<Domain> group_closure_backward(const graph::GraphView& graph,
                                      const StringPool& pool,
                                      const GroupConstraint& g,
                                      const Domain& end, MatchStats* stats,
                                      ThreadPool* intra_pool = nullptr);

/// Eq. 5's matched-edge sets E(q), computed from converged domains: for
/// every edge constraint, the edges whose endpoints lie in the final
/// domains and whose self conditions hold. Walks the CSR from the smaller
/// endpoint domain (never a full edge scan) and shards the walk over
/// `intra_pool`. Shared by the single-node and distributed matchers.
std::vector<std::map<graph::EdgeTypeId, DynamicBitset>> matched_edge_sets(
    const ConstraintNetwork& net, const graph::GraphView& graph,
    const StringPool& pool, const std::vector<Domain>& domains,
    MatchStats* stats, ThreadPool* intra_pool = nullptr);

// ---- Matcher observability ------------------------------------------------

/// Point-in-time aggregate of matcher activity since the database opened,
/// the `\matchstats` sibling of store::StoreMetricsSnapshot.
struct MatcherMetricsSnapshot {
  std::uint64_t queries = 0;             // match_network runs recorded
  std::uint64_t propagation_passes = 0;
  std::uint64_t edge_traversals = 0;
  std::uint64_t parallel_tasks = 0;
  std::uint64_t merge_ns = 0;
  LatencyHistogram worker_us;

  std::string to_string() const;
};

/// Thread-safe accumulator, shared by all statements of a database (the
/// parallel multi-statement scheduler records from several threads).
class MatcherMetrics {
 public:
  void record(const MatchStats& stats);
  MatcherMetricsSnapshot snapshot() const;

 private:
  mutable sync::Mutex mutex_;
  MatcherMetricsSnapshot agg_ GEMS_GUARDED_BY(mutex_);
};

}  // namespace gems::exec
