// Assignment enumeration: walks every satisfying assignment of a
// constraint network (one vertex per variable, one edge per edge step),
// pruned by the matcher's fixpoint domains. This implements:
//   * table output (Fig. 6: "a table of product ids, with each id
//     repeated for each feature" — one row per assignment, no dedup),
//   * exact semantics when the network has cycles (foreach labels closing
//     a loop, Eq. 8/12) or cross-step predicates,
//   * element-wise `foreach` labels (an aliased variable is bound once
//     per assignment — the same instance at every occurrence).
#pragma once

#include <functional>

#include "common/status.hpp"
#include "exec/matcher.hpp"
#include "exec/network.hpp"

namespace gems::exec {

struct EnumOptions {
  /// Stop after this many emitted assignments (0 = unlimited).
  std::uint64_t max_rows = 0;
  /// Enumeration root variable (planner's pivot, Sec. III-B); -1 = var 0.
  int root_var = -1;
};

struct EnumStats {
  std::uint64_t emitted = 0;
  std::uint64_t extensions = 0;  // DFS edge extensions tried
  bool truncated = false;        // hit max_rows
};

/// Receives one satisfying assignment. `vertices[var]` is valid for every
/// variable; `edges[c]` identifies the edge chosen for edge constraint c.
/// Return false to stop enumeration early.
using EmitFn = std::function<bool(std::span<const graph::VertexRef>,
                                  std::span<const graph::EdgeRef>)>;

/// Enumerates satisfying assignments of `net` using the fixpoint `match`
/// for pruning. Groups are traversed as closures (their interiors do not
/// appear in assignments).
Result<EnumStats> enumerate_assignments(const ConstraintNetwork& net,
                                        const graph::GraphView& graph,
                                        const StringPool& pool,
                                        const MatchResult& match,
                                        const EnumOptions& options,
                                        const EmitFn& emit);

}  // namespace gems::exec
