// Lowered representation of one and-group of a graph query: a constraint
// network over vertex variables.
//
//  * Every vertex step is a variable (element-wise `foreach` references
//    alias an existing variable — Eq. 8's same-instance semantics).
//  * Every edge step is a binary constraint between adjacent variables,
//    resolved to the set of edge types it may traverse (Eq. 10 variant
//    expansion happens here).
//  * Every regex group is a closure constraint with an unrolled hop body
//    (Fig. 10).
//  * `def` set labels add set-equality constraints (Eq. 6/7).
//  * Conditions that reference other (labeled) steps become cross
//    predicates, checked during enumeration.
//
// The matcher computes per-variable candidate domains by fixpoint
// propagation (Eq. 5's culling: "the set of vertices selected at a
// particular step will be culled ... of all vertices that have no path to
// vertices selected at that step"); the enumerator walks satisfying
// assignments for table output and for exactness in the presence of
// cycles or cross predicates.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "exec/subgraph.hpp"
#include "graph/graph_view.hpp"
#include "graql/ast.hpp"
#include "relational/batch.hpp"
#include "relational/bound_expr.hpp"
#include "relational/vector_eval.hpp"

namespace gems::exec {

/// Slot::source ids at or above this base refer to edge constraints
/// (cursor band layout: [0, num_vars) vertex vars, [kEdgeSourceBase,
/// kEdgeSourceBase + num_edge_constraints) edge cursors).
inline constexpr int kEdgeSourceBase = 4096;

/// Candidate set of one variable: per-type membership bitsets.
struct Domain {
  // type -> candidate vertices (bitsets sized to the type's vertex count)
  std::map<graph::VertexTypeId, DynamicBitset> sets;

  std::size_t count() const;
  bool empty() const;
  bool intersect(const Domain& other);  // returns true if changed

  /// Bit-exact equality (the closure cache's reuse test).
  bool operator==(const Domain& other) const = default;
};

struct VertexVar {
  std::vector<graph::VertexTypeId> types;  // allowed types (all, if variant)
  bool variant = false;
  // Self-only predicates; Slot::source == this var's index.
  std::vector<relational::BoundExprPtr> self_conds;
  // Kernel form of self_conds, index-aligned, compiled once at lowering
  // against this variable's source id. The matcher's initial-domain scan
  // evaluates these over batches of representative rows (bit-identical to
  // the row path). A nullptr entry means that conjunct did not compile;
  // the whole variable then falls back to row evaluation.
  std::vector<relational::VectorExprPtr> self_cond_kernels;
  SubgraphPtr seed;        // Fig. 12: restrict to a previous result
  std::string display;     // label if labelled, else type name (for output)
  std::string type_name;   // original step type name ("" for variant)
  std::string label;       // label defined here ("" if none)
};

/// One admissible edge type for a constraint, with direction resolved:
/// traversing left->right uses `forward` ? the forward CSR : the reverse.
struct EdgeMove {
  graph::EdgeTypeId type;
  bool forward;  // left var is the edge's source
};

struct EdgeConstraint {
  int left_var = -1;
  int right_var = -1;
  bool variant = false;
  bool reversed = false;  // lexical `<--` (kept for display)
  std::vector<EdgeMove> moves;
  // Self-only predicates over the edge's attribute table; Slot::source is
  // the edge constraint's own cursor (see enumerate.cpp).
  std::vector<relational::BoundExprPtr> self_conds;
  std::string display;    // label or type name
  std::string type_name;  // "" for variant
  std::string label;
  int output_index = -1;  // position among edge steps, for edge outputs
};

/// One hop of a regex group body: traverse an edge, land on a vertex.
struct GroupHop {
  bool reversed = false;
  bool edge_variant = false;
  std::vector<graph::EdgeTypeId> edge_types;  // empty means "resolve lazily"
  bool vertex_variant = false;
  std::vector<graph::VertexTypeId> vertex_types;
  std::vector<relational::BoundExprPtr> vertex_conds;  // self-only
  // Edge-attribute predicates (bound single-source against the concrete
  // edge type's attribute table).
  std::vector<relational::BoundExprPtr> edge_conds;
};

struct GroupConstraint {
  int left_var = -1;
  int right_var = -1;
  graql::PathGroup::Quant quant = graql::PathGroup::Quant::kPlus;
  std::uint32_t count = 0;
  std::vector<GroupHop> hops;
};

/// Predicate referencing several variables; Slot::source indexes vars.
struct CrossPred {
  relational::BoundExprPtr pred;
  std::vector<int> vars;
};

/// Set-equality constraint from a `def` label and its references
/// (Eq. 6/7): at fixpoint both variables hold the same culled set.
struct SetEqConstraint {
  int var_a = -1;
  int var_b = -1;
};

/// Type-equality constraint (Eq. 12): a label on a type-matching `[ ]`
/// step binds its type at matching time — "a label X that corresponds to
/// a vertex of type V1 will only match a vertex of the same type
/// downstream". Checked per assignment by the enumerator.
struct TypeEqConstraint {
  int var_a = -1;
  int var_b = -1;
};

/// A planner's decision for one network (filled by src/plan; kept here so
/// exec does not depend on the planner).
struct NetworkPlan {
  int root_var = -1;                  // enumeration pivot (-1: lexical)
  std::vector<int> constraint_order;  // propagation order (empty: natural)
};

struct ConstraintNetwork {
  std::vector<VertexVar> vars;
  std::vector<EdgeConstraint> edges;
  std::vector<GroupConstraint> groups;
  std::vector<SetEqConstraint> set_eqs;
  std::vector<TypeEqConstraint> type_eqs;
  std::vector<CrossPred> cross_preds;

  // Per-path chains: variable indices in lexical order, used by the
  // enumerator for default variable ordering.
  std::vector<std::vector<int>> path_vars;

  /// True when fixpoint domains alone are exact for subgraph results:
  /// no cross predicates and no constraint cycles through foreach
  /// aliases. Conservatively computed at lowering.
  bool tree_exact = true;

  /// Batch policy for the matcher's vectorized domain scans. The executor
  /// copies ExecContext::batch_policy here after lowering; the default is
  /// the vectorized engine (row_engine() forces the oracle path).
  relational::BatchPolicy batch_policy;

  std::size_t num_vars() const { return vars.size(); }
};

}  // namespace gems::exec
