// Named subgraph results (paper Sec. II-C, Fig. 11): the output of a graph
// query captured with `into subgraph`, usable to seed later queries
// (Fig. 12). Stored as per-type membership bitsets over the base graph —
// a subgraph is a selection over G, never a copy.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/bitset.hpp"
#include "graph/graph_view.hpp"

namespace gems::exec {

class Subgraph;
using SubgraphPtr = std::shared_ptr<Subgraph>;

class Subgraph {
 public:
  explicit Subgraph(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  /// Membership set for a vertex type (created lazily, sized on demand).
  DynamicBitset& vertices(graph::VertexTypeId type, std::size_t size);
  DynamicBitset& edges(graph::EdgeTypeId type, std::size_t size);

  /// Read-only lookup; nullptr when the type has no members.
  const DynamicBitset* vertices(graph::VertexTypeId type) const;
  const DynamicBitset* edges(graph::EdgeTypeId type) const;

  bool contains(graph::VertexRef v) const;
  bool contains(graph::EdgeRef e) const;

  std::size_t num_vertices() const;
  std::size_t num_edges() const;

  /// Union with another subgraph (or-composition, Eq. 9).
  void merge(const Subgraph& other);

  /// Deep copy with every membership bitset zero-padded to the current
  /// size of its type in `graph`. Incremental ingest preserves instance
  /// numbering while growing the types, so a pre-ingest subgraph stays
  /// valid — the new instances are simply not members. The copy leaves
  /// the original untouched (it may be shared with pinned epochs whose
  /// graphs still have the old sizes).
  SubgraphPtr resized_for(const graph::GraphView& graph) const;

  /// Human-readable summary ("resultsG: 120 vertices, 204 edges").
  std::string summary() const;

 private:
  std::string name_;
  std::map<graph::VertexTypeId, DynamicBitset> vertices_;
  std::map<graph::EdgeTypeId, DynamicBitset> edges_;
};



}  // namespace gems::exec
