// Statement execution over a live database state: DDL, ingest, graph
// queries (lower -> match -> enumerate -> materialize) and relational
// queries (the Table I operator pipeline). The GEMS server (src/server)
// wraps this with the catalog, static analysis and scheduling.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/status.hpp"
#include "exec/matcher.hpp"
#include "exec/network.hpp"
#include "exec/subgraph.hpp"
#include "graph/builder.hpp"
#include "graql/ast.hpp"
#include "common/thread_pool.hpp"
#include "relational/batch.hpp"
#include "storage/catalog.hpp"

namespace gems::exec {

/// Notification of a successful base-state mutation, fired for the
/// durability layer (src/store) right after the statement applies and
/// before its result is returned. `statement` is always set; the row
/// fields describe the appended range for ingest statements (the write-
/// ahead log records the parsed rows themselves, so replay does not
/// depend on the CSV file still existing).
struct MutationEvent {
  const graql::Statement* statement = nullptr;
  const storage::Table* table = nullptr;  // ingest target, else nullptr
  std::size_t first_row = 0;              // ingest: first appended row
  std::size_t num_rows = 0;               // ingest: appended row count
};

/// Mutable database state shared by all statements of a session.
struct ExecContext {
  storage::TableCatalog tables;
  graph::GraphView graph;
  StringPool* pool = nullptr;  // database-wide interner (required)
  std::map<std::string, SubgraphPtr> subgraphs;
  relational::ParamMap params;

  /// Declarations, retained so ingest can rebuild the derived graph
  /// (paper Sec. II-A2: "Data ingest triggers ... the generation of
  /// associated vertex and edge instances derived from the table").
  std::vector<graph::VertexDecl> vertex_decls;
  std::vector<graph::EdgeDecl> edge_decls;

  /// Base directory prepended to relative ingest paths.
  std::string data_dir;

  /// Monotone counter bumped whenever the graph's instances change (DDL,
  /// ingest rebuilds). Lets planners cache per-graph statistics.
  std::uint64_t graph_version = 0;

  /// Monotone counter bumped only when existing instance numbering may
  /// have changed (full rebuild_graph()). Incremental ingest and
  /// type-appending DDL preserve prior vertex/edge indices, so results
  /// computed against an older graph (subgraph bitsets, overlay commits)
  /// stay valid as long as this counter is unchanged.
  std::uint64_t renumber_version = 0;

  /// Safety cap for graph-query row enumeration (0 = unlimited).
  std::uint64_t max_result_rows = 0;

  /// Intra-node worker pool for parallel scans and the matcher's sharded
  /// frontier expansion (nullptr = serial). Tables below
  /// kParallelScanThreshold rows always scan serially.
  ThreadPool* intra_pool = nullptr;
  static constexpr std::size_t kParallelScanThreshold = 1 << 14;

  /// Batch policy for the relational operators and matcher domain scans:
  /// vectorized kernel execution by default, BatchPolicy::row_engine()
  /// for the row-at-a-time oracle (DatabaseOptions::vectorized_execution
  /// maps here; the equivalence property tests sweep intermediate sizes).
  relational::BatchPolicy batch_policy;

  /// Matcher activity counters, shared across statements (the parallel
  /// multi-statement scheduler records from several threads). shared_ptr
  /// so copies of the context made by the scheduler feed one aggregate.
  std::shared_ptr<MatcherMetrics> matcher_metrics =
      std::make_shared<MatcherMetrics>();

  /// Optional query planner hook (paper Sec. III-B): returns the pivot
  /// variable and propagation order for a lowered network. Installed by
  /// the server layer (src/plan provides the implementation); when empty,
  /// execution uses lexical order.
  std::function<NetworkPlan(const ConstraintNetwork&)> planner;

  /// Optional distributed-matcher hook (src/cluster): when set, every
  /// graph-query network is offered to the cluster coordinator before the
  /// local matcher runs. kUnimplemented means "not distributable, run it
  /// locally"; any other error fails the statement (kUnavailable is the
  /// typed retryable error when a rank is down mid-query). `network_index`
  /// identifies the or-group so rank replicas can lower the same statement
  /// and pick the same network. `ctx` is the context the query executes
  /// against — with gems::mvcc that is a pinned epoch's immutable
  /// snapshot, which the coordinator encodes (lock-free) to sync rank
  /// replicas, so distributed and local results come from the same state.
  std::function<Result<MatchResult>(const graql::GraphQueryStmt& stmt,
                                    std::size_t network_index,
                                    const ConstraintNetwork& net,
                                    const relational::ParamMap& params,
                                    const ExecContext& ctx)>
      dist_matcher;

  /// When true, query statements do not register their `into` results in
  /// the catalog; the caller commits them later (used by the parallel
  /// multi-statement scheduler, paper Sec. III-B1, so that independent
  /// statements can run concurrently against read-only state).
  bool defer_catalog_writes = false;

  /// gems::mvcc: when true, ingest appends to a copy-on-write clone of the
  /// target table (swapped into `tables`) instead of mutating it in place,
  /// so epochs pinned on the previous catalog never observe the new rows.
  bool copy_on_write = false;

  /// gems::mvcc: when true, ingest maintains the graph incrementally
  /// (graph::extend_graph_for_ingest) and falls back to rebuild_graph()
  /// only when the delta is unsound (parameterized declarations, a
  /// one-to-one key collapse). WAL replay applies the same per-record
  /// decision, so recovered and live graphs are byte-identical.
  bool incremental_ingest = false;

  /// gems::mvcc: observation hook for the ingest maintenance path —
  /// called with (was_delta, elapsed_ns) after each ingest's graph
  /// maintenance so the epoch manager can account delta vs. rebuild cost.
  std::function<void(bool, std::uint64_t)> on_graph_maintenance;

  /// Durability hook (src/store): invoked after each successful DDL or
  /// ingest mutation. A failing hook fails the statement — the mutation
  /// is already applied in memory, so the caller must treat the store as
  /// broken (fail-stop) rather than continue with a diverged log. Unset
  /// during recovery replay so replayed statements are not re-logged.
  std::function<Status(const MutationEvent&)> on_mutation;

  /// Rebuilds all vertex/edge types from their declarations (after an
  /// ingest). Invalidates named subgraphs, which reference the old
  /// instance numbering.
  Status rebuild_graph();
};

struct StatementResult {
  enum class Kind { kNone, kTable, kSubgraph };
  Kind kind = Kind::kNone;
  storage::TablePtr table;      // kTable (also set for un-named results)
  SubgraphPtr subgraph;         // kSubgraph
  std::string message;          // human-readable outcome ("ingested 42 rows")
  bool truncated = false;       // row cap hit
  graql::IntoKind into = graql::IntoKind::kNone;  // result registration
  std::string into_name;
};

/// Script-local staging area for `into table` / `into subgraph` results on
/// the shared (read-only) access path: instead of registering in the
/// shared catalog mid-script, results land here; later statements of the
/// same script resolve names against the overlay *before* the shared
/// catalog (serial-script semantics), and the server publishes the whole
/// overlay under brief exclusive access once the script completes — other
/// sessions never observe a half-committed catalog.
struct CatalogOverlay {
  std::map<std::string, storage::TablePtr> tables;
  std::map<std::string, SubgraphPtr> subgraphs;

  bool empty() const { return tables.empty() && subgraphs.empty(); }
};

/// Const read-view over a shared ExecContext — the shared access path
/// executes through this, so the type system enforces that concurrent
/// readers cannot mutate the shared state (catalog registrations, bound
/// params, graph rebuilds all need the mutable ExecContext, which only
/// the exclusive path sees). `params` are per-script (never written into
/// the shared context); `overlay` carries this script's own staged
/// results.
struct ReadView {
  const ExecContext* base = nullptr;
  const relational::ParamMap* params = nullptr;
  const CatalogOverlay* overlay = nullptr;
};

/// Registers a deferred result (into table / into subgraph) in the
/// context's catalog. No-op for results without an `into` clause.
void commit_result(const StatementResult& result, ExecContext& ctx);

/// Stages a result in a script-local overlay (the shared path's analogue
/// of commit_result). No-op for results without an `into` clause.
void stage_result(const StatementResult& result, CatalogOverlay& overlay);

/// Publishes a script's staged results into the shared catalog. The
/// caller must hold exclusive access.
void commit_overlay(const CatalogOverlay& overlay, ExecContext& ctx);

/// Executes one statement, updating `ctx`.
Result<StatementResult> execute_statement(const graql::Statement& stmt,
                                          ExecContext& ctx);

/// Read-only statement execution for the shared access path: never
/// mutates the shared context. Graph/table queries and `output` run
/// normally (with `into` results returned, not registered — the caller
/// stages them); DDL and ingest statements return kInternal, because the
/// server's classification must have routed such scripts to the exclusive
/// path.
Result<StatementResult> execute_statement_read(const graql::Statement& stmt,
                                               const ReadView& view);

/// Executes a graph query (exposed separately for the planner benches).
Result<StatementResult> execute_graph_query(const graql::GraphQueryStmt& stmt,
                                            ExecContext& ctx);

/// Executes a relational table query.
Result<StatementResult> execute_table_query(const graql::TableQueryStmt& stmt,
                                            ExecContext& ctx);

}  // namespace gems::exec
