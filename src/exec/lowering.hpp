// Lowers a parsed graph query into constraint networks (one per or-group)
// plus a step registry used to resolve select targets. Binding here is the
// backend's dynamic counterpart of the front-end static analyzer: it
// re-resolves names against the live graph and produces evaluated-form
// predicates.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "common/status.hpp"
#include "exec/network.hpp"

namespace gems::exec {

/// Where a select target points.
struct StepRef {
  bool is_edge = false;
  int index = -1;  // var index or edge-constraint index
};

struct LoweredQuery {
  // One network per or-group (Eq. 9: results are unioned).
  std::vector<ConstraintNetwork> networks;
  // display name -> (network, ref); targets resolve against this. A name
  // maps to the step in the network where it (first) appears.
  std::vector<std::map<std::string, StepRef>> step_refs;
  // Steps in first-mention order per network (for `select *`).
  std::vector<std::vector<std::pair<std::string, StepRef>>> ordered_steps;
};

/// Resolver for Fig. 12 result seeding (`resQ1.Vn`).
using SubgraphResolver =
    std::function<Result<SubgraphPtr>(const std::string&)>;

/// Lowers `stmt`'s path patterns. `params` supplies %placeholders%.
Result<LoweredQuery> lower_graph_query(
    const graql::GraphQueryStmt& stmt, const graph::GraphView& graph,
    const SubgraphResolver& subgraphs, const relational::ParamMap& params,
    StringPool& pool);

}  // namespace gems::exec
