#include "graql/lexer.hpp"

#include <array>
#include <cctype>
#include <charconv>

namespace gems::graql {

namespace {

constexpr std::array kKeywords = {
    "create", "table",    "vertex", "edge",  "with",  "vertices", "from",
    "where",  "and",      "or",     "not",   "select", "top",     "distinct",
    "group",  "order",    "by",     "desc",  "asc",   "into",     "subgraph",
    "output",
    "graph",  "ingest",   "as",     "def",   "foreach", "count",  "sum",
    "avg",    "min",      "max",    "null",  "true",  "false",
    // NB: "date" is deliberately NOT a keyword — the Berlin schema
    // (Appendix A) has columns named `date`. Date literals are written
    // `date '2008-06-20'` and recognized contextually by the parser.
};

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

}  // namespace

std::string_view token_kind_name(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::kEof:
      return "end of input";
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kKeyword:
      return "keyword";
    case TokenKind::kInt:
      return "integer";
    case TokenKind::kFloat:
      return "float";
    case TokenKind::kString:
      return "string";
    case TokenKind::kParam:
      return "parameter";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'<>'";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kDashDash:
      return "'--'";
    case TokenKind::kArrowRight:
      return "'-->'";
    case TokenKind::kArrowLeft:
      return "'<--'";
  }
  return "?";
}

bool is_graql_keyword(std::string_view lowercased) noexcept {
  for (const auto* kw : kKeywords) {
    if (lowercased == kw) return true;
  }
  return false;
}

Result<std::vector<Token>> lex(std::string_view src, SourceSpan* error_span) {
  std::vector<Token> out;
  std::size_t i = 0;
  std::size_t line = 1;
  std::size_t col = 1;
  // Start position of the token currently being scanned. Recorded before
  // any of its characters are consumed, so multi-character tokens
  // (strings, numbers, identifiers) report where they *begin*.
  std::size_t tok_line = 1;
  std::size_t tok_col = 1;

  auto advance = [&](std::size_t n = 1) {
    for (std::size_t k = 0; k < n; ++k) {
      if (i < src.size() && src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };
  auto peek = [&](std::size_t off = 0) -> char {
    return i + off < src.size() ? src[i + off] : '\0';
  };
  // Pushed after the token's characters are consumed: start comes from
  // tok_line/tok_col, end from the current cursor.
  auto push = [&](TokenKind kind, std::string text = {}) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = tok_line;
    t.column = tok_col;
    t.end_line = line;
    t.end_column = col;
    out.push_back(std::move(t));
    return &out.back();
  };
  auto err = [&](std::string msg) {
    if (error_span != nullptr) {
      *error_span = SourceSpan{static_cast<std::uint32_t>(line),
                               static_cast<std::uint32_t>(col),
                               static_cast<std::uint32_t>(line),
                               static_cast<std::uint32_t>(col + 1)};
    }
    return parse_error(msg + " at line " + std::to_string(line) + ":" +
                       std::to_string(col));
  };

  while (i < src.size()) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    // Comments: '#' to end of line, or '/* ... */'.
    if (c == '#') {
      while (i < src.size() && peek() != '\n') advance();
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      advance(2);
      while (i < src.size() && !(peek() == '*' && peek(1) == '/')) advance();
      if (i >= src.size()) return err("unterminated /* comment");
      advance(2);
      continue;
    }
    tok_line = line;
    tok_col = col;
    // Arrows and dashes. Longest match first.
    if (c == '<') {
      if (peek(1) == '-' && peek(2) == '-') {
        advance(3);
        push(TokenKind::kArrowLeft);
      } else if (peek(1) == '=') {
        advance(2);
        push(TokenKind::kLe);
      } else if (peek(1) == '>') {
        advance(2);
        push(TokenKind::kNe);
      } else {
        advance();
        push(TokenKind::kLt);
      }
      continue;
    }
    if (c == '-') {
      if (peek(1) == '-') {
        if (peek(2) == '>') {
          advance(3);
          push(TokenKind::kArrowRight);
        } else {
          advance(2);
          push(TokenKind::kDashDash);
        }
      } else if (peek(1) == '>') {
        // `->` : tolerate the single-dash arrow some figures use.
        advance(2);
        push(TokenKind::kArrowRight);
      } else {
        advance();
        push(TokenKind::kMinus);
      }
      continue;
    }
    if (c == '!') {
      if (peek(1) != '=') return err("stray '!'");
      advance(2);
      push(TokenKind::kNe);
      continue;
    }
    if (c == '>') {
      if (peek(1) == '=') {
        advance(2);
        push(TokenKind::kGe);
      } else {
        advance();
        push(TokenKind::kGt);
      }
      continue;
    }
    // Single-character tokens.
    auto single = [&](TokenKind kind) {
      advance();
      push(kind);
    };
    switch (c) {
      case '(':
        single(TokenKind::kLParen);
        continue;
      case ')':
        single(TokenKind::kRParen);
        continue;
      case '[':
        single(TokenKind::kLBracket);
        continue;
      case ']':
        single(TokenKind::kRBracket);
        continue;
      case '{':
        single(TokenKind::kLBrace);
        continue;
      case '}':
        single(TokenKind::kRBrace);
        continue;
      case ',':
        single(TokenKind::kComma);
        continue;
      case '.':
        single(TokenKind::kDot);
        continue;
      case ':':
        single(TokenKind::kColon);
        continue;
      case ';':
        single(TokenKind::kSemicolon);
        continue;
      case '*':
        single(TokenKind::kStar);
        continue;
      case '+':
        single(TokenKind::kPlus);
        continue;
      case '/':
        single(TokenKind::kSlash);
        continue;
      case '=':
        single(TokenKind::kEq);
        continue;
      default:
        break;
    }
    // String literals.
    if (c == '\'' || c == '"') {
      const char quote = c;
      std::string text;
      advance();
      while (i < src.size() && peek() != quote) {
        if (peek() == '\\' && (peek(1) == quote || peek(1) == '\\')) {
          text.push_back(peek(1));
          advance(2);
        } else {
          text.push_back(peek());
          advance();
        }
      }
      if (i >= src.size()) return err("unterminated string literal");
      advance();  // closing quote
      push(TokenKind::kString, std::move(text));
      continue;
    }
    // %Param%.
    if (c == '%') {
      advance();
      std::string name;
      while (i < src.size() && peek() != '%') {
        name.push_back(peek());
        advance();
      }
      if (i >= src.size()) return err("unterminated %parameter%");
      if (name.empty()) return err("empty %parameter% name");
      advance();
      push(TokenKind::kParam, std::move(name));
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
      bool is_float = false;
      if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        is_float = true;
        advance();
        while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
      }
      if (peek() == 'e' || peek() == 'E') {
        is_float = true;
        advance();
        if (peek() == '+' || peek() == '-') advance();
        while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
      }
      const std::string_view num = src.substr(start, i - start);
      Token* t;
      if (is_float) {
        t = push(TokenKind::kFloat, std::string(num));
        auto [p, ec] = std::from_chars(num.data(), num.data() + num.size(),
                                       t->fval);
        if (ec != std::errc()) return err("bad float literal");
      } else {
        t = push(TokenKind::kInt, std::string(num));
        auto [p, ec] = std::from_chars(num.data(), num.data() + num.size(),
                                       t->ival);
        if (ec != std::errc()) return err("integer literal out of range");
      }
      continue;
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (std::isalnum(static_cast<unsigned char>(peek())) ||
             peek() == '_') {
        advance();
      }
      std::string word(src.substr(start, i - start));
      const std::string lower = to_lower(word);
      if (is_graql_keyword(lower)) {
        push(TokenKind::kKeyword, lower);
      } else {
        push(TokenKind::kIdent, std::move(word));
      }
      continue;
    }
    return err(std::string("unexpected character '") + c + "'");
  }
  tok_line = line;
  tok_col = col;
  push(TokenKind::kEof);
  return out;
}

}  // namespace gems::graql
