#include "graql/diag.hpp"

#include <cstdio>

namespace gems::graql {

namespace {

constexpr std::uint32_t kDiagMagic = 0x474C4451;  // "GQLD" little-endian

constexpr std::string_view kAnsiReset = "\x1b[0m";
constexpr std::string_view kAnsiBold = "\x1b[1m";

std::string_view severity_color(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "\x1b[1;31m";  // bold red
    case Severity::kWarning:
      return "\x1b[1;35m";  // bold magenta (clang's choice)
    case Severity::kNote:
      return "\x1b[1;36m";  // bold cyan
  }
  return "";
}

}  // namespace

std::string_view severity_name(Severity severity) noexcept {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "?";
}

std::string diag_code_name(DiagCode code) {
  const auto value = static_cast<std::uint16_t>(code);
  char buf[8];
  std::snprintf(buf, sizeof(buf), "GQL%04u", value);
  return buf;
}

Diagnostic& DiagnosticEngine::report(Severity severity, DiagCode code,
                                     StatusCode status_code, SourceSpan span,
                                     std::string message) {
  Diagnostic d;
  d.severity = severity;
  d.code = code;
  d.status_code = status_code;
  d.span = span;
  d.message = std::move(message);
  if (severity == Severity::kError) ++error_count_;
  if (severity == Severity::kWarning) ++warning_count_;
  diagnostics_.push_back(std::move(d));
  return diagnostics_.back();
}

Diagnostic& DiagnosticEngine::error(DiagCode code, StatusCode status_code,
                                    SourceSpan span, std::string message) {
  return report(Severity::kError, code, status_code, span, std::move(message));
}

Diagnostic& DiagnosticEngine::warning(DiagCode code, SourceSpan span,
                                      std::string message) {
  return report(Severity::kWarning, code, StatusCode::kOk, span,
                std::move(message));
}

Diagnostic& DiagnosticEngine::note(DiagCode code, SourceSpan span,
                                   std::string message) {
  return report(Severity::kNote, code, StatusCode::kOk, span,
                std::move(message));
}

Status DiagnosticEngine::to_status() const {
  return first_error_status(diagnostics_);
}

Status first_error_status(const std::vector<Diagnostic>& diagnostics) {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity != Severity::kError) continue;
    StatusCode code = d.status_code;
    if (code == StatusCode::kOk) code = StatusCode::kInvalidArgument;
    return Status(code, d.message);
  }
  return Status::ok();
}

std::string format_diagnostic(const Diagnostic& diag, std::string_view file,
                              bool color) {
  std::string out;
  if (color) out += kAnsiBold;
  if (!file.empty()) {
    out += file;
    out += ':';
  }
  if (diag.span.known()) {
    out += std::to_string(diag.span.line);
    out += ':';
    out += std::to_string(diag.span.column);
    out += ':';
  }
  if (!out.empty() && out.back() == ':') out += ' ';
  if (color) {
    out += kAnsiReset;
    out += severity_color(diag.severity);
  }
  out += severity_name(diag.severity);
  out += '[';
  out += diag_code_name(diag.code);
  out += ']';
  if (color) out += kAnsiReset;
  out += ": ";
  if (color) out += kAnsiBold;
  out += diag.message;
  if (color) out += kAnsiReset;
  if (!diag.fixit.empty()) {
    out += "\n  fixit: ";
    out += diag.fixit;
  }
  return out;
}

std::string render_diagnostics(const std::vector<Diagnostic>& diagnostics,
                               std::string_view file, bool color) {
  std::string out;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const Diagnostic& d : diagnostics) {
    out += format_diagnostic(d, file, color);
    out += '\n';
    if (d.severity == Severity::kError) ++errors;
    if (d.severity == Severity::kWarning) ++warnings;
  }
  if (!diagnostics.empty()) {
    out += std::to_string(errors) + " error(s), " + std::to_string(warnings) +
           " warning(s)\n";
  }
  return out;
}

// ---- Wire codec ---------------------------------------------------------

namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

#define GEMS_RETURN_IF_SHORT(n)                                              \
  if (remaining() < static_cast<std::size_t>(n)) {                           \
    return parse_error("truncated diagnostics blob at byte " +               \
                       std::to_string(pos_));                                \
  }

class DiagReader {
 public:
  explicit DiagReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::size_t remaining() const { return bytes_.size() - pos_; }
  std::size_t pos() const { return pos_; }

  Result<std::uint8_t> u8() {
    GEMS_RETURN_IF_SHORT(1);
    return bytes_[pos_++];
  }
  Result<std::uint16_t> u16() {
    GEMS_RETURN_IF_SHORT(2);
    std::uint16_t v = static_cast<std::uint16_t>(bytes_[pos_]) |
                      static_cast<std::uint16_t>(bytes_[pos_ + 1]) << 8;
    pos_ += 2;
    return v;
  }
  Result<std::uint32_t> u32() {
    GEMS_RETURN_IF_SHORT(4);
    std::uint32_t v = 0;
    for (int k = 3; k >= 0; --k) {
      v = (v << 8) | bytes_[pos_ + static_cast<std::size_t>(k)];
    }
    pos_ += 4;
    return v;
  }
  Result<std::string> str() {
    GEMS_ASSIGN_OR_RETURN(std::uint32_t len, u32());
    GEMS_RETURN_IF_SHORT(len);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return s;
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

#undef GEMS_RETURN_IF_SHORT

}  // namespace

std::vector<std::uint8_t> encode_diagnostics(
    const std::vector<Diagnostic>& diagnostics) {
  std::vector<std::uint8_t> out;
  put_u32(out, kDiagMagic);
  put_u32(out, static_cast<std::uint32_t>(diagnostics.size()));
  for (const Diagnostic& d : diagnostics) {
    put_u8(out, static_cast<std::uint8_t>(d.severity));
    put_u16(out, static_cast<std::uint16_t>(d.code));
    put_u8(out, static_cast<std::uint8_t>(d.status_code));
    put_u32(out, d.span.line);
    put_u32(out, d.span.column);
    put_u32(out, d.span.end_line);
    put_u32(out, d.span.end_column);
    put_str(out, d.message);
    put_str(out, d.fixit);
  }
  return out;
}

Result<std::vector<Diagnostic>> decode_diagnostics(
    std::span<const std::uint8_t> bytes) {
  DiagReader r(bytes);
  GEMS_ASSIGN_OR_RETURN(std::uint32_t magic, r.u32());
  if (magic != kDiagMagic) {
    return parse_error("bad diagnostics magic");
  }
  GEMS_ASSIGN_OR_RETURN(std::uint32_t count, r.u32());
  // Each diagnostic occupies at least 21 bytes; reject hostile counts
  // before allocating.
  if (count > r.remaining() / 21) {
    return parse_error("diagnostics count " + std::to_string(count) +
                       " exceeds buffer");
  }
  std::vector<Diagnostic> out;
  out.reserve(count);
  for (std::uint32_t k = 0; k < count; ++k) {
    Diagnostic d;
    GEMS_ASSIGN_OR_RETURN(std::uint8_t sev, r.u8());
    if (sev > static_cast<std::uint8_t>(Severity::kNote)) {
      return parse_error("bad diagnostic severity " + std::to_string(sev));
    }
    d.severity = static_cast<Severity>(sev);
    GEMS_ASSIGN_OR_RETURN(std::uint16_t code, r.u16());
    d.code = static_cast<DiagCode>(code);
    GEMS_ASSIGN_OR_RETURN(std::uint8_t status_code, r.u8());
    d.status_code = static_cast<StatusCode>(status_code);
    GEMS_ASSIGN_OR_RETURN(d.span.line, r.u32());
    GEMS_ASSIGN_OR_RETURN(d.span.column, r.u32());
    GEMS_ASSIGN_OR_RETURN(d.span.end_line, r.u32());
    GEMS_ASSIGN_OR_RETURN(d.span.end_column, r.u32());
    GEMS_ASSIGN_OR_RETURN(d.message, r.str());
    GEMS_ASSIGN_OR_RETURN(d.fixit, r.str());
    out.push_back(std::move(d));
  }
  if (r.remaining() != 0) {
    return parse_error("trailing bytes after diagnostics blob");
  }
  return out;
}

}  // namespace gems::graql
