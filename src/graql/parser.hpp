// GraQL parser: tokens -> Script AST. Purely syntactic; name/type
// resolution happens in the analyzer (static checks, paper Sec. III-A).
#pragma once

#include "common/status.hpp"
#include "graql/ast.hpp"

namespace gems::graql {

/// Parses a whole GraQL script (any number of statements, optionally
/// separated by semicolons).
Result<Script> parse_script(std::string_view source);

/// Parses exactly one statement.
Result<Statement> parse_statement(std::string_view source);

}  // namespace gems::graql
