// GraQL parser: tokens -> Script AST. Purely syntactic; name/type
// resolution happens in the analyzer (static checks, paper Sec. III-A).
#pragma once

#include "common/status.hpp"
#include "graql/ast.hpp"
#include "graql/diag.hpp"

namespace gems::graql {

/// Parses a whole GraQL script (any number of statements, optionally
/// separated by semicolons). Fail-stop: the first syntax error aborts the
/// parse (this is the execution path's entry point).
Result<Script> parse_script(std::string_view source);

/// Parses exactly one statement.
Result<Statement> parse_statement(std::string_view source);

/// Error-collecting parse for `check`/`\lint`: every lex/syntax error is
/// reported into `diags` with its source span (codes GQL0001/GQL0002),
/// and parsing re-synchronizes at the next ';' so one bad statement does
/// not hide problems in the rest of the script. Returns the statements
/// that did parse (possibly none).
Script parse_script_collect(std::string_view source, DiagnosticEngine& diags);

}  // namespace gems::graql
