// Token model for the GraQL lexer. Keywords are case-insensitive (SQL
// heritage); identifiers are case-sensitive (the paper's examples
// distinguish ProductVtx from producer).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace gems::graql {

enum class TokenKind : std::uint8_t {
  kEof,
  kIdent,       // ProductVtx, price, T1
  kKeyword,     // create, select, ... (text() holds the lowercased keyword)
  kInt,         // 42
  kFloat,       // 3.14
  kString,      // 'abc' or "abc"
  kParam,       // %Product1%
  kLParen,      // (
  kRParen,      // )
  kLBracket,    // [
  kRBracket,    // ]
  kLBrace,      // {
  kRBrace,      // }
  kComma,       // ,
  kDot,         // .
  kColon,       // :
  kSemicolon,   // ;
  kStar,        // *  (projection star, multiplication, regex star)
  kPlus,        // +
  kMinus,       // -
  kSlash,       // /
  kEq,          // =
  kNe,          // <> or !=
  kLt,          // <
  kLe,          // <=
  kGt,          // >
  kGe,          // >=
  kDashDash,    // --   (edge-step opener/closer)
  kArrowRight,  // -->  (forward edge-step closer)
  kArrowLeft,   // <--  (reverse edge-step opener)
};

std::string_view token_kind_name(TokenKind kind) noexcept;

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;    // identifier/keyword/string/param payload
  std::int64_t ival = 0;
  double fval = 0.0;
  std::size_t line = 1;
  std::size_t column = 1;

  bool is_keyword(std::string_view kw) const {
    return kind == TokenKind::kKeyword && text == kw;
  }
};

/// True if `lowercased` is a reserved GraQL keyword.
bool is_graql_keyword(std::string_view lowercased) noexcept;

}  // namespace gems::graql
