// Token model for the GraQL lexer. Keywords are case-insensitive (SQL
// heritage); identifiers are case-sensitive (the paper's examples
// distinguish ProductVtx from producer).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace gems::graql {

enum class TokenKind : std::uint8_t {
  kEof,
  kIdent,       // ProductVtx, price, T1
  kKeyword,     // create, select, ... (text() holds the lowercased keyword)
  kInt,         // 42
  kFloat,       // 3.14
  kString,      // 'abc' or "abc"
  kParam,       // %Product1%
  kLParen,      // (
  kRParen,      // )
  kLBracket,    // [
  kRBracket,    // ]
  kLBrace,      // {
  kRBrace,      // }
  kComma,       // ,
  kDot,         // .
  kColon,       // :
  kSemicolon,   // ;
  kStar,        // *  (projection star, multiplication, regex star)
  kPlus,        // +
  kMinus,       // -
  kSlash,       // /
  kEq,          // =
  kNe,          // <> or !=
  kLt,          // <
  kLe,          // <=
  kGt,          // >
  kGe,          // >=
  kDashDash,    // --   (edge-step opener/closer)
  kArrowRight,  // -->  (forward edge-step closer)
  kArrowLeft,   // <--  (reverse edge-step opener)
};

std::string_view token_kind_name(TokenKind kind) noexcept;

/// A half-open source region, 1-based. `line == 0` means "unknown" (e.g.
/// a statement that was decoded from a binary IR produced by an older
/// encoder). `end_*` point one column past the last character, so a
/// single-character token at 3:7 spans {3, 7, 3, 8}.
struct SourceSpan {
  std::uint32_t line = 0;
  std::uint32_t column = 0;
  std::uint32_t end_line = 0;
  std::uint32_t end_column = 0;

  bool known() const { return line != 0; }

  /// Smallest span covering both operands (unknown spans are ignored).
  SourceSpan merge(const SourceSpan& other) const {
    if (!known()) return other;
    if (!other.known()) return *this;
    SourceSpan out = *this;
    if (other.line < out.line ||
        (other.line == out.line && other.column < out.column)) {
      out.line = other.line;
      out.column = other.column;
    }
    if (other.end_line > out.end_line ||
        (other.end_line == out.end_line && other.end_column > out.end_column)) {
      out.end_line = other.end_line;
      out.end_column = other.end_column;
    }
    return out;
  }

  friend bool operator==(const SourceSpan&, const SourceSpan&) = default;
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;    // identifier/keyword/string/param payload
  std::int64_t ival = 0;
  double fval = 0.0;
  std::size_t line = 1;      // start of the token
  std::size_t column = 1;
  std::size_t end_line = 1;  // one past the last character
  std::size_t end_column = 1;

  bool is_keyword(std::string_view kw) const {
    return kind == TokenKind::kKeyword && text == kw;
  }

  SourceSpan span() const {
    return SourceSpan{static_cast<std::uint32_t>(line),
                      static_cast<std::uint32_t>(column),
                      static_cast<std::uint32_t>(end_line),
                      static_cast<std::uint32_t>(end_column)};
  }
};

/// True if `lowercased` is a reserved GraQL keyword.
bool is_graql_keyword(std::string_view lowercased) noexcept;

}  // namespace gems::graql
