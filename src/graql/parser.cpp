#include "graql/parser.hpp"

#include <optional>

#include "common/check.hpp"
#include "graql/lexer.hpp"
#include "storage/type.hpp"

namespace gems::graql {

namespace {

using relational::BinaryOp;
using relational::Expr;
using relational::ExprPtr;
using relational::UnaryOp;
using storage::Value;

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Script> parse_script() {
    Script script;
    while (!at_eof()) {
      while (accept(TokenKind::kSemicolon)) {
      }
      if (at_eof()) break;
      GEMS_ASSIGN_OR_RETURN(Statement stmt, parse_statement());
      script.statements.push_back(std::move(stmt));
    }
    return script;
  }

  Result<Statement> parse_statement() {
    const Token& start = peek();
    Result<Statement> stmt = parse_statement_dispatch();
    if (stmt.is_ok()) {
      // Every statement carries the span from its first to its last token.
      std::visit([&](auto& s) { s.span = span_from(start); },
                 stmt.value());
    }
    return stmt;
  }

  /// Error-collecting variant: records each statement's parse error into
  /// `diags` and re-synchronizes at the next ';' (see parser.hpp).
  Script parse_script_collect(DiagnosticEngine& diags) {
    Script script;
    while (!at_eof()) {
      while (accept(TokenKind::kSemicolon)) {
      }
      if (at_eof()) break;
      Result<Statement> stmt = parse_statement();
      if (stmt.is_ok()) {
        script.statements.push_back(std::move(stmt).value());
        continue;
      }
      diags.error(DiagCode::kParseError, stmt.status().code(),
                  last_error_span_, stmt.status().message());
      while (!at_eof() && !check(TokenKind::kSemicolon)) advance();
    }
    return script;
  }

  bool at_eof() const { return peek().kind == TokenKind::kEof; }

 private:
  // ---- token plumbing -------------------------------------------------
  const Token& peek(std::size_t off = 0) const {
    const std::size_t i = std::min(pos_ + off, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool check(TokenKind kind) const { return peek().kind == kind; }
  bool check_keyword(std::string_view kw) const { return peek().is_keyword(kw); }
  bool accept(TokenKind kind) {
    if (!check(kind)) return false;
    advance();
    return true;
  }
  bool accept_keyword(std::string_view kw) {
    if (!check_keyword(kw)) return false;
    advance();
    return true;
  }
  /// Last consumed token (the start token before anything was consumed).
  const Token& prev() const { return tokens_[pos_ > 0 ? pos_ - 1 : 0]; }
  /// Span from `start`'s first character to the end of the last consumed
  /// token.
  SourceSpan span_from(const Token& start) const {
    SourceSpan span = start.span();
    const Token& last = prev();
    span.end_line = static_cast<std::uint32_t>(last.end_line);
    span.end_column = static_cast<std::uint32_t>(last.end_column);
    return span;
  }
  Status error(std::string msg) const {
    const Token& t = peek();
    last_error_span_ = t.span();
    return parse_error(msg + " (found " +
                       std::string(token_kind_name(t.kind)) +
                       (t.text.empty() ? "" : " '" + t.text + "'") +
                       " at line " + std::to_string(t.line) + ":" +
                       std::to_string(t.column) + ")");
  }
  Status expect(TokenKind kind, std::string what) {
    if (accept(kind)) return Status::ok();
    return error("expected " + what);
  }
  Status expect_keyword(std::string_view kw) {
    if (accept_keyword(kw)) return Status::ok();
    return error("expected '" + std::string(kw) + "'");
  }
  Result<std::string> expect_ident(std::string what) {
    if (!check(TokenKind::kIdent)) return error("expected " + what);
    return advance().text;
  }

  Result<Statement> parse_statement_dispatch() {
    const Token& t = peek();
    if (t.is_keyword("create")) return parse_create();
    if (t.is_keyword("ingest")) return parse_ingest();
    if (t.is_keyword("output")) return parse_output();
    if (t.is_keyword("select")) return parse_select();
    return error("expected 'create', 'ingest', 'output' or 'select'");
  }

  // ---- DDL -------------------------------------------------------------
  Result<Statement> parse_create() {
    GEMS_RETURN_IF_ERROR(expect_keyword("create"));
    if (accept_keyword("table")) return parse_create_table();
    if (accept_keyword("vertex")) return parse_create_vertex();
    if (accept_keyword("edge")) return parse_create_edge();
    return error("expected 'table', 'vertex' or 'edge' after 'create'");
  }

  Result<Statement> parse_create_table() {
    CreateTableStmt stmt;
    GEMS_ASSIGN_OR_RETURN(stmt.name, expect_ident("table name"));
    GEMS_RETURN_IF_ERROR(expect(TokenKind::kLParen, "'('"));
    do {
      storage::ColumnDef def;
      GEMS_ASSIGN_OR_RETURN(def.name, expect_ident("column name"));
      GEMS_ASSIGN_OR_RETURN(def.type, parse_type());
      stmt.columns.push_back(std::move(def));
    } while (accept(TokenKind::kComma));
    GEMS_RETURN_IF_ERROR(expect(TokenKind::kRParen, "')'"));
    return Statement(std::move(stmt));
  }

  Result<storage::DataType> parse_type() {
    if (!check(TokenKind::kIdent)) return error("expected a type name");
    std::string name = advance().text;
    if (accept(TokenKind::kLParen)) {
      if (!check(TokenKind::kInt)) return error("expected a length");
      name += "(" + advance().text + ")";
      GEMS_RETURN_IF_ERROR(expect(TokenKind::kRParen, "')'"));
    }
    return storage::parse_data_type(name);
  }

  Result<Statement> parse_create_vertex() {
    CreateVertexStmt stmt;
    GEMS_ASSIGN_OR_RETURN(stmt.decl.name, expect_ident("vertex type name"));
    GEMS_RETURN_IF_ERROR(expect(TokenKind::kLParen, "'('"));
    do {
      GEMS_ASSIGN_OR_RETURN(std::string key, expect_ident("key column"));
      stmt.decl.key_columns.push_back(std::move(key));
    } while (accept(TokenKind::kComma));
    GEMS_RETURN_IF_ERROR(expect(TokenKind::kRParen, "')'"));
    GEMS_RETURN_IF_ERROR(expect_keyword("from"));
    GEMS_RETURN_IF_ERROR(expect_keyword("table"));
    GEMS_ASSIGN_OR_RETURN(stmt.decl.table, expect_ident("table name"));
    if (accept_keyword("where")) {
      GEMS_ASSIGN_OR_RETURN(stmt.decl.where, parse_expr());
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> parse_create_edge() {
    CreateEdgeStmt stmt;
    GEMS_ASSIGN_OR_RETURN(stmt.decl.name, expect_ident("edge type name"));
    GEMS_RETURN_IF_ERROR(expect_keyword("with"));
    GEMS_RETURN_IF_ERROR(expect_keyword("vertices"));
    GEMS_RETURN_IF_ERROR(expect(TokenKind::kLParen, "'('"));
    auto parse_endpoint = [&]() -> Result<graph::EdgeEndpoint> {
      graph::EdgeEndpoint ep;
      GEMS_ASSIGN_OR_RETURN(ep.vertex_type, expect_ident("vertex type"));
      if (accept_keyword("as")) {
        GEMS_ASSIGN_OR_RETURN(ep.alias, expect_ident("alias"));
      }
      return ep;
    };
    GEMS_ASSIGN_OR_RETURN(stmt.decl.source, parse_endpoint());
    GEMS_RETURN_IF_ERROR(expect(TokenKind::kComma, "','"));
    GEMS_ASSIGN_OR_RETURN(stmt.decl.target, parse_endpoint());
    GEMS_RETURN_IF_ERROR(expect(TokenKind::kRParen, "')'"));
    if (accept_keyword("from")) {
      GEMS_RETURN_IF_ERROR(expect_keyword("table"));
      do {
        GEMS_ASSIGN_OR_RETURN(std::string name, expect_ident("table name"));
        stmt.decl.assoc_tables.push_back(std::move(name));
      } while (accept(TokenKind::kComma));
    }
    GEMS_RETURN_IF_ERROR(expect_keyword("where"));
    GEMS_ASSIGN_OR_RETURN(stmt.decl.where, parse_expr());
    return Statement(std::move(stmt));
  }

  Result<Statement> parse_ingest() {
    GEMS_RETURN_IF_ERROR(expect_keyword("ingest"));
    GEMS_RETURN_IF_ERROR(expect_keyword("table"));
    IngestStmt stmt;
    GEMS_ASSIGN_OR_RETURN(stmt.table, expect_ident("table name"));
    GEMS_ASSIGN_OR_RETURN(stmt.path, parse_file_path());
    if (accept_keyword("with")) {
      GEMS_ASSIGN_OR_RETURN(std::string opt, expect_ident("'header'"));
      if (opt != "header") return error("expected 'header' after 'with'");
      stmt.has_header = true;
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> parse_output() {
    GEMS_RETURN_IF_ERROR(expect_keyword("output"));
    GEMS_RETURN_IF_ERROR(expect_keyword("table"));
    OutputStmt stmt;
    GEMS_ASSIGN_OR_RETURN(stmt.table, expect_ident("table name"));
    GEMS_ASSIGN_OR_RETURN(stmt.path, parse_file_path());
    return Statement(std::move(stmt));
  }

  /// A file path is either a quoted string or a bare word like
  /// products.csv (the paper's Sec. II-A2 example is unquoted).
  Result<std::string> parse_file_path() {
    if (check(TokenKind::kString)) return advance().text;
    if (!check(TokenKind::kIdent)) {
      return error("expected a file name (quote paths with '/')");
    }
    std::string path = advance().text;
    while (accept(TokenKind::kDot)) {
      if (!check(TokenKind::kIdent) && !check(TokenKind::kKeyword)) {
        return error("expected a file-name component after '.'");
      }
      path += "." + advance().text;
    }
    return path;
  }

  // ---- SELECT dispatch ---------------------------------------------------
  Result<Statement> parse_select() {
    GEMS_RETURN_IF_ERROR(expect_keyword("select"));

    std::uint64_t top_n = 0;
    bool distinct = false;
    if (accept_keyword("top")) {
      if (!check(TokenKind::kInt)) return error("expected a count after 'top'");
      top_n = static_cast<std::uint64_t>(advance().ival);
    }
    if (accept_keyword("distinct")) distinct = true;

    std::vector<SelectItem> items;
    do {
      GEMS_ASSIGN_OR_RETURN(SelectItem item, parse_select_item());
      items.push_back(std::move(item));
    } while (accept(TokenKind::kComma));

    GEMS_RETURN_IF_ERROR(expect_keyword("from"));
    if (accept_keyword("graph")) {
      if (top_n != 0 || distinct) {
        return error(
            "'top'/'distinct' apply to table queries; post-process graph "
            "results via 'into table'");
      }
      return parse_graph_query(std::move(items));
    }
    if (accept_keyword("table")) {
      return parse_table_query(std::move(items), top_n, distinct);
    }
    return error("expected 'graph' or 'table' after 'from'");
  }

  Result<SelectItem> parse_select_item() {
    const Token& start = peek();
    SelectItem item;
    if (accept(TokenKind::kStar)) {
      item.star = true;
      item.span = span_from(start);
      return item;
    }
    if (check_keyword("count") || check_keyword("sum") ||
        check_keyword("avg") || check_keyword("min") || check_keyword("max")) {
      const std::string fn = advance().text;
      GEMS_RETURN_IF_ERROR(expect(TokenKind::kLParen, "'('"));
      if (fn == "count" && accept(TokenKind::kStar)) {
        item.agg = AggFunc::kCountStar;
      } else {
        GEMS_ASSIGN_OR_RETURN(item.expr, parse_expr());
        item.agg = fn == "count" ? AggFunc::kCount
                   : fn == "sum" ? AggFunc::kSum
                   : fn == "avg" ? AggFunc::kAvg
                   : fn == "min" ? AggFunc::kMin
                                 : AggFunc::kMax;
      }
      GEMS_RETURN_IF_ERROR(expect(TokenKind::kRParen, "')'"));
    } else {
      GEMS_ASSIGN_OR_RETURN(item.expr, parse_expr());
    }
    if (accept_keyword("as")) {
      GEMS_ASSIGN_OR_RETURN(item.alias, expect_ident("alias"));
    }
    item.span = span_from(start);
    return item;
  }

  // ---- Graph queries -------------------------------------------------------
  Result<Statement> parse_graph_query(std::vector<SelectItem> items) {
    GraphQueryStmt stmt;
    // Convert generic select items to graph targets: only `*`,
    // `qualifier`, `qualifier.column` are legal on graph queries.
    for (auto& item : items) {
      SelectTarget target;
      if (item.star) {
        target.star = true;
      } else if (item.agg != AggFunc::kNone) {
        return error(
            "aggregates are not allowed in graph queries; select into a "
            "table and aggregate there (paper Fig. 6)");
      } else if (item.expr->kind == Expr::Kind::kColumnRef) {
        if (item.expr->qualifier.empty()) {
          target.qualifier = item.expr->column;  // whole-step selection
        } else {
          target.qualifier = item.expr->qualifier;
          target.column = item.expr->column;
        }
      } else {
        return error("graph queries select steps or step attributes");
      }
      target.alias = std::move(item.alias);
      target.span = item.span;
      stmt.targets.push_back(std::move(target));
    }

    // or-composition of and-compositions of paths (Sec. II-B3).
    do {
      std::vector<PathPattern> and_group;
      do {
        GEMS_ASSIGN_OR_RETURN(PathPattern path, parse_path_pattern());
        and_group.push_back(std::move(path));
      } while (accept_keyword("and"));
      stmt.or_groups.push_back(std::move(and_group));
    } while (accept_keyword("or"));

    if (accept_keyword("into")) {
      if (accept_keyword("subgraph")) {
        stmt.into = IntoKind::kSubgraph;
      } else if (accept_keyword("table")) {
        stmt.into = IntoKind::kTable;
      } else {
        return error("expected 'subgraph' or 'table' after 'into'");
      }
      GEMS_ASSIGN_OR_RETURN(stmt.into_name, expect_ident("result name"));
    }
    return Statement(std::move(stmt));
  }

  Result<PathPattern> parse_path_pattern() {
    // A whole path may be parenthesized: `and (y --type--> TypeVtx)`.
    if (check(TokenKind::kLParen)) {
      advance();
      GEMS_ASSIGN_OR_RETURN(PathPattern inner, parse_path_pattern());
      GEMS_RETURN_IF_ERROR(expect(TokenKind::kRParen, "')' closing the path"));
      return inner;
    }
    PathPattern path;
    GEMS_ASSIGN_OR_RETURN(VertexStep first, parse_vertex_step());
    path.elements.emplace_back(std::move(first));
    for (;;) {
      if (check(TokenKind::kDashDash) || check(TokenKind::kArrowLeft)) {
        GEMS_ASSIGN_OR_RETURN(EdgeStep edge, parse_edge_step());
        path.elements.emplace_back(std::move(edge));
        GEMS_ASSIGN_OR_RETURN(VertexStep vertex, parse_vertex_step());
        path.elements.emplace_back(std::move(vertex));
        continue;
      }
      if (check(TokenKind::kLParen) &&
          (peek(1).kind == TokenKind::kDashDash ||
           peek(1).kind == TokenKind::kArrowLeft)) {
        GEMS_ASSIGN_OR_RETURN(PathGroup group, parse_path_group());
        path.elements.emplace_back(std::move(group));
        continue;
      }
      break;
    }
    return path;
  }

  Result<PathGroup> parse_path_group() {
    const Token& start = peek();
    GEMS_RETURN_IF_ERROR(expect(TokenKind::kLParen, "'('"));
    PathGroup group;
    // Body: (edge vertex)+ — starts with an edge so that repeating the
    // group after a vertex keeps the alternation valid (Fig. 10).
    do {
      GEMS_ASSIGN_OR_RETURN(EdgeStep edge, parse_edge_step());
      group.body.emplace_back(std::move(edge));
      GEMS_ASSIGN_OR_RETURN(VertexStep vertex, parse_vertex_step());
      group.body.emplace_back(std::move(vertex));
    } while (check(TokenKind::kDashDash) || check(TokenKind::kArrowLeft));
    GEMS_RETURN_IF_ERROR(expect(TokenKind::kRParen, "')'"));

    if (accept(TokenKind::kStar)) {
      group.quant = PathGroup::Quant::kStar;
    } else if (accept(TokenKind::kPlus)) {
      group.quant = PathGroup::Quant::kPlus;
    } else if (accept(TokenKind::kLBrace)) {
      if (!check(TokenKind::kInt)) return error("expected a repeat count");
      group.quant = PathGroup::Quant::kExact;
      group.count = static_cast<std::uint32_t>(advance().ival);
      GEMS_RETURN_IF_ERROR(expect(TokenKind::kRBrace, "'}'"));
    } else {
      return error("expected '*', '+' or '{n}' after a path group");
    }
    group.span = span_from(start);
    return group;
  }

  Result<std::pair<LabelKind, std::string>> parse_optional_label() {
    LabelKind kind = LabelKind::kNone;
    if (accept_keyword("def")) {
      kind = LabelKind::kSet;
    } else if (accept_keyword("foreach")) {
      kind = LabelKind::kForeach;
    } else {
      return std::make_pair(kind, std::string());
    }
    GEMS_ASSIGN_OR_RETURN(std::string label, expect_ident("label name"));
    GEMS_RETURN_IF_ERROR(expect(TokenKind::kColon, "':' after the label"));
    return std::make_pair(kind, std::move(label));
  }

  Result<VertexStep> parse_vertex_step() {
    const Token& start = peek();
    VertexStep step;
    GEMS_ASSIGN_OR_RETURN(auto label, parse_optional_label());
    step.label_kind = label.first;
    step.label = std::move(label.second);

    if (accept(TokenKind::kLBracket)) {
      GEMS_RETURN_IF_ERROR(expect(TokenKind::kRBracket, "']'"));
      step.variant = true;
    } else {
      GEMS_ASSIGN_OR_RETURN(std::string name,
                            expect_ident("a vertex type, label or '[ ]'"));
      if (accept(TokenKind::kDot)) {
        // resQ1.Vn — seed from a previous result (Fig. 12).
        step.seed_result = std::move(name);
        GEMS_ASSIGN_OR_RETURN(step.type_name, expect_ident("vertex type"));
      } else {
        step.type_name = std::move(name);
      }
    }
    GEMS_ASSIGN_OR_RETURN(step.condition, parse_optional_condition());
    if (step.variant && step.condition) {
      return error(
          "conditions are not allowed on variant '[ ]' steps (attributes "
          "are not common across matching types)");
    }
    step.span = span_from(start);
    return step;
  }

  Result<EdgeStep> parse_edge_step() {
    const Token& start = peek();
    EdgeStep step;
    if (accept(TokenKind::kArrowLeft)) {
      step.reversed = true;  // <--e--
    } else {
      GEMS_RETURN_IF_ERROR(expect(TokenKind::kDashDash, "'--' or '<--'"));
    }
    GEMS_ASSIGN_OR_RETURN(auto label, parse_optional_label());
    step.label_kind = label.first;
    step.label = std::move(label.second);

    if (accept(TokenKind::kLBracket)) {
      GEMS_RETURN_IF_ERROR(expect(TokenKind::kRBracket, "']'"));
      step.variant = true;
    } else {
      GEMS_ASSIGN_OR_RETURN(step.type_name, expect_ident("an edge type"));
    }
    GEMS_ASSIGN_OR_RETURN(step.condition, parse_optional_condition());
    if (step.variant && step.condition) {
      return error("conditions are not allowed on variant '[ ]' steps");
    }
    if (step.reversed) {
      GEMS_RETURN_IF_ERROR(expect(TokenKind::kDashDash, "'--' closing the edge"));
    } else {
      GEMS_RETURN_IF_ERROR(
          expect(TokenKind::kArrowRight, "'-->' closing the edge"));
    }
    step.span = span_from(start);
    return step;
  }

  /// `( expr )` or `( )` or nothing.
  Result<ExprPtr> parse_optional_condition() {
    if (!check(TokenKind::kLParen)) return ExprPtr(nullptr);
    // Do not swallow a following regex group: a '(' directly followed by
    // '--' or '<--' belongs to the path, not to this step.
    if (peek(1).kind == TokenKind::kDashDash ||
        peek(1).kind == TokenKind::kArrowLeft) {
      return ExprPtr(nullptr);
    }
    advance();
    if (accept(TokenKind::kRParen)) return ExprPtr(nullptr);  // "( )"
    GEMS_ASSIGN_OR_RETURN(ExprPtr cond, parse_expr());
    GEMS_RETURN_IF_ERROR(expect(TokenKind::kRParen, "')'"));
    return cond;
  }

  // ---- Table queries --------------------------------------------------------
  Result<Statement> parse_table_query(std::vector<SelectItem> items,
                                      std::uint64_t top_n, bool distinct) {
    TableQueryStmt stmt;
    stmt.items = std::move(items);
    stmt.top_n = top_n;
    stmt.distinct = distinct;
    GEMS_ASSIGN_OR_RETURN(stmt.from_table, expect_ident("table name"));
    if (accept_keyword("where")) {
      GEMS_ASSIGN_OR_RETURN(stmt.where, parse_expr());
    }
    if (accept_keyword("group")) {
      GEMS_RETURN_IF_ERROR(expect_keyword("by"));
      do {
        GEMS_ASSIGN_OR_RETURN(std::string col, expect_ident("column"));
        stmt.group_by.push_back(std::move(col));
      } while (accept(TokenKind::kComma));
    }
    if (accept_keyword("order")) {
      GEMS_RETURN_IF_ERROR(expect_keyword("by"));
      do {
        const Token& ostart = peek();
        OrderItem item;
        GEMS_ASSIGN_OR_RETURN(item.column, expect_ident("column"));
        if (accept_keyword("desc")) {
          item.descending = true;
        } else {
          accept_keyword("asc");
        }
        item.span = span_from(ostart);
        stmt.order_by.push_back(std::move(item));
      } while (accept(TokenKind::kComma));
    }
    if (accept_keyword("into")) {
      GEMS_RETURN_IF_ERROR(expect_keyword("table"));
      stmt.into = IntoKind::kTable;
      GEMS_ASSIGN_OR_RETURN(stmt.into_name, expect_ident("result name"));
    }
    return Statement(std::move(stmt));
  }

  // ---- Expressions ----------------------------------------------------------
  Result<ExprPtr> parse_expr() { return parse_or(); }

  Result<ExprPtr> parse_or() {
    GEMS_ASSIGN_OR_RETURN(ExprPtr lhs, parse_and());
    while (accept_keyword("or")) {
      GEMS_ASSIGN_OR_RETURN(ExprPtr rhs, parse_and());
      lhs = Expr::make_binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> parse_and() {
    GEMS_ASSIGN_OR_RETURN(ExprPtr lhs, parse_not());
    while (accept_keyword("and")) {
      GEMS_ASSIGN_OR_RETURN(ExprPtr rhs, parse_not());
      lhs = Expr::make_binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> parse_not() {
    if (accept_keyword("not")) {
      GEMS_ASSIGN_OR_RETURN(ExprPtr operand, parse_not());
      return Expr::make_unary(UnaryOp::kNot, std::move(operand));
    }
    return parse_comparison();
  }

  Result<ExprPtr> parse_comparison() {
    GEMS_ASSIGN_OR_RETURN(ExprPtr lhs, parse_additive());
    std::optional<BinaryOp> op;
    switch (peek().kind) {
      case TokenKind::kEq:
        op = BinaryOp::kEq;
        break;
      case TokenKind::kNe:
        op = BinaryOp::kNe;
        break;
      case TokenKind::kLt:
        op = BinaryOp::kLt;
        break;
      case TokenKind::kLe:
        op = BinaryOp::kLe;
        break;
      case TokenKind::kGt:
        op = BinaryOp::kGt;
        break;
      case TokenKind::kGe:
        op = BinaryOp::kGe;
        break;
      default:
        break;
    }
    if (!op) return lhs;
    advance();
    GEMS_ASSIGN_OR_RETURN(ExprPtr rhs, parse_additive());
    return Expr::make_binary(*op, std::move(lhs), std::move(rhs));
  }

  Result<ExprPtr> parse_additive() {
    GEMS_ASSIGN_OR_RETURN(ExprPtr lhs, parse_multiplicative());
    for (;;) {
      if (accept(TokenKind::kPlus)) {
        GEMS_ASSIGN_OR_RETURN(ExprPtr rhs, parse_multiplicative());
        lhs = Expr::make_binary(BinaryOp::kAdd, std::move(lhs), std::move(rhs));
      } else if (accept(TokenKind::kMinus)) {
        GEMS_ASSIGN_OR_RETURN(ExprPtr rhs, parse_multiplicative());
        lhs = Expr::make_binary(BinaryOp::kSub, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> parse_multiplicative() {
    GEMS_ASSIGN_OR_RETURN(ExprPtr lhs, parse_unary());
    for (;;) {
      if (accept(TokenKind::kStar)) {
        GEMS_ASSIGN_OR_RETURN(ExprPtr rhs, parse_unary());
        lhs = Expr::make_binary(BinaryOp::kMul, std::move(lhs), std::move(rhs));
      } else if (accept(TokenKind::kSlash)) {
        GEMS_ASSIGN_OR_RETURN(ExprPtr rhs, parse_unary());
        lhs = Expr::make_binary(BinaryOp::kDiv, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> parse_unary() {
    if (accept(TokenKind::kMinus)) {
      GEMS_ASSIGN_OR_RETURN(ExprPtr operand, parse_unary());
      return Expr::make_unary(UnaryOp::kNeg, std::move(operand));
    }
    return parse_primary();
  }

  Result<ExprPtr> parse_primary() {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::kInt: {
        advance();
        return spanned_literal(Value::int64(t.ival), t);
      }
      case TokenKind::kFloat: {
        advance();
        return spanned_literal(Value::float64(t.fval), t);
      }
      case TokenKind::kString: {
        advance();
        return spanned_literal(Value::varchar(t.text), t);
      }
      case TokenKind::kParam: {
        advance();
        return Expr::make_parameter(
            t.text, static_cast<std::uint32_t>(t.line),
            static_cast<std::uint32_t>(t.column),
            static_cast<std::uint32_t>(t.end_line),
            static_cast<std::uint32_t>(t.end_column));
      }
      case TokenKind::kKeyword: {
        if (t.text == "null") {
          advance();
          return spanned_literal(Value::null(), t);
        }
        if (t.text == "true" || t.text == "false") {
          advance();
          return spanned_literal(Value::boolean(t.text == "true"), t);
        }
        return error("unexpected keyword in expression");
      }
      case TokenKind::kLParen: {
        advance();
        GEMS_ASSIGN_OR_RETURN(ExprPtr inner, parse_expr());
        GEMS_RETURN_IF_ERROR(expect(TokenKind::kRParen, "')'"));
        return inner;
      }
      case TokenKind::kIdent: {
        // `date '2008-06-20'` — contextual date literal.
        if ((t.text == "date" || t.text == "DATE" || t.text == "Date") &&
            peek(1).kind == TokenKind::kString) {
          advance();
          const Token& s = advance();
          auto days = storage::parse_date(s.text);
          if (!days.is_ok()) return days.status();
          return Expr::make_literal(Value::date(days.value()),
                                    static_cast<std::uint32_t>(t.line),
                                    static_cast<std::uint32_t>(t.column),
                                    static_cast<std::uint32_t>(s.end_line),
                                    static_cast<std::uint32_t>(s.end_column));
        }
        advance();
        std::string first = t.text;
        if (accept(TokenKind::kDot)) {
          GEMS_ASSIGN_OR_RETURN(std::string col,
                                expect_ident("attribute name"));
          const Token& last = prev();
          return Expr::make_column(std::move(first), std::move(col),
                                   static_cast<std::uint32_t>(t.line),
                                   static_cast<std::uint32_t>(t.column),
                                   static_cast<std::uint32_t>(last.end_line),
                                   static_cast<std::uint32_t>(last.end_column));
        }
        return Expr::make_column("", std::move(first),
                                 static_cast<std::uint32_t>(t.line),
                                 static_cast<std::uint32_t>(t.column),
                                 static_cast<std::uint32_t>(t.end_line),
                                 static_cast<std::uint32_t>(t.end_column));
      }
      default:
        return error("expected an expression");
    }
  }

  static ExprPtr spanned_literal(Value v, const Token& t) {
    return Expr::make_literal(std::move(v), static_cast<std::uint32_t>(t.line),
                              static_cast<std::uint32_t>(t.column),
                              static_cast<std::uint32_t>(t.end_line),
                              static_cast<std::uint32_t>(t.end_column));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  mutable SourceSpan last_error_span_;
};

}  // namespace

Result<Script> parse_script(std::string_view source) {
  GEMS_ASSIGN_OR_RETURN(auto tokens, lex(source));
  Parser parser(std::move(tokens));
  return parser.parse_script();
}

Result<Statement> parse_statement(std::string_view source) {
  GEMS_ASSIGN_OR_RETURN(auto tokens, lex(source));
  Parser parser(std::move(tokens));
  GEMS_ASSIGN_OR_RETURN(Statement stmt, parser.parse_statement());
  if (!parser.at_eof()) {
    return parse_error("trailing input after statement");
  }
  return stmt;
}

Script parse_script_collect(std::string_view source, DiagnosticEngine& diags) {
  SourceSpan lex_span;
  auto tokens = lex(source, &lex_span);
  if (!tokens.is_ok()) {
    // Lexing is not recoverable: the character stream itself is broken.
    diags.error(DiagCode::kLexError, tokens.status().code(), lex_span,
                tokens.status().message());
    return {};
  }
  Parser parser(std::move(tokens).value());
  return parser.parse_script_collect(diags);
}

}  // namespace gems::graql
