#include "graql/analyzer.hpp"

#include <functional>
#include <unordered_map>

#include "common/check.hpp"

namespace gems::graql {

namespace {

using relational::BinaryOp;
using relational::Expr;
using relational::ExprPtr;
using relational::ParamMap;
using relational::UnaryOp;
using storage::DataType;
using storage::Schema;
using storage::TypeKind;
using storage::Value;

// ---- Schema-level expression type inference --------------------------------
// Mirrors relational/bind.cpp but works without data and treats unbound
// %parameters% as wildcards (their types are checked at execution time).

using MaybeType = std::optional<DataType>;  // nullopt = statically unknown

using Resolver =
    std::function<Result<DataType>(std::string_view, std::string_view)>;

MaybeType value_type(const Value& v) {
  if (v.is_null()) return std::nullopt;
  switch (v.kind()) {
    case TypeKind::kBool:
      return DataType::boolean();
    case TypeKind::kInt64:
      return DataType::int64();
    case TypeKind::kDate:
      return DataType::date();
    case TypeKind::kDouble:
      return DataType::float64();
    case TypeKind::kVarchar:
      return DataType::varchar(255);
  }
  GEMS_UNREACHABLE("bad value kind");
}

bool is_comparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

Result<MaybeType> infer_type(const ExprPtr& expr, const Resolver& resolve,
                             const ParamMap* params) {
  GEMS_CHECK(expr != nullptr);
  switch (expr->kind) {
    case Expr::Kind::kLiteral:
      return value_type(expr->literal);
    case Expr::Kind::kParameter: {
      if (params != nullptr) {
        auto it = params->find(expr->param_name);
        if (it == params->end()) {
          return invalid_argument("unbound query parameter %" +
                                  expr->param_name + "%");
        }
        return value_type(it->second);
      }
      return MaybeType(std::nullopt);
    }
    case Expr::Kind::kColumnRef: {
      auto t = resolve(expr->qualifier, expr->column);
      if (!t.is_ok()) return t.status();
      return MaybeType(t.value());
    }
    case Expr::Kind::kUnary: {
      GEMS_ASSIGN_OR_RETURN(MaybeType operand,
                            infer_type(expr->lhs, resolve, params));
      if (expr->uop == UnaryOp::kNot) {
        if (operand && operand->kind != TypeKind::kBool) {
          return type_error("'not' requires a boolean, got " +
                            operand->to_string());
        }
        return MaybeType(DataType::boolean());
      }
      if (operand && !operand->is_numeric()) {
        return type_error("unary '-' requires a numeric operand, got " +
                          operand->to_string());
      }
      return operand;
    }
    case Expr::Kind::kBinary: {
      GEMS_ASSIGN_OR_RETURN(MaybeType lt,
                            infer_type(expr->lhs, resolve, params));
      GEMS_ASSIGN_OR_RETURN(MaybeType rt,
                            infer_type(expr->rhs, resolve, params));
      if (expr->bop == BinaryOp::kAnd || expr->bop == BinaryOp::kOr) {
        if ((lt && lt->kind != TypeKind::kBool) ||
            (rt && rt->kind != TypeKind::kBool)) {
          return type_error("'" + std::string(binary_op_name(expr->bop)) +
                            "' requires boolean operands");
        }
        return MaybeType(DataType::boolean());
      }
      if (is_comparison(expr->bop)) {
        if (lt && rt && !lt->comparable_with(*rt)) {
          return type_error("cannot compare " + lt->to_string() + " with " +
                            rt->to_string() + " in '" + expr->to_string() +
                            "'");
        }
        return MaybeType(DataType::boolean());
      }
      // Arithmetic.
      if ((lt && !lt->is_numeric()) || (rt && !rt->is_numeric())) {
        return type_error("operator '" +
                          std::string(binary_op_name(expr->bop)) +
                          "' requires numeric operands in '" +
                          expr->to_string() + "'");
      }
      if (!lt || !rt) return MaybeType(std::nullopt);
      return MaybeType((lt->kind == TypeKind::kDouble ||
                        rt->kind == TypeKind::kDouble ||
                        expr->bop == BinaryOp::kDiv)
                           ? DataType::float64()
                           : DataType::int64());
    }
  }
  GEMS_UNREACHABLE("bad expr kind");
}

Status require_boolean(const ExprPtr& expr, const Resolver& resolve,
                       const ParamMap* params) {
  GEMS_ASSIGN_OR_RETURN(MaybeType t, infer_type(expr, resolve, params));
  if (t && t->kind != TypeKind::kBool) {
    return type_error("condition '" + expr->to_string() +
                      "' is not boolean (type " + t->to_string() + ")");
  }
  return Status::ok();
}

// ---- Graph query analysis ------------------------------------------------

/// What the analyzer knows about one step, label or not.
struct StepInfo {
  bool is_edge = false;
  bool variant = false;
  std::string type_name;            // empty when variant
  const Schema* attr_schema = nullptr;  // null for variant / attr-less edges
};

class GraphQueryAnalyzer {
 public:
  GraphQueryAnalyzer(const MetaCatalog& catalog, const ParamMap* params)
      : catalog_(catalog), params_(params) {}

  Status analyze(const GraphQueryStmt& stmt) {
    if (stmt.or_groups.empty() || stmt.or_groups[0].empty()) {
      return invalid_argument("graph query has no path pattern");
    }
    for (const auto& and_group : stmt.or_groups) {
      for (const auto& path : and_group) {
        GEMS_RETURN_IF_ERROR(analyze_path(path));
      }
    }
    GEMS_RETURN_IF_ERROR(check_targets(stmt));
    return Status::ok();
  }

  /// Steps usable as subgraph-seed names (vertex type names that appear).
  SubgraphMeta subgraph_meta(const GraphQueryStmt& stmt) const {
    SubgraphMeta meta;
    if (std::any_of(stmt.targets.begin(), stmt.targets.end(),
                    [](const SelectTarget& t) { return t.star; })) {
      for (const auto& [name, info] : steps_) {
        if (!info.is_edge && !info.variant) meta.vertex_steps.insert(name);
      }
      return meta;
    }
    for (const auto& t : stmt.targets) {
      auto it = steps_.find(t.qualifier);
      if (it != steps_.end() && !it->second.is_edge && !it->second.variant) {
        meta.vertex_steps.insert(it->second.type_name);
      }
    }
    return meta;
  }

  /// Inferred schema of an `into table` result (paper Fig. 13: "each row
  /// has all the attributes of all entities involved in the query path").
  /// Must agree with the executor's materialization — both use OutputNamer.
  Result<Schema> output_schema(const GraphQueryStmt& stmt) const {
    OutputNamer namer;
    std::vector<storage::ColumnDef> cols;
    auto add_step_columns = [&](const std::string& display,
                                const StepInfo& info) -> Status {
      if (info.variant) {
        return type_error(
            "variant '[ ]' steps cannot be selected into a table "
            "(attributes are not common across types); use 'into "
            "subgraph'");
      }
      if (info.attr_schema == nullptr) return Status::ok();
      for (const auto& c : info.attr_schema->columns()) {
        cols.push_back({namer.assign(display + "_" + c.name, ""), c.type});
      }
      return Status::ok();
    };
    for (const auto& t : stmt.targets) {
      if (t.star) {
        for (const auto& [display, info] : ordered_steps_) {
          GEMS_RETURN_IF_ERROR(add_step_columns(display, info));
        }
        continue;
      }
      const StepInfo& info = steps_.at(t.qualifier);
      if (t.column.empty()) {
        GEMS_RETURN_IF_ERROR(add_step_columns(
            t.alias.empty() ? t.qualifier : t.alias, info));
        continue;
      }
      const auto idx = info.attr_schema->find(t.column);
      GEMS_CHECK(idx.has_value());  // verified by check_targets
      cols.push_back(
          {namer.assign(t.alias.empty() ? t.column : t.alias, t.qualifier),
           info.attr_schema->column(*idx).type});
    }
    return Schema::create(std::move(cols));
  }

 private:
  Status analyze_path(const PathPattern& path) {
    if (path.elements.empty()) {
      return invalid_argument("empty path pattern");
    }
    if (!std::holds_alternative<VertexStep>(path.elements.front())) {
      return invalid_argument("a path query must start with a vertex step");
    }
    // The previous *vertex* step's info, for edge adjacency checks.
    StepInfo prev_vertex;
    bool have_prev = false;

    for (std::size_t i = 0; i < path.elements.size(); ++i) {
      const PathElement& el = path.elements[i];
      if (const auto* v = std::get_if<VertexStep>(&el)) {
        if (have_prev && i > 0 &&
            std::holds_alternative<VertexStep>(path.elements[i - 1])) {
          return invalid_argument(
              "two consecutive vertex steps; an edge step must connect "
              "them");
        }
        GEMS_ASSIGN_OR_RETURN(StepInfo info, analyze_vertex_step(*v));
        // Adjacency check against a preceding edge step.
        if (i > 0) {
          if (const auto* e = std::get_if<EdgeStep>(&path.elements[i - 1])) {
            GEMS_RETURN_IF_ERROR(
                check_edge_adjacency(*e, prev_vertex, info));
          }
        }
        prev_vertex = info;
        have_prev = true;
        continue;
      }
      if (const auto* e = std::get_if<EdgeStep>(&el)) {
        GEMS_RETURN_IF_ERROR(analyze_edge_step(*e, /*in_group=*/false));
        if (i + 1 >= path.elements.size()) {
          return invalid_argument(
              "a path query must end with a vertex step");
        }
        continue;
      }
      const auto& group = std::get<PathGroup>(el);
      GEMS_ASSIGN_OR_RETURN(prev_vertex,
                            analyze_group(group, prev_vertex));
      have_prev = true;
    }
    if (std::holds_alternative<EdgeStep>(path.elements.back())) {
      return invalid_argument("a path query must end with a vertex step");
    }
    return Status::ok();
  }

  Result<StepInfo> analyze_vertex_step(const VertexStep& v) {
    StepInfo info;
    info.is_edge = false;

    if (v.variant) {
      info.variant = true;
    } else if (const auto* labeled = find_label(v.type_name);
               labeled != nullptr && v.seed_result.empty()) {
      // Bare label reference (Eq. 6/8): adopts the labeled step's type.
      if (labeled->is_edge) {
        return type_error("label '" + v.type_name +
                          "' names an edge step but is used as a vertex "
                          "step");
      }
      info = *labeled;
    } else {
      if (!v.seed_result.empty()) {
        const SubgraphMeta* sub = catalog_.find_subgraph(v.seed_result);
        if (sub == nullptr) {
          return not_found("unknown result subgraph '" + v.seed_result +
                           "' (Fig. 12 seeding requires a prior 'into "
                           "subgraph')");
        }
        if (!sub->vertex_steps.contains(v.type_name)) {
          return not_found("subgraph '" + v.seed_result +
                           "' has no vertex step '" + v.type_name + "'");
        }
      }
      const VertexMeta* meta = catalog_.find_vertex(v.type_name);
      if (meta == nullptr) {
        if (catalog_.find_table(v.type_name) != nullptr) {
          return type_error("'" + v.type_name +
                            "' is a table, but a vertex type is required "
                            "in a path step");
        }
        if (catalog_.find_edge(v.type_name) != nullptr) {
          return type_error("'" + v.type_name +
                            "' is an edge type, but a vertex type is "
                            "required here");
        }
        return not_found("unknown vertex type '" + v.type_name + "'");
      }
      info.type_name = v.type_name;
      info.attr_schema = &meta->attr_schema;
    }

    if (v.condition) {
      GEMS_RETURN_IF_ERROR(check_step_condition(v.condition, info,
                                                v.type_name, v.label));
    }
    GEMS_RETURN_IF_ERROR(define_label(v.label_kind, v.label, info));
    if (!info.variant && !info.type_name.empty()) {
      steps_.emplace(info.type_name, info);
    }
    if (!v.label.empty()) steps_[v.label] = info;
    // Record first-mention order for `select *` (skip bare label refs —
    // they re-visit an already recorded step).
    const bool is_label_ref =
        !v.variant && find_label(v.type_name) != nullptr &&
        v.seed_result.empty() && v.label.empty();
    if (!is_label_ref) {
      ordered_steps_.emplace_back(
          !v.label.empty() ? v.label : v.type_name, info);
    }
    return info;
  }

  Status analyze_edge_step(const EdgeStep& e, bool in_group) {
    StepInfo info;
    info.is_edge = true;
    if (e.variant) {
      info.variant = true;
    } else {
      const EdgeMeta* meta = catalog_.find_edge(e.type_name);
      if (meta == nullptr) {
        if (catalog_.find_vertex(e.type_name) != nullptr) {
          return type_error("'" + e.type_name +
                            "' is a vertex type, but an edge type is "
                            "required between '--' arrows");
        }
        return not_found("unknown edge type '" + e.type_name + "'");
      }
      info.type_name = e.type_name;
      info.attr_schema =
          meta->attr_schema ? &*meta->attr_schema : nullptr;
    }
    if (e.condition) {
      if (info.attr_schema == nullptr && !info.variant) {
        return type_error("edge type '" + e.type_name +
                          "' has no attributes to filter on");
      }
      GEMS_RETURN_IF_ERROR(
          check_step_condition(e.condition, info, e.type_name, e.label));
    }
    if (e.label_kind != LabelKind::kNone && in_group) {
      return invalid_argument(
          "labels are not allowed inside path regular expressions "
          "(paper Sec. II-B4)");
    }
    GEMS_RETURN_IF_ERROR(define_label(e.label_kind, e.label, info));
    if (!e.label.empty()) steps_[e.label] = info;
    if (!info.variant && !info.type_name.empty()) {
      steps_.emplace(info.type_name, info);
    }
    ordered_steps_.emplace_back(!e.label.empty() ? e.label : e.type_name,
                                info);
    return Status::ok();
  }

  Result<StepInfo> analyze_group(const PathGroup& group,
                                 const StepInfo& entry) {
    StepInfo last_vertex = entry;
    for (std::size_t i = 0; i < group.body.size(); ++i) {
      const PathElement& el = group.body[i];
      if (const auto* e = std::get_if<EdgeStep>(&el)) {
        if (e->label_kind != LabelKind::kNone) {
          return invalid_argument(
              "labels are not allowed inside path regular expressions");
        }
        GEMS_RETURN_IF_ERROR(analyze_edge_step(*e, /*in_group=*/true));
        continue;
      }
      if (const auto* v = std::get_if<VertexStep>(&el)) {
        if (v->label_kind != LabelKind::kNone) {
          return invalid_argument(
              "labels are not allowed inside path regular expressions");
        }
        GEMS_ASSIGN_OR_RETURN(StepInfo info, analyze_vertex_step(*v));
        // Adjacency within the group.
        if (i > 0) {
          if (const auto* e = std::get_if<EdgeStep>(&group.body[i - 1])) {
            GEMS_RETURN_IF_ERROR(
                check_edge_adjacency(*e, last_vertex, info));
          }
        }
        last_vertex = info;
        continue;
      }
      return invalid_argument("nested path groups are not supported");
    }
    return last_vertex;
  }

  /// Non-variant edge between two (possibly variant/unknown) vertex steps:
  /// endpoints must match declared source/target given the direction.
  Status check_edge_adjacency(const EdgeStep& e, const StepInfo& left,
                              const StepInfo& right) {
    const std::string& lt = left.type_name;
    const std::string& rt = right.type_name;
    if (!e.variant) {
      const EdgeMeta* meta = catalog_.find_edge(e.type_name);
      if (meta == nullptr) return Status::ok();  // reported elsewhere
      const std::string& want_src = e.reversed ? rt : lt;
      const std::string& want_dst = e.reversed ? lt : rt;
      if (!want_src.empty() && meta->source_vertex != want_src) {
        return type_error("edge '" + e.type_name + "' starts at '" +
                          meta->source_vertex + "', not '" + want_src +
                          "' (check the arrow direction)");
      }
      if (!want_dst.empty() && meta->target_vertex != want_dst) {
        return type_error("edge '" + e.type_name + "' ends at '" +
                          meta->target_vertex + "', not '" + want_dst + "'");
      }
      return Status::ok();
    }
    // Variant edge between two known vertex types: at least one edge type
    // must connect them, else the query is statically empty (Sec. III-A
    // "will the query result be empty?").
    if (!lt.empty() && !rt.empty()) {
      const std::string& src = e.reversed ? rt : lt;
      const std::string& dst = e.reversed ? lt : rt;
      if (catalog_.edges_between(src, dst).empty()) {
        return invalid_argument("statically empty query: no edge type "
                                "connects '" + src + "' to '" + dst + "'");
      }
    }
    return Status::ok();
  }

  Status check_step_condition(const ExprPtr& cond, const StepInfo& self,
                              const std::string& self_name,
                              const std::string& self_label) {
    Resolver resolve = [&](std::string_view qual,
                           std::string_view col) -> Result<DataType> {
      const StepInfo* target = nullptr;
      if (qual.empty() || qual == self_name ||
          (!self_label.empty() && qual == self_label)) {
        target = &self;
      } else if (const StepInfo* labeled = find_label(qual)) {
        target = labeled;
      } else if (auto it = steps_.find(std::string(qual));
                 it != steps_.end()) {
        target = &it->second;
      } else {
        return not_found("unknown qualifier '" + std::string(qual) +
                         "' in step condition (conditions may reference "
                         "the current step and labeled previous steps)");
      }
      if (target->attr_schema == nullptr) {
        return type_error("step '" + std::string(qual.empty() ? col : qual) +
                          "' has no attributes");
      }
      auto idx = target->attr_schema->find(col);
      if (!idx) {
        return not_found("step '" +
                         (qual.empty() ? self_name : std::string(qual)) +
                         "' has no attribute '" + std::string(col) + "'");
      }
      return target->attr_schema->column(*idx).type;
    };
    return require_boolean(cond, resolve, params_);
  }

  Status define_label(LabelKind kind, const std::string& label,
                      const StepInfo& info) {
    if (kind == LabelKind::kNone) return Status::ok();
    if (labels_.contains(label)) {
      return already_exists("label '" + label +
                            "' defined twice in one query");
    }
    if (catalog_.find_vertex(label) != nullptr ||
        catalog_.find_edge(label) != nullptr) {
      return already_exists("label '" + label +
                            "' shadows a declared graph type");
    }
    labels_.emplace(label, info);
    return Status::ok();
  }

  const StepInfo* find_label(std::string_view name) const {
    auto it = labels_.find(std::string(name));
    return it == labels_.end() ? nullptr : &it->second;
  }

  Status check_targets(const GraphQueryStmt& stmt) {
    if (stmt.targets.empty()) {
      return invalid_argument("graph query selects nothing");
    }
    for (const auto& t : stmt.targets) {
      if (t.star) continue;
      auto it = steps_.find(t.qualifier);
      if (it == steps_.end()) {
        return not_found("select target '" + t.qualifier +
                         "' does not name a step or label of this query");
      }
      if (!t.column.empty()) {
        if (it->second.attr_schema == nullptr) {
          return type_error("step '" + t.qualifier + "' has no attributes");
        }
        if (!it->second.attr_schema->find(t.column)) {
          return not_found("step '" + t.qualifier + "' has no attribute '" +
                           t.column + "'");
        }
      }
    }
    return Status::ok();
  }

  const MetaCatalog& catalog_;
  const ParamMap* params_;
  // All addressable steps of this statement: type names and labels.
  std::unordered_map<std::string, StepInfo> steps_;
  std::unordered_map<std::string, StepInfo> labels_;
  // Steps in first-mention order, for `select *` output schemas.
  std::vector<std::pair<std::string, StepInfo>> ordered_steps_;
};

// ---- Table query analysis --------------------------------------------------

Status analyze_table_query(const TableQueryStmt& stmt,
                           const MetaCatalog& catalog,
                           const ParamMap* params,
                           Schema* out_schema) {
  const Schema* schema = catalog.find_table(stmt.from_table);
  if (schema == nullptr) {
    // Paper Sec. III-A: "a table name should be used when a table is
    // required, rather than a vertex type name".
    if (catalog.find_vertex(stmt.from_table) != nullptr) {
      return type_error("'" + stmt.from_table +
                        "' is a vertex type; 'from table' requires a table");
    }
    if (catalog.find_edge(stmt.from_table) != nullptr) {
      return type_error("'" + stmt.from_table +
                        "' is an edge type; 'from table' requires a table");
    }
    return not_found("unknown table '" + stmt.from_table + "'");
  }

  Resolver resolve = [&](std::string_view qual,
                         std::string_view col) -> Result<DataType> {
    if (!qual.empty() && qual != stmt.from_table) {
      return not_found("unknown qualifier '" + std::string(qual) + "'");
    }
    auto idx = schema->find(col);
    if (!idx) {
      return not_found("table '" + stmt.from_table + "' has no column '" +
                       std::string(col) + "'");
    }
    return schema->column(*idx).type;
  };

  if (stmt.where) {
    GEMS_RETURN_IF_ERROR(require_boolean(stmt.where, resolve, params));
  }
  for (const auto& col : stmt.group_by) {
    if (!schema->find(col)) {
      return not_found("group by column '" + col + "' is not in table '" +
                       stmt.from_table + "'");
    }
  }

  const bool has_agg =
      std::any_of(stmt.items.begin(), stmt.items.end(),
                  [](const SelectItem& i) { return i.agg != AggFunc::kNone; });
  const bool grouped = has_agg || !stmt.group_by.empty();

  std::vector<storage::ColumnDef> out_cols;
  std::size_t anon = 0;
  for (const auto& item : stmt.items) {
    if (item.star) {
      if (grouped) {
        return type_error(
            "'*' cannot be combined with aggregates or group by");
      }
      for (const auto& c : schema->columns()) out_cols.push_back(c);
      continue;
    }
    MaybeType type;
    std::string default_name;
    if (item.agg == AggFunc::kCountStar) {
      type = DataType::int64();
      default_name = "count";
    } else if (item.agg != AggFunc::kNone) {
      GEMS_ASSIGN_OR_RETURN(MaybeType input,
                            infer_type(item.expr, resolve, params));
      if ((item.agg == AggFunc::kSum || item.agg == AggFunc::kAvg) && input &&
          !input->is_numeric()) {
        return type_error("sum/avg require a numeric column");
      }
      switch (item.agg) {
        case AggFunc::kCount:
          type = DataType::int64();
          default_name = "count";
          break;
        case AggFunc::kSum:
          type = input;
          default_name = "sum";
          break;
        case AggFunc::kAvg:
          type = DataType::float64();
          default_name = "avg";
          break;
        case AggFunc::kMin:
          type = input;
          default_name = "min";
          break;
        case AggFunc::kMax:
          type = input;
          default_name = "max";
          break;
        default:
          GEMS_UNREACHABLE("handled");
      }
    } else {
      GEMS_ASSIGN_OR_RETURN(type, infer_type(item.expr, resolve, params));
      if (grouped) {
        // SQL rule: non-aggregate outputs must be grouping columns.
        const bool is_group_col =
            item.expr->kind == Expr::Kind::kColumnRef &&
            std::find(stmt.group_by.begin(), stmt.group_by.end(),
                      item.expr->column) != stmt.group_by.end();
        if (!is_group_col) {
          return type_error("select item '" + item.expr->to_string() +
                            "' must be aggregated or listed in group by");
        }
      }
      default_name = item.expr->kind == Expr::Kind::kColumnRef
                         ? item.expr->column
                         : "expr" + std::to_string(anon++);
    }
    std::string name = item.alias.empty() ? default_name : item.alias;
    // Ensure uniqueness in the output schema.
    std::string unique = name;
    int suffix = 1;
    auto taken = [&](const std::string& n) {
      return std::any_of(out_cols.begin(), out_cols.end(),
                         [&](const auto& c) { return c.name == n; });
    };
    while (taken(unique)) unique = name + "_" + std::to_string(++suffix);
    out_cols.push_back({unique, type.value_or(DataType::int64())});
  }

  for (const auto& ord : stmt.order_by) {
    const bool in_output =
        std::any_of(out_cols.begin(), out_cols.end(),
                    [&](const auto& c) { return c.name == ord.column; });
    if (!in_output && !schema->find(ord.column)) {
      return not_found("order by column '" + ord.column +
                       "' is neither an output column nor a column of '" +
                       stmt.from_table + "'");
    }
    if (grouped && !in_output) {
      return type_error("order by column '" + ord.column +
                        "' must be an output column of the grouped query");
    }
  }

  if (out_schema != nullptr) {
    GEMS_ASSIGN_OR_RETURN(*out_schema, Schema::create(std::move(out_cols)));
  }
  return Status::ok();
}

// ---- DDL analysis -----------------------------------------------------------

Status analyze_create_vertex(const CreateVertexStmt& stmt,
                             const MetaCatalog& catalog,
                             const ParamMap* params) {
  const graph::VertexDecl& d = stmt.decl;
  const Schema* schema = catalog.find_table(d.table);
  if (schema == nullptr) {
    if (catalog.find_vertex(d.table) != nullptr) {
      return type_error("'" + d.table +
                        "' is a vertex type; vertices are created from "
                        "tables");
    }
    return not_found("unknown table '" + d.table + "'");
  }
  if (catalog.name_in_use(d.name)) {
    return already_exists("name '" + d.name + "' is already in use");
  }
  if (d.key_columns.empty()) {
    return invalid_argument("vertex '" + d.name + "' needs a key column");
  }
  for (const auto& key : d.key_columns) {
    if (!schema->find(key)) {
      return not_found("table '" + d.table + "' has no column '" + key +
                       "' (vertex '" + d.name + "' key)");
    }
  }
  if (d.where) {
    Resolver resolve = [&](std::string_view qual,
                           std::string_view col) -> Result<DataType> {
      if (!qual.empty() && qual != d.name && qual != d.table) {
        return not_found("unknown qualifier '" + std::string(qual) + "'");
      }
      auto idx = schema->find(col);
      if (!idx) {
        return not_found("table '" + d.table + "' has no column '" +
                         std::string(col) + "'");
      }
      return schema->column(*idx).type;
    };
    GEMS_RETURN_IF_ERROR(require_boolean(d.where, resolve, params));
  }
  return Status::ok();
}

Status analyze_create_edge(const CreateEdgeStmt& stmt,
                           const MetaCatalog& catalog,
                           const ParamMap* params) {
  const graph::EdgeDecl& d = stmt.decl;
  if (catalog.name_in_use(d.name)) {
    return already_exists("name '" + d.name + "' is already in use");
  }
  const VertexMeta* src = catalog.find_vertex(d.source.vertex_type);
  const VertexMeta* dst = catalog.find_vertex(d.target.vertex_type);
  if (src == nullptr) {
    return not_found("unknown vertex type '" + d.source.vertex_type + "'");
  }
  if (dst == nullptr) {
    return not_found("unknown vertex type '" + d.target.vertex_type + "'");
  }
  if (d.source.vertex_type == d.target.vertex_type &&
      (d.source.alias.empty() || d.target.alias.empty())) {
    return invalid_argument("edge '" + d.name +
                            "': same-type endpoints need 'as' aliases");
  }
  if (!d.where) {
    return invalid_argument("edge '" + d.name + "' requires a where clause");
  }

  struct Source {
    std::vector<std::string> quals;
    const Schema* schema;
  };
  std::vector<Source> sources;
  const bool same = d.source.vertex_type == d.target.vertex_type;
  auto quals_of = [&](const graph::EdgeEndpoint& ep) {
    std::vector<std::string> q;
    if (!ep.alias.empty()) q.push_back(ep.alias);
    if (!same) q.push_back(ep.vertex_type);
    return q;
  };
  sources.push_back({quals_of(d.source), &src->attr_schema});
  sources.push_back({quals_of(d.target), &dst->attr_schema});
  for (const auto& name : d.assoc_tables) {
    const Schema* s = catalog.find_table(name);
    if (s == nullptr) {
      return not_found("unknown associated table '" + name + "' in edge '" +
                       d.name + "'");
    }
    sources.push_back({{name}, s});
  }

  Resolver resolve = [&](std::string_view qual,
                         std::string_view col) -> Result<DataType> {
    if (qual.empty()) {
      const Schema* found = nullptr;
      DataType type;
      for (const auto& s : sources) {
        auto idx = s.schema->find(col);
        if (!idx) continue;
        if (found != nullptr) {
          return type_error("column '" + std::string(col) +
                            "' is ambiguous; qualify it");
        }
        found = s.schema;
        type = s.schema->column(*idx).type;
      }
      if (found == nullptr) {
        return not_found("no edge source has a column '" + std::string(col) +
                         "'");
      }
      return type;
    }
    for (const auto& s : sources) {
      if (std::find(s.quals.begin(), s.quals.end(), qual) == s.quals.end()) {
        continue;
      }
      auto idx = s.schema->find(col);
      if (!idx) {
        return not_found("'" + std::string(qual) + "' has no column '" +
                         std::string(col) + "'");
      }
      return s.schema->column(*idx).type;
    }
    return not_found("unknown qualifier '" + std::string(qual) + "'");
  };
  return require_boolean(d.where, resolve, params);
}

}  // namespace

// ---- MetaCatalog -------------------------------------------------------------

Status MetaCatalog::add_table(const std::string& name,
                              storage::Schema schema) {
  if (name_in_use(name)) {
    return already_exists("name '" + name + "' is already in use");
  }
  tables_.emplace(name, std::move(schema));
  return Status::ok();
}

Status MetaCatalog::add_vertex(const std::string& name, VertexMeta meta) {
  if (name_in_use(name)) {
    return already_exists("name '" + name + "' is already in use");
  }
  vertices_.emplace(name, std::move(meta));
  return Status::ok();
}

Status MetaCatalog::add_edge(const std::string& name, EdgeMeta meta) {
  if (name_in_use(name)) {
    return already_exists("name '" + name + "' is already in use");
  }
  edges_.emplace(name, std::move(meta));
  return Status::ok();
}

void MetaCatalog::add_subgraph(const std::string& name, SubgraphMeta meta) {
  subgraphs_[name] = std::move(meta);
}

void MetaCatalog::put_table(const std::string& name,
                            storage::Schema schema) {
  tables_[name] = std::move(schema);
}

const storage::Schema* MetaCatalog::find_table(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}
const VertexMeta* MetaCatalog::find_vertex(const std::string& name) const {
  auto it = vertices_.find(name);
  return it == vertices_.end() ? nullptr : &it->second;
}
const EdgeMeta* MetaCatalog::find_edge(const std::string& name) const {
  auto it = edges_.find(name);
  return it == edges_.end() ? nullptr : &it->second;
}
const SubgraphMeta* MetaCatalog::find_subgraph(
    const std::string& name) const {
  auto it = subgraphs_.find(name);
  return it == subgraphs_.end() ? nullptr : &it->second;
}

bool MetaCatalog::name_in_use(const std::string& name) const {
  return tables_.contains(name) || vertices_.contains(name) ||
         edges_.contains(name);
}

std::vector<std::string> MetaCatalog::edges_between(
    const std::string& src, const std::string& dst) const {
  std::vector<std::string> out;
  for (const auto& [name, meta] : edges_) {
    if (meta.source_vertex == src && meta.target_vertex == dst) {
      out.push_back(name);
    }
  }
  return out;
}

// ---- Entry points ------------------------------------------------------------

Status analyze_statement(const Statement& stmt, MetaCatalog& catalog,
                         const relational::ParamMap* params) {
  if (const auto* s = std::get_if<CreateTableStmt>(&stmt)) {
    GEMS_ASSIGN_OR_RETURN(Schema schema, Schema::create(s->columns));
    return catalog.add_table(s->name, std::move(schema));
  }
  if (const auto* s = std::get_if<CreateVertexStmt>(&stmt)) {
    GEMS_RETURN_IF_ERROR(analyze_create_vertex(*s, catalog, params));
    const Schema* source = catalog.find_table(s->decl.table);
    return catalog.add_vertex(
        s->decl.name, VertexMeta{s->decl.table, *source,
                                 s->decl.key_columns});
  }
  if (const auto* s = std::get_if<CreateEdgeStmt>(&stmt)) {
    GEMS_RETURN_IF_ERROR(analyze_create_edge(*s, catalog, params));
    std::optional<Schema> attr;
    if (s->decl.assoc_tables.size() == 1) {
      attr = *catalog.find_table(s->decl.assoc_tables[0]);
    }
    return catalog.add_edge(s->decl.name,
                            EdgeMeta{s->decl.source.vertex_type,
                                     s->decl.target.vertex_type,
                                     std::move(attr)});
  }
  if (const auto* s = std::get_if<IngestStmt>(&stmt)) {
    if (catalog.find_table(s->table) == nullptr) {
      if (catalog.find_vertex(s->table) != nullptr) {
        return type_error("'" + s->table +
                          "' is a vertex type; ingest targets tables");
      }
      return not_found("unknown table '" + s->table + "'");
    }
    return Status::ok();
  }
  if (const auto* s = std::get_if<OutputStmt>(&stmt)) {
    if (catalog.find_table(s->table) == nullptr) {
      if (catalog.find_vertex(s->table) != nullptr ||
          catalog.find_edge(s->table) != nullptr) {
        return type_error("'" + s->table +
                          "' is a graph type; output targets tables");
      }
      return not_found("unknown table '" + s->table + "'");
    }
    return Status::ok();
  }
  if (const auto* s = std::get_if<GraphQueryStmt>(&stmt)) {
    GraphQueryAnalyzer analyzer(catalog, params);
    GEMS_RETURN_IF_ERROR(analyzer.analyze(*s));
    if (s->into == IntoKind::kSubgraph) {
      catalog.add_subgraph(s->into_name, analyzer.subgraph_meta(*s));
    }
    if (s->into == IntoKind::kTable) {
      GEMS_ASSIGN_OR_RETURN(Schema schema, analyzer.output_schema(*s));
      catalog.put_table(s->into_name, std::move(schema));
    }
    return Status::ok();
  }
  if (const auto* s = std::get_if<TableQueryStmt>(&stmt)) {
    Schema out_schema;
    GEMS_RETURN_IF_ERROR(
        analyze_table_query(*s, catalog, params, &out_schema));
    if (s->into == IntoKind::kTable) {
      catalog.put_table(s->into_name, std::move(out_schema));
    }
    return Status::ok();
  }
  GEMS_UNREACHABLE("unhandled statement kind");
}

Status analyze_script(const Script& script, MetaCatalog& catalog,
                      const relational::ParamMap* params) {
  for (std::size_t i = 0; i < script.statements.size(); ++i) {
    Status s = analyze_statement(script.statements[i], catalog, params);
    if (!s.is_ok()) {
      return s.with_context("statement " + std::to_string(i + 1));
    }
  }
  return Status::ok();
}

}  // namespace gems::graql
