#include "graql/analyzer.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <unordered_map>

#include "common/check.hpp"

namespace gems::graql {

namespace {

using relational::BinaryOp;
using relational::Expr;
using relational::ExprPtr;
using relational::ParamMap;
using relational::UnaryOp;
using storage::DataType;
using storage::Schema;
using storage::TypeKind;
using storage::Value;

SourceSpan expr_span(const Expr& e) {
  return SourceSpan{e.src_line, e.src_column, e.src_end_line, e.src_end_column};
}

SourceSpan span_or(SourceSpan span, SourceSpan fallback) {
  return span.known() ? span : fallback;
}

// ---- Schema-level expression type inference --------------------------------
// Mirrors relational/bind.cpp but works without data and treats unbound
// %parameters% as wildcards (their types are checked at execution time).

using MaybeType = std::optional<DataType>;  // nullopt = statically unknown

using Resolver =
    std::function<Result<DataType>(std::string_view, std::string_view)>;

MaybeType value_type(const Value& v) {
  if (v.is_null()) return std::nullopt;
  switch (v.kind()) {
    case TypeKind::kBool:
      return DataType::boolean();
    case TypeKind::kInt64:
      return DataType::int64();
    case TypeKind::kDate:
      return DataType::date();
    case TypeKind::kDouble:
      return DataType::float64();
    case TypeKind::kVarchar:
      return DataType::varchar(255);
  }
  GEMS_UNREACHABLE("bad value kind");
}

bool is_comparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

// On failure `err_span` (when non-null) receives the span of the deepest
// node where the problem originated, so diagnostics point at the offending
// sub-expression, not the whole condition.
Result<MaybeType> infer_type(const ExprPtr& expr, const Resolver& resolve,
                             const ParamMap* params, SourceSpan* err_span) {
  GEMS_CHECK(expr != nullptr);
  auto fail_here = [&](Status s) -> Status {
    if (err_span != nullptr && !err_span->known()) *err_span = expr_span(*expr);
    return s;
  };
  switch (expr->kind) {
    case Expr::Kind::kLiteral:
      return value_type(expr->literal);
    case Expr::Kind::kParameter: {
      if (params != nullptr) {
        auto it = params->find(expr->param_name);
        if (it == params->end()) {
          return fail_here(invalid_argument("unbound query parameter %" +
                                            expr->param_name + "%"));
        }
        return value_type(it->second);
      }
      return MaybeType(std::nullopt);
    }
    case Expr::Kind::kColumnRef: {
      auto t = resolve(expr->qualifier, expr->column);
      if (!t.is_ok()) return fail_here(t.status());
      return MaybeType(t.value());
    }
    case Expr::Kind::kUnary: {
      GEMS_ASSIGN_OR_RETURN(MaybeType operand,
                            infer_type(expr->lhs, resolve, params, err_span));
      if (expr->uop == UnaryOp::kNot) {
        if (operand && operand->kind != TypeKind::kBool) {
          return fail_here(type_error("'not' requires a boolean, got " +
                                      operand->to_string()));
        }
        return MaybeType(DataType::boolean());
      }
      if (operand && !operand->is_numeric()) {
        return fail_here(type_error("unary '-' requires a numeric operand, "
                                    "got " + operand->to_string()));
      }
      return operand;
    }
    case Expr::Kind::kBinary: {
      GEMS_ASSIGN_OR_RETURN(MaybeType lt,
                            infer_type(expr->lhs, resolve, params, err_span));
      GEMS_ASSIGN_OR_RETURN(MaybeType rt,
                            infer_type(expr->rhs, resolve, params, err_span));
      if (expr->bop == BinaryOp::kAnd || expr->bop == BinaryOp::kOr) {
        if ((lt && lt->kind != TypeKind::kBool) ||
            (rt && rt->kind != TypeKind::kBool)) {
          return fail_here(
              type_error("'" + std::string(binary_op_name(expr->bop)) +
                         "' requires boolean operands"));
        }
        return MaybeType(DataType::boolean());
      }
      if (is_comparison(expr->bop)) {
        if (lt && rt && !lt->comparable_with(*rt)) {
          return fail_here(type_error(
              "cannot compare " + lt->to_string() + " with " +
              rt->to_string() + " in '" + expr->to_string() + "'"));
        }
        return MaybeType(DataType::boolean());
      }
      // Arithmetic.
      if ((lt && !lt->is_numeric()) || (rt && !rt->is_numeric())) {
        return fail_here(type_error(
            "operator '" + std::string(binary_op_name(expr->bop)) +
            "' requires numeric operands in '" + expr->to_string() + "'"));
      }
      if (!lt || !rt) return MaybeType(std::nullopt);
      return MaybeType((lt->kind == TypeKind::kDouble ||
                        rt->kind == TypeKind::kDouble ||
                        expr->bop == BinaryOp::kDiv)
                           ? DataType::float64()
                           : DataType::int64());
    }
  }
  GEMS_UNREACHABLE("bad expr kind");
}

// Diag code for an error bubbled out of expression inference: the only
// sources are resolver misses (kNotFound), type errors, and unbound
// parameters (kInvalidArgument).
DiagCode expr_error_code(StatusCode code) {
  switch (code) {
    case StatusCode::kNotFound:
      return DiagCode::kUnknownAttribute;
    case StatusCode::kInvalidArgument:
      return DiagCode::kBadParameter;
    default:
      return DiagCode::kTypeMismatch;
  }
}

/// Type-checks a condition, reporting into `diags` on failure. Returns
/// true when the condition is a well-typed boolean.
bool check_boolean(const ExprPtr& expr, const Resolver& resolve,
                   const ParamMap* params, DiagnosticEngine& diags,
                   SourceSpan fallback) {
  SourceSpan err_span;
  auto t = infer_type(expr, resolve, params, &err_span);
  if (!t.is_ok()) {
    diags.error(expr_error_code(t.status().code()), t.status().code(),
                span_or(err_span, fallback),
                std::string(t.status().message()));
    return false;
  }
  const MaybeType& mt = t.value();
  if (mt && mt->kind != TypeKind::kBool) {
    diags.error(DiagCode::kNotBoolean, StatusCode::kTypeError,
                span_or(expr_span(*expr), fallback),
                "condition '" + expr->to_string() + "' is not boolean (type " +
                    mt->to_string() + ")");
    return false;
  }
  return true;
}

// ---- Pass 2: constant folding ----------------------------------------------
// Partial evaluation over the metadata-only domain: literals and bound
// parameters fold, column references don't. NULL literals are treated as
// unknown (no three-valued logic here — the lint only fires on outcomes
// that hold for every row). and/or short-circuit over partial knowledge:
// `false and <anything>` folds even when the other side is dynamic.

std::optional<Value> fold_expr(const ExprPtr& expr, const ParamMap* params) {
  if (!expr) return std::nullopt;
  switch (expr->kind) {
    case Expr::Kind::kLiteral:
      if (expr->literal.is_null()) return std::nullopt;
      return expr->literal;
    case Expr::Kind::kParameter: {
      if (params == nullptr) return std::nullopt;
      auto it = params->find(expr->param_name);
      if (it == params->end() || it->second.is_null()) return std::nullopt;
      return it->second;
    }
    case Expr::Kind::kColumnRef:
      return std::nullopt;
    case Expr::Kind::kUnary: {
      auto v = fold_expr(expr->lhs, params);
      if (expr->uop == UnaryOp::kNot) {
        if (v && v->kind() == TypeKind::kBool) {
          return Value::boolean(!v->as_bool());
        }
        return std::nullopt;
      }
      if (!v) return std::nullopt;
      if (v->kind() == TypeKind::kInt64) return Value::int64(-v->as_int64());
      if (v->kind() == TypeKind::kDouble) {
        return Value::float64(-v->as_double());
      }
      return std::nullopt;
    }
    case Expr::Kind::kBinary: {
      auto l = fold_expr(expr->lhs, params);
      auto r = fold_expr(expr->rhs, params);
      const BinaryOp op = expr->bop;
      if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
        auto as_bool = [](const std::optional<Value>& v) -> std::optional<bool> {
          if (v && v->kind() == TypeKind::kBool) return v->as_bool();
          return std::nullopt;
        };
        const auto lb = as_bool(l);
        const auto rb = as_bool(r);
        if (op == BinaryOp::kAnd) {
          if ((lb && !*lb) || (rb && !*rb)) return Value::boolean(false);
          if (lb && rb) return Value::boolean(true);
          return std::nullopt;
        }
        if ((lb && *lb) || (rb && *rb)) return Value::boolean(true);
        if (lb && rb) return Value::boolean(false);
        return std::nullopt;
      }
      if (!l || !r) return std::nullopt;
      auto numeric = [](const Value& v) {
        return v.kind() == TypeKind::kInt64 || v.kind() == TypeKind::kDouble;
      };
      if (is_comparison(op)) {
        int cmp = 0;
        if (numeric(*l) && numeric(*r)) {
          const double a = l->as_numeric();
          const double b = r->as_numeric();
          cmp = a < b ? -1 : (a > b ? 1 : 0);
        } else if (l->kind() == r->kind()) {
          cmp = l->compare(*r);
        } else {
          return std::nullopt;
        }
        switch (op) {
          case BinaryOp::kEq:
            return Value::boolean(cmp == 0);
          case BinaryOp::kNe:
            return Value::boolean(cmp != 0);
          case BinaryOp::kLt:
            return Value::boolean(cmp < 0);
          case BinaryOp::kLe:
            return Value::boolean(cmp <= 0);
          case BinaryOp::kGt:
            return Value::boolean(cmp > 0);
          default:
            return Value::boolean(cmp >= 0);
        }
      }
      if (!numeric(*l) || !numeric(*r)) return std::nullopt;
      if (op == BinaryOp::kDiv) {
        const double d = r->as_numeric();
        if (d == 0.0) return std::nullopt;
        return Value::float64(l->as_numeric() / d);
      }
      if (l->kind() == TypeKind::kInt64 && r->kind() == TypeKind::kInt64) {
        // Unsigned arithmetic sidesteps signed-overflow UB; wrap-around
        // results just mean the lint stays silent on absurd constants.
        const auto a = static_cast<std::uint64_t>(l->as_int64());
        const auto b = static_cast<std::uint64_t>(r->as_int64());
        std::uint64_t out = 0;
        switch (op) {
          case BinaryOp::kAdd:
            out = a + b;
            break;
          case BinaryOp::kSub:
            out = a - b;
            break;
          default:
            out = a * b;
            break;
        }
        return Value::int64(static_cast<std::int64_t>(out));
      }
      const double a = l->as_numeric();
      const double b = r->as_numeric();
      switch (op) {
        case BinaryOp::kAdd:
          return Value::float64(a + b);
        case BinaryOp::kSub:
          return Value::float64(a - b);
        default:
          return Value::float64(a * b);
      }
    }
  }
  GEMS_UNREACHABLE("bad expr kind");
}

/// Pass 2 reporting: warns when a (type-correct) condition folds to a
/// constant. `empty_consequence` states what an always-false condition
/// means for this context ("this step never matches", ...).
void fold_and_warn(const ExprPtr& cond, const ParamMap* params,
                   DiagnosticEngine& diags, SourceSpan fallback,
                   std::string_view empty_consequence) {
  auto v = fold_expr(cond, params);
  if (!v || v->kind() != TypeKind::kBool) return;
  const SourceSpan span = span_or(expr_span(*cond), fallback);
  if (v->as_bool()) {
    diags.warning(DiagCode::kAlwaysTrue, span,
                  "condition '" + cond->to_string() + "' is always true")
        .fixit = "remove the condition; it filters nothing";
  } else {
    diags.warning(DiagCode::kAlwaysFalse, span,
                  "condition '" + cond->to_string() + "' is always false; " +
                      std::string(empty_consequence))
        .fixit = "fix or remove the contradictory condition";
  }
}

// ---- Graph query analysis ------------------------------------------------

/// What the analyzer knows about one step, label or not.
struct StepInfo {
  bool is_edge = false;
  bool variant = false;
  std::string type_name;            // empty when variant
  const Schema* attr_schema = nullptr;  // null for variant / attr-less edges
};

SourceSpan element_span(const PathElement& el) {
  return std::visit([](const auto& s) { return s.span; }, el);
}

std::string format_avg(double avg) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", avg);
  return buf;
}

class GraphQueryAnalyzer {
 public:
  GraphQueryAnalyzer(const MetaCatalog& catalog, const AnalyzeOptions& opts,
                     DiagnosticEngine& diags)
      : catalog_(catalog), opts_(opts), params_(opts.params), diags_(diags) {}

  void analyze(const GraphQueryStmt& stmt) {
    stmt_span_ = stmt.span;
    if (stmt.or_groups.empty() || stmt.or_groups[0].empty()) {
      diags_.error(DiagCode::kBadStructure, StatusCode::kInvalidArgument,
                   stmt.span, "graph query has no path pattern");
      return;
    }
    for (const auto& and_group : stmt.or_groups) {
      for (const auto& path : and_group) {
        analyze_path(path);
      }
    }
    check_targets(stmt);
    warn_unused_labels();  // pass 3
  }

  /// Steps usable as subgraph-seed names (vertex type names that appear).
  SubgraphMeta subgraph_meta(const GraphQueryStmt& stmt) const {
    SubgraphMeta meta;
    if (std::any_of(stmt.targets.begin(), stmt.targets.end(),
                    [](const SelectTarget& t) { return t.star; })) {
      for (const auto& [name, info] : steps_) {
        if (!info.is_edge && !info.variant) meta.vertex_steps.insert(name);
      }
      return meta;
    }
    for (const auto& t : stmt.targets) {
      auto it = steps_.find(t.qualifier);
      if (it != steps_.end() && !it->second.is_edge && !it->second.variant) {
        meta.vertex_steps.insert(it->second.type_name);
      }
    }
    return meta;
  }

  /// Inferred schema of an `into table` result (paper Fig. 13: "each row
  /// has all the attributes of all entities involved in the query path").
  /// Must agree with the executor's materialization — both use OutputNamer.
  Result<Schema> output_schema(const GraphQueryStmt& stmt) const {
    OutputNamer namer;
    std::vector<storage::ColumnDef> cols;
    auto add_step_columns = [&](const std::string& display,
                                const StepInfo& info) -> Status {
      if (info.variant) {
        return type_error(
            "variant '[ ]' steps cannot be selected into a table "
            "(attributes are not common across types); use 'into "
            "subgraph'");
      }
      if (info.attr_schema == nullptr) return Status::ok();
      for (const auto& c : info.attr_schema->columns()) {
        cols.push_back({namer.assign(display + "_" + c.name, ""), c.type});
      }
      return Status::ok();
    };
    for (const auto& t : stmt.targets) {
      if (t.star) {
        for (const auto& [display, info] : ordered_steps_) {
          GEMS_RETURN_IF_ERROR(add_step_columns(display, info));
        }
        continue;
      }
      const StepInfo& info = steps_.at(t.qualifier);
      if (t.column.empty()) {
        GEMS_RETURN_IF_ERROR(add_step_columns(
            t.alias.empty() ? t.qualifier : t.alias, info));
        continue;
      }
      const auto idx = info.attr_schema->find(t.column);
      GEMS_CHECK(idx.has_value());  // verified by check_targets
      cols.push_back(
          {namer.assign(t.alias.empty() ? t.column : t.alias, t.qualifier),
           info.attr_schema->column(*idx).type});
    }
    return Schema::create(std::move(cols));
  }

 private:
  void analyze_path(const PathPattern& path) {
    if (path.elements.empty()) {
      diags_.error(DiagCode::kBadStructure, StatusCode::kInvalidArgument,
                   stmt_span_, "empty path pattern");
      return;
    }
    if (!std::holds_alternative<VertexStep>(path.elements.front())) {
      diags_.error(DiagCode::kBadStructure, StatusCode::kInvalidArgument,
                   element_span(path.elements.front()),
                   "a path query must start with a vertex step");
      return;
    }
    // The previous *vertex* step's info, for edge adjacency checks.
    StepInfo prev_vertex;
    bool have_prev = false;
    // Pass 1 pin state: when the last vertex step was a variant `[ ]`
    // reached over a known edge, that edge pins the variant's type; a
    // known outgoing edge demanding a different type makes the
    // intersection empty (GQL0042).
    const VertexStep* variant_step = nullptr;
    std::string variant_pin;
    std::string variant_pin_edge;

    for (std::size_t i = 0; i < path.elements.size(); ++i) {
      const PathElement& el = path.elements[i];
      if (const auto* v = std::get_if<VertexStep>(&el)) {
        if (have_prev && i > 0 &&
            std::holds_alternative<VertexStep>(path.elements[i - 1])) {
          diags_.error(DiagCode::kBadStructure, StatusCode::kInvalidArgument,
                       v->span,
                       "two consecutive vertex steps; an edge step must "
                       "connect them");
        }
        StepInfo info = analyze_vertex_step(*v);
        variant_step = nullptr;
        variant_pin.clear();
        variant_pin_edge.clear();
        // Adjacency check against a preceding edge step.
        if (i > 0) {
          if (const auto* e = std::get_if<EdgeStep>(&path.elements[i - 1])) {
            check_edge_adjacency(*e, prev_vertex, info);
            if (v->variant) {
              variant_step = v;
              if (!e->variant) {
                if (const EdgeMeta* meta = catalog_.find_edge(e->type_name)) {
                  variant_pin =
                      e->reversed ? meta->source_vertex : meta->target_vertex;
                  variant_pin_edge = e->type_name;
                }
              }
            }
          }
        } else if (v->variant) {
          variant_step = v;
        }
        prev_vertex = info;
        have_prev = true;
        continue;
      }
      if (const auto* e = std::get_if<EdgeStep>(&el)) {
        analyze_edge_step(*e, /*in_group=*/false);
        // Pass 1: a known edge leaving a pinned variant vertex must agree
        // with the type the incoming edge pinned.
        if (variant_step != nullptr && !variant_pin.empty() && !e->variant) {
          if (const EdgeMeta* meta = catalog_.find_edge(e->type_name)) {
            const std::string& need =
                e->reversed ? meta->target_vertex : meta->source_vertex;
            if (!need.empty() && need != variant_pin) {
              diags_
                  .error(DiagCode::kEmptyIntersection,
                         StatusCode::kInvalidArgument, variant_step->span,
                         "statically empty query: the '[ ]' step must be a "
                         "'" + variant_pin + "' (edge '" + variant_pin_edge +
                             "') and a '" + need + "' (edge '" +
                             e->type_name + "') at the same time")
                  .fixit = "replace '[ ]' with a concrete vertex type or "
                           "fix an edge direction";
            }
          }
        }
        if (i + 1 >= path.elements.size()) {
          diags_.error(DiagCode::kBadStructure, StatusCode::kInvalidArgument,
                       e->span, "a path query must end with a vertex step");
        }
        continue;
      }
      const auto& group = std::get<PathGroup>(el);
      prev_vertex = analyze_group(group, prev_vertex);
      have_prev = true;
      variant_step = nullptr;
      variant_pin.clear();
      variant_pin_edge.clear();
    }
  }

  StepInfo analyze_vertex_step(const VertexStep& v) {
    StepInfo info;
    info.is_edge = false;

    if (v.variant) {
      info.variant = true;
    } else if (const auto* labeled = find_label(v.type_name);
               labeled != nullptr && v.seed_result.empty()) {
      // Bare label reference (Eq. 6/8): adopts the labeled step's type.
      if (labeled->is_edge) {
        diags_.error(DiagCode::kWrongEntityKind, StatusCode::kTypeError,
                     v.span,
                     "label '" + v.type_name +
                         "' names an edge step but is used as a vertex "
                         "step");
        return info;
      }
      info = *labeled;
      note_label_use(v.type_name);
    } else {
      if (!v.seed_result.empty()) {
        const SubgraphMeta* sub = catalog_.find_subgraph(v.seed_result);
        if (sub == nullptr) {
          diags_.error(DiagCode::kUnknownName, StatusCode::kNotFound, v.span,
                       "unknown result subgraph '" + v.seed_result +
                           "' (Fig. 12 seeding requires a prior 'into "
                           "subgraph')");
          return info;
        }
        if (!sub->vertex_steps.contains(v.type_name)) {
          diags_.error(DiagCode::kUnknownName, StatusCode::kNotFound, v.span,
                       "subgraph '" + v.seed_result +
                           "' has no vertex step '" + v.type_name + "'");
          return info;
        }
      }
      const VertexMeta* meta = catalog_.find_vertex(v.type_name);
      if (meta == nullptr) {
        if (catalog_.find_table(v.type_name) != nullptr) {
          diags_.error(DiagCode::kWrongEntityKind, StatusCode::kTypeError,
                       v.span,
                       "'" + v.type_name +
                           "' is a table, but a vertex type is required "
                           "in a path step");
        } else if (catalog_.find_edge(v.type_name) != nullptr) {
          diags_.error(DiagCode::kWrongEntityKind, StatusCode::kTypeError,
                       v.span,
                       "'" + v.type_name +
                           "' is an edge type, but a vertex type is "
                           "required here");
        } else {
          diags_.error(DiagCode::kUnknownName, StatusCode::kNotFound, v.span,
                       "unknown vertex type '" + v.type_name + "'");
        }
        return info;
      }
      info.type_name = v.type_name;
      info.attr_schema = &meta->attr_schema;
    }

    if (v.condition) {
      check_step_condition(v.condition, info, v.type_name, v.label, v.span);
    }
    define_label(v.label_kind, v.label, v.span, info);
    if (!info.variant && !info.type_name.empty()) {
      steps_.emplace(info.type_name, info);
    }
    if (!v.label.empty()) steps_[v.label] = info;
    // Record first-mention order for `select *` (skip bare label refs —
    // they re-visit an already recorded step).
    const bool is_label_ref =
        !v.variant && find_label(v.type_name) != nullptr &&
        v.seed_result.empty() && v.label.empty();
    if (!is_label_ref) {
      ordered_steps_.emplace_back(
          !v.label.empty() ? v.label : v.type_name, info);
    }
    return info;
  }

  void analyze_edge_step(const EdgeStep& e, bool in_group) {
    StepInfo info;
    info.is_edge = true;
    if (e.variant) {
      info.variant = true;
    } else {
      const EdgeMeta* meta = catalog_.find_edge(e.type_name);
      if (meta == nullptr) {
        if (catalog_.find_vertex(e.type_name) != nullptr) {
          diags_.error(DiagCode::kWrongEntityKind, StatusCode::kTypeError,
                       e.span,
                       "'" + e.type_name +
                           "' is a vertex type, but an edge type is "
                           "required between '--' arrows");
        } else {
          diags_.error(DiagCode::kUnknownName, StatusCode::kNotFound, e.span,
                       "unknown edge type '" + e.type_name + "'");
        }
        return;
      }
      info.type_name = e.type_name;
      info.attr_schema =
          meta->attr_schema ? &*meta->attr_schema : nullptr;
    }
    if (e.condition) {
      if (info.attr_schema == nullptr && !info.variant) {
        diags_.error(DiagCode::kTypeMismatch, StatusCode::kTypeError, e.span,
                     "edge type '" + e.type_name +
                         "' has no attributes to filter on");
        return;
      }
      check_step_condition(e.condition, info, e.type_name, e.label, e.span);
    }
    if (e.label_kind != LabelKind::kNone && in_group) {
      diags_.error(DiagCode::kBadStructure, StatusCode::kInvalidArgument,
                   e.span,
                   "labels are not allowed inside path regular expressions "
                   "(paper Sec. II-B4)");
      return;
    }
    define_label(e.label_kind, e.label, e.span, info);
    if (!e.label.empty()) steps_[e.label] = info;
    if (!info.variant && !info.type_name.empty()) {
      steps_.emplace(info.type_name, info);
    }
    ordered_steps_.emplace_back(!e.label.empty() ? e.label : e.type_name,
                                info);
  }

  StepInfo analyze_group(const PathGroup& group, const StepInfo& entry) {
    StepInfo last_vertex = entry;
    const EdgeStep* first_edge = nullptr;
    for (std::size_t i = 0; i < group.body.size(); ++i) {
      const PathElement& el = group.body[i];
      if (const auto* e = std::get_if<EdgeStep>(&el)) {
        if (e->label_kind != LabelKind::kNone) {
          diags_.error(DiagCode::kBadStructure, StatusCode::kInvalidArgument,
                       e->span,
                       "labels are not allowed inside path regular "
                       "expressions");
          continue;
        }
        analyze_edge_step(*e, /*in_group=*/true);
        if (i == 0) first_edge = e;
        continue;
      }
      if (const auto* v = std::get_if<VertexStep>(&el)) {
        if (v->label_kind != LabelKind::kNone) {
          diags_.error(DiagCode::kBadStructure, StatusCode::kInvalidArgument,
                       v->span,
                       "labels are not allowed inside path regular "
                       "expressions");
          continue;
        }
        StepInfo info = analyze_vertex_step(*v);
        // Adjacency within the group.
        if (i > 0) {
          if (const auto* e = std::get_if<EdgeStep>(&group.body[i - 1])) {
            check_edge_adjacency(*e, last_vertex, info);
          }
        }
        last_vertex = info;
        continue;
      }
      diags_.error(DiagCode::kBadStructure, StatusCode::kInvalidArgument,
                   element_span(el), "nested path groups are not supported");
    }
    check_closure(group, first_edge, last_vertex);
    return last_vertex;
  }

  /// Passes 1 and 4 over a regex group: can the body chain onto itself at
  /// all (GQL0043), and is an unbounded closure affordable (GQL0070)?
  void check_closure(const PathGroup& group, const EdgeStep* first_edge,
                     const StepInfo& last_vertex) {
    const bool repeats =
        group.quant == PathGroup::Quant::kStar ||
        group.quant == PathGroup::Quant::kPlus ||
        (group.quant == PathGroup::Quant::kExact && group.count > 1);
    if (!repeats || first_edge == nullptr) return;
    // GQL0043: on every iteration after the first, the body's first edge
    // leaves the vertex its last step arrived at; contradictory types
    // mean the closure degenerates to at most one traversal.
    if (!first_edge->variant && !last_vertex.variant &&
        !last_vertex.type_name.empty()) {
      if (const EdgeMeta* meta = catalog_.find_edge(first_edge->type_name)) {
        const std::string& need = first_edge->reversed
                                      ? meta->target_vertex
                                      : meta->source_vertex;
        if (need != last_vertex.type_name) {
          diags_
              .warning(DiagCode::kClosureCannotRepeat, group.span,
                       "closure body cannot repeat: edge '" +
                           first_edge->type_name + "' leaves '" + need +
                           "' but the body ends at '" +
                           last_vertex.type_name + "'")
              .fixit = "use '{1}' or make the body end where its first "
                       "edge starts";
        }
      }
    }
    // Pass 4 (GQL0070): unbounded closures over dense edge types. The
    // planner's degree statistics arrive through AnalyzeOptions; without
    // them (no data loaded, or a bare front-end) the pass is silent.
    if (group.quant == PathGroup::Quant::kExact || !opts_.edge_stats) return;
    for (const auto& el : group.body) {
      const auto* e = std::get_if<EdgeStep>(&el);
      if (e == nullptr) continue;
      std::vector<std::string> names;
      if (e->variant) {
        names = catalog_.edge_names();
      } else {
        names.push_back(e->type_name);
      }
      for (const auto& name : names) {
        auto stats = opts_.edge_stats(name);
        if (!stats) continue;
        const double avg = e->reversed ? stats->avg_in : stats->avg_out;
        const std::uint32_t mx = e->reversed ? stats->max_in : stats->max_out;
        if (avg <= opts_.closure_avg_degree_warn &&
            mx <= opts_.closure_max_degree_warn) {
          continue;
        }
        diags_
            .warning(DiagCode::kCostlyClosure, span_or(e->span, group.span),
                     "unbounded closure over dense edge type '" + name +
                         "' (avg " + format_avg(avg) + ", max " +
                         std::to_string(mx) +
                         (e->reversed ? " in-edges" : " out-edges") +
                         " per vertex): the match frontier can grow "
                         "exponentially with path length")
            .fixit = "bound the repetition with '{n}' or tighten the step "
                     "conditions";
        break;  // one warning per edge step
      }
    }
  }

  /// Non-variant edge between two (possibly variant/unknown) vertex steps:
  /// endpoints must match declared source/target given the direction.
  void check_edge_adjacency(const EdgeStep& e, const StepInfo& left,
                            const StepInfo& right) {
    const std::string& lt = left.type_name;
    const std::string& rt = right.type_name;
    if (!e.variant) {
      const EdgeMeta* meta = catalog_.find_edge(e.type_name);
      if (meta == nullptr) return;  // reported elsewhere
      const std::string& want_src = e.reversed ? rt : lt;
      const std::string& want_dst = e.reversed ? lt : rt;
      if (!want_src.empty() && meta->source_vertex != want_src) {
        diags_.error(DiagCode::kEndpointMismatch, StatusCode::kTypeError,
                     e.span,
                     "edge '" + e.type_name + "' starts at '" +
                         meta->source_vertex + "', not '" + want_src +
                         "' (check the arrow direction)");
        return;
      }
      if (!want_dst.empty() && meta->target_vertex != want_dst) {
        diags_.error(DiagCode::kEndpointMismatch, StatusCode::kTypeError,
                     e.span,
                     "edge '" + e.type_name + "' ends at '" +
                         meta->target_vertex + "', not '" + want_dst + "'");
      }
      return;
    }
    // Variant edge between two known vertex types: at least one edge type
    // must connect them, else the query is statically empty (Sec. III-A
    // "will the query result be empty?").
    if (!lt.empty() && !rt.empty()) {
      const std::string& src = e.reversed ? rt : lt;
      const std::string& dst = e.reversed ? lt : rt;
      if (catalog_.edges_between(src, dst).empty()) {
        diags_.error(DiagCode::kNoEdgeBetween, StatusCode::kInvalidArgument,
                     e.span,
                     "statically empty query: no edge type connects '" + src +
                         "' to '" + dst + "'");
      }
    }
  }

  void check_step_condition(const ExprPtr& cond, const StepInfo& self,
                            const std::string& self_name,
                            const std::string& self_label,
                            SourceSpan step_span) {
    Resolver resolve = [&](std::string_view qual,
                           std::string_view col) -> Result<DataType> {
      const StepInfo* target = nullptr;
      if (qual.empty() || qual == self_name ||
          (!self_label.empty() && qual == self_label)) {
        target = &self;
      } else if (const StepInfo* labeled = find_label(qual)) {
        target = labeled;
        note_label_use(qual);
      } else if (auto it = steps_.find(std::string(qual));
                 it != steps_.end()) {
        target = &it->second;
      } else {
        return not_found("unknown qualifier '" + std::string(qual) +
                         "' in step condition (conditions may reference "
                         "the current step and labeled previous steps)");
      }
      if (target->attr_schema == nullptr) {
        return type_error("step '" + std::string(qual.empty() ? col : qual) +
                          "' has no attributes");
      }
      auto idx = target->attr_schema->find(col);
      if (!idx) {
        return not_found("step '" +
                         (qual.empty() ? self_name : std::string(qual)) +
                         "' has no attribute '" + std::string(col) + "'");
      }
      return target->attr_schema->column(*idx).type;
    };
    if (!check_boolean(cond, resolve, params_, diags_, step_span)) return;
    fold_and_warn(cond, params_, diags_, step_span,
                  "this step can never match");
  }

  void define_label(LabelKind kind, const std::string& label,
                    SourceSpan span, const StepInfo& info) {
    if (kind == LabelKind::kNone) return;
    if (labels_.contains(label)) {
      diags_.error(DiagCode::kDuplicateLabel, StatusCode::kAlreadyExists,
                   span,
                   "label '" + label + "' defined twice in one query");
      return;
    }
    if (catalog_.find_vertex(label) != nullptr ||
        catalog_.find_edge(label) != nullptr) {
      diags_.error(DiagCode::kLabelShadowsType, StatusCode::kAlreadyExists,
                   span,
                   "label '" + label + "' shadows a declared graph type");
      return;
    }
    labels_.emplace(label, info);
    label_sites_.push_back({label, span, kind});
  }

  const StepInfo* find_label(std::string_view name) const {
    auto it = labels_.find(std::string(name));
    return it == labels_.end() ? nullptr : &it->second;
  }

  void note_label_use(std::string_view name) {
    used_labels_.insert(std::string(name));
  }

  void check_targets(const GraphQueryStmt& stmt) {
    if (stmt.targets.empty()) {
      diags_.error(DiagCode::kBadStructure, StatusCode::kInvalidArgument,
                   stmt.span, "graph query selects nothing");
      return;
    }
    for (const auto& t : stmt.targets) {
      if (t.star) continue;
      auto it = steps_.find(t.qualifier);
      if (it == steps_.end()) {
        diags_.error(DiagCode::kUnknownName, StatusCode::kNotFound,
                     span_or(t.span, stmt.span),
                     "select target '" + t.qualifier +
                         "' does not name a step or label of this query");
        continue;
      }
      if (labels_.contains(t.qualifier)) note_label_use(t.qualifier);
      if (!t.column.empty()) {
        if (it->second.attr_schema == nullptr) {
          diags_.error(DiagCode::kTypeMismatch, StatusCode::kTypeError,
                       span_or(t.span, stmt.span),
                       "step '" + t.qualifier + "' has no attributes");
          continue;
        }
        if (!it->second.attr_schema->find(t.column)) {
          diags_.error(DiagCode::kUnknownAttribute, StatusCode::kNotFound,
                       span_or(t.span, stmt.span),
                       "step '" + t.qualifier + "' has no attribute '" +
                           t.column + "'");
        }
      }
    }
  }

  /// Pass 3: a `def`/`foreach` label nothing ever references is either
  /// dead weight or a typo for a reference elsewhere in the query.
  void warn_unused_labels() {
    for (const auto& site : label_sites_) {
      if (used_labels_.contains(site.label)) continue;
      const char* kw = site.kind == LabelKind::kForeach ? "foreach" : "def";
      diags_
          .warning(DiagCode::kUnusedLabel, site.span,
                   "label '" + site.label + "' is defined but never "
                   "referenced")
          .fixit = std::string("drop '") + kw + " " + site.label +
                   ":' or reference the label in a condition, step or "
                   "select target";
    }
  }

  struct LabelSite {
    std::string label;
    SourceSpan span;
    LabelKind kind;
  };

  const MetaCatalog& catalog_;
  const AnalyzeOptions& opts_;
  const ParamMap* params_;
  DiagnosticEngine& diags_;
  SourceSpan stmt_span_;
  // All addressable steps of this statement: type names and labels.
  std::unordered_map<std::string, StepInfo> steps_;
  std::unordered_map<std::string, StepInfo> labels_;
  // Steps in first-mention order, for `select *` output schemas.
  std::vector<std::pair<std::string, StepInfo>> ordered_steps_;
  // Pass 3 bookkeeping.
  std::vector<LabelSite> label_sites_;
  std::set<std::string, std::less<>> used_labels_;
};

// ---- Table query analysis --------------------------------------------------

/// Reports every problem in a table query; returns the output schema when
/// the query is clean enough to have one.
std::optional<Schema> analyze_table_query(const TableQueryStmt& stmt,
                                          const MetaCatalog& catalog,
                                          const AnalyzeOptions& opts,
                                          DiagnosticEngine& diags) {
  const ParamMap* params = opts.params;
  const std::size_t errs_before = diags.error_count();
  const Schema* schema = catalog.find_table(stmt.from_table);
  if (schema == nullptr) {
    // Paper Sec. III-A: "a table name should be used when a table is
    // required, rather than a vertex type name".
    if (catalog.find_vertex(stmt.from_table) != nullptr) {
      diags.error(DiagCode::kWrongEntityKind, StatusCode::kTypeError,
                  stmt.span,
                  "'" + stmt.from_table +
                      "' is a vertex type; 'from table' requires a table");
    } else if (catalog.find_edge(stmt.from_table) != nullptr) {
      diags.error(DiagCode::kWrongEntityKind, StatusCode::kTypeError,
                  stmt.span,
                  "'" + stmt.from_table +
                      "' is an edge type; 'from table' requires a table");
    } else {
      diags.error(DiagCode::kUnknownName, StatusCode::kNotFound, stmt.span,
                  "unknown table '" + stmt.from_table + "'");
    }
    return std::nullopt;
  }

  Resolver resolve = [&](std::string_view qual,
                         std::string_view col) -> Result<DataType> {
    if (!qual.empty() && qual != stmt.from_table) {
      return not_found("unknown qualifier '" + std::string(qual) + "'");
    }
    auto idx = schema->find(col);
    if (!idx) {
      return not_found("table '" + stmt.from_table + "' has no column '" +
                       std::string(col) + "'");
    }
    return schema->column(*idx).type;
  };

  if (stmt.where) {
    if (check_boolean(stmt.where, resolve, params, diags, stmt.span)) {
      fold_and_warn(stmt.where, params, diags, stmt.span,
                    "the query returns no rows");
    }
  }
  for (const auto& col : stmt.group_by) {
    if (!schema->find(col)) {
      diags.error(DiagCode::kUnknownAttribute, StatusCode::kNotFound,
                  stmt.span,
                  "group by column '" + col + "' is not in table '" +
                      stmt.from_table + "'");
    }
  }

  const bool has_agg =
      std::any_of(stmt.items.begin(), stmt.items.end(),
                  [](const SelectItem& i) { return i.agg != AggFunc::kNone; });
  const bool grouped = has_agg || !stmt.group_by.empty();

  std::vector<storage::ColumnDef> out_cols;
  std::size_t anon = 0;
  for (const auto& item : stmt.items) {
    const SourceSpan ispan = span_or(item.span, stmt.span);
    if (item.star) {
      if (grouped) {
        diags.error(DiagCode::kBadAggregate, StatusCode::kTypeError, ispan,
                    "'*' cannot be combined with aggregates or group by");
        continue;
      }
      for (const auto& c : schema->columns()) out_cols.push_back(c);
      continue;
    }
    MaybeType type;
    std::string default_name;
    if (item.agg == AggFunc::kCountStar) {
      type = DataType::int64();
      default_name = "count";
    } else if (item.agg != AggFunc::kNone) {
      SourceSpan err_span;
      auto input_r = infer_type(item.expr, resolve, params, &err_span);
      if (!input_r.is_ok()) {
        diags.error(expr_error_code(input_r.status().code()),
                    input_r.status().code(), span_or(err_span, ispan),
                    std::string(input_r.status().message()));
        continue;
      }
      const MaybeType input = input_r.value();
      if ((item.agg == AggFunc::kSum || item.agg == AggFunc::kAvg) && input &&
          !input->is_numeric()) {
        diags.error(DiagCode::kBadAggregate, StatusCode::kTypeError, ispan,
                    "sum/avg require a numeric column");
        continue;
      }
      switch (item.agg) {
        case AggFunc::kCount:
          type = DataType::int64();
          default_name = "count";
          break;
        case AggFunc::kSum:
          type = input;
          default_name = "sum";
          break;
        case AggFunc::kAvg:
          type = DataType::float64();
          default_name = "avg";
          break;
        case AggFunc::kMin:
          type = input;
          default_name = "min";
          break;
        case AggFunc::kMax:
          type = input;
          default_name = "max";
          break;
        default:
          GEMS_UNREACHABLE("handled");
      }
    } else {
      SourceSpan err_span;
      auto type_r = infer_type(item.expr, resolve, params, &err_span);
      if (!type_r.is_ok()) {
        diags.error(expr_error_code(type_r.status().code()),
                    type_r.status().code(), span_or(err_span, ispan),
                    std::string(type_r.status().message()));
        continue;
      }
      type = type_r.value();
      if (grouped) {
        // SQL rule: non-aggregate outputs must be grouping columns.
        const bool is_group_col =
            item.expr->kind == Expr::Kind::kColumnRef &&
            std::find(stmt.group_by.begin(), stmt.group_by.end(),
                      item.expr->column) != stmt.group_by.end();
        if (!is_group_col) {
          diags.error(DiagCode::kBadAggregate, StatusCode::kTypeError, ispan,
                      "select item '" + item.expr->to_string() +
                          "' must be aggregated or listed in group by");
          continue;
        }
      }
      default_name = item.expr->kind == Expr::Kind::kColumnRef
                         ? item.expr->column
                         : "expr" + std::to_string(anon++);
    }
    std::string name = item.alias.empty() ? default_name : item.alias;
    // Ensure uniqueness in the output schema.
    std::string unique = name;
    int suffix = 1;
    auto taken = [&](const std::string& n) {
      return std::any_of(out_cols.begin(), out_cols.end(),
                         [&](const auto& c) { return c.name == n; });
    };
    while (taken(unique)) unique = name + "_" + std::to_string(++suffix);
    out_cols.push_back({unique, type.value_or(DataType::int64())});
  }

  for (const auto& ord : stmt.order_by) {
    const SourceSpan ospan = span_or(ord.span, stmt.span);
    const bool in_output =
        std::any_of(out_cols.begin(), out_cols.end(),
                    [&](const auto& c) { return c.name == ord.column; });
    if (!in_output && !schema->find(ord.column)) {
      diags.error(DiagCode::kUnknownAttribute, StatusCode::kNotFound, ospan,
                  "order by column '" + ord.column +
                      "' is neither an output column nor a column of '" +
                      stmt.from_table + "'");
      continue;
    }
    if (grouped && !in_output) {
      diags.error(DiagCode::kBadAggregate, StatusCode::kTypeError, ospan,
                  "order by column '" + ord.column +
                      "' must be an output column of the grouped query");
    }
  }

  if (diags.error_count() > errs_before) return std::nullopt;
  auto out = Schema::create(std::move(out_cols));
  if (!out.is_ok()) {
    diags.error(DiagCode::kBadStructure, out.status().code(), stmt.span,
                std::string(out.status().message()));
    return std::nullopt;
  }
  return std::move(out).value();
}

// ---- DDL analysis -----------------------------------------------------------

void analyze_create_vertex(const CreateVertexStmt& stmt,
                           const MetaCatalog& catalog,
                           const AnalyzeOptions& opts,
                           DiagnosticEngine& diags) {
  const graph::VertexDecl& d = stmt.decl;
  const Schema* schema = catalog.find_table(d.table);
  if (schema == nullptr) {
    if (catalog.find_vertex(d.table) != nullptr) {
      diags.error(DiagCode::kWrongEntityKind, StatusCode::kTypeError,
                  stmt.span,
                  "'" + d.table +
                      "' is a vertex type; vertices are created from "
                      "tables");
    } else {
      diags.error(DiagCode::kUnknownName, StatusCode::kNotFound, stmt.span,
                  "unknown table '" + d.table + "'");
    }
    return;
  }
  if (catalog.name_in_use(d.name)) {
    diags.error(DiagCode::kNameInUse, StatusCode::kAlreadyExists, stmt.span,
                "name '" + d.name + "' is already in use");
  }
  if (d.key_columns.empty()) {
    diags.error(DiagCode::kBadStructure, StatusCode::kInvalidArgument,
                stmt.span, "vertex '" + d.name + "' needs a key column");
  }
  for (const auto& key : d.key_columns) {
    if (!schema->find(key)) {
      diags.error(DiagCode::kUnknownAttribute, StatusCode::kNotFound,
                  stmt.span,
                  "table '" + d.table + "' has no column '" + key +
                      "' (vertex '" + d.name + "' key)");
    }
  }
  if (d.where) {
    Resolver resolve = [&](std::string_view qual,
                           std::string_view col) -> Result<DataType> {
      if (!qual.empty() && qual != d.name && qual != d.table) {
        return not_found("unknown qualifier '" + std::string(qual) + "'");
      }
      auto idx = schema->find(col);
      if (!idx) {
        return not_found("table '" + d.table + "' has no column '" +
                         std::string(col) + "'");
      }
      return schema->column(*idx).type;
    };
    if (check_boolean(d.where, resolve, opts.params, diags, stmt.span)) {
      fold_and_warn(d.where, opts.params, diags, stmt.span,
                    "the vertex set is empty");
    }
  }
}

void analyze_create_edge(const CreateEdgeStmt& stmt,
                         const MetaCatalog& catalog,
                         const AnalyzeOptions& opts,
                         DiagnosticEngine& diags) {
  const graph::EdgeDecl& d = stmt.decl;
  if (catalog.name_in_use(d.name)) {
    diags.error(DiagCode::kNameInUse, StatusCode::kAlreadyExists, stmt.span,
                "name '" + d.name + "' is already in use");
  }
  const VertexMeta* src = catalog.find_vertex(d.source.vertex_type);
  const VertexMeta* dst = catalog.find_vertex(d.target.vertex_type);
  if (src == nullptr) {
    diags.error(DiagCode::kUnknownName, StatusCode::kNotFound, stmt.span,
                "unknown vertex type '" + d.source.vertex_type + "'");
  }
  if (dst == nullptr) {
    diags.error(DiagCode::kUnknownName, StatusCode::kNotFound, stmt.span,
                "unknown vertex type '" + d.target.vertex_type + "'");
  }
  if (d.source.vertex_type == d.target.vertex_type &&
      (d.source.alias.empty() || d.target.alias.empty())) {
    diags.error(DiagCode::kBadStructure, StatusCode::kInvalidArgument,
                stmt.span,
                "edge '" + d.name +
                    "': same-type endpoints need 'as' aliases");
  }
  if (!d.where) {
    diags.error(DiagCode::kBadStructure, StatusCode::kInvalidArgument,
                stmt.span,
                "edge '" + d.name + "' requires a where clause");
  }
  if (src == nullptr || dst == nullptr || !d.where) return;

  struct Source {
    std::vector<std::string> quals;
    const Schema* schema;
  };
  std::vector<Source> sources;
  const bool same = d.source.vertex_type == d.target.vertex_type;
  auto quals_of = [&](const graph::EdgeEndpoint& ep) {
    std::vector<std::string> q;
    if (!ep.alias.empty()) q.push_back(ep.alias);
    if (!same) q.push_back(ep.vertex_type);
    return q;
  };
  sources.push_back({quals_of(d.source), &src->attr_schema});
  sources.push_back({quals_of(d.target), &dst->attr_schema});
  for (const auto& name : d.assoc_tables) {
    const Schema* s = catalog.find_table(name);
    if (s == nullptr) {
      diags.error(DiagCode::kUnknownName, StatusCode::kNotFound, stmt.span,
                  "unknown associated table '" + name + "' in edge '" +
                      d.name + "'");
      return;
    }
    sources.push_back({{name}, s});
  }

  Resolver resolve = [&](std::string_view qual,
                         std::string_view col) -> Result<DataType> {
    if (qual.empty()) {
      const Schema* found = nullptr;
      DataType type;
      for (const auto& s : sources) {
        auto idx = s.schema->find(col);
        if (!idx) continue;
        if (found != nullptr) {
          return type_error("column '" + std::string(col) +
                            "' is ambiguous; qualify it");
        }
        found = s.schema;
        type = s.schema->column(*idx).type;
      }
      if (found == nullptr) {
        return not_found("no edge source has a column '" + std::string(col) +
                         "'");
      }
      return type;
    }
    for (const auto& s : sources) {
      if (std::find(s.quals.begin(), s.quals.end(), qual) == s.quals.end()) {
        continue;
      }
      auto idx = s.schema->find(col);
      if (!idx) {
        return not_found("'" + std::string(qual) + "' has no column '" +
                         std::string(col) + "'");
      }
      return s.schema->column(*idx).type;
    }
    return not_found("unknown qualifier '" + std::string(qual) + "'");
  };
  if (check_boolean(d.where, resolve, opts.params, diags, stmt.span)) {
    fold_and_warn(d.where, opts.params, diags, stmt.span,
                  "the edge set is empty");
  }
}

// ---- Script-level driver (statement dispatch + pass 5) ---------------------

/// Runs the per-statement analyses, applies catalog effects of clean
/// statements, and maintains the cross-statement state pass 5 reads:
/// which tables this script created, which have been filled, and which
/// results are still waiting for a reader.
class ScriptAnalyzer {
 public:
  ScriptAnalyzer(MetaCatalog& catalog, DiagnosticEngine& diags,
                 const AnalyzeOptions& opts)
      : catalog_(catalog), diags_(diags), opts_(opts) {}

  bool statement(const Statement& stmt, std::size_t index) {
    const std::size_t errs_before = diags_.error_count();
    const SourceSpan sspan = statement_span(stmt);

    if (const auto* s = std::get_if<CreateTableStmt>(&stmt)) {
      auto schema = Schema::create(s->columns);
      if (!schema.is_ok()) {
        diags_.error(DiagCode::kBadStructure, schema.status().code(), sspan,
                     std::string(schema.status().message()));
      } else if (catalog_.name_in_use(s->name)) {
        diags_.error(DiagCode::kNameInUse, StatusCode::kAlreadyExists, sspan,
                     "name '" + s->name + "' is already in use");
      } else {
        GEMS_CHECK(catalog_.add_table(s->name, std::move(schema).value())
                       .is_ok());
        tables_[s->name].created_here = true;
      }
    } else if (const auto* s = std::get_if<CreateVertexStmt>(&stmt)) {
      analyze_create_vertex(*s, catalog_, opts_, diags_);
      if (diags_.error_count() == errs_before) {
        const Schema* source = catalog_.find_table(s->decl.table);
        GEMS_CHECK(catalog_
                       .add_vertex(s->decl.name,
                                   VertexMeta{s->decl.table, *source,
                                              s->decl.key_columns})
                       .is_ok());
      }
    } else if (const auto* s = std::get_if<CreateEdgeStmt>(&stmt)) {
      analyze_create_edge(*s, catalog_, opts_, diags_);
      if (diags_.error_count() == errs_before) {
        std::optional<Schema> attr;
        if (s->decl.assoc_tables.size() == 1) {
          attr = *catalog_.find_table(s->decl.assoc_tables[0]);
        }
        GEMS_CHECK(catalog_
                       .add_edge(s->decl.name,
                                 EdgeMeta{s->decl.source.vertex_type,
                                          s->decl.target.vertex_type,
                                          std::move(attr)})
                       .is_ok());
      }
    } else if (const auto* s = std::get_if<IngestStmt>(&stmt)) {
      if (catalog_.find_table(s->table) == nullptr) {
        if (catalog_.find_vertex(s->table) != nullptr) {
          diags_.error(DiagCode::kWrongEntityKind, StatusCode::kTypeError,
                       sspan,
                       "'" + s->table +
                           "' is a vertex type; ingest targets tables");
        } else {
          diags_.error(DiagCode::kUnknownName, StatusCode::kNotFound, sspan,
                       "unknown table '" + s->table + "'");
        }
      } else {
        tables_[s->table].has_data = true;
      }
    } else if (const auto* s = std::get_if<OutputStmt>(&stmt)) {
      if (catalog_.find_table(s->table) == nullptr) {
        if (catalog_.find_vertex(s->table) != nullptr ||
            catalog_.find_edge(s->table) != nullptr) {
          diags_.error(DiagCode::kWrongEntityKind, StatusCode::kTypeError,
                       sspan,
                       "'" + s->table +
                           "' is a graph type; output targets tables");
        } else {
          diags_.error(DiagCode::kUnknownName, StatusCode::kNotFound, sspan,
                       "unknown table '" + s->table + "'");
        }
      } else {
        note_data_read(s->table, sspan,
                       "table '" + s->table + "' is written out here");
      }
    } else if (const auto* s = std::get_if<GraphQueryStmt>(&stmt)) {
      GraphQueryAnalyzer analyzer(catalog_, opts_, diags_);
      analyzer.analyze(*s);
      note_graph_reads(*s, sspan);
      if (diags_.error_count() == errs_before) {
        if (s->into == IntoKind::kSubgraph) {
          catalog_.add_subgraph(s->into_name, analyzer.subgraph_meta(*s));
          note_result_write(s->into_name, index, sspan);
        }
        if (s->into == IntoKind::kTable) {
          auto schema = analyzer.output_schema(*s);
          if (!schema.is_ok()) {
            diags_.error(DiagCode::kBadStructure, schema.status().code(),
                         sspan, std::string(schema.status().message()));
          } else {
            catalog_.put_table(s->into_name, std::move(schema).value());
            tables_[s->into_name].has_data = true;
            note_result_write(s->into_name, index, sspan);
          }
        }
      }
    } else if (const auto* s = std::get_if<TableQueryStmt>(&stmt)) {
      auto schema = analyze_table_query(*s, catalog_, opts_, diags_);
      if (catalog_.find_table(s->from_table) != nullptr) {
        note_data_read(s->from_table, sspan,
                       "table '" + s->from_table + "' is queried here");
      }
      if (schema.has_value() && diags_.error_count() == errs_before &&
          s->into == IntoKind::kTable) {
        catalog_.put_table(s->into_name, std::move(*schema));
        tables_[s->into_name].has_data = true;
        note_result_write(s->into_name, index, sspan);
      }
    } else {
      GEMS_UNREACHABLE("unhandled statement kind");
    }
    return diags_.error_count() == errs_before;
  }

 private:
  struct TableState {
    bool created_here = false;   // `create table` in this script
    bool has_data = false;       // ingested or written by a query result
    int last_writer = -1;        // statement index of the last result write
    SourceSpan writer_span;
    bool read_since_write = true;
  };

  /// Pass 5a (GQL0080): reading the *data* of a table this script created
  /// but never filled — the classic "forgot the ingest" mistake the
  /// scheduler (plan::schedule) would otherwise surface only as an empty
  /// result at run time. DDL reads (create vertex/edge `from table`) are
  /// exempt: declaring graph types over a still-empty table is the normal
  /// statement order, and ingest regenerates derived instances.
  void note_data_read(const std::string& table, SourceSpan span,
                      const std::string& what) {
    auto& st = tables_[table];
    st.read_since_write = true;
    if (st.created_here && !st.has_data) {
      diags_
          .warning(DiagCode::kUseBeforeIngest, span,
                   what + ", but it was created in this script and never "
                   "ingested or filled — it is empty")
          .fixit = "add \"ingest table " + table +
                   " '<file.csv>'\" (or reorder the statements) first";
    }
  }

  /// Pass 5b (GQL0081): two statements writing the same result name with
  /// no read in between — under plan::schedule's dependence rules the
  /// first write is dead, which is almost always a copy-paste slip.
  void note_result_write(const std::string& name, std::size_t index,
                         SourceSpan span) {
    auto& st = tables_[name];
    if (st.last_writer >= 0 && !st.read_since_write) {
      diags_
          .warning(DiagCode::kOverwrittenResult, span,
                   "result '" + name + "' overwrites the result of "
                   "statement " + std::to_string(st.last_writer + 1) +
                   " before anything reads it")
          .fixit = "drop the earlier statement or consume its result "
                   "before this one";
    }
    st.last_writer = static_cast<int>(index);
    st.writer_span = span;
    st.read_since_write = false;
  }

  /// Graph queries read vertex data materialized from source tables and
  /// seed from prior subgraph results; surface both to pass 5.
  void note_graph_reads(const GraphQueryStmt& stmt, SourceSpan sspan) {
    std::set<std::string> source_tables;
    auto visit_vertex = [&](const VertexStep& v) {
      if (!v.seed_result.empty()) {
        tables_[v.seed_result].read_since_write = true;
      }
      if (v.variant || v.type_name.empty()) return;
      if (const VertexMeta* meta = catalog_.find_vertex(v.type_name)) {
        source_tables.insert(meta->source_table);
      }
    };
    for (const auto& and_group : stmt.or_groups) {
      for (const auto& path : and_group) {
        for (const auto& el : path.elements) {
          if (const auto* v = std::get_if<VertexStep>(&el)) {
            visit_vertex(*v);
          } else if (const auto* g = std::get_if<PathGroup>(&el)) {
            for (const auto& bel : g->body) {
              if (const auto* bv = std::get_if<VertexStep>(&bel)) {
                visit_vertex(*bv);
              }
            }
          }
        }
      }
    }
    for (const auto& table : source_tables) {
      note_data_read(table, sspan,
                     "this query matches vertices built from table '" +
                         table + "'");
    }
  }

  MetaCatalog& catalog_;
  DiagnosticEngine& diags_;
  const AnalyzeOptions& opts_;
  std::map<std::string, TableState> tables_;
};

}  // namespace

// ---- MetaCatalog -------------------------------------------------------------

Status MetaCatalog::add_table(const std::string& name,
                              storage::Schema schema) {
  if (name_in_use(name)) {
    return already_exists("name '" + name + "' is already in use");
  }
  tables_.emplace(name, std::move(schema));
  return Status::ok();
}

Status MetaCatalog::add_vertex(const std::string& name, VertexMeta meta) {
  if (name_in_use(name)) {
    return already_exists("name '" + name + "' is already in use");
  }
  vertices_.emplace(name, std::move(meta));
  return Status::ok();
}

Status MetaCatalog::add_edge(const std::string& name, EdgeMeta meta) {
  if (name_in_use(name)) {
    return already_exists("name '" + name + "' is already in use");
  }
  edges_.emplace(name, std::move(meta));
  return Status::ok();
}

void MetaCatalog::add_subgraph(const std::string& name, SubgraphMeta meta) {
  subgraphs_[name] = std::move(meta);
}

void MetaCatalog::put_table(const std::string& name,
                            storage::Schema schema) {
  tables_[name] = std::move(schema);
}

const storage::Schema* MetaCatalog::find_table(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}
const VertexMeta* MetaCatalog::find_vertex(const std::string& name) const {
  auto it = vertices_.find(name);
  return it == vertices_.end() ? nullptr : &it->second;
}
const EdgeMeta* MetaCatalog::find_edge(const std::string& name) const {
  auto it = edges_.find(name);
  return it == edges_.end() ? nullptr : &it->second;
}
const SubgraphMeta* MetaCatalog::find_subgraph(
    const std::string& name) const {
  auto it = subgraphs_.find(name);
  return it == subgraphs_.end() ? nullptr : &it->second;
}

bool MetaCatalog::name_in_use(const std::string& name) const {
  return tables_.contains(name) || vertices_.contains(name) ||
         edges_.contains(name);
}

std::vector<std::string> MetaCatalog::edges_between(
    const std::string& src, const std::string& dst) const {
  std::vector<std::string> out;
  for (const auto& [name, meta] : edges_) {
    if (meta.source_vertex == src && meta.target_vertex == dst) {
      out.push_back(name);
    }
  }
  return out;
}

std::vector<std::string> MetaCatalog::edge_names() const {
  std::vector<std::string> out;
  out.reserve(edges_.size());
  for (const auto& [name, meta] : edges_) out.push_back(name);
  return out;
}

// ---- Entry points ------------------------------------------------------------

bool analyze_statement_collect(const Statement& stmt, MetaCatalog& catalog,
                               DiagnosticEngine& diags,
                               const AnalyzeOptions& opts) {
  ScriptAnalyzer analyzer(catalog, diags, opts);
  return analyzer.statement(stmt, 0);
}

void analyze_script_collect(const Script& script, MetaCatalog& catalog,
                            DiagnosticEngine& diags,
                            const AnalyzeOptions& opts) {
  ScriptAnalyzer analyzer(catalog, diags, opts);
  for (std::size_t i = 0; i < script.statements.size(); ++i) {
    analyzer.statement(script.statements[i], i);
  }
}

Status analyze_statement(const Statement& stmt, MetaCatalog& catalog,
                         const relational::ParamMap* params) {
  DiagnosticEngine diags;
  AnalyzeOptions opts;
  opts.params = params;
  ScriptAnalyzer analyzer(catalog, diags, opts);
  analyzer.statement(stmt, 0);
  return diags.to_status();
}

Status analyze_script(const Script& script, MetaCatalog& catalog,
                      const relational::ParamMap* params) {
  DiagnosticEngine diags;
  AnalyzeOptions opts;
  opts.params = params;
  ScriptAnalyzer analyzer(catalog, diags, opts);
  for (std::size_t i = 0; i < script.statements.size(); ++i) {
    const std::size_t errs_before = diags.error_count();
    analyzer.statement(script.statements[i], i);
    if (diags.error_count() > errs_before) {
      return diags.to_status().with_context("statement " +
                                            std::to_string(i + 1));
    }
  }
  return Status::ok();
}

}  // namespace gems::graql
