// Binary intermediate representation of GraQL scripts (paper Sec. III):
// "A GraQL script is parsed and compiled into a high-level binary
// intermediate representation (IR) that is a convenient mechanism for
// moving the query script from the front-end portion of the GEMS system
// to the backend for execution."
//
// The IR is a tagged byte stream with a magic/version header. It is
// self-contained: decode(encode(script)) reproduces the AST exactly
// (property-tested), so front-end and backend can run in separate
// processes in a real deployment.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "graql/ast.hpp"
#include "relational/bound_expr.hpp"

namespace gems::graql {

inline constexpr std::uint32_t kIrMagic = 0x47514C31;  // "GQL1"
// v2: statements, steps, groups, select targets/items, order items and
// leaf expressions carry source spans, so a decoded IR produces the same
// located diagnostics as the original text (the net `check` contract).
inline constexpr std::uint16_t kIrVersion = 2;

/// Serializes a script to the binary IR.
std::vector<std::uint8_t> encode_script(const Script& script);

/// Deserializes; rejects wrong magic/version/truncated input. Hostile
/// length prefixes (larger than the remaining buffer) are rejected before
/// any allocation, with the byte offset of the bad field in the message.
Result<Script> decode_script(std::span<const std::uint8_t> bytes);

// ---- Value / parameter codec ----------------------------------------------
// The tagged value encoding the IR uses for literals, exposed so the wire
// layer (src/net) can ship parameter bindings and result tables in the
// same format as the script IR.

/// Appends one tagged value to `out`.
void encode_value(const storage::Value& v, std::vector<std::uint8_t>& out);

/// Decodes one tagged value at `pos`, advancing `pos` past the consumed
/// bytes. Errors carry the byte offset.
Result<storage::Value> decode_value(std::span<const std::uint8_t> bytes,
                                    std::size_t& pos);

/// Serializes a parameter map (name -> value) for the wire.
std::vector<std::uint8_t> encode_params(const relational::ParamMap& params);

/// Deserializes a parameter map; rejects truncated/hostile input without
/// over-allocating.
Result<relational::ParamMap> decode_params(
    std::span<const std::uint8_t> bytes);

}  // namespace gems::graql
