// Binary intermediate representation of GraQL scripts (paper Sec. III):
// "A GraQL script is parsed and compiled into a high-level binary
// intermediate representation (IR) that is a convenient mechanism for
// moving the query script from the front-end portion of the GEMS system
// to the backend for execution."
//
// The IR is a tagged byte stream with a magic/version header. It is
// self-contained: decode(encode(script)) reproduces the AST exactly
// (property-tested), so front-end and backend can run in separate
// processes in a real deployment.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "graql/ast.hpp"

namespace gems::graql {

inline constexpr std::uint32_t kIrMagic = 0x47514C31;  // "GQL1"
inline constexpr std::uint16_t kIrVersion = 1;

/// Serializes a script to the binary IR.
std::vector<std::uint8_t> encode_script(const Script& script);

/// Deserializes; rejects wrong magic/version/truncated input.
Result<Script> decode_script(std::span<const std::uint8_t> bytes);

}  // namespace gems::graql
