#include "graql/ast.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace gems::graql {

namespace {

void print_label(std::ostream& out, LabelKind kind, const std::string& label) {
  if (kind == LabelKind::kSet) out << "def " << label << ": ";
  if (kind == LabelKind::kForeach) out << "foreach " << label << ": ";
}

void print_vertex_step(std::ostream& out, const VertexStep& v) {
  print_label(out, v.label_kind, v.label);
  if (!v.label_ref.empty()) {
    out << v.label_ref;
    // A bare label reference may still carry a condition.
  } else if (v.variant) {
    out << "[ ]";
  } else {
    if (!v.seed_result.empty()) out << v.seed_result << ".";
    out << v.type_name;
  }
  if (v.condition) {
    out << "(" << v.condition->to_string() << ")";
  } else if (!v.variant && v.label_ref.empty()) {
    out << "()";
  }
}

void print_edge_step(std::ostream& out, const EdgeStep& e) {
  if (e.reversed) {
    out << "<--";
  } else {
    out << "--";
  }
  print_label(out, e.label_kind, e.label);
  if (e.variant) {
    out << "[ ]";
  } else {
    out << e.type_name;
  }
  if (e.condition) out << "(" << e.condition->to_string() << ")";
  if (e.reversed) {
    out << "--";
  } else {
    out << "-->";
  }
}

void print_element(std::ostream& out, const PathElement& el);

void print_group(std::ostream& out, const PathGroup& g) {
  out << "( ";
  for (std::size_t i = 0; i < g.body.size(); ++i) {
    if (i > 0) out << " ";
    print_element(out, g.body[i]);
  }
  out << " )";
  switch (g.quant) {
    case PathGroup::Quant::kStar:
      out << "*";
      break;
    case PathGroup::Quant::kPlus:
      out << "+";
      break;
    case PathGroup::Quant::kExact:
      out << "{" << g.count << "}";
      break;
  }
}

void print_element(std::ostream& out, const PathElement& el) {
  std::visit(
      [&](const auto& e) {
        using T = std::decay_t<decltype(e)>;
        if constexpr (std::is_same_v<T, VertexStep>) {
          print_vertex_step(out, e);
        } else if constexpr (std::is_same_v<T, EdgeStep>) {
          print_edge_step(out, e);
        } else {
          print_group(out, e);
        }
      },
      el);
}

void print_target(std::ostream& out, const SelectTarget& t) {
  if (t.star) {
    out << "*";
    return;
  }
  out << t.qualifier;
  if (!t.column.empty()) out << "." << t.column;
  if (!t.alias.empty()) out << " as " << t.alias;
}

const char* agg_name(AggFunc f) {
  switch (f) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kNone:
      break;
  }
  return "";
}

struct Printer {
  std::ostringstream out;

  void operator()(const CreateTableStmt& s) {
    out << "create table " << s.name << "(";
    for (std::size_t i = 0; i < s.columns.size(); ++i) {
      if (i > 0) out << ", ";
      out << s.columns[i].name << " " << s.columns[i].type.to_string();
    }
    out << ")";
  }

  void operator()(const CreateVertexStmt& s) {
    out << "create vertex " << s.decl.name << "(";
    for (std::size_t i = 0; i < s.decl.key_columns.size(); ++i) {
      if (i > 0) out << ", ";
      out << s.decl.key_columns[i];
    }
    out << ") from table " << s.decl.table;
    if (s.decl.where) out << " where " << s.decl.where->to_string();
  }

  void operator()(const CreateEdgeStmt& s) {
    out << "create edge " << s.decl.name << " with vertices ("
        << s.decl.source.vertex_type;
    if (!s.decl.source.alias.empty()) out << " as " << s.decl.source.alias;
    out << ", " << s.decl.target.vertex_type;
    if (!s.decl.target.alias.empty()) out << " as " << s.decl.target.alias;
    out << ")";
    if (!s.decl.assoc_tables.empty()) {
      out << " from table ";
      for (std::size_t i = 0; i < s.decl.assoc_tables.size(); ++i) {
        if (i > 0) out << ", ";
        out << s.decl.assoc_tables[i];
      }
    }
    if (s.decl.where) out << " where " << s.decl.where->to_string();
  }

  void operator()(const IngestStmt& s) {
    out << "ingest table " << s.table << " '" << s.path << "'";
    if (s.has_header) out << " with header";
  }

  void operator()(const OutputStmt& s) {
    out << "output table " << s.table << " '" << s.path << "'";
  }

  void operator()(const GraphQueryStmt& s) {
    out << "select ";
    for (std::size_t i = 0; i < s.targets.size(); ++i) {
      if (i > 0) out << ", ";
      print_target(out, s.targets[i]);
    }
    out << " from graph ";
    for (std::size_t g = 0; g < s.or_groups.size(); ++g) {
      if (g > 0) out << " or ";
      for (std::size_t p = 0; p < s.or_groups[g].size(); ++p) {
        if (p > 0) out << " and ";
        out << to_string(s.or_groups[g][p]);
      }
    }
    if (s.into == IntoKind::kSubgraph) out << " into subgraph " << s.into_name;
    if (s.into == IntoKind::kTable) out << " into table " << s.into_name;
  }

  void operator()(const TableQueryStmt& s) {
    out << "select ";
    if (s.top_n > 0) out << "top " << s.top_n << " ";
    if (s.distinct) out << "distinct ";
    for (std::size_t i = 0; i < s.items.size(); ++i) {
      if (i > 0) out << ", ";
      const SelectItem& item = s.items[i];
      if (item.star) {
        out << "*";
      } else if (item.agg == AggFunc::kCountStar) {
        out << "count(*)";
      } else if (item.agg != AggFunc::kNone) {
        out << agg_name(item.agg) << "(" << item.expr->to_string() << ")";
      } else {
        out << item.expr->to_string();
      }
      if (!item.alias.empty()) out << " as " << item.alias;
    }
    out << " from table " << s.from_table;
    if (s.where) out << " where " << s.where->to_string();
    if (!s.group_by.empty()) {
      out << " group by ";
      for (std::size_t i = 0; i < s.group_by.size(); ++i) {
        if (i > 0) out << ", ";
        out << s.group_by[i];
      }
    }
    if (!s.order_by.empty()) {
      out << " order by ";
      for (std::size_t i = 0; i < s.order_by.size(); ++i) {
        if (i > 0) out << ", ";
        out << s.order_by[i].column;
        if (s.order_by[i].descending) out << " desc";
      }
    }
    if (s.into == IntoKind::kTable) out << " into table " << s.into_name;
  }
};

}  // namespace

std::string to_string(const PathPattern& path) {
  std::ostringstream out;
  for (std::size_t i = 0; i < path.elements.size(); ++i) {
    if (i > 0) out << " ";
    print_element(out, path.elements[i]);
  }
  return out.str();
}

std::string to_string(const Statement& stmt) {
  Printer p;
  std::visit(p, stmt);
  return p.out.str();
}

std::string OutputNamer::assign(const std::string& preferred,
                                const std::string& prefix) {
  auto taken = [this](const std::string& name) {
    return std::find(used_.begin(), used_.end(), name) != used_.end();
  };
  std::string name = preferred;
  if (taken(name) && !prefix.empty()) name = prefix + "_" + preferred;
  int suffix = 1;
  const std::string base = name;
  while (taken(name)) name = base + "_" + std::to_string(++suffix);
  used_.push_back(name);
  return name;
}

std::string to_string(const Script& script) {
  std::string out;
  for (const auto& s : script.statements) {
    out += to_string(s);
    out += "\n";
  }
  return out;
}

SourceSpan statement_span(const Statement& stmt) {
  return std::visit([](const auto& s) { return s.span; }, stmt);
}

}  // namespace gems::graql
