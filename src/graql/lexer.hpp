// GraQL lexer. Handles the SQL-like token set plus the path-step arrow
// tokens (`--`, `-->`, `<--`), `%param%` placeholders, and `//` and `--`…
// no: `--` is an arrow, so comments use `#` or `/* */` (documented in the
// language reference).
#pragma once

#include <vector>

#include "common/status.hpp"
#include "graql/token.hpp"

namespace gems::graql {

/// Tokenizes an entire GraQL script. Errors carry line/column positions
/// in the message; when `error_span` is non-null it also receives the
/// exact source location of a lex error (untouched on success).
Result<std::vector<Token>> lex(std::string_view source,
                               SourceSpan* error_span = nullptr);

}  // namespace gems::graql
