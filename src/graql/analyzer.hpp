// Static query analysis (paper Sec. III-A): GraQL scripts are checked for
// correctness on the GEMS front-end server using only the metadata catalog
// — no data access. Checks include:
//   * type errors ("comparing a date to a floating-point number"),
//   * entity-kind errors ("a table name should be used when a table is
//     required, rather than a vertex type name"),
//   * path-query formulation errors (edge direction/endpoint mismatches,
//     undefined labels, conditions on variant steps),
//   * statically-empty queries (no edge type connects two vertex types),
//   * select-target resolution and output-schema inference.
//
// The analyzer is multi-error: every check reports into a DiagnosticEngine
// (graql/diag.hpp) with a source span and a stable GQLxxxx code, and
// analysis continues past errors so one `check` call surfaces every
// problem in the script. On top of the legacy checks it runs five
// semantic passes:
//   1. empty type-intersection detection for `[ ]` steps and closure
//      bodies that cannot chain (GQL004x),
//   2. constant folding of step/where conditions to flag always-false and
//      always-true predicates (GQL005x),
//   3. unbound/duplicate/unused `def`/`foreach` label analysis (GQL006x),
//   4. regex-closure cost lint over catalog degree statistics, fed
//      through AnalyzeOptions::edge_stats (GQL0070),
//   5. cross-statement dependence validation: use-before-ingest and
//      results overwritten before any read (GQL008x).
//
// The analyzer maintains a MetaCatalog that evolves as the script's DDL
// and `into` clauses introduce new objects, so later statements can
// reference earlier results (Fig. 12). A statement's catalog effects are
// applied only when it produced no errors; later statements may then see
// follow-on errors, which is the conventional cascade behavior.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "graql/ast.hpp"
#include "graql/diag.hpp"
#include "relational/bound_expr.hpp"
#include "storage/schema.hpp"

namespace gems::graql {

struct VertexMeta {
  std::string source_table;
  storage::Schema attr_schema;        // full source schema (visibility of
                                      // non-key attrs is a dynamic check)
  std::vector<std::string> key_columns;
};

struct EdgeMeta {
  std::string source_vertex;
  std::string target_vertex;
  std::optional<storage::Schema> attr_schema;  // nullopt: no attributes
};

/// Per-step metadata of a subgraph result, so `res.V` seeding can be
/// checked statically.
struct SubgraphMeta {
  std::set<std::string> vertex_steps;  // step names selectable for seeding
};

/// Schema-only catalog mirror of the GEMS server's metadata repository.
class MetaCatalog {
 public:
  Status add_table(const std::string& name, storage::Schema schema);

  /// Registers or replaces a table schema (used for `into table` results,
  /// which may legitimately overwrite earlier results of the same name).
  void put_table(const std::string& name, storage::Schema schema);
  Status add_vertex(const std::string& name, VertexMeta meta);
  Status add_edge(const std::string& name, EdgeMeta meta);
  void add_subgraph(const std::string& name, SubgraphMeta meta);

  const storage::Schema* find_table(const std::string& name) const;
  const VertexMeta* find_vertex(const std::string& name) const;
  const EdgeMeta* find_edge(const std::string& name) const;
  const SubgraphMeta* find_subgraph(const std::string& name) const;

  bool name_in_use(const std::string& name) const;

  /// Edge types from src to dst (for static variant/adjacency checks).
  std::vector<std::string> edges_between(const std::string& src,
                                         const std::string& dst) const;

  /// All declared edge type names (pass 4 expands variant `--[]-->` steps
  /// over these).
  std::vector<std::string> edge_names() const;

 private:
  std::map<std::string, storage::Schema> tables_;
  std::map<std::string, VertexMeta> vertices_;
  std::map<std::string, EdgeMeta> edges_;
  std::map<std::string, SubgraphMeta> subgraphs_;
};

// ---- Multi-error entry points ---------------------------------------------

/// Analyzes one statement, reporting every problem (errors and pass 1–4
/// warnings) into `diags`. Catalog effects are applied only when the
/// statement produced no new errors; returns true in that case. Pass 5
/// needs script context and only fires through analyze_script_collect.
bool analyze_statement_collect(const Statement& stmt, MetaCatalog& catalog,
                               DiagnosticEngine& diags,
                               const AnalyzeOptions& opts = {});

/// Analyzes a whole script front to back, collecting every diagnostic,
/// including the cross-statement pass 5 (use-before-ingest, results
/// overwritten before any read).
void analyze_script_collect(const Script& script, MetaCatalog& catalog,
                            DiagnosticEngine& diags,
                            const AnalyzeOptions& opts = {});

// ---- Fail-stop compatibility wrappers -------------------------------------

/// Analyzes one statement against (and updates) `catalog`. When `params`
/// is non-null, parameter types participate in type checking; otherwise
/// parameters type-check as wildcards. Returns the first error (same
/// StatusCode and message a pre-diag caller saw); warnings are dropped.
Status analyze_statement(const Statement& stmt, MetaCatalog& catalog,
                         const relational::ParamMap* params = nullptr);

/// Analyzes a whole script front to back, stopping at the first statement
/// with an error (its Status carries "statement N" context).
Status analyze_script(const Script& script, MetaCatalog& catalog,
                      const relational::ParamMap* params = nullptr);

}  // namespace gems::graql
