// GraQL abstract syntax tree. One Script holds the statements of a GraQL
// script Ω = q1..qn (paper Sec. III); each statement is DDL, ingest, a
// graph path query, or a relational table query.
//
// The language surface follows paper Sec. II:
//   create table T(col type, ...)
//   create vertex V(key[, key...]) from table T [where φ]
//   create edge E with vertices (V1 [as A], V2 [as B])
//       [from table T1[, T2...]] where φ
//   ingest table T 'file.csv'
//   select <targets> from graph <path> [and <path>]... [or <path>]...
//       into {subgraph|table} Name
//   select [top n] [distinct] <items> from table T [where φ]
//       [group by cols] [order by col [desc], ...] [into table Name]
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "graph/builder.hpp"
#include "graql/token.hpp"
#include "relational/expr.hpp"
#include "storage/schema.hpp"

namespace gems::graql {

// ---- DDL statements --------------------------------------------------------

struct CreateTableStmt {
  std::string name;
  std::vector<storage::ColumnDef> columns;
  SourceSpan span;
};

struct CreateVertexStmt {
  graph::VertexDecl decl;
  SourceSpan span;
};

struct CreateEdgeStmt {
  graph::EdgeDecl decl;
  SourceSpan span;
};

struct IngestStmt {
  std::string table;
  std::string path;      // CSV file
  bool has_header = false;  // `ingest table T 'f.csv' with header`
  SourceSpan span;
};

/// `output table T 'file.csv'` — the converse of ingest (paper Sec. III:
/// the parallel filesystem serves "for purposes of data ingest and
/// eventual output to files"). Writes the table as CSV with a header.
struct OutputStmt {
  std::string table;
  std::string path;
  SourceSpan span;
};

// ---- Path queries ----------------------------------------------------------

enum class LabelKind : std::uint8_t { kNone, kSet, kForeach };

/// A vertex step: `ProductVtx(cond)`, `[ ]`, `def X: V(cond)`,
/// a bare label reference `y`, or a seeded step `resQ1.Vn(cond)`.
struct VertexStep {
  bool variant = false;      // [ ] — matches any vertex type (Eq. 10)
  std::string type_name;     // empty for variant steps and label refs
  std::string label_ref;     // set when the step is a bare label reference
  std::string seed_result;   // `resQ1` in `resQ1.Vn(...)` (Fig. 12)
  relational::ExprPtr condition;  // may be null ("( )" = no filter)
  LabelKind label_kind = LabelKind::kNone;  // def X: / foreach x:
  std::string label;
  SourceSpan span;
};

/// An edge step: `--producer-->` (forward) or `<--reviewer--` (reverse,
/// paper Sec. II-B: "--> indicates a path from the left vertex ... along an
/// outedge, and <-- ... along an inedge"). `--[]-->` is a variant step.
struct EdgeStep {
  bool variant = false;
  std::string type_name;
  bool reversed = false;
  relational::ExprPtr condition;
  LabelKind label_kind = LabelKind::kNone;
  std::string label;
  SourceSpan span;
};

struct PathGroup;

using PathElement = std::variant<VertexStep, EdgeStep, PathGroup>;

/// Regular-expression group over steps (Fig. 10): `( --[]--> [ ] )+`.
/// The body starts with an edge step and ends with a vertex step so that
/// repetition preserves vertex/edge alternation.
struct PathGroup {
  enum class Quant : std::uint8_t { kStar, kPlus, kExact };
  std::vector<PathElement> body;
  Quant quant = Quant::kPlus;
  std::uint32_t count = 0;  // for kExact ({n})
  SourceSpan span;
};

/// One linear path pattern (Eq. 3): alternating vertex/edge steps with
/// optional regex groups.
struct PathPattern {
  std::vector<PathElement> elements;
};

/// What a graph query selects (paper Figs. 6, 11, 13).
struct SelectTarget {
  bool star = false;        // select *
  std::string qualifier;    // step type name, alias or label (V0, y)
  std::string column;       // empty = the whole step
  std::string alias;        // `as x`
  SourceSpan span;
};

enum class IntoKind : std::uint8_t { kNone, kSubgraph, kTable };

/// `select ... from graph p1 [and p2]... [or p3 [and p4]...] into ...`.
/// Or-composition has lower precedence than and-composition; each
/// and-group is a conjunction of label-connected paths (Sec. II-B3).
struct GraphQueryStmt {
  std::vector<SelectTarget> targets;
  std::vector<std::vector<PathPattern>> or_groups;  // outer: or, inner: and
  IntoKind into = IntoKind::kNone;
  std::string into_name;
  SourceSpan span;
};

// ---- Relational queries -----------------------------------------------------

enum class AggFunc : std::uint8_t {
  kNone,
  kCountStar,
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
};

struct SelectItem {
  bool star = false;
  AggFunc agg = AggFunc::kNone;
  relational::ExprPtr expr;  // null for * and count(*)
  std::string alias;
  SourceSpan span;
};

struct OrderItem {
  std::string column;  // output-column name (may be an alias)
  bool descending = false;
  SourceSpan span;
};

struct TableQueryStmt {
  std::vector<SelectItem> items;
  std::uint64_t top_n = 0;  // 0 = no limit
  bool distinct = false;
  std::string from_table;
  relational::ExprPtr where;  // may be null
  std::vector<std::string> group_by;
  std::vector<OrderItem> order_by;
  IntoKind into = IntoKind::kNone;  // only kTable is legal here
  std::string into_name;
  SourceSpan span;
};

// ---- Script ------------------------------------------------------------------

using Statement = std::variant<CreateTableStmt, CreateVertexStmt,
                               CreateEdgeStmt, IngestStmt, OutputStmt,
                               GraphQueryStmt, TableQueryStmt>;

struct Script {
  std::vector<Statement> statements;
};

/// Position of a statement in its source script (unknown-span when the
/// statement was decoded from a pre-span binary IR).
SourceSpan statement_span(const Statement& stmt);

/// Pretty-prints a statement back to (canonical) GraQL — used by error
/// messages, the shell's `explain`, and IR round-trip tests.
std::string to_string(const Statement& stmt);
std::string to_string(const Script& script);
std::string to_string(const PathPattern& path);

/// Deterministic output-column naming shared by the static analyzer and
/// the executor, so inferred and materialized schemas agree. Preference
/// order: `preferred`, then `<prefix>_<preferred>`, then numbered suffixes.
class OutputNamer {
 public:
  std::string assign(const std::string& preferred, const std::string& prefix);

 private:
  std::vector<std::string> used_;
};

}  // namespace gems::graql
