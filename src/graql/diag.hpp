// gems::diag — structured diagnostics for the GraQL front half (paper
// Sec. III-A: "queries are statically checked against the catalog before
// any binary IR is shipped").
//
// The pre-diag analyzer was fail-stop: the first problem produced a bare
// `Status` string with no source location and hid every later problem.
// This module is the shared vocabulary that replaces it:
//
//   - `SourceSpan` (graql/token.hpp): 1-based line:col ranges attached to
//     tokens, AST nodes and expressions, and preserved through the binary
//     IR (v2) so a decoded script diagnoses identically to its source.
//   - `Diagnostic`: severity + stable GQLxxxx code + span + message +
//     optional fix-it hint + the legacy StatusCode (for the fail-stop
//     compatibility wrappers).
//   - `DiagnosticEngine`: an append-only collector the lexer, parser and
//     the multi-pass analyzer all report into; one `check` call returns
//     every problem in the script.
//   - A byte codec (`encode_diagnostics`/`decode_diagnostics`) so the net
//     `check` verb ships the exact structured list, and a renderer for
//     the shell's `\lint` (`file:line:col: warning[GQL0042]: ...`).
//
// Code blocks (stable; new codes append within their block):
//   GQL00xx  lexical / syntactic
//   GQL01xx  name resolution and entity kinds
//   GQL02xx  typing
//   GQL004x  pass 1: statically-empty matches (type intersections)
//   GQL005x  pass 2: constant-folded predicates
//   GQL006x  pass 3: label / capture analysis
//   GQL007x  pass 4: regex-closure cost (needs catalog degree stats)
//   GQL008x  pass 5: cross-statement dependences (feeds plan::schedule)
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "graql/token.hpp"
#include "relational/bound_expr.hpp"

namespace gems::graql {

enum class Severity : std::uint8_t {
  kError = 0,
  kWarning = 1,
  kNote = 2,
};

std::string_view severity_name(Severity severity) noexcept;

/// Stable diagnostic codes. The numeric value is the wire value and the
/// printed `GQLxxxx` number — never renumber an existing entry.
enum class DiagCode : std::uint16_t {
  // Lexical / syntactic.
  kLexError = 1,            // GQL0001
  kParseError = 2,          // GQL0002

  // Name resolution and entity kinds.
  kUnknownName = 100,       // GQL0100 unknown table/vertex/edge/subgraph
  kWrongEntityKind = 101,   // GQL0101 e.g. a table used as a vertex type
  kNameInUse = 102,         // GQL0102 duplicate catalog definition
  kUnknownAttribute = 103,  // GQL0103 unknown column / attribute
  kBadStructure = 104,      // GQL0104 malformed statement shape
  kBadParameter = 105,      // GQL0105 missing/ill-typed %param%

  // Typing.
  kTypeMismatch = 200,      // GQL0200 incomparable operand types
  kNotBoolean = 201,        // GQL0201 condition is not boolean
  kBadAggregate = 202,      // GQL0202 aggregate misuse

  // Pass 1: statically-empty matches.
  kNoEdgeBetween = 40,      // GQL0040 no edge type connects the endpoints
  kEndpointMismatch = 41,   // GQL0041 edge endpoints contradict step types
  kEmptyIntersection = 42,  // GQL0042 `[ ]` step pinched to the empty set
  kClosureCannotRepeat = 43,  // GQL0043 closure body cannot chain (warning)

  // Pass 2: constant folding.
  kAlwaysFalse = 50,        // GQL0050 predicate is constantly false
  kAlwaysTrue = 51,         // GQL0051 predicate is constantly true

  // Pass 3: labels and captures.
  kUnusedLabel = 60,        // GQL0060 `def`/`foreach` label never used
  kDuplicateLabel = 61,     // GQL0061 label defined twice
  kLabelShadowsType = 62,   // GQL0062 label shadows a catalog name

  // Pass 4: closure cost.
  kCostlyClosure = 70,      // GQL0070 unbounded closure over dense edges

  // Pass 5: cross-statement dependences.
  kUseBeforeIngest = 80,    // GQL0080 query reads a table never ingested
  kOverwrittenResult = 81,  // GQL0081 result rewritten before any read
};

/// "GQL0042"-style rendering of a code.
std::string diag_code_name(DiagCode code);

struct Diagnostic {
  Severity severity = Severity::kError;
  DiagCode code = DiagCode::kParseError;
  /// The Status category a fail-stop caller would have seen; keeps the
  /// legacy `Status`-returning entry points loss-free.
  StatusCode status_code = StatusCode::kInvalidArgument;
  SourceSpan span;
  std::string message;
  /// Optional "how to fix it" hint, rendered on its own line.
  std::string fixit;

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// Collects diagnostics across a whole script. Append-only; insertion
/// order is source order for per-statement passes, with whole-script
/// passes (5) appended after.
class DiagnosticEngine {
 public:
  Diagnostic& report(Severity severity, DiagCode code, StatusCode status_code,
                     SourceSpan span, std::string message);
  Diagnostic& error(DiagCode code, StatusCode status_code, SourceSpan span,
                    std::string message);
  Diagnostic& warning(DiagCode code, SourceSpan span, std::string message);
  Diagnostic& note(DiagCode code, SourceSpan span, std::string message);

  bool has_errors() const { return error_count_ > 0; }
  std::size_t error_count() const { return error_count_; }
  std::size_t warning_count() const { return warning_count_; }
  bool empty() const { return diagnostics_.empty(); }
  std::size_t size() const { return diagnostics_.size(); }

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  std::vector<Diagnostic> take() { return std::move(diagnostics_); }

  /// First error as a fail-stop Status (OK when there are none). This is
  /// what the legacy `analyze_*`/`check_*` wrappers return, so their
  /// StatusCode and message text are exactly what pre-diag callers saw.
  Status to_status() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t error_count_ = 0;
  std::size_t warning_count_ = 0;
};

/// First error in `diagnostics` as a Status (OK when none).
Status first_error_status(const std::vector<Diagnostic>& diagnostics);

/// `file:line:col: severity[GQL0042]: message` (+ indented fixit line).
/// `file` may be empty (omitted with its colon). `color` adds ANSI codes
/// the way clang does: severities colored, the rest plain.
std::string format_diagnostic(const Diagnostic& diag, std::string_view file,
                              bool color);

/// All diagnostics, one per line, plus a trailing
/// "N error(s), M warning(s)" summary when the list is non-empty.
std::string render_diagnostics(const std::vector<Diagnostic>& diagnostics,
                               std::string_view file, bool color);

// ---- Wire codec ---------------------------------------------------------
// Deterministic byte encoding used by the net `check` verb. Layout:
//   u32 magic 'GQLD', u32 count, then per diagnostic:
//   u8 severity, u16 code, u8 status_code, 4 x u32 span,
//   u32 message-length + bytes, u32 fixit-length + bytes.
// All integers little-endian. decode validates lengths against the
// remaining buffer before allocating (same hostile-input posture as the
// binary IR codec).

std::vector<std::uint8_t> encode_diagnostics(
    const std::vector<Diagnostic>& diagnostics);

Result<std::vector<Diagnostic>> decode_diagnostics(
    std::span<const std::uint8_t> bytes);

// ---- Analyzer options ---------------------------------------------------

/// Per-edge-type degree statistics, as pass 4 consumes them. The planner
/// layer (plan::stats) sits *above* graql in the dependency order, so the
/// analyzer receives stats through this callback instead of including it;
/// Database wires `plan::GraphStats` in (see Database::check).
struct EdgeDegreeInfo {
  std::size_t num_edges = 0;
  double avg_out = 0.0;
  double avg_in = 0.0;
  std::uint32_t max_out = 0;
  std::uint32_t max_in = 0;
};

/// Returns degree stats for an edge type, or nullopt when unknown.
using EdgeStatsFn =
    std::function<std::optional<EdgeDegreeInfo>(const std::string& edge_type)>;

struct AnalyzeOptions {
  /// %param% bindings, when known at check time.
  const relational::ParamMap* params = nullptr;
  /// Catalog degree statistics for pass 4 (empty = pass 4 skipped).
  EdgeStatsFn edge_stats;
  /// Pass 4 thresholds: warn on an unbounded closure whose edge type has
  /// avg degree > `closure_avg_degree_warn` or max degree >
  /// `closure_max_degree_warn` in the traversal direction.
  double closure_avg_degree_warn = 4.0;
  std::uint32_t closure_max_degree_warn = 64;
};

}  // namespace gems::graql
