#include "graql/ir.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"

namespace gems::graql {

namespace {

using relational::Expr;
using relational::ExprPtr;
using storage::DataType;
using storage::TypeKind;
using storage::Value;

// ---- Writer ----------------------------------------------------------------

class Writer {
 public:
  std::vector<std::uint8_t> take() { return std::move(buf_); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }

  void span(const SourceSpan& s) {
    u32(s.line);
    u32(s.column);
    u32(s.end_line);
    u32(s.end_column);
  }

  void strings(const std::vector<std::string>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (const auto& s : v) str(s);
  }

  void value(const Value& v) {
    if (v.is_null()) {
      u8(0);
      return;
    }
    switch (v.kind()) {
      case TypeKind::kBool:
        u8(1);
        boolean(v.as_bool());
        return;
      case TypeKind::kInt64:
        u8(2);
        i64(v.as_int64());
        return;
      case TypeKind::kDouble:
        u8(3);
        f64(v.as_double());
        return;
      case TypeKind::kVarchar:
        u8(4);
        str(v.as_string());
        return;
      case TypeKind::kDate:
        u8(5);
        i64(v.as_int64());
        return;
    }
    GEMS_UNREACHABLE("bad value kind");
  }

  void data_type(const DataType& t) {
    u8(static_cast<std::uint8_t>(t.kind));
    u32(t.varchar_length);
  }

  void expr(const ExprPtr& e) {
    if (!e) {
      u8(0);
      return;
    }
    switch (e->kind) {
      // Only leaves carry spans on the wire: unary/binary spans are the
      // covering range of their operands, which make_unary/make_binary
      // rederive identically on decode.
      case Expr::Kind::kLiteral:
        u8(1);
        expr_span(*e);
        value(e->literal);
        return;
      case Expr::Kind::kColumnRef:
        u8(2);
        expr_span(*e);
        str(e->qualifier);
        str(e->column);
        return;
      case Expr::Kind::kParameter:
        u8(3);
        expr_span(*e);
        str(e->param_name);
        return;
      case Expr::Kind::kUnary:
        u8(4);
        u8(static_cast<std::uint8_t>(e->uop));
        expr(e->lhs);
        return;
      case Expr::Kind::kBinary:
        u8(5);
        u8(static_cast<std::uint8_t>(e->bop));
        expr(e->lhs);
        expr(e->rhs);
        return;
    }
    GEMS_UNREACHABLE("bad expr kind");
  }

 private:
  void expr_span(const Expr& e) {
    u32(e.src_line);
    u32(e.src_column);
    u32(e.src_end_line);
    u32(e.src_end_column);
  }

  void raw(const void* p, std::size_t n) {
    const auto* bytes = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), bytes, bytes + n);
  }

  std::vector<std::uint8_t> buf_;
};

// ---- Reader -----------------------------------------------------------------

// Bounds guard used by Reader methods (references Reader members). The
// offset pins down *where* a truncated/hostile input went bad, which is
// what a wire peer needs to debug a corrupt frame.
#define GEMS_RETURN_IF_SHORT(n)                                         \
  do {                                                                  \
    if ((n) > bytes_.size() - pos_)                                     \
      return parse_error("malformed IR: need " + std::to_string(n) +    \
                         " bytes but only " +                           \
                         std::to_string(bytes_.size() - pos_) +         \
                         " remain at byte offset " +                    \
                         std::to_string(pos_));                         \
  } while (0)

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  Result<std::uint8_t> u8() {
    GEMS_RETURN_IF_SHORT(1);
    return bytes_[pos_++];
  }
  Result<std::uint16_t> u16() { return fixed<std::uint16_t>(); }
  Result<std::uint32_t> u32() { return fixed<std::uint32_t>(); }
  Result<std::uint64_t> u64() { return fixed<std::uint64_t>(); }
  Result<std::int64_t> i64() { return fixed<std::int64_t>(); }
  Result<double> f64() { return fixed<double>(); }

  Result<bool> boolean() {
    GEMS_ASSIGN_OR_RETURN(std::uint8_t v, u8());
    return v != 0;
  }

  Result<SourceSpan> span() {
    SourceSpan s;
    GEMS_ASSIGN_OR_RETURN(s.line, u32());
    GEMS_ASSIGN_OR_RETURN(s.column, u32());
    GEMS_ASSIGN_OR_RETURN(s.end_line, u32());
    GEMS_ASSIGN_OR_RETURN(s.end_column, u32());
    return s;
  }

  Result<std::string> str() {
    GEMS_ASSIGN_OR_RETURN(std::uint32_t n, u32());
    // Reject the length prefix against the remaining buffer *before* the
    // string allocation: a mutated 4 GiB length must never reach new[].
    GEMS_RETURN_IF_SHORT(n);
    std::string out(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return out;
  }

  /// Reads an element count and rejects it up front if even one byte per
  /// element would overrun the remaining buffer — so callers may size
  /// containers from it without trusting the wire.
  Result<std::uint32_t> count(const char* what) {
    const std::size_t at = pos_;
    GEMS_ASSIGN_OR_RETURN(std::uint32_t n, u32());
    if (n > bytes_.size() - pos_) {
      return parse_error("malformed IR: " + std::string(what) + " count " +
                         std::to_string(n) + " exceeds remaining " +
                         std::to_string(bytes_.size() - pos_) +
                         " bytes at byte offset " + std::to_string(at));
    }
    return n;
  }

  Result<std::vector<std::string>> strings() {
    GEMS_ASSIGN_OR_RETURN(std::uint32_t n, count("string list"));
    std::vector<std::string> out;
    // Never trust a wire length for allocation (fuzz: a mutated count
    // must not trigger bad_alloc); the loop fails cleanly on truncation.
    out.reserve(std::min<std::uint32_t>(n, 1024));
    for (std::uint32_t i = 0; i < n; ++i) {
      GEMS_ASSIGN_OR_RETURN(std::string s, str());
      out.push_back(std::move(s));
    }
    return out;
  }

  Result<Value> value() {
    GEMS_ASSIGN_OR_RETURN(std::uint8_t tag, u8());
    switch (tag) {
      case 0:
        return Value::null();
      case 1: {
        GEMS_ASSIGN_OR_RETURN(bool b, boolean());
        return Value::boolean(b);
      }
      case 2: {
        GEMS_ASSIGN_OR_RETURN(std::int64_t v, i64());
        return Value::int64(v);
      }
      case 3: {
        GEMS_ASSIGN_OR_RETURN(double v, f64());
        return Value::float64(v);
      }
      case 4: {
        GEMS_ASSIGN_OR_RETURN(std::string s, str());
        return Value::varchar(std::move(s));
      }
      case 5: {
        GEMS_ASSIGN_OR_RETURN(std::int64_t v, i64());
        return Value::date(v);
      }
      default:
        return malformed("value tag");
    }
  }

  Result<DataType> data_type() {
    GEMS_ASSIGN_OR_RETURN(std::uint8_t kind, u8());
    GEMS_ASSIGN_OR_RETURN(std::uint32_t len, u32());
    if (kind > static_cast<std::uint8_t>(TypeKind::kDate)) {
      return malformed("type kind");
    }
    return DataType{static_cast<TypeKind>(kind), len};
  }

  Result<ExprPtr> expr() {
    GEMS_ASSIGN_OR_RETURN(std::uint8_t tag, u8());
    switch (tag) {
      case 0:
        return ExprPtr(nullptr);
      case 1: {
        GEMS_ASSIGN_OR_RETURN(SourceSpan sp, span());
        GEMS_ASSIGN_OR_RETURN(Value v, value());
        return Expr::make_literal(std::move(v), sp.line, sp.column,
                                  sp.end_line, sp.end_column);
      }
      case 2: {
        GEMS_ASSIGN_OR_RETURN(SourceSpan sp, span());
        GEMS_ASSIGN_OR_RETURN(std::string qual, str());
        GEMS_ASSIGN_OR_RETURN(std::string col, str());
        return Expr::make_column(std::move(qual), std::move(col), sp.line,
                                 sp.column, sp.end_line, sp.end_column);
      }
      case 3: {
        GEMS_ASSIGN_OR_RETURN(SourceSpan sp, span());
        GEMS_ASSIGN_OR_RETURN(std::string name, str());
        return Expr::make_parameter(std::move(name), sp.line, sp.column,
                                    sp.end_line, sp.end_column);
      }
      case 4: {
        GEMS_ASSIGN_OR_RETURN(std::uint8_t op, u8());
        GEMS_ASSIGN_OR_RETURN(ExprPtr operand, expr());
        if (!operand) return malformed("unary without operand");
        if (op > static_cast<std::uint8_t>(relational::UnaryOp::kNeg)) {
          return malformed("unary op");
        }
        return Expr::make_unary(static_cast<relational::UnaryOp>(op),
                                std::move(operand));
      }
      case 5: {
        GEMS_ASSIGN_OR_RETURN(std::uint8_t op, u8());
        GEMS_ASSIGN_OR_RETURN(ExprPtr lhs, expr());
        GEMS_ASSIGN_OR_RETURN(ExprPtr rhs, expr());
        if (!lhs || !rhs) return malformed("binary without operands");
        if (op > static_cast<std::uint8_t>(relational::BinaryOp::kDiv)) {
          return malformed("binary op");
        }
        return Expr::make_binary(static_cast<relational::BinaryOp>(op),
                                 std::move(lhs), std::move(rhs));
      }
      default:
        return malformed("expr tag");
    }
  }

  static Status malformed(std::string what) {
    return parse_error("malformed IR: bad " + std::move(what));
  }

  bool at_end() const { return pos_ == bytes_.size(); }
  std::size_t position() const { return pos_; }

 private:
  template <typename T>
  Result<T> fixed() {
    GEMS_RETURN_IF_SHORT(sizeof(T));
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

// ---- Statement encode/decode ---------------------------------------------

enum class StmtTag : std::uint8_t {
  kCreateTable = 1,
  kCreateVertex,
  kCreateEdge,
  kIngest,
  kGraphQuery,
  kTableQuery,
  kOutput,
};

void encode_vertex_step(Writer& w, const VertexStep& v) {
  w.span(v.span);
  w.boolean(v.variant);
  w.str(v.type_name);
  w.str(v.label_ref);
  w.str(v.seed_result);
  w.expr(v.condition);
  w.u8(static_cast<std::uint8_t>(v.label_kind));
  w.str(v.label);
}

Result<VertexStep> decode_vertex_step(Reader& r) {
  VertexStep v;
  GEMS_ASSIGN_OR_RETURN(v.span, r.span());
  GEMS_ASSIGN_OR_RETURN(v.variant, r.boolean());
  GEMS_ASSIGN_OR_RETURN(v.type_name, r.str());
  GEMS_ASSIGN_OR_RETURN(v.label_ref, r.str());
  GEMS_ASSIGN_OR_RETURN(v.seed_result, r.str());
  GEMS_ASSIGN_OR_RETURN(v.condition, r.expr());
  GEMS_ASSIGN_OR_RETURN(std::uint8_t lk, r.u8());
  if (lk > static_cast<std::uint8_t>(LabelKind::kForeach)) {
    return Reader::malformed("label kind");
  }
  v.label_kind = static_cast<LabelKind>(lk);
  GEMS_ASSIGN_OR_RETURN(v.label, r.str());
  return v;
}

void encode_edge_step(Writer& w, const EdgeStep& e) {
  w.span(e.span);
  w.boolean(e.variant);
  w.str(e.type_name);
  w.boolean(e.reversed);
  w.expr(e.condition);
  w.u8(static_cast<std::uint8_t>(e.label_kind));
  w.str(e.label);
}

Result<EdgeStep> decode_edge_step(Reader& r) {
  EdgeStep e;
  GEMS_ASSIGN_OR_RETURN(e.span, r.span());
  GEMS_ASSIGN_OR_RETURN(e.variant, r.boolean());
  GEMS_ASSIGN_OR_RETURN(e.type_name, r.str());
  GEMS_ASSIGN_OR_RETURN(e.reversed, r.boolean());
  GEMS_ASSIGN_OR_RETURN(e.condition, r.expr());
  GEMS_ASSIGN_OR_RETURN(std::uint8_t lk, r.u8());
  if (lk > static_cast<std::uint8_t>(LabelKind::kForeach)) {
    return Reader::malformed("label kind");
  }
  e.label_kind = static_cast<LabelKind>(lk);
  GEMS_ASSIGN_OR_RETURN(e.label, r.str());
  return e;
}

void encode_element(Writer& w, const PathElement& el);

void encode_group(Writer& w, const PathGroup& g) {
  w.span(g.span);
  w.u32(static_cast<std::uint32_t>(g.body.size()));
  for (const auto& el : g.body) encode_element(w, el);
  w.u8(static_cast<std::uint8_t>(g.quant));
  w.u32(g.count);
}

Result<PathGroup> decode_group(Reader& r, int depth);

Result<PathElement> decode_element(Reader& r, int depth) {
  GEMS_ASSIGN_OR_RETURN(std::uint8_t tag, r.u8());
  switch (tag) {
    case 1: {
      GEMS_ASSIGN_OR_RETURN(VertexStep v, decode_vertex_step(r));
      return PathElement(std::move(v));
    }
    case 2: {
      GEMS_ASSIGN_OR_RETURN(EdgeStep e, decode_edge_step(r));
      return PathElement(std::move(e));
    }
    case 3: {
      if (depth > 4) return Reader::malformed("group nesting");
      GEMS_ASSIGN_OR_RETURN(PathGroup g, decode_group(r, depth + 1));
      return PathElement(std::move(g));
    }
    default:
      return Reader::malformed("path element tag");
  }
}

Result<PathGroup> decode_group(Reader& r, int depth) {
  PathGroup g;
  GEMS_ASSIGN_OR_RETURN(g.span, r.span());
  GEMS_ASSIGN_OR_RETURN(std::uint32_t n, r.count("path group"));
  g.body.reserve(std::min<std::uint32_t>(n, 1024));
  for (std::uint32_t i = 0; i < n; ++i) {
    GEMS_ASSIGN_OR_RETURN(PathElement el, decode_element(r, depth));
    g.body.push_back(std::move(el));
  }
  GEMS_ASSIGN_OR_RETURN(std::uint8_t q, r.u8());
  if (q > static_cast<std::uint8_t>(PathGroup::Quant::kExact)) {
    return Reader::malformed("group quantifier");
  }
  g.quant = static_cast<PathGroup::Quant>(q);
  GEMS_ASSIGN_OR_RETURN(g.count, r.u32());
  return g;
}

void encode_element(Writer& w, const PathElement& el) {
  if (const auto* v = std::get_if<VertexStep>(&el)) {
    w.u8(1);
    encode_vertex_step(w, *v);
  } else if (const auto* e = std::get_if<EdgeStep>(&el)) {
    w.u8(2);
    encode_edge_step(w, *e);
  } else {
    w.u8(3);
    encode_group(w, std::get<PathGroup>(el));
  }
}

void encode_statement(Writer& w, const Statement& stmt) {
  if (const auto* s = std::get_if<CreateTableStmt>(&stmt)) {
    w.u8(static_cast<std::uint8_t>(StmtTag::kCreateTable));
    w.str(s->name);
    w.u32(static_cast<std::uint32_t>(s->columns.size()));
    for (const auto& c : s->columns) {
      w.str(c.name);
      w.data_type(c.type);
    }
    return;
  }
  if (const auto* s = std::get_if<CreateVertexStmt>(&stmt)) {
    w.u8(static_cast<std::uint8_t>(StmtTag::kCreateVertex));
    w.str(s->decl.name);
    w.strings(s->decl.key_columns);
    w.str(s->decl.table);
    w.expr(s->decl.where);
    return;
  }
  if (const auto* s = std::get_if<CreateEdgeStmt>(&stmt)) {
    w.u8(static_cast<std::uint8_t>(StmtTag::kCreateEdge));
    w.str(s->decl.name);
    w.str(s->decl.source.vertex_type);
    w.str(s->decl.source.alias);
    w.str(s->decl.target.vertex_type);
    w.str(s->decl.target.alias);
    w.strings(s->decl.assoc_tables);
    w.expr(s->decl.where);
    return;
  }
  if (const auto* s = std::get_if<IngestStmt>(&stmt)) {
    w.u8(static_cast<std::uint8_t>(StmtTag::kIngest));
    w.str(s->table);
    w.str(s->path);
    w.boolean(s->has_header);
    return;
  }
  if (const auto* s = std::get_if<OutputStmt>(&stmt)) {
    w.u8(static_cast<std::uint8_t>(StmtTag::kOutput));
    w.str(s->table);
    w.str(s->path);
    return;
  }
  if (const auto* s = std::get_if<GraphQueryStmt>(&stmt)) {
    w.u8(static_cast<std::uint8_t>(StmtTag::kGraphQuery));
    w.u32(static_cast<std::uint32_t>(s->targets.size()));
    for (const auto& t : s->targets) {
      w.span(t.span);
      w.boolean(t.star);
      w.str(t.qualifier);
      w.str(t.column);
      w.str(t.alias);
    }
    w.u32(static_cast<std::uint32_t>(s->or_groups.size()));
    for (const auto& group : s->or_groups) {
      w.u32(static_cast<std::uint32_t>(group.size()));
      for (const auto& path : group) {
        w.u32(static_cast<std::uint32_t>(path.elements.size()));
        for (const auto& el : path.elements) encode_element(w, el);
      }
    }
    w.u8(static_cast<std::uint8_t>(s->into));
    w.str(s->into_name);
    return;
  }
  if (const auto* s = std::get_if<TableQueryStmt>(&stmt)) {
    w.u8(static_cast<std::uint8_t>(StmtTag::kTableQuery));
    w.u32(static_cast<std::uint32_t>(s->items.size()));
    for (const auto& item : s->items) {
      w.span(item.span);
      w.boolean(item.star);
      w.u8(static_cast<std::uint8_t>(item.agg));
      w.expr(item.expr);
      w.str(item.alias);
    }
    w.u64(s->top_n);
    w.boolean(s->distinct);
    w.str(s->from_table);
    w.expr(s->where);
    w.strings(s->group_by);
    w.u32(static_cast<std::uint32_t>(s->order_by.size()));
    for (const auto& o : s->order_by) {
      w.span(o.span);
      w.str(o.column);
      w.boolean(o.descending);
    }
    w.u8(static_cast<std::uint8_t>(s->into));
    w.str(s->into_name);
    return;
  }
  GEMS_UNREACHABLE("unhandled statement kind");
}

Result<Statement> decode_statement(Reader& r) {
  GEMS_ASSIGN_OR_RETURN(std::uint8_t tag, r.u8());
  switch (static_cast<StmtTag>(tag)) {
    case StmtTag::kCreateTable: {
      CreateTableStmt s;
      GEMS_ASSIGN_OR_RETURN(s.name, r.str());
      GEMS_ASSIGN_OR_RETURN(std::uint32_t n, r.count("column list"));
      for (std::uint32_t i = 0; i < n; ++i) {
        storage::ColumnDef def;
        GEMS_ASSIGN_OR_RETURN(def.name, r.str());
        GEMS_ASSIGN_OR_RETURN(def.type, r.data_type());
        s.columns.push_back(std::move(def));
      }
      return Statement(std::move(s));
    }
    case StmtTag::kCreateVertex: {
      CreateVertexStmt s;
      GEMS_ASSIGN_OR_RETURN(s.decl.name, r.str());
      GEMS_ASSIGN_OR_RETURN(s.decl.key_columns, r.strings());
      GEMS_ASSIGN_OR_RETURN(s.decl.table, r.str());
      GEMS_ASSIGN_OR_RETURN(s.decl.where, r.expr());
      return Statement(std::move(s));
    }
    case StmtTag::kCreateEdge: {
      CreateEdgeStmt s;
      GEMS_ASSIGN_OR_RETURN(s.decl.name, r.str());
      GEMS_ASSIGN_OR_RETURN(s.decl.source.vertex_type, r.str());
      GEMS_ASSIGN_OR_RETURN(s.decl.source.alias, r.str());
      GEMS_ASSIGN_OR_RETURN(s.decl.target.vertex_type, r.str());
      GEMS_ASSIGN_OR_RETURN(s.decl.target.alias, r.str());
      GEMS_ASSIGN_OR_RETURN(s.decl.assoc_tables, r.strings());
      GEMS_ASSIGN_OR_RETURN(s.decl.where, r.expr());
      return Statement(std::move(s));
    }
    case StmtTag::kIngest: {
      IngestStmt s;
      GEMS_ASSIGN_OR_RETURN(s.table, r.str());
      GEMS_ASSIGN_OR_RETURN(s.path, r.str());
      GEMS_ASSIGN_OR_RETURN(s.has_header, r.boolean());
      return Statement(std::move(s));
    }
    case StmtTag::kOutput: {
      OutputStmt s;
      GEMS_ASSIGN_OR_RETURN(s.table, r.str());
      GEMS_ASSIGN_OR_RETURN(s.path, r.str());
      return Statement(std::move(s));
    }
    case StmtTag::kGraphQuery: {
      GraphQueryStmt s;
      GEMS_ASSIGN_OR_RETURN(std::uint32_t nt, r.count("select targets"));
      for (std::uint32_t i = 0; i < nt; ++i) {
        SelectTarget t;
        GEMS_ASSIGN_OR_RETURN(t.span, r.span());
        GEMS_ASSIGN_OR_RETURN(t.star, r.boolean());
        GEMS_ASSIGN_OR_RETURN(t.qualifier, r.str());
        GEMS_ASSIGN_OR_RETURN(t.column, r.str());
        GEMS_ASSIGN_OR_RETURN(t.alias, r.str());
        s.targets.push_back(std::move(t));
      }
      GEMS_ASSIGN_OR_RETURN(std::uint32_t ng, r.count("or-groups"));
      for (std::uint32_t g = 0; g < ng; ++g) {
        GEMS_ASSIGN_OR_RETURN(std::uint32_t np, r.count("paths"));
        std::vector<PathPattern> group;
        for (std::uint32_t p = 0; p < np; ++p) {
          GEMS_ASSIGN_OR_RETURN(std::uint32_t ne, r.count("path elements"));
          PathPattern path;
          for (std::uint32_t e = 0; e < ne; ++e) {
            GEMS_ASSIGN_OR_RETURN(PathElement el, decode_element(r, 0));
            path.elements.push_back(std::move(el));
          }
          group.push_back(std::move(path));
        }
        s.or_groups.push_back(std::move(group));
      }
      GEMS_ASSIGN_OR_RETURN(std::uint8_t into, r.u8());
      if (into > static_cast<std::uint8_t>(IntoKind::kTable)) {
        return Reader::malformed("into kind");
      }
      s.into = static_cast<IntoKind>(into);
      GEMS_ASSIGN_OR_RETURN(s.into_name, r.str());
      return Statement(std::move(s));
    }
    case StmtTag::kTableQuery: {
      TableQueryStmt s;
      GEMS_ASSIGN_OR_RETURN(std::uint32_t ni, r.count("select items"));
      for (std::uint32_t i = 0; i < ni; ++i) {
        SelectItem item;
        GEMS_ASSIGN_OR_RETURN(item.span, r.span());
        GEMS_ASSIGN_OR_RETURN(item.star, r.boolean());
        GEMS_ASSIGN_OR_RETURN(std::uint8_t agg, r.u8());
        if (agg > static_cast<std::uint8_t>(AggFunc::kMax)) {
          return Reader::malformed("aggregate function");
        }
        item.agg = static_cast<AggFunc>(agg);
        GEMS_ASSIGN_OR_RETURN(item.expr, r.expr());
        GEMS_ASSIGN_OR_RETURN(item.alias, r.str());
        s.items.push_back(std::move(item));
      }
      GEMS_ASSIGN_OR_RETURN(s.top_n, r.u64());
      GEMS_ASSIGN_OR_RETURN(s.distinct, r.boolean());
      GEMS_ASSIGN_OR_RETURN(s.from_table, r.str());
      GEMS_ASSIGN_OR_RETURN(s.where, r.expr());
      GEMS_ASSIGN_OR_RETURN(s.group_by, r.strings());
      GEMS_ASSIGN_OR_RETURN(std::uint32_t no, r.count("order-by list"));
      for (std::uint32_t i = 0; i < no; ++i) {
        OrderItem o;
        GEMS_ASSIGN_OR_RETURN(o.span, r.span());
        GEMS_ASSIGN_OR_RETURN(o.column, r.str());
        GEMS_ASSIGN_OR_RETURN(o.descending, r.boolean());
        s.order_by.push_back(std::move(o));
      }
      GEMS_ASSIGN_OR_RETURN(std::uint8_t into, r.u8());
      if (into > static_cast<std::uint8_t>(IntoKind::kTable)) {
        return Reader::malformed("into kind");
      }
      s.into = static_cast<IntoKind>(into);
      GEMS_ASSIGN_OR_RETURN(s.into_name, r.str());
      return Statement(std::move(s));
    }
    default:
      return Reader::malformed("statement tag");
  }
}

}  // namespace

std::vector<std::uint8_t> encode_script(const Script& script) {
  Writer w;
  w.u32(kIrMagic);
  w.u16(kIrVersion);
  w.u32(static_cast<std::uint32_t>(script.statements.size()));
  for (const auto& stmt : script.statements) {
    // Statement spans ride in the script frame (IR v2) so each decoded
    // statement diagnoses at its original source location.
    w.span(statement_span(stmt));
    encode_statement(w, stmt);
  }
  return w.take();
}

Result<Script> decode_script(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  GEMS_ASSIGN_OR_RETURN(std::uint32_t magic, r.u32());
  if (magic != kIrMagic) return parse_error("not a GraQL IR blob");
  GEMS_ASSIGN_OR_RETURN(std::uint16_t version, r.u16());
  if (version != kIrVersion) {
    return parse_error("unsupported IR version " + std::to_string(version));
  }
  GEMS_ASSIGN_OR_RETURN(std::uint32_t n, r.count("statement list"));
  Script script;
  script.statements.reserve(std::min<std::uint32_t>(n, 1024));
  for (std::uint32_t i = 0; i < n; ++i) {
    GEMS_ASSIGN_OR_RETURN(SourceSpan sp, r.span());
    GEMS_ASSIGN_OR_RETURN(Statement stmt, decode_statement(r));
    std::visit([&](auto& st) { st.span = sp; }, stmt);
    script.statements.push_back(std::move(stmt));
  }
  if (!r.at_end()) return parse_error("trailing bytes after IR script");
  return script;
}

void encode_value(const storage::Value& v, std::vector<std::uint8_t>& out) {
  Writer w;
  w.value(v);
  std::vector<std::uint8_t> bytes = w.take();
  out.insert(out.end(), bytes.begin(), bytes.end());
}

Result<storage::Value> decode_value(std::span<const std::uint8_t> bytes,
                                    std::size_t& pos) {
  if (pos > bytes.size()) {
    return parse_error("malformed value: offset " + std::to_string(pos) +
                       " past end of " + std::to_string(bytes.size()) +
                       " bytes");
  }
  Reader r(bytes.subspan(pos));
  GEMS_ASSIGN_OR_RETURN(Value v, r.value());
  pos += r.position();
  return v;
}

std::vector<std::uint8_t> encode_params(const relational::ParamMap& params) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(params.size()));
  for (const auto& [name, value] : params) {
    w.str(name);
    w.value(value);
  }
  return w.take();
}

Result<relational::ParamMap> decode_params(
    std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  GEMS_ASSIGN_OR_RETURN(std::uint32_t n, r.count("parameter map"));
  relational::ParamMap params;
  for (std::uint32_t i = 0; i < n; ++i) {
    GEMS_ASSIGN_OR_RETURN(std::string name, r.str());
    GEMS_ASSIGN_OR_RETURN(Value value, r.value());
    params.insert_or_assign(std::move(name), std::move(value));
  }
  if (!r.at_end()) return parse_error("trailing bytes after parameter map");
  return params;
}

}  // namespace gems::graql
