#include "bsbm/queries.hpp"

namespace gems::bsbm {

std::string berlin_q1() {
  // Fig. 7, verbatim structure.
  return R"(
select TypeVtx.id from graph
  PersonVtx (country = %Country2%)
  <--reviewer-- ReviewVtx ()
  --reviewFor--> foreach y: ProductVtx ()
  --producer--> ProducerVtx (country = %Country1%)
and
  (y --type--> TypeVtx ())
into table Q1T

select top 10 id, count(*) as groupCount
from table Q1T
group by id order by groupCount desc, id
)";
}

std::string berlin_q2() {
  // Fig. 6, verbatim structure.
  return R"(
select y.id from graph
  ProductVtx (id = %Product1%)
  --feature--> FeatureVtx ( )
  <--feature-- def y: ProductVtx (id <> %Product1%)
into table Q2T

select top 10 id, count(*) as groupCount
from table Q2T
group by id order by groupCount desc, id
)";
}

std::string berlin_q3() {
  return R"(
select OfferVtx.id, OfferVtx.price, VendorVtx.country from graph
  TypeVtx (id = %Type1%)
  <--type-- ProductVtx ()
  <--product-- OfferVtx ()
  --vendor--> VendorVtx ()
into table Q3T

select top 10 id, price, country from table Q3T order by price, id
)";
}

std::string berlin_q4() {
  // The Fig. 4/5 many-to-one export view, aggregated.
  return R"(
select P.country as exporter, V.country as importer from graph
  def P: ProducerCountry () --export--> def V: VendorCountry ()
into table Q4T

select exporter, importer, count(*) as flows from table Q4T
group by exporter, importer order by flows desc, exporter, importer
)";
}

std::string berlin_q5() {
  return R"(
select ProductVtx.id, ReviewVtx.ratings_1 from graph
  ReviewVtx () --reviewFor--> ProductVtx ()
into table Q5T

select top 10 id, avg(ratings_1) as score, count(*) as n from table Q5T
group by id order by score desc, id
)";
}

std::string berlin_q6() {
  return R"(
select PersonVtx.country from graph
  ProducerVtx (id = %Producer1%)
  <--producer-- ProductVtx ()
  <--reviewFor-- ReviewVtx ()
  --reviewer--> PersonVtx ()
into table Q6T

select distinct country from table Q6T order by country
)";
}

std::string berlin_q7() {
  return R"(
select VendorVtx.id, OfferVtx.price from graph
  OfferVtx (validFrom <= %Date1% and validTo >= %Date1%
            and deliveryDays <= 3)
  --vendor--> VendorVtx ()
into table Q7T

select id, avg(price) as meanPrice, count(*) as offers from table Q7T
group by id order by meanPrice desc, id
)";
}

std::string berlin_q8() {
  // Fig. 9 neighborhood + Fig. 11/12 chaining: grab everything attached
  // to the product, then restrict to its offers and list their vendors.
  return R"(
select * from graph
  ProductVtx (id = %Product1%) <--[]-- [ ]
into subgraph Q8Neighborhood

select OfferVtx from graph
  Q8Neighborhood.ProductVtx () <--product-- OfferVtx ()
into subgraph Q8Offers

select OfferVtx.id, VendorVtx.id as vendor from graph
  Q8Offers.OfferVtx () --vendor--> VendorVtx ()
into table Q8T

select * from table Q8T order by id
)";
}

std::string berlin_q9() {
  // Fig. 10: regex over the subclass hierarchy — products typed with
  // %Type1% or any strict descendant of it. The descendant set comes from
  // a regex path; the direct type is unioned in with or-composition.
  return R"(
select TypeVtx from graph
  TypeVtx () ( --subclass--> [ ] )* --subclass--> TypeVtx (id = %Type1%)
into subgraph Q9Descendants

select ProductVtx.id from graph
  Q9Descendants.TypeVtx () <--type-- ProductVtx ()
or
  TypeVtx (id = %Type1%) <--type-- ProductVtx ()
into table Q9T

select distinct id from table Q9T order by id
)";
}

std::vector<NamedQuery> all_queries() {
  return {
      {"Q1", berlin_q1(), {"Country1", "Country2"}},
      {"Q2", berlin_q2(), {"Product1"}},
      {"Q3", berlin_q3(), {"Type1"}},
      {"Q4", berlin_q4(), {}},
      {"Q5", berlin_q5(), {}},
      {"Q6", berlin_q6(), {"Producer1"}},
      {"Q7", berlin_q7(), {"Date1"}},
      {"Q8", berlin_q8(), {"Product1"}},
      {"Q9", berlin_q9(), {"Type1"}},
  };
}

}  // namespace gems::bsbm
