#include "bsbm/schema.hpp"

namespace gems::bsbm {

std::string table_ddl() {
  // Appendix A, verbatim modulo comment syntax.
  return R"(
create table Types(
  id varchar(10),
  type varchar(10),
  comment varchar(255),
  subclassOf varchar(10),
  publisher varchar(10),
  date date
)

create table Features(
  id varchar(10),
  type varchar(10),
  label varchar(10),
  comment varchar(255),
  publisher varchar(10),
  date date
)

create table Producers(
  id varchar(10),
  type varchar(10),
  label varchar(10),
  comment varchar(255),
  homepage varchar(10),
  country varchar(10),
  publisher varchar(10),
  date date
)

create table Products(
  id varchar(10),
  type varchar(10),
  label varchar(10),
  comment varchar(255),
  producer varchar(10),
  propertyNumeric_1 integer,
  propertyNumeric_2 integer,
  propertyNumeric_3 integer,
  propertyNumeric_4 integer,
  propertyNumeric_5 integer,
  propertyText_1 varchar(10),
  propertyText_2 varchar(10),
  propertyText_3 varchar(10),
  propertyText_4 varchar(10),
  propertyText_5 varchar(10),
  publisher varchar(10),
  date date
)

create table Vendors(
  id varchar(10),
  type varchar(10),
  label varchar(10),
  comment varchar(255),
  homepage varchar(10),
  country varchar(10),
  publisher varchar(10),
  date date
)

create table Offers(
  id varchar(10),
  type varchar(10),
  product varchar(10),
  vendor varchar(10),
  price float,
  validFrom date,
  validTo date,
  deliveryDays integer,
  offerWebPage varchar(10),
  publisher varchar(10),
  date date
)

create table Persons(
  id varchar(10),
  type varchar(10),
  name varchar(10),
  mailbox varchar(10),
  country varchar(10),
  publisher varchar(10),
  date date
)

create table Reviews(
  id varchar(10),
  type varchar(10),
  reviewFor varchar(10),
  reviewer varchar(10),
  reviewDate date,
  title varchar(10),
  text varchar(10),
  ratings_1 integer,
  ratings_2 integer,
  ratings_3 integer,
  ratings_4 integer,
  publisher varchar(10),
  date date
)

create table ProductTypes(
  product varchar(10),
  type varchar(10)
)

create table ProductFeatures(
  product varchar(10),
  feature varchar(10)
)
)";
}

std::string vertex_ddl() {
  // Fig. 2.
  return R"(
create vertex TypeVtx(id) from table Types
create vertex FeatureVtx(id) from table Features
create vertex ProducerVtx(id) from table Producers
create vertex ProductVtx(id) from table Products
create vertex VendorVtx(id) from table Vendors
create vertex OfferVtx(id) from table Offers
create vertex PersonVtx(id) from table Persons
create vertex ReviewVtx(id) from table Reviews
)";
}

std::string edge_ddl() {
  // Fig. 3.
  return R"(
create edge subclass with
  vertices (TypeVtx as A, TypeVtx as B)
  where A.subclassOf = B.id

create edge producer with
  vertices (ProductVtx, ProducerVtx)
  where ProductVtx.producer = ProducerVtx.id

create edge type with
  vertices (ProductVtx, TypeVtx)
  from table ProductTypes
  where ProductTypes.product = ProductVtx.id
    and ProductTypes.type = TypeVtx.id

create edge feature with
  vertices (ProductVtx, FeatureVtx)
  from table ProductFeatures
  where ProductFeatures.product = ProductVtx.id
    and ProductFeatures.feature = FeatureVtx.id

create edge product with
  vertices (OfferVtx, ProductVtx)
  where OfferVtx.product = ProductVtx.id

create edge vendor with
  vertices (OfferVtx, VendorVtx)
  where OfferVtx.vendor = VendorVtx.id

create edge reviewFor with
  vertices (ReviewVtx, ProductVtx)
  where ReviewVtx.reviewFor = ProductVtx.id

create edge reviewer with
  vertices (ReviewVtx, PersonVtx)
  where ReviewVtx.reviewer = PersonVtx.id
)";
}

std::string country_ddl() {
  // Fig. 4: many-to-one country vertices and the export edge — one edge
  // per (producer country, vendor country) pair with a product produced
  // in the first and offered in the second (Fig. 5's collapse).
  return R"(
create vertex ProducerCountry(country) from table Producers
create vertex VendorCountry(country) from table Vendors

create edge export with
  vertices (ProducerCountry as P, VendorCountry as V)
  from table Products, Offers
  where Products.producer = P.id
    and Offers.product = Products.id
    and Offers.vendor = V.id
    and P.country <> V.country
)";
}

std::string full_ddl(bool with_country_view) {
  std::string out = table_ddl();
  out += vertex_ddl();
  out += edge_ddl();
  if (with_country_view) out += country_ddl();
  return out;
}

}  // namespace gems::bsbm
