// The Berlin SPARQL Benchmark (BSBM) schema exactly as declared in the
// paper's Appendix A, plus the graph view of Figs. 1-4, as GraQL DDL text.
// Executing these through Database::run_script reproduces the paper's
// data-definition figures end to end.
#pragma once

#include <string>

namespace gems::bsbm {

/// Appendix A: the ten table declarations (Types, Features, Producers,
/// Products, Vendors, Offers, Persons, Reviews + the relation tables
/// ProductTypes and ProductFeatures).
std::string table_ddl();

/// Fig. 2: the eight vertex declarations.
std::string vertex_ddl();

/// Fig. 3: the nine edge declarations (subclass, producer, type, feature,
/// product, vendor, reviewFor, reviewer).
std::string edge_ddl();

/// Fig. 4: the many-to-one country vertices and the export edge.
std::string country_ddl();

/// Everything above, in order.
std::string full_ddl(bool with_country_view = true);

}  // namespace gems::bsbm
