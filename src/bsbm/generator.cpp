#include "bsbm/generator.hpp"

#include <algorithm>

#include "bsbm/schema.hpp"
#include "common/prng.hpp"
#include "storage/csv.hpp"

namespace gems::bsbm {

using storage::Table;
using storage::TablePtr;
using storage::Value;

GeneratorConfig GeneratorConfig::derive(std::size_t num_products,
                                        std::uint64_t seed) {
  GeneratorConfig c;
  c.num_products = num_products;
  c.seed = seed;
  c.num_producers = std::max<std::size_t>(2, num_products / 25);
  c.num_features = std::max<std::size_t>(8, 10 + num_products / 5);
  c.num_types = std::max<std::size_t>(5, num_products / 20);
  c.num_vendors = std::max<std::size_t>(2, num_products / 20);
  c.num_persons = std::max<std::size_t>(3, num_products / 10);
  return c;
}

std::string product_id(std::size_t i) { return "p" + std::to_string(i); }
std::string producer_id(std::size_t i) { return "pr" + std::to_string(i); }
std::string feature_id(std::size_t i) { return "f" + std::to_string(i); }
std::string type_id(std::size_t i) { return "t" + std::to_string(i); }
std::string vendor_id(std::size_t i) { return "v" + std::to_string(i); }
std::string offer_id(std::size_t i) { return "o" + std::to_string(i); }
std::string person_id(std::size_t i) { return "u" + std::to_string(i); }
std::string review_id(std::size_t i) { return "r" + std::to_string(i); }

const std::vector<std::string>& countries() {
  static const std::vector<std::string> kCountries = {
      "US", "DE", "CN", "JP", "UK", "FR", "RU", "IT", "BR", "IN"};
  return kCountries;
}

namespace {

const std::int64_t kEpoch2008 = storage::civil_to_days(2008, 1, 1);

/// Skewed country pick: P(country i) ∝ 1/(i+1).
std::string pick_country(Xoshiro256& rng) {
  static const std::vector<double> cumulative = [] {
    std::vector<double> c;
    double sum = 0;
    for (std::size_t i = 0; i < countries().size(); ++i) {
      sum += 1.0 / static_cast<double>(i + 1);
      c.push_back(sum);
    }
    for (auto& v : c) v /= sum;
    return c;
  }();
  const double u = rng.uniform();
  for (std::size_t i = 0; i < cumulative.size(); ++i) {
    if (u <= cumulative[i]) return countries()[i];
  }
  return countries().back();
}

/// Skewed feature pick so that popular features are shared by many
/// products (drives the Fig. 6 similarity query): index ~ u^2 * n.
std::size_t pick_feature(Xoshiro256& rng, std::size_t n) {
  const double u = rng.uniform();
  return std::min<std::size_t>(n - 1, static_cast<std::size_t>(u * u * n));
}

Value date_in_2008(Xoshiro256& rng) {
  return Value::date(kEpoch2008 + rng.range(0, 364));
}

Value vc(std::string s) { return Value::varchar(std::move(s)); }

}  // namespace

Result<DatasetCounts> generate(server::Database& db,
                               const GeneratorConfig& config_in) {
  GeneratorConfig config = config_in;
  if (config.num_producers == 0) {
    config = GeneratorConfig::derive(config_in.num_products, config_in.seed);
    config.offers_per_product = config_in.offers_per_product;
    config.reviews_per_product = config_in.reviews_per_product;
    config.features_per_product = config_in.features_per_product;
  }
  Xoshiro256 rng(config.seed);
  DatasetCounts counts;

  auto table = [&](const char* name) -> Result<TablePtr> {
    return db.tables().find(name);
  };

  // ---- Types: a shallow tree with branching factor 4 -------------------
  {
    GEMS_ASSIGN_OR_RETURN(TablePtr t, table("Types"));
    for (std::size_t i = 0; i < config.num_types; ++i) {
      const std::string parent = i == 0 ? "" : type_id((i - 1) / 4);
      t->append_row_unchecked(std::vector<Value>{
          vc(type_id(i)), vc("PType"), vc("type " + type_id(i)),
          i == 0 ? Value::null() : vc(parent), vc("gen"),
          date_in_2008(rng)});
    }
    counts.types = config.num_types;
  }

  // ---- Features ----------------------------------------------------------
  {
    GEMS_ASSIGN_OR_RETURN(TablePtr t, table("Features"));
    for (std::size_t i = 0; i < config.num_features; ++i) {
      t->append_row_unchecked(std::vector<Value>{
          vc(feature_id(i)), vc("PFeature"), vc("F" + std::to_string(i % 100)),
          vc("feature " + feature_id(i)), vc("gen"), date_in_2008(rng)});
    }
    counts.features = config.num_features;
  }

  // ---- Producers ----------------------------------------------------------
  {
    GEMS_ASSIGN_OR_RETURN(TablePtr t, table("Producers"));
    for (std::size_t i = 0; i < config.num_producers; ++i) {
      t->append_row_unchecked(std::vector<Value>{
          vc(producer_id(i)), vc("Producer"),
          vc("P" + std::to_string(i % 100)), vc("producer"), vc("hp"),
          vc(pick_country(rng)), vc("gen"), date_in_2008(rng)});
    }
    counts.producers = config.num_producers;
  }

  // ---- Products + ProductTypes + ProductFeatures -------------------------
  {
    GEMS_ASSIGN_OR_RETURN(TablePtr products, table("Products"));
    GEMS_ASSIGN_OR_RETURN(TablePtr ptypes, table("ProductTypes"));
    GEMS_ASSIGN_OR_RETURN(TablePtr pfeatures, table("ProductFeatures"));
    for (std::size_t i = 0; i < config.num_products; ++i) {
      std::vector<Value> row;
      row.reserve(17);
      row.push_back(vc(product_id(i)));
      row.push_back(vc("Product"));
      row.push_back(vc("L" + std::to_string(i % 1000)));
      row.push_back(vc("product " + product_id(i)));
      row.push_back(vc(producer_id(rng.below(config.num_producers))));
      for (int k = 0; k < 5; ++k) {
        row.push_back(Value::int64(rng.range(1, 2000)));
      }
      for (int k = 0; k < 5; ++k) {
        row.push_back(vc("tx" + std::to_string(rng.below(1000))));
      }
      row.push_back(vc("gen"));
      row.push_back(date_in_2008(rng));
      products->append_row_unchecked(row);

      // 1-2 direct types (deeper semantics come from subclass edges).
      const std::size_t n_types = 1 + rng.below(2);
      std::size_t last_type = config.num_types;
      for (std::size_t k = 0; k < n_types; ++k) {
        const std::size_t ty = rng.below(config.num_types);
        if (ty == last_type) continue;
        last_type = ty;
        ptypes->append_row_unchecked(
            std::vector<Value>{vc(product_id(i)), vc(type_id(ty))});
        ++counts.product_types;
      }

      // Distinct features per product, skew-shared.
      const std::size_t n_feat =
          1 + rng.below(2 * config.features_per_product);
      std::vector<std::size_t> chosen;
      for (std::size_t k = 0; k < n_feat; ++k) {
        const std::size_t f = pick_feature(rng, config.num_features);
        if (std::find(chosen.begin(), chosen.end(), f) != chosen.end()) {
          continue;
        }
        chosen.push_back(f);
        pfeatures->append_row_unchecked(
            std::vector<Value>{vc(product_id(i)), vc(feature_id(f))});
        ++counts.product_features;
      }
    }
    counts.products = config.num_products;
  }

  // ---- Vendors -------------------------------------------------------------
  {
    GEMS_ASSIGN_OR_RETURN(TablePtr t, table("Vendors"));
    for (std::size_t i = 0; i < config.num_vendors; ++i) {
      t->append_row_unchecked(std::vector<Value>{
          vc(vendor_id(i)), vc("Vendor"), vc("V" + std::to_string(i % 100)),
          vc("vendor"), vc("hp"), vc(pick_country(rng)), vc("gen"),
          date_in_2008(rng)});
    }
    counts.vendors = config.num_vendors;
  }

  // ---- Offers ---------------------------------------------------------------
  {
    GEMS_ASSIGN_OR_RETURN(TablePtr t, table("Offers"));
    std::size_t next = 0;
    for (std::size_t p = 0; p < config.num_products; ++p) {
      const std::size_t n =
          rng.below(static_cast<std::uint64_t>(2 * config.offers_per_product) +
                    1);
      for (std::size_t k = 0; k < n; ++k) {
        const std::int64_t from = kEpoch2008 + rng.range(0, 300);
        t->append_row_unchecked(std::vector<Value>{
            vc(offer_id(next)), vc("Offer"), vc(product_id(p)),
            vc(vendor_id(rng.below(config.num_vendors))),
            Value::float64(5.0 + rng.uniform() * rng.uniform() * 10000.0),
            Value::date(from), Value::date(from + rng.range(10, 90)),
            Value::int64(rng.range(1, 14)), vc("web"), vc("gen"),
            date_in_2008(rng)});
        ++next;
      }
    }
    counts.offers = next;
  }

  // ---- Persons ---------------------------------------------------------------
  {
    GEMS_ASSIGN_OR_RETURN(TablePtr t, table("Persons"));
    for (std::size_t i = 0; i < config.num_persons; ++i) {
      t->append_row_unchecked(std::vector<Value>{
          vc(person_id(i)), vc("Person"), vc("N" + std::to_string(i % 100)),
          vc("mb"), vc(pick_country(rng)), vc("gen"), date_in_2008(rng)});
    }
    counts.persons = config.num_persons;
  }

  // ---- Reviews ---------------------------------------------------------------
  {
    GEMS_ASSIGN_OR_RETURN(TablePtr t, table("Reviews"));
    std::size_t next = 0;
    for (std::size_t p = 0; p < config.num_products; ++p) {
      const std::size_t n = rng.below(
          static_cast<std::uint64_t>(2 * config.reviews_per_product) + 1);
      for (std::size_t k = 0; k < n; ++k) {
        auto rating = [&]() {
          // BSBM: some ratings are missing.
          return rng.chance(0.2) ? Value::null()
                                 : Value::int64(rng.range(1, 10));
        };
        t->append_row_unchecked(std::vector<Value>{
            vc(review_id(next)), vc("Review"), vc(product_id(p)),
            vc(person_id(rng.below(config.num_persons))), date_in_2008(rng),
            vc("T" + std::to_string(next % 100)), vc("txt"), rating(),
            rating(), rating(), rating(), vc("gen"), date_in_2008(rng)});
        ++next;
      }
    }
    counts.reviews = next;
  }

  // Paper Sec. II-A2: populating tables triggers regeneration of the
  // derived vertex/edge instances. The generator mutated the live context
  // directly, so re-publish it as a fresh epoch for the read paths.
  GEMS_RETURN_IF_ERROR(db.context().rebuild_graph());
  db.refresh_epoch();
  return counts;
}

Status write_csv_files(const server::Database& db, const std::string& dir) {
  for (const auto& name : db.tables().names()) {
    GEMS_ASSIGN_OR_RETURN(TablePtr t, db.tables().find(name));
    GEMS_RETURN_IF_ERROR(
        storage::write_csv_file(*t, dir + "/" + name + ".csv"));
  }
  return Status::ok();
}

Result<std::unique_ptr<server::Database>> make_populated_database(
    const GeneratorConfig& config, server::DatabaseOptions options) {
  auto db = std::make_unique<server::Database>(std::move(options));
  auto ddl = db->run_script(full_ddl());
  GEMS_RETURN_IF_ERROR(ddl.status());
  GEMS_ASSIGN_OR_RETURN(DatasetCounts counts, generate(*db, config));
  (void)counts;
  return db;
}

}  // namespace gems::bsbm
