// Deterministic synthetic data generator for the Berlin schema — the
// substitution for the BSBM dataset files (see DESIGN.md §1). Entity
// ratios follow the BSBM e-commerce model: few producers/vendors, many
// offers and reviews per product, a shallow type hierarchy, and shared
// product features (which is what gives Berlin Query 2 its selectivity
// shape). Everything derives from a single seed.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "server/database.hpp"

namespace gems::bsbm {

struct GeneratorConfig {
  std::size_t num_products = 1000;  // the scale factor
  std::uint64_t seed = 42;

  // Derived entity counts (computed by derive()); override after calling
  // derive() for custom shapes.
  std::size_t num_producers = 0;
  std::size_t num_features = 0;
  std::size_t num_types = 0;
  std::size_t num_vendors = 0;
  std::size_t num_persons = 0;
  double offers_per_product = 5.0;
  double reviews_per_product = 3.0;
  std::size_t features_per_product = 5;

  /// Fills the derived counts from num_products using BSBM-like ratios.
  static GeneratorConfig derive(std::size_t num_products,
                                std::uint64_t seed = 42);
};

struct DatasetCounts {
  std::size_t products = 0;
  std::size_t producers = 0;
  std::size_t features = 0;
  std::size_t types = 0;
  std::size_t vendors = 0;
  std::size_t offers = 0;
  std::size_t persons = 0;
  std::size_t reviews = 0;
  std::size_t product_types = 0;
  std::size_t product_features = 0;

  std::size_t total_rows() const {
    return products + producers + features + types + vendors + offers +
           persons + reviews + product_types + product_features;
  }
};

/// Entity id helpers ("p17", "pr3", ...), shared with the query mix.
std::string product_id(std::size_t i);
std::string producer_id(std::size_t i);
std::string feature_id(std::size_t i);
std::string type_id(std::size_t i);
std::string vendor_id(std::size_t i);
std::string offer_id(std::size_t i);
std::string person_id(std::size_t i);
std::string review_id(std::size_t i);

/// The country vocabulary (skewed: earlier entries are more common).
const std::vector<std::string>& countries();

/// Populates the (already declared, empty) Berlin tables of `db` and
/// rebuilds the derived graph. Returns the realized counts.
Result<DatasetCounts> generate(server::Database& db,
                               const GeneratorConfig& config);

/// Writes every Berlin table of `db` as <dir>/<Table>.csv (no header),
/// ready for the paper's `ingest table T file.csv` command.
Status write_csv_files(const server::Database& db, const std::string& dir);

/// Convenience: fresh database with full_ddl() applied and data generated.
Result<std::unique_ptr<server::Database>> make_populated_database(
    const GeneratorConfig& config, server::DatabaseOptions options = {});

}  // namespace gems::bsbm
