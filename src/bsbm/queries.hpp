// The Berlin business-intelligence query mix in GraQL. Q1 and Q2 are the
// paper's Figs. 7 and 6 verbatim; the rest are BI-style queries over the
// same schema exercising the remaining language surface (type matching,
// regex paths, subgraph chaining, the export view, every Table I
// operator).
//
// Each function returns GraQL text; parameters are %placeholders% to be
// bound at execution (paper Sec. II-B).
#pragma once

#include <string>
#include <vector>

namespace gems::bsbm {

/// Fig. 7 — "Select the top 10 most discussed product categories of
/// products from %Country1% based on reviews from reviewers from
/// %Country2%."
std::string berlin_q1();

/// Fig. 6 — "Select the top 10 products most similar to %Product1%, rated
/// by the count of features they have in common."
std::string berlin_q2();

/// Offers for products of a given type: cheapest 10 with vendor info.
/// Params: %Type1%.
std::string berlin_q3();

/// Export flows (Fig. 4/5 view): producer-country -> vendor-country pairs.
std::string berlin_q4();

/// Top 10 products by average rating (reviews aggregation).
std::string berlin_q5();

/// Reviewers of products of a producer: distinct reviewer countries.
/// Params: %Producer1%.
std::string berlin_q6();

/// Offers valid on a date with fast delivery: average price per vendor.
/// Params: %Date1%.
std::string berlin_q7();

/// Fig. 9-style: the whole neighborhood of a product as a subgraph, then
/// its offer subset seeded into a second query (Figs. 11/12 chaining).
/// Params: %Product1%.
std::string berlin_q8();

/// Fig. 10-style: products whose type is a descendant of %Type1% via a
/// subclass regex path.
std::string berlin_q9();

/// All queries with stable names, for harness iteration.
struct NamedQuery {
  std::string name;
  std::string text;
  std::vector<std::string> params;  // parameter names the query needs
};
std::vector<NamedQuery> all_queries();

}  // namespace gems::bsbm
