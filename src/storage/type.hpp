// GraQL's strongly-typed attribute system (paper Sec. I design principle 3:
// "All database elements are strongly typed").
//
// Declared SQL-style types map onto physical kinds:
//   integer, bigint      -> Int64
//   float, double        -> Double
//   varchar(n)           -> Varchar (interned StringId storage, max length n)
//   date                 -> Date (days since 1970-01-01, Int32 range)
//   boolean              -> Bool
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.hpp"

namespace gems::storage {

enum class TypeKind : std::uint8_t {
  kBool,
  kInt64,
  kDouble,
  kVarchar,
  kDate,
};

std::string_view type_kind_name(TypeKind kind) noexcept;

/// A column's declared type. Varchar carries its declared maximum length,
/// which is enforced at ingest time.
struct DataType {
  TypeKind kind = TypeKind::kInt64;
  std::uint32_t varchar_length = 0;  // meaningful only for kVarchar

  static DataType boolean() { return {TypeKind::kBool, 0}; }
  static DataType int64() { return {TypeKind::kInt64, 0}; }
  static DataType float64() { return {TypeKind::kDouble, 0}; }
  static DataType varchar(std::uint32_t n) { return {TypeKind::kVarchar, n}; }
  static DataType date() { return {TypeKind::kDate, 0}; }

  bool operator==(const DataType&) const = default;

  /// True when values of `other` can be compared with values of this type
  /// without an explicit cast. Varchar lengths do not affect comparability;
  /// Int64 and Double are mutually comparable (numeric promotion).
  bool comparable_with(const DataType& other) const noexcept;

  bool is_numeric() const noexcept {
    return kind == TypeKind::kInt64 || kind == TypeKind::kDouble;
  }

  /// "varchar(10)", "integer", "date", ...
  std::string to_string() const;
};

/// Parses a GraQL DDL type name ("integer", "varchar(10)", ...).
Result<DataType> parse_data_type(std::string_view text);

// ---- Date encoding ---------------------------------------------------
// Dates are stored as days since the civil epoch 1970-01-01 (negative for
// earlier dates), using the standard proleptic-Gregorian conversion.

/// Days since epoch for a civil date.
std::int64_t civil_to_days(int year, unsigned month, unsigned day) noexcept;

/// Inverse of civil_to_days.
void days_to_civil(std::int64_t days, int& year, unsigned& month,
                   unsigned& day) noexcept;

/// Parses "YYYY-MM-DD". Rejects out-of-range month/day.
Result<std::int64_t> parse_date(std::string_view text);

/// Formats days-since-epoch as "YYYY-MM-DD".
std::string format_date(std::int64_t days);

}  // namespace gems::storage
