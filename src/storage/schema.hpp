// Table schemas: ordered, named, strongly-typed attribute lists
// (paper Sec. II-A: "The tables' columns, which we refer to as attributes
// in our data model, are strongly typed").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "storage/type.hpp"

namespace gems::storage {

using ColumnIndex = std::uint32_t;

struct ColumnDef {
  std::string name;
  DataType type;

  bool operator==(const ColumnDef&) const = default;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  /// Fails on duplicate column names.
  static Result<Schema> create(std::vector<ColumnDef> columns);

  std::size_t num_columns() const noexcept { return columns_.size(); }
  const ColumnDef& column(ColumnIndex i) const { return columns_.at(i); }
  const std::vector<ColumnDef>& columns() const noexcept { return columns_; }

  /// Case-sensitive lookup (GraQL identifiers are case-sensitive, matching
  /// the paper's examples which rely on casing like ProductVtx).
  std::optional<ColumnIndex> find(std::string_view name) const;

  bool operator==(const Schema&) const = default;

  /// "(id varchar(10), price float, ...)"
  std::string to_string() const;

 private:
  std::vector<ColumnDef> columns_;
  std::unordered_map<std::string, ColumnIndex> index_;
};

}  // namespace gems::storage
