#include "storage/catalog.hpp"

#include <algorithm>

namespace gems::storage {

Status TableCatalog::add(TablePtr table) {
  GEMS_CHECK(table != nullptr);
  const std::string& name = table->name();
  if (!tables_.emplace(name, std::move(table)).second) {
    return already_exists("table '" + name + "' already exists");
  }
  return Status::ok();
}

void TableCatalog::add_or_replace(TablePtr table) {
  GEMS_CHECK(table != nullptr);
  tables_[table->name()] = std::move(table);
}

Result<TablePtr> TableCatalog::find(std::string_view name) const {
  auto it = tables_.find(std::string(name));
  if (it == tables_.end()) {
    return not_found("no table named '" + std::string(name) + "'");
  }
  return it->second;
}

bool TableCatalog::contains(std::string_view name) const {
  return tables_.contains(std::string(name));
}

std::vector<std::string> TableCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace gems::storage
