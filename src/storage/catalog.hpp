// Name -> table registry. The GEMS server's metadata catalog (paper
// Sec. III, component 2) wraps this with object-size statistics; the graph
// builder uses it to resolve `from table` clauses.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "storage/table.hpp"

namespace gems::storage {

class TableCatalog {
 public:
  /// Registers a table; fails if the name is taken.
  Status add(TablePtr table);

  /// Registers or replaces (used by `into table` re-runs).
  void add_or_replace(TablePtr table);

  Result<TablePtr> find(std::string_view name) const;
  bool contains(std::string_view name) const;

  std::vector<std::string> names() const;
  std::size_t size() const noexcept { return tables_.size(); }

 private:
  std::unordered_map<std::string, TablePtr> tables_;
};

}  // namespace gems::storage
