#include "storage/table.hpp"

#include <sstream>

namespace gems::storage {

Table::Table(std::string name, Schema schema, StringPool& pool)
    : name_(std::move(name)), schema_(std::move(schema)), pool_(&pool) {
  columns_.reserve(schema_.num_columns());
  for (const auto& def : schema_.columns()) columns_.emplace_back(def.type);
}

Status Table::append_row(std::span<const Value> values) {
  if (values.size() != columns_.size()) {
    return invalid_argument("row arity " + std::to_string(values.size()) +
                            " != table arity " +
                            std::to_string(columns_.size()) + " for table '" +
                            name_ + "'");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    const Value& v = values[i];
    if (v.is_null()) continue;
    const DataType& t = schema_.column(static_cast<ColumnIndex>(i)).type;
    const bool kind_ok =
        v.kind() == t.kind ||
        (t.kind == TypeKind::kDouble && v.kind() == TypeKind::kInt64);
    if (!kind_ok) {
      return type_error("column '" +
                        schema_.column(static_cast<ColumnIndex>(i)).name +
                        "' of table '" + name_ + "' expects " + t.to_string() +
                        ", got " + std::string(type_kind_name(v.kind())));
    }
    if (t.kind == TypeKind::kVarchar &&
        v.as_string().size() > t.varchar_length) {
      return invalid_argument(
          "value '" + v.as_string() + "' exceeds " + t.to_string() +
          " for column '" +
          schema_.column(static_cast<ColumnIndex>(i)).name + "' of table '" +
          name_ + "'");
    }
  }
  append_row_unchecked(values);
  return Status::ok();
}

void Table::append_row_unchecked(std::span<const Value> values) {
  GEMS_DCHECK(values.size() == columns_.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    columns_[i].append_value(values[i], *pool_);
  }
  ++num_rows_;
}

std::vector<Value> Table::row(RowIndex r) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out.push_back(value_at(r, static_cast<ColumnIndex>(c)));
  }
  return out;
}

Status Table::finish_restore() {
  const std::size_t rows = columns_.empty() ? 0 : columns_.front().size();
  for (const auto& col : columns_) {
    if (col.size() != rows) {
      return invalid_argument("table '" + name_ +
                              "' restore: ragged column sizes (" +
                              std::to_string(col.size()) + " vs " +
                              std::to_string(rows) + ")");
    }
  }
  num_rows_ = rows;
  return Status::ok();
}

std::size_t Table::byte_size() const noexcept {
  std::size_t bytes = 0;
  for (const auto& col : columns_) bytes += col.byte_size();
  return bytes;
}

std::string Table::to_string(std::size_t max_rows) const {
  std::ostringstream out;
  out << name_ << " ";
  for (std::size_t c = 0; c < schema_.num_columns(); ++c) {
    out << (c == 0 ? "| " : " | ")
        << schema_.column(static_cast<ColumnIndex>(c)).name;
  }
  out << " |  (" << num_rows_ << " rows)\n";
  const std::size_t limit = std::min(num_rows_, max_rows);
  for (std::size_t r = 0; r < limit; ++r) {
    for (std::size_t c = 0; c < schema_.num_columns(); ++c) {
      out << (c == 0 ? "| " : " | ")
          << value_at(static_cast<RowIndex>(r), static_cast<ColumnIndex>(c))
                 .to_string();
    }
    out << " |\n";
  }
  if (limit < num_rows_) out << "... (" << (num_rows_ - limit) << " more)\n";
  return out.str();
}

}  // namespace gems::storage
