// Columnar storage. One Column per attribute; Int64/Date/Bool share the
// int64 representation, Varchar stores interned StringIds (see
// common/string_pool.hpp). Nulls are tracked in a validity bitmap.
#pragma once

#include <cstdint>
#include <span>
#include <variant>
#include <vector>

#include "common/bitset.hpp"
#include "common/check.hpp"
#include "common/string_pool.hpp"
#include "storage/type.hpp"
#include "storage/value.hpp"

namespace gems::storage {

using RowIndex = std::uint32_t;

class Column {
 public:
  explicit Column(DataType type);

  const DataType& type() const noexcept { return type_; }
  std::size_t size() const noexcept { return valid_.size(); }

  // ---- Appending (ingest path) ----------------------------------------
  void append_null();
  void append_bool(bool v);
  void append_int64(std::int64_t v);  // also used for dates
  void append_double(double v);
  void append_string(StringId v);

  /// Appends a boxed value; the value's kind must match the column type
  /// (callers validate beforehand). `pool` interns varchar payloads.
  void append_value(const Value& v, StringPool& pool);

  /// Appends row `row` of `src` (same type kind; pools must be shared so
  /// string ids stay valid).
  void append_from(const Column& src, RowIndex row);

  /// Bulk form of append_from: appends rows `rows[0..n)` of `src` in
  /// order. The type dispatch happens once per call instead of once per
  /// row; output bytes are identical to n append_from calls.
  void append_gather(const Column& src, const RowIndex* rows, std::size_t n);

  // ---- Batch appending (vectorized operators) -------------------------
  // Appends `n` lanes with validity given as packed bit-words (bit i set
  // = lane i non-null; bits at or past n must be zero). NULL lanes store
  // the same zero payloads the scalar append_null writes, so tables built
  // batch-at-a-time are byte-identical to row-at-a-time ones (snapshots
  // serialize the raw arrays).
  void append_lanes_int64(const std::int64_t* lanes,
                          const std::uint64_t* valid, std::size_t n);
  void append_lanes_double(const double* lanes, const std::uint64_t* valid,
                           std::size_t n);
  void append_lanes_string(const StringId* lanes, const std::uint64_t* valid,
                           std::size_t n);
  /// Bool lanes arrive as packed value bit-words (bit set = true).
  void append_bool_bits(const std::uint64_t* bits, const std::uint64_t* valid,
                        std::size_t n);

  // ---- Reading (scan path) ---------------------------------------------
  bool is_null(RowIndex row) const noexcept { return !valid_.test(row); }
  const DynamicBitset& validity() const noexcept { return valid_; }

  bool bool_at(RowIndex row) const {
    GEMS_DCHECK(type_.kind == TypeKind::kBool);
    return ints()[row] != 0;
  }
  std::int64_t int64_at(RowIndex row) const {
    GEMS_DCHECK(type_.kind == TypeKind::kInt64 ||
                type_.kind == TypeKind::kDate ||
                type_.kind == TypeKind::kBool);
    return ints()[row];
  }
  double double_at(RowIndex row) const {
    GEMS_DCHECK(type_.kind == TypeKind::kDouble);
    return doubles()[row];
  }
  StringId string_at(RowIndex row) const {
    GEMS_DCHECK(type_.kind == TypeKind::kVarchar);
    return strs()[row];
  }

  /// Numeric value with promotion; column must be numeric.
  double numeric_at(RowIndex row) const {
    return type_.kind == TypeKind::kDouble ? double_at(row)
                                           : static_cast<double>(int64_at(row));
  }

  /// Boxes row `row` (strings are copied out of `pool`).
  Value value_at(RowIndex row, const StringPool& pool) const;

  /// Raw typed spans for vectorized scans.
  std::span<const std::int64_t> int_span() const { return ints(); }
  std::span<const double> double_span() const { return doubles(); }
  std::span<const StringId> string_span() const { return strs(); }

  /// Approximate in-memory footprint in bytes (catalog sizing, Sec. III).
  std::size_t byte_size() const noexcept;

  // ---- Snapshot restore (gems::store) ---------------------------------
  // Bulk-replace the column contents from deserialized arrays. The data
  // vector must match the column's storage kind and the validity bitmap's
  // size; mismatches are corrupt input and reported as a Status, never
  // applied partially.
  Status load_ints(std::vector<std::int64_t> data, DynamicBitset valid);
  Status load_doubles(std::vector<double> data, DynamicBitset valid);
  Status load_strings(std::vector<StringId> data, DynamicBitset valid);

 private:
  const std::vector<std::int64_t>& ints() const {
    return std::get<std::vector<std::int64_t>>(data_);
  }
  const std::vector<double>& doubles() const {
    return std::get<std::vector<double>>(data_);
  }
  const std::vector<StringId>& strs() const {
    return std::get<std::vector<StringId>>(data_);
  }
  std::vector<std::int64_t>& ints() {
    return std::get<std::vector<std::int64_t>>(data_);
  }
  std::vector<double>& doubles() {
    return std::get<std::vector<double>>(data_);
  }
  std::vector<StringId>& strs() {
    return std::get<std::vector<StringId>>(data_);
  }

  DataType type_;
  std::variant<std::vector<std::int64_t>, std::vector<double>,
               std::vector<StringId>>
      data_;
  DynamicBitset valid_;
};

}  // namespace gems::storage
