#include "storage/column.hpp"

namespace gems::storage {

Column::Column(DataType type) : type_(type) {
  switch (type.kind) {
    case TypeKind::kBool:
    case TypeKind::kInt64:
    case TypeKind::kDate:
      data_ = std::vector<std::int64_t>();
      break;
    case TypeKind::kDouble:
      data_ = std::vector<double>();
      break;
    case TypeKind::kVarchar:
      data_ = std::vector<StringId>();
      break;
  }
}

void Column::append_null() {
  switch (type_.kind) {
    case TypeKind::kBool:
    case TypeKind::kInt64:
    case TypeKind::kDate:
      ints().push_back(0);
      break;
    case TypeKind::kDouble:
      doubles().push_back(0.0);
      break;
    case TypeKind::kVarchar:
      strs().push_back(kInvalidStringId);
      break;
  }
  valid_.resize(valid_.size() + 1, false);
}

void Column::append_bool(bool v) {
  GEMS_DCHECK(type_.kind == TypeKind::kBool);
  ints().push_back(v ? 1 : 0);
  valid_.resize(valid_.size() + 1, true);
}

void Column::append_int64(std::int64_t v) {
  GEMS_DCHECK(type_.kind == TypeKind::kInt64 || type_.kind == TypeKind::kDate ||
              type_.kind == TypeKind::kBool);
  ints().push_back(v);
  valid_.resize(valid_.size() + 1, true);
}

void Column::append_double(double v) {
  GEMS_DCHECK(type_.kind == TypeKind::kDouble);
  doubles().push_back(v);
  valid_.resize(valid_.size() + 1, true);
}

void Column::append_string(StringId v) {
  GEMS_DCHECK(type_.kind == TypeKind::kVarchar);
  strs().push_back(v);
  valid_.resize(valid_.size() + 1, true);
}

void Column::append_value(const Value& v, StringPool& pool) {
  if (v.is_null()) {
    append_null();
    return;
  }
  switch (type_.kind) {
    case TypeKind::kBool:
      append_bool(v.as_bool());
      break;
    case TypeKind::kInt64:
    case TypeKind::kDate:
      append_int64(v.as_int64());
      break;
    case TypeKind::kDouble:
      // Accept int64 constants into double columns (numeric promotion).
      append_double(v.kind() == TypeKind::kInt64
                        ? static_cast<double>(v.as_int64())
                        : v.as_double());
      break;
    case TypeKind::kVarchar:
      append_string(pool.intern(v.as_string()));
      break;
  }
}

void Column::append_from(const Column& src, RowIndex row) {
  GEMS_DCHECK(src.type_.kind == type_.kind);
  if (src.is_null(row)) {
    append_null();
    return;
  }
  switch (type_.kind) {
    case TypeKind::kBool:
    case TypeKind::kInt64:
    case TypeKind::kDate:
      append_int64(src.ints()[row]);
      break;
    case TypeKind::kDouble:
      append_double(src.doubles()[row]);
      break;
    case TypeKind::kVarchar:
      append_string(src.strs()[row]);
      break;
  }
}

void Column::append_gather(const Column& src, const RowIndex* rows,
                           std::size_t n) {
  GEMS_DCHECK(src.type_.kind == type_.kind);
  switch (type_.kind) {
    case TypeKind::kBool:
    case TypeKind::kInt64:
    case TypeKind::kDate: {
      auto& out = ints();
      const auto& in = src.ints();
      out.reserve(out.size() + n);
      for (std::size_t i = 0; i < n; ++i) {
        const bool ok = !src.is_null(rows[i]);
        out.push_back(ok ? in[rows[i]] : 0);
        valid_.resize(valid_.size() + 1, ok);
      }
      break;
    }
    case TypeKind::kDouble: {
      auto& out = doubles();
      const auto& in = src.doubles();
      out.reserve(out.size() + n);
      for (std::size_t i = 0; i < n; ++i) {
        const bool ok = !src.is_null(rows[i]);
        out.push_back(ok ? in[rows[i]] : 0.0);
        valid_.resize(valid_.size() + 1, ok);
      }
      break;
    }
    case TypeKind::kVarchar: {
      auto& out = strs();
      const auto& in = src.strs();
      out.reserve(out.size() + n);
      for (std::size_t i = 0; i < n; ++i) {
        const bool ok = !src.is_null(rows[i]);
        out.push_back(ok ? in[rows[i]] : kInvalidStringId);
        valid_.resize(valid_.size() + 1, ok);
      }
      break;
    }
  }
}

namespace {

inline bool lane_valid(const std::uint64_t* valid, std::size_t i) noexcept {
  return (valid[i >> 6] >> (i & 63)) & 1u;
}

}  // namespace

void Column::append_lanes_int64(const std::int64_t* lanes,
                                const std::uint64_t* valid, std::size_t n) {
  GEMS_DCHECK(type_.kind == TypeKind::kInt64 || type_.kind == TypeKind::kDate);
  auto& out = ints();
  out.reserve(out.size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    // Branch-free null masking: null lanes store 0, like append_null.
    const std::int64_t mask =
        -static_cast<std::int64_t>(lane_valid(valid, i) ? 1 : 0);
    out.push_back(lanes[i] & mask);
  }
  valid_.append_words(valid, n);
}

void Column::append_lanes_double(const double* lanes,
                                 const std::uint64_t* valid, std::size_t n) {
  GEMS_DCHECK(type_.kind == TypeKind::kDouble);
  auto& out = doubles();
  out.reserve(out.size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(lane_valid(valid, i) ? lanes[i] : 0.0);
  }
  valid_.append_words(valid, n);
}

void Column::append_lanes_string(const StringId* lanes,
                                 const std::uint64_t* valid, std::size_t n) {
  GEMS_DCHECK(type_.kind == TypeKind::kVarchar);
  auto& out = strs();
  out.reserve(out.size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(lane_valid(valid, i) ? lanes[i] : kInvalidStringId);
  }
  valid_.append_words(valid, n);
}

void Column::append_bool_bits(const std::uint64_t* bits,
                              const std::uint64_t* valid, std::size_t n) {
  GEMS_DCHECK(type_.kind == TypeKind::kBool);
  auto& out = ints();
  out.reserve(out.size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(lane_valid(bits, i) ? 1 : 0);
  }
  valid_.append_words(valid, n);
}

Value Column::value_at(RowIndex row, const StringPool& pool) const {
  if (is_null(row)) return Value::null();
  switch (type_.kind) {
    case TypeKind::kBool:
      return Value::boolean(bool_at(row));
    case TypeKind::kInt64:
      return Value::int64(int64_at(row));
    case TypeKind::kDate:
      return Value::date(int64_at(row));
    case TypeKind::kDouble:
      return Value::float64(double_at(row));
    case TypeKind::kVarchar:
      return Value::varchar(std::string(pool.view(string_at(row))));
  }
  GEMS_UNREACHABLE("bad column kind");
}

namespace {

Status load_size_mismatch(std::size_t data, std::size_t valid) {
  return invalid_argument("column restore: data size " +
                          std::to_string(data) +
                          " != validity size " + std::to_string(valid));
}

}  // namespace

Status Column::load_ints(std::vector<std::int64_t> data, DynamicBitset valid) {
  if (type_.kind != TypeKind::kBool && type_.kind != TypeKind::kInt64 &&
      type_.kind != TypeKind::kDate) {
    return invalid_argument("column restore: int data for a " +
                            type_.to_string() + " column");
  }
  if (data.size() != valid.size()) {
    return load_size_mismatch(data.size(), valid.size());
  }
  data_ = std::move(data);
  valid_ = std::move(valid);
  return Status::ok();
}

Status Column::load_doubles(std::vector<double> data, DynamicBitset valid) {
  if (type_.kind != TypeKind::kDouble) {
    return invalid_argument("column restore: double data for a " +
                            type_.to_string() + " column");
  }
  if (data.size() != valid.size()) {
    return load_size_mismatch(data.size(), valid.size());
  }
  data_ = std::move(data);
  valid_ = std::move(valid);
  return Status::ok();
}

Status Column::load_strings(std::vector<StringId> data, DynamicBitset valid) {
  if (type_.kind != TypeKind::kVarchar) {
    return invalid_argument("column restore: string data for a " +
                            type_.to_string() + " column");
  }
  if (data.size() != valid.size()) {
    return load_size_mismatch(data.size(), valid.size());
  }
  data_ = std::move(data);
  valid_ = std::move(valid);
  return Status::ok();
}

std::size_t Column::byte_size() const noexcept {
  std::size_t bytes = valid_.size() / 8;
  switch (type_.kind) {
    case TypeKind::kBool:
    case TypeKind::kInt64:
    case TypeKind::kDate:
      bytes += ints().size() * sizeof(std::int64_t);
      break;
    case TypeKind::kDouble:
      bytes += doubles().size() * sizeof(double);
      break;
    case TypeKind::kVarchar:
      bytes += strs().size() * sizeof(StringId);
      break;
  }
  return bytes;
}

}  // namespace gems::storage
