#include "storage/type.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace gems::storage {

std::string_view type_kind_name(TypeKind kind) noexcept {
  switch (kind) {
    case TypeKind::kBool:
      return "boolean";
    case TypeKind::kInt64:
      return "integer";
    case TypeKind::kDouble:
      return "float";
    case TypeKind::kVarchar:
      return "varchar";
    case TypeKind::kDate:
      return "date";
  }
  return "?";
}

bool DataType::comparable_with(const DataType& other) const noexcept {
  if (is_numeric() && other.is_numeric()) return true;
  return kind == other.kind;
}

std::string DataType::to_string() const {
  if (kind == TypeKind::kVarchar) {
    return "varchar(" + std::to_string(varchar_length) + ")";
  }
  return std::string(type_kind_name(kind));
}

Result<DataType> parse_data_type(std::string_view text) {
  // Lowercase copy for case-insensitive matching (SQL convention).
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "integer" || lower == "int" || lower == "bigint") {
    return DataType::int64();
  }
  if (lower == "float" || lower == "double" || lower == "real") {
    return DataType::float64();
  }
  if (lower == "date") return DataType::date();
  if (lower == "boolean" || lower == "bool") return DataType::boolean();
  if (lower.rfind("varchar", 0) == 0) {
    std::string_view rest = std::string_view(lower).substr(7);
    if (rest.empty()) return DataType::varchar(255);
    if (rest.front() != '(' || rest.back() != ')') {
      return parse_error("malformed varchar type: '" + std::string(text) +
                         "'");
    }
    rest = rest.substr(1, rest.size() - 2);
    std::uint32_t n = 0;
    auto [ptr, ec] = std::from_chars(rest.data(), rest.data() + rest.size(), n);
    if (ec != std::errc() || ptr != rest.data() + rest.size() || n == 0) {
      return parse_error("bad varchar length: '" + std::string(text) + "'");
    }
    return DataType::varchar(n);
  }
  return parse_error("unknown type name: '" + std::string(text) + "'");
}

// Howard Hinnant's algorithms (public domain, chrono paper).
std::int64_t civil_to_days(int y, unsigned m, unsigned d) noexcept {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return static_cast<std::int64_t>(era) * 146097 +
         static_cast<std::int64_t>(doe) - 719468;
}

void days_to_civil(std::int64_t z, int& year, unsigned& month,
                   unsigned& day) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  day = doy - (153 * mp + 2) / 5 + 1;                            // [1, 31]
  month = mp + (mp < 10 ? 3 : -9);                               // [1, 12]
  year = static_cast<int>(y + (month <= 2));
}

namespace {

bool days_in_month_ok(int year, unsigned month, unsigned day) {
  static constexpr unsigned kDays[12] = {31, 28, 31, 30, 31, 30,
                                         31, 31, 30, 31, 30, 31};
  if (day == 0) return false;
  unsigned limit = kDays[month - 1];
  const bool leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
  if (month == 2 && leap) limit = 29;
  return day <= limit;
}

}  // namespace

Result<std::int64_t> parse_date(std::string_view text) {
  // Strict "YYYY-MM-DD" (4-2-2 digits).
  auto fail = [&] {
    return parse_error("malformed date: '" + std::string(text) + "'");
  };
  if (text.size() != 10 || text[4] != '-' || text[7] != '-') return fail();
  int year = 0;
  unsigned month = 0, day = 0;
  auto parse_uint = [](std::string_view s, auto& out) {
    auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
    return ec == std::errc() && ptr == s.data() + s.size();
  };
  if (!parse_uint(text.substr(0, 4), year) ||
      !parse_uint(text.substr(5, 2), month) ||
      !parse_uint(text.substr(8, 2), day)) {
    return fail();
  }
  if (month < 1 || month > 12 || !days_in_month_ok(year, month, day)) {
    return fail();
  }
  return civil_to_days(year, month, day);
}

std::string format_date(std::int64_t days) {
  int year;
  unsigned month, day;
  days_to_civil(days, year, month, day);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", year, month, day);
  return buf;
}

}  // namespace gems::storage
