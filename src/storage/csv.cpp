#include "storage/csv.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>

namespace gems::storage {

namespace {

struct RawRecord {
  std::vector<std::string> fields;
  std::vector<bool> quoted;
  std::size_t line;  // 1-based line where the record starts
};

/// Streaming RFC 4180 tokenizer over the full text. Handles quoted fields
/// spanning newlines and both \n and \r\n terminators.
Result<std::vector<RawRecord>> tokenize(std::string_view text, char sep) {
  std::vector<RawRecord> records;
  RawRecord current;
  std::string field;
  bool field_quoted = false;
  bool in_quotes = false;
  bool record_started = false;
  std::size_t line = 1;
  std::size_t record_line = 1;

  auto end_field = [&] {
    current.fields.push_back(std::move(field));
    current.quoted.push_back(field_quoted);
    field.clear();
    field_quoted = false;
  };
  auto end_record = [&] {
    end_field();
    current.line = record_line;
    records.push_back(std::move(current));
    current = RawRecord{};
    record_started = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        field.push_back(c);
      }
      continue;
    }
    if (c == '"' && field.empty() && !field_quoted) {
      in_quotes = true;
      field_quoted = true;
      if (!record_started) {
        record_started = true;
        record_line = line;
      }
      continue;
    }
    if (c == sep) {
      if (!record_started) {
        record_started = true;
        record_line = line;
      }
      end_field();
      continue;
    }
    if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') continue;
    if (c == '\n') {
      ++line;
      if (record_started || !field.empty() || field_quoted) {
        end_record();
      }
      continue;
    }
    if (!record_started) {
      record_started = true;
      record_line = line;
    }
    field.push_back(c);
  }
  if (in_quotes) {
    return parse_error("unterminated quoted field starting near line " +
                       std::to_string(record_line));
  }
  if (record_started || !field.empty() || field_quoted) end_record();
  return records;
}

Result<Value> convert_field(std::string_view field, bool quoted,
                            const DataType& type, std::size_t line) {
  if (field.empty() && !quoted) return Value::null();
  auto fail = [&](std::string_view what) {
    return parse_error("line " + std::to_string(line) + ": cannot parse '" +
                       std::string(field) + "' as " + std::string(what));
  };
  switch (type.kind) {
    case TypeKind::kBool: {
      if (field == "true" || field == "1" || field == "TRUE") {
        return Value::boolean(true);
      }
      if (field == "false" || field == "0" || field == "FALSE") {
        return Value::boolean(false);
      }
      return fail("boolean");
    }
    case TypeKind::kInt64: {
      std::int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(field.data(), field.data() + field.size(), v);
      if (ec != std::errc() || ptr != field.data() + field.size()) {
        return fail("integer");
      }
      return Value::int64(v);
    }
    case TypeKind::kDouble: {
      double v = 0;
      auto [ptr, ec] =
          std::from_chars(field.data(), field.data() + field.size(), v);
      if (ec != std::errc() || ptr != field.data() + field.size()) {
        return fail("float");
      }
      return Value::float64(v);
    }
    case TypeKind::kDate: {
      auto days = parse_date(field);
      if (!days.is_ok()) return fail("date (YYYY-MM-DD)");
      return Value::date(days.value());
    }
    case TypeKind::kVarchar: {
      if (field.size() > type.varchar_length) {
        return parse_error("line " + std::to_string(line) + ": value '" +
                           std::string(field) + "' exceeds " +
                           type.to_string());
      }
      return Value::varchar(std::string(field));
    }
  }
  GEMS_UNREACHABLE("bad type kind");
}

}  // namespace

Result<std::vector<std::string>> split_csv_record(
    std::string_view record, char separator, std::vector<bool>* was_quoted) {
  GEMS_ASSIGN_OR_RETURN(auto records, tokenize(record, separator));
  if (records.empty()) return std::vector<std::string>{};
  if (records.size() != 1) {
    return parse_error("expected a single CSV record");
  }
  if (was_quoted) *was_quoted = records[0].quoted;
  return std::move(records[0].fields);
}

Result<CsvIngestStats> ingest_csv_text(Table& table, std::string_view text,
                                       const CsvOptions& options) {
  GEMS_ASSIGN_OR_RETURN(auto records, tokenize(text, options.separator));

  const Schema& schema = table.schema();
  const std::size_t arity = schema.num_columns();

  // Column order mapping: slot i of a record feeds table column order[i].
  std::vector<ColumnIndex> order(arity);
  std::size_t first_record = 0;
  if (options.has_header) {
    if (records.empty()) {
      return parse_error("header expected but file is empty");
    }
    const auto& header = records[0].fields;
    if (header.size() != arity) {
      return parse_error("header has " + std::to_string(header.size()) +
                         " columns, table '" + table.name() + "' has " +
                         std::to_string(arity));
    }
    std::vector<bool> seen(arity, false);
    for (std::size_t i = 0; i < header.size(); ++i) {
      auto col = schema.find(header[i]);
      if (!col) {
        return parse_error("header names unknown column '" + header[i] + "'");
      }
      if (seen[*col]) {
        return parse_error("header repeats column '" + header[i] + "'");
      }
      seen[*col] = true;
      order[i] = *col;
    }
    first_record = 1;
  } else {
    for (std::size_t i = 0; i < arity; ++i) {
      order[i] = static_cast<ColumnIndex>(i);
    }
  }

  // Stage all rows first so that ingest is atomic (paper Sec. II-A2).
  std::vector<std::vector<Value>> staged;
  staged.reserve(records.size() - first_record);
  for (std::size_t r = first_record; r < records.size(); ++r) {
    const RawRecord& rec = records[r];
    if (rec.fields.size() != arity) {
      return parse_error("line " + std::to_string(rec.line) + ": expected " +
                         std::to_string(arity) + " fields, found " +
                         std::to_string(rec.fields.size()));
    }
    std::vector<Value> row(arity);
    for (std::size_t f = 0; f < arity; ++f) {
      const DataType& type = schema.column(order[f]).type;
      GEMS_ASSIGN_OR_RETURN(
          row[order[f]],
          convert_field(rec.fields[f], rec.quoted[f], type, rec.line));
    }
    staged.push_back(std::move(row));
  }
  for (const auto& row : staged) table.append_row_unchecked(row);
  return CsvIngestStats{staged.size(), text.size()};
}

Result<CsvIngestStats> ingest_csv_file(Table& table, const std::string& path,
                                       const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return io_error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return io_error("error reading '" + path + "'");
  auto result = ingest_csv_text(table, buffer.str(), options);
  if (!result.is_ok()) {
    return result.status().with_context("ingesting '" + path + "'");
  }
  return result;
}

namespace {

void write_csv_field(std::ostream& out, const std::string& s) {
  const bool needs_quotes =
      s.find_first_of(",\"\n\r") != std::string::npos || s.empty();
  if (!needs_quotes) {
    out << s;
    return;
  }
  out << '"';
  for (char c : s) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

}  // namespace

void write_csv(const Table& table, std::ostream& out) {
  const Schema& schema = table.schema();
  for (std::size_t c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out << ',';
    write_csv_field(out, schema.column(static_cast<ColumnIndex>(c)).name);
  }
  out << '\n';
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out << ',';
      const Value v = table.value_at(static_cast<RowIndex>(r),
                                     static_cast<ColumnIndex>(c));
      if (!v.is_null()) write_csv_field(out, v.to_string());
    }
    out << '\n';
  }
}

Status write_csv_file(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return io_error("cannot open '" + path + "' for writing");
  write_csv(table, out);
  out.flush();
  if (!out) return io_error("error writing '" + path + "'");
  return Status::ok();
}

}  // namespace gems::storage
