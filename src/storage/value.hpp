// Boxed runtime value. Used at the system's edges — query constants,
// result extraction, printing. The hot paths (scans, joins, path matching)
// operate directly on typed column storage and never box.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/check.hpp"
#include "storage/type.hpp"

namespace gems::storage {

class Value {
 public:
  /// SQL NULL.
  Value() = default;

  static Value null() { return Value(); }
  static Value boolean(bool v) { return Value(TypeKind::kBool, v); }
  static Value int64(std::int64_t v) { return Value(TypeKind::kInt64, v); }
  static Value float64(double v) { return Value(TypeKind::kDouble, v); }
  static Value varchar(std::string v) {
    return Value(TypeKind::kVarchar, std::move(v));
  }
  /// `days` is days-since-epoch (see type.hpp).
  static Value date(std::int64_t days) { return Value(TypeKind::kDate, days); }

  bool is_null() const noexcept {
    return std::holds_alternative<std::monostate>(data_);
  }

  /// Kind of a non-null value; calling on NULL is a programming error.
  TypeKind kind() const noexcept {
    GEMS_DCHECK(!is_null());
    return kind_;
  }

  bool as_bool() const {
    GEMS_DCHECK(kind_ == TypeKind::kBool);
    return std::get<bool>(data_);
  }
  std::int64_t as_int64() const {
    GEMS_DCHECK(kind_ == TypeKind::kInt64 || kind_ == TypeKind::kDate);
    return std::get<std::int64_t>(data_);
  }
  double as_double() const {
    GEMS_DCHECK(kind_ == TypeKind::kDouble);
    return std::get<double>(data_);
  }
  const std::string& as_string() const {
    GEMS_DCHECK(kind_ == TypeKind::kVarchar);
    return std::get<std::string>(data_);
  }

  /// Numeric value with Int64 -> Double promotion.
  double as_numeric() const {
    if (kind_ == TypeKind::kDouble) return as_double();
    return static_cast<double>(as_int64());
  }

  /// Structural equality (NULL == NULL is true, matching GROUP BY /
  /// DISTINCT grouping semantics; comparisons in WHERE never see NULLs
  /// because predicates reject them first).
  bool operator==(const Value& other) const;

  /// Total order used by ORDER BY: NULL sorts first; numerics compare by
  /// promoted value; strings lexicographically. Returns <0, 0, >0.
  /// Comparing incomparable kinds is a programming error (the static type
  /// checker rejects such queries earlier).
  int compare(const Value& other) const;

  /// Render for CSV output / the shell ("" for NULL).
  std::string to_string() const;

  /// Hash consistent with operator==.
  std::size_t hash() const;

 private:
  template <typename T>
  Value(TypeKind kind, T v) : kind_(kind), data_(std::move(v)) {}

  TypeKind kind_ = TypeKind::kInt64;
  std::variant<std::monostate, bool, std::int64_t, double, std::string> data_;
};

struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.hash(); }
};

}  // namespace gems::storage
