// CSV ingest and export (paper Sec. II-A2: `ingest table Products
// products.csv` parses the file "according to the data types of the
// attributes in the corresponding table").
//
// Dialect: RFC 4180 — comma separator, double-quote quoting with ""
// escapes, quoted fields may contain commas and newlines. An empty
// unquoted field is NULL; an empty quoted field is the empty string.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "storage/table.hpp"

namespace gems::storage {

struct CsvOptions {
  /// When true, the first record is a header naming the columns; columns
  /// may then appear in any order (they are matched by name). When false,
  /// fields must appear in schema order.
  bool has_header = false;
  char separator = ',';
};

struct CsvIngestStats {
  std::size_t rows = 0;
  std::size_t bytes = 0;
};

/// Splits one CSV record (already extracted, no trailing newline) into
/// fields. Returns an error on unbalanced quotes. `was_quoted[i]` reports
/// whether field i was quoted (distinguishes NULL from "").
Result<std::vector<std::string>> split_csv_record(
    std::string_view record, char separator,
    std::vector<bool>* was_quoted = nullptr);

/// Parses `text` and appends every record to `table`, converting each field
/// to the column's declared type. Atomic: on any error the table is left
/// untouched and the error names the offending line.
Result<CsvIngestStats> ingest_csv_text(Table& table, std::string_view text,
                                       const CsvOptions& options = {});

/// Reads `path` and ingests it (see ingest_csv_text).
Result<CsvIngestStats> ingest_csv_file(Table& table, const std::string& path,
                                       const CsvOptions& options = {});

/// Writes the table as CSV (with a header row) to `out`.
void write_csv(const Table& table, std::ostream& out);

/// Writes the table as CSV to `path`.
Status write_csv_file(const Table& table, const std::string& path);

}  // namespace gems::storage
