#include "storage/schema.hpp"

#include "common/check.hpp"

namespace gems::storage {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {
  for (ColumnIndex i = 0; i < columns_.size(); ++i) {
    const bool inserted = index_.emplace(columns_[i].name, i).second;
    GEMS_CHECK_MSG(inserted, "duplicate column name in schema");
  }
}

Result<Schema> Schema::create(std::vector<ColumnDef> columns) {
  std::unordered_map<std::string, ColumnIndex> seen;
  for (ColumnIndex i = 0; i < columns.size(); ++i) {
    if (!seen.emplace(columns[i].name, i).second) {
      return already_exists("duplicate column '" + columns[i].name + "'");
    }
  }
  return Schema(std::move(columns));
}

std::optional<ColumnIndex> Schema::find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::string Schema::to_string() const {
  std::string out = "(";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ' ';
    out += columns_[i].type.to_string();
  }
  out += ')';
  return out;
}

}  // namespace gems::storage
