// In-memory columnar table — the universal storage unit of the GEMS data
// model (paper Sec. I design principle 1: "All data is stored in tabular
// form"). Vertex and edge types are views over these tables (src/graph).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/string_pool.hpp"
#include "storage/column.hpp"
#include "storage/schema.hpp"
#include "storage/value.hpp"

namespace gems::storage {

class Table {
 public:
  /// `pool` is the database-wide string interner; it must outlive the table.
  Table(std::string name, Schema schema, StringPool& pool);

  const std::string& name() const noexcept { return name_; }
  const Schema& schema() const noexcept { return schema_; }
  StringPool& pool() const noexcept { return *pool_; }

  std::size_t num_rows() const noexcept { return num_rows_; }
  std::size_t num_columns() const noexcept { return columns_.size(); }

  const Column& column(ColumnIndex i) const { return columns_.at(i); }
  Column& column_mut(ColumnIndex i) { return columns_.at(i); }

  /// Appends one row after validating arity, kinds and varchar lengths.
  Status append_row(std::span<const Value> values);

  /// Unchecked fast-path append used by generators and operators that have
  /// already validated types.
  void append_row_unchecked(std::span<const Value> values);

  /// For operators that append cells column-by-column via column_mut():
  /// registers that one full row has been appended to every column.
  void bump_row_count() {
#ifndef NDEBUG
    for (const auto& c : columns_) GEMS_DCHECK(c.size() == num_rows_ + 1);
#endif
    ++num_rows_;
  }

  /// Batch form of bump_row_count for operators that append whole column
  /// windows at a time (the vectorized engine).
  void bump_rows(std::size_t n) {
#ifndef NDEBUG
    for (const auto& c : columns_) GEMS_DCHECK(c.size() == num_rows_ + n);
#endif
    num_rows_ += n;
  }

  Value value_at(RowIndex row, ColumnIndex col) const {
    return columns_[col].value_at(row, *pool_);
  }

  /// Boxes an entire row.
  std::vector<Value> row(RowIndex row) const;

  /// Approximate in-memory footprint (catalog sizing, paper Sec. III).
  std::size_t byte_size() const noexcept;

  /// Snapshot restore (gems::store): after every column has been
  /// bulk-loaded via column_mut().load_*, validates that all columns have
  /// the same length and adopts it as the row count. Corrupt input (ragged
  /// columns) is reported as a Status, never adopted.
  Status finish_restore();

  /// Debug rendering: header + first `max_rows` rows.
  std::string to_string(std::size_t max_rows = 20) const;

 private:
  std::string name_;
  Schema schema_;
  StringPool* pool_;
  std::vector<Column> columns_;
  std::size_t num_rows_ = 0;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace gems::storage
