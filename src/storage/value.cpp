#include "storage/value.hpp"

#include <functional>

#include "common/hash.hpp"

namespace gems::storage {

bool Value::operator==(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (kind_ != other.kind_) {
    if (DataType{kind_, 0}.is_numeric() &&
        DataType{other.kind_, 0}.is_numeric()) {
      return as_numeric() == other.as_numeric();
    }
    return false;
  }
  return data_ == other.data_;
}

int Value::compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  auto cmp3 = [](auto a, auto b) { return a < b ? -1 : (a > b ? 1 : 0); };
  if (kind_ != other.kind_) {
    const bool both_numeric = DataType{kind_, 0}.is_numeric() &&
                              DataType{other.kind_, 0}.is_numeric();
    GEMS_CHECK_MSG(both_numeric, "comparing incomparable value kinds");
    return cmp3(as_numeric(), other.as_numeric());
  }
  switch (kind_) {
    case TypeKind::kBool:
      return cmp3(as_bool() ? 1 : 0, other.as_bool() ? 1 : 0);
    case TypeKind::kInt64:
    case TypeKind::kDate:
      return cmp3(as_int64(), other.as_int64());
    case TypeKind::kDouble:
      return cmp3(as_double(), other.as_double());
    case TypeKind::kVarchar:
      return as_string().compare(other.as_string()) < 0
                 ? -1
                 : (as_string() == other.as_string() ? 0 : 1);
  }
  GEMS_UNREACHABLE("bad value kind");
}

std::string Value::to_string() const {
  if (is_null()) return "";
  switch (kind_) {
    case TypeKind::kBool:
      return as_bool() ? "true" : "false";
    case TypeKind::kInt64:
      return std::to_string(as_int64());
    case TypeKind::kDouble: {
      std::string s = std::to_string(as_double());
      return s;
    }
    case TypeKind::kVarchar:
      return as_string();
    case TypeKind::kDate:
      return format_date(as_int64());
  }
  GEMS_UNREACHABLE("bad value kind");
}

std::size_t Value::hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ull;
  // Numeric kinds share a seed so that promoted-equal values hash equal.
  const TypeKind seed_kind =
      (kind_ == TypeKind::kDouble || kind_ == TypeKind::kDate)
          ? TypeKind::kInt64
          : kind_;
  std::size_t seed = static_cast<std::size_t>(seed_kind);
  switch (kind_) {
    case TypeKind::kBool:
      hash_combine(seed, as_bool() ? 1 : 0);
      break;
    case TypeKind::kInt64:
    case TypeKind::kDate:
      hash_combine(seed, std::hash<std::int64_t>{}(as_int64()));
      break;
    case TypeKind::kDouble: {
      const double d = as_double();
      // Hash integral doubles like their int64 counterparts so the
      // numeric-promotion equality stays hash-consistent.
      if (d == static_cast<double>(static_cast<std::int64_t>(d))) {
        hash_combine(seed, std::hash<std::int64_t>{}(
                               static_cast<std::int64_t>(d)));
      } else {
        hash_combine(seed, std::hash<double>{}(d));
      }
      break;
    }
    case TypeKind::kVarchar:
      hash_combine(seed, std::hash<std::string>{}(as_string()));
      break;
  }
  return seed;
}

}  // namespace gems::storage
