#include "cluster/bsp_wire.hpp"

#include "common/crc32.hpp"
#include "net/wire.hpp"

namespace gems::cluster {

using net::WireReader;
using net::WireWriter;

std::string_view bsp_kind_name(BspKind kind) noexcept {
  switch (kind) {
    case BspKind::kHello: return "hello";
    case BspKind::kWelcome: return "welcome";
    case BspKind::kSync: return "sync";
    case BspKind::kSyncAck: return "sync_ack";
    case BspKind::kJob: return "job";
    case BspKind::kJobDone: return "job_done";
    case BspKind::kData: return "data";
    case BspKind::kBarrier: return "barrier";
    case BspKind::kBarrierRelease: return "barrier_release";
    case BspKind::kError: return "error";
    case BspKind::kShutdown: return "shutdown";
  }
  return "?";
}

std::vector<std::uint8_t> encode_bsp_frame(const BspFrame& frame) {
  WireWriter w;
  w.buffer().reserve(kBspHeaderBytes + frame.payload.size());
  w.u32(kBspMagic);
  w.u16(kBspVersion);
  w.u8(static_cast<std::uint8_t>(frame.kind));
  w.u8(0);  // flags
  w.u32(frame.from);
  w.u32(frame.dest);
  w.u32(static_cast<std::uint32_t>(frame.tag));
  w.u32(static_cast<std::uint32_t>(frame.payload.size()));
  w.u32(crc32(frame.payload));
  w.buffer().insert(w.buffer().end(), frame.payload.begin(),
                    frame.payload.end());
  return w.take();
}

Status send_bsp_frame(const net::Socket& socket, const BspFrame& frame) {
  return net::send_all(socket, encode_bsp_frame(frame));
}

Result<BspFrame> recv_bsp_frame(const net::Socket& socket,
                                std::size_t max_frame_bytes) {
  std::uint8_t header[kBspHeaderBytes];
  GEMS_RETURN_IF_ERROR(net::recv_all(socket, header));
  WireReader r(header);
  GEMS_ASSIGN_OR_RETURN(std::uint32_t magic, r.u32());
  if (magic != kBspMagic) {
    return parse_error(
        "bad BSP frame magic at byte offset 0 (not a GEMS cluster peer?)");
  }
  GEMS_ASSIGN_OR_RETURN(std::uint16_t version, r.u16());
  if (version != kBspVersion) {
    return parse_error("unsupported BSP wire version " +
                       std::to_string(version) + " at byte offset 4 (this "
                       "peer speaks " + std::to_string(kBspVersion) + ")");
  }
  GEMS_ASSIGN_OR_RETURN(std::uint8_t kind, r.u8());
  if (kind >= kNumBspKinds) {
    return parse_error("unknown BSP frame kind " + std::to_string(kind) +
                       " at byte offset 6");
  }
  BspFrame frame;
  frame.kind = static_cast<BspKind>(kind);
  GEMS_ASSIGN_OR_RETURN(std::uint8_t flags, r.u8());
  (void)flags;
  GEMS_ASSIGN_OR_RETURN(frame.from, r.u32());
  GEMS_ASSIGN_OR_RETURN(frame.dest, r.u32());
  GEMS_ASSIGN_OR_RETURN(std::uint32_t tag, r.u32());
  frame.tag = static_cast<std::int32_t>(tag);
  GEMS_ASSIGN_OR_RETURN(std::uint32_t payload_len, r.u32());
  // The frame budget is the admission line for memory: a hostile length
  // is rejected here, before any allocation.
  if (payload_len > max_frame_bytes) {
    return parse_error("BSP frame payload length " +
                       std::to_string(payload_len) +
                       " exceeds the frame budget of " +
                       std::to_string(max_frame_bytes) +
                       " bytes at byte offset 20");
  }
  GEMS_ASSIGN_OR_RETURN(std::uint32_t expected_crc, r.u32());
  frame.payload.resize(payload_len);
  GEMS_RETURN_IF_ERROR(net::recv_all(socket, frame.payload));
  const std::uint32_t actual_crc = crc32(frame.payload);
  if (actual_crc != expected_crc) {
    return parse_error("BSP frame payload CRC mismatch on a " +
                       std::string(bsp_kind_name(frame.kind)) + " frame");
  }
  return frame;
}

// ---- Control payloads ------------------------------------------------------

std::vector<std::uint8_t> encode_hello(const HelloPayload& p) {
  WireWriter w;
  w.u32(p.rank);
  w.u32(p.state_crc);
  w.str(p.worker_name);
  return w.take();
}

Result<HelloPayload> decode_hello(std::span<const std::uint8_t> bytes) {
  WireReader r(bytes);
  HelloPayload out;
  GEMS_ASSIGN_OR_RETURN(out.rank, r.u32());
  GEMS_ASSIGN_OR_RETURN(out.state_crc, r.u32());
  GEMS_ASSIGN_OR_RETURN(out.worker_name, r.str());
  return out;
}

std::vector<std::uint8_t> encode_welcome(const WelcomePayload& p) {
  WireWriter w;
  w.u32(p.num_ranks);
  w.boolean(p.sync_needed);
  return w.take();
}

Result<WelcomePayload> decode_welcome(std::span<const std::uint8_t> bytes) {
  WireReader r(bytes);
  WelcomePayload out;
  GEMS_ASSIGN_OR_RETURN(out.num_ranks, r.u32());
  GEMS_ASSIGN_OR_RETURN(out.sync_needed, r.boolean());
  return out;
}

std::vector<std::uint8_t> encode_job(const JobPayload& p) {
  WireWriter w;
  w.u64(p.job_id);
  w.u32(p.num_ranks);
  w.u32(p.network_index);
  w.boolean(p.record_transcript);
  w.blob(p.ir);
  w.blob(p.params);
  return w.take();
}

Result<JobPayload> decode_job(std::span<const std::uint8_t> bytes) {
  WireReader r(bytes);
  JobPayload out;
  GEMS_ASSIGN_OR_RETURN(out.job_id, r.u64());
  GEMS_ASSIGN_OR_RETURN(out.num_ranks, r.u32());
  GEMS_ASSIGN_OR_RETURN(out.network_index, r.u32());
  GEMS_ASSIGN_OR_RETURN(out.record_transcript, r.boolean());
  GEMS_ASSIGN_OR_RETURN(out.ir, r.blob());
  GEMS_ASSIGN_OR_RETURN(out.params, r.blob());
  return out;
}

std::vector<std::uint8_t> encode_job_done(const JobDonePayload& p) {
  WireWriter w;
  w.u64(p.job_id);
  w.u64(p.messages);
  w.u64(p.payload_bytes);
  w.u64(p.wire_bytes);
  w.u64(p.activations);
  w.u64(p.supersteps);
  w.u64(p.stall_us);
  w.blob(p.transcript);
  w.blob(p.domains);
  return w.take();
}

Result<JobDonePayload> decode_job_done(std::span<const std::uint8_t> bytes) {
  WireReader r(bytes);
  JobDonePayload out;
  GEMS_ASSIGN_OR_RETURN(out.job_id, r.u64());
  GEMS_ASSIGN_OR_RETURN(out.messages, r.u64());
  GEMS_ASSIGN_OR_RETURN(out.payload_bytes, r.u64());
  GEMS_ASSIGN_OR_RETURN(out.wire_bytes, r.u64());
  GEMS_ASSIGN_OR_RETURN(out.activations, r.u64());
  GEMS_ASSIGN_OR_RETURN(out.supersteps, r.u64());
  GEMS_ASSIGN_OR_RETURN(out.stall_us, r.u64());
  GEMS_ASSIGN_OR_RETURN(out.transcript, r.blob());
  GEMS_ASSIGN_OR_RETURN(out.domains, r.blob());
  return out;
}

std::vector<std::uint8_t> encode_error(const Status& status) {
  WireWriter w;
  net::encode_status(status, w);
  return w.take();
}

Status decode_error(std::span<const std::uint8_t> bytes) {
  WireReader r(bytes);
  const Status status = net::decode_status(r);
  if (status.is_ok()) {
    return parse_error("BSP error frame carried an OK status");
  }
  return status;
}

}  // namespace gems::cluster
