// The cluster BSP wire: length-prefixed, CRC-framed messages carrying the
// distributed matcher's superstep traffic (dist::Message) and the
// coordinator/rank control plane across real TCP connections.
//
// Frame layout (little-endian):
//   u32 magic        "GBSP" (0x47425350)
//   u16 version      BSP wire version (1)
//   u8  kind         BspKind
//   u8  flags        reserved (0)
//   u32 from         sender rank (kCoordinatorRank for the coordinator)
//   u32 dest         destination rank (routing hint for kData)
//   u32 tag          dist::Message tag (two's-complement for collectives)
//   u32 payload_len  payload byte length (bounded by the frame budget)
//   u32 payload_crc  CRC-32 of the payload bytes
//   payload bytes
//
// Decode discipline matches gems::net: magic, version, kind and the
// length prefix are validated against the frame budget *before* the
// payload buffer is allocated (with the byte offset of the offending
// field in the error), and the CRC is checked before any payload byte is
// interpreted — a bit-flip on the wire is a typed kParseError, never a
// corrupted superstep.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "net/socket.hpp"

namespace gems::cluster {

inline constexpr std::uint32_t kBspMagic = 0x47425350;  // "GBSP"
inline constexpr std::uint16_t kBspVersion = 1;
inline constexpr std::size_t kBspHeaderBytes = 28;
/// Default frame budget. Larger than net's: a kSync frame carries a full
/// state snapshot.
inline constexpr std::size_t kDefaultMaxBspFrameBytes = 256u << 20;
/// `from`/`dest` value naming the coordinator instead of a rank.
inline constexpr std::uint32_t kCoordinatorRank = 0xFFFFFFFFu;

enum class BspKind : std::uint8_t {
  kHello = 0,        // rank -> coord: rank id + recovered-state CRC
  kWelcome,          // coord -> rank: cluster size + sync decision
  kSync,             // coord -> rank: full state snapshot image
  kSyncAck,          // rank -> coord: snapshot applied (echoes CRC)
  kJob,              // coord -> rank: run one distributed match
  kJobDone,          // rank -> coord: per-rank stats (+ domains on rank 0)
  kData,             // rank -> rank via coord: one BSP superstep message
  kBarrier,          // rank -> coord: arrived at a barrier
  kBarrierRelease,   // coord -> rank: all ranks arrived
  kError,            // rank -> coord: job failed (payload: encoded Status)
  kShutdown,         // coord -> rank: exit cleanly
};
inline constexpr std::size_t kNumBspKinds = 11;

std::string_view bsp_kind_name(BspKind kind) noexcept;

struct BspFrame {
  BspKind kind = BspKind::kData;
  std::uint32_t from = kCoordinatorRank;
  std::uint32_t dest = kCoordinatorRank;
  std::int32_t tag = 0;
  std::vector<std::uint8_t> payload;

  std::size_t wire_size() const { return kBspHeaderBytes + payload.size(); }
};

/// Serializes the frame (header + payload) to one contiguous buffer —
/// exposed so tests can craft hostile frames from a well-formed image.
std::vector<std::uint8_t> encode_bsp_frame(const BspFrame& frame);

/// Sends one frame as a single buffered write.
Status send_bsp_frame(const net::Socket& socket, const BspFrame& frame);

/// Reads one frame. Validates magic, version, kind, and the payload
/// length against `max_frame_bytes` before allocating; verifies the
/// payload CRC before returning. kUnavailable on clean EOF between
/// frames, kParseError on garbage.
Result<BspFrame> recv_bsp_frame(const net::Socket& socket,
                                std::size_t max_frame_bytes);

// ---- Control payloads ------------------------------------------------------
// Encoded with net::WireWriter / decoded with the hardened WireReader.

struct HelloPayload {
  std::uint32_t rank = 0;
  /// CRC-32 of the snapshot image the rank recovered from its store dir
  /// (0 = no local state). The coordinator skips the state sync when this
  /// matches its own image — the restart fast path.
  std::uint32_t state_crc = 0;
  std::string worker_name;
};

struct WelcomePayload {
  std::uint32_t num_ranks = 0;
  bool sync_needed = false;
};

struct JobPayload {
  std::uint64_t job_id = 0;
  std::uint32_t num_ranks = 0;
  /// Index into the lowered query's or-group networks: rank replicas
  /// lower the same statement deterministically and pick the same net.
  std::uint32_t network_index = 0;
  bool record_transcript = false;
  std::vector<std::uint8_t> ir;      // single-statement graql IR
  std::vector<std::uint8_t> params;  // graql::encode_params blob
};

struct JobDonePayload {
  std::uint64_t job_id = 0;
  std::uint64_t messages = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t activations = 0;
  std::uint64_t supersteps = 0;
  std::uint64_t stall_us = 0;
  /// Recorded send stream (byte-identity oracle), empty unless requested.
  std::vector<std::uint8_t> transcript;
  /// Rank 0 only: dist::encode_domains of the merged domains.
  std::vector<std::uint8_t> domains;
};

std::vector<std::uint8_t> encode_hello(const HelloPayload& p);
Result<HelloPayload> decode_hello(std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> encode_welcome(const WelcomePayload& p);
Result<WelcomePayload> decode_welcome(std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> encode_job(const JobPayload& p);
Result<JobPayload> decode_job(std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> encode_job_done(const JobDonePayload& p);
Result<JobDonePayload> decode_job_done(std::span<const std::uint8_t> bytes);

/// kError payload: a structured Status (reuses the net response codec).
/// decode_error always returns a failure — the reported status, or a
/// parse_error when the payload itself is malformed (including the
/// protocol violation of an OK status in an error frame).
std::vector<std::uint8_t> encode_error(const Status& status);
Status decode_error(std::span<const std::uint8_t> bytes);

}  // namespace gems::cluster
