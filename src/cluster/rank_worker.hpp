// A rank worker process body: connects to the coordinator, recovers its
// state image from a per-rank store directory (greeting with the image's
// CRC so an up-to-date restart skips the re-sync), then serves BSP match
// jobs until the coordinator shuts the cluster down.
//
// The worker is the paper's "backend node" made literal: it holds a full
// replica of the catalog state (shipped as a deterministic store snapshot
// image), re-lowers each job's statement IR locally, and runs the same
// `dist::run_match_rank` body the in-process simulation runs — over a
// `RankChannel` instead of a SimCluster mailbox, which is what makes the
// socket BSP stream byte-identical to the simulated one.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cluster/bsp_wire.hpp"
#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "exec/executor.hpp"
#include "net/socket.hpp"

namespace gems::cluster {

struct RankWorkerOptions {
  std::string coordinator_host = "127.0.0.1";
  std::uint16_t coordinator_port = 0;
  std::uint32_t rank = 0;
  /// Per-rank state directory: the last synced snapshot image lives at
  /// `<store_dir>/snapshot.gsnp` and is recovered on restart. Empty =
  /// in-memory only (every admission re-syncs).
  std::string store_dir;
  std::size_t max_frame_bytes = kDefaultMaxBspFrameBytes;
  /// Intra-rank worker threads for sharded frontier expansion (0 = serial).
  std::size_t intra_node_threads = 0;
  /// Connection retry budget: the coordinator may not be listening yet
  /// (process start order is not guaranteed), or the worker is restarting
  /// after a fail-stop mid-job.
  std::uint32_t connect_retries = 40;
  std::uint32_t connect_backoff_ms = 50;
  std::string worker_name = "gems-rank";
};

class RankWorker {
 public:
  explicit RankWorker(RankWorkerOptions options);
  ~RankWorker();

  RankWorker(const RankWorker&) = delete;
  RankWorker& operator=(const RankWorker&) = delete;

  /// Recovers local state, connects (with retries), greets, and serves
  /// frames until kShutdown (returns OK) or the coordinator goes away
  /// (returns the transport error). Protocol violations and mid-job
  /// transport failures are fail-stop (GEMS_CHECK aborts the process, the
  /// supervisor restarts it) — see RankChannel.
  Status run();

  // ---- Observability (for in-thread harness tests) ---------------------
  std::uint64_t jobs_run() const noexcept { return jobs_run_; }
  /// True when run() restored a usable snapshot image from store_dir.
  bool recovered() const noexcept { return recovered_; }
  std::uint32_t state_crc() const noexcept { return state_crc_; }

 private:
  /// One replica generation: pool + context are replaced wholesale on
  /// every sync (decode_snapshot requires a fresh context).
  struct State {
    StringPool pool;
    exec::ExecContext ctx;
    State() { ctx.pool = &pool; }
  };

  std::string snapshot_path() const;
  /// Loads and decodes `<store_dir>/snapshot.gsnp` if present and intact;
  /// a missing or corrupt image just leaves the worker stateless (the
  /// coordinator heals it with a sync).
  void recover();
  /// Applies a kSync frame: decode into a fresh state, persist the raw
  /// image atomically, ack with the image CRC.
  Status handle_sync(const BspFrame& frame);
  /// Runs one kJob frame and replies kJobDone (or kError on local
  /// failure, e.g. an undecodable job or a non-lowerable statement).
  Status handle_job(const BspFrame& frame);

  RankWorkerOptions options_;
  net::Socket socket_;
  std::unique_ptr<State> state_;
  std::uint32_t state_crc_ = 0;
  std::unique_ptr<ThreadPool> intra_pool_;
  std::uint64_t jobs_run_ = 0;
  bool recovered_ = false;
};

}  // namespace gems::cluster
