#include "cluster/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "cluster/bsp_wire.hpp"
#include "common/crc32.hpp"
#include "common/logging.hpp"
#include "dist/dist_matcher.hpp"
#include "graql/ir.hpp"
#include "net/wire.hpp"
#include "store/snapshot.hpp"

namespace gems::cluster {

namespace {

/// True when any vertex step of the query seeds from a previous result
/// (Fig. 12). Seeded queries stay on the front-end: the seed may live in
/// a script-local overlay that rank replicas never see.
bool element_has_seed(const graql::PathElement& el);

bool group_has_seed(const graql::PathGroup& g) {
  return std::any_of(g.body.begin(), g.body.end(), element_has_seed);
}

bool element_has_seed(const graql::PathElement& el) {
  if (const auto* v = std::get_if<graql::VertexStep>(&el)) {
    return !v->seed_result.empty();
  }
  if (const auto* g = std::get_if<graql::PathGroup>(&el)) {
    return group_has_seed(*g);
  }
  return false;
}

bool query_has_seed(const graql::GraphQueryStmt& stmt) {
  for (const auto& group : stmt.or_groups) {
    for (const auto& path : group) {
      if (std::any_of(path.elements.begin(), path.elements.end(),
                      element_has_seed)) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

Coordinator::Coordinator(server::Database& db, CoordinatorOptions options)
    : db_(db), options_(std::move(options)) {
  GEMS_CHECK(options_.num_ranks >= 1);
  conns_.reserve(options_.num_ranks);
  for (std::size_t r = 0; r < options_.num_ranks; ++r) {
    conns_.push_back(std::make_unique<RankConn>());
  }
  totals_.num_ranks = static_cast<std::uint32_t>(options_.num_ranks);
  totals_.ranks.resize(options_.num_ranks);
  rank_status_.resize(options_.num_ranks);
}

Coordinator::~Coordinator() { shutdown(); }

Status Coordinator::start() {
  GEMS_ASSIGN_OR_RETURN(
      listener_, net::tcp_listen(options_.bind_address, options_.port));
  GEMS_ASSIGN_OR_RETURN(port_, net::local_port(listener_));

  // Prime the state image so admission can compare rank CRCs at once.
  std::uint64_t version = 0;
  std::vector<std::uint8_t> image = db_.snapshot_bytes(&version);
  {
    sync::MutexLock lock(state_mutex_);
    state_crc_ = crc32(image);
    state_bytes_ = std::move(image);
    state_version_ = version;
  }

  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  return Status::ok();
}

Status Coordinator::wait_for_ranks() {
  sync::MutexLock jobs_lock(jobs_mutex_);
  for (std::size_t r = 0; r < options_.num_ranks; ++r) {
    GEMS_RETURN_IF_ERROR(ensure_rank_synced(static_cast<std::uint32_t>(r)));
  }
  return Status::ok();
}

void Coordinator::attach() {
  db_.context().dist_matcher =
      [this](const graql::GraphQueryStmt& stmt, std::size_t network_index,
             const exec::ConstraintNetwork& net,
             const relational::ParamMap& params,
             const exec::ExecContext& ctx)
      -> Result<exec::MatchResult> {
    Result<exec::MatchResult> result =
        match_distributed(stmt, network_index, net, params, ctx);
    if (!result.is_ok() &&
        result.status().code() == StatusCode::kUnimplemented) {
      sync::MutexLock lock(metrics_mutex_);
      ++totals_.fallbacks;
    }
    return result;
  };
  db_.set_cluster_metrics_provider([this] { return metrics(); });
  attached_ = true;
  // Re-publish so read scripts (which execute against pinned epochs) see
  // the hook: epochs snapshotted before the attach do not carry it.
  db_.refresh_epoch();
}

Result<exec::MatchResult> Coordinator::match_distributed(
    const graql::GraphQueryStmt& stmt, std::size_t network_index,
    const exec::ConstraintNetwork& net, const relational::ParamMap& params,
    const exec::ExecContext& ctx) {
  // ---- Eligibility: what the BSP fixpoint does not cover runs locally.
  GEMS_RETURN_IF_ERROR(dist::distributable(net));
  if (stmt.into == graql::IntoKind::kSubgraph && !net.groups.empty()) {
    return unimplemented(
        "group interiors for subgraph output are derived on the "
        "front-end; running this network locally");
  }
  if (query_has_seed(stmt)) {
    return unimplemented(
        "result-seeded queries resolve against the front-end catalog; "
        "running this network locally");
  }

  // One collective job at a time on the wire.
  sync::MutexLock jobs_lock(jobs_mutex_);

  // `ctx` is the state the query executes against — a pinned epoch's
  // immutable snapshot on the read path (safe to encode with no lock), or
  // the live context under exclusive access on the writer path. Syncing
  // ranks from it keeps distributed and local results consistent.
  refresh_state(ctx);

  for (std::size_t r = 0; r < options_.num_ranks; ++r) {
    GEMS_RETURN_IF_ERROR(ensure_rank_synced(static_cast<std::uint32_t>(r)));
  }

  // A fresh job starts with clean collective state: any queued control
  // events are leftovers of a failed predecessor, and a dead rank cannot
  // be stuck in a barrier (jobs are serialized).
  {
    sync::MutexLock lock(barrier_mutex_);
    barrier_arrivals_ = 0;
  }
  {
    sync::MutexLock lock(control_mutex_);
    control_.clear();
  }

  const std::uint64_t job_id = next_job_id_++;  // under jobs_mutex_
  JobPayload job;
  job.job_id = job_id;
  job.num_ranks = static_cast<std::uint32_t>(options_.num_ranks);
  job.network_index = static_cast<std::uint32_t>(network_index);
  job.record_transcript = options_.record_transcripts;
  {
    // Rank replicas re-lower the statement deterministically, so the job
    // ships source IR, not lowered networks.
    graql::Script script;
    script.statements.emplace_back(stmt);
    job.ir = graql::encode_script(script);
  }
  job.params = graql::encode_params(params);

  const std::vector<std::uint8_t> job_bytes = encode_job(job);
  for (std::size_t r = 0; r < options_.num_ranks; ++r) {
    BspFrame frame;
    frame.kind = BspKind::kJob;
    frame.dest = static_cast<std::uint32_t>(r);
    frame.payload = job_bytes;
    enqueue(static_cast<std::uint32_t>(r), std::move(frame));
  }

  // ---- Collect one kJobDone per rank ----------------------------------
  std::vector<std::optional<JobDonePayload>> done(options_.num_ranks);
  std::size_t remaining = options_.num_ranks;
  Status failure = Status::ok();
  while (remaining > 0) {
    Result<BspFrame> ev = await_control(options_.rank_wait_timeout_ms);
    if (!ev.is_ok()) {
      failure = ev.status();
      break;
    }
    BspFrame frame = std::move(ev).value();
    if (frame.kind == BspKind::kError) {
      failure = decode_error(frame.payload);
      break;
    }
    Result<JobDonePayload> decoded = decode_job_done(frame.payload);
    if (!decoded.is_ok()) {
      failure = decoded.status();
      break;
    }
    JobDonePayload report = std::move(decoded).value();
    if (report.job_id != job_id) continue;  // stale, from a failed job
    const std::uint32_t r = frame.from;
    if (r >= options_.num_ranks || done[r].has_value()) {
      failure = parse_error("cluster job report from unexpected rank " +
                            std::to_string(r));
      break;
    }
    done[r] = std::move(report);
    --remaining;
  }

  if (!failure.is_ok()) {
    // Abort the collective: survivors between jobs ignore the kError;
    // a rank blocked mid-superstep fail-stops and is restarted by its
    // supervisor with its store-recovered state (see DESIGN §5h).
    BspFrame abort_frame;
    abort_frame.kind = BspKind::kError;
    abort_frame.payload = encode_error(failure);
    for (std::size_t r = 0; r < options_.num_ranks; ++r) {
      enqueue(static_cast<std::uint32_t>(r), BspFrame(abort_frame));
    }
    if (failure.code() == StatusCode::kUnavailable ||
        failure.code() == StatusCode::kDeadlineExceeded) {
      return unavailable("cluster rank became unavailable during the "
                         "distributed match; re-run the script (" +
                         failure.to_string() + ")");
    }
    return failure;
  }

  // ---- Merge: rank 0 carries the gathered domains ----------------------
  GEMS_ASSIGN_OR_RETURN(std::vector<exec::Domain> domains,
                        dist::decode_domains(done[0]->domains));
  exec::MatchResult result;
  result.domains = std::move(domains);
  result.matched_edges = exec::matched_edge_sets(
      net, db_.graph(), db_.pool(), result.domains, /*stats=*/nullptr,
      db_.context().intra_pool);

  // ---- Account ---------------------------------------------------------
  {
    sync::MutexLock lock(metrics_mutex_);
    ++totals_.jobs;
    if (options_.record_transcripts) {
      last_transcripts_.assign(options_.num_ranks, {});
    }
    for (std::size_t r = 0; r < options_.num_ranks; ++r) {
      server::ClusterRankMetrics& m = totals_.ranks[r];
      const JobDonePayload& report = *done[r];
      ++m.jobs;
      m.messages += report.messages;
      m.payload_bytes += report.payload_bytes;
      m.wire_bytes += report.wire_bytes;
      m.supersteps += report.supersteps;
      m.stall_us += report.stall_us;
      if (options_.record_transcripts) {
        last_transcripts_[r] = std::move(done[r]->transcript);
      }
    }
  }
  return result;
}

server::ClusterMetricsSnapshot Coordinator::metrics() const {
  server::ClusterMetricsSnapshot snap;
  {
    sync::MutexLock lock(metrics_mutex_);
    snap = totals_;
  }
  sync::MutexLock lock(control_mutex_);
  for (std::size_t r = 0; r < rank_status_.size(); ++r) {
    snap.ranks[r].connected = rank_status_[r].connected;
  }
  return snap;
}

std::vector<std::vector<std::uint8_t>> Coordinator::last_transcripts()
    const {
  sync::MutexLock lock(metrics_mutex_);
  return last_transcripts_;
}

std::uint64_t Coordinator::sync_count() const {
  sync::MutexLock lock(metrics_mutex_);
  return totals_.syncs;
}

void Coordinator::shutdown() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (attached_) {
    db_.context().dist_matcher = nullptr;
    db_.set_cluster_metrics_provider(nullptr);
    attached_ = false;
    // New epochs must not carry a hook into a coordinator being torn down.
    db_.refresh_epoch();
  }
  // Ask every live rank to exit; the writer drains the outbox (so the
  // kShutdown really goes out) before stopping.
  for (std::size_t r = 0; r < conns_.size(); ++r) {
    RankConn& conn = *conns_[r];
    bool live = false;
    {
      sync::MutexLock lock(control_mutex_);
      live = rank_status_[r].connected;
    }
    if (live) {
      BspFrame frame;
      frame.kind = BspKind::kShutdown;
      frame.dest = static_cast<std::uint32_t>(r);
      enqueue(static_cast<std::uint32_t>(r), std::move(frame));
    }
    {
      sync::MutexLock lock(conn.mutex);
      conn.writer_stop = true;
    }
    conn.cv.notify_all();
  }
  for (auto& conn_ptr : conns_) {
    RankConn& conn = *conn_ptr;
    if (conn.writer.joinable()) conn.writer.join();
    conn.socket.shutdown();  // unblocks the reader
    if (conn.reader.joinable()) conn.reader.join();
  }
  if (started_) listener_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
}

// ---- Internals -------------------------------------------------------------

void Coordinator::accept_loop() {
  while (!stopping_.load()) {
    Result<net::Socket> accepted = net::tcp_accept(listener_);
    if (stopping_.load()) return;
    if (!accepted.is_ok()) {
      if (!listener_.valid()) return;
      continue;
    }
    net::Socket sock = std::move(accepted).value();

    // Admission: the first frame must be a hello naming a valid rank.
    Result<BspFrame> first =
        recv_bsp_frame(sock, options_.max_frame_bytes);
    if (!first.is_ok() || first->kind != BspKind::kHello) {
      GEMS_LOG(Warning) << "cluster: dropping connection without hello";
      continue;
    }
    Result<HelloPayload> hello = decode_hello(first->payload);
    if (!hello.is_ok() ||
        hello->rank >= static_cast<std::uint32_t>(options_.num_ranks)) {
      GEMS_LOG(Warning) << "cluster: dropping connection with bad hello";
      continue;
    }
    const std::uint32_t r = hello->rank;
    RankConn& conn = *conns_[r];
    {
      sync::MutexLock lock(control_mutex_);
      if (rank_status_[r].connected) {
        GEMS_LOG(Warning) << "cluster: duplicate rank " << r
                          << " connection rejected";
        continue;
      }
    }
    // A previous session's threads may still be unwinding.
    if (conn.reader.joinable()) conn.reader.join();
    if (conn.writer.joinable()) conn.writer.join();

    std::uint32_t current_crc = 0;
    {
      sync::MutexLock lock(state_mutex_);
      current_crc = state_crc_;
    }
    WelcomePayload welcome;
    welcome.num_ranks = static_cast<std::uint32_t>(options_.num_ranks);
    welcome.sync_needed = hello->state_crc != current_crc;
    BspFrame wf;
    wf.kind = BspKind::kWelcome;
    wf.dest = r;
    wf.payload = encode_welcome(welcome);
    if (!send_bsp_frame(sock, wf).is_ok()) continue;

    conn.socket = std::move(sock);
    {
      sync::MutexLock lock(conn.mutex);
      conn.outbox.clear();
      conn.writer_stop = false;
    }
    {
      sync::MutexLock lock(control_mutex_);
      rank_status_[r].connected = true;
      rank_status_[r].state_crc = hello->state_crc;
    }
    control_cv_.notify_all();
    conn.reader = std::thread([this, r] { reader_loop(r); });
    conn.writer = std::thread([this, r] { writer_loop(r); });
    GEMS_LOG(Info) << "cluster: rank " << r << " connected ("
                   << hello->worker_name << ", state "
                   << (welcome.sync_needed ? "stale" : "current") << ")";
  }
}

void Coordinator::reader_loop(std::uint32_t rank) {
  RankConn& conn = *conns_[rank];
  for (;;) {
    Result<BspFrame> frame =
        recv_bsp_frame(conn.socket, options_.max_frame_bytes);
    if (!frame.is_ok()) {
      disconnect(rank);
      return;
    }
    switch (frame->kind) {
      case BspKind::kData: {
        const std::uint32_t dest = frame->dest;
        if (dest >= static_cast<std::uint32_t>(options_.num_ranks)) {
          GEMS_LOG(Warning) << "cluster: rank " << rank
                            << " sent data to bogus rank " << dest;
          break;
        }
        frame->from = rank;  // the star routes; the origin authenticates
        enqueue(dest, std::move(frame).value());
        break;
      }
      case BspKind::kBarrier: {
        std::size_t arrivals = 0;
        {
          sync::MutexLock lock(barrier_mutex_);
          arrivals = ++barrier_arrivals_;
          if (arrivals == options_.num_ranks) barrier_arrivals_ = 0;
        }
        if (arrivals == options_.num_ranks) {
          for (std::size_t r = 0; r < options_.num_ranks; ++r) {
            BspFrame release;
            release.kind = BspKind::kBarrierRelease;
            release.dest = static_cast<std::uint32_t>(r);
            enqueue(static_cast<std::uint32_t>(r), std::move(release));
          }
        }
        break;
      }
      case BspKind::kSyncAck: {
        net::WireReader r(frame->payload);
        Result<std::uint32_t> crc = r.u32();
        if (crc.is_ok()) {
          sync::MutexLock lock(control_mutex_);
          rank_status_[rank].state_crc = crc.value();
        }
        control_cv_.notify_all();
        break;
      }
      case BspKind::kJobDone:
      case BspKind::kError: {
        frame->from = rank;
        post_control(rank, std::move(frame).value());
        break;
      }
      default:
        GEMS_LOG(Warning) << "cluster: rank " << rank
                          << " sent unexpected "
                          << bsp_kind_name(frame->kind) << " frame";
        disconnect(rank);
        return;
    }
  }
}

void Coordinator::writer_loop(std::uint32_t rank) {
  RankConn& conn = *conns_[rank];
  for (;;) {
    BspFrame frame;
    {
      sync::MutexLock lock(conn.mutex);
      while (!conn.writer_stop && conn.outbox.empty()) {
        conn.cv.wait(conn.mutex);
      }
      if (conn.outbox.empty()) return;  // stopped and drained
      frame = std::move(conn.outbox.front());
      conn.outbox.pop_front();
    }
    if (!send_bsp_frame(conn.socket, frame).is_ok()) return;
  }
}

void Coordinator::enqueue(std::uint32_t rank, BspFrame frame) {
  RankConn& conn = *conns_[rank];
  {
    sync::MutexLock lock(conn.mutex);
    if (conn.writer_stop) return;
    conn.outbox.push_back(std::move(frame));
  }
  conn.cv.notify_one();
}

void Coordinator::post_control(std::uint32_t rank,
                               std::optional<BspFrame> frame) {
  {
    sync::MutexLock lock(control_mutex_);
    control_.push_back(ControlEvent{rank, std::move(frame)});
  }
  control_cv_.notify_all();
}

void Coordinator::disconnect(std::uint32_t rank) {
  RankConn& conn = *conns_[rank];
  conn.socket.shutdown();
  {
    sync::MutexLock lock(conn.mutex);
    conn.writer_stop = true;
  }
  conn.cv.notify_all();
  bool was_connected = false;
  {
    sync::MutexLock lock(control_mutex_);
    was_connected = rank_status_[rank].connected;
    rank_status_[rank].connected = false;
  }
  if (was_connected) {
    GEMS_LOG(Info) << "cluster: rank " << rank << " disconnected";
    post_control(rank, std::nullopt);
  }
}

void Coordinator::refresh_state(const exec::ExecContext& ctx) {
  sync::MutexLock lock(state_mutex_);
  if (state_version_ == ctx.graph_version) return;
  state_bytes_ = store::encode_snapshot(ctx, /*wal_seq=*/0);
  state_crc_ = crc32(state_bytes_);
  state_version_ = ctx.graph_version;
}

Status Coordinator::ensure_rank_synced(std::uint32_t rank) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.rank_wait_timeout_ms);
  std::uint32_t want = 0;
  {
    sync::MutexLock lock(state_mutex_);
    want = state_crc_;
  }
  {
    sync::MutexLock lock(control_mutex_);
    while (!rank_status_[rank].connected) {
      if (!control_cv_.wait_until(control_mutex_, deadline) &&
          !rank_status_[rank].connected) {
        return unavailable("cluster rank " + std::to_string(rank) +
                           " is not connected; re-run the script");
      }
    }
    if (rank_status_[rank].state_crc == want) return Status::ok();
  }

  BspFrame sync_frame;
  sync_frame.kind = BspKind::kSync;
  sync_frame.dest = rank;
  {
    sync::MutexLock lock(state_mutex_);
    sync_frame.payload = state_bytes_;
  }
  const std::size_t image_bytes = sync_frame.payload.size();
  enqueue(rank, std::move(sync_frame));
  {
    sync::MutexLock lock(metrics_mutex_);
    ++totals_.syncs;
    totals_.sync_bytes += image_bytes;
  }

  sync::MutexLock lock(control_mutex_);
  while (rank_status_[rank].connected &&
         rank_status_[rank].state_crc != want) {
    if (!control_cv_.wait_until(control_mutex_, deadline) &&
        rank_status_[rank].connected &&
        rank_status_[rank].state_crc != want) {
      return unavailable("cluster rank " + std::to_string(rank) +
                         " state sync timed out; re-run the script");
    }
  }
  if (!rank_status_[rank].connected) {
    return unavailable("cluster rank " + std::to_string(rank) +
                       " disconnected during state sync; re-run the "
                       "script");
  }
  return Status::ok();
}

Result<BspFrame> Coordinator::await_control(std::uint32_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  sync::MutexLock lock(control_mutex_);
  while (control_.empty()) {
    if (!control_cv_.wait_until(control_mutex_, deadline) &&
        control_.empty()) {
      return deadline_exceeded("timed out waiting for cluster ranks");
    }
  }
  ControlEvent ev = std::move(control_.front());
  control_.pop_front();
  if (!ev.frame.has_value()) {
    return unavailable("cluster rank " + std::to_string(ev.rank) +
                       " disconnected");
  }
  return std::move(*ev.frame);
}

}  // namespace gems::cluster
