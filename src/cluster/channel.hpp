// The rank-side BSP transport: a dist::Comm implementation over one TCP
// connection to the coordinator (star topology — the coordinator routes
// rank-to-rank kData frames and implements the barrier as collect-all /
// broadcast-release). The distributed matcher body runs over this exactly
// as it runs over the SimCluster; the application send stream is
// byte-identical by construction (self-sends stay local and uncounted,
// the collective pattern lives in dist::Comm::allreduce_sum).
#pragma once

#include <cstdint>
#include <deque>

#include "cluster/bsp_wire.hpp"
#include "dist/runtime.hpp"
#include "net/socket.hpp"

namespace gems::cluster {

/// Per-channel communication counters, reset per job.
struct ChannelMetrics {
  std::uint64_t messages = 0;       // app messages sent (excl. self-sends)
  std::uint64_t payload_bytes = 0;  // app payload bytes (sim-comparable)
  std::uint64_t wire_bytes = 0;     // frame bytes sent incl. headers
  std::uint64_t stall_us = 0;       // blocked in socket reads
  std::uint64_t barriers = 0;
};

/// One rank's Comm for the duration of one job. Not thread-safe: the rank
/// body is single-threaded over its channel (intra-rank parallelism stays
/// below the Comm surface, as in the sim).
///
/// Transport failure mid-superstep is fail-stop for the rank process
/// (GEMS_CHECK): the BSP protocol cannot make progress without the
/// coordinator, and the coordinator owns recovery — it fails the job with
/// a typed retryable kUnavailable and re-syncs the rank when it returns.
class RankChannel : public dist::Comm {
 public:
  RankChannel(const net::Socket& socket, int rank, int size,
              std::size_t max_frame_bytes = kDefaultMaxBspFrameBytes)
      : socket_(socket),
        rank_(rank),
        size_(size),
        max_frame_bytes_(max_frame_bytes) {}

  int rank() const noexcept override { return rank_; }
  int size() const noexcept override { return size_; }

  void send(int to, int tag, std::span<const std::uint8_t> payload) override;
  dist::Message recv() override;
  void barrier() override;

  const ChannelMetrics& metrics() const noexcept { return metrics_; }

 private:
  /// Blocking framed read with stall accounting; fail-stop on transport
  /// or protocol errors.
  BspFrame read_frame();

  const net::Socket& socket_;
  int rank_;
  int size_;
  std::size_t max_frame_bytes_;
  /// Local mailbox: self-sends, and kData frames that arrive while this
  /// rank is blocked inside barrier() (a peer can race ahead into its
  /// next exchange before our release frame is delivered).
  std::deque<dist::Message> mailbox_;
  ChannelMetrics metrics_;
};

}  // namespace gems::cluster
