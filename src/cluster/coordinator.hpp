// The cluster coordinator: owns the catalog (a server::Database), accepts
// rank worker connections, keeps their state images in sync, routes
// rank-to-rank BSP traffic (star topology), dispatches distributed match
// jobs and merges rank results — the front-end/backend split of the
// paper's GEMS architecture (Sec. III) across real process boundaries.
//
// Threading model. One accept thread admits ranks; each connected rank
// gets a reader thread (dispatches kData/kBarrier to routing state,
// everything else to the control inbox) and a writer thread draining an
// unbounded outbox queue. Routing through queues — never writing a peer's
// socket from a reader — means a slow rank can never deadlock the star.
// Jobs are serialized by a coordinator-level mutex: concurrent read
// scripts may both reach the dist_matcher hook, but the BSP wire runs one
// collective job at a time.
//
// Recovery contract. A rank greeting with the CRC of the coordinator's
// current state image skips the sync (the restart fast path: it recovered
// the identical image from its per-rank store directory). A rank dying
// mid-job fails that job with a typed retryable kUnavailable; net::Client
// and the shell auto-retry once, by which time the returned rank has been
// re-admitted.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/bsp_wire.hpp"
#include "common/status.hpp"
#include "common/sync.hpp"
#include "exec/matcher.hpp"
#include "net/socket.hpp"
#include "server/cluster_metrics.hpp"
#include "server/database.hpp"

namespace gems::cluster {

struct CoordinatorOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral (tests); port() reports the bound port.
  std::uint16_t port = 0;
  std::size_t num_ranks = 2;
  std::size_t max_frame_bytes = kDefaultMaxBspFrameBytes;
  /// Ask ranks to record their send streams and keep the last job's
  /// per-rank transcripts (the byte-identity oracle's wire side).
  bool record_transcripts = false;
  /// How long wait_for_ranks()/jobs wait for a rank before giving up.
  std::uint32_t rank_wait_timeout_ms = 30000;
};

class Coordinator {
 public:
  Coordinator(server::Database& db, CoordinatorOptions options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Binds the listener and starts the accept loop.
  Status start();

  /// Bound port (valid after start()).
  std::uint16_t port() const { return port_; }

  /// Blocks until every rank is connected and state-synced (or the rank
  /// wait timeout elapses).
  Status wait_for_ranks();

  /// Installs the distributed-matcher hook and the cluster metrics
  /// provider on the database. Call after start().
  void attach();

  /// Runs one distributed match over the connected ranks. kUnimplemented
  /// when the network is not distributable (caller falls back to the
  /// local matcher); kUnavailable when a rank is down (typed, retryable).
  Result<exec::MatchResult> match_distributed(
      const graql::GraphQueryStmt& stmt, std::size_t network_index,
      const exec::ConstraintNetwork& net,
      const relational::ParamMap& params, const exec::ExecContext& ctx);

  server::ClusterMetricsSnapshot metrics() const;

  /// Per-rank send streams of the last completed job (only populated when
  /// options.record_transcripts is set).
  std::vector<std::vector<std::uint8_t>> last_transcripts() const;

  /// State images shipped since start (the recovery tests assert a
  /// restarted rank does NOT bump this).
  std::uint64_t sync_count() const;

  /// Sends kShutdown to every connected rank and joins all threads.
  /// Idempotent; also run by the destructor.
  void shutdown();

 private:
  struct RankConn {
    net::Socket socket;
    std::thread reader;
    std::thread writer;

    sync::Mutex mutex;
    sync::CondVar cv;
    std::deque<BspFrame> outbox GEMS_GUARDED_BY(mutex);
    bool writer_stop GEMS_GUARDED_BY(mutex) = false;
  };

  /// Admission / state-sync view of one rank. Lives in the coordinator
  /// (rank_status_, guarded by control_mutex_) rather than in RankConn:
  /// its old home left the fields guarded by *another object's* mutex, a
  /// relationship the thread safety analysis cannot express — now the
  /// data and its capability share one owner.
  struct RankStatus {
    bool connected = false;
    std::uint32_t state_crc = 0;  // last greeted/acked image CRC
  };

  /// A control frame (kJobDone / kSyncAck / kError) from a rank, or a
  /// disconnect notice (frame absent).
  struct ControlEvent {
    std::uint32_t rank = 0;
    std::optional<BspFrame> frame;  // nullopt = rank disconnected
  };

  void accept_loop();
  void reader_loop(std::uint32_t rank);
  void writer_loop(std::uint32_t rank);
  void enqueue(std::uint32_t rank, BspFrame frame);
  void post_control(std::uint32_t rank, std::optional<BspFrame> frame);
  void disconnect(std::uint32_t rank);

  /// Re-encodes the cached state image from `ctx` when the graph version
  /// moved. `ctx` must be quiescent for the duration of the encode — a
  /// pinned epoch's immutable context, or the live one under exclusive
  /// access.
  void refresh_state(const exec::ExecContext& ctx);

  /// Ensures `rank` holds the current image: ships kSync and waits for
  /// the ack when its CRC differs. The REQUIRES annotation replaces the
  /// old "expects jobs_mutex_ held" comment — calling it without the job
  /// lock is now a compile error under clang.
  Status ensure_rank_synced(std::uint32_t rank) GEMS_REQUIRES(jobs_mutex_);

  /// Waits for the next control event (kJobDone/kError/disconnect).
  Result<BspFrame> await_control(std::uint32_t timeout_ms);

  server::Database& db_;
  CoordinatorOptions options_;
  net::Socket listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool attached_ = false;

  std::vector<std::unique_ptr<RankConn>> conns_;

  // Lock order: jobs_mutex_ is the job driver's outermost lock; the four
  // leaf mutexes below are taken (never nested in each other) under it.
  // The ACQUIRED_BEFORE edges make an inversion a clang compile error.

  // One BSP job at a time.
  sync::Mutex jobs_mutex_ GEMS_ACQUIRED_BEFORE(barrier_mutex_,
                                               control_mutex_, state_mutex_,
                                               metrics_mutex_);
  std::uint64_t next_job_id_ GEMS_GUARDED_BY(jobs_mutex_) = 1;

  // Barrier state: release every rank's outbox once all arrive.
  sync::Mutex barrier_mutex_;
  std::size_t barrier_arrivals_ GEMS_GUARDED_BY(barrier_mutex_) = 0;

  // Control inbox: reader threads post, the job driver consumes. Also
  // guards rank_status_ (waiters use control_cv_): admission, disconnect,
  // and the state-sync handshake.
  mutable sync::Mutex control_mutex_;
  sync::CondVar control_cv_;
  std::deque<ControlEvent> control_ GEMS_GUARDED_BY(control_mutex_);
  std::vector<RankStatus> rank_status_ GEMS_GUARDED_BY(control_mutex_);

  // Cached state image (what every rank must hold before a job).
  mutable sync::Mutex state_mutex_;
  std::vector<std::uint8_t> state_bytes_ GEMS_GUARDED_BY(state_mutex_);
  std::uint32_t state_crc_ GEMS_GUARDED_BY(state_mutex_) = 0;
  // ctx.graph_version at encode.
  std::uint64_t state_version_ GEMS_GUARDED_BY(state_mutex_) = ~0ull;

  // Metrics.
  mutable sync::Mutex metrics_mutex_;
  server::ClusterMetricsSnapshot totals_ GEMS_GUARDED_BY(metrics_mutex_);
  std::vector<std::vector<std::uint8_t>> last_transcripts_
      GEMS_GUARDED_BY(metrics_mutex_);
};

}  // namespace gems::cluster
