#include "cluster/channel.hpp"

#include <chrono>
#include <string>

#include "common/check.hpp"

namespace gems::cluster {

namespace {

class StallTimer {
 public:
  explicit StallTimer(std::uint64_t& counter) : counter_(counter) {}
  ~StallTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    counter_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
  }

 private:
  std::uint64_t& counter_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

}  // namespace

void RankChannel::send(int to, int tag,
                       std::span<const std::uint8_t> payload) {
  if (to == rank_) {
    // Delivered locally, not counted as network traffic — same contract
    // as SimCluster::deliver.
    dist::Message m;
    m.from = rank_;
    m.tag = tag;
    m.payload.assign(payload.begin(), payload.end());
    mailbox_.push_back(std::move(m));
    return;
  }
  BspFrame frame;
  frame.kind = BspKind::kData;
  frame.from = static_cast<std::uint32_t>(rank_);
  frame.dest = static_cast<std::uint32_t>(to);
  frame.tag = tag;
  frame.payload.assign(payload.begin(), payload.end());
  const Status sent = send_bsp_frame(socket_, frame);
  GEMS_CHECK_MSG(sent.is_ok(),
                 ("rank channel send failed: " + sent.to_string()).c_str());
  metrics_.messages += 1;
  metrics_.payload_bytes += payload.size();
  metrics_.wire_bytes += frame.wire_size();
}

dist::Message RankChannel::recv() {
  for (;;) {
    if (!mailbox_.empty()) {
      dist::Message m = std::move(mailbox_.front());
      mailbox_.pop_front();
      return m;
    }
    BspFrame frame = read_frame();
    GEMS_CHECK_MSG(frame.kind == BspKind::kData,
                   ("rank channel expected a data frame, got " +
                    std::string(bsp_kind_name(frame.kind)))
                       .c_str());
    dist::Message m;
    m.from = static_cast<int>(frame.from);
    m.tag = frame.tag;
    m.payload = std::move(frame.payload);
    return m;
  }
}

void RankChannel::barrier() {
  BspFrame arrive;
  arrive.kind = BspKind::kBarrier;
  arrive.from = static_cast<std::uint32_t>(rank_);
  const Status sent = send_bsp_frame(socket_, arrive);
  GEMS_CHECK_MSG(
      sent.is_ok(),
      ("rank channel barrier failed: " + sent.to_string()).c_str());
  metrics_.wire_bytes += arrive.wire_size();
  // Data frames can overtake the release: a released peer may start its
  // next exchange while we still wait. Queue them for the next recv().
  for (;;) {
    BspFrame frame = read_frame();
    if (frame.kind == BspKind::kBarrierRelease) break;
    GEMS_CHECK_MSG(frame.kind == BspKind::kData,
                   ("rank channel expected data/release in barrier, got " +
                    std::string(bsp_kind_name(frame.kind)))
                       .c_str());
    dist::Message m;
    m.from = static_cast<int>(frame.from);
    m.tag = frame.tag;
    m.payload = std::move(frame.payload);
    mailbox_.push_back(std::move(m));
  }
  metrics_.barriers += 1;
}

BspFrame RankChannel::read_frame() {
  StallTimer stall(metrics_.stall_us);
  Result<BspFrame> frame = recv_bsp_frame(socket_, max_frame_bytes_);
  GEMS_CHECK_MSG(frame.is_ok(), ("rank channel lost the coordinator: " +
                                 frame.status().to_string())
                                    .c_str());
  return std::move(frame).value();
}

}  // namespace gems::cluster
