#include "cluster/rank_worker.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>
#include <utility>

#include "common/crc32.hpp"
#include "common/logging.hpp"
#include "cluster/channel.hpp"
#include "dist/dist_matcher.hpp"
#include "dist/partition.hpp"
#include "exec/lowering.hpp"
#include "graql/ir.hpp"
#include "net/wire.hpp"
#include "store/format.hpp"
#include "store/snapshot.hpp"

namespace gems::cluster {

RankWorker::RankWorker(RankWorkerOptions options)
    : options_(std::move(options)) {
  if (options_.intra_node_threads > 0) {
    intra_pool_ = std::make_unique<ThreadPool>(options_.intra_node_threads);
  }
}

RankWorker::~RankWorker() = default;

std::string RankWorker::snapshot_path() const {
  return (std::filesystem::path(options_.store_dir) / "snapshot.gsnp")
      .string();
}

void RankWorker::recover() {
  if (options_.store_dir.empty()) return;
  Result<std::vector<std::uint8_t>> image =
      store::read_file_bytes(snapshot_path());
  if (!image.is_ok()) {
    if (image.status().code() != StatusCode::kNotFound) {
      GEMS_LOG(Warning) << "rank " << options_.rank
                        << ": unreadable state image, starting stateless: "
                        << image.status().to_string();
    }
    return;
  }
  auto fresh = std::make_unique<State>();
  Result<store::SnapshotInfo> info =
      store::decode_snapshot(*image, fresh->ctx);
  if (!info.is_ok()) {
    // A torn or stale image is not fatal: greet with CRC 0 and let the
    // coordinator re-sync.
    GEMS_LOG(Warning) << "rank " << options_.rank
                      << ": corrupt state image, starting stateless: "
                      << info.status().to_string();
    return;
  }
  state_ = std::move(fresh);
  state_crc_ = crc32(*image);
  recovered_ = true;
  GEMS_LOG(Info) << "rank " << options_.rank << " recovered state image ("
                 << image->size() << " bytes, crc " << state_crc_ << ")";
}

Status RankWorker::handle_sync(const BspFrame& frame) {
  auto fresh = std::make_unique<State>();
  Result<store::SnapshotInfo> info =
      store::decode_snapshot(frame.payload, fresh->ctx);
  if (!info.is_ok()) {
    return info.status().with_context("rank state sync");
  }
  state_ = std::move(fresh);
  state_crc_ = crc32(frame.payload);
  if (!options_.store_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.store_dir, ec);
    const Status persisted =
        store::write_file_durable(snapshot_path(), frame.payload);
    if (!persisted.is_ok()) {
      // Serving can continue in-memory; the next restart just re-syncs.
      GEMS_LOG(Warning) << "rank " << options_.rank
                        << ": could not persist state image: "
                        << persisted.to_string();
    }
  }
  BspFrame ack;
  ack.kind = BspKind::kSyncAck;
  ack.from = options_.rank;
  net::WireWriter w;
  w.u32(state_crc_);
  ack.payload = w.take();
  return send_bsp_frame(socket_, ack);
}

Status RankWorker::handle_job(const BspFrame& frame) {
  // Local (pre-collective) failures are reported with a kError reply; they
  // are deterministic over identical replicas, so every rank declines the
  // same way and nobody is left blocked in the collective.
  const auto fail = [&](const Status& status) -> Status {
    BspFrame err;
    err.kind = BspKind::kError;
    err.from = options_.rank;
    err.payload = encode_error(status);
    return send_bsp_frame(socket_, err);
  };

  Result<JobPayload> job = decode_job(frame.payload);
  if (!job.is_ok()) return fail(job.status());
  if (state_ == nullptr) {
    return fail(internal_error("rank " + std::to_string(options_.rank) +
                               " received a job before any state sync"));
  }
  exec::ExecContext& ctx = state_->ctx;

  Result<graql::Script> script = graql::decode_script(job->ir);
  if (!script.is_ok()) return fail(script.status());
  if (script->statements.size() != 1) {
    return fail(invalid_argument("cluster job IR must hold exactly one "
                                 "statement"));
  }
  const auto* stmt =
      std::get_if<graql::GraphQueryStmt>(&script->statements[0]);
  if (stmt == nullptr) {
    return fail(invalid_argument("cluster job IR is not a graph query"));
  }
  Result<relational::ParamMap> params = graql::decode_params(job->params);
  if (!params.is_ok()) return fail(params.status());

  const exec::SubgraphResolver resolver =
      [&ctx](const std::string& name) -> Result<exec::SubgraphPtr> {
    auto it = ctx.subgraphs.find(name);
    if (it == ctx.subgraphs.end()) {
      return not_found("unknown subgraph '" + name + "' on rank replica");
    }
    return it->second;
  };
  Result<exec::LoweredQuery> lowered = exec::lower_graph_query(
      *stmt, ctx.graph, resolver, *params, state_->pool);
  if (!lowered.is_ok()) return fail(lowered.status());
  if (job->network_index >= lowered->networks.size()) {
    return fail(internal_error(
        "cluster job network index " + std::to_string(job->network_index) +
        " out of range (" + std::to_string(lowered->networks.size()) +
        " networks)"));
  }
  const exec::ConstraintNetwork& net =
      lowered->networks[job->network_index];

  // Same shard formula as the in-process simulation; the send stream does
  // not depend on it (shard outboxes concatenate in word-range order).
  const std::size_t num_ranks = job->num_ranks;
  const std::size_t rank_shards =
      intra_pool_ != nullptr
          ? std::max<std::size_t>(1, intra_pool_->size() / num_ranks)
          : 1;
  const dist::VertexPartition partition(ctx.graph, num_ranks);

  RankChannel channel(socket_, static_cast<int>(options_.rank),
                      static_cast<int>(num_ranks),
                      options_.max_frame_bytes);
  dist::RankMatchOutput out;
  std::vector<std::uint8_t> transcript;
  if (job->record_transcript) {
    dist::RecordingComm recording(channel);
    dist::run_match_rank(net, ctx.graph, state_->pool, partition, recording,
                         out, intra_pool_.get(), rank_shards);
    transcript = std::move(recording.transcript());
  } else {
    dist::run_match_rank(net, ctx.graph, state_->pool, partition, channel,
                         out, intra_pool_.get(), rank_shards);
  }

  JobDonePayload done;
  done.job_id = job->job_id;
  done.messages = channel.metrics().messages;
  done.payload_bytes = channel.metrics().payload_bytes;
  done.wire_bytes = channel.metrics().wire_bytes;
  done.activations = out.activations_sent;
  done.supersteps = out.supersteps;
  done.stall_us = channel.metrics().stall_us;
  done.transcript = std::move(transcript);
  if (options_.rank == 0) {
    dist::encode_domains(out.domains, done.domains);
  }
  BspFrame reply;
  reply.kind = BspKind::kJobDone;
  reply.from = options_.rank;
  reply.payload = encode_job_done(done);
  GEMS_RETURN_IF_ERROR(send_bsp_frame(socket_, reply));
  ++jobs_run_;
  return Status::ok();
}

Status RankWorker::run() {
  recover();

  Status last = unavailable("no connection attempt made");
  for (std::uint32_t attempt = 0; attempt <= options_.connect_retries;
       ++attempt) {
    Result<net::Socket> sock = net::tcp_connect(options_.coordinator_host,
                                                options_.coordinator_port);
    if (sock.is_ok()) {
      socket_ = std::move(sock).value();
      last = Status::ok();
      break;
    }
    last = sock.status();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.connect_backoff_ms));
  }
  GEMS_RETURN_IF_ERROR(last.with_context(
      "rank " + std::to_string(options_.rank) + " connecting to " +
      options_.coordinator_host + ":" +
      std::to_string(options_.coordinator_port)));

  HelloPayload hello;
  hello.rank = options_.rank;
  hello.state_crc = state_crc_;
  hello.worker_name = options_.worker_name;
  BspFrame greet;
  greet.kind = BspKind::kHello;
  greet.from = options_.rank;
  greet.payload = encode_hello(hello);
  GEMS_RETURN_IF_ERROR(send_bsp_frame(socket_, greet));

  Result<BspFrame> first =
      recv_bsp_frame(socket_, options_.max_frame_bytes);
  GEMS_RETURN_IF_ERROR(first.status());
  if (first->kind == BspKind::kError) {
    return decode_error(first->payload);
  }
  if (first->kind != BspKind::kWelcome) {
    return parse_error("expected a welcome frame, got " +
                       std::string(bsp_kind_name(first->kind)));
  }
  Result<WelcomePayload> welcome = decode_welcome(first->payload);
  GEMS_RETURN_IF_ERROR(welcome.status());
  GEMS_LOG(Info) << "rank " << options_.rank << " admitted ("
                 << welcome->num_ranks << " ranks, sync "
                 << (welcome->sync_needed ? "pending" : "skipped") << ")";

  for (;;) {
    Result<BspFrame> frame =
        recv_bsp_frame(socket_, options_.max_frame_bytes);
    if (!frame.is_ok()) {
      return frame.status().with_context(
          "rank " + std::to_string(options_.rank) +
          " lost the coordinator");
    }
    switch (frame->kind) {
      case BspKind::kSync:
        GEMS_RETURN_IF_ERROR(handle_sync(*frame));
        break;
      case BspKind::kJob:
        GEMS_RETURN_IF_ERROR(handle_job(*frame));
        break;
      case BspKind::kError:
        // A job this rank already finished (or declined) failed on a peer;
        // between jobs there is nothing to unwind.
        break;
      case BspKind::kShutdown:
        GEMS_LOG(Info) << "rank " << options_.rank << " shutting down ("
                       << jobs_run_ << " jobs)";
        return Status::ok();
      default:
        return parse_error("rank " + std::to_string(options_.rank) +
                           " received an unexpected " +
                           std::string(bsp_kind_name(frame->kind)) +
                           " frame");
    }
  }
}

}  // namespace gems::cluster
