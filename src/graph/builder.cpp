#include "graph/builder.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/check.hpp"
#include "relational/eval.hpp"
#include "relational/operators.hpp"
#include "relational/row_key.hpp"

namespace gems::graph {

using relational::BoundExpr;
using relational::BoundExprPtr;
using relational::ExprPtr;
using relational::ParamMap;
using relational::RowCursor;
using relational::Slot;
using storage::ColumnIndex;
using storage::RowIndex;
using storage::Table;
using storage::TablePtr;

Status add_vertex_type(GraphView& graph, const VertexDecl& decl,
                       const storage::TableCatalog& tables, StringPool& pool,
                       const ParamMap& params) {
  GEMS_ASSIGN_OR_RETURN(TablePtr source, tables.find(decl.table));

  std::vector<ColumnIndex> key_cols;
  key_cols.reserve(decl.key_columns.size());
  for (const auto& k : decl.key_columns) {
    auto col = source->schema().find(k);
    if (!col) {
      return not_found("vertex '" + decl.name + "': table '" + decl.table +
                       "' has no column '" + k + "'");
    }
    key_cols.push_back(*col);
  }

  BoundExprPtr filter;
  if (decl.where) {
    relational::TableScope scope(*source, decl.name);
    GEMS_ASSIGN_OR_RETURN(
        filter, relational::bind_predicate(decl.where, scope, params, pool));
  }

  GEMS_ASSIGN_OR_RETURN(
      VertexType vt,
      VertexType::build(graph.next_vertex_type_id(), decl.name,
                        std::move(source), std::move(key_cols),
                        std::move(filter)));
  return graph.add_vertex_type(std::move(vt));
}

namespace {

// A participant in the Eq. 2 join: the source-vertex table, the
// target-vertex table, or an associated table.
struct JoinSource {
  std::vector<std::string> qualifiers;  // names that address this source
  TablePtr table;
  const VertexType* vertex = nullptr;  // non-null for endpoint sources
};

constexpr std::size_t kMaxSources = 8;

/// Scope resolving `qualifier.column` across all join sources.
class MultiSourceScope final : public relational::Scope {
 public:
  explicit MultiSourceScope(std::span<const JoinSource> sources)
      : sources_(sources) {}

  Result<Slot> resolve(std::string_view qualifier,
                       std::string_view column) const override {
    if (qualifier.empty()) {
      // Bare column: unique across all sources or ambiguous.
      std::optional<Slot> found;
      for (std::size_t s = 0; s < sources_.size(); ++s) {
        auto col = sources_[s].table->schema().find(column);
        if (!col) continue;
        if (found) {
          return type_error("column '" + std::string(column) +
                            "' is ambiguous across the edge's tables; "
                            "qualify it");
        }
        found = Slot{static_cast<std::uint16_t>(s), *col,
                     sources_[s].table->schema().column(*col).type};
      }
      if (!found) {
        return not_found("no edge source has a column '" +
                         std::string(column) + "'");
      }
      return *found;
    }
    for (std::size_t s = 0; s < sources_.size(); ++s) {
      const auto& quals = sources_[s].qualifiers;
      if (std::find(quals.begin(), quals.end(), qualifier) == quals.end()) {
        continue;
      }
      auto col = sources_[s].table->schema().find(column);
      if (!col) {
        return not_found("'" + std::string(qualifier) +
                         "' has no column '" + std::string(column) + "'");
      }
      return Slot{static_cast<std::uint16_t>(s), *col,
                  sources_[s].table->schema().column(*col).type};
    }
    return not_found("unknown qualifier '" + std::string(qualifier) +
                     "' in edge declaration");
  }

 private:
  std::span<const JoinSource> sources_;
};

/// Distinct source indices referenced by a bound expression.
void collect_sources(const BoundExpr& e, std::unordered_set<int>& out) {
  switch (e.kind) {
    case BoundExpr::Kind::kColumnRef:
      out.insert(e.slot.source);
      return;
    case BoundExpr::Kind::kConst:
      return;
    case BoundExpr::Kind::kUnary:
      collect_sources(*e.lhs, out);
      return;
    case BoundExpr::Kind::kBinary:
      collect_sources(*e.lhs, out);
      collect_sources(*e.rhs, out);
      return;
  }
}

struct JoinConjunct {
  Slot left;
  Slot right;
};

/// Flat tuple store: tuple t occupies row_of[t*width .. t*width+width).
struct TupleSet {
  std::size_t width = 0;
  std::vector<RowIndex> rows;

  std::size_t size() const { return width == 0 ? 0 : rows.size() / width; }
  std::span<const RowIndex> tuple(std::size_t t) const {
    return {rows.data() + t * width, width};
  }
};

/// The Eq. 2 join, shared by the full build (delta == nullptr: one pass
/// over every candidate row) and incremental maintenance (one pass per
/// occurrence of the ingested table, restricted to newly appended rows,
/// appended after the base's edges). Edge ordering is deterministic for a
/// given operation sequence — WAL replay re-runs the identical per-record
/// path, so recovered state is byte-identical to the live build.
Result<EdgeType> build_edge_type(const GraphView& graph, const EdgeDecl& decl,
                                 const storage::TableCatalog& tables,
                                 StringPool& pool, const ParamMap& params,
                                 EdgeTypeId id, const EdgeDelta* delta) {
  if (!decl.where) {
    return invalid_argument("edge '" + decl.name +
                            "' requires a where clause");
  }
  GEMS_ASSIGN_OR_RETURN(VertexTypeId src_id,
                        graph.find_vertex_type(decl.source.vertex_type));
  GEMS_ASSIGN_OR_RETURN(VertexTypeId dst_id,
                        graph.find_vertex_type(decl.target.vertex_type));
  const VertexType& src_vt = graph.vertex_type(src_id);
  const VertexType& dst_vt = graph.vertex_type(dst_id);

  // ---- Assemble the join sources --------------------------------------
  std::vector<JoinSource> sources;
  const bool same_endpoint_type = src_id == dst_id;
  auto endpoint_qualifiers = [&](const EdgeEndpoint& ep) {
    std::vector<std::string> quals;
    if (!ep.alias.empty()) quals.push_back(ep.alias);
    // The bare type name addresses an endpoint only when unambiguous
    // (Fig. 2's subclass edge uses `TypeVtx as A, TypeVtx as B`).
    if (!same_endpoint_type) quals.push_back(ep.vertex_type);
    return quals;
  };
  if (same_endpoint_type &&
      (decl.source.alias.empty() || decl.target.alias.empty())) {
    return invalid_argument("edge '" + decl.name +
                            "': endpoints of the same vertex type need "
                            "'as' aliases");
  }
  sources.push_back(JoinSource{endpoint_qualifiers(decl.source),
                               src_vt.source_ptr(), &src_vt});
  sources.push_back(JoinSource{endpoint_qualifiers(decl.target),
                               dst_vt.source_ptr(), &dst_vt});
  for (const auto& name : decl.assoc_tables) {
    GEMS_ASSIGN_OR_RETURN(TablePtr t, tables.find(name));
    sources.push_back(JoinSource{{name}, std::move(t), nullptr});
  }
  if (sources.size() > kMaxSources) {
    return invalid_argument("edge '" + decl.name + "' joins too many tables");
  }
  const std::size_t n_sources = sources.size();

  // ---- Bind and classify the WHERE conjuncts --------------------------
  MultiSourceScope scope(sources);
  std::vector<std::vector<BoundExprPtr>> per_source(n_sources);
  std::vector<JoinConjunct> join_conjuncts;
  std::vector<BoundExprPtr> residual;

  for (const ExprPtr& conjunct : relational::split_conjuncts(decl.where)) {
    GEMS_ASSIGN_OR_RETURN(
        BoundExprPtr bound,
        relational::bind_predicate(conjunct, scope, params, pool));
    std::unordered_set<int> referenced;
    collect_sources(*bound, referenced);
    if (referenced.size() <= 1) {
      const int s = referenced.empty() ? 0 : *referenced.begin();
      per_source[static_cast<std::size_t>(s)].push_back(std::move(bound));
      continue;
    }
    // column = column across exactly two sources -> equi-join conjunct.
    if (referenced.size() == 2 && bound->kind == BoundExpr::Kind::kBinary &&
        bound->bop == relational::BinaryOp::kEq &&
        bound->lhs->kind == BoundExpr::Kind::kColumnRef &&
        bound->rhs->kind == BoundExpr::Kind::kColumnRef) {
      if (bound->lhs->slot.type.kind != bound->rhs->slot.type.kind) {
        return type_error("edge '" + decl.name + "': join condition '" +
                          conjunct->to_string() +
                          "' compares different types");
      }
      join_conjuncts.push_back({bound->lhs->slot, bound->rhs->slot});
      continue;
    }
    residual.push_back(std::move(bound));
  }

  // ---- Candidate rows per source (vertex filter + per-source conjuncts)
  std::vector<std::vector<RowIndex>> candidates(n_sources);
  for (std::size_t s = 0; s < n_sources; ++s) {
    const Table& t = *sources[s].table;
    std::array<RowCursor, kMaxSources> cursors{};
    cursors[s].table = &t;
    const std::span<const RowCursor> cspan(cursors.data(), n_sources);
    for (std::size_t r = 0; r < t.num_rows(); ++r) {
      const RowIndex row = static_cast<RowIndex>(r);
      if (sources[s].vertex != nullptr &&
          !sources[s].vertex->matching_rows().test(r)) {
        continue;
      }
      cursors[s].row = row;
      bool ok = true;
      for (const auto& pred : per_source[s]) {
        if (!relational::eval_predicate(*pred, cspan, pool)) {
          ok = false;
          break;
        }
      }
      if (ok) candidates[s].push_back(row);
    }
  }

  // ---- Join: start at `start`, greedily attach connected sources --------
  auto run_join = [&](std::size_t start,
                      const std::vector<std::vector<RowIndex>>& cand)
      -> Result<TupleSet> {
    TupleSet tuples;
    tuples.width = n_sources;
    std::vector<bool> joined(n_sources, false);
    joined[start] = true;
    tuples.rows.reserve(cand[start].size() * n_sources);
    for (const RowIndex r : cand[start]) {
      for (std::size_t i = 0; i < n_sources; ++i) {
        tuples.rows.push_back(i == start ? r : kInvalidVertex);
      }
    }

    std::size_t joined_count = 1;
    while (joined_count < n_sources) {
      // Find an unjoined source connected to the joined set.
      std::size_t next = n_sources;
      for (std::size_t s = 0; s < n_sources && next == n_sources; ++s) {
        if (joined[s]) continue;
        for (const auto& jc : join_conjuncts) {
          const bool links =
              (jc.left.source == s && joined[jc.right.source]) ||
              (jc.right.source == s && joined[jc.left.source]);
          if (links) {
            next = s;
            break;
          }
        }
      }
      if (next == n_sources) {
        return invalid_argument(
            "edge '" + decl.name +
            "': where clause does not connect all tables with equality "
            "conditions (cross products are not supported)");
      }

      // Composite key: all conjuncts linking `next` to the joined set.
      std::vector<ColumnIndex> new_cols;
      std::vector<Slot> old_slots;
      for (const auto& jc : join_conjuncts) {
        if (jc.left.source == next && joined[jc.right.source]) {
          new_cols.push_back(jc.left.column);
          old_slots.push_back(jc.right);
        } else if (jc.right.source == next && joined[jc.left.source]) {
          new_cols.push_back(jc.right.column);
          old_slots.push_back(jc.left);
        }
      }

      // Hash the new source's candidate rows by composite key (mix64 via
      // RowKeyHash — the std::string hash skews buckets on interned-id
      // payloads; the encoded key format itself is unchanged).
      const Table& next_table = *sources[next].table;
      std::unordered_map<std::string, std::vector<RowIndex>,
                         relational::RowKeyHash, std::equal_to<>>
          index;
      index.reserve(cand[next].size());
      {
        std::string key;
        for (const RowIndex r : cand[next]) {
          key.clear();
          bool null_key = false;
          for (const ColumnIndex c : new_cols) {
            if (next_table.column(c).is_null(r)) {
              null_key = true;
              break;
            }
            relational::append_key_part(next_table, r, c, key);
          }
          if (!null_key) index[key].push_back(r);
        }
      }

      // Probe with each existing tuple.
      TupleSet next_tuples;
      next_tuples.width = n_sources;
      std::string key;
      for (std::size_t t = 0; t < tuples.size(); ++t) {
        const auto tuple = tuples.tuple(t);
        key.clear();
        bool null_key = false;
        for (const Slot& slot : old_slots) {
          const Table& ot = *sources[slot.source].table;
          const RowIndex orow = tuple[slot.source];
          if (ot.column(slot.column).is_null(orow)) {
            null_key = true;
            break;
          }
          relational::append_key_part(ot, orow, slot.column, key);
        }
        if (null_key) continue;
        auto it = index.find(key);
        if (it == index.end()) continue;
        for (const RowIndex r : it->second) {
          for (std::size_t i = 0; i < n_sources; ++i) {
            next_tuples.rows.push_back(i == next ? r : tuple[i]);
          }
        }
      }
      tuples = std::move(next_tuples);
      joined[next] = true;
      ++joined_count;
    }
    return tuples;
  };

  // ---- Map tuples to endpoint vertices and dedup ------------------------
  // Fig. 5 semantics: edges collapse onto distinct (source, target) vertex
  // pairs when an endpoint does not identify join rows one-to-one. That is
  // the case when the endpoint's vertex key collapses rows (data
  // many-to-one) *or* when the join reaches past the key into row-level
  // columns (e.g. Fig. 4 joins P.id while the key is P.country) — the
  // latter makes the rule stable under data that is only accidentally
  // one-to-one.
  auto joins_beyond_key = [&](std::uint16_t source,
                              const VertexType& vt) {
    for (const auto& jc : join_conjuncts) {
      for (const Slot& slot : {jc.left, jc.right}) {
        if (slot.source != source) continue;
        const auto& keys = vt.key_columns();
        if (std::find(keys.begin(), keys.end(), slot.column) == keys.end()) {
          return true;
        }
      }
    }
    return false;
  };
  const bool collapse = !src_vt.one_to_one() || !dst_vt.one_to_one() ||
                        joins_beyond_key(0, src_vt) ||
                        joins_beyond_key(1, dst_vt);
  const bool keep_attrs = decl.assoc_tables.size() == 1 && !collapse;

  std::vector<VertexIndex> src_out;
  std::vector<VertexIndex> dst_out;
  std::vector<RowIndex> attr_rows;  // rows of the single assoc table
  std::unordered_set<std::uint64_t> seen_pairs;
  std::unordered_set<std::string> seen_full;

  // Delta passes start from the base's edges: endpoint arrays are copied
  // verbatim (vertex numbering is stable across VertexType::extend), the
  // pair-dedup set is seeded so collapsed edges are not re-added, and the
  // attribute table is extended by appending to a clone. Tuple-identity
  // dedup needs no seeding: a new tuple contains at least one row index
  // >= first_new_row, which no base tuple can.
  TablePtr attr_table;
  if (delta != nullptr) {
    const EdgeType& base = *delta->base;
    src_out.reserve(base.num_edges());
    dst_out.reserve(base.num_edges());
    for (EdgeIndex e = 0; e < base.num_edges(); ++e) {
      src_out.push_back(base.source_vertex(e));
      dst_out.push_back(base.target_vertex(e));
      if (collapse) {
        seen_pairs.insert(
            (static_cast<std::uint64_t>(base.source_vertex(e)) << 32) |
            base.target_vertex(e));
      }
    }
    if (keep_attrs) {
      GEMS_CHECK(base.attr_table_ptr() != nullptr);
      attr_table = std::make_shared<Table>(*base.attr_table_ptr());
    }
  }

  // Residual filter + vertex mapping + dedup for one join pass.
  auto process_pass = [&](std::size_t start,
                          const std::vector<std::vector<RowIndex>>& cand)
      -> Status {
    GEMS_ASSIGN_OR_RETURN(TupleSet tuples, run_join(start, cand));
    std::array<RowCursor, kMaxSources> cursors{};
    for (std::size_t s = 0; s < n_sources; ++s) {
      cursors[s].table = sources[s].table.get();
    }
    const std::span<const RowCursor> cspan(cursors.data(), n_sources);
    for (std::size_t t = 0; t < tuples.size(); ++t) {
      const auto tuple = tuples.tuple(t);
      for (std::size_t s = 0; s < n_sources; ++s) cursors[s].row = tuple[s];
      bool ok = true;
      for (const auto& pred : residual) {
        if (!relational::eval_predicate(*pred, cspan, pool)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;

      const VertexIndex sv = src_vt.find_by_key(*sources[0].table, tuple[0],
                                                src_vt.key_columns());
      const VertexIndex dv = dst_vt.find_by_key(*sources[1].table, tuple[1],
                                                dst_vt.key_columns());
      if (sv == kInvalidVertex || dv == kInvalidVertex) continue;
      if (collapse) {
        const std::uint64_t pair =
            (static_cast<std::uint64_t>(sv) << 32) | dv;
        if (!seen_pairs.insert(pair).second) continue;
      } else {
        // One edge per distinct join entry: key on the full tuple.
        std::string full;
        for (const RowIndex r : tuple) {
          full.append(reinterpret_cast<const char*>(&r), sizeof(r));
        }
        if (!seen_full.insert(std::move(full)).second) continue;
      }
      src_out.push_back(sv);
      dst_out.push_back(dv);
      if (keep_attrs) {
        if (delta != nullptr) {
          const Table& assoc = *sources[2].table;
          for (std::size_t c = 0; c < assoc.num_columns(); ++c) {
            attr_table->column_mut(static_cast<ColumnIndex>(c))
                .append_from(assoc.column(static_cast<ColumnIndex>(c)),
                             tuple[2]);
          }
          attr_table->bump_row_count();
        } else {
          attr_rows.push_back(tuple[2]);
        }
      }
    }
    return Status::ok();
  };

  if (delta == nullptr) {
    GEMS_RETURN_IF_ERROR(process_pass(0, candidates));
  } else {
    // One pass per occurrence of the ingested table among the join
    // sources, with that occurrence restricted to the newly appended rows
    // (candidate lists are in ascending row order, so the restriction is a
    // suffix). A tuple joining new rows in several occurrences is found by
    // several passes; the dedup sets above collapse it to one edge.
    for (std::size_t o = 0; o < n_sources; ++o) {
      if (sources[o].table->name() != delta->ingested_table) continue;
      auto cand = candidates;
      auto& rows = cand[o];
      rows.erase(rows.begin(),
                 std::lower_bound(rows.begin(), rows.end(),
                                  delta->first_new_row));
      GEMS_RETURN_IF_ERROR(process_pass(o, cand));
    }
  }

  // ---- Edge attribute table ---------------------------------------------
  if (keep_attrs && delta == nullptr) {
    const Table& assoc = *sources[2].table;
    std::vector<ColumnIndex> all_cols(assoc.num_columns());
    for (std::size_t i = 0; i < all_cols.size(); ++i) {
      all_cols[i] = static_cast<ColumnIndex>(i);
    }
    attr_table = relational::materialize(assoc, attr_rows, all_cols,
                                         decl.name + "$attrs");
  }

  return EdgeType::assemble(id, decl.name, src_id, dst_id,
                            src_vt.num_vertices(), dst_vt.num_vertices(),
                            std::move(src_out), std::move(dst_out),
                            std::move(attr_table));
}

}  // namespace

Status add_edge_type(GraphView& graph, const EdgeDecl& decl,
                     const storage::TableCatalog& tables, StringPool& pool,
                     const ParamMap& params) {
  GEMS_ASSIGN_OR_RETURN(
      EdgeType et, build_edge_type(graph, decl, tables, pool, params,
                                   graph.next_edge_type_id(), nullptr));
  return graph.add_edge_type(std::move(et));
}

Result<EdgeType> extend_edge_type(const GraphView& graph, const EdgeDecl& decl,
                                  const storage::TableCatalog& tables,
                                  StringPool& pool, const ParamMap& params,
                                  const EdgeDelta& delta) {
  GEMS_CHECK(delta.base != nullptr);
  return build_edge_type(graph, decl, tables, pool, params, delta.base->id(),
                         &delta);
}

}  // namespace gems::graph
