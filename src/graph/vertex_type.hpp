// Vertex types — views over tables (paper Eq. 1):
//   V(a1..ak) = Π_{a1..ak} σ_φ(T)
// One vertex instance exists per distinct key-column combination among the
// rows passing the optional filter. One-to-one mappings (key is unique in
// the table) expose the full source schema as vertex attributes;
// many-to-one mappings (Fig. 4: ProducerCountry from Producers) expose
// only the key columns, because other attributes are ambiguous across the
// collapsed rows.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitset.hpp"
#include "common/status.hpp"
#include "graph/ids.hpp"
#include "relational/bound_expr.hpp"
#include "relational/row_key.hpp"
#include "storage/table.hpp"

namespace gems::graph {

class VertexType {
 public:
  /// Materializes the vertex set from `source` (Eq. 1). `filter` may be
  /// null. Called by GraphBuilder; use that instead of calling directly.
  static Result<VertexType> build(VertexTypeId id, std::string name,
                                  storage::TablePtr source,
                                  std::vector<storage::ColumnIndex> key_cols,
                                  relational::BoundExprPtr filter);

  VertexTypeId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }

  const storage::Table& source() const noexcept { return *source_; }
  storage::TablePtr source_ptr() const noexcept { return source_; }

  const std::vector<storage::ColumnIndex>& key_columns() const noexcept {
    return key_cols_;
  }

  /// True when each vertex corresponds to exactly one source row.
  bool one_to_one() const noexcept { return one_to_one_; }

  std::size_t num_vertices() const noexcept {
    return representative_row_.size();
  }

  /// The source row used to evaluate attribute conditions for `v`. For
  /// many-to-one vertices, only key columns are meaningful on this row.
  storage::RowIndex representative_row(VertexIndex v) const {
    return representative_row_.at(v);
  }

  /// Columns of the source schema that conditions on this vertex type may
  /// reference (full schema when one-to-one, key columns otherwise).
  bool attribute_visible(storage::ColumnIndex col) const noexcept;

  /// Resolves an attribute name to a source column, enforcing visibility.
  Result<storage::ColumnIndex> resolve_attribute(std::string_view name) const;

  /// Finds the vertex whose key equals the key columns of `row` in `table`
  /// (typically a join result or the source itself). `key_cols` addresses
  /// `table`. Returns kInvalidVertex when no such vertex exists.
  VertexIndex find_by_key(const storage::Table& table, storage::RowIndex row,
                          std::span<const storage::ColumnIndex> key_cols) const;

  /// Human-readable key of a vertex, e.g. "Product1" or "(US, 4)".
  std::string key_string(VertexIndex v) const;

  /// Source rows that passed the vertex filter (Eq. 1's σ_φ). Edge
  /// creation joins against exactly these rows, so edges never attach to
  /// filtered-out vertices.
  const DynamicBitset& matching_rows() const noexcept {
    return matching_rows_;
  }

  /// Incremental ingest (gems::mvcc): extends `base` with the rows of
  /// `new_source` at indices >= `first_new_row` (the CSV batch just
  /// appended to a copy-on-write clone of the source table). Vertex
  /// numbering, representative rows and matching-rows bits are identical
  /// to a full build() over the grown table, because build() assigns
  /// vertex indices in first-occurrence order and all base rows precede
  /// the new ones. When a new row collapses into an existing key while
  /// the base was one-to-one, the type's attribute visibility (and the
  /// collapse decisions of every edge type touching it) would change —
  /// `*flipped` is set and the caller must fall back to a full rebuild.
  static Result<VertexType> extend(const VertexType& base,
                                   storage::TablePtr new_source,
                                   const relational::BoundExpr* filter,
                                   storage::RowIndex first_new_row,
                                   bool* flipped);

  /// Snapshot restore (gems::store): rebuilds the type from its
  /// serialized fields without re-running the Eq. 1 selection. The
  /// key->vertex index is recomputed from the representative rows (it is
  /// fully derived, and collapsed rows encode to the same key), so it is
  /// not part of the on-disk format. Validates row references against the
  /// source table.
  static Result<VertexType> restore(
      VertexTypeId id, std::string name, storage::TablePtr source,
      std::vector<storage::ColumnIndex> key_cols, bool one_to_one,
      std::vector<storage::RowIndex> representative_rows,
      DynamicBitset matching_rows);

 private:
  VertexType() = default;

  VertexTypeId id_ = kInvalidVertexType;
  std::string name_;
  storage::TablePtr source_;
  std::vector<storage::ColumnIndex> key_cols_;
  bool one_to_one_ = true;

  std::vector<storage::RowIndex> representative_row_;
  // encoded key -> vertex index (encoding from relational/row_key.hpp;
  // valid across tables because string ids come from the shared pool).
  // Hashed with the mix64 finalizer (RowKeyHash): std::hash<string>
  // diffuses the dense interned-id payloads poorly, and vertex lookup is
  // on the ingest/edge-join hot path.
  std::unordered_map<std::string, VertexIndex, relational::RowKeyHash,
                     std::equal_to<>>
      key_index_;
  DynamicBitset matching_rows_;
};

}  // namespace gems::graph
