// Materializes vertex and edge declarations (paper Figs. 2-4) into a
// GraphView. This is where the DDL's `create vertex` / `create edge`
// semantics live:
//
//  * Vertices (Eq. 1): distinct key combinations of the filtered source
//    table. One-to-one vs. many-to-one is detected, not declared.
//  * Edges (Eq. 2): an N-way equi-join across the source-vertex table, the
//    target-vertex table and any `from table` associated tables, driven by
//    the WHERE clause's equality conjuncts; remaining conjuncts filter
//    individual sources or the joined result.
//
// Edge-instance identity (multigraph semantics, Figs. 3 & 5):
//  * all endpoints one-to-one  -> one edge per distinct join entry
//    (so a `from table` row yields exactly one edge, Fig. 3);
//  * any endpoint many-to-one  -> edges collapse onto distinct
//    (source vertex, target vertex) pairs (Fig. 5's two export edges).
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "graph/graph_view.hpp"
#include "relational/bound_expr.hpp"
#include "storage/catalog.hpp"

namespace gems::graph {

struct VertexDecl {
  std::string name;
  std::vector<std::string> key_columns;
  std::string table;
  relational::ExprPtr where;  // optional σ_φ
};

struct EdgeEndpoint {
  std::string vertex_type;
  std::string alias;  // optional `as A`
};

struct EdgeDecl {
  std::string name;
  EdgeEndpoint source;
  EdgeEndpoint target;
  std::vector<std::string> assoc_tables;  // `from table T1[, T2...]`
  relational::ExprPtr where;              // required
};

/// Builds and registers a vertex type. `params` supplies %placeholders%
/// appearing in the declaration's WHERE clause.
Status add_vertex_type(GraphView& graph, const VertexDecl& decl,
                       const storage::TableCatalog& tables, StringPool& pool,
                       const relational::ParamMap& params = {});

/// Builds and registers an edge type.
Status add_edge_type(GraphView& graph, const EdgeDecl& decl,
                     const storage::TableCatalog& tables, StringPool& pool,
                     const relational::ParamMap& params = {});

/// Incremental maintenance input (gems::mvcc): the ingest appended rows
/// `>= first_new_row` to the table named `ingested_table` (already swapped
/// into `tables` as a copy-on-write clone), and `base` is the edge type
/// built before the ingest.
struct EdgeDelta {
  std::string ingested_table;
  storage::RowIndex first_new_row = 0;
  const EdgeType* base = nullptr;
};

/// Re-runs the Eq. 2 join only for tuples that involve at least one newly
/// ingested row (one pass per occurrence of the ingested table among the
/// join sources, deduplicated across passes and against the base edges),
/// and appends the resulting edges after the base's. Endpoint vertex types
/// are resolved against `graph`, which must already hold the extended
/// (post-ingest) vertex types; vertex numbering is stable across
/// VertexType::extend, so the base endpoint arrays remain valid. The CSR
/// indices are reassembled over the combined arrays (O(V+E)).
Result<EdgeType> extend_edge_type(const GraphView& graph, const EdgeDecl& decl,
                                  const storage::TableCatalog& tables,
                                  StringPool& pool,
                                  const relational::ParamMap& params,
                                  const EdgeDelta& delta);

}  // namespace gems::graph
