// Materializes vertex and edge declarations (paper Figs. 2-4) into a
// GraphView. This is where the DDL's `create vertex` / `create edge`
// semantics live:
//
//  * Vertices (Eq. 1): distinct key combinations of the filtered source
//    table. One-to-one vs. many-to-one is detected, not declared.
//  * Edges (Eq. 2): an N-way equi-join across the source-vertex table, the
//    target-vertex table and any `from table` associated tables, driven by
//    the WHERE clause's equality conjuncts; remaining conjuncts filter
//    individual sources or the joined result.
//
// Edge-instance identity (multigraph semantics, Figs. 3 & 5):
//  * all endpoints one-to-one  -> one edge per distinct join entry
//    (so a `from table` row yields exactly one edge, Fig. 3);
//  * any endpoint many-to-one  -> edges collapse onto distinct
//    (source vertex, target vertex) pairs (Fig. 5's two export edges).
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "graph/graph_view.hpp"
#include "relational/bound_expr.hpp"
#include "storage/catalog.hpp"

namespace gems::graph {

struct VertexDecl {
  std::string name;
  std::vector<std::string> key_columns;
  std::string table;
  relational::ExprPtr where;  // optional σ_φ
};

struct EdgeEndpoint {
  std::string vertex_type;
  std::string alias;  // optional `as A`
};

struct EdgeDecl {
  std::string name;
  EdgeEndpoint source;
  EdgeEndpoint target;
  std::vector<std::string> assoc_tables;  // `from table T1[, T2...]`
  relational::ExprPtr where;              // required
};

/// Builds and registers a vertex type. `params` supplies %placeholders%
/// appearing in the declaration's WHERE clause.
Status add_vertex_type(GraphView& graph, const VertexDecl& decl,
                       const storage::TableCatalog& tables, StringPool& pool,
                       const relational::ParamMap& params = {});

/// Builds and registers an edge type.
Status add_edge_type(GraphView& graph, const EdgeDecl& decl,
                     const storage::TableCatalog& tables, StringPool& pool,
                     const relational::ParamMap& params = {});

}  // namespace gems::graph
