#include "graph/graph_view.hpp"

namespace gems::graph {

Status GraphView::add_vertex_type(VertexType vt) {
  return add_vertex_type(std::make_shared<const VertexType>(std::move(vt)));
}

Status GraphView::add_edge_type(EdgeType et) {
  return add_edge_type(std::make_shared<const EdgeType>(std::move(et)));
}

Status GraphView::add_vertex_type(std::shared_ptr<const VertexType> vt) {
  GEMS_CHECK(vt != nullptr && vt->id() == next_vertex_type_id());
  if (vertex_by_name_.contains(vt->name()) ||
      edge_by_name_.contains(vt->name())) {
    return already_exists("graph element '" + vt->name() +
                          "' already declared");
  }
  vertex_by_name_.emplace(vt->name(), vt->id());
  vertex_types_.push_back(std::move(vt));
  return Status::ok();
}

Status GraphView::add_edge_type(std::shared_ptr<const EdgeType> et) {
  GEMS_CHECK(et != nullptr && et->id() == next_edge_type_id());
  if (edge_by_name_.contains(et->name()) ||
      vertex_by_name_.contains(et->name())) {
    return already_exists("graph element '" + et->name() +
                          "' already declared");
  }
  edge_by_name_.emplace(et->name(), et->id());
  edge_types_.push_back(std::move(et));
  return Status::ok();
}

Result<VertexTypeId> GraphView::find_vertex_type(std::string_view name) const {
  auto it = vertex_by_name_.find(std::string(name));
  if (it == vertex_by_name_.end()) {
    return not_found("no vertex type named '" + std::string(name) + "'");
  }
  return it->second;
}

Result<EdgeTypeId> GraphView::find_edge_type(std::string_view name) const {
  auto it = edge_by_name_.find(std::string(name));
  if (it == edge_by_name_.end()) {
    return not_found("no edge type named '" + std::string(name) + "'");
  }
  return it->second;
}

bool GraphView::has_vertex_type(std::string_view name) const {
  return vertex_by_name_.contains(std::string(name));
}

bool GraphView::has_edge_type(std::string_view name) const {
  return edge_by_name_.contains(std::string(name));
}

std::vector<EdgeTypeId> GraphView::edge_types_between(VertexTypeId src,
                                                      VertexTypeId dst) const {
  std::vector<EdgeTypeId> out;
  for (const auto& et : edge_types_) {
    if (et->source_type() == src && et->target_type() == dst) {
      out.push_back(et->id());
    }
  }
  return out;
}

std::vector<EdgeTypeId> GraphView::edge_types_from(VertexTypeId src) const {
  std::vector<EdgeTypeId> out;
  for (const auto& et : edge_types_) {
    if (et->source_type() == src) out.push_back(et->id());
  }
  return out;
}

std::vector<EdgeTypeId> GraphView::edge_types_into(VertexTypeId dst) const {
  std::vector<EdgeTypeId> out;
  for (const auto& et : edge_types_) {
    if (et->target_type() == dst) out.push_back(et->id());
  }
  return out;
}

std::size_t GraphView::total_vertices() const noexcept {
  std::size_t n = 0;
  for (const auto& vt : vertex_types_) n += vt->num_vertices();
  return n;
}

std::size_t GraphView::total_edges() const noexcept {
  std::size_t n = 0;
  for (const auto& et : edge_types_) n += et->num_edges();
  return n;
}

}  // namespace gems::graph
