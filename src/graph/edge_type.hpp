// Edge types — relations between two vertex types (paper Eq. 2):
//   E(a1..an) = (S ⋈ σ_φ(A)) ⋈ T
// materialized as parallel endpoint arrays plus *bidirectional* CSR
// indices. The paper (Sec. III-B) calls the edge index "a fundamental data
// structure": the forward index supports S -E-> T steps, the reverse index
// lets the planner run a step right-to-left, which is what makes
// non-lexical execution orders possible.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "graph/ids.hpp"
#include "storage/table.hpp"

namespace gems::graph {

/// Compressed-sparse-row adjacency: for each vertex of the indexed side,
/// the (other-endpoint, edge id) pairs of its incident edges.
class CsrIndex {
 public:
  /// Builds from endpoint arrays: edge e runs indexed_side[e] ->
  /// other_side[e]; `n` is the vertex count of the indexed side.
  static CsrIndex build(std::size_t n, std::span<const VertexIndex> indexed,
                        std::span<const VertexIndex> other);

  std::size_t num_vertices() const noexcept { return offsets_.size() - 1; }

  std::uint32_t degree(VertexIndex v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  std::span<const VertexIndex> neighbors(VertexIndex v) const {
    return {neighbor_.data() + offsets_[v], degree(v)};
  }

  std::span<const EdgeIndex> edges(VertexIndex v) const {
    return {edge_.data() + offsets_[v], degree(v)};
  }

  std::size_t num_edges() const noexcept { return neighbor_.size(); }

  std::size_t byte_size() const noexcept {
    return offsets_.size() * sizeof(std::uint32_t) +
           neighbor_.size() * sizeof(VertexIndex) +
           edge_.size() * sizeof(EdgeIndex);
  }

  // ---- Snapshot serialization (gems::store) ---------------------------
  /// Raw offsets array (size num_vertices()+1), for the serializer.
  std::span<const std::uint32_t> raw_offsets() const noexcept {
    return offsets_;
  }
  std::span<const VertexIndex> raw_neighbors() const noexcept {
    return neighbor_;
  }
  std::span<const EdgeIndex> raw_edges() const noexcept { return edge_; }

  /// Rebuilds an index from serialized arrays, validating the CSR
  /// invariants (monotone offsets bracketing the arrays, parallel array
  /// sizes) so corrupt input is rejected rather than read out of bounds.
  static Result<CsrIndex> restore(std::vector<std::uint32_t> offsets,
                                  std::vector<VertexIndex> neighbor,
                                  std::vector<EdgeIndex> edge);

 private:
  std::vector<std::uint32_t> offsets_;  // size n+1
  std::vector<VertexIndex> neighbor_;   // other endpoint, grouped by owner
  std::vector<EdgeIndex> edge_;         // edge id, parallel to neighbor_
};

class EdgeType {
 public:
  /// Assembled by GraphBuilder after it runs the Eq. 2 joins. `attr_table`
  /// (may be null) holds one row per edge, in edge order — the attributes
  /// from the `from table` clause.
  static EdgeType assemble(EdgeTypeId id, std::string name,
                           VertexTypeId src_type, VertexTypeId dst_type,
                           std::size_t num_src_vertices,
                           std::size_t num_dst_vertices,
                           std::vector<VertexIndex> src,
                           std::vector<VertexIndex> dst,
                           storage::TablePtr attr_table);

  EdgeTypeId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }

  VertexTypeId source_type() const noexcept { return src_type_; }
  VertexTypeId target_type() const noexcept { return dst_type_; }

  std::size_t num_edges() const noexcept { return src_.size(); }

  VertexIndex source_vertex(EdgeIndex e) const { return src_.at(e); }
  VertexIndex target_vertex(EdgeIndex e) const { return dst_.at(e); }

  /// Forward index: keyed by source vertex, neighbors are targets.
  const CsrIndex& forward() const noexcept { return forward_; }
  /// Reverse index: keyed by target vertex, neighbors are sources.
  const CsrIndex& reverse() const noexcept { return reverse_; }

  /// Edge-attribute table (nullptr when the edge carries no attributes).
  /// Row e holds the attributes of edge e.
  const storage::Table* attr_table() const noexcept {
    return attr_table_.get();
  }
  storage::TablePtr attr_table_ptr() const noexcept { return attr_table_; }

  Result<storage::ColumnIndex> resolve_attribute(std::string_view name) const;

  /// Snapshot restore (gems::store): reassembles an edge type from
  /// serialized endpoint arrays and prebuilt CSR indices (no join re-run,
  /// no index rebuild — recovery loads at deserialization speed).
  /// Validates that the pieces are mutually consistent.
  static Result<EdgeType> restore(EdgeTypeId id, std::string name,
                                  VertexTypeId src_type,
                                  VertexTypeId dst_type,
                                  std::vector<VertexIndex> src,
                                  std::vector<VertexIndex> dst,
                                  storage::TablePtr attr_table,
                                  CsrIndex forward, CsrIndex reverse);

 private:
  EdgeType() = default;

  EdgeTypeId id_ = kInvalidEdgeType;
  std::string name_;
  VertexTypeId src_type_ = kInvalidVertexType;
  VertexTypeId dst_type_ = kInvalidVertexType;
  std::vector<VertexIndex> src_;
  std::vector<VertexIndex> dst_;
  storage::TablePtr attr_table_;
  CsrIndex forward_;
  CsrIndex reverse_;
};

}  // namespace gems::graph
