#include "graph/edge_type.hpp"

#include "common/check.hpp"

namespace gems::graph {

CsrIndex CsrIndex::build(std::size_t n, std::span<const VertexIndex> indexed,
                         std::span<const VertexIndex> other) {
  GEMS_CHECK(indexed.size() == other.size());
  CsrIndex out;
  out.offsets_.assign(n + 1, 0);
  for (const VertexIndex v : indexed) {
    GEMS_DCHECK(v < n);
    ++out.offsets_[v + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) out.offsets_[i] += out.offsets_[i - 1];

  out.neighbor_.resize(indexed.size());
  out.edge_.resize(indexed.size());
  std::vector<std::uint32_t> cursor(out.offsets_.begin(),
                                    out.offsets_.end() - 1);
  for (std::size_t e = 0; e < indexed.size(); ++e) {
    const std::uint32_t pos = cursor[indexed[e]]++;
    out.neighbor_[pos] = other[e];
    out.edge_[pos] = static_cast<EdgeIndex>(e);
  }
  return out;
}

Result<CsrIndex> CsrIndex::restore(std::vector<std::uint32_t> offsets,
                                   std::vector<VertexIndex> neighbor,
                                   std::vector<EdgeIndex> edge) {
  if (offsets.empty()) {
    return invalid_argument("CSR restore: empty offsets array");
  }
  if (offsets.front() != 0 || offsets.back() != neighbor.size()) {
    return invalid_argument("CSR restore: offsets do not bracket " +
                            std::to_string(neighbor.size()) + " entries");
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return invalid_argument("CSR restore: offsets not monotone at " +
                              std::to_string(i));
    }
  }
  if (neighbor.size() != edge.size()) {
    return invalid_argument("CSR restore: parallel array size mismatch");
  }
  for (const EdgeIndex e : edge) {
    if (e >= neighbor.size()) {
      return invalid_argument("CSR restore: edge id " + std::to_string(e) +
                              " out of range");
    }
  }
  CsrIndex out;
  out.offsets_ = std::move(offsets);
  out.neighbor_ = std::move(neighbor);
  out.edge_ = std::move(edge);
  return out;
}

EdgeType EdgeType::assemble(EdgeTypeId id, std::string name,
                            VertexTypeId src_type, VertexTypeId dst_type,
                            std::size_t num_src_vertices,
                            std::size_t num_dst_vertices,
                            std::vector<VertexIndex> src,
                            std::vector<VertexIndex> dst,
                            storage::TablePtr attr_table) {
  GEMS_CHECK(src.size() == dst.size());
  GEMS_CHECK(attr_table == nullptr || attr_table->num_rows() == src.size());
  EdgeType et;
  et.id_ = id;
  et.name_ = std::move(name);
  et.src_type_ = src_type;
  et.dst_type_ = dst_type;
  et.src_ = std::move(src);
  et.dst_ = std::move(dst);
  et.attr_table_ = std::move(attr_table);
  // Both directions are always built (the paper builds the reverse index
  // "when memory space on the cluster is available"; in-process we always
  // have it, and bench_planner_ablation quantifies what it buys).
  et.forward_ = CsrIndex::build(num_src_vertices, et.src_, et.dst_);
  et.reverse_ = CsrIndex::build(num_dst_vertices, et.dst_, et.src_);
  return et;
}

Result<EdgeType> EdgeType::restore(EdgeTypeId id, std::string name,
                                   VertexTypeId src_type,
                                   VertexTypeId dst_type,
                                   std::vector<VertexIndex> src,
                                   std::vector<VertexIndex> dst,
                                   storage::TablePtr attr_table,
                                   CsrIndex forward, CsrIndex reverse) {
  if (src.size() != dst.size()) {
    return invalid_argument("edge type '" + name +
                            "' restore: endpoint array size mismatch");
  }
  if (attr_table != nullptr && attr_table->num_rows() != src.size()) {
    return invalid_argument("edge type '" + name +
                            "' restore: attribute table rows != edges");
  }
  if (forward.num_edges() != src.size() || reverse.num_edges() != src.size()) {
    return invalid_argument("edge type '" + name +
                            "' restore: CSR entry count != edges");
  }
  for (const VertexIndex v : src) {
    if (v >= forward.num_vertices()) {
      return invalid_argument("edge type '" + name +
                              "' restore: source vertex out of range");
    }
  }
  for (const VertexIndex v : dst) {
    if (v >= reverse.num_vertices()) {
      return invalid_argument("edge type '" + name +
                              "' restore: target vertex out of range");
    }
  }
  EdgeType et;
  et.id_ = id;
  et.name_ = std::move(name);
  et.src_type_ = src_type;
  et.dst_type_ = dst_type;
  et.src_ = std::move(src);
  et.dst_ = std::move(dst);
  et.attr_table_ = std::move(attr_table);
  et.forward_ = std::move(forward);
  et.reverse_ = std::move(reverse);
  return et;
}

Result<storage::ColumnIndex> EdgeType::resolve_attribute(
    std::string_view attr) const {
  if (!attr_table_) {
    return type_error("edge type '" + name_ +
                      "' has no attributes (declared without 'from table')");
  }
  auto col = attr_table_->schema().find(attr);
  if (!col) {
    return not_found("edge type '" + name_ + "' has no attribute '" +
                     std::string(attr) + "'");
  }
  return *col;
}

}  // namespace gems::graph
