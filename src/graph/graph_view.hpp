// The overall multigraph G = (V, E) of paper Sec. II-A1: vertex types
// partition V, edge types partition E. Holds every materialized type and
// answers the type-level queries the matcher and planner need (which edge
// types connect two vertex types — Eq. 10's variant steps).
//
// Types are held behind shared_ptr<const>: copying a GraphView is a cheap
// shallow snapshot (the mvcc epoch chain relies on this), and an
// incremental ingest can share every unaffected type with the previous
// graph while swapping in freshly built replacements for the affected ones.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "graph/edge_type.hpp"
#include "graph/vertex_type.hpp"

namespace gems::graph {

class GraphView {
 public:
  GraphView() = default;
  GraphView(const GraphView&) = default;
  GraphView& operator=(const GraphView&) = default;
  GraphView(GraphView&&) = default;
  GraphView& operator=(GraphView&&) = default;

  /// Next id to assign (used by the builder when materializing).
  VertexTypeId next_vertex_type_id() const {
    return static_cast<VertexTypeId>(vertex_types_.size());
  }
  EdgeTypeId next_edge_type_id() const {
    return static_cast<EdgeTypeId>(edge_types_.size());
  }

  /// Registers a materialized type; fails on duplicate names. The type's
  /// id must equal next_*_type_id() at the time of the call.
  Status add_vertex_type(VertexType vt);
  Status add_edge_type(EdgeType et);
  Status add_vertex_type(std::shared_ptr<const VertexType> vt);
  Status add_edge_type(std::shared_ptr<const EdgeType> et);

  Result<VertexTypeId> find_vertex_type(std::string_view name) const;
  Result<EdgeTypeId> find_edge_type(std::string_view name) const;

  bool has_vertex_type(std::string_view name) const;
  bool has_edge_type(std::string_view name) const;

  const VertexType& vertex_type(VertexTypeId id) const {
    return *vertex_types_.at(id);
  }
  const EdgeType& edge_type(EdgeTypeId id) const { return *edge_types_.at(id); }

  /// Shared ownership of a type — lets an incremental rebuild reuse the
  /// unaffected types of a previous graph without copying them.
  std::shared_ptr<const VertexType> vertex_type_ptr(VertexTypeId id) const {
    return vertex_types_.at(id);
  }
  std::shared_ptr<const EdgeType> edge_type_ptr(EdgeTypeId id) const {
    return edge_types_.at(id);
  }

  std::size_t num_vertex_types() const noexcept {
    return vertex_types_.size();
  }
  std::size_t num_edge_types() const noexcept { return edge_types_.size(); }

  /// ∪_j E_j(V_a, V_b): all edge types with source `src` and target `dst`
  /// (paper Sec. II-A1 notation; drives `[ ]` steps, Eq. 10).
  std::vector<EdgeTypeId> edge_types_between(VertexTypeId src,
                                             VertexTypeId dst) const;

  /// Edge types whose source (resp. target) is the given vertex type.
  std::vector<EdgeTypeId> edge_types_from(VertexTypeId src) const;
  std::vector<EdgeTypeId> edge_types_into(VertexTypeId dst) const;

  /// |V| and |E| of the overall graph.
  std::size_t total_vertices() const noexcept;
  std::size_t total_edges() const noexcept;

 private:
  std::vector<std::shared_ptr<const VertexType>> vertex_types_;
  std::vector<std::shared_ptr<const EdgeType>> edge_types_;
  std::unordered_map<std::string, VertexTypeId> vertex_by_name_;
  std::unordered_map<std::string, EdgeTypeId> edge_by_name_;
};

}  // namespace gems::graph
