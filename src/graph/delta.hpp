// Incremental CSR maintenance for ingest (gems::mvcc). When a CSV batch
// is appended to one table, only the vertex types viewing that table and
// the edge types joining it change — every other type is shared with the
// previous graph by shared_ptr, affected vertex types are extended in
// place-equivalent fashion (stable vertex numbering), and affected edge
// types re-run the Eq. 2 join only for tuples touching the new rows.
// Replaces the full ctx.rebuild_graph() on the ingest hot path.
#pragma once

#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "common/string_pool.hpp"
#include "graph/builder.hpp"
#include "graph/graph_view.hpp"
#include "storage/catalog.hpp"

namespace gems::graph {

/// Builds the post-ingest graph from `graph` after `first_new_row`-onward
/// rows were appended to the table named `table_name` (whose copy-on-write
/// clone is already registered in `tables`; `graph`'s types still point at
/// the pre-ingest table). On success replaces `graph` with the extended
/// view and returns true. Returns false when the delta cannot be applied
/// soundly and the caller must fall back to a full rebuild:
///   * some declaration's WHERE references a %parameter% (re-binding under
///     different parameters would make maintenance order-dependent), or
///   * a new row collapses a previously one-to-one vertex key (attribute
///     visibility and edge collapse semantics change).
/// The decision depends only on the declarations and the ingested data, so
/// WAL replay of the same record sequence takes the same path and
/// reproduces the live graph byte-for-byte.
Result<bool> extend_graph_for_ingest(
    GraphView& graph, std::string_view table_name,
    storage::RowIndex first_new_row,
    const std::vector<VertexDecl>& vertex_decls,
    const std::vector<EdgeDecl>& edge_decls,
    const storage::TableCatalog& tables, StringPool& pool,
    const relational::ParamMap& params);

}  // namespace gems::graph
