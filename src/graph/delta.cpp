#include "graph/delta.hpp"

#include <memory>
#include <utility>

#include "common/check.hpp"
#include "relational/bound_expr.hpp"

namespace gems::graph {

namespace {

bool has_parameter(const relational::ExprPtr& e) {
  if (!e) return false;
  if (e->kind == relational::Expr::Kind::kParameter) return true;
  return has_parameter(e->lhs) || has_parameter(e->rhs);
}

}  // namespace

Result<bool> extend_graph_for_ingest(
    GraphView& graph, std::string_view table_name,
    storage::RowIndex first_new_row,
    const std::vector<VertexDecl>& vertex_decls,
    const std::vector<EdgeDecl>& edge_decls,
    const storage::TableCatalog& tables, StringPool& pool,
    const relational::ParamMap& params) {
  // Parameterized declarations make maintenance depend on whichever
  // parameter values happen to be in scope at each ingest — the full
  // rebuild is the only order-independent semantics for those.
  for (const auto& d : vertex_decls) {
    if (has_parameter(d.where)) return false;
  }
  for (const auto& d : edge_decls) {
    if (has_parameter(d.where)) return false;
  }
  // The graph must mirror the declaration lists one-to-one (it always
  // does outside of mid-DDL states, which rebuild instead).
  if (graph.num_vertex_types() != vertex_decls.size() ||
      graph.num_edge_types() != edge_decls.size()) {
    return false;
  }

  GraphView fresh;

  for (const auto& decl : vertex_decls) {
    auto id = graph.find_vertex_type(decl.name);
    if (!id.is_ok() || *id != fresh.next_vertex_type_id()) return false;
    if (decl.table != table_name) {
      // Untouched table: share the type with the previous graph.
      GEMS_RETURN_IF_ERROR(fresh.add_vertex_type(graph.vertex_type_ptr(*id)));
      continue;
    }
    GEMS_ASSIGN_OR_RETURN(storage::TablePtr source, tables.find(decl.table));
    relational::BoundExprPtr filter;
    if (decl.where) {
      relational::TableScope scope(*source, decl.name);
      GEMS_ASSIGN_OR_RETURN(
          filter, relational::bind_predicate(decl.where, scope, params, pool));
    }
    bool flipped = false;
    GEMS_ASSIGN_OR_RETURN(
        VertexType vt,
        VertexType::extend(graph.vertex_type(*id), std::move(source),
                           filter.get(), first_new_row, &flipped));
    if (flipped) return false;
    GEMS_RETURN_IF_ERROR(
        fresh.add_vertex_type(std::make_shared<const VertexType>(
            std::move(vt))));
  }

  for (const auto& decl : edge_decls) {
    auto id = graph.find_edge_type(decl.name);
    if (!id.is_ok() || *id != fresh.next_edge_type_id()) return false;

    // An edge type is affected iff the ingested table occurs among its
    // join sources: an endpoint's source table or an associated table.
    bool affected = false;
    for (const auto& ep : {decl.source, decl.target}) {
      auto vid = fresh.find_vertex_type(ep.vertex_type);
      if (!vid.is_ok()) return false;
      if (fresh.vertex_type(*vid).source().name() == table_name) {
        affected = true;
      }
    }
    for (const auto& assoc : decl.assoc_tables) {
      if (assoc == table_name) affected = true;
    }
    if (!affected) {
      GEMS_RETURN_IF_ERROR(fresh.add_edge_type(graph.edge_type_ptr(*id)));
      continue;
    }

    EdgeDelta delta{std::string(table_name), first_new_row,
                    &graph.edge_type(*id)};
    GEMS_ASSIGN_OR_RETURN(
        EdgeType et,
        extend_edge_type(fresh, decl, tables, pool, params, delta));
    GEMS_RETURN_IF_ERROR(fresh.add_edge_type(
        std::make_shared<const EdgeType>(std::move(et))));
  }

  graph = std::move(fresh);
  return true;
}

}  // namespace gems::graph
