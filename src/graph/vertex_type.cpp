#include "graph/vertex_type.hpp"

#include "relational/eval.hpp"
#include "relational/row_key.hpp"

namespace gems::graph {

using relational::RowCursor;
using storage::ColumnIndex;
using storage::RowIndex;

Result<VertexType> VertexType::build(VertexTypeId id, std::string name,
                                     storage::TablePtr source,
                                     std::vector<ColumnIndex> key_cols,
                                     relational::BoundExprPtr filter) {
  if (key_cols.empty()) {
    return invalid_argument("vertex type '" + name +
                            "' must declare at least one key column");
  }
  VertexType vt;
  vt.id_ = id;
  vt.name_ = std::move(name);
  vt.source_ = std::move(source);
  vt.key_cols_ = std::move(key_cols);

  const storage::Table& table = *vt.source_;
  RowCursor cursor{&table, 0};
  const std::span<const RowCursor> sources(&cursor, 1);
  const StringPool& pool = table.pool();

  vt.key_index_.reserve(table.num_rows());
  vt.matching_rows_ = DynamicBitset(table.num_rows());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    cursor.row = static_cast<RowIndex>(r);
    if (filter && !relational::eval_predicate(*filter, sources, pool)) {
      continue;
    }
    vt.matching_rows_.set(r);
    std::string key = relational::encode_row_key(table, cursor.row,
                                                 vt.key_cols_);
    auto [it, inserted] =
        vt.key_index_.emplace(std::move(key),
                              static_cast<VertexIndex>(
                                  vt.representative_row_.size()));
    if (inserted) {
      vt.representative_row_.push_back(cursor.row);
    } else {
      vt.one_to_one_ = false;  // a second row collapsed into this vertex
    }
  }
  return vt;
}

Result<VertexType> VertexType::extend(const VertexType& base,
                                      storage::TablePtr new_source,
                                      const relational::BoundExpr* filter,
                                      RowIndex first_new_row, bool* flipped) {
  GEMS_CHECK(new_source != nullptr && flipped != nullptr);
  GEMS_CHECK(first_new_row <= new_source->num_rows());
  GEMS_CHECK(base.matching_rows_.size() == first_new_row);
  *flipped = false;

  VertexType vt = base;
  vt.source_ = new_source;
  vt.matching_rows_.resize(new_source->num_rows(), false);

  const storage::Table& table = *new_source;
  RowCursor cursor{&table, 0};
  const std::span<const RowCursor> sources(&cursor, 1);
  const StringPool& pool = table.pool();

  for (std::size_t r = first_new_row; r < table.num_rows(); ++r) {
    cursor.row = static_cast<RowIndex>(r);
    if (filter && !relational::eval_predicate(*filter, sources, pool)) {
      continue;
    }
    vt.matching_rows_.set(r);
    std::string key =
        relational::encode_row_key(table, cursor.row, vt.key_cols_);
    auto [it, inserted] = vt.key_index_.emplace(
        std::move(key),
        static_cast<VertexIndex>(vt.representative_row_.size()));
    if (inserted) {
      vt.representative_row_.push_back(cursor.row);
    } else if (vt.one_to_one_) {
      *flipped = true;  // visibility/collapse semantics change: rebuild
      return vt;
    }
  }
  return vt;
}

Result<VertexType> VertexType::restore(
    VertexTypeId id, std::string name, storage::TablePtr source,
    std::vector<ColumnIndex> key_cols, bool one_to_one,
    std::vector<RowIndex> representative_rows, DynamicBitset matching_rows) {
  if (source == nullptr) {
    return invalid_argument("vertex type '" + name +
                            "' restore: missing source table");
  }
  if (key_cols.empty()) {
    return invalid_argument("vertex type '" + name +
                            "' restore: no key columns");
  }
  for (const ColumnIndex c : key_cols) {
    if (c >= source->num_columns()) {
      return invalid_argument("vertex type '" + name +
                              "' restore: key column out of range");
    }
  }
  if (matching_rows.size() != source->num_rows()) {
    return invalid_argument("vertex type '" + name +
                            "' restore: matching-rows size != table rows");
  }
  for (const RowIndex r : representative_rows) {
    if (r >= source->num_rows()) {
      return invalid_argument("vertex type '" + name +
                              "' restore: representative row out of range");
    }
  }
  VertexType vt;
  vt.id_ = id;
  vt.name_ = std::move(name);
  vt.source_ = std::move(source);
  vt.key_cols_ = std::move(key_cols);
  vt.one_to_one_ = one_to_one;
  vt.representative_row_ = std::move(representative_rows);
  vt.matching_rows_ = std::move(matching_rows);
  vt.key_index_.reserve(vt.representative_row_.size());
  for (std::size_t v = 0; v < vt.representative_row_.size(); ++v) {
    std::string key = relational::encode_row_key(
        *vt.source_, vt.representative_row_[v], vt.key_cols_);
    auto [it, inserted] =
        vt.key_index_.emplace(std::move(key), static_cast<VertexIndex>(v));
    if (!inserted) {
      return invalid_argument("vertex type '" + vt.name_ +
                              "' restore: duplicate vertex key");
    }
  }
  return vt;
}

bool VertexType::attribute_visible(ColumnIndex col) const noexcept {
  if (one_to_one_) return true;
  for (const auto k : key_cols_) {
    if (k == col) return true;
  }
  return false;
}

Result<ColumnIndex> VertexType::resolve_attribute(
    std::string_view attr) const {
  auto col = source_->schema().find(attr);
  if (!col) {
    return not_found("vertex type '" + name_ + "' has no attribute '" +
                     std::string(attr) + "' (source table '" +
                     source_->name() + "')");
  }
  if (!attribute_visible(*col)) {
    return type_error("attribute '" + std::string(attr) +
                      "' of many-to-one vertex type '" + name_ +
                      "' is not part of the vertex key and is therefore "
                      "ambiguous");
  }
  return *col;
}

VertexIndex VertexType::find_by_key(
    const storage::Table& table, RowIndex row,
    std::span<const ColumnIndex> key_cols) const {
  GEMS_DCHECK(key_cols.size() == key_cols_.size());
  const std::string key = relational::encode_row_key(table, row, key_cols);
  auto it = key_index_.find(key);
  return it == key_index_.end() ? kInvalidVertex : it->second;
}

std::string VertexType::key_string(VertexIndex v) const {
  const RowIndex row = representative_row(v);
  if (key_cols_.size() == 1) {
    return source_->value_at(row, key_cols_[0]).to_string();
  }
  std::string out = "(";
  for (std::size_t i = 0; i < key_cols_.size(); ++i) {
    if (i > 0) out += ", ";
    out += source_->value_at(row, key_cols_[i]).to_string();
  }
  out += ")";
  return out;
}

}  // namespace gems::graph
