// Identifier types for the attributed-graph layer. The paper's partition
// property (Sec. II-A1: vertex types partition V, edge types partition E)
// is guaranteed structurally: an instance id is a (type, dense index) pair,
// so instances of different types can never collide.
#pragma once

#include <cstdint>
#include <functional>

#include "common/hash.hpp"

namespace gems::graph {

using VertexTypeId = std::uint16_t;
using EdgeTypeId = std::uint16_t;
using VertexIndex = std::uint32_t;  // dense within a vertex type
using EdgeIndex = std::uint32_t;    // dense within an edge type

inline constexpr VertexTypeId kInvalidVertexType = 0xffff;
inline constexpr EdgeTypeId kInvalidEdgeType = 0xffff;
inline constexpr VertexIndex kInvalidVertex = 0xffffffffu;

/// A vertex instance in the overall graph G = (V, E).
struct VertexRef {
  VertexTypeId type = kInvalidVertexType;
  VertexIndex index = kInvalidVertex;

  bool valid() const noexcept { return type != kInvalidVertexType; }
  friend bool operator==(const VertexRef&, const VertexRef&) = default;
  friend auto operator<=>(const VertexRef&, const VertexRef&) = default;
};

/// An edge instance in the overall graph.
struct EdgeRef {
  EdgeTypeId type = kInvalidEdgeType;
  EdgeIndex index = 0;

  bool valid() const noexcept { return type != kInvalidEdgeType; }
  friend bool operator==(const EdgeRef&, const EdgeRef&) = default;
  friend auto operator<=>(const EdgeRef&, const EdgeRef&) = default;
};

struct VertexRefHash {
  std::size_t operator()(const VertexRef& v) const noexcept {
    return mix64((static_cast<std::uint64_t>(v.type) << 32) | v.index);
  }
};

struct EdgeRefHash {
  std::size_t operator()(const EdgeRef& e) const noexcept {
    return mix64((static_cast<std::uint64_t>(e.type) << 32) | e.index);
  }
};

}  // namespace gems::graph
