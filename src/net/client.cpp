#include "net/client.hpp"

#include <chrono>
#include <thread>

#include "graql/ir.hpp"
#include "graql/parser.hpp"

namespace gems::net {

Client::Client(ClientOptions options) : options_(std::move(options)) {}

Client::~Client() { disconnect(); }

void Client::disconnect() {
  socket_.close();
  session_id_ = 0;
}

Status Client::connect() {
  disconnect();
  Status last = unavailable("connect not attempted");
  std::uint32_t backoff_ms = options_.retry_backoff_ms;
  for (int attempt = 0; attempt <= options_.connect_retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms *= 2;
    }
    auto sock = tcp_connect(options_.host, options_.port);
    if (!sock.is_ok()) {
      last = sock.status();
      continue;
    }
    socket_ = std::move(sock).value();
    GEMS_RETURN_IF_ERROR(
        set_recv_timeout(socket_, options_.request_timeout_ms));
    // Version handshake opens the session.
    auto payload = round_trip(
        Verb::kHandshake,
        encode_handshake_request({kWireVersion, options_.client_name}));
    if (!payload.is_ok()) {
      last = payload.status();
      disconnect();
      continue;
    }
    WireReader reader(*payload);
    const Status status = decode_status(reader);
    if (!status.is_ok()) return status;  // e.g. version rejected: no retry
    GEMS_ASSIGN_OR_RETURN(HandshakeResponse handshake,
                          decode_handshake_response(reader));
    session_id_ = handshake.session_id;
    return Status::ok();
  }
  return last.with_context("connect to " + options_.host + ":" +
                           std::to_string(options_.port) + " failed after " +
                           std::to_string(options_.connect_retries + 1) +
                           " attempts");
}

Result<std::vector<std::uint8_t>> Client::round_trip(
    Verb verb, std::span<const std::uint8_t> payload) {
  if (!socket_.valid()) {
    return unavailable("not connected (call connect() first)");
  }
  const std::uint64_t request_id = next_request_id_++;
  Status sent = send_frame(socket_, verb, /*is_response=*/false, request_id,
                           payload);
  if (!sent.is_ok()) {
    disconnect();
    return sent;
  }
  // Synchronous protocol: responses come back in request order on this
  // connection. Skip stray responses to older ids (e.g. a cancel raced
  // its target) until ours arrives.
  for (;;) {
    auto frame = recv_frame(socket_, options_.max_frame_bytes);
    if (!frame.is_ok()) {
      disconnect();  // timeout or broken stream: connection is unusable
      return frame.status().with_context(
          std::string(verb_name(verb)) + " request " +
          std::to_string(request_id));
    }
    if (!frame->header.is_response || frame->header.request_id < request_id) {
      continue;
    }
    if (frame->header.request_id != request_id ||
        frame->header.verb != verb) {
      disconnect();
      return internal_error("response pairing violated: got " +
                            std::string(verb_name(frame->header.verb)) +
                            " id " +
                            std::to_string(frame->header.request_id) +
                            ", expected " + std::string(verb_name(verb)) +
                            " id " + std::to_string(request_id));
    }
    return std::move(frame->payload);
  }
}

Result<std::vector<std::uint8_t>> Client::make_script_request(
    const std::string& text, const relational::ParamMap& params) {
  // Front-end half of the hand-off: parse + compile locally, ship IR.
  GEMS_ASSIGN_OR_RETURN(graql::Script script, graql::parse_script(text));
  ScriptRequest request;
  request.ir = graql::encode_script(script);
  // No params: ship an empty blob (the server treats it as "no params")
  // instead of encoding a zero-entry map on every request.
  if (!params.empty()) request.params = graql::encode_params(params);
  request.deadline_ms = options_.request_timeout_ms;
  return encode_script_request(request);
}

Result<std::vector<exec::StatementResult>> Client::run_script(
    const std::string& text, const relational::ParamMap& params) {
  GEMS_ASSIGN_OR_RETURN(std::vector<std::uint8_t> payload,
                        make_script_request(text, params));
  // Bounded auto-retry, for *in-band* kUnavailable statuses only: the
  // server decoded and answered, so nothing executed — re-running is
  // safe. A transport failure from round_trip is returned as-is (the
  // outcome server-side is unknown; see ClientOptions).
  for (std::uint32_t attempt = 0;; ++attempt) {
    GEMS_ASSIGN_OR_RETURN(std::vector<std::uint8_t> response,
                          round_trip(Verb::kRunScript, payload));
    WireReader reader(response);
    const Status status = decode_status(reader);
    if (status.code() == StatusCode::kUnavailable &&
        attempt < options_.unavailable_retries) {
      ++unavailable_retries_used_;
      if (options_.unavailable_backoff_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.unavailable_backoff_ms));
      }
      continue;
    }
    GEMS_RETURN_IF_ERROR(status);
    return decode_results(reader, pool_);
  }
}

Status Client::check_script(const std::string& text,
                            const relational::ParamMap* params) {
  GEMS_ASSIGN_OR_RETURN(std::vector<graql::Diagnostic> diags,
                        check(text, params));
  return graql::first_error_status(diags);
}

Result<std::vector<graql::Diagnostic>> Client::check(
    const std::string& text, const relational::ParamMap* params) {
  // Lex/parse problems are found client-side — a script that does not
  // parse has no IR to ship. The server only ever sees well-formed IR.
  graql::DiagnosticEngine local;
  graql::Script script = graql::parse_script_collect(text, local);
  if (!local.empty()) return local.take();

  ScriptRequest request;
  request.ir = graql::encode_script(script);
  if (params != nullptr && !params->empty()) {
    request.params = graql::encode_params(*params);
  }
  request.deadline_ms = options_.request_timeout_ms;
  GEMS_ASSIGN_OR_RETURN(
      std::vector<std::uint8_t> response,
      round_trip(Verb::kCheck, encode_script_request(request)));
  WireReader reader(response);
  GEMS_RETURN_IF_ERROR(decode_status(reader));
  GEMS_ASSIGN_OR_RETURN(std::vector<std::uint8_t> blob, reader.blob());
  return graql::decode_diagnostics(blob);
}

Result<std::string> Client::explain(const std::string& text,
                                    const relational::ParamMap& params) {
  GEMS_ASSIGN_OR_RETURN(std::vector<std::uint8_t> payload,
                        make_script_request(text, params));
  GEMS_ASSIGN_OR_RETURN(std::vector<std::uint8_t> response,
                        round_trip(Verb::kExplain, payload));
  WireReader reader(response);
  const Status status = decode_status(reader);
  GEMS_RETURN_IF_ERROR(status);
  return reader.str();
}

Result<std::vector<server::CatalogEntry>> Client::catalog() {
  GEMS_ASSIGN_OR_RETURN(std::vector<std::uint8_t> response,
                        round_trip(Verb::kCatalog, {}));
  WireReader reader(response);
  const Status status = decode_status(reader);
  GEMS_RETURN_IF_ERROR(status);
  return decode_catalog(reader);
}

Result<MetricsSnapshot> Client::stats() {
  GEMS_ASSIGN_OR_RETURN(std::vector<std::uint8_t> response,
                        round_trip(Verb::kStats, {}));
  WireReader reader(response);
  const Status status = decode_status(reader);
  GEMS_RETURN_IF_ERROR(status);
  return decode_snapshot(
      std::span<const std::uint8_t>(response).subspan(reader.position()));
}

Status Client::cancel(std::uint64_t request_id) {
  GEMS_ASSIGN_OR_RETURN(
      std::vector<std::uint8_t> response,
      round_trip(Verb::kCancel, encode_cancel_request({request_id})));
  WireReader reader(response);
  const Status status = decode_status(reader);
  return status;
}

Status Client::shutdown_server() {
  GEMS_ASSIGN_OR_RETURN(std::vector<std::uint8_t> response,
                        round_trip(Verb::kShutdown, {}));
  WireReader reader(response);
  const Status status = decode_status(reader);
  return status;
}

}  // namespace gems::net
