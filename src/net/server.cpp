#include "net/server.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/logging.hpp"
#include "graql/ir.hpp"

namespace gems::net {

using Clock = std::chrono::steady_clock;

namespace {

std::uint64_t elapsed_us(Clock::time_point from, Clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

}  // namespace

/// One connected client: the socket, its write lock (reader thread and
/// any worker may respond), and the best-effort cancel set.
struct Server::SessionConn {
  Socket socket;
  std::uint64_t session_id = 0;
  sync::Mutex write_mutex;
  sync::Mutex cancel_mutex;
  std::unordered_set<std::uint64_t> cancelled GEMS_GUARDED_BY(cancel_mutex);

  bool is_cancelled(std::uint64_t request_id) {
    sync::MutexLock lock(cancel_mutex);
    return cancelled.erase(request_id) > 0;
  }
};

struct Server::Request {
  std::shared_ptr<SessionConn> session;
  Verb verb = Verb::kRunScript;
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;
  std::size_t bytes_in = 0;
  Clock::time_point arrival;
};

Server::Server(server::Database& db, ServerOptions options)
    : db_(db), options_(std::move(options)) {
  if (options_.num_workers == 0) options_.num_workers = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
}

Server::~Server() { stop(); }

Status Server::start() {
  GEMS_ASSIGN_OR_RETURN(
      listener_, tcp_listen(options_.bind_address, options_.port));
  GEMS_ASSIGN_OR_RETURN(port_, local_port(listener_));
  running_.store(true, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  workers_ = std::make_unique<ThreadPool>(options_.num_workers);
  for (std::size_t i = 0; i < options_.num_workers; ++i) {
    workers_->submit([this] { worker_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return Status::ok();
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);

  // Wake everything: the accept loop (listener shutdown), the workers
  // (queue cv) and any session reader blocked in recv (socket shutdown).
  // The listener fd is closed only after the accept thread joins, so the
  // kernel cannot recycle its fd number under a racing accept() call.
  listener_.shutdown();
  queue_cv_.notify_all();
  {
    sync::MutexLock lock(sessions_mutex_);
    for (const auto& session : sessions_) session->socket.shutdown();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  // Swap the reader threads out under the lock, join them outside it:
  // joining under sessions_mutex_ would deadlock with a reader blocked
  // on that same lock (and the analysis would flag the unlocked
  // traversal the old code did after the accept join).
  std::vector<std::thread> readers;
  {
    sync::MutexLock lock(sessions_mutex_);
    readers.swap(session_threads_);
  }
  for (auto& t : readers) {
    if (t.joinable()) t.join();
  }
  workers_.reset();  // joins the drain tasks
  {
    sync::MutexLock lock(sessions_mutex_);
    sessions_.clear();
  }
  {
    sync::MutexLock lock(shutdown_mutex_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void Server::wait() {
  sync::MutexLock lock(shutdown_mutex_);
  while (!shutdown_requested_) shutdown_cv_.wait(shutdown_mutex_);
}

void Server::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    auto accepted = tcp_accept(listener_);
    if (!accepted.is_ok()) {
      if (!running_.load(std::memory_order_acquire)) return;
      continue;  // transient accept failure; keep serving
    }
    auto session = std::make_shared<SessionConn>();
    session->socket = std::move(accepted).value();
    session->session_id =
        next_session_id_.fetch_add(1, std::memory_order_relaxed);
    sync::MutexLock lock(sessions_mutex_);
    if (!running_.load(std::memory_order_acquire)) return;
    sessions_.push_back(session);
    session_threads_.emplace_back(
        [this, session] { session_loop(session); });
  }
}

std::size_t Server::respond(SessionConn& session, Verb verb,
                            std::uint64_t request_id, const Status& status,
                            std::span<const std::uint8_t> body,
                            const MetricsRegistry::Outcome* outcome) {
  WireWriter w;
  encode_status(status, w);
  if (status.is_ok()) {
    w.buffer().insert(w.buffer().end(), body.begin(), body.end());
  }
  const std::size_t frame_bytes = kFrameHeaderBytes + w.buffer().size();
  // Metrics are recorded *before* the response leaves: a client that has
  // its answer must already be visible in a stats snapshot.
  if (outcome != nullptr) {
    MetricsRegistry::Outcome o = *outcome;
    o.bytes_out = frame_bytes;
    metrics_.record(verb, o);
  }
  sync::MutexLock lock(session.write_mutex);
  // A send failure means the client went away; the reader thread will see
  // the close and unwind, so the status is intentionally dropped here.
  (void)send_frame(session.socket, verb, /*is_response=*/true, request_id,
                   w.buffer());
  return frame_bytes;
}

bool Server::try_enqueue(Request request) {
  {
    sync::MutexLock lock(queue_mutex_);
    if (queue_.size() >= options_.queue_capacity) return false;
    queue_.push_back(std::move(request));
  }
  queue_cv_.notify_one();
  return true;
}

void Server::session_loop(const std::shared_ptr<SessionConn>& session) {
  bool handshaken = false;
  // Half-close on every exit path so a dropped client sees EOF right away
  // instead of waiting out its receive timeout. shutdown() leaves fd_
  // untouched, so racing Server::stop() is safe; the fd is closed when
  // stop() clears the session list.
  struct FinOnExit {
    SessionConn& session;
    ~FinOnExit() { session.socket.shutdown(); }
  } fin{*session};
  while (running_.load(std::memory_order_acquire)) {
    auto frame = recv_frame(session->socket, options_.max_frame_bytes);
    if (!frame.is_ok()) {
      // EOF/reset ends the session quietly. A parse error (bad magic,
      // hostile length) leaves the byte stream unsynchronized: report it
      // on request id 0, then drop the connection — resynchronizing an
      // attacker-controlled stream is not worth the risk.
      if (frame.status().code() == StatusCode::kParseError) {
        respond(*session, Verb::kHandshake, 0, frame.status());
      }
      break;
    }
    const FrameHeader& header = frame->header;
    const Clock::time_point arrival = Clock::now();
    const std::size_t bytes_in = frame->wire_size();

    if (!handshaken && header.verb != Verb::kHandshake) {
      const Status status =
          invalid_argument("handshake required before any other verb");
      const MetricsRegistry::Outcome outcome{status.code(), bytes_in, 0, 0,
                                             0};
      respond(*session, header.verb, header.request_id, status, {},
              &outcome);
      break;
    }

    switch (header.verb) {
      case Verb::kHandshake: {
        auto request = decode_handshake_request(frame->payload);
        Status status = request.is_ok() ? Status::ok() : request.status();
        if (status.is_ok() && request->wire_version != kWireVersion) {
          status = invalid_argument(
              "unsupported wire version " +
              std::to_string(request->wire_version) + " (server speaks " +
              std::to_string(kWireVersion) + ")");
        }
        std::vector<std::uint8_t> body;
        if (status.is_ok()) {
          handshaken = true;
          body = encode_handshake_response(
              {kWireVersion, session->session_id, "gems-graql"});
        }
        const MetricsRegistry::Outcome outcome{status.code(), bytes_in, 0, 0,
                                               0};
        respond(*session, header.verb, header.request_id, status, body,
                &outcome);
        if (!status.is_ok()) return;  // version mismatch: drop the session
        break;
      }
      case Verb::kCancel: {
        auto request = decode_cancel_request(frame->payload);
        Status status = request.is_ok() ? Status::ok() : request.status();
        if (status.is_ok()) {
          sync::MutexLock lock(session->cancel_mutex);
          session->cancelled.insert(request->target_request_id);
        }
        const MetricsRegistry::Outcome outcome{status.code(), bytes_in, 0, 0,
                                               0};
        respond(*session, header.verb, header.request_id, status, {},
                &outcome);
        break;
      }
      case Verb::kStats: {
        std::vector<std::uint8_t> body;
        encode_snapshot(metrics_snapshot(), body);
        const MetricsRegistry::Outcome outcome{StatusCode::kOk, bytes_in, 0,
                                               0, 0};
        respond(*session, header.verb, header.request_id, Status::ok(), body,
                &outcome);
        break;
      }
      case Verb::kShutdown: {
        // Durable servers take a final checkpoint so a restart recovers
        // from the snapshot instead of replaying the whole WAL. Failure
        // is non-fatal: the WAL still covers everything acknowledged.
        if (db_.durable()) {
          const Status ckpt = db_.checkpoint();
          if (!ckpt.is_ok()) {
            GEMS_LOG(Warning) << "shutdown checkpoint failed: "
                              << ckpt.to_string();
          }
        }
        const MetricsRegistry::Outcome outcome{StatusCode::kOk, bytes_in, 0,
                                               0, 0};
        respond(*session, header.verb, header.request_id, Status::ok(), {},
                &outcome);
        // Flip the wait() latch; the owner decides to stop(). Stopping
        // from this thread would deadlock on joining ourselves.
        {
          sync::MutexLock lock(shutdown_mutex_);
          shutdown_requested_ = true;
        }
        shutdown_cv_.notify_all();
        return;
      }
      case Verb::kRunScript:
      case Verb::kCheck:
      case Verb::kExplain:
      case Verb::kCatalog: {
        Request request;
        request.session = session;
        request.verb = header.verb;
        request.request_id = header.request_id;
        request.payload = std::move(frame->payload);
        request.bytes_in = bytes_in;
        request.arrival = arrival;
        if (!try_enqueue(std::move(request))) {
          // Admission control: reject instead of stalling the reader.
          const Status status = overloaded(
              "request queue full (" +
              std::to_string(options_.queue_capacity) +
              " pending); retry with backoff");
          const MetricsRegistry::Outcome outcome{status.code(), bytes_in, 0,
                                                 0, 0};
          respond(*session, header.verb, header.request_id, status, {},
                  &outcome);
        }
        break;
      }
    }
  }
}

void Server::worker_loop() {
  for (;;) {
    Request request;
    {
      sync::MutexLock lock(queue_mutex_);
      while (!stopping_.load(std::memory_order_acquire) && queue_.empty()) {
        queue_cv_.wait(queue_mutex_);
      }
      if (stopping_.load(std::memory_order_acquire)) return;
      request = std::move(queue_.front());
      queue_.pop_front();
    }
    process_request(request);
  }
}

void Server::process_request(Request& request) {
  const Clock::time_point dequeued = Clock::now();
  const std::uint64_t queue_wait_us = elapsed_us(request.arrival, dequeued);

  if (options_.debug_execute_delay_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.debug_execute_delay_ms));
  }

  Status status = Status::ok();
  std::vector<std::uint8_t> body;
  ScriptRequest script;
  bool have_script = false;

  if (request.session->is_cancelled(request.request_id)) {
    status = cancelled("request " + std::to_string(request.request_id) +
                       " cancelled before execution");
  } else if (request.verb != Verb::kCatalog) {
    auto decoded = decode_script_request(request.payload);
    if (!decoded.is_ok()) {
      status = decoded.status();
    } else {
      script = std::move(decoded).value();
      have_script = true;
    }
  }

  if (status.is_ok() && have_script && script.deadline_ms > 0 &&
      dequeued - request.arrival >
          std::chrono::milliseconds(script.deadline_ms)) {
    status = deadline_exceeded(
        "request waited " + std::to_string(queue_wait_us / 1000) +
        " ms in queue, past its " + std::to_string(script.deadline_ms) +
        " ms deadline");
  }

  if (status.is_ok()) {
    relational::ParamMap params;
    // An empty blob means "no params" (clients skip encoding entirely in
    // that case) — don't run the decoder just to produce an empty map.
    if (have_script && !script.params.empty()) {
      auto decoded = graql::decode_params(script.params);
      if (decoded.is_ok()) {
        params = std::move(decoded).value();
      } else {
        status = decoded.status();
      }
    }
    if (status.is_ok()) {
      WireWriter w;
      std::unique_lock<std::mutex> db_lock(db_mutex_, std::defer_lock);
      if (options_.serialize_execution) db_lock.lock();
      switch (request.verb) {
        case Verb::kRunScript: {
          auto results = db_.run_ir(script.ir, params);
          if (results.is_ok()) {
            encode_results(results.value(), w);
          } else {
            status = results.status();
          }
          break;
        }
        case Verb::kCheck: {
          // The response stays kOk even for a faulty script: the payload
          // carries the full structured diagnostic list (the client's
          // fail-stop wrapper reconstructs the legacy Status from it).
          auto diags = db_.check_ir(script.ir, &params);
          if (diags.is_ok()) {
            w.blob(graql::encode_diagnostics(diags.value()));
          } else {
            status = diags.status();
          }
          break;
        }
        case Verb::kExplain: {
          auto plan = db_.explain_ir(script.ir, params);
          if (plan.is_ok()) {
            w.str(plan.value());
          } else {
            status = plan.status();
          }
          break;
        }
        case Verb::kCatalog:
          encode_catalog(db_.catalog(), w);
          break;
        default:
          status = internal_error("verb routed to worker unexpectedly");
          break;
      }
      body = w.take();
    }
  }

  const std::uint64_t execute_us = elapsed_us(dequeued, Clock::now());
  const MetricsRegistry::Outcome outcome{status.code(), request.bytes_in, 0,
                                         queue_wait_us, execute_us};
  respond(*request.session, request.verb, request.request_id, status, body,
          &outcome);
}

}  // namespace gems::net
