// gems::net::Server — the GEMS front-end/backend service of the paper
// (Sec. III, Fig. 2) as a real TCP endpoint wrapping `server::Database`.
//
// Shape of the service:
//   accept loop  ->  one reader thread per session  ->  bounded request
//   queue  ->  common::ThreadPool workers  ->  response on the session's
//   socket.
//
// Backpressure is explicit: when the bounded queue is full, new requests
// are rejected *immediately* with a typed kOverloaded status — the accept
// and reader loops never stall on the executor, so the server stays
// responsive under any offered load. Requests carry optional deadlines
// (enforced at dequeue: a request that waited past its deadline is
// answered kDeadlineExceeded without executing) and can be cancelled
// best-effort while still queued. Every request is metered in a
// MetricsRegistry (counters by verb/outcome, bytes in/out, queue-wait vs.
// execute latency), exposed remotely via the `stats` verb.
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "common/sync.hpp"
#include "common/thread_pool.hpp"
#include "net/metrics.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "server/database.hpp"

namespace gems::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; the chosen port is available from `port()` after
  /// `start()` succeeds.
  std::uint16_t port = 0;
  /// Worker threads draining the request queue.
  std::size_t num_workers = 4;
  /// Bounded request-queue capacity; requests beyond it are rejected with
  /// kOverloaded (admission control).
  std::size_t queue_capacity = 64;
  /// Frame budget: frames with a larger payload length are rejected
  /// before allocation and the connection is closed.
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Debug aid: serialize Database calls under one server-side mutex,
  /// recovering the pre-access-layer behavior. Off by default — the
  /// Database now classifies scripts and runs read-only ones concurrently
  /// under shared access (server::AccessGuard), so workers genuinely
  /// overlap read execution, not just decode, metering and I/O.
  bool serialize_execution = false;
  /// Test hook: sleep this long inside each worker before executing, to
  /// make queue-wait, deadline and admission behavior deterministic.
  std::uint32_t debug_execute_delay_ms = 0;
};

class Server {
 public:
  /// `db` must outlive the server.
  explicit Server(server::Database& db, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, then spawns the accept loop and workers. Fails on bind errors.
  Status start();

  /// Stops accepting, closes sessions, drains workers. Idempotent.
  void stop();

  /// Blocks until a client issues the shutdown verb or stop() is called.
  void wait();

  /// Port actually bound (after start()).
  std::uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Live request counters/latency with the database's access-layer
  /// counters merged in; also served remotely via kStats.
  MetricsSnapshot metrics_snapshot() const {
    MetricsSnapshot snap = metrics_.snapshot();
    snap.access = db_.access_metrics();
    snap.cluster = db_.cluster_metrics();
    snap.epoch = db_.epoch_metrics();
    return snap;
  }
  MetricsRegistry& metrics() { return metrics_; }

 private:
  struct SessionConn;
  struct Request;

  void accept_loop();
  void session_loop(const std::shared_ptr<SessionConn>& session);
  void worker_loop();
  void process_request(Request& request);

  /// Encodes status (+ optional pre-encoded body) and writes one response
  /// frame under the session's write lock. When `outcome` is given its
  /// bytes_out is filled in and it is recorded *before* the frame is sent,
  /// so stats snapshots never trail a delivered response. Returns bytes
  /// written.
  std::size_t respond(SessionConn& session, Verb verb,
                      std::uint64_t request_id, const Status& status,
                      std::span<const std::uint8_t> body = {},
                      const MetricsRegistry::Outcome* outcome = nullptr);

  /// Pushes onto the bounded queue; false when full (admission control).
  bool try_enqueue(Request request);

  server::Database& db_;
  ServerOptions options_;
  std::uint16_t port_ = 0;

  Socket listener_;
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> workers_;

  sync::Mutex queue_mutex_;
  sync::CondVar queue_cv_;
  std::deque<Request> queue_ GEMS_GUARDED_BY(queue_mutex_);

  sync::Mutex sessions_mutex_;
  std::vector<std::shared_ptr<SessionConn>> sessions_
      GEMS_GUARDED_BY(sessions_mutex_);
  std::vector<std::thread> session_threads_
      GEMS_GUARDED_BY(sessions_mutex_);
  std::atomic<std::uint64_t> next_session_id_{1};

  /// serialize_execution debug knob. Deliberately a bare std::mutex —
  /// it is acquired *conditionally* (only when the option is set), a
  /// pattern the thread safety analysis rejects for annotated locks;
  /// std::mutex is invisible to the analysis, which here is honest: the
  /// mutex guards no data, it only throttles Database call concurrency.
  std::mutex db_mutex_;

  sync::Mutex shutdown_mutex_;
  sync::CondVar shutdown_cv_;
  bool shutdown_requested_ GEMS_GUARDED_BY(shutdown_mutex_) = false;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  MetricsRegistry metrics_;
};

}  // namespace gems::net
