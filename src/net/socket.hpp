// Thin RAII wrappers over POSIX TCP sockets, the only layer of the net
// subsystem that touches the OS. Everything above (wire framing, server,
// client) deals in whole byte buffers; everything here deals in fds,
// partial reads and EINTR. IPv4/IPv6 via getaddrinfo; TCP_NODELAY is set
// on every connection because frames are small and latency-sensitive.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace gems::net {

/// Move-only owner of a socket fd; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  int fd() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }

  /// Closes the fd now (idempotent). Any blocked reader on another thread
  /// sees EOF/EBADF and unwinds.
  void close() noexcept;

  /// shutdown(SHUT_RDWR): wakes a peer thread blocked in recv() on this
  /// socket without racing on the fd number the way close() can.
  void shutdown() noexcept;

 private:
  int fd_ = -1;
};

/// Opens a listening TCP socket on `address:port` (port 0 = ephemeral;
/// query the chosen one with `local_port`). SO_REUSEADDR is set so tests
/// and quick restarts do not trip over TIME_WAIT.
Result<Socket> tcp_listen(const std::string& address, std::uint16_t port,
                          int backlog = 64);

/// Accepts one connection; blocks until a client arrives or the listener
/// is shut down (then returns kUnavailable).
Result<Socket> tcp_accept(const Socket& listener);

/// Connects to `host:port`, resolving via getaddrinfo.
Result<Socket> tcp_connect(const std::string& host, std::uint16_t port);

/// Port a bound socket listens on (for ephemeral binds).
Result<std::uint16_t> local_port(const Socket& socket);

/// Sets SO_RCVTIMEO; 0 = block forever. Reads after the timeout fail with
/// kDeadlineExceeded.
Status set_recv_timeout(const Socket& socket, std::uint32_t timeout_ms);

/// Writes the whole buffer, looping over partial sends. kUnavailable on a
/// closed/ reset connection.
Status send_all(const Socket& socket, std::span<const std::uint8_t> data);

/// Reads exactly `out.size()` bytes. kUnavailable on EOF/reset,
/// kDeadlineExceeded if a recv timeout is armed and expires.
Status recv_all(const Socket& socket, std::span<std::uint8_t> out);

}  // namespace gems::net
