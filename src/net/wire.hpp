// The GEMS wire protocol: length-prefixed, versioned binary frames
// carrying the front-end/backend hand-off of the paper (Sec. III) across
// a real TCP connection. A request's run-script payload is exactly the
// binary IR produced by `graql::encode_script` plus encoded parameter
// bindings; responses carry `exec::StatementResult` tables / subgraph
// summaries and a structured `Status`.
//
// Frame layout (little-endian, matching the IR):
//   u32 magic      "GNET" (0x474E4554)
//   u16 version    wire protocol version (1)
//   u8  verb       request verb (also echoed on the response)
//   u8  flags      bit 0: response
//   u64 request_id client-assigned, echoed on the response
//   u32 payload    payload byte length (bounded by the frame budget)
//   payload bytes
//
// Every decoder here rejects hostile lengths — a length prefix larger
// than the remaining buffer or the configured frame budget — *before*
// allocating, and reports the byte offset of the offending field.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "common/string_pool.hpp"
#include "exec/executor.hpp"
#include "net/socket.hpp"
#include "server/database.hpp"

namespace gems::net {

inline constexpr std::uint32_t kFrameMagic = 0x474E4554;  // "GNET"
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 20;
/// Default frame budget: the largest payload either side will accept.
inline constexpr std::size_t kDefaultMaxFrameBytes = 64u << 20;

/// Request verbs (paper Sec. III: clients submit scripts; the server
/// checks, compiles, executes — plus the operational verbs a real service
/// needs).
enum class Verb : std::uint8_t {
  kHandshake = 0,  // version negotiation, opens a session
  kRunScript,      // execute IR + params, return results
  kCheck,          // static analysis only
  kExplain,        // plan rendering only
  kCatalog,        // list catalog objects with sizes
  kStats,          // per-request metrics snapshot
  kCancel,         // best-effort cancel of a queued request
  kShutdown,       // stop the server (admin)
};
inline constexpr std::size_t kNumVerbs = 8;

std::string_view verb_name(Verb verb) noexcept;

struct FrameHeader {
  std::uint16_t version = kWireVersion;
  Verb verb = Verb::kHandshake;
  bool is_response = false;
  std::uint64_t request_id = 0;
  std::uint32_t payload_size = 0;
};

// ---- Primitive payload codec ----------------------------------------------
// Shared by every payload struct below and by tests that craft hostile
// frames on purpose. Values reuse the IR's tagged encoding
// (graql::encode_value), so a literal looks the same in a script IR and
// in a result table.

class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view s);
  /// Length-prefixed opaque byte blob.
  void blob(std::span<const std::uint8_t> bytes);
  void value(const storage::Value& v);

  std::vector<std::uint8_t>& buffer() { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n);
  std::vector<std::uint8_t> buf_;
};

class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();
  Result<bool> boolean();
  Result<std::string> str();
  Result<std::vector<std::uint8_t>> blob();
  Result<storage::Value> value();

  /// Element count, pre-validated against the remaining bytes so callers
  /// can size containers from it.
  Result<std::uint32_t> count(const char* what);

  bool at_end() const { return pos_ == bytes_.size(); }
  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  Status short_input(std::size_t need) const;
  template <typename T>
  Result<T> fixed();

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

// ---- Frame I/O -------------------------------------------------------------

/// Sends one frame (header + payload) as a single buffered write.
Status send_frame(const Socket& socket, Verb verb, bool is_response,
                  std::uint64_t request_id,
                  std::span<const std::uint8_t> payload);

struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;

  std::size_t wire_size() const {
    return kFrameHeaderBytes + payload.size();
  }
};

/// Reads one frame. Validates magic, version, verb, and the payload
/// length against `max_frame_bytes` before allocating the payload buffer.
/// kUnavailable on clean EOF, kParseError on garbage.
Result<Frame> recv_frame(const Socket& socket, std::size_t max_frame_bytes);

// ---- Request payloads ------------------------------------------------------

struct HandshakeRequest {
  std::uint16_t wire_version = kWireVersion;
  std::string client_name;
};

struct HandshakeResponse {
  std::uint16_t wire_version = kWireVersion;
  std::uint64_t session_id = 0;
  std::string server_name;
};

/// Payload of kRunScript / kCheck / kExplain: the script IR, the encoded
/// parameter bindings, and a server-enforced deadline (0 = none).
struct ScriptRequest {
  std::vector<std::uint8_t> ir;
  std::vector<std::uint8_t> params;  // graql::encode_params blob
  std::uint32_t deadline_ms = 0;
};

struct CancelRequest {
  std::uint64_t target_request_id = 0;
};

std::vector<std::uint8_t> encode_handshake_request(const HandshakeRequest& r);
Result<HandshakeRequest> decode_handshake_request(
    std::span<const std::uint8_t> bytes);
std::vector<std::uint8_t> encode_handshake_response(
    const HandshakeResponse& r);
Result<HandshakeResponse> decode_handshake_response(WireReader& reader);

std::vector<std::uint8_t> encode_script_request(const ScriptRequest& r);
Result<ScriptRequest> decode_script_request(
    std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> encode_cancel_request(const CancelRequest& r);
Result<CancelRequest> decode_cancel_request(
    std::span<const std::uint8_t> bytes);

// ---- Response payloads -----------------------------------------------------
// Every response payload starts with an encoded Status; a verb-specific
// body follows only when the status is OK.

void encode_status(const Status& status, WireWriter& w);
/// Returns the decoded status; a malformed status field itself decodes to
/// kParseError. OK means "the peer reported success; the body follows".
Status decode_status(WireReader& reader);

/// Result tables / subgraph summaries. Tables ship schema + row values;
/// subgraphs ship their instance counts (the full vertex/edge sets stay
/// server-side, as named catalog objects).
void encode_results(const std::vector<exec::StatementResult>& results,
                    WireWriter& w);
/// Decoded tables are rebuilt against `pool` (the client's interner).
Result<std::vector<exec::StatementResult>> decode_results(WireReader& reader,
                                                          StringPool& pool);

void encode_catalog(const std::vector<server::CatalogEntry>& entries,
                    WireWriter& w);
Result<std::vector<server::CatalogEntry>> decode_catalog(WireReader& reader);

}  // namespace gems::net
