#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace gems::net {

namespace {

Status errno_status(const std::string& what) {
  return unavailable(what + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<Socket> tcp_listen(const std::string& address, std::uint16_t port,
                          int backlog) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    return invalid_argument("bad bind address '" + address + "'");
  }
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return errno_status("socket");
  int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return errno_status("bind " + address + ":" + std::to_string(port));
  }
  if (::listen(sock.fd(), backlog) != 0) return errno_status("listen");
  return sock;
}

Result<Socket> tcp_accept(const Socket& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return errno_status("accept");
  }
}

Result<Socket> tcp_connect(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* list = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &list);
  if (rc != 0) {
    return unavailable("resolve '" + host + "': " + ::gai_strerror(rc));
  }
  Status last = unavailable("no addresses for '" + host + "'");
  for (addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
    Socket sock(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!sock.valid()) {
      last = errno_status("socket");
      continue;
    }
    if (::connect(sock.fd(), ai->ai_addr, ai->ai_addrlen) == 0) {
      set_nodelay(sock.fd());
      ::freeaddrinfo(list);
      return sock;
    }
    last = errno_status("connect " + host + ":" + std::to_string(port));
  }
  ::freeaddrinfo(list);
  return last;
}

Result<std::uint16_t> local_port(const Socket& socket) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return errno_status("getsockname");
  }
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

Status set_recv_timeout(const Socket& socket, std::uint32_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
  if (::setsockopt(socket.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) !=
      0) {
    return errno_status("setsockopt(SO_RCVTIMEO)");
  }
  return Status::ok();
}

Status send_all(const Socket& socket, std::span<const std::uint8_t> data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(socket.fd(), data.data() + sent,
                             data.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return errno_status("send");
  }
  return Status::ok();
}

Status recv_all(const Socket& socket, std::span<std::uint8_t> out) {
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n =
        ::recv(socket.fd(), out.data() + got, out.size() - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return unavailable("connection closed by peer");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return deadline_exceeded("recv timed out");
    }
    return errno_status("recv");
  }
  return Status::ok();
}

}  // namespace gems::net
