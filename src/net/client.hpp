// gems::net::Client — the client library of the GEMS split (paper
// Sec. III component 1). Parses GraQL locally, compiles it to the binary
// IR with `graql::encode_script`, and ships IR + params over the wire;
// the server does static checking against the live catalog, planning and
// execution. The synchronous API mirrors `server::Database`, so code can
// switch between in-process and remote execution by swapping the object.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/string_pool.hpp"
#include "net/metrics.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "server/database.hpp"

namespace gems::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// connect() attempts: 1 + this many retries, with exponential backoff
  /// starting at `retry_backoff_ms` (doubling each attempt).
  int connect_retries = 4;
  std::uint32_t retry_backoff_ms = 50;
  /// Per-request budget: sent to the server as its queue deadline and
  /// armed locally as the socket receive timeout (0 = no limit).
  std::uint32_t request_timeout_ms = 30000;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  std::string client_name = "gems-net-client";
  /// Auto-retry budget for *in-band* kUnavailable responses — the server
  /// executed nothing and reported a typed transient condition (e.g. a
  /// cluster rank died before the job ran, or a named subgraph was
  /// invalidated between statements). Transport failures are never
  /// retried here: a lost connection mid-request leaves the server-side
  /// outcome unknown, and re-sending could execute a mutation twice.
  std::uint32_t unavailable_retries = 1;
  std::uint32_t unavailable_backoff_ms = 100;
};

class Client {
 public:
  explicit Client(ClientOptions options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects (with retry/backoff) and performs the version handshake.
  Status connect();

  /// Drops the connection; connect() may be called again.
  void disconnect();

  bool connected() const { return socket_.valid(); }
  std::uint64_t session_id() const { return session_id_; }

  // ---- Database-mirroring API ----------------------------------------
  // Result tables are rebuilt locally against the client's string pool;
  // subgraph results arrive as summaries (the instance sets stay
  // server-side as named catalog objects).

  Result<std::vector<exec::StatementResult>> run_script(
      const std::string& text, const relational::ParamMap& params = {});

  /// Fail-stop check: first problem as a Status (wraps `check`).
  Status check_script(const std::string& text,
                      const relational::ParamMap* params = nullptr);

  /// Multi-error check: the server's full structured diagnostic list for
  /// the script, byte-identical to a local Database::check. Lex/parse
  /// problems are diagnosed locally (the IR never ships).
  Result<std::vector<graql::Diagnostic>> check(
      const std::string& text,
      const relational::ParamMap* params = nullptr);

  Result<std::string> explain(const std::string& text,
                              const relational::ParamMap& params = {});

  Result<std::vector<server::CatalogEntry>> catalog();

  /// Server-side metrics snapshot (the per-request registry).
  Result<MetricsSnapshot> stats();

  /// Best-effort cancel of a previously issued request id (only useful
  /// from another client thread while a request is queued server-side).
  Status cancel(std::uint64_t request_id);

  /// Asks the server process to shut down (unblocks Server::wait()).
  Status shutdown_server();

  /// Id the next request will use (for pairing with cancel()).
  std::uint64_t next_request_id() const { return next_request_id_; }

  /// In-band kUnavailable responses transparently retried so far (the
  /// retry tests assert on this).
  std::uint64_t unavailable_retries_used() const {
    return unavailable_retries_used_;
  }

  StringPool& pool() { return pool_; }

 private:
  /// Sends one request frame and reads its paired response. Returns the
  /// response payload (status + body). Transport failures mark the
  /// connection dead.
  Result<std::vector<std::uint8_t>> round_trip(
      Verb verb, std::span<const std::uint8_t> payload);

  /// Builds the IR+params request payload for run/check/explain.
  Result<std::vector<std::uint8_t>> make_script_request(
      const std::string& text, const relational::ParamMap& params);

  ClientOptions options_;
  Socket socket_;
  StringPool pool_;
  std::uint64_t session_id_ = 0;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t unavailable_retries_used_ = 0;
};

}  // namespace gems::net
