// Per-request server metrics (request counters by verb and outcome, bytes
// in/out, and latency histograms split into queue-wait vs. execute time).
// A snapshot travels over the wire in response to a `stats` request, so a
// remote bench can report *server-side* tail latency rather than inferring
// it from client round-trips.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>

#include "net/wire.hpp"

namespace gems::net {

/// Log-scale latency histogram: bucket i counts samples whose latency in
/// microseconds has bit-width i (i.e. [2^(i-1), 2^i)). 40 buckets cover
/// up to ~12.7 days, so nothing ever clips.
struct LatencyHistogram {
  static constexpr std::size_t kBuckets = 40;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum_us = 0;
  std::uint64_t max_us = 0;

  void record(std::uint64_t us);

  /// Quantile estimate (q in [0,1]) in microseconds: the upper edge of the
  /// bucket holding the q-th sample. 0 when empty.
  std::uint64_t quantile_us(double q) const;

  double mean_us() const {
    return count == 0 ? 0.0 : static_cast<double>(sum_us) / count;
  }
};

/// Counters for one request verb.
struct VerbMetrics {
  std::uint64_t requests = 0;   // everything that arrived, any outcome
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;     // non-OK statuses other than the two below
  std::uint64_t overloaded = 0; // rejected by admission control
  std::uint64_t expired = 0;    // deadline passed before execution
  std::uint64_t cancelled = 0;
  std::uint64_t bytes_in = 0;   // request frame bytes (header + payload)
  std::uint64_t bytes_out = 0;  // response frame bytes
  LatencyHistogram queue_wait;  // enqueue -> dequeue
  LatencyHistogram execute;     // dequeue -> response written
};

/// Copyable point-in-time view of the registry; also the wire payload of a
/// `stats` response.
struct MetricsSnapshot {
  std::array<VerbMetrics, kNumVerbs> verbs{};

  const VerbMetrics& verb(Verb v) const {
    return verbs[static_cast<std::size_t>(v)];
  }

  /// Aggregate over all verbs.
  VerbMetrics total() const;

  /// Human-readable table (one line per verb with traffic).
  std::string to_string() const;
};

void encode_snapshot(const MetricsSnapshot& snap,
                     std::vector<std::uint8_t>& out);
Result<MetricsSnapshot> decode_snapshot(std::span<const std::uint8_t> bytes);

/// Thread-safe registry the server records into. One mutex is plenty: a
/// record is a dozen integer adds, far below the cost of the request it
/// describes.
class MetricsRegistry {
 public:
  struct Outcome {
    StatusCode code = StatusCode::kOk;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t queue_wait_us = 0;
    std::uint64_t execute_us = 0;
  };

  void record(Verb verb, const Outcome& outcome);

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  MetricsSnapshot state_;
};

}  // namespace gems::net
