// Per-request server metrics (request counters by verb and outcome, bytes
// in/out, and latency histograms split into queue-wait vs. execute time).
// A snapshot travels over the wire in response to a `stats` request, so a
// remote bench can report *server-side* tail latency rather than inferring
// it from client round-trips.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/histogram.hpp"
#include "common/sync.hpp"
#include "mvcc/metrics.hpp"
#include "net/wire.hpp"
#include "server/access.hpp"
#include "server/cluster_metrics.hpp"

namespace gems::net {

/// The log-scale latency histogram now lives in common/histogram.hpp so
/// the durability layer (src/store) can meter with the same type; this
/// alias keeps the wire layer's established spelling.
using LatencyHistogram = ::gems::LatencyHistogram;

/// Counters for one request verb.
struct VerbMetrics {
  std::uint64_t requests = 0;   // everything that arrived, any outcome
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;     // non-OK statuses other than the two below
  std::uint64_t overloaded = 0; // rejected by admission control
  std::uint64_t expired = 0;    // deadline passed before execution
  std::uint64_t cancelled = 0;
  std::uint64_t bytes_in = 0;   // request frame bytes (header + payload)
  std::uint64_t bytes_out = 0;  // response frame bytes
  LatencyHistogram queue_wait;  // enqueue -> dequeue
  LatencyHistogram execute;     // dequeue -> response written
};

/// Copyable point-in-time view of the registry; also the wire payload of a
/// `stats` response.
struct MetricsSnapshot {
  std::array<VerbMetrics, kNumVerbs> verbs{};

  /// Database access-layer counters (shared/exclusive acquisitions and
  /// wait/hold times) merged in by the server when answering `stats`, so
  /// a remote bench can see read concurrency server-side. Appended to the
  /// wire payload; old peers ignore it, and decoding tolerates its
  /// absence, so kWireVersion is unchanged.
  server::AccessMetricsSnapshot access{};

  /// Cluster coordinator counters (per-rank BSP traffic), merged in by the
  /// server when a cluster is attached. Rides after the access block at
  /// the payload tail under the same compatibility discipline; num_ranks
  /// == 0 means "no cluster" and renders as such.
  server::ClusterMetricsSnapshot cluster{};

  /// gems::mvcc epoch lifecycle counters (publish/pin/retire, delta vs.
  /// rebuild ingest maintenance), merged in by the server. Rides after
  /// the cluster block at the payload tail under the same compatibility
  /// discipline; empty() renders as absent.
  mvcc::EpochMetricsSnapshot epoch{};

  const VerbMetrics& verb(Verb v) const {
    return verbs[static_cast<std::size_t>(v)];
  }

  /// Aggregate over all verbs.
  VerbMetrics total() const;

  /// Human-readable table (one line per verb with traffic).
  std::string to_string() const;
};

void encode_snapshot(const MetricsSnapshot& snap,
                     std::vector<std::uint8_t>& out);
Result<MetricsSnapshot> decode_snapshot(std::span<const std::uint8_t> bytes);

/// Thread-safe registry the server records into. One mutex is plenty: a
/// record is a dozen integer adds, far below the cost of the request it
/// describes.
class MetricsRegistry {
 public:
  struct Outcome {
    StatusCode code = StatusCode::kOk;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t queue_wait_us = 0;
    std::uint64_t execute_us = 0;
  };

  void record(Verb verb, const Outcome& outcome);

  MetricsSnapshot snapshot() const;

 private:
  mutable sync::Mutex mutex_;
  MetricsSnapshot state_ GEMS_GUARDED_BY(mutex_);
};

}  // namespace gems::net
