#include "net/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace gems::net {

VerbMetrics MetricsSnapshot::total() const {
  VerbMetrics t;
  for (const auto& v : verbs) {
    t.requests += v.requests;
    t.ok += v.ok;
    t.errors += v.errors;
    t.overloaded += v.overloaded;
    t.expired += v.expired;
    t.cancelled += v.cancelled;
    t.bytes_in += v.bytes_in;
    t.bytes_out += v.bytes_out;
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
      t.queue_wait.buckets[i] += v.queue_wait.buckets[i];
      t.execute.buckets[i] += v.execute.buckets[i];
    }
    t.queue_wait.count += v.queue_wait.count;
    t.queue_wait.sum_us += v.queue_wait.sum_us;
    t.queue_wait.max_us = std::max(t.queue_wait.max_us, v.queue_wait.max_us);
    t.execute.count += v.execute.count;
    t.execute.sum_us += v.execute.sum_us;
    t.execute.max_us = std::max(t.execute.max_us, v.execute.max_us);
  }
  return t;
}

std::string MetricsSnapshot::to_string() const {
  std::ostringstream out;
  out << "verb         reqs     ok    err  over  expd  canc   "
         "bytes_in  bytes_out  queue p50/p99 us  exec p50/p99 us\n";
  for (std::size_t i = 0; i < kNumVerbs; ++i) {
    const VerbMetrics& v = verbs[i];
    if (v.requests == 0) continue;
    char line[192];
    std::snprintf(
        line, sizeof(line),
        "%-10s %6llu %6llu %6llu %5llu %5llu %5llu %10llu %10llu "
        "%7llu/%-7llu %7llu/%-7llu\n",
        std::string(verb_name(static_cast<Verb>(i))).c_str(),
        static_cast<unsigned long long>(v.requests),
        static_cast<unsigned long long>(v.ok),
        static_cast<unsigned long long>(v.errors),
        static_cast<unsigned long long>(v.overloaded),
        static_cast<unsigned long long>(v.expired),
        static_cast<unsigned long long>(v.cancelled),
        static_cast<unsigned long long>(v.bytes_in),
        static_cast<unsigned long long>(v.bytes_out),
        static_cast<unsigned long long>(v.queue_wait.quantile_us(0.5)),
        static_cast<unsigned long long>(v.queue_wait.quantile_us(0.99)),
        static_cast<unsigned long long>(v.execute.quantile_us(0.5)),
        static_cast<unsigned long long>(v.execute.quantile_us(0.99)));
    out << line;
  }
  if (access.shared_acquired > 0 || access.exclusive_acquired > 0) {
    out << access.to_string();
  }
  if (cluster.num_ranks > 0) {
    out << cluster.to_string();
  }
  if (!epoch.empty()) {
    out << epoch.to_string() << "\n";
  }
  return out.str();
}

namespace {

void encode_histogram(const LatencyHistogram& h, WireWriter& w) {
  w.u64(h.count);
  w.u64(h.sum_us);
  w.u64(h.max_us);
  w.u32(static_cast<std::uint32_t>(LatencyHistogram::kBuckets));
  for (const std::uint64_t b : h.buckets) w.u64(b);
}

Result<LatencyHistogram> decode_histogram(WireReader& r) {
  LatencyHistogram h;
  GEMS_ASSIGN_OR_RETURN(h.count, r.u64());
  GEMS_ASSIGN_OR_RETURN(h.sum_us, r.u64());
  GEMS_ASSIGN_OR_RETURN(h.max_us, r.u64());
  GEMS_ASSIGN_OR_RETURN(std::uint32_t n, r.count("histogram buckets"));
  for (std::uint32_t i = 0; i < n; ++i) {
    GEMS_ASSIGN_OR_RETURN(std::uint64_t b, r.u64());
    // Tolerate a peer with more/fewer buckets: clamp into ours.
    h.buckets[std::min<std::size_t>(i, LatencyHistogram::kBuckets - 1)] += b;
  }
  return h;
}

}  // namespace

void encode_snapshot(const MetricsSnapshot& snap,
                     std::vector<std::uint8_t>& out) {
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(kNumVerbs));
  for (const auto& v : snap.verbs) {
    w.u64(v.requests);
    w.u64(v.ok);
    w.u64(v.errors);
    w.u64(v.overloaded);
    w.u64(v.expired);
    w.u64(v.cancelled);
    w.u64(v.bytes_in);
    w.u64(v.bytes_out);
    encode_histogram(v.queue_wait, w);
    encode_histogram(v.execute, w);
  }
  // Access-layer counters ride at the tail: old decoders stop before them
  // (the snapshot decode has always tolerated trailing bytes), so this is
  // wire-compatible without a version bump.
  w.u64(snap.access.shared_acquired);
  w.u64(snap.access.exclusive_acquired);
  w.u64(snap.access.shared_wait_us);
  w.u64(snap.access.exclusive_wait_us);
  w.u64(snap.access.shared_held_us);
  w.u64(snap.access.exclusive_held_us);
  w.u64(snap.access.peak_concurrent_shared);
  // The cluster block follows the access block at the tail, same
  // compatibility contract (tolerant trailing decode, no version bump).
  w.u32(snap.cluster.num_ranks);
  w.u64(snap.cluster.jobs);
  w.u64(snap.cluster.fallbacks);
  w.u64(snap.cluster.syncs);
  w.u64(snap.cluster.sync_bytes);
  w.u32(static_cast<std::uint32_t>(snap.cluster.ranks.size()));
  for (const auto& m : snap.cluster.ranks) {
    w.boolean(m.connected);
    w.u64(m.jobs);
    w.u64(m.messages);
    w.u64(m.payload_bytes);
    w.u64(m.wire_bytes);
    w.u64(m.supersteps);
    w.u64(m.stall_us);
  }
  // The epoch block (gems::mvcc) follows the cluster block at the tail,
  // same compatibility contract.
  w.u64(snap.epoch.published);
  w.u64(snap.epoch.retired);
  w.u64(snap.epoch.freed);
  w.u64(snap.epoch.live);
  w.u64(snap.epoch.pins_taken);
  w.u64(snap.epoch.pinned_readers);
  w.u64(snap.epoch.peak_pinned_readers);
  w.u64(snap.epoch.oldest_pin_age_us);
  w.u64(snap.epoch.delta_ingests);
  w.u64(snap.epoch.full_rebuilds);
  w.u64(snap.epoch.delta_build_ns);
  w.u64(snap.epoch.rebuild_ns);
  w.u64(snap.epoch.current_epoch);
  std::vector<std::uint8_t> bytes = w.take();
  out.insert(out.end(), bytes.begin(), bytes.end());
}

Result<MetricsSnapshot> decode_snapshot(std::span<const std::uint8_t> bytes) {
  WireReader r(bytes);
  GEMS_ASSIGN_OR_RETURN(std::uint32_t n, r.count("verb metrics"));
  MetricsSnapshot snap;
  for (std::uint32_t i = 0; i < n; ++i) {
    VerbMetrics scratch;
    VerbMetrics& v = i < kNumVerbs ? snap.verbs[i] : scratch;
    GEMS_ASSIGN_OR_RETURN(v.requests, r.u64());
    GEMS_ASSIGN_OR_RETURN(v.ok, r.u64());
    GEMS_ASSIGN_OR_RETURN(v.errors, r.u64());
    GEMS_ASSIGN_OR_RETURN(v.overloaded, r.u64());
    GEMS_ASSIGN_OR_RETURN(v.expired, r.u64());
    GEMS_ASSIGN_OR_RETURN(v.cancelled, r.u64());
    GEMS_ASSIGN_OR_RETURN(v.bytes_in, r.u64());
    GEMS_ASSIGN_OR_RETURN(v.bytes_out, r.u64());
    GEMS_ASSIGN_OR_RETURN(v.queue_wait, decode_histogram(r));
    GEMS_ASSIGN_OR_RETURN(v.execute, decode_histogram(r));
  }
  if (!r.at_end()) {
    GEMS_ASSIGN_OR_RETURN(snap.access.shared_acquired, r.u64());
    GEMS_ASSIGN_OR_RETURN(snap.access.exclusive_acquired, r.u64());
    GEMS_ASSIGN_OR_RETURN(snap.access.shared_wait_us, r.u64());
    GEMS_ASSIGN_OR_RETURN(snap.access.exclusive_wait_us, r.u64());
    GEMS_ASSIGN_OR_RETURN(snap.access.shared_held_us, r.u64());
    GEMS_ASSIGN_OR_RETURN(snap.access.exclusive_held_us, r.u64());
    GEMS_ASSIGN_OR_RETURN(snap.access.peak_concurrent_shared, r.u64());
  }
  if (!r.at_end()) {
    GEMS_ASSIGN_OR_RETURN(snap.cluster.num_ranks, r.u32());
    GEMS_ASSIGN_OR_RETURN(snap.cluster.jobs, r.u64());
    GEMS_ASSIGN_OR_RETURN(snap.cluster.fallbacks, r.u64());
    GEMS_ASSIGN_OR_RETURN(snap.cluster.syncs, r.u64());
    GEMS_ASSIGN_OR_RETURN(snap.cluster.sync_bytes, r.u64());
    GEMS_ASSIGN_OR_RETURN(std::uint32_t n_ranks, r.count("cluster ranks"));
    snap.cluster.ranks.resize(n_ranks);
    for (std::uint32_t i = 0; i < n_ranks; ++i) {
      server::ClusterRankMetrics& m = snap.cluster.ranks[i];
      GEMS_ASSIGN_OR_RETURN(m.connected, r.boolean());
      GEMS_ASSIGN_OR_RETURN(m.jobs, r.u64());
      GEMS_ASSIGN_OR_RETURN(m.messages, r.u64());
      GEMS_ASSIGN_OR_RETURN(m.payload_bytes, r.u64());
      GEMS_ASSIGN_OR_RETURN(m.wire_bytes, r.u64());
      GEMS_ASSIGN_OR_RETURN(m.supersteps, r.u64());
      GEMS_ASSIGN_OR_RETURN(m.stall_us, r.u64());
    }
  }
  if (!r.at_end()) {
    GEMS_ASSIGN_OR_RETURN(snap.epoch.published, r.u64());
    GEMS_ASSIGN_OR_RETURN(snap.epoch.retired, r.u64());
    GEMS_ASSIGN_OR_RETURN(snap.epoch.freed, r.u64());
    GEMS_ASSIGN_OR_RETURN(snap.epoch.live, r.u64());
    GEMS_ASSIGN_OR_RETURN(snap.epoch.pins_taken, r.u64());
    GEMS_ASSIGN_OR_RETURN(snap.epoch.pinned_readers, r.u64());
    GEMS_ASSIGN_OR_RETURN(snap.epoch.peak_pinned_readers, r.u64());
    GEMS_ASSIGN_OR_RETURN(snap.epoch.oldest_pin_age_us, r.u64());
    GEMS_ASSIGN_OR_RETURN(snap.epoch.delta_ingests, r.u64());
    GEMS_ASSIGN_OR_RETURN(snap.epoch.full_rebuilds, r.u64());
    GEMS_ASSIGN_OR_RETURN(snap.epoch.delta_build_ns, r.u64());
    GEMS_ASSIGN_OR_RETURN(snap.epoch.rebuild_ns, r.u64());
    GEMS_ASSIGN_OR_RETURN(snap.epoch.current_epoch, r.u64());
  }
  return snap;
}

void MetricsRegistry::record(Verb verb, const Outcome& outcome) {
  sync::MutexLock lock(mutex_);
  VerbMetrics& v = state_.verbs[static_cast<std::size_t>(verb)];
  ++v.requests;
  switch (outcome.code) {
    case StatusCode::kOk:
      ++v.ok;
      break;
    case StatusCode::kOverloaded:
      ++v.overloaded;
      break;
    case StatusCode::kDeadlineExceeded:
      ++v.expired;
      break;
    case StatusCode::kCancelled:
      ++v.cancelled;
      break;
    default:
      ++v.errors;
      break;
  }
  v.bytes_in += outcome.bytes_in;
  v.bytes_out += outcome.bytes_out;
  if (outcome.code == StatusCode::kOk ||
      outcome.code == StatusCode::kDeadlineExceeded ||
      outcome.code == StatusCode::kCancelled) {
    v.queue_wait.record(outcome.queue_wait_us);
  }
  if (outcome.code == StatusCode::kOk) v.execute.record(outcome.execute_us);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  sync::MutexLock lock(mutex_);
  return state_;
}

}  // namespace gems::net
