#include "net/wire.hpp"

#include <cstring>

#include "graql/ir.hpp"

namespace gems::net {

namespace {

using storage::DataType;
using storage::TypeKind;
using storage::Value;

}  // namespace

std::string_view verb_name(Verb verb) noexcept {
  switch (verb) {
    case Verb::kHandshake:
      return "handshake";
    case Verb::kRunScript:
      return "run-script";
    case Verb::kCheck:
      return "check";
    case Verb::kExplain:
      return "explain";
    case Verb::kCatalog:
      return "catalog";
    case Verb::kStats:
      return "stats";
    case Verb::kCancel:
      return "cancel";
    case Verb::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

// ---- WireWriter ------------------------------------------------------------

void WireWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  raw(s.data(), s.size());
}

void WireWriter::blob(std::span<const std::uint8_t> bytes) {
  u32(static_cast<std::uint32_t>(bytes.size()));
  raw(bytes.data(), bytes.size());
}

void WireWriter::value(const storage::Value& v) {
  graql::encode_value(v, buf_);
}

void WireWriter::raw(const void* p, std::size_t n) {
  const auto* bytes = static_cast<const std::uint8_t*>(p);
  buf_.insert(buf_.end(), bytes, bytes + n);
}

// ---- WireReader ------------------------------------------------------------

Status WireReader::short_input(std::size_t need) const {
  return parse_error("malformed frame: need " + std::to_string(need) +
                     " bytes but only " + std::to_string(remaining()) +
                     " remain at byte offset " + std::to_string(pos_));
}

template <typename T>
Result<T> WireReader::fixed() {
  if (sizeof(T) > remaining()) return short_input(sizeof(T));
  T v;
  std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
  pos_ += sizeof(T);
  return v;
}

Result<std::uint8_t> WireReader::u8() { return fixed<std::uint8_t>(); }
Result<std::uint16_t> WireReader::u16() { return fixed<std::uint16_t>(); }
Result<std::uint32_t> WireReader::u32() { return fixed<std::uint32_t>(); }
Result<std::uint64_t> WireReader::u64() { return fixed<std::uint64_t>(); }

Result<bool> WireReader::boolean() {
  GEMS_ASSIGN_OR_RETURN(std::uint8_t v, u8());
  return v != 0;
}

Result<std::string> WireReader::str() {
  const std::size_t at = pos_;
  GEMS_ASSIGN_OR_RETURN(std::uint32_t n, u32());
  if (n > remaining()) {
    // Reject the length prefix before allocating anything.
    return parse_error("malformed frame: string length " + std::to_string(n) +
                       " exceeds remaining " + std::to_string(remaining()) +
                       " bytes at byte offset " + std::to_string(at));
  }
  std::string out(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
  pos_ += n;
  return out;
}

Result<std::vector<std::uint8_t>> WireReader::blob() {
  const std::size_t at = pos_;
  GEMS_ASSIGN_OR_RETURN(std::uint32_t n, u32());
  if (n > remaining()) {
    return parse_error("malformed frame: blob length " + std::to_string(n) +
                       " exceeds remaining " + std::to_string(remaining()) +
                       " bytes at byte offset " + std::to_string(at));
  }
  std::vector<std::uint8_t> out(bytes_.begin() + pos_,
                                bytes_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

Result<storage::Value> WireReader::value() {
  return graql::decode_value(bytes_, pos_);
}

Result<std::uint32_t> WireReader::count(const char* what) {
  const std::size_t at = pos_;
  GEMS_ASSIGN_OR_RETURN(std::uint32_t n, u32());
  if (n > remaining()) {
    return parse_error("malformed frame: " + std::string(what) + " count " +
                       std::to_string(n) + " exceeds remaining " +
                       std::to_string(remaining()) + " bytes at byte offset " +
                       std::to_string(at));
  }
  return n;
}

// ---- Frame I/O -------------------------------------------------------------

Status send_frame(const Socket& socket, Verb verb, bool is_response,
                  std::uint64_t request_id,
                  std::span<const std::uint8_t> payload) {
  WireWriter w;
  w.buffer().reserve(kFrameHeaderBytes + payload.size());
  w.u32(kFrameMagic);
  w.u16(kWireVersion);
  w.u8(static_cast<std::uint8_t>(verb));
  w.u8(is_response ? 1 : 0);
  w.u64(request_id);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.buffer().insert(w.buffer().end(), payload.begin(), payload.end());
  return send_all(socket, w.buffer());
}

Result<Frame> recv_frame(const Socket& socket, std::size_t max_frame_bytes) {
  std::uint8_t header[kFrameHeaderBytes];
  GEMS_RETURN_IF_ERROR(recv_all(socket, header));
  WireReader r(header);
  GEMS_ASSIGN_OR_RETURN(std::uint32_t magic, r.u32());
  if (magic != kFrameMagic) {
    return parse_error("bad frame magic at byte offset 0 (not a GEMS wire "
                       "peer?)");
  }
  Frame frame;
  GEMS_ASSIGN_OR_RETURN(frame.header.version, r.u16());
  if (frame.header.version != kWireVersion) {
    return parse_error("unsupported wire version " +
                       std::to_string(frame.header.version) +
                       " at byte offset 4 (this peer speaks " +
                       std::to_string(kWireVersion) + ")");
  }
  GEMS_ASSIGN_OR_RETURN(std::uint8_t verb, r.u8());
  if (verb >= kNumVerbs) {
    return parse_error("unknown verb " + std::to_string(verb) +
                       " at byte offset 6");
  }
  frame.header.verb = static_cast<Verb>(verb);
  GEMS_ASSIGN_OR_RETURN(std::uint8_t flags, r.u8());
  frame.header.is_response = (flags & 1) != 0;
  GEMS_ASSIGN_OR_RETURN(frame.header.request_id, r.u64());
  GEMS_ASSIGN_OR_RETURN(frame.header.payload_size, r.u32());
  // The frame budget is the admission line for memory: a hostile length
  // is rejected here, before any allocation.
  if (frame.header.payload_size > max_frame_bytes) {
    return parse_error("frame payload length " +
                       std::to_string(frame.header.payload_size) +
                       " exceeds the frame budget of " +
                       std::to_string(max_frame_bytes) +
                       " bytes at byte offset 16");
  }
  frame.payload.resize(frame.header.payload_size);
  GEMS_RETURN_IF_ERROR(recv_all(socket, frame.payload));
  return frame;
}

// ---- Request payloads ------------------------------------------------------

std::vector<std::uint8_t> encode_handshake_request(const HandshakeRequest& r) {
  WireWriter w;
  w.u16(r.wire_version);
  w.str(r.client_name);
  return w.take();
}

Result<HandshakeRequest> decode_handshake_request(
    std::span<const std::uint8_t> bytes) {
  WireReader r(bytes);
  HandshakeRequest out;
  GEMS_ASSIGN_OR_RETURN(out.wire_version, r.u16());
  GEMS_ASSIGN_OR_RETURN(out.client_name, r.str());
  return out;
}

std::vector<std::uint8_t> encode_handshake_response(
    const HandshakeResponse& r) {
  WireWriter w;
  w.u16(r.wire_version);
  w.u64(r.session_id);
  w.str(r.server_name);
  return w.take();
}

Result<HandshakeResponse> decode_handshake_response(WireReader& reader) {
  HandshakeResponse out;
  GEMS_ASSIGN_OR_RETURN(out.wire_version, reader.u16());
  GEMS_ASSIGN_OR_RETURN(out.session_id, reader.u64());
  GEMS_ASSIGN_OR_RETURN(out.server_name, reader.str());
  return out;
}

std::vector<std::uint8_t> encode_script_request(const ScriptRequest& r) {
  WireWriter w;
  w.blob(r.ir);
  w.blob(r.params);
  w.u32(r.deadline_ms);
  return w.take();
}

Result<ScriptRequest> decode_script_request(
    std::span<const std::uint8_t> bytes) {
  WireReader r(bytes);
  ScriptRequest out;
  GEMS_ASSIGN_OR_RETURN(out.ir, r.blob());
  GEMS_ASSIGN_OR_RETURN(out.params, r.blob());
  GEMS_ASSIGN_OR_RETURN(out.deadline_ms, r.u32());
  return out;
}

std::vector<std::uint8_t> encode_cancel_request(const CancelRequest& r) {
  WireWriter w;
  w.u64(r.target_request_id);
  return w.take();
}

Result<CancelRequest> decode_cancel_request(
    std::span<const std::uint8_t> bytes) {
  WireReader r(bytes);
  CancelRequest out;
  GEMS_ASSIGN_OR_RETURN(out.target_request_id, r.u64());
  return out;
}

// ---- Response payloads -----------------------------------------------------

void encode_status(const Status& status, WireWriter& w) {
  w.u16(static_cast<std::uint16_t>(status.code()));
  w.str(status.message());
}

Status decode_status(WireReader& reader) {
  auto code = reader.u16();
  if (!code.is_ok()) return code.status();
  auto message = reader.str();
  if (!message.is_ok()) return message.status();
  if (*code > static_cast<std::uint16_t>(StatusCode::kUnavailable)) {
    return parse_error("malformed frame: unknown status code " +
                       std::to_string(*code));
  }
  return Status(static_cast<StatusCode>(*code), std::move(*message));
}

void encode_results(const std::vector<exec::StatementResult>& results,
                    WireWriter& w) {
  w.u32(static_cast<std::uint32_t>(results.size()));
  for (const auto& r : results) {
    w.u8(static_cast<std::uint8_t>(r.kind));
    w.boolean(r.truncated);
    w.u8(static_cast<std::uint8_t>(r.into));
    w.str(r.into_name);
    w.str(r.message);
    const storage::Table* table = r.table.get();
    w.boolean(table != nullptr);
    if (table != nullptr) {
      w.str(table->name());
      w.u32(static_cast<std::uint32_t>(table->schema().num_columns()));
      for (const auto& col : table->schema().columns()) {
        w.str(col.name);
        w.u8(static_cast<std::uint8_t>(col.type.kind));
        w.u32(col.type.varchar_length);
      }
      w.u64(table->num_rows());
      for (std::size_t row = 0; row < table->num_rows(); ++row) {
        for (std::size_t col = 0; col < table->num_columns(); ++col) {
          w.value(table->value_at(row, static_cast<storage::ColumnIndex>(col)));
        }
      }
    }
    const bool has_subgraph = r.subgraph != nullptr;
    w.boolean(has_subgraph);
    if (has_subgraph) {
      w.u64(r.subgraph->num_vertices());
      w.u64(r.subgraph->num_edges());
    }
  }
}

Result<std::vector<exec::StatementResult>> decode_results(WireReader& reader,
                                                          StringPool& pool) {
  GEMS_ASSIGN_OR_RETURN(std::uint32_t n, reader.count("result list"));
  std::vector<exec::StatementResult> results;
  results.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    exec::StatementResult result;
    GEMS_ASSIGN_OR_RETURN(std::uint8_t kind, reader.u8());
    if (kind > static_cast<std::uint8_t>(
                   exec::StatementResult::Kind::kSubgraph)) {
      return parse_error("malformed frame: bad result kind " +
                         std::to_string(kind));
    }
    result.kind = static_cast<exec::StatementResult::Kind>(kind);
    GEMS_ASSIGN_OR_RETURN(result.truncated, reader.boolean());
    GEMS_ASSIGN_OR_RETURN(std::uint8_t into, reader.u8());
    if (into > static_cast<std::uint8_t>(graql::IntoKind::kTable)) {
      return parse_error("malformed frame: bad into kind " +
                         std::to_string(into));
    }
    result.into = static_cast<graql::IntoKind>(into);
    GEMS_ASSIGN_OR_RETURN(result.into_name, reader.str());
    GEMS_ASSIGN_OR_RETURN(result.message, reader.str());
    GEMS_ASSIGN_OR_RETURN(bool has_table, reader.boolean());
    if (has_table) {
      GEMS_ASSIGN_OR_RETURN(std::string table_name, reader.str());
      GEMS_ASSIGN_OR_RETURN(std::uint32_t ncols, reader.count("column list"));
      std::vector<storage::ColumnDef> columns;
      columns.reserve(ncols);
      for (std::uint32_t c = 0; c < ncols; ++c) {
        storage::ColumnDef def;
        GEMS_ASSIGN_OR_RETURN(def.name, reader.str());
        GEMS_ASSIGN_OR_RETURN(std::uint8_t type_kind, reader.u8());
        if (type_kind > static_cast<std::uint8_t>(TypeKind::kDate)) {
          return parse_error("malformed frame: bad column type kind " +
                             std::to_string(type_kind));
        }
        def.type.kind = static_cast<TypeKind>(type_kind);
        GEMS_ASSIGN_OR_RETURN(def.type.varchar_length, reader.u32());
        columns.push_back(std::move(def));
      }
      GEMS_ASSIGN_OR_RETURN(storage::Schema schema,
                            storage::Schema::create(std::move(columns)));
      GEMS_ASSIGN_OR_RETURN(std::uint64_t nrows, reader.u64());
      // One value needs at least a tag byte; pre-check the row count
      // against the remaining payload before building the table.
      if (ncols > 0 && nrows > reader.remaining() / ncols) {
        return parse_error("malformed frame: row count " +
                           std::to_string(nrows) + " exceeds remaining " +
                           std::to_string(reader.remaining()) +
                           " bytes at byte offset " +
                           std::to_string(reader.position()));
      }
      auto table = std::make_shared<storage::Table>(std::move(table_name),
                                                    std::move(schema), pool);
      std::vector<Value> row(table->num_columns());
      for (std::uint64_t rix = 0; rix < nrows; ++rix) {
        for (std::size_t c = 0; c < row.size(); ++c) {
          GEMS_ASSIGN_OR_RETURN(row[c], reader.value());
        }
        GEMS_RETURN_IF_ERROR(table->append_row(row));
      }
      result.table = std::move(table);
    }
    GEMS_ASSIGN_OR_RETURN(bool has_subgraph, reader.boolean());
    if (has_subgraph) {
      // The vertex/edge sets stay server-side; clients get the summary.
      GEMS_ASSIGN_OR_RETURN(std::uint64_t nverts, reader.u64());
      GEMS_ASSIGN_OR_RETURN(std::uint64_t nedges, reader.u64());
      if (result.message.empty()) {
        result.message = "subgraph '" + result.into_name + "': " +
                         std::to_string(nverts) + " vertices, " +
                         std::to_string(nedges) + " edges (server-side)";
      }
    }
    results.push_back(std::move(result));
  }
  return results;
}

void encode_catalog(const std::vector<server::CatalogEntry>& entries,
                    WireWriter& w) {
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) {
    w.u8(static_cast<std::uint8_t>(e.kind));
    w.str(e.name);
    w.u64(e.instances);
    w.u64(e.byte_size);
  }
}

Result<std::vector<server::CatalogEntry>> decode_catalog(WireReader& reader) {
  GEMS_ASSIGN_OR_RETURN(std::uint32_t n, reader.count("catalog list"));
  std::vector<server::CatalogEntry> entries;
  entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    server::CatalogEntry e;
    GEMS_ASSIGN_OR_RETURN(std::uint8_t kind, reader.u8());
    if (kind > static_cast<std::uint8_t>(
                   server::CatalogEntry::Kind::kSubgraph)) {
      return parse_error("malformed frame: bad catalog kind " +
                         std::to_string(kind));
    }
    e.kind = static_cast<server::CatalogEntry::Kind>(kind);
    GEMS_ASSIGN_OR_RETURN(e.name, reader.str());
    GEMS_ASSIGN_OR_RETURN(std::uint64_t instances, reader.u64());
    GEMS_ASSIGN_OR_RETURN(std::uint64_t byte_size, reader.u64());
    e.instances = static_cast<std::size_t>(instances);
    e.byte_size = static_cast<std::size_t>(byte_size);
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace gems::net
