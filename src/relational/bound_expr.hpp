// Bound (type-checked) expressions — the output of the static analysis the
// paper describes in Sec. III-A ("is the query comparing an attribute with
// a constant of the wrong type?"). Binding resolves column references to
// (source, column) slots, substitutes %parameters%, interns string
// constants, and computes a static result type for every node.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/string_pool.hpp"
#include "relational/expr.hpp"
#include "storage/schema.hpp"
#include "storage/table.hpp"

namespace gems::relational {

/// Where a bound column reference reads from: source `source` (a table or
/// path-step cursor supplied at evaluation time), column `column`.
struct Slot {
  std::uint16_t source = 0;
  storage::ColumnIndex column = 0;
  storage::DataType type;
};

/// Unboxed runtime value for the evaluator's hot path.
struct Cell {
  bool null = true;
  storage::TypeKind kind = storage::TypeKind::kInt64;
  union {
    bool b;
    std::int64_t i;  // Int64 and Date
    double d;
  };
  StringId s = kInvalidStringId;  // Varchar payload

  static Cell null_cell() { return Cell{}; }
  static Cell of_bool(bool v) {
    Cell c;
    c.null = false;
    c.kind = storage::TypeKind::kBool;
    c.b = v;
    return c;
  }
  static Cell of_int64(std::int64_t v,
                       storage::TypeKind k = storage::TypeKind::kInt64) {
    Cell c;
    c.null = false;
    c.kind = k;
    c.i = v;
    return c;
  }
  static Cell of_double(double v) {
    Cell c;
    c.null = false;
    c.kind = storage::TypeKind::kDouble;
    c.d = v;
    return c;
  }
  static Cell of_string(StringId v) {
    Cell c;
    c.null = false;
    c.kind = storage::TypeKind::kVarchar;
    c.s = v;
    return c;
  }

  /// True for a non-null true boolean (predicate acceptance test).
  bool truthy() const noexcept {
    return !null && kind == storage::TypeKind::kBool && b;
  }
};

struct BoundExpr;
using BoundExprPtr = std::unique_ptr<BoundExpr>;

struct BoundExpr {
  enum class Kind { kConst, kColumnRef, kUnary, kBinary };

  Kind kind = Kind::kConst;
  storage::DataType type;  // static result type

  Cell constant;  // kConst (string constants pre-interned)
  Slot slot;      // kColumnRef
  UnaryOp uop = UnaryOp::kNot;
  BinaryOp bop = BinaryOp::kAnd;
  BoundExprPtr lhs;
  BoundExprPtr rhs;
};

/// Name-resolution context for binding. Table scans expose one source with
/// the table's schema; path queries expose one source per step, addressable
/// by step type name, alias or label.
class Scope {
 public:
  virtual ~Scope() = default;

  /// Resolves `qualifier.column` (qualifier may be empty) to a slot.
  virtual Result<Slot> resolve(std::string_view qualifier,
                               std::string_view column) const = 0;
};

/// Scope over a single table; bare columns and `alias.column` both resolve
/// into source 0.
class TableScope : public Scope {
 public:
  explicit TableScope(const storage::Table& table, std::string alias = "")
      : table_(table), alias_(std::move(alias)) {}

  Result<Slot> resolve(std::string_view qualifier,
                       std::string_view column) const override;

 private:
  const storage::Table& table_;
  std::string alias_;
};

/// Bind-time parameter assignment for %Name% placeholders (paper Figs. 6-7
/// use %Product1%, %Country1%...).
using ParamMap = std::map<std::string, storage::Value, std::less<>>;

/// Binds and type-checks `expr`. String literals are interned into `pool`.
/// Fails with kTypeError on incomparable operand types, non-boolean
/// logical operands, or unknown columns/parameters.
Result<BoundExprPtr> bind_expr(const ExprPtr& expr, const Scope& scope,
                               const ParamMap& params, StringPool& pool);

/// Binds and additionally requires a boolean result (WHERE clauses).
Result<BoundExprPtr> bind_predicate(const ExprPtr& expr, const Scope& scope,
                                    const ParamMap& params, StringPool& pool);

}  // namespace gems::relational
