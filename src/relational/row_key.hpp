// Byte-string encoding of row keys for hash-based operators (GROUP BY,
// DISTINCT, hash join) and for vertex-key identity in the graph layer.
// Two rows encode to the same bytes iff their key columns are pairwise
// equal under the column's type (strings compare by interned id, which the
// shared StringPool makes equivalent to string equality).
#pragma once

#include <span>
#include <string>

#include "storage/table.hpp"

namespace gems::relational {

/// Appends the encoding of `table[row][col]` to `out`.
void append_key_part(const storage::Table& table, storage::RowIndex row,
                     storage::ColumnIndex col, std::string& out);

/// Encodes the given columns of one row.
std::string encode_row_key(const storage::Table& table, storage::RowIndex row,
                           std::span<const storage::ColumnIndex> cols);

}  // namespace gems::relational
