// Byte-string encoding of row keys for hash-based operators (GROUP BY,
// DISTINCT, hash join) and for vertex-key identity in the graph layer.
// Two rows encode to the same bytes iff their key columns are pairwise
// equal under the column's type (strings compare by interned id, which the
// shared StringPool makes equivalent to string equality).
//
// Hashing of these keys goes through the 64-bit MurmurHash3 finalizer
// (common/hash.hpp) — both the chunked hasher for encoded byte keys
// (RowKeyHash) and the vectorized per-column hash stream (hash_rows) —
// because std-hasher combining diffuses the low-entropy payloads (dense
// interned ids, small integers) poorly and skews bucket occupancy. The
// encoded byte format itself is unchanged: it is what vertex identity,
// snapshots and the BSP wire already rely on.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "storage/table.hpp"

namespace gems::relational {

/// Appends the encoding of `table[row][col]` to `out`.
void append_key_part(const storage::Table& table, storage::RowIndex row,
                     storage::ColumnIndex col, std::string& out);

/// Encodes the given columns of one row.
std::string encode_row_key(const storage::Table& table, storage::RowIndex row,
                           std::span<const storage::ColumnIndex> cols);

/// Hashes an encoded row key: 8-byte little-endian chunks folded through
/// mix64. Heterogeneous so unordered containers can probe with
/// string_view without materializing a std::string.
std::uint64_t hash_encoded_key(std::string_view key) noexcept;

/// Hasher for unordered containers keyed on encoded row keys.
struct RowKeyHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view key) const noexcept {
    return static_cast<std::size_t>(hash_encoded_key(key));
  }
  std::size_t operator()(const std::string& key) const noexcept {
    return static_cast<std::size_t>(
        hash_encoded_key(std::string_view(key)));
  }
};

/// 64-bit key hash of one row without materializing the encoded bytes
/// (the vectorized group-by/join/distinct path). Equal keys (in the
/// encode_row_key sense) hash equal; exact equality is decided by
/// row_keys_equal.
std::uint64_t hash_row_key(const storage::Table& table,
                           storage::RowIndex row,
                           std::span<const storage::ColumnIndex> cols);

/// Bulk form of hash_row_key, column-at-a-time: hashes[i] receives the
/// key hash of row `rows[i]` (or `base + i` when rows == nullptr — the
/// contiguous-window case). When `has_null` is non-null, has_null[i] is
/// set to 1 iff any key column is NULL in that row (join key screening),
/// 0 otherwise.
void hash_row_key_batch(const storage::Table& table, storage::RowIndex base,
                        const storage::RowIndex* rows, std::size_t n,
                        std::span<const storage::ColumnIndex> cols,
                        std::uint64_t* hashes, std::uint8_t* has_null);

/// Normalized key cells of one column over a contiguous row window:
/// bits[i] receives the normalized payload of row base+i (0 when NULL,
/// -0.0 collapsed, strings as interned ids) and nulls[i] the NULL flag.
/// Two cells are equal in the encode_row_key sense iff their (bits,
/// null) pairs match, which lets hash-chain verification compare nine
/// compact bytes per key column instead of re-reading a previously seen
/// row from the source columns (a cache miss per probe once the table
/// outgrows cache).
void key_cells_batch(const storage::Table& table, storage::RowIndex base,
                     std::size_t n, storage::ColumnIndex col,
                     std::uint64_t* bits, std::uint8_t* nulls);

/// Key hashes recomputed from normalized cells (column-major, columns
/// `stride` apart): hashes[i] is exactly hash_row_key_batch's value for
/// the row the cells came from, but produced by a pure arithmetic sweep
/// over the compact cell arrays instead of a second pass over source
/// columns and validity bitmaps.
void hash_key_cells(const std::uint64_t* bits, const std::uint8_t* nulls,
                    std::size_t n, std::size_t ncols, std::size_t stride,
                    std::uint64_t* hashes);

/// Exact key equality, byte-for-byte equivalent to comparing
/// encode_row_key outputs (NULL == NULL, -0.0 collapsed into +0.0,
/// doubles otherwise by bit pattern, strings by interned id) without
/// allocating either encoding.
bool row_keys_equal(const storage::Table& a, storage::RowIndex row_a,
                    std::span<const storage::ColumnIndex> cols_a,
                    const storage::Table& b, storage::RowIndex row_b,
                    std::span<const storage::ColumnIndex> cols_b);

}  // namespace gems::relational
