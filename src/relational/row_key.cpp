#include "relational/row_key.hpp"

#include <cstring>

#include "common/check.hpp"

namespace gems::relational {

using storage::Column;
using storage::TypeKind;

void append_key_part(const storage::Table& table, storage::RowIndex row,
                     storage::ColumnIndex col, std::string& out) {
  const Column& column = table.column(col);
  if (column.is_null(row)) {
    out.push_back('\0');  // null marker
    return;
  }
  out.push_back('\1');
  auto append_raw = [&out](const void* p, std::size_t n) {
    out.append(static_cast<const char*>(p), n);
  };
  switch (column.type().kind) {
    case TypeKind::kBool: {
      out.push_back(column.bool_at(row) ? '\1' : '\0');
      break;
    }
    case TypeKind::kInt64:
    case TypeKind::kDate: {
      const std::int64_t v = column.int64_at(row);
      append_raw(&v, sizeof(v));
      break;
    }
    case TypeKind::kDouble: {
      double v = column.double_at(row);
      if (v == 0.0) v = 0.0;  // collapse -0.0 and +0.0
      append_raw(&v, sizeof(v));
      break;
    }
    case TypeKind::kVarchar: {
      const StringId v = column.string_at(row);
      append_raw(&v, sizeof(v));
      break;
    }
  }
}

std::string encode_row_key(const storage::Table& table, storage::RowIndex row,
                           std::span<const storage::ColumnIndex> cols) {
  std::string out;
  out.reserve(cols.size() * 9);
  for (const auto col : cols) append_key_part(table, row, col, out);
  return out;
}

}  // namespace gems::relational
