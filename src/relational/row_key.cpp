#include "relational/row_key.hpp"

#include <cstring>

#include "common/check.hpp"
#include "common/hash.hpp"

namespace gems::relational {

using storage::Column;
using storage::TypeKind;

void append_key_part(const storage::Table& table, storage::RowIndex row,
                     storage::ColumnIndex col, std::string& out) {
  const Column& column = table.column(col);
  if (column.is_null(row)) {
    out.push_back('\0');  // null marker
    return;
  }
  out.push_back('\1');
  auto append_raw = [&out](const void* p, std::size_t n) {
    out.append(static_cast<const char*>(p), n);
  };
  switch (column.type().kind) {
    case TypeKind::kBool: {
      out.push_back(column.bool_at(row) ? '\1' : '\0');
      break;
    }
    case TypeKind::kInt64:
    case TypeKind::kDate: {
      const std::int64_t v = column.int64_at(row);
      append_raw(&v, sizeof(v));
      break;
    }
    case TypeKind::kDouble: {
      double v = column.double_at(row);
      if (v == 0.0) v = 0.0;  // collapse -0.0 and +0.0
      append_raw(&v, sizeof(v));
      break;
    }
    case TypeKind::kVarchar: {
      const StringId v = column.string_at(row);
      append_raw(&v, sizeof(v));
      break;
    }
  }
}

std::string encode_row_key(const storage::Table& table, storage::RowIndex row,
                           std::span<const storage::ColumnIndex> cols) {
  std::string out;
  out.reserve(cols.size() * 9);
  for (const auto col : cols) append_key_part(table, row, col, out);
  return out;
}

std::uint64_t hash_encoded_key(std::string_view key) noexcept {
  // 8-byte chunks folded through the MurmurHash3 finalizer; the trailing
  // partial chunk is zero-padded. Seeding with the length separates keys
  // that differ only by zero-padding.
  std::uint64_t h = mix64(0x9e3779b97f4a7c15ull ^ key.size());
  std::size_t i = 0;
  for (; i + 8 <= key.size(); i += 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, key.data() + i, sizeof(chunk));
    h = mix64(h ^ chunk);
  }
  if (i < key.size()) {
    std::uint64_t chunk = 0;
    std::memcpy(&chunk, key.data() + i, key.size() - i);
    h = mix64(h ^ chunk);
  }
  return h;
}

namespace {

// Tags mirror the encoded format's null/value marker bytes: a NULL part
// and a value part can never hash from the same inputs.
inline constexpr std::uint64_t kNullPartSeed = 0x9ae16a3b2f90404full;
inline constexpr std::uint64_t kValuePartSeed = 0xc2b2ae3d27d4eb4full;

/// Value payload of one non-null cell as raw 64 bits, normalized the same
/// way append_key_part normalizes (-0.0 collapsed).
inline std::uint64_t key_part_bits(const Column& column,
                                   storage::RowIndex row) {
  switch (column.type().kind) {
    case TypeKind::kBool:
      return column.bool_at(row) ? 1u : 0u;
    case TypeKind::kInt64:
    case TypeKind::kDate:
      return static_cast<std::uint64_t>(column.int64_at(row));
    case TypeKind::kDouble: {
      double v = column.double_at(row);
      if (v == 0.0) v = 0.0;  // collapse -0.0 and +0.0
      std::uint64_t bits;
      std::memcpy(&bits, &v, sizeof(bits));
      return bits;
    }
    case TypeKind::kVarchar:
      return column.string_at(row);
  }
  GEMS_UNREACHABLE("bad column kind");
}

}  // namespace

std::uint64_t hash_row_key(const storage::Table& table,
                           storage::RowIndex row,
                           std::span<const storage::ColumnIndex> cols) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (const auto col : cols) {
    const Column& column = table.column(col);
    if (column.is_null(row)) {
      h = mix64(h ^ kNullPartSeed);
    } else {
      h = mix64(h ^ kValuePartSeed ^ key_part_bits(column, row));
    }
  }
  return h;
}

void hash_row_key_batch(const storage::Table& table, storage::RowIndex base,
                        const storage::RowIndex* rows, std::size_t n,
                        std::span<const storage::ColumnIndex> cols,
                        std::uint64_t* hashes, std::uint8_t* has_null) {
  for (std::size_t i = 0; i < n; ++i) hashes[i] = 0x9e3779b97f4a7c15ull;
  if (has_null != nullptr) {
    for (std::size_t i = 0; i < n; ++i) has_null[i] = 0;
  }
  for (const auto col : cols) {
    const Column& column = table.column(col);
    for (std::size_t i = 0; i < n; ++i) {
      const storage::RowIndex row =
          rows != nullptr ? rows[i]
                          : base + static_cast<storage::RowIndex>(i);
      if (column.is_null(row)) {
        hashes[i] = mix64(hashes[i] ^ kNullPartSeed);
        if (has_null != nullptr) has_null[i] = 1;
      } else {
        hashes[i] =
            mix64(hashes[i] ^ kValuePartSeed ^ key_part_bits(column, row));
      }
    }
  }
}

void key_cells_batch(const storage::Table& table, storage::RowIndex base,
                     std::size_t n, storage::ColumnIndex col,
                     std::uint64_t* bits, std::uint8_t* nulls) {
  const Column& column = table.column(col);
  for (std::size_t i = 0; i < n; ++i) {
    nulls[i] = column.is_null(base + static_cast<storage::RowIndex>(i)) ? 1 : 0;
  }
  // Type dispatch hoisted out of the row loop; payload sweeps read the
  // typed spans directly.
  switch (column.type().kind) {
    case TypeKind::kBool: {
      const auto vals = column.int_span().subspan(base, n);
      for (std::size_t i = 0; i < n; ++i) {
        bits[i] = nulls[i] != 0 ? 0 : (vals[i] != 0 ? 1u : 0u);
      }
      break;
    }
    case TypeKind::kInt64:
    case TypeKind::kDate: {
      const auto vals = column.int_span().subspan(base, n);
      for (std::size_t i = 0; i < n; ++i) {
        bits[i] = nulls[i] != 0 ? 0 : static_cast<std::uint64_t>(vals[i]);
      }
      break;
    }
    case TypeKind::kDouble: {
      const auto vals = column.double_span().subspan(base, n);
      for (std::size_t i = 0; i < n; ++i) {
        double v = vals[i];
        if (v == 0.0) v = 0.0;  // collapse -0.0 and +0.0
        std::uint64_t b;
        std::memcpy(&b, &v, sizeof(b));
        bits[i] = nulls[i] != 0 ? 0 : b;
      }
      break;
    }
    case TypeKind::kVarchar: {
      const auto vals = column.string_span().subspan(base, n);
      for (std::size_t i = 0; i < n; ++i) {
        bits[i] = nulls[i] != 0 ? 0 : vals[i];
      }
      break;
    }
  }
}

void hash_key_cells(const std::uint64_t* bits, const std::uint8_t* nulls,
                    std::size_t n, std::size_t ncols, std::size_t stride,
                    std::uint64_t* hashes) {
  for (std::size_t i = 0; i < n; ++i) hashes[i] = 0x9e3779b97f4a7c15ull;
  for (std::size_t c = 0; c < ncols; ++c) {
    const std::uint64_t* b = bits + c * stride;
    const std::uint8_t* nl = nulls + c * stride;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t part =
          nl[i] != 0 ? kNullPartSeed : (kValuePartSeed ^ b[i]);
      hashes[i] = mix64(hashes[i] ^ part);
    }
  }
}

bool row_keys_equal(const storage::Table& a, storage::RowIndex row_a,
                    std::span<const storage::ColumnIndex> cols_a,
                    const storage::Table& b, storage::RowIndex row_b,
                    std::span<const storage::ColumnIndex> cols_b) {
  GEMS_DCHECK(cols_a.size() == cols_b.size());
  for (std::size_t i = 0; i < cols_a.size(); ++i) {
    const Column& ca = a.column(cols_a[i]);
    const Column& cb = b.column(cols_b[i]);
    const bool na = ca.is_null(row_a);
    const bool nb = cb.is_null(row_b);
    if (na != nb) return false;
    if (na) continue;
    // Bit comparison of the normalized payload matches the encoded-bytes
    // comparison exactly (incl. NaN == same-bit-pattern NaN, which `==`
    // on doubles would get wrong).
    if (key_part_bits(ca, row_a) != key_part_bits(cb, row_b)) return false;
  }
  return true;
}

}  // namespace gems::relational
