#include "relational/operators.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/check.hpp"
#include "relational/eval.hpp"
#include "relational/row_key.hpp"

namespace gems::relational {

using storage::Column;
using storage::ColumnDef;
using storage::DataType;
using storage::Schema;
using storage::TypeKind;
using storage::Value;

std::vector<RowIndex> filter_rows(const Table& table,
                                  const BoundExpr& predicate) {
  std::vector<RowIndex> out;
  const RowCursor cursor_template{&table, 0};
  RowCursor cursor = cursor_template;
  const std::span<const RowCursor> sources(&cursor, 1);
  const StringPool& pool = table.pool();
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    cursor.row = static_cast<RowIndex>(r);
    if (eval_predicate(predicate, sources, pool)) {
      out.push_back(cursor.row);
    }
  }
  return out;
}

std::vector<RowIndex> filter_rows_parallel(const Table& table,
                                           const BoundExpr& predicate,
                                           ThreadPool& pool) {
  const std::size_t n = table.num_rows();
  const std::size_t num_chunks = std::min<std::size_t>(
      std::max<std::size_t>(1, pool.size() * 4), std::max<std::size_t>(1, n));
  const std::size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<std::vector<RowIndex>> partials(num_chunks);

  pool.parallel_for(num_chunks, [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    RowCursor cursor{&table, 0};
    const std::span<const RowCursor> sources(&cursor, 1);
    const StringPool& string_pool = table.pool();
    for (std::size_t r = begin; r < end; ++r) {
      cursor.row = static_cast<RowIndex>(r);
      if (eval_predicate(predicate, sources, string_pool)) {
        partials[c].push_back(cursor.row);
      }
    }
  });

  std::vector<RowIndex> out;
  std::size_t total = 0;
  for (const auto& p : partials) total += p.size();
  out.reserve(total);
  for (const auto& p : partials) out.insert(out.end(), p.begin(), p.end());
  return out;
}

TablePtr materialize(const Table& src, std::span<const RowIndex> rows,
                     std::span<const ColumnIndex> cols, std::string name,
                     const std::vector<std::string>* rename) {
  GEMS_CHECK(rename == nullptr || rename->size() == cols.size());
  std::vector<ColumnDef> defs;
  defs.reserve(cols.size());
  for (std::size_t i = 0; i < cols.size(); ++i) {
    const ColumnDef& d = src.schema().column(cols[i]);
    defs.push_back({rename ? (*rename)[i] : d.name, d.type});
  }
  auto out = std::make_shared<Table>(std::move(name), Schema(std::move(defs)),
                                     src.pool());
  for (const RowIndex r : rows) {
    for (std::size_t c = 0; c < cols.size(); ++c) {
      out->column_mut(static_cast<ColumnIndex>(c))
          .append_from(src.column(cols[c]), r);
    }
    out->bump_row_count();
  }
  return out;
}

TablePtr project(const Table& src, std::span<const RowIndex> rows,
                 std::span<const OutputColumn> outputs, std::string name) {
  std::vector<ColumnDef> defs;
  defs.reserve(outputs.size());
  for (const auto& o : outputs) defs.push_back({o.name, o.expr->type});
  auto out = std::make_shared<Table>(std::move(name), Schema(std::move(defs)),
                                     src.pool());
  RowCursor cursor{&src, 0};
  const std::span<const RowCursor> sources(&cursor, 1);
  const StringPool& pool = src.pool();
  for (const RowIndex r : rows) {
    cursor.row = r;
    for (std::size_t c = 0; c < outputs.size(); ++c) {
      const Cell cell = eval_cell(*outputs[c].expr, sources, pool);
      append_cell(out->column_mut(static_cast<ColumnIndex>(c)), cell);

    }
    out->bump_row_count();
  }
  return out;
}

Result<std::vector<std::pair<RowIndex, RowIndex>>> hash_join_pairs(
    const Table& left, std::span<const ColumnIndex> left_keys,
    const Table& right, std::span<const ColumnIndex> right_keys) {
  if (left_keys.size() != right_keys.size() || left_keys.empty()) {
    return invalid_argument("join key arity mismatch");
  }
  for (std::size_t i = 0; i < left_keys.size(); ++i) {
    const DataType& lt = left.schema().column(left_keys[i]).type;
    const DataType& rt = right.schema().column(right_keys[i]).type;
    // Int64/Double cross-type equi-joins would need promoted encoding;
    // the type checker upstream only admits identical-kind join keys.
    if (lt.kind != rt.kind) {
      return type_error("join keys '" +
                        left.schema().column(left_keys[i]).name + "' (" +
                        lt.to_string() + ") and '" +
                        right.schema().column(right_keys[i]).name + "' (" +
                        rt.to_string() + ") have different types");
    }
  }

  // Build on the smaller side.
  const bool build_left = left.num_rows() <= right.num_rows();
  const Table& build = build_left ? left : right;
  const Table& probe = build_left ? right : left;
  const std::span<const ColumnIndex> build_keys =
      build_left ? left_keys : right_keys;
  const std::span<const ColumnIndex> probe_keys =
      build_left ? right_keys : left_keys;

  auto has_null_key = [](const Table& t, RowIndex r,
                         std::span<const ColumnIndex> keys) {
    for (const auto k : keys) {
      if (t.column(k).is_null(r)) return true;
    }
    return false;
  };

  std::unordered_map<std::string, std::vector<RowIndex>> index;
  index.reserve(build.num_rows());
  for (std::size_t r = 0; r < build.num_rows(); ++r) {
    const RowIndex row = static_cast<RowIndex>(r);
    if (has_null_key(build, row, build_keys)) continue;
    index[encode_row_key(build, row, build_keys)].push_back(row);
  }

  std::vector<std::pair<RowIndex, RowIndex>> out;
  std::string key;
  for (std::size_t r = 0; r < probe.num_rows(); ++r) {
    const RowIndex row = static_cast<RowIndex>(r);
    if (has_null_key(probe, row, probe_keys)) continue;
    key.clear();
    for (const auto k : probe_keys) append_key_part(probe, row, k, key);
    auto it = index.find(key);
    if (it == index.end()) continue;
    for (const RowIndex b : it->second) {
      out.emplace_back(build_left ? b : row, build_left ? row : b);
    }
  }
  // Deterministic output order regardless of build-side choice.
  std::sort(out.begin(), out.end());
  return out;
}

Result<TablePtr> hash_join(const Table& left,
                           std::span<const ColumnIndex> left_keys,
                           const Table& right,
                           std::span<const ColumnIndex> right_keys,
                           std::span<const JoinOutput> outputs,
                           std::string name) {
  GEMS_ASSIGN_OR_RETURN(auto pairs,
                        hash_join_pairs(left, left_keys, right, right_keys));
  std::vector<ColumnDef> defs;
  defs.reserve(outputs.size());
  for (const auto& o : outputs) {
    const Table& t = o.side == JoinOutput::kLeft ? left : right;
    defs.push_back({o.name, t.schema().column(o.column).type});
  }
  auto out = std::make_shared<Table>(std::move(name), Schema(std::move(defs)),
                                     left.pool());
  for (const auto& [l, r] : pairs) {
    for (std::size_t c = 0; c < outputs.size(); ++c) {
      const auto& o = outputs[c];
      const Table& t = o.side == JoinOutput::kLeft ? left : right;
      const RowIndex row = o.side == JoinOutput::kLeft ? l : r;
      out->column_mut(static_cast<ColumnIndex>(c))
          .append_from(t.column(o.column), row);
    }
    out->bump_row_count();
  }
  return out;
}

std::string_view agg_kind_name(AggKind kind) noexcept {
  switch (kind) {
    case AggKind::kCountStar:
      return "count(*)";
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
  }
  return "?";
}

namespace {

struct AggState {
  std::int64_t count = 0;
  std::int64_t isum = 0;
  double dsum = 0;
  bool has_value = false;
  Value min;
  Value max;
};

Result<DataType> agg_output_type(const AggSpec& spec, const Table& src) {
  switch (spec.kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return DataType::int64();
    case AggKind::kSum: {
      const DataType& in = src.schema().column(spec.input).type;
      if (!in.is_numeric()) {
        return type_error("sum() requires a numeric column, got " +
                          in.to_string());
      }
      return in;
    }
    case AggKind::kAvg: {
      const DataType& in = src.schema().column(spec.input).type;
      if (!in.is_numeric()) {
        return type_error("avg() requires a numeric column, got " +
                          in.to_string());
      }
      return DataType::float64();
    }
    case AggKind::kMin:
    case AggKind::kMax:
      return src.schema().column(spec.input).type;
  }
  GEMS_UNREACHABLE("bad agg kind");
}

}  // namespace

Result<TablePtr> group_by(const Table& src, std::span<const ColumnIndex> keys,
                          std::span<const AggSpec> aggs, std::string name) {
  std::vector<ColumnDef> defs;
  defs.reserve(keys.size() + aggs.size());
  for (const auto k : keys) defs.push_back(src.schema().column(k));
  for (const auto& a : aggs) {
    GEMS_ASSIGN_OR_RETURN(DataType type, agg_output_type(a, src));
    defs.push_back({a.output_name, type});
  }
  GEMS_ASSIGN_OR_RETURN(Schema schema, Schema::create(std::move(defs)));
  auto out = std::make_shared<Table>(std::move(name), std::move(schema),
                                     src.pool());

  // group key -> (representative row, per-agg state), first-seen order.
  std::unordered_map<std::string, std::size_t> group_index;
  std::vector<RowIndex> representatives;
  std::vector<std::vector<AggState>> states;

  for (std::size_t r = 0; r < src.num_rows(); ++r) {
    const RowIndex row = static_cast<RowIndex>(r);
    const std::string key = encode_row_key(src, row, keys);
    auto [it, inserted] = group_index.emplace(key, representatives.size());
    if (inserted) {
      representatives.push_back(row);
      states.emplace_back(aggs.size());
    }
    std::vector<AggState>& group = states[it->second];
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      const AggSpec& spec = aggs[a];
      AggState& st = group[a];
      if (spec.kind == AggKind::kCountStar) {
        ++st.count;
        continue;
      }
      const Column& col = src.column(spec.input);
      if (col.is_null(row)) continue;
      switch (spec.kind) {
        case AggKind::kCount:
          ++st.count;
          break;
        case AggKind::kSum:
        case AggKind::kAvg:
          ++st.count;
          if (col.type().kind == TypeKind::kDouble) {
            st.dsum += col.double_at(row);
          } else {
            st.isum += col.int64_at(row);
            st.dsum += static_cast<double>(col.int64_at(row));
          }
          break;
        case AggKind::kMin:
        case AggKind::kMax: {
          const Value v = src.value_at(row, spec.input);
          if (!st.has_value) {
            st.min = v;
            st.max = v;
            st.has_value = true;
          } else {
            if (v.compare(st.min) < 0) st.min = v;
            if (v.compare(st.max) > 0) st.max = v;
          }
          break;
        }
        default:
          GEMS_UNREACHABLE("handled above");
      }
    }
  }

  // SQL scalar aggregation: no keys -> exactly one row even on empty input.
  if (keys.empty() && representatives.empty()) {
    representatives.push_back(0);
    states.emplace_back(aggs.size());
  }

  StringPool& pool = src.pool();
  for (std::size_t g = 0; g < representatives.size(); ++g) {
    std::vector<Value> row_values;
    row_values.reserve(keys.size() + aggs.size());
    for (const auto k : keys) {
      row_values.push_back(src.value_at(representatives[g], k));
    }
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      const AggSpec& spec = aggs[a];
      const AggState& st = states[g][a];
      switch (spec.kind) {
        case AggKind::kCountStar:
        case AggKind::kCount:
          row_values.push_back(Value::int64(st.count));
          break;
        case AggKind::kSum:
          if (st.count == 0) {
            row_values.push_back(Value::null());
          } else if (src.column(spec.input).type().kind == TypeKind::kDouble) {
            row_values.push_back(Value::float64(st.dsum));
          } else {
            row_values.push_back(Value::int64(st.isum));
          }
          break;
        case AggKind::kAvg:
          row_values.push_back(st.count == 0
                                   ? Value::null()
                                   : Value::float64(
                                         st.dsum /
                                         static_cast<double>(st.count)));
          break;
        case AggKind::kMin:
          row_values.push_back(st.has_value ? st.min : Value::null());
          break;
        case AggKind::kMax:
          row_values.push_back(st.has_value ? st.max : Value::null());
          break;
      }
    }
    (void)pool;
    out->append_row_unchecked(row_values);
  }
  return out;
}

int compare_table_cells(const Table& table, RowIndex a, RowIndex b,
                        ColumnIndex col) {
  const Column& column = table.column(col);
  const bool a_null = column.is_null(a);
  const bool b_null = column.is_null(b);
  if (a_null || b_null) {
    if (a_null && b_null) return 0;
    return a_null ? -1 : 1;
  }
  auto cmp3 = [](auto x, auto y) { return x < y ? -1 : (x > y ? 1 : 0); };
  switch (column.type().kind) {
    case TypeKind::kBool:
      return cmp3(column.bool_at(a) ? 1 : 0, column.bool_at(b) ? 1 : 0);
    case TypeKind::kInt64:
    case TypeKind::kDate:
      return cmp3(column.int64_at(a), column.int64_at(b));
    case TypeKind::kDouble:
      return cmp3(column.double_at(a), column.double_at(b));
    case TypeKind::kVarchar: {
      const StringId x = column.string_at(a);
      const StringId y = column.string_at(b);
      if (x == y) return 0;
      const StringPool& pool = table.pool();
      return pool.view(x).compare(pool.view(y)) < 0 ? -1 : 1;
    }
  }
  GEMS_UNREACHABLE("bad column kind");
}

std::vector<RowIndex> sorted_indices(const Table& src,
                                     std::span<const SortKey> keys) {
  std::vector<RowIndex> order(src.num_rows());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<RowIndex>(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](RowIndex a, RowIndex b) {
                     for (const auto& k : keys) {
                       const int c = compare_table_cells(src, a, b, k.column);
                       if (c != 0) return k.descending ? c > 0 : c < 0;
                     }
                     return false;
                   });
  return order;
}

namespace {

std::vector<ColumnIndex> all_columns(const Table& t) {
  std::vector<ColumnIndex> cols(t.num_columns());
  for (std::size_t i = 0; i < cols.size(); ++i) {
    cols[i] = static_cast<ColumnIndex>(i);
  }
  return cols;
}

}  // namespace

TablePtr order_by(const Table& src, std::span<const SortKey> keys,
                  std::string name) {
  const auto order = sorted_indices(src, keys);
  return materialize(src, order, all_columns(src), std::move(name));
}

TablePtr distinct(const Table& src, std::string name) {
  const auto cols = all_columns(src);
  std::unordered_map<std::string, bool> seen;
  std::vector<RowIndex> keep;
  for (std::size_t r = 0; r < src.num_rows(); ++r) {
    const RowIndex row = static_cast<RowIndex>(r);
    if (seen.emplace(encode_row_key(src, row, cols), true).second) {
      keep.push_back(row);
    }
  }
  return materialize(src, keep, cols, std::move(name));
}

TablePtr head(const Table& src, std::size_t n, std::string name) {
  std::vector<RowIndex> rows;
  const std::size_t limit = std::min(n, src.num_rows());
  rows.reserve(limit);
  for (std::size_t r = 0; r < limit; ++r) {
    rows.push_back(static_cast<RowIndex>(r));
  }
  return materialize(src, rows, all_columns(src), std::move(name));
}

}  // namespace gems::relational
