#include "relational/operators.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_map>

#include "common/check.hpp"
#include "relational/eval.hpp"
#include "relational/row_key.hpp"
#include "relational/vector_eval.hpp"

namespace gems::relational {

using storage::Column;
using storage::ColumnDef;
using storage::DataType;
using storage::Schema;
using storage::TypeKind;
using storage::Value;

namespace {

inline constexpr std::uint32_t kChainEnd =
    std::numeric_limits<std::uint32_t>::max();

/// Flat open-addressing map from a 64-bit key hash to the head of a
/// chain (linear probing, power-of-two capacity, no deletion). The
/// vectorized group-by/join/distinct paths do one find-or-insert per
/// input row; unordered_map's node allocations and pointer chases
/// dominate at that rate. Chains carry hash collisions AND equal keys —
/// callers verify exact key equality per chain entry, so two distinct
/// keys sharing a hash never merge.
class HashHeads {
 public:
  explicit HashHeads(std::size_t expected) { reset(expected); }

  /// True when `entries` chain entries would push the load factor past
  /// 1/2 — callers that discover entries as they go (group-by, distinct
  /// — entry count is the number of DISTINCT keys, far below the row
  /// count) start small and rebuild on demand, keeping the slot array
  /// sized to live entries instead of input rows.
  bool needs_capacity(std::size_t entries) const {
    return entries * 2 > slots_.size();
  }

  /// Rebuilds with room for `entries`, reinserting entry i under
  /// entry_hash[i] and relinking `next` (the callers' chain array) in
  /// place. Chain order within a slot may change; chains only ever
  /// carry distinct keys plus hash collisions, so order is never
  /// observable in results.
  void rebuild(std::size_t entries,
               std::span<const std::uint64_t> entry_hash,
               std::vector<std::uint32_t>& next) {
    reset(entries * 2);  // headroom: next rebuild at 2x current entries
    for (std::size_t g = 0; g < entry_hash.size(); ++g) {
      std::uint32_t& head = slot(entry_hash[g]);
      next[g] = head;
      head = static_cast<std::uint32_t>(g);
    }
  }

  /// The chain-head slot for `hash` (kChainEnd when new). Writable: the
  /// caller pushes the new chain entry and stores it back.
  std::uint32_t& slot(std::uint64_t hash) {
    std::size_t i = hash & mask_;
    while (slots_[i].head != kChainEnd && slots_[i].hash != hash) {
      i = (i + 1) & mask_;
    }
    slots_[i].hash = hash;
    return slots_[i].head;
  }

  /// Read-only probe: the chain head for `hash`, kChainEnd if absent.
  std::uint32_t find(std::uint64_t hash) const {
    std::size_t i = hash & mask_;
    while (slots_[i].head != kChainEnd && slots_[i].hash != hash) {
      i = (i + 1) & mask_;
    }
    return slots_[i].head;
  }

  /// Hints the slot line for `hash` into cache. The batch loops run one
  /// prefetch sweep over the just-hashed batch before probing, so the
  /// (random) slot loads overlap instead of serializing a miss per row.
  void prefetch(std::uint64_t hash) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&slots_[hash & mask_]);
#endif
  }

 private:
  void reset(std::size_t expected) {
    std::size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    mask_ = cap - 1;
    slots_.assign(cap, Slot{0, kChainEnd});
  }

  // Hash and head interleaved: one cache line per probe, not two.
  struct Slot {
    std::uint64_t hash;
    std::uint32_t head;
  };
  std::size_t mask_ = 0;
  std::vector<Slot> slots_;
};

/// Open-addressing map from a SINGLE normalized key cell to an entry id
/// (the one-key-column fast path of group-by/distinct). The cell is
/// narrow enough to live in the slot itself, so a probe resolves exact
/// key equality in the slot line — one random load per input row, no
/// chain indirection at all. Empty slots carry entry == kChainEnd.
class KeyCellMap {
 public:
  explicit KeyCellMap(std::size_t expected) { reset(expected); }

  struct Slot {
    std::uint64_t bits;
    std::uint32_t entry;
    std::uint8_t null;
  };

  /// The slot whose cell equals (bits, null), or the empty slot where
  /// that cell belongs. On a miss the caller registers the new entry id
  /// by assigning the whole slot.
  Slot& slot(std::uint64_t hash, std::uint64_t bits, std::uint8_t null) {
    std::size_t i = hash & mask_;
    while (slots_[i].entry != kChainEnd &&
           (slots_[i].bits != bits || slots_[i].null != null)) {
      i = (i + 1) & mask_;
    }
    return slots_[i];
  }

  bool needs_capacity(std::size_t entries) const {
    return entries * 2 > slots_.size();
  }

  /// Rebuilds with room for `entries`, reinserting entry i as the cell
  /// (bits[i], nulls[i]) with hash hashes[i].
  void rebuild(std::size_t entries, std::span<const std::uint64_t> bits,
               std::span<const std::uint8_t> nulls,
               std::span<const std::uint64_t> hashes) {
    reset(entries * 2);
    for (std::size_t e = 0; e < hashes.size(); ++e) {
      slot(hashes[e], bits[e], nulls[e]) =
          Slot{bits[e], static_cast<std::uint32_t>(e), nulls[e]};
    }
  }

  void prefetch(std::uint64_t hash) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&slots_[hash & mask_]);
#endif
  }

 private:
  void reset(std::size_t expected) {
    std::size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    mask_ = cap - 1;
    slots_.assign(cap, Slot{0, kChainEnd, 0});
  }

  std::size_t mask_ = 0;
  std::vector<Slot> slots_;
};

/// Filters [begin, end) of `table`, appending accepting rows to `out` in
/// ascending order. Batched when `kernel` is set, row-at-a-time otherwise.
void filter_window(const Table& table, const BoundExpr& predicate,
                   const VectorExpr* kernel, EvalScratch* scratch,
                   std::size_t begin, std::size_t end, std::size_t batch_rows,
                   std::vector<RowIndex>& out) {
  if (kernel != nullptr) {
    for (std::size_t b = begin; b < end; b += batch_rows) {
      const RowBatch batch{&table, static_cast<RowIndex>(b), nullptr,
                           std::min(batch_rows, end - b)};
      filter_batch(*kernel, batch, *scratch, out);
    }
    return;
  }
  RowCursor cursor{&table, 0};
  const std::span<const RowCursor> sources(&cursor, 1);
  const StringPool& pool = table.pool();
  for (std::size_t r = begin; r < end; ++r) {
    cursor.row = static_cast<RowIndex>(r);
    if (eval_predicate(predicate, sources, pool)) {
      out.push_back(cursor.row);
    }
  }
}

}  // namespace

std::vector<RowIndex> filter_rows(const Table& table,
                                  const BoundExpr& predicate,
                                  const BatchPolicy& policy) {
  VectorExprPtr kernel;
  if (policy.vectorized()) {
    kernel = VectorExpr::compile(predicate, 0, table.pool());
  }
  std::vector<RowIndex> out;
  if (kernel != nullptr) {
    EvalScratch scratch = kernel->make_scratch();
    filter_window(table, predicate, kernel.get(), &scratch, 0,
                  table.num_rows(), policy.clamped_rows(), out);
  } else {
    filter_window(table, predicate, nullptr, nullptr, 0, table.num_rows(), 0,
                  out);
  }
  return out;
}

std::vector<RowIndex> filter_rows_parallel(const Table& table,
                                           const BoundExpr& predicate,
                                           ThreadPool& pool,
                                           const BatchPolicy& policy) {
  const std::size_t n = table.num_rows();
  const std::size_t num_chunks = std::min<std::size_t>(
      std::max<std::size_t>(1, pool.size() * 4), std::max<std::size_t>(1, n));
  const std::size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<std::vector<RowIndex>> partials(num_chunks);

  // One kernel compilation shared by all workers; scratches are per-chunk
  // (kernels are immutable after compile, scratch is the only mutable
  // state).
  VectorExprPtr kernel;
  if (policy.vectorized()) {
    kernel = VectorExpr::compile(predicate, 0, table.pool());
  }
  const std::size_t batch_rows = policy.clamped_rows();

  pool.parallel_for(num_chunks, [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (kernel != nullptr) {
      EvalScratch scratch = kernel->make_scratch();
      filter_window(table, predicate, kernel.get(), &scratch, begin, end,
                    batch_rows, partials[c]);
    } else {
      filter_window(table, predicate, nullptr, nullptr, begin, end, 0,
                    partials[c]);
    }
  });

  std::vector<RowIndex> out;
  std::size_t total = 0;
  for (const auto& p : partials) total += p.size();
  out.reserve(total);
  for (const auto& p : partials) out.insert(out.end(), p.begin(), p.end());
  return out;
}

TablePtr materialize(const Table& src, std::span<const RowIndex> rows,
                     std::span<const ColumnIndex> cols, std::string name,
                     const std::vector<std::string>* rename) {
  GEMS_CHECK(rename == nullptr || rename->size() == cols.size());
  std::vector<ColumnDef> defs;
  defs.reserve(cols.size());
  for (std::size_t i = 0; i < cols.size(); ++i) {
    const ColumnDef& d = src.schema().column(cols[i]);
    defs.push_back({rename ? (*rename)[i] : d.name, d.type});
  }
  auto out = std::make_shared<Table>(std::move(name), Schema(std::move(defs)),
                                     src.pool());
  // Column-at-a-time: one source column stays hot per pass instead of
  // cycling the whole row's columns through cache for every output row.
  for (std::size_t c = 0; c < cols.size(); ++c) {
    Column& dst = out->column_mut(static_cast<ColumnIndex>(c));
    const Column& s = src.column(cols[c]);
    for (const RowIndex r : rows) dst.append_from(s, r);
  }
  out->bump_rows(rows.size());
  return out;
}

TablePtr project(const Table& src, std::span<const RowIndex> rows,
                 std::span<const OutputColumn> outputs, std::string name,
                 const BatchPolicy& policy) {
  std::vector<ColumnDef> defs;
  defs.reserve(outputs.size());
  for (const auto& o : outputs) defs.push_back({o.name, o.expr->type});
  auto out = std::make_shared<Table>(std::move(name), Schema(std::move(defs)),
                                     src.pool());

  if (policy.vectorized()) {
    std::vector<VectorExprPtr> kernels;
    kernels.reserve(outputs.size());
    bool all_compiled = true;
    for (const auto& o : outputs) {
      VectorExprPtr k = VectorExpr::compile(*o.expr, 0, src.pool());
      if (k == nullptr) {
        all_compiled = false;
        break;
      }
      kernels.push_back(std::move(k));
    }
    if (all_compiled) {
      std::vector<EvalScratch> scratches;
      scratches.reserve(kernels.size());
      for (const auto& k : kernels) scratches.push_back(k->make_scratch());
      const std::size_t batch_rows = policy.clamped_rows();
      for (std::size_t off = 0; off < rows.size(); off += batch_rows) {
        const std::size_t n = std::min(batch_rows, rows.size() - off);
        const RowBatch batch{&src, 0, rows.data() + off, n};
        for (std::size_t c = 0; c < kernels.size(); ++c) {
          const ValueVector v = kernels[c]->eval(batch, scratches[c]);
          append_vector(out->column_mut(static_cast<ColumnIndex>(c)), v, n);
        }
        out->bump_rows(n);
      }
      return out;
    }
  }

  RowCursor cursor{&src, 0};
  const std::span<const RowCursor> sources(&cursor, 1);
  const StringPool& pool = src.pool();
  for (const RowIndex r : rows) {
    cursor.row = r;
    for (std::size_t c = 0; c < outputs.size(); ++c) {
      const Cell cell = eval_cell(*outputs[c].expr, sources, pool);
      append_cell(out->column_mut(static_cast<ColumnIndex>(c)), cell);
    }
    out->bump_row_count();
  }
  return out;
}

Result<std::vector<std::pair<RowIndex, RowIndex>>> hash_join_pairs(
    const Table& left, std::span<const ColumnIndex> left_keys,
    const Table& right, std::span<const ColumnIndex> right_keys,
    const BatchPolicy& policy) {
  if (left_keys.size() != right_keys.size() || left_keys.empty()) {
    return invalid_argument("join key arity mismatch");
  }
  for (std::size_t i = 0; i < left_keys.size(); ++i) {
    const DataType& lt = left.schema().column(left_keys[i]).type;
    const DataType& rt = right.schema().column(right_keys[i]).type;
    // Int64/Double cross-type equi-joins would need promoted encoding;
    // the type checker upstream only admits identical-kind join keys.
    if (lt.kind != rt.kind) {
      return type_error("join keys '" +
                        left.schema().column(left_keys[i]).name + "' (" +
                        lt.to_string() + ") and '" +
                        right.schema().column(right_keys[i]).name + "' (" +
                        rt.to_string() + ") have different types");
    }
  }

  // Build on the smaller side.
  const bool build_left = left.num_rows() <= right.num_rows();
  const Table& build = build_left ? left : right;
  const Table& probe = build_left ? right : left;
  const std::span<const ColumnIndex> build_keys =
      build_left ? left_keys : right_keys;
  const std::span<const ColumnIndex> probe_keys =
      build_left ? right_keys : left_keys;

  std::vector<std::pair<RowIndex, RowIndex>> out;

  if (policy.vectorized()) {
    // Hash → chain table over raw 64-bit key hashes, filled and probed in
    // batches with column-at-a-time bulk hashing (no per-row key-string
    // allocations). Chains carry hash collisions AND equal keys; probes
    // verify exact key equality per candidate. Pair order is normalized
    // by the final sort, so chain order never shows in results.
    const std::size_t batch_rows = policy.clamped_rows();
    std::vector<std::uint64_t> hashes(batch_rows);
    std::vector<std::uint8_t> nulls(batch_rows);

    const std::size_t bn = build.num_rows();
    HashHeads heads(bn);
    std::vector<std::uint32_t> next(bn, kChainEnd);
    for (std::size_t base = 0; base < bn; base += batch_rows) {
      const std::size_t n = std::min(batch_rows, bn - base);
      hash_row_key_batch(build, static_cast<RowIndex>(base), nullptr, n,
                         build_keys, hashes.data(), nulls.data());
      for (std::size_t i = 0; i < n; ++i) heads.prefetch(hashes[i]);
      for (std::size_t i = 0; i < n; ++i) {
        if (nulls[i] != 0) continue;  // SQL: NULL keys never match
        const RowIndex row = static_cast<RowIndex>(base + i);
        std::uint32_t& head = heads.slot(hashes[i]);
        next[row] = head;  // LIFO chain; kChainEnd when first
        head = row;
      }
    }

    const std::size_t pn = probe.num_rows();
    for (std::size_t base = 0; base < pn; base += batch_rows) {
      const std::size_t n = std::min(batch_rows, pn - base);
      hash_row_key_batch(probe, static_cast<RowIndex>(base), nullptr, n,
                         probe_keys, hashes.data(), nulls.data());
      for (std::size_t i = 0; i < n; ++i) heads.prefetch(hashes[i]);
      for (std::size_t i = 0; i < n; ++i) {
        if (nulls[i] != 0) continue;
        const RowIndex row = static_cast<RowIndex>(base + i);
        for (std::uint32_t b = heads.find(hashes[i]); b != kChainEnd;
             b = next[b]) {
          if (!row_keys_equal(build, b, build_keys, probe, row, probe_keys)) {
            continue;
          }
          out.emplace_back(build_left ? b : row, build_left ? row : b);
        }
      }
    }
  } else {
    auto has_null_key = [](const Table& t, RowIndex r,
                           std::span<const ColumnIndex> keys) {
      for (const auto k : keys) {
        if (t.column(k).is_null(r)) return true;
      }
      return false;
    };

    std::unordered_map<std::string, std::vector<RowIndex>, RowKeyHash,
                       std::equal_to<>>
        index;
    index.reserve(build.num_rows());
    for (std::size_t r = 0; r < build.num_rows(); ++r) {
      const RowIndex row = static_cast<RowIndex>(r);
      if (has_null_key(build, row, build_keys)) continue;
      index[encode_row_key(build, row, build_keys)].push_back(row);
    }

    std::string key;
    for (std::size_t r = 0; r < probe.num_rows(); ++r) {
      const RowIndex row = static_cast<RowIndex>(r);
      if (has_null_key(probe, row, probe_keys)) continue;
      key.clear();
      for (const auto k : probe_keys) append_key_part(probe, row, k, key);
      auto it = index.find(key);
      if (it == index.end()) continue;
      for (const RowIndex b : it->second) {
        out.emplace_back(build_left ? b : row, build_left ? row : b);
      }
    }
  }

  // Deterministic output order regardless of build-side choice (and, in
  // the vectorized path, of hash/chain order).
  std::sort(out.begin(), out.end());
  return out;
}

Result<TablePtr> hash_join(const Table& left,
                           std::span<const ColumnIndex> left_keys,
                           const Table& right,
                           std::span<const ColumnIndex> right_keys,
                           std::span<const JoinOutput> outputs,
                           std::string name, const BatchPolicy& policy) {
  GEMS_ASSIGN_OR_RETURN(
      auto pairs, hash_join_pairs(left, left_keys, right, right_keys, policy));
  std::vector<ColumnDef> defs;
  defs.reserve(outputs.size());
  for (const auto& o : outputs) {
    const Table& t = o.side == JoinOutput::kLeft ? left : right;
    defs.push_back({o.name, t.schema().column(o.column).type});
  }
  auto out = std::make_shared<Table>(std::move(name), Schema(std::move(defs)),
                                     left.pool());
  std::vector<RowIndex> left_rows, right_rows;
  left_rows.reserve(pairs.size());
  right_rows.reserve(pairs.size());
  for (const auto& [l, r] : pairs) {
    left_rows.push_back(l);
    right_rows.push_back(r);
  }
  for (std::size_t c = 0; c < outputs.size(); ++c) {
    const auto& o = outputs[c];
    const Table& t = o.side == JoinOutput::kLeft ? left : right;
    const auto& rows = o.side == JoinOutput::kLeft ? left_rows : right_rows;
    out->column_mut(static_cast<ColumnIndex>(c))
        .append_gather(t.column(o.column), rows.data(), pairs.size());
  }
  out->bump_rows(pairs.size());
  return out;
}

std::string_view agg_kind_name(AggKind kind) noexcept {
  switch (kind) {
    case AggKind::kCountStar:
      return "count(*)";
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
  }
  return "?";
}

namespace {

// Per-group accumulator state, split by aggregate kind so each
// aggregate's array holds only what it reads. Accumulation does one
// random `state[group_of_row[r]]` access per row; with many groups the
// array's footprint decides whether that access hits cache (a boxed
// any-aggregate state with two 48-byte Values is 128 bytes per group —
// 5x the footprint of SumState, all of it dragged through cache even
// for a count(*)).
struct SumState {
  std::int64_t count = 0;
  std::int64_t isum = 0;
  double dsum = 0;
};
// Sum/avg over double columns never reads isum; 16 bytes packs four
// groups per cache line instead of landing 24-byte states across line
// boundaries.
struct DoubleSumState {
  std::int64_t count = 0;
  double dsum = 0;
};
struct MinMaxState {
  bool has_value = false;
  Value min;
  Value max;
};

Result<DataType> agg_output_type(const AggSpec& spec, const Table& src) {
  switch (spec.kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return DataType::int64();
    case AggKind::kSum: {
      const DataType& in = src.schema().column(spec.input).type;
      if (!in.is_numeric()) {
        return type_error("sum() requires a numeric column, got " +
                          in.to_string());
      }
      return in;
    }
    case AggKind::kAvg: {
      const DataType& in = src.schema().column(spec.input).type;
      if (!in.is_numeric()) {
        return type_error("avg() requires a numeric column, got " +
                          in.to_string());
      }
      return DataType::float64();
    }
    case AggKind::kMin:
    case AggKind::kMax:
      return src.schema().column(spec.input).type;
  }
  GEMS_UNREACHABLE("bad agg kind");
}

/// Assigns every row its group id (first-seen order) via encoded string
/// keys — the row-engine oracle path.
void assign_groups_rowkey(const Table& src, std::span<const ColumnIndex> keys,
                          std::uint32_t* group_of_row,
                          std::vector<RowIndex>& representatives) {
  std::unordered_map<std::string, std::uint32_t, RowKeyHash, std::equal_to<>>
      group_index;
  for (std::size_t r = 0; r < src.num_rows(); ++r) {
    const RowIndex row = static_cast<RowIndex>(r);
    const auto [it, inserted] = group_index.emplace(
        encode_row_key(src, row, keys),
        static_cast<std::uint32_t>(representatives.size()));
    if (inserted) representatives.push_back(row);
    group_of_row[r] = it->second;
  }
}

/// Same group assignment through batched 64-bit key hashing and hash →
/// group chains; exact key equality is verified against each candidate
/// group's representative, so hash collisions cannot merge groups. Group
/// ids come out in first-seen row order, identical to the rowkey path.
/// First-seen dedup over `keys`, shared by group-by and distinct:
/// `firsts` collects the first row of each distinct key (in row order)
/// and, when non-null, entry_of_row[r] receives row r's entry id.
///
/// Keys are compared as normalized cells (key_cells_batch): the batch's
/// own cells come from sequential column sweeps, each entry keeps one
/// compact copy, and hashes derive from the cells — so after the single
/// per-batch column sweep, probing never touches the source columns
/// again (a row_keys_equal re-read of the first-seen row costs a cache
/// miss per input row at high key cardinality). Tables are sized to the
/// number of DISTINCT keys (grown on demand), not input rows, keeping
/// the slot array cache-resident for the common aggregation shapes.
void dedup_rows_hashed(const Table& src, std::span<const ColumnIndex> keys,
                       std::size_t batch_rows, std::uint32_t* entry_of_row,
                       std::vector<RowIndex>& firsts) {
  const std::size_t n = src.num_rows();
  const std::size_t nc = keys.size();
  std::vector<std::uint64_t> hashes(batch_rows);
  std::vector<std::uint64_t> cell_bits(batch_rows * nc);
  std::vector<std::uint8_t> cell_null(batch_rows * nc);
  std::vector<std::uint64_t> entry_hash;  // per entry, for rebuilds
  std::vector<std::uint64_t> entry_bits;  // num_entries x nc, row-major
  std::vector<std::uint8_t> entry_null;

  if (nc == 1) {
    // Single key column: the cell fits in the map slot itself, so a
    // probe is one random load with no chain indirection.
    KeyCellMap map(/*expected=*/128);
    for (std::size_t base = 0; base < n; base += batch_rows) {
      const std::size_t bn = std::min(batch_rows, n - base);
      key_cells_batch(src, static_cast<RowIndex>(base), bn, keys[0],
                      cell_bits.data(), cell_null.data());
      hash_key_cells(cell_bits.data(), cell_null.data(), bn, 1, batch_rows,
                     hashes.data());
      // Conservative pre-batch growth check (every row could be new),
      // so slot references stay stable across the probe loop.
      if (map.needs_capacity(firsts.size() + bn)) {
        map.rebuild(firsts.size() + bn, entry_bits, entry_null, entry_hash);
      }
      for (std::size_t i = 0; i < bn; ++i) map.prefetch(hashes[i]);
      for (std::size_t i = 0; i < bn; ++i) {
        KeyCellMap::Slot& s =
            map.slot(hashes[i], cell_bits[i], cell_null[i]);
        std::uint32_t e = s.entry;
        if (e == kChainEnd) {
          e = static_cast<std::uint32_t>(firsts.size());
          firsts.push_back(static_cast<RowIndex>(base + i));
          entry_hash.push_back(hashes[i]);
          entry_bits.push_back(cell_bits[i]);
          entry_null.push_back(cell_null[i]);
          s = KeyCellMap::Slot{cell_bits[i], e, cell_null[i]};
        }
        if (entry_of_row != nullptr) entry_of_row[base + i] = e;
      }
    }
    return;
  }

  // General arity: hash -> chain of entries, exact cell compare per
  // candidate (chains carry hash collisions, so distinct keys never
  // merge).
  HashHeads heads(/*expected=*/128);
  std::vector<std::uint32_t> next_entry;
  for (std::size_t base = 0; base < n; base += batch_rows) {
    const std::size_t bn = std::min(batch_rows, n - base);
    for (std::size_t c = 0; c < nc; ++c) {
      key_cells_batch(src, static_cast<RowIndex>(base), bn, keys[c],
                      cell_bits.data() + c * batch_rows,
                      cell_null.data() + c * batch_rows);
    }
    hash_key_cells(cell_bits.data(), cell_null.data(), bn, nc, batch_rows,
                   hashes.data());
    if (heads.needs_capacity(firsts.size() + bn)) {
      heads.rebuild(firsts.size() + bn, entry_hash, next_entry);
    }
    for (std::size_t i = 0; i < bn; ++i) heads.prefetch(hashes[i]);
    for (std::size_t i = 0; i < bn; ++i) {
      std::uint32_t& head = heads.slot(hashes[i]);
      std::uint32_t e = head;
      for (; e != kChainEnd; e = next_entry[e]) {
        bool eq = true;
        for (std::size_t c = 0; c < nc; ++c) {
          if (entry_bits[e * nc + c] != cell_bits[c * batch_rows + i] ||
              entry_null[e * nc + c] != cell_null[c * batch_rows + i]) {
            eq = false;
            break;
          }
        }
        if (eq) break;
      }
      if (e == kChainEnd) {
        e = static_cast<std::uint32_t>(firsts.size());
        firsts.push_back(static_cast<RowIndex>(base + i));
        next_entry.push_back(head);
        entry_hash.push_back(hashes[i]);
        for (std::size_t c = 0; c < nc; ++c) {
          entry_bits.push_back(cell_bits[c * batch_rows + i]);
          entry_null.push_back(cell_null[c * batch_rows + i]);
        }
        head = e;
      }
      if (entry_of_row != nullptr) entry_of_row[base + i] = e;
    }
  }
}

void assign_groups_hashed(const Table& src, std::span<const ColumnIndex> keys,
                          std::size_t batch_rows,
                          std::uint32_t* group_of_row,
                          std::vector<RowIndex>& representatives) {
  dedup_rows_hashed(src, keys, batch_rows, group_of_row, representatives);
}

}  // namespace

Result<TablePtr> group_by(const Table& src, std::span<const ColumnIndex> keys,
                          std::span<const AggSpec> aggs, std::string name,
                          const BatchPolicy& policy) {
  std::vector<ColumnDef> defs;
  defs.reserve(keys.size() + aggs.size());
  for (const auto k : keys) defs.push_back(src.schema().column(k));
  for (const auto& a : aggs) {
    GEMS_ASSIGN_OR_RETURN(DataType type, agg_output_type(a, src));
    defs.push_back({a.output_name, type});
  }
  GEMS_ASSIGN_OR_RETURN(Schema schema, Schema::create(std::move(defs)));
  auto out = std::make_shared<Table>(std::move(name), std::move(schema),
                                     src.pool());

  // Group discovery: one group id per row, first-seen order.
  // Fully overwritten by group assignment; skip the 4 bytes/row
  // zero-initialization a vector would do.
  auto group_of_row =
      std::make_unique_for_overwrite<std::uint32_t[]>(src.num_rows());
  std::vector<RowIndex> representatives;
  if (policy.vectorized()) {
    assign_groups_hashed(src, keys, policy.clamped_rows(), group_of_row.get(),
                         representatives);
  } else {
    assign_groups_rowkey(src, keys, group_of_row.get(), representatives);
  }

  // SQL scalar aggregation: no keys -> exactly one row even on empty input.
  const bool scalar_empty = keys.empty() && representatives.empty();
  if (scalar_empty) representatives.push_back(0);

  // Accumulation sweeps rows in global order per aggregate into flat,
  // kind-compact state arrays (count(*)/count use 8 bytes per group,
  // sum/avg 24, only min/max the boxed Values). The row order per
  // aggregate is exactly the row engine's, so floating point sums add
  // in the same order on both paths.
  const std::size_t num_groups = representatives.size();
  std::vector<std::vector<std::int64_t>> count_states(aggs.size());
  std::vector<std::vector<SumState>> sum_states(aggs.size());
  std::vector<std::vector<DoubleSumState>> dsum_states(aggs.size());
  std::vector<std::vector<MinMaxState>> minmax_states(aggs.size());
  const std::uint32_t* groups = group_of_row.get();
  for (std::size_t a = 0; a < aggs.size(); ++a) {
    const AggSpec& spec = aggs[a];
    if (spec.kind == AggKind::kCountStar) {
      count_states[a].resize(num_groups);
      std::int64_t* st = count_states[a].data();
      for (std::size_t r = 0; r < src.num_rows(); ++r) {
        ++st[groups[r]];
      }
      continue;
    }
    const Column& col = src.column(spec.input);
    switch (spec.kind) {
      case AggKind::kCount: {
        count_states[a].resize(num_groups);
        std::int64_t* st = count_states[a].data();
        for (std::size_t r = 0; r < src.num_rows(); ++r) {
          if (col.is_null(static_cast<RowIndex>(r))) continue;
          ++st[groups[r]];
        }
        break;
      }
      case AggKind::kSum:
      case AggKind::kAvg: {
        if (col.type().kind == TypeKind::kDouble) {
          dsum_states[a].resize(num_groups);
          DoubleSumState* st = dsum_states[a].data();
          const std::span<const double> vals = col.double_span();
          for (std::size_t r = 0; r < src.num_rows(); ++r) {
            const RowIndex row = static_cast<RowIndex>(r);
            if (col.is_null(row)) continue;
            DoubleSumState& s = st[groups[r]];
            ++s.count;
            s.dsum += vals[row];
          }
        } else {
          sum_states[a].resize(num_groups);
          SumState* st = sum_states[a].data();
          for (std::size_t r = 0; r < src.num_rows(); ++r) {
            const RowIndex row = static_cast<RowIndex>(r);
            if (col.is_null(row)) continue;
            SumState& s = st[groups[r]];
            ++s.count;
            s.isum += col.int64_at(row);
            s.dsum += static_cast<double>(col.int64_at(row));
          }
        }
        break;
      }
      case AggKind::kMin:
      case AggKind::kMax: {
        minmax_states[a].resize(num_groups);
        MinMaxState* st = minmax_states[a].data();
        for (std::size_t r = 0; r < src.num_rows(); ++r) {
          const RowIndex row = static_cast<RowIndex>(r);
          if (col.is_null(row)) continue;
          MinMaxState& s = st[groups[r]];
          const Value v = src.value_at(row, spec.input);
          if (!s.has_value) {
            s.min = v;
            s.max = v;
            s.has_value = true;
          } else {
            if (v.compare(s.min) < 0) s.min = v;
            if (v.compare(s.max) > 0) s.max = v;
          }
        }
        break;
      }
      default:
        GEMS_UNREACHABLE("handled above");
    }
  }

  // Column-at-a-time emission. Byte-identical to boxed per-row appends:
  // append_from copies payload+validity for key cells (NULL keys write the
  // scalar append_null payload), typed appends write what append_value
  // would for each aggregate kind.
  for (std::size_t c = 0; c < keys.size(); ++c) {
    out->column_mut(static_cast<ColumnIndex>(c))
        .append_gather(src.column(keys[c]), representatives.data(),
                       num_groups);
  }
  for (std::size_t a = 0; a < aggs.size(); ++a) {
    const AggSpec& spec = aggs[a];
    Column& oc =
        out->column_mut(static_cast<ColumnIndex>(keys.size() + a));
    switch (spec.kind) {
      case AggKind::kCountStar:
      case AggKind::kCount: {
        const std::int64_t* st = count_states[a].data();
        for (std::size_t g = 0; g < num_groups; ++g) {
          oc.append_int64(st[g]);
        }
        break;
      }
      case AggKind::kSum: {
        if (src.column(spec.input).type().kind == TypeKind::kDouble) {
          const DoubleSumState* st = dsum_states[a].data();
          for (std::size_t g = 0; g < num_groups; ++g) {
            if (st[g].count == 0) {
              oc.append_null();
            } else {
              oc.append_double(st[g].dsum);
            }
          }
        } else {
          const SumState* st = sum_states[a].data();
          for (std::size_t g = 0; g < num_groups; ++g) {
            if (st[g].count == 0) {
              oc.append_null();
            } else {
              oc.append_int64(st[g].isum);
            }
          }
        }
        break;
      }
      case AggKind::kAvg: {
        if (src.column(spec.input).type().kind == TypeKind::kDouble) {
          const DoubleSumState* st = dsum_states[a].data();
          for (std::size_t g = 0; g < num_groups; ++g) {
            if (st[g].count == 0) {
              oc.append_null();
            } else {
              oc.append_double(st[g].dsum /
                               static_cast<double>(st[g].count));
            }
          }
        } else {
          const SumState* st = sum_states[a].data();
          for (std::size_t g = 0; g < num_groups; ++g) {
            if (st[g].count == 0) {
              oc.append_null();
            } else {
              oc.append_double(st[g].dsum /
                               static_cast<double>(st[g].count));
            }
          }
        }
        break;
      }
      case AggKind::kMin: {
        const MinMaxState* st = minmax_states[a].data();
        for (std::size_t g = 0; g < num_groups; ++g) {
          if (st[g].has_value) {
            oc.append_value(st[g].min, src.pool());
          } else {
            oc.append_null();
          }
        }
        break;
      }
      case AggKind::kMax: {
        const MinMaxState* st = minmax_states[a].data();
        for (std::size_t g = 0; g < num_groups; ++g) {
          if (st[g].has_value) {
            oc.append_value(st[g].max, src.pool());
          } else {
            oc.append_null();
          }
        }
        break;
      }
    }
  }
  out->bump_rows(num_groups);
  return out;
}

int compare_table_cells(const Table& table, RowIndex a, RowIndex b,
                        ColumnIndex col) {
  const Column& column = table.column(col);
  const bool a_null = column.is_null(a);
  const bool b_null = column.is_null(b);
  if (a_null || b_null) {
    if (a_null && b_null) return 0;
    return a_null ? -1 : 1;
  }
  auto cmp3 = [](auto x, auto y) { return x < y ? -1 : (x > y ? 1 : 0); };
  switch (column.type().kind) {
    case TypeKind::kBool:
      return cmp3(column.bool_at(a) ? 1 : 0, column.bool_at(b) ? 1 : 0);
    case TypeKind::kInt64:
    case TypeKind::kDate:
      return cmp3(column.int64_at(a), column.int64_at(b));
    case TypeKind::kDouble:
      return cmp3(column.double_at(a), column.double_at(b));
    case TypeKind::kVarchar: {
      const StringId x = column.string_at(a);
      const StringId y = column.string_at(b);
      if (x == y) return 0;
      const StringPool& pool = table.pool();
      return pool.view(x).compare(pool.view(y)) < 0 ? -1 : 1;
    }
  }
  GEMS_UNREACHABLE("bad column kind");
}

std::vector<RowIndex> sorted_indices(const Table& src,
                                     std::span<const SortKey> keys) {
  std::vector<RowIndex> order(src.num_rows());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<RowIndex>(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](RowIndex a, RowIndex b) {
                     for (const auto& k : keys) {
                       const int c = compare_table_cells(src, a, b, k.column);
                       if (c != 0) return k.descending ? c > 0 : c < 0;
                     }
                     return false;
                   });
  return order;
}

namespace {

std::vector<ColumnIndex> all_columns(const Table& t) {
  std::vector<ColumnIndex> cols(t.num_columns());
  for (std::size_t i = 0; i < cols.size(); ++i) {
    cols[i] = static_cast<ColumnIndex>(i);
  }
  return cols;
}

}  // namespace

TablePtr order_by(const Table& src, std::span<const SortKey> keys,
                  std::string name) {
  const auto order = sorted_indices(src, keys);
  return materialize(src, order, all_columns(src), std::move(name));
}

TablePtr distinct(const Table& src, std::string name,
                  const BatchPolicy& policy) {
  const auto cols = all_columns(src);
  std::vector<RowIndex> keep;
  if (policy.vectorized()) {
    // First-seen dedup via the shared hashed path (batched key cells,
    // exact equality per candidate — collisions never merge rows).
    dedup_rows_hashed(src, cols, policy.clamped_rows(),
                      /*entry_of_row=*/nullptr, keep);
  } else {
    std::unordered_map<std::string, bool, RowKeyHash, std::equal_to<>> seen;
    for (std::size_t r = 0; r < src.num_rows(); ++r) {
      const RowIndex row = static_cast<RowIndex>(r);
      if (seen.emplace(encode_row_key(src, row, cols), true).second) {
        keep.push_back(row);
      }
    }
  }
  return materialize(src, keep, cols, std::move(name));
}

TablePtr head(const Table& src, std::size_t n, std::string name) {
  std::vector<RowIndex> rows;
  const std::size_t limit = std::min(n, src.num_rows());
  rows.reserve(limit);
  for (std::size_t r = 0; r < limit; ++r) {
    rows.push_back(static_cast<RowIndex>(r));
  }
  return materialize(src, rows, all_columns(src), std::move(name));
}

}  // namespace gems::relational
