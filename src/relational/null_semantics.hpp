// SQL three-valued logic and NULL-propagation rules, in one place.
//
// Both evaluation engines — the row-at-a-time oracle (eval.cpp) and the
// vectorized kernel tree (vector_eval.cpp) — consult these tables, so the
// NULL semantics of every operator have a single source of truth. The
// vectorized engine processes validity word-at-a-time with the closed-form
// bit formulas below; relational_test cross-checks each formula against
// the truth tables for all nine operand combinations, which is what makes
// "one truth table, two engines" an enforced invariant rather than a
// convention.
#pragma once

#include <cstdint>

#include "relational/bound_expr.hpp"

namespace gems::relational {

/// Three-valued boolean. The numeric values are table indices.
enum class Tri : std::uint8_t { kFalse = 0, kTrue = 1, kNull = 2 };

/// and/or/not truth tables (SQL 1999 8.12). Indexed [lhs][rhs].
inline constexpr Tri kAnd3[3][3] = {
    /* F */ {Tri::kFalse, Tri::kFalse, Tri::kFalse},
    /* T */ {Tri::kFalse, Tri::kTrue, Tri::kNull},
    /* N */ {Tri::kFalse, Tri::kNull, Tri::kNull},
};
inline constexpr Tri kOr3[3][3] = {
    /* F */ {Tri::kFalse, Tri::kTrue, Tri::kNull},
    /* T */ {Tri::kTrue, Tri::kTrue, Tri::kTrue},
    /* N */ {Tri::kNull, Tri::kTrue, Tri::kNull},
};
inline constexpr Tri kNot3[3] = {Tri::kTrue, Tri::kFalse, Tri::kNull};

/// NULL rule shared by every comparison and arithmetic operator: the
/// result is NULL iff either operand is NULL. Indexed [lhs_null][rhs_null].
inline constexpr bool kBinaryNullYieldsNull[2][2] = {{false, true},
                                                     {true, true}};

inline constexpr bool binary_result_is_null(bool lhs_null,
                                            bool rhs_null) noexcept {
  return kBinaryNullYieldsNull[lhs_null ? 1 : 0][rhs_null ? 1 : 0];
}

/// Short-circuit legality, read off the tables: `and` is decided by a
/// false lhs, `or` by a true lhs, regardless of the rhs (including NULL).
inline constexpr bool and_decided_by(Tri lhs) noexcept {
  return kAnd3[static_cast<int>(lhs)][0] ==
             kAnd3[static_cast<int>(lhs)][1] &&
         kAnd3[static_cast<int>(lhs)][1] == kAnd3[static_cast<int>(lhs)][2];
}
inline constexpr bool or_decided_by(Tri lhs) noexcept {
  return kOr3[static_cast<int>(lhs)][0] == kOr3[static_cast<int>(lhs)][1] &&
         kOr3[static_cast<int>(lhs)][1] == kOr3[static_cast<int>(lhs)][2];
}
static_assert(and_decided_by(Tri::kFalse) && !and_decided_by(Tri::kTrue) &&
              !and_decided_by(Tri::kNull));
static_assert(or_decided_by(Tri::kTrue) && !or_decided_by(Tri::kFalse) &&
              !or_decided_by(Tri::kNull));

inline Tri tri_of(const Cell& c) noexcept {
  return c.null ? Tri::kNull : (c.b ? Tri::kTrue : Tri::kFalse);
}

inline Cell cell_of(Tri t) noexcept {
  return t == Tri::kNull ? Cell::null_cell()
                         : Cell::of_bool(t == Tri::kTrue);
}

// ---- Word-at-a-time forms (vectorized engine) ---------------------------
//
// A boolean vector is a (value, valid) bit-word pair with the invariant
// value ⊆ valid (a NULL lane never has its value bit set). Under that
// invariant the tables above collapse to the formulas below; the property
// test Sql3vlWordFormulasMatchTruthTables proves the equivalence
// exhaustively.

/// and: true iff both true; false iff either side is a valid false.
inline constexpr void and3_words(std::uint64_t lv, std::uint64_t ld,
                                 std::uint64_t rv, std::uint64_t rd,
                                 std::uint64_t& value,
                                 std::uint64_t& valid) noexcept {
  value = lv & rv;
  valid = (ld & rd) | (ld & ~lv) | (rd & ~rv);
}

/// or: true iff either true; false iff both are valid false.
inline constexpr void or3_words(std::uint64_t lv, std::uint64_t ld,
                                std::uint64_t rv, std::uint64_t rd,
                                std::uint64_t& value,
                                std::uint64_t& valid) noexcept {
  value = lv | rv;
  valid = (ld & rd) | lv | rv;
}

/// not: flips valid lanes, NULL stays NULL.
inline constexpr void not3_words(std::uint64_t v, std::uint64_t d,
                                 std::uint64_t& value,
                                 std::uint64_t& valid) noexcept {
  value = d & ~v;
  valid = d;
}

}  // namespace gems::relational
