// Relational operators — the complete surface of paper Table I:
// select (selection + projection), order by, group by, distinct,
// count/avg/min/max/sum, top n, and aliasing (handled by output names).
// Joins implement the edge-creation semantics of Eq. 2 and the implicit
// joins of many-to-one declarations (Figs. 4-5).
//
// All operators materialize new tables; intermediate results are the same
// Table type users query, which is what makes GraQL's "results as tables"
// composition (paper Sec. II-C1) free.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "relational/batch.hpp"
#include "relational/bound_expr.hpp"
#include "storage/table.hpp"

namespace gems::relational {

using storage::ColumnIndex;
using storage::RowIndex;
using storage::Table;
using storage::TablePtr;

// ---- Selection ---------------------------------------------------------
//
// Operators taking a BatchPolicy run the vectorized kernel engine
// (vector_eval.hpp) by default and fall back to the row-at-a-time
// interpreter when the policy disables batching (BatchPolicy::row_engine)
// or the expression is not vectorizable. Both paths are bit-identical for
// every batch size and null pattern (property-tested; the row path is the
// oracle).

/// Row indices of `table` satisfying `predicate` (ascending order).
std::vector<RowIndex> filter_rows(const Table& table,
                                  const BoundExpr& predicate,
                                  const BatchPolicy& policy = {});

/// Parallel selection over the intra-node thread pool (the shared-memory
/// half of the paper's "massively parallel execution"): the table is
/// chunked, chunks filter independently (each worker with its own kernel
/// scratch), results concatenate in order. Bit-identical to filter_rows
/// (property-tested).
std::vector<RowIndex> filter_rows_parallel(const Table& table,
                                           const BoundExpr& predicate,
                                           ThreadPool& pool,
                                           const BatchPolicy& policy = {});

/// Copies `rows` × `cols` of `src` into a new table named `name`, keeping
/// the source column names unless `rename` provides one per output column.
TablePtr materialize(const Table& src, std::span<const RowIndex> rows,
                     std::span<const ColumnIndex> cols, std::string name,
                     const std::vector<std::string>* rename = nullptr);

// ---- Projection with computed expressions -------------------------------

struct OutputColumn {
  std::string name;  // output name (covers `as x` aliasing)
  BoundExprPtr expr;  // bound against a single-source TableScope
};

/// Evaluates each output expression for each listed row. Vectorized:
/// expressions compile to kernels once and evaluate per batch, appending
/// whole lane windows into the output columns.
TablePtr project(const Table& src, std::span<const RowIndex> rows,
                 std::span<const OutputColumn> outputs, std::string name,
                 const BatchPolicy& policy = {});

// ---- Join ---------------------------------------------------------------

/// Equi-join row pairs: every (l, r) with left[l][left_keys] ==
/// right[r][right_keys]. Rows with NULL in any key never match (SQL
/// semantics). Key columns must be pairwise comparable (checked).
Result<std::vector<std::pair<RowIndex, RowIndex>>> hash_join_pairs(
    const Table& left, std::span<const ColumnIndex> left_keys,
    const Table& right, std::span<const ColumnIndex> right_keys,
    const BatchPolicy& policy = {});

struct JoinOutput {
  enum Side { kLeft, kRight } side;
  ColumnIndex column;
  std::string name;
};

/// Materializing equi-join.
Result<TablePtr> hash_join(const Table& left,
                           std::span<const ColumnIndex> left_keys,
                           const Table& right,
                           std::span<const ColumnIndex> right_keys,
                           std::span<const JoinOutput> outputs,
                           std::string name,
                           const BatchPolicy& policy = {});

// ---- Aggregation ----------------------------------------------------------

enum class AggKind { kCountStar, kCount, kSum, kAvg, kMin, kMax };

std::string_view agg_kind_name(AggKind kind) noexcept;

struct AggSpec {
  AggKind kind = AggKind::kCountStar;
  ColumnIndex input = 0;  // ignored for kCountStar
  std::string output_name;
};

/// GROUP BY `keys` with the given aggregates. With empty `keys`, produces
/// a single global-aggregate row (SQL scalar aggregation). NULLs are
/// skipped by every aggregate except count(*). Output schema: the key
/// columns (source names) followed by one column per aggregate.
/// Groups appear in first-encounter order (stable).
Result<TablePtr> group_by(const Table& src, std::span<const ColumnIndex> keys,
                          std::span<const AggSpec> aggs, std::string name,
                          const BatchPolicy& policy = {});

// ---- Ordering / dedup / top -----------------------------------------------

struct SortKey {
  ColumnIndex column;
  bool descending = false;
};

/// Stable-sorted row permutation of `src` (NULLs first ascending).
std::vector<RowIndex> sorted_indices(const Table& src,
                                     std::span<const SortKey> keys);

/// Materializes `src` in sorted order.
TablePtr order_by(const Table& src, std::span<const SortKey> keys,
                  std::string name);

/// Distinct rows (over all columns), first occurrence kept, input order.
TablePtr distinct(const Table& src, std::string name,
                  const BatchPolicy& policy = {});

/// First `n` rows (paper's `top n`; callers sort first).
TablePtr head(const Table& src, std::size_t n, std::string name);

/// Three-way comparison of two rows on one column (NULL sorts first).
int compare_table_cells(const Table& table, RowIndex a, RowIndex b,
                        ColumnIndex col);

}  // namespace gems::relational
