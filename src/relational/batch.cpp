#include "relational/batch.hpp"

namespace gems::relational {

void gather_valid_words(const storage::Column& column, const RowBatch& batch,
                        std::uint64_t* out) {
  const DynamicBitset& valid = column.validity();
  const std::size_t n = batch.size;
  const std::size_t nw = batch_words(n);
  if (batch.contiguous()) {
    // Word-at-a-time shift-merge of the column's validity window; aligned
    // windows (base % 64 == 0, the common full-batch case) degenerate to
    // straight word copies.
    const std::span<const std::uint64_t> words = valid.words();
    const std::size_t base = batch.base;
    const std::size_t offset = base % 64;
    std::size_t w0 = base / 64;
    if (offset == 0) {
      for (std::size_t w = 0; w < nw; ++w) out[w] = words[w0 + w];
    } else {
      for (std::size_t w = 0; w < nw; ++w) {
        std::uint64_t word = words[w0 + w] >> offset;
        if (w0 + w + 1 < words.size()) {
          word |= words[w0 + w + 1] << (64 - offset);
        }
        out[w] = word;
      }
    }
  } else {
    for (std::size_t w = 0; w < nw; ++w) out[w] = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (valid.test(batch.rows[i])) out[i >> 6] |= 1ull << (i & 63);
    }
  }
  clear_tail_bits(out, n);
}

}  // namespace gems::relational
