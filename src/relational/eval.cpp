#include "relational/eval.hpp"

#include "common/check.hpp"
#include "relational/null_semantics.hpp"

namespace gems::relational {

using storage::TypeKind;

namespace {

Cell load_column(const Slot& slot, std::span<const RowCursor> sources) {
  GEMS_DCHECK(slot.source < sources.size());
  const RowCursor& cursor = sources[slot.source];
  GEMS_DCHECK(cursor.table != nullptr);
  const storage::Column& col = cursor.table->column(slot.column);
  if (col.is_null(cursor.row)) return Cell::null_cell();
  switch (col.type().kind) {
    case TypeKind::kBool:
      return Cell::of_bool(col.bool_at(cursor.row));
    case TypeKind::kInt64:
      return Cell::of_int64(col.int64_at(cursor.row));
    case TypeKind::kDate:
      return Cell::of_int64(col.int64_at(cursor.row), TypeKind::kDate);
    case TypeKind::kDouble:
      return Cell::of_double(col.double_at(cursor.row));
    case TypeKind::kVarchar:
      return Cell::of_string(col.string_at(cursor.row));
  }
  GEMS_UNREACHABLE("bad column kind");
}

// Three-valued comparison: -1/0/1, with nulls already filtered by caller.
int compare_cells(const Cell& a, const Cell& b, const StringPool& pool) {
  GEMS_DCHECK(!a.null && !b.null);
  auto cmp3 = [](auto x, auto y) { return x < y ? -1 : (x > y ? 1 : 0); };
  if (a.kind == TypeKind::kVarchar) {
    GEMS_DCHECK(b.kind == TypeKind::kVarchar);
    if (a.s == b.s) return 0;  // interned: same id <=> same string
    return pool.view(a.s).compare(pool.view(b.s)) < 0 ? -1 : 1;
  }
  if (a.kind == TypeKind::kBool) {
    GEMS_DCHECK(b.kind == TypeKind::kBool);
    return cmp3(a.b ? 1 : 0, b.b ? 1 : 0);
  }
  if (a.kind == TypeKind::kDate || b.kind == TypeKind::kDate) {
    GEMS_DCHECK(a.kind == b.kind);
    return cmp3(a.i, b.i);
  }
  // Numeric (Int64/Double mix): compare promoted.
  if (a.kind == TypeKind::kInt64 && b.kind == TypeKind::kInt64) {
    return cmp3(a.i, b.i);
  }
  const double x = a.kind == TypeKind::kDouble ? a.d : static_cast<double>(a.i);
  const double y = b.kind == TypeKind::kDouble ? b.d : static_cast<double>(b.i);
  return cmp3(x, y);
}

Cell eval_binary(const BoundExpr& expr, std::span<const RowCursor> sources,
                 const StringPool& pool) {
  // Logical operators use the shared three-valued truth tables
  // (null_semantics.hpp); the vectorized engine derives its word formulas
  // from the same tables, so the two engines cannot drift.
  if (expr.bop == BinaryOp::kAnd || expr.bop == BinaryOp::kOr) {
    const bool is_and = expr.bop == BinaryOp::kAnd;
    const Tri l = tri_of(eval_cell(*expr.lhs, sources, pool));
    // Short-circuit exactly where the table says the lhs decides.
    if (is_and ? and_decided_by(l) : or_decided_by(l)) {
      return cell_of(is_and ? kAnd3[static_cast<int>(l)][0]
                            : kOr3[static_cast<int>(l)][0]);
    }
    const Tri r = tri_of(eval_cell(*expr.rhs, sources, pool));
    return cell_of(is_and ? kAnd3[static_cast<int>(l)][static_cast<int>(r)]
                          : kOr3[static_cast<int>(l)][static_cast<int>(r)]);
  }

  // Comparisons and arithmetic share one NULL rule: NULL in, NULL out.
  const Cell l = eval_cell(*expr.lhs, sources, pool);
  const Cell r = eval_cell(*expr.rhs, sources, pool);
  if (binary_result_is_null(l.null, r.null)) return Cell::null_cell();

  switch (expr.bop) {
    case BinaryOp::kEq:
      if (l.kind == TypeKind::kVarchar) return Cell::of_bool(l.s == r.s);
      return Cell::of_bool(compare_cells(l, r, pool) == 0);
    case BinaryOp::kNe:
      if (l.kind == TypeKind::kVarchar) return Cell::of_bool(l.s != r.s);
      return Cell::of_bool(compare_cells(l, r, pool) != 0);
    case BinaryOp::kLt:
      return Cell::of_bool(compare_cells(l, r, pool) < 0);
    case BinaryOp::kLe:
      return Cell::of_bool(compare_cells(l, r, pool) <= 0);
    case BinaryOp::kGt:
      return Cell::of_bool(compare_cells(l, r, pool) > 0);
    case BinaryOp::kGe:
      return Cell::of_bool(compare_cells(l, r, pool) >= 0);
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv: {
      if (expr.type.kind == TypeKind::kInt64) {
        const std::int64_t x = l.i;
        const std::int64_t y = r.i;
        switch (expr.bop) {
          case BinaryOp::kAdd:
            return Cell::of_int64(x + y);
          case BinaryOp::kSub:
            return Cell::of_int64(x - y);
          case BinaryOp::kMul:
            return Cell::of_int64(x * y);
          default:
            GEMS_UNREACHABLE("int division is typed double");
        }
      }
      const double x = l.kind == TypeKind::kDouble ? l.d
                                                   : static_cast<double>(l.i);
      const double y = r.kind == TypeKind::kDouble ? r.d
                                                   : static_cast<double>(r.i);
      switch (expr.bop) {
        case BinaryOp::kAdd:
          return Cell::of_double(x + y);
        case BinaryOp::kSub:
          return Cell::of_double(x - y);
        case BinaryOp::kMul:
          return Cell::of_double(x * y);
        case BinaryOp::kDiv:
          if (y == 0.0) return Cell::null_cell();  // SQL: division by zero
          return Cell::of_double(x / y);
        default:
          break;
      }
      GEMS_UNREACHABLE("bad arithmetic op");
    }
    default:
      GEMS_UNREACHABLE("logical ops handled above");
  }
}

}  // namespace

Cell eval_cell(const BoundExpr& expr, std::span<const RowCursor> sources,
               const StringPool& pool) {
  switch (expr.kind) {
    case BoundExpr::Kind::kConst:
      return expr.constant;
    case BoundExpr::Kind::kColumnRef:
      return load_column(expr.slot, sources);
    case BoundExpr::Kind::kUnary: {
      const Cell v = eval_cell(*expr.lhs, sources, pool);
      if (expr.uop == UnaryOp::kNot) {
        return cell_of(kNot3[static_cast<int>(tri_of(v))]);
      }
      if (v.null) return Cell::null_cell();
      if (v.kind == TypeKind::kDouble) return Cell::of_double(-v.d);
      return Cell::of_int64(-v.i);
    }
    case BoundExpr::Kind::kBinary:
      return eval_binary(expr, sources, pool);
  }
  GEMS_UNREACHABLE("bad bound expr kind");
}

storage::Value cell_to_value(const Cell& cell, const StringPool& pool) {
  if (cell.null) return storage::Value::null();
  switch (cell.kind) {
    case TypeKind::kBool:
      return storage::Value::boolean(cell.b);
    case TypeKind::kInt64:
      return storage::Value::int64(cell.i);
    case TypeKind::kDate:
      return storage::Value::date(cell.i);
    case TypeKind::kDouble:
      return storage::Value::float64(cell.d);
    case TypeKind::kVarchar:
      return storage::Value::varchar(std::string(pool.view(cell.s)));
  }
  GEMS_UNREACHABLE("bad cell kind");
}

void append_cell(storage::Column& column, const Cell& cell) {
  if (cell.null) {
    column.append_null();
    return;
  }
  switch (column.type().kind) {
    case TypeKind::kBool:
      column.append_bool(cell.b);
      return;
    case TypeKind::kInt64:
    case TypeKind::kDate:
      column.append_int64(cell.i);
      return;
    case TypeKind::kDouble:
      column.append_double(cell.kind == TypeKind::kDouble
                               ? cell.d
                               : static_cast<double>(cell.i));
      return;
    case TypeKind::kVarchar:
      column.append_string(cell.s);
      return;
  }
  GEMS_UNREACHABLE("bad column kind");
}

}  // namespace gems::relational
