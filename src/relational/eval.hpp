// Tree-walking evaluator for bound expressions. Works over "row cursors":
// one (table, row) pair per source in the binding scope, so the same
// machinery evaluates single-table WHERE clauses and multi-step path
// conditions (where a condition may reference labeled earlier steps,
// paper Sec. II-B).
#pragma once

#include <span>

#include "common/string_pool.hpp"
#include "relational/bound_expr.hpp"
#include "storage/table.hpp"

namespace gems::relational {

struct RowCursor {
  const storage::Table* table = nullptr;
  storage::RowIndex row = 0;
};

/// Evaluates `expr` against `sources` (indexed by Slot::source).
/// NULL propagates SQL-style: comparisons/arithmetic on NULL yield NULL;
/// and/or use three-valued logic. `pool` is consulted only for string
/// ordering comparisons (equality uses interned ids).
Cell eval_cell(const BoundExpr& expr, std::span<const RowCursor> sources,
               const StringPool& pool);

/// Predicate evaluation: true iff the expression evaluates to non-null true.
inline bool eval_predicate(const BoundExpr& expr,
                           std::span<const RowCursor> sources,
                           const StringPool& pool) {
  return eval_cell(expr, sources, pool).truthy();
}

/// Boxes a Cell back into a Value (result materialization).
storage::Value cell_to_value(const Cell& cell, const StringPool& pool);

/// Appends a Cell to a column of matching kind (Int64 cells are accepted
/// into Double columns via promotion).
void append_cell(storage::Column& column, const Cell& cell);

}  // namespace gems::relational
