#include "relational/expr.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace gems::relational {

std::string_view binary_op_name(BinaryOp op) noexcept {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kOr:
      return "or";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
  }
  return "?";
}

namespace {

void set_span(Expr& e, std::uint32_t line, std::uint32_t column,
              std::uint32_t end_line, std::uint32_t end_column) {
  e.src_line = line;
  e.src_column = column;
  e.src_end_line = end_line;
  e.src_end_column = end_column;
}

// Covering range of two (possibly unknown) node spans.
void merge_spans(Expr& e, const Expr* a, const Expr* b) {
  const Expr* first = a;
  const Expr* last = a;
  if (b != nullptr && b->src_line != 0) {
    if (first == nullptr || first->src_line == 0 ||
        b->src_line < first->src_line ||
        (b->src_line == first->src_line &&
         b->src_column < first->src_column)) {
      first = b;
    }
    if (last == nullptr || last->src_line == 0 ||
        b->src_end_line > last->src_end_line ||
        (b->src_end_line == last->src_end_line &&
         b->src_end_column > last->src_end_column)) {
      last = b;
    }
  }
  if (first == nullptr || first->src_line == 0) return;
  set_span(e, first->src_line, first->src_column, last->src_end_line,
           last->src_end_column);
}

}  // namespace

ExprPtr Expr::make_literal(storage::Value v, std::uint32_t line,
                           std::uint32_t column, std::uint32_t end_line,
                           std::uint32_t end_column) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  set_span(*e, line, column, end_line, end_column);
  return e;
}

ExprPtr Expr::make_column(std::string qualifier, std::string column,
                          std::uint32_t line, std::uint32_t col,
                          std::uint32_t end_line, std::uint32_t end_column) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  set_span(*e, line, col, end_line, end_column);
  return e;
}

ExprPtr Expr::make_parameter(std::string name, std::uint32_t line,
                             std::uint32_t column, std::uint32_t end_line,
                             std::uint32_t end_column) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kParameter;
  e->param_name = std::move(name);
  set_span(*e, line, column, end_line, end_column);
  return e;
}

ExprPtr Expr::make_unary(UnaryOp op, ExprPtr operand) {
  GEMS_CHECK(operand != nullptr);
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kUnary;
  e->uop = op;
  e->lhs = std::move(operand);
  merge_spans(*e, e->lhs.get(), nullptr);
  return e;
}

ExprPtr Expr::make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  GEMS_CHECK(lhs != nullptr && rhs != nullptr);
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kBinary;
  e->bop = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  merge_spans(*e, e->lhs.get(), e->rhs.get());
  return e;
}

std::string Expr::to_string() const {
  switch (kind) {
    case Kind::kLiteral:
      if (!literal.is_null() &&
          literal.kind() == storage::TypeKind::kVarchar) {
        return "'" + literal.to_string() + "'";
      }
      return literal.is_null() ? "null" : literal.to_string();
    case Kind::kColumnRef:
      return qualifier.empty() ? column : qualifier + "." + column;
    case Kind::kParameter:
      return "%" + param_name + "%";
    case Kind::kUnary:
      return (uop == UnaryOp::kNot ? "not (" : "-(") + lhs->to_string() + ")";
    case Kind::kBinary:
      return "(" + lhs->to_string() + " " +
             std::string(binary_op_name(bop)) + " " + rhs->to_string() + ")";
  }
  GEMS_UNREACHABLE("bad expr kind");
}

bool Expr::equals(const Expr& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::kLiteral:
      if (literal.is_null() != other.literal.is_null()) return false;
      if (literal.is_null()) return true;
      return literal.kind() == other.literal.kind() &&
             literal == other.literal;
    case Kind::kColumnRef:
      return qualifier == other.qualifier && column == other.column;
    case Kind::kParameter:
      return param_name == other.param_name;
    case Kind::kUnary:
      return uop == other.uop && lhs->equals(*other.lhs);
    case Kind::kBinary:
      return bop == other.bop && lhs->equals(*other.lhs) &&
             rhs->equals(*other.rhs);
  }
  GEMS_UNREACHABLE("bad expr kind");
}

std::vector<ExprPtr> split_conjuncts(const ExprPtr& expr) {
  std::vector<ExprPtr> out;
  if (!expr) return out;
  if (expr->kind == Expr::Kind::kBinary && expr->bop == BinaryOp::kAnd) {
    auto left = split_conjuncts(expr->lhs);
    auto right = split_conjuncts(expr->rhs);
    out.insert(out.end(), left.begin(), left.end());
    out.insert(out.end(), right.begin(), right.end());
    return out;
  }
  out.push_back(expr);
  return out;
}

ExprPtr conjoin(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr result;
  for (const auto& c : conjuncts) {
    result = result ? Expr::make_binary(BinaryOp::kAnd, result, c) : c;
  }
  return result;
}

void collect_qualifiers(const ExprPtr& expr, std::vector<std::string>& out) {
  if (!expr) return;
  if (expr->kind == Expr::Kind::kColumnRef) {
    if (std::find(out.begin(), out.end(), expr->qualifier) == out.end()) {
      out.push_back(expr->qualifier);
    }
    return;
  }
  collect_qualifiers(expr->lhs, out);
  collect_qualifiers(expr->rhs, out);
}

}  // namespace gems::relational
