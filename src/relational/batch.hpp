// Fixed-width value batches for the vectorized relational engine.
//
// The columnar Column/Table layout stores attributes contiguously; this
// layer makes execution match the storage: operators process windows of
// kBatchRows rows at a time instead of dispatching the BoundExpr
// interpreter once per row. A batch is either a contiguous row window of
// one source table or a gather list (the materialized form of a selection
// vector); typed value vectors view column spans directly when the window
// is contiguous and copy lanes when it is not. Validity travels as packed
// 64-bit words (the DynamicBitset word layout), so NULL propagation is a
// handful of bitwise ops per 64 rows.
//
// Conventions:
//  * valid word bit i set  <=> lane i is non-null.
//  * Bool vectors carry their values as bit-words too (bit set = true),
//    with the invariant value ⊆ valid; numeric/varchar vectors carry
//    lanes. This makes and/or/not and selection-vector production pure
//    word arithmetic (see null_semantics.hpp for the formulas).
//  * Bits at or past the batch size are zero in every word array.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "common/bitset.hpp"
#include "relational/bound_expr.hpp"
#include "storage/table.hpp"

namespace gems::relational {

/// Fixed batch width. 1024 rows = 8 KiB per int64/double lane array —
/// three live vectors per kernel node stay L1/L2-resident.
inline constexpr std::size_t kBatchRows = 1024;
inline constexpr std::size_t kBatchWords = kBatchRows / 64;

/// Execution policy threaded from ExecContext into the relational
/// operators. batch_rows == 0 disables the kernel engine (row-at-a-time
/// oracle path); any other value is clamped to [1, kBatchRows]. Sizes
/// below kBatchRows exist for the equivalence property tests (batch size
/// 1 must reproduce today's row engine byte-for-byte).
struct BatchPolicy {
  std::size_t batch_rows = kBatchRows;

  bool vectorized() const noexcept { return batch_rows != 0; }
  std::size_t clamped_rows() const noexcept {
    return std::clamp<std::size_t>(batch_rows, 1, kBatchRows);
  }

  static BatchPolicy row_engine() noexcept { return BatchPolicy{0}; }
};

/// One evaluation window over a single source table. rows == nullptr
/// means the contiguous window [base, base + size); otherwise `rows`
/// lists `size` gathered row indices (ascending for operator inputs, but
/// kernels do not rely on order).
struct RowBatch {
  const storage::Table* table = nullptr;
  storage::RowIndex base = 0;
  const storage::RowIndex* rows = nullptr;
  std::size_t size = 0;

  storage::RowIndex row_at(std::size_t i) const noexcept {
    return rows != nullptr ? rows[i]
                           : base + static_cast<storage::RowIndex>(i);
  }
  bool contiguous() const noexcept { return rows == nullptr; }
};

/// Backing storage for one kernel node's output (see vector_eval.hpp).
/// Lane vectors are allocated on first use and retained across batches.
struct VectorBuf {
  std::vector<std::int64_t> i64;
  std::vector<double> f64;
  std::vector<StringId> str;
  std::array<std::uint64_t, kBatchWords> bits{};
  std::array<std::uint64_t, kBatchWords> valid{};

  std::int64_t* i64_lanes() {
    if (i64.size() < kBatchRows) i64.resize(kBatchRows);
    return i64.data();
  }
  double* f64_lanes() {
    if (f64.size() < kBatchRows) f64.resize(kBatchRows);
    return f64.data();
  }
  StringId* str_lanes() {
    if (str.size() < kBatchRows) str.resize(kBatchRows);
    return str.data();
  }
};

/// Non-owning typed view of one evaluated vector. Exactly one of the lane
/// pointers (or `bits`, for Bool) is populated, per `kind`; `valid` is
/// always populated.
struct ValueVector {
  storage::TypeKind kind = storage::TypeKind::kInt64;
  const std::int64_t* i64 = nullptr;  // Int64 / Date lanes
  const double* f64 = nullptr;        // Double lanes
  const StringId* str = nullptr;      // Varchar lanes
  const std::uint64_t* bits = nullptr;   // Bool values (bit set = true)
  const std::uint64_t* valid = nullptr;  // bit set = non-null
};

/// Number of validity/value words covering `n` lanes.
inline constexpr std::size_t batch_words(std::size_t n) noexcept {
  return (n + 63) / 64;
}

/// Zeroes any bits at or past `n` in the final covering word.
inline void clear_tail_bits(std::uint64_t* words, std::size_t n) noexcept {
  if (n % 64 != 0) words[n / 64] &= (1ull << (n % 64)) - 1;
}

/// Copies the batch's validity window of `column` into batch-local words
/// (bit i = row_at(i) non-null), tail bits cleared.
void gather_valid_words(const storage::Column& column, const RowBatch& batch,
                        std::uint64_t* out);

/// Sets the first `n` lane bits (all-valid / all-true mask).
inline void fill_ones_words(std::uint64_t* words, std::size_t n) noexcept {
  const std::size_t nw = batch_words(n);
  for (std::size_t w = 0; w < nw; ++w) words[w] = ~0ull;
  clear_tail_bits(words, n);
}

/// Calls fn(lane) for every set bit among the first `n` lanes.
template <typename Fn>
inline void for_each_lane(const std::uint64_t* words, std::size_t n,
                          Fn&& fn) {
  const std::size_t nw = batch_words(n);
  for (std::size_t w = 0; w < nw; ++w) {
    std::uint64_t word = words[w];
    while (word != 0) {
      const int bit = __builtin_ctzll(word);
      fn(w * 64 + static_cast<std::size_t>(bit));
      word &= word - 1;
    }
  }
}

}  // namespace gems::relational
