// Scalar expression AST shared by the relational engine and the graph
// path matcher: step conditions like `country = %Country1%` (paper Fig. 7)
// and relational WHERE clauses are both Exprs. Parsed by src/graql, bound
// against a scope (table schema or path-step schema) by bind.hpp, and
// evaluated by eval.hpp.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/value.hpp"

namespace gems::relational {

enum class BinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kAdd,
  kSub,
  kMul,
  kDiv,
};

enum class UnaryOp { kNot, kNeg };

std::string_view binary_op_name(BinaryOp op) noexcept;

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable expression node. Shared ownership lets ASTs embed
/// sub-expressions in several places (e.g. IR round-trips) cheaply.
struct Expr {
  enum class Kind { kLiteral, kColumnRef, kParameter, kUnary, kBinary };

  Kind kind;

  // kLiteral
  storage::Value literal;

  // kColumnRef — `qualifier.column` or bare `column` (empty qualifier).
  // The qualifier names a step type, step label or table alias; resolution
  // is the binder's job.
  std::string qualifier;
  std::string column;

  // kParameter — `%name%` placeholders substituted at bind time.
  std::string param_name;

  // kUnary (operand in lhs) / kBinary
  UnaryOp uop = UnaryOp::kNot;
  BinaryOp bop = BinaryOp::kAnd;
  ExprPtr lhs;
  ExprPtr rhs;

  // Source location, 1-based (0 = unknown, e.g. synthesized expressions).
  // `src_end_*` point one past the last character. Ignored by equals() —
  // two structurally identical expressions from different places are
  // equal. The graql layer wraps these into a diag SourceSpan; they live
  // here as plain integers because relational sits below graql.
  std::uint32_t src_line = 0;
  std::uint32_t src_column = 0;
  std::uint32_t src_end_line = 0;
  std::uint32_t src_end_column = 0;

  /// Leaf factories take an optional source position; make_unary and
  /// make_binary derive theirs from the operands (covering range).
  static ExprPtr make_literal(storage::Value v, std::uint32_t line = 0,
                              std::uint32_t column = 0,
                              std::uint32_t end_line = 0,
                              std::uint32_t end_column = 0);
  static ExprPtr make_column(std::string qualifier, std::string column,
                             std::uint32_t line = 0, std::uint32_t col = 0,
                             std::uint32_t end_line = 0,
                             std::uint32_t end_column = 0);
  static ExprPtr make_parameter(std::string name, std::uint32_t line = 0,
                                std::uint32_t column = 0,
                                std::uint32_t end_line = 0,
                                std::uint32_t end_column = 0);
  static ExprPtr make_unary(UnaryOp op, ExprPtr operand);
  static ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);

  /// GraQL-ish rendering, for error messages and IR dumps.
  std::string to_string() const;

  /// Structural equality (used by IR round-trip tests).
  bool equals(const Expr& other) const;
};

/// Splits a conjunction into its non-AND leaves: (a and (b and c)) -> a,b,c.
std::vector<ExprPtr> split_conjuncts(const ExprPtr& expr);

/// Rebuilds a conjunction from conjuncts (nullptr when empty).
ExprPtr conjoin(const std::vector<ExprPtr>& conjuncts);

/// Collects the distinct qualifiers referenced anywhere in `expr`
/// (including the empty qualifier if bare columns occur).
void collect_qualifiers(const ExprPtr& expr, std::vector<std::string>& out);

}  // namespace gems::relational
