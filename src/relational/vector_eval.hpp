// Compiled kernel trees: the vectorized counterpart of eval.cpp.
//
// A BoundExpr is compiled ONCE per statement into a VectorExpr tree; each
// node then evaluates whole RowBatches (batch.hpp) instead of being
// re-dispatched per row:
//
//  * kConst leaves pre-broadcast their value into lane arrays at compile
//    time (a NULL constant folds to an all-invalid vector),
//  * kColumnRef leaves view the column's storage directly for contiguous
//    windows and gather lanes for selection batches; validity windows are
//    extracted word-at-a-time from the column's DynamicBitset,
//  * comparisons run branch-free lane loops that pack results into bit
//    words (with AVX2 specializations behind runtime dispatch — see
//    vector_eval_simd.cpp — and portable scalar fallbacks, selectable
//    with -DGEMS_DISABLE_SIMD),
//  * and/or/not and NULL propagation are pure 64-bit word arithmetic
//    using the shared truth tables of null_semantics.hpp.
//
// Results are bit-identical to eval_cell for every batch size, including
// size 1 (property-tested; the row engine stays on as the oracle).
//
// Compilation requires every column slot to address a single source (the
// table-scan and matcher self-condition cases); multi-source expressions
// (cross-step predicates) return nullptr and stay on the row engine.
#pragma once

#include <memory>

#include "common/string_pool.hpp"
#include "relational/batch.hpp"
#include "relational/bound_expr.hpp"

namespace gems::relational {

class VectorExpr;
using VectorExprPtr = std::unique_ptr<const VectorExpr>;

/// Per-evaluation scratch: one VectorBuf per kernel node. Kernels are
/// immutable after compile; concurrent evaluations of one tree need one
/// scratch each (the parallel scan workers do exactly that).
struct EvalScratch {
  std::vector<VectorBuf> bufs;
};

class VectorExpr {
 public:
  /// Compiles `expr` against source id `source`. Returns nullptr when the
  /// expression references any other source (not vectorizable). `pool` is
  /// captured for varchar ordering comparisons; it must outlive the tree.
  static VectorExprPtr compile(const BoundExpr& expr, std::uint16_t source,
                               const StringPool& pool);

  std::size_t num_nodes() const noexcept { return num_nodes_; }
  storage::TypeKind out_kind() const noexcept { return type_; }

  EvalScratch make_scratch() const { return EvalScratch{
      std::vector<VectorBuf>(num_nodes_)}; }

  /// Evaluates over `batch` (batch.size <= kBatchRows). The returned
  /// view's pointers alias `scratch` and/or the source columns; they stay
  /// valid until the next eval with the same scratch.
  ValueVector eval(const RowBatch& batch, EvalScratch& scratch) const;

  ~VectorExpr();

 private:
  VectorExpr() = default;

  struct Builder;
  ValueVector eval_node(const RowBatch& batch, EvalScratch& scratch) const;
  ValueVector eval_const(const RowBatch& batch, EvalScratch& scratch) const;
  ValueVector eval_column(const RowBatch& batch,
                          EvalScratch& scratch) const;
  ValueVector eval_unary(const RowBatch& batch, EvalScratch& scratch) const;
  ValueVector eval_compare(const RowBatch& batch,
                           EvalScratch& scratch) const;
  ValueVector eval_logical(const RowBatch& batch,
                           EvalScratch& scratch) const;
  ValueVector eval_arith(const RowBatch& batch, EvalScratch& scratch) const;

  BoundExpr::Kind kind_ = BoundExpr::Kind::kConst;
  storage::TypeKind type_ = storage::TypeKind::kBool;  // output kind
  storage::ColumnIndex column_ = 0;                    // kColumnRef
  UnaryOp uop_ = UnaryOp::kNot;
  BinaryOp bop_ = BinaryOp::kAnd;
  std::unique_ptr<const VectorExpr> lhs_;
  std::unique_ptr<const VectorExpr> rhs_;
  std::uint32_t id_ = 0;          // scratch buffer slot
  std::uint32_t num_nodes_ = 0;   // root: total nodes in the tree
  const StringPool* pool_ = nullptr;

  // kConst: the folded cell and its compile-time broadcast lanes.
  Cell konst_;
  std::vector<std::int64_t> const_i64_;
  std::vector<double> const_f64_;
  std::vector<StringId> const_str_;
};

/// Evaluates a boolean kernel over `batch` and appends the *global* row
/// indices of accepting lanes (non-null true — Cell::truthy) to `out`.
void filter_batch(const VectorExpr& pred, const RowBatch& batch,
                  EvalScratch& scratch,
                  std::vector<storage::RowIndex>& out);

/// Appends `n` lanes of `v` to `column` (kinds must agree; Bool arrives
/// as bit words). The batch form of append_cell.
void append_vector(storage::Column& column, const ValueVector& v,
                   std::size_t n);

// ---- Hot compare kernels (SIMD dispatch surface) ------------------------

/// Comparison ops in BinaryOp order kEq..kGe, as a dense kernel index.
inline constexpr int cmp_index(BinaryOp op) noexcept {
  return static_cast<int>(op) - static_cast<int>(BinaryOp::kEq);
}

/// Lane comparators packing one result bit per lane. Semantics mirror
/// compare_cells' cmp3 (so double NaN compares "equal" to everything,
/// exactly like the row oracle). Bits at or past n are zero.
struct CmpKernels {
  using I64Fn = void (*)(const std::int64_t*, const std::int64_t*,
                         std::size_t, std::uint64_t*);
  using F64Fn = void (*)(const double*, const double*, std::size_t,
                         std::uint64_t*);
  I64Fn i64[6];
  F64Fn f64[6];
};

/// The active kernel table: AVX2 when the binary carries the AVX2 TU and
/// the CPU supports it, scalar otherwise.
const CmpKernels& cmp_kernels() noexcept;

/// Portable scalar table (the fallback; exposed for A/B tests).
const CmpKernels& scalar_cmp_kernels() noexcept;

/// AVX2 table, defined in vector_eval_simd.cpp. Only referenced when the
/// build carries that TU (GEMS_HAVE_AVX2_TU); call sites must still check
/// __builtin_cpu_supports("avx2") before using it.
const CmpKernels& avx2_cmp_kernels() noexcept;

}  // namespace gems::relational
