#include "relational/vector_eval.hpp"

#include <cstring>

#include "common/check.hpp"
#include "relational/eval.hpp"
#include "relational/null_semantics.hpp"

namespace gems::relational {

using storage::Column;
using storage::RowIndex;
using storage::TypeKind;

namespace {

// ---- Scalar compare kernels ---------------------------------------------
//
// All six comparison predicates expressed through `<` only, so the double
// versions inherit compare_cells' cmp3 semantics verbatim: a NaN operand
// makes both x<y and y<x false, which cmp3 reports as "equal" — Eq/Le/Ge
// accept, Ne/Lt/Gt reject. Plain ==/!= would disagree on NaN lanes.

template <typename Pred>
inline void produce_bits(std::size_t n, std::uint64_t* out, Pred&& pred) {
  const std::size_t nw = batch_words(n);
  for (std::size_t w = 0; w < nw; ++w) {
    const std::size_t lane0 = w * 64;
    const std::size_t lim = std::min<std::size_t>(64, n - lane0);
    std::uint64_t word = 0;
    for (std::size_t b = 0; b < lim; ++b) {
      word |= static_cast<std::uint64_t>(pred(lane0 + b) ? 1 : 0) << b;
    }
    out[w] = word;
  }
}

template <typename T, int Op>
inline bool cmp_pred(T x, T y) noexcept {
  if constexpr (Op == 0) {  // kEq: cmp3 == 0
    return !(x < y) && !(y < x);
  } else if constexpr (Op == 1) {  // kNe
    return (x < y) || (y < x);
  } else if constexpr (Op == 2) {  // kLt
    return x < y;
  } else if constexpr (Op == 3) {  // kLe: !(x > y)
    return !(y < x);
  } else if constexpr (Op == 4) {  // kGt
    return y < x;
  } else {  // kGe: !(x < y)
    return !(x < y);
  }
}

template <typename T, int Op>
void cmp_lanes_scalar(const T* a, const T* b, std::size_t n,
                      std::uint64_t* out) {
  produce_bits(n, out, [&](std::size_t i) { return cmp_pred<T, Op>(a[i], b[i]); });
}

constexpr CmpKernels kScalarKernels = {
    {cmp_lanes_scalar<std::int64_t, 0>, cmp_lanes_scalar<std::int64_t, 1>,
     cmp_lanes_scalar<std::int64_t, 2>, cmp_lanes_scalar<std::int64_t, 3>,
     cmp_lanes_scalar<std::int64_t, 4>, cmp_lanes_scalar<std::int64_t, 5>},
    {cmp_lanes_scalar<double, 0>, cmp_lanes_scalar<double, 1>,
     cmp_lanes_scalar<double, 2>, cmp_lanes_scalar<double, 3>,
     cmp_lanes_scalar<double, 4>, cmp_lanes_scalar<double, 5>},
};

// ---- Arithmetic kernels --------------------------------------------------
//
// Int64 arithmetic runs in unsigned space: lanes under a cleared validity
// bit hold unspecified payloads and must not trip signed-overflow UB; the
// wrap result on such lanes is discarded (appends mask them to zero, keys
// and filters consult the validity words first).

inline std::int64_t wrap_add(std::int64_t x, std::int64_t y) noexcept {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(x) +
                                   static_cast<std::uint64_t>(y));
}
inline std::int64_t wrap_sub(std::int64_t x, std::int64_t y) noexcept {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(x) -
                                   static_cast<std::uint64_t>(y));
}
inline std::int64_t wrap_mul(std::int64_t x, std::int64_t y) noexcept {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(x) *
                                   static_cast<std::uint64_t>(y));
}

inline bool is_cmp(BinaryOp op) noexcept {
  return op >= BinaryOp::kEq && op <= BinaryOp::kGe;
}

inline void and_words(const std::uint64_t* a, const std::uint64_t* b,
                      std::size_t n, std::uint64_t* out) noexcept {
  const std::size_t nw = batch_words(n);
  for (std::size_t w = 0; w < nw; ++w) out[w] = a[w] & b[w];
}

}  // namespace

const CmpKernels& scalar_cmp_kernels() noexcept { return kScalarKernels; }

const CmpKernels& cmp_kernels() noexcept {
  static const CmpKernels* const chosen = [] {
#if defined(GEMS_HAVE_AVX2_TU)
    if (__builtin_cpu_supports("avx2")) return &avx2_cmp_kernels();
#endif
    return &kScalarKernels;
  }();
  return *chosen;
}

// ---- Compilation ---------------------------------------------------------

struct VectorExpr::Builder {
  std::uint16_t source;
  const StringPool* pool;
  std::uint32_t next_id = 0;
  bool ok = true;

  using Node = std::unique_ptr<VectorExpr>;

  static bool references_columns(const BoundExpr& e) {
    switch (e.kind) {
      case BoundExpr::Kind::kConst:
        return false;
      case BoundExpr::Kind::kColumnRef:
        return true;
      case BoundExpr::Kind::kUnary:
        return references_columns(*e.lhs);
      case BoundExpr::Kind::kBinary:
        return references_columns(*e.lhs) || references_columns(*e.rhs);
    }
    GEMS_UNREACHABLE("bad bound expr kind");
  }

  Node make_const(const Cell& cell, TypeKind fallback_kind) {
    Node node(new VectorExpr());
    node->kind_ = BoundExpr::Kind::kConst;
    node->type_ = cell.null ? fallback_kind : cell.kind;
    node->konst_ = cell;
    node->id_ = next_id++;
    node->pool_ = pool;
    broadcast_const(*node);
    return node;
  }

  /// (Re)fills the compile-time lane arrays from node.konst_. NULL
  /// constants still get zero lanes: kernels read every lane
  /// unconditionally and need defined storage behind invalid bits.
  static void broadcast_const(VectorExpr& node) {
    const Cell& c = node.konst_;
    switch (node.type_) {
      case TypeKind::kBool:
        break;  // bits are broadcast per batch (tail masking)
      case TypeKind::kInt64:
      case TypeKind::kDate:
        node.const_i64_.assign(kBatchRows, c.null ? 0 : c.i);
        break;
      case TypeKind::kDouble:
        node.const_f64_.assign(kBatchRows, c.null ? 0.0 : c.d);
        break;
      case TypeKind::kVarchar:
        node.const_str_.assign(kBatchRows, c.null ? kInvalidStringId : c.s);
        break;
    }
  }

  /// Rewrites an int64 constant operand as double when the sibling forces
  /// numeric promotion, so the hot kernels never see mixed-kind inputs
  /// from constants.
  static void promote_const_to_double(VectorExpr& node) {
    GEMS_DCHECK(node.kind_ == BoundExpr::Kind::kConst);
    if (!node.konst_.null) {
      node.konst_ = Cell::of_double(static_cast<double>(node.konst_.i));
    }
    node.type_ = TypeKind::kDouble;
    node.const_i64_.clear();
    broadcast_const(node);
  }

  Node build(const BoundExpr& e) {
    if (!ok) return nullptr;
    // Fold column-free subtrees to a single constant via the row
    // evaluator itself — one semantics, zero drift.
    if (!references_columns(e)) {
      return make_const(eval_cell(e, {}, *pool), e.type.kind);
    }
    switch (e.kind) {
      case BoundExpr::Kind::kConst:
        GEMS_UNREACHABLE("const handled by folding");
      case BoundExpr::Kind::kColumnRef: {
        if (e.slot.source != source) {
          ok = false;  // other-source reference: not vectorizable here
          return nullptr;
        }
        Node node(new VectorExpr());
        node->kind_ = BoundExpr::Kind::kColumnRef;
        node->type_ = e.slot.type.kind;
        node->column_ = e.slot.column;
        node->id_ = next_id++;
        node->pool_ = pool;
        return node;
      }
      case BoundExpr::Kind::kUnary: {
        Node child = build(*e.lhs);
        if (!ok) return nullptr;
        Node node(new VectorExpr());
        node->kind_ = BoundExpr::Kind::kUnary;
        node->uop_ = e.uop;
        node->type_ = e.uop == UnaryOp::kNot ? TypeKind::kBool
                      : child->type_ == TypeKind::kDouble
                          ? TypeKind::kDouble
                          : TypeKind::kInt64;
        node->lhs_ = std::move(child);
        node->id_ = next_id++;
        node->pool_ = pool;
        return node;
      }
      case BoundExpr::Kind::kBinary: {
        Node l = build(*e.lhs);
        Node r = build(*e.rhs);
        if (!ok) return nullptr;
        Node node(new VectorExpr());
        node->kind_ = BoundExpr::Kind::kBinary;
        node->bop_ = e.bop;
        node->type_ = is_cmp(e.bop) || e.bop == BinaryOp::kAnd ||
                              e.bop == BinaryOp::kOr
                          ? TypeKind::kBool
                          : e.type.kind;
        // Numeric promotion: if either operand is double, fold int64
        // constants on the other side to double at compile time
        // (non-const int64 operands are promoted lane-wise at eval).
        const bool wants_f64 =
            (is_cmp(e.bop) || e.bop == BinaryOp::kAdd ||
             e.bop == BinaryOp::kSub || e.bop == BinaryOp::kMul ||
             e.bop == BinaryOp::kDiv) &&
            (l->type_ == TypeKind::kDouble || r->type_ == TypeKind::kDouble ||
             (!is_cmp(e.bop) && e.type.kind == TypeKind::kDouble));
        if (wants_f64) {
          for (VectorExpr* side : {l.get(), r.get()}) {
            if (side->kind_ == BoundExpr::Kind::kConst &&
                side->type_ == TypeKind::kInt64) {
              promote_const_to_double(*side);
            }
          }
        }
        node->lhs_ = std::move(l);
        node->rhs_ = std::move(r);
        node->id_ = next_id++;
        node->pool_ = pool;
        return node;
      }
    }
    GEMS_UNREACHABLE("bad bound expr kind");
  }
};

VectorExpr::~VectorExpr() = default;

VectorExprPtr VectorExpr::compile(const BoundExpr& expr, std::uint16_t source,
                                  const StringPool& pool) {
  Builder builder{source, &pool};
  std::unique_ptr<VectorExpr> root = builder.build(expr);
  if (!builder.ok || root == nullptr) return nullptr;
  root->num_nodes_ = builder.next_id;
  return root;
}

// ---- Evaluation ----------------------------------------------------------

ValueVector VectorExpr::eval(const RowBatch& batch,
                             EvalScratch& scratch) const {
  GEMS_DCHECK(batch.size > 0 && batch.size <= kBatchRows);
  GEMS_DCHECK(scratch.bufs.size() >= num_nodes_);
  return eval_node(batch, scratch);
}

ValueVector VectorExpr::eval_node(const RowBatch& batch,
                                  EvalScratch& scratch) const {
  switch (kind_) {
    case BoundExpr::Kind::kConst:
      return eval_const(batch, scratch);
    case BoundExpr::Kind::kColumnRef:
      return eval_column(batch, scratch);
    case BoundExpr::Kind::kUnary:
      return eval_unary(batch, scratch);
    case BoundExpr::Kind::kBinary:
      if (bop_ == BinaryOp::kAnd || bop_ == BinaryOp::kOr) {
        return eval_logical(batch, scratch);
      }
      if (is_cmp(bop_)) return eval_compare(batch, scratch);
      return eval_arith(batch, scratch);
  }
  GEMS_UNREACHABLE("bad kernel kind");
}

ValueVector VectorExpr::eval_const(const RowBatch& batch,
                                   EvalScratch& scratch) const {
  VectorBuf& buf = scratch.bufs[id_];
  const std::size_t n = batch.size;
  ValueVector out;
  out.kind = type_;
  if (konst_.null) {
    const std::size_t nw = batch_words(n);
    for (std::size_t w = 0; w < nw; ++w) buf.valid[w] = 0;
  } else {
    fill_ones_words(buf.valid.data(), n);
  }
  out.valid = buf.valid.data();
  switch (type_) {
    case TypeKind::kBool:
      if (!konst_.null && konst_.b) {
        fill_ones_words(buf.bits.data(), n);
      } else {
        const std::size_t nw = batch_words(n);
        for (std::size_t w = 0; w < nw; ++w) buf.bits[w] = 0;
      }
      out.bits = buf.bits.data();
      break;
    case TypeKind::kInt64:
    case TypeKind::kDate:
      out.i64 = const_i64_.data();
      break;
    case TypeKind::kDouble:
      out.f64 = const_f64_.data();
      break;
    case TypeKind::kVarchar:
      out.str = const_str_.data();
      break;
  }
  return out;
}

ValueVector VectorExpr::eval_column(const RowBatch& batch,
                                    EvalScratch& scratch) const {
  VectorBuf& buf = scratch.bufs[id_];
  const Column& col = batch.table->column(column_);
  const std::size_t n = batch.size;
  gather_valid_words(col, batch, buf.valid.data());
  ValueVector out;
  out.kind = type_;
  out.valid = buf.valid.data();
  switch (type_) {
    case TypeKind::kInt64:
    case TypeKind::kDate: {
      const std::span<const std::int64_t> lanes = col.int_span();
      if (batch.contiguous()) {
        out.i64 = lanes.data() + batch.base;
      } else {
        std::int64_t* dst = buf.i64_lanes();
        for (std::size_t i = 0; i < n; ++i) dst[i] = lanes[batch.rows[i]];
        out.i64 = dst;
      }
      break;
    }
    case TypeKind::kDouble: {
      const std::span<const double> lanes = col.double_span();
      if (batch.contiguous()) {
        out.f64 = lanes.data() + batch.base;
      } else {
        double* dst = buf.f64_lanes();
        for (std::size_t i = 0; i < n; ++i) dst[i] = lanes[batch.rows[i]];
        out.f64 = dst;
      }
      break;
    }
    case TypeKind::kVarchar: {
      const std::span<const StringId> lanes = col.string_span();
      if (batch.contiguous()) {
        out.str = lanes.data() + batch.base;
      } else {
        StringId* dst = buf.str_lanes();
        for (std::size_t i = 0; i < n; ++i) dst[i] = lanes[batch.rows[i]];
        out.str = dst;
      }
      break;
    }
    case TypeKind::kBool: {
      // Bool columns store int64 0/1 lanes; pack to bit-words. NULL lanes
      // store 0, so value ⊆ valid holds by construction, but mask anyway
      // to keep the invariant independent of storage guarantees.
      const std::span<const std::int64_t> lanes = col.int_span();
      if (batch.contiguous()) {
        const std::int64_t* src = lanes.data() + batch.base;
        produce_bits(n, buf.bits.data(),
                     [&](std::size_t i) { return src[i] != 0; });
      } else {
        produce_bits(n, buf.bits.data(), [&](std::size_t i) {
          return lanes[batch.rows[i]] != 0;
        });
      }
      const std::size_t nw = batch_words(n);
      for (std::size_t w = 0; w < nw; ++w) buf.bits[w] &= buf.valid[w];
      out.bits = buf.bits.data();
      break;
    }
  }
  return out;
}

ValueVector VectorExpr::eval_unary(const RowBatch& batch,
                                   EvalScratch& scratch) const {
  const ValueVector v = lhs_->eval_node(batch, scratch);
  VectorBuf& buf = scratch.bufs[id_];
  const std::size_t n = batch.size;
  const std::size_t nw = batch_words(n);
  ValueVector out;
  out.kind = type_;
  if (uop_ == UnaryOp::kNot) {
    GEMS_DCHECK(v.kind == TypeKind::kBool);
    for (std::size_t w = 0; w < nw; ++w) {
      not3_words(v.bits[w], v.valid[w], buf.bits[w], buf.valid[w]);
    }
    out.bits = buf.bits.data();
    out.valid = buf.valid.data();
    return out;
  }
  // kNeg: lanes flip, validity is shared with the operand.
  out.valid = v.valid;
  if (type_ == TypeKind::kDouble) {
    const double* src =
        v.kind == TypeKind::kDouble ? v.f64 : nullptr;
    double* dst = buf.f64_lanes();
    if (src != nullptr) {
      for (std::size_t i = 0; i < n; ++i) dst[i] = -src[i];
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        dst[i] = -static_cast<double>(v.i64[i]);
      }
    }
    out.f64 = dst;
  } else {
    std::int64_t* dst = buf.i64_lanes();
    for (std::size_t i = 0; i < n; ++i) dst[i] = wrap_sub(0, v.i64[i]);
    out.i64 = dst;
  }
  return out;
}

ValueVector VectorExpr::eval_logical(const RowBatch& batch,
                                     EvalScratch& scratch) const {
  const ValueVector l = lhs_->eval_node(batch, scratch);
  const ValueVector r = rhs_->eval_node(batch, scratch);
  GEMS_DCHECK(l.kind == TypeKind::kBool && r.kind == TypeKind::kBool);
  VectorBuf& buf = scratch.bufs[id_];
  const std::size_t nw = batch_words(batch.size);
  if (bop_ == BinaryOp::kAnd) {
    for (std::size_t w = 0; w < nw; ++w) {
      and3_words(l.bits[w], l.valid[w], r.bits[w], r.valid[w], buf.bits[w],
                 buf.valid[w]);
    }
  } else {
    for (std::size_t w = 0; w < nw; ++w) {
      or3_words(l.bits[w], l.valid[w], r.bits[w], r.valid[w], buf.bits[w],
                buf.valid[w]);
    }
  }
  ValueVector out;
  out.kind = TypeKind::kBool;
  out.bits = buf.bits.data();
  out.valid = buf.valid.data();
  return out;
}

namespace {

/// Lane view of `v` as doubles: pass-through for double vectors,
/// otherwise an int64→double conversion into `buf` (the producing node's
/// scratch lane array, unused by int64 outputs).
const double* as_f64_lanes(const ValueVector& v, VectorBuf& buf,
                           std::size_t n) {
  if (v.kind == TypeKind::kDouble) return v.f64;
  double* dst = buf.f64_lanes();
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<double>(v.i64[i]);
  }
  return dst;
}

}  // namespace

ValueVector VectorExpr::eval_compare(const RowBatch& batch,
                                     EvalScratch& scratch) const {
  const ValueVector l = lhs_->eval_node(batch, scratch);
  const ValueVector r = rhs_->eval_node(batch, scratch);
  VectorBuf& buf = scratch.bufs[id_];
  const std::size_t n = batch.size;
  const std::size_t nw = batch_words(n);
  and_words(l.valid, r.valid, n, buf.valid.data());
  const int op = cmp_index(bop_);

  if (l.kind == TypeKind::kVarchar) {
    GEMS_DCHECK(r.kind == TypeKind::kVarchar);
    if (bop_ == BinaryOp::kEq || bop_ == BinaryOp::kNe) {
      // Interned: id equality <=> string equality (mirrors eval_binary).
      const bool want_eq = bop_ == BinaryOp::kEq;
      produce_bits(n, buf.bits.data(), [&](std::size_t i) {
        return (l.str[i] == r.str[i]) == want_eq;
      });
    } else {
      // Ordering needs the pool; invalid lanes may hold kInvalidStringId,
      // so only walk lanes under the combined validity mask.
      for (std::size_t w = 0; w < nw; ++w) buf.bits[w] = 0;
      for_each_lane(buf.valid.data(), n, [&](std::size_t i) {
        const StringId a = l.str[i];
        const StringId b = r.str[i];
        const int c =
            a == b ? 0 : (pool_->view(a).compare(pool_->view(b)) < 0 ? -1 : 1);
        const bool pass = op == 2   ? c < 0
                          : op == 3 ? c <= 0
                          : op == 4 ? c > 0
                                    : c >= 0;
        if (pass) buf.bits[i >> 6] |= 1ull << (i & 63);
      });
      ValueVector out;
      out.kind = TypeKind::kBool;
      out.bits = buf.bits.data();
      out.valid = buf.valid.data();
      return out;
    }
  } else if (l.kind == TypeKind::kBool) {
    GEMS_DCHECK(r.kind == TypeKind::kBool);
    // cmp3 over 0/1 lanes, as pure word arithmetic.
    for (std::size_t w = 0; w < nw; ++w) {
      const std::uint64_t a = l.bits[w];
      const std::uint64_t b = r.bits[w];
      std::uint64_t word = 0;
      switch (op) {
        case 0: word = ~(a ^ b); break;  // ==
        case 1: word = a ^ b; break;     // !=
        case 2: word = ~a & b; break;    // <
        case 3: word = ~a | b; break;    // <=
        case 4: word = a & ~b; break;    // >
        case 5: word = a | ~b; break;    // >=
      }
      buf.bits[w] = word;
    }
  } else if (l.kind == TypeKind::kDouble || r.kind == TypeKind::kDouble) {
    const double* a = as_f64_lanes(l, scratch.bufs[lhs_->id_], n);
    const double* b = as_f64_lanes(r, scratch.bufs[rhs_->id_], n);
    cmp_kernels().f64[op](a, b, n, buf.bits.data());
  } else {
    // Int64 and Date lanes share the i64 kernels.
    cmp_kernels().i64[op](l.i64, r.i64, n, buf.bits.data());
  }

  // Mask garbage lanes (invalid inputs) and enforce value ⊆ valid.
  for (std::size_t w = 0; w < nw; ++w) buf.bits[w] &= buf.valid[w];
  ValueVector out;
  out.kind = TypeKind::kBool;
  out.bits = buf.bits.data();
  out.valid = buf.valid.data();
  return out;
}

ValueVector VectorExpr::eval_arith(const RowBatch& batch,
                                   EvalScratch& scratch) const {
  const ValueVector l = lhs_->eval_node(batch, scratch);
  const ValueVector r = rhs_->eval_node(batch, scratch);
  VectorBuf& buf = scratch.bufs[id_];
  const std::size_t n = batch.size;
  and_words(l.valid, r.valid, n, buf.valid.data());
  ValueVector out;
  out.kind = type_;
  out.valid = buf.valid.data();

  if (type_ == TypeKind::kInt64) {
    GEMS_DCHECK(l.kind != TypeKind::kDouble && r.kind != TypeKind::kDouble);
    std::int64_t* dst = buf.i64_lanes();
    switch (bop_) {
      case BinaryOp::kAdd:
        for (std::size_t i = 0; i < n; ++i) dst[i] = wrap_add(l.i64[i], r.i64[i]);
        break;
      case BinaryOp::kSub:
        for (std::size_t i = 0; i < n; ++i) dst[i] = wrap_sub(l.i64[i], r.i64[i]);
        break;
      case BinaryOp::kMul:
        for (std::size_t i = 0; i < n; ++i) dst[i] = wrap_mul(l.i64[i], r.i64[i]);
        break;
      default:
        GEMS_UNREACHABLE("int division is typed double");
    }
    out.i64 = dst;
    return out;
  }

  const double* a = as_f64_lanes(l, scratch.bufs[lhs_->id_], n);
  const double* b = as_f64_lanes(r, scratch.bufs[rhs_->id_], n);
  double* dst = buf.f64_lanes();
  switch (bop_) {
    case BinaryOp::kAdd:
      for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] + b[i];
      break;
    case BinaryOp::kSub:
      for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] - b[i];
      break;
    case BinaryOp::kMul:
      for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] * b[i];
      break;
    case BinaryOp::kDiv: {
      // SQL: x/0 is NULL. IEEE division never traps with default masks,
      // so divide everything and clear validity where the divisor is
      // (+/-)0.0 — exactly the lanes eval_binary nulls out.
      for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] / b[i];
      std::uint64_t zero_mask[kBatchWords];
      produce_bits(n, zero_mask, [&](std::size_t i) { return b[i] == 0.0; });
      const std::size_t nw = batch_words(n);
      for (std::size_t w = 0; w < nw; ++w) buf.valid[w] &= ~zero_mask[w];
      break;
    }
    default:
      GEMS_UNREACHABLE("bad arithmetic op");
  }
  out.f64 = dst;
  return out;
}

// ---- Operator-facing helpers --------------------------------------------

void filter_batch(const VectorExpr& pred, const RowBatch& batch,
                  EvalScratch& scratch, std::vector<RowIndex>& out) {
  GEMS_DCHECK(pred.out_kind() == TypeKind::kBool);
  const ValueVector v = pred.eval(batch, scratch);
  // bits ⊆ valid, so set bits are exactly the truthy (non-null true) lanes.
  if (batch.contiguous()) {
    for_each_lane(v.bits, batch.size, [&](std::size_t i) {
      out.push_back(batch.base + static_cast<RowIndex>(i));
    });
  } else {
    for_each_lane(v.bits, batch.size,
                  [&](std::size_t i) { out.push_back(batch.rows[i]); });
  }
}

void append_vector(Column& column, const ValueVector& v, std::size_t n) {
  switch (column.type().kind) {
    case TypeKind::kBool:
      GEMS_DCHECK(v.kind == TypeKind::kBool);
      column.append_bool_bits(v.bits, v.valid, n);
      return;
    case TypeKind::kInt64:
    case TypeKind::kDate:
      GEMS_DCHECK(v.i64 != nullptr);
      column.append_lanes_int64(v.i64, v.valid, n);
      return;
    case TypeKind::kDouble:
      if (v.kind == TypeKind::kDouble) {
        column.append_lanes_double(v.f64, v.valid, n);
      } else {
        // Int64 lanes into a double column: the batch form of
        // append_cell's numeric promotion.
        double lanes[kBatchRows];
        GEMS_DCHECK(n <= kBatchRows);
        for (std::size_t i = 0; i < n; ++i) {
          lanes[i] = static_cast<double>(v.i64[i]);
        }
        column.append_lanes_double(lanes, v.valid, n);
      }
      return;
    case TypeKind::kVarchar:
      GEMS_DCHECK(v.kind == TypeKind::kVarchar);
      column.append_lanes_string(v.str, v.valid, n);
      return;
  }
  GEMS_UNREACHABLE("bad column kind");
}

}  // namespace gems::relational
