// AVX2 specializations of the hot compare kernels. This TU is the only
// one compiled with -mavx2 (see src/relational/CMakeLists.txt); the rest
// of the library stays at the baseline ISA and picks these up through the
// runtime-dispatched cmp_kernels() table, so the same binary runs on
// pre-AVX2 hardware. -DGEMS_DISABLE_SIMD drops the TU entirely and the
// dispatcher keeps the scalar table.
//
// Semantics contract (property-tested against the row engine): identical
// bit output to cmp_lanes_scalar, including double NaN lanes — cmp3
// treats an unordered pair as "equal", hence the _UQ/_OQ predicate picks
// below (EQ_UQ accepts unordered, NEQ_OQ rejects it, etc.).
#include "relational/vector_eval.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace gems::relational {

namespace {

// ---- 4-lane comparison blocks → 4-bit masks ------------------------------

template <int Op>
inline std::uint32_t mask4_i64(const std::int64_t* a,
                               const std::int64_t* b) noexcept {
  const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  __m256i m;
  bool invert = false;
  if constexpr (Op == 0) {  // ==
    m = _mm256_cmpeq_epi64(va, vb);
  } else if constexpr (Op == 1) {  // !=
    m = _mm256_cmpeq_epi64(va, vb);
    invert = true;
  } else if constexpr (Op == 2) {  // <
    m = _mm256_cmpgt_epi64(vb, va);
  } else if constexpr (Op == 3) {  // <=  (= !(a > b))
    m = _mm256_cmpgt_epi64(va, vb);
    invert = true;
  } else if constexpr (Op == 4) {  // >
    m = _mm256_cmpgt_epi64(va, vb);
  } else {  // >=  (= !(a < b))
    m = _mm256_cmpgt_epi64(vb, va);
    invert = true;
  }
  const std::uint32_t bits = static_cast<std::uint32_t>(
      _mm256_movemask_pd(_mm256_castsi256_pd(m)));
  return invert ? bits ^ 0xFu : bits;
}

template <int Op>
inline std::uint32_t mask4_f64(const double* a, const double* b) noexcept {
  const __m256d va = _mm256_loadu_pd(a);
  const __m256d vb = _mm256_loadu_pd(b);
  __m256d m;
  if constexpr (Op == 0) {  // cmp3 == 0: equal OR unordered (NaN lanes pass)
    m = _mm256_cmp_pd(va, vb, _CMP_EQ_UQ);
  } else if constexpr (Op == 1) {  // cmp3 != 0: ordered and not equal
    m = _mm256_cmp_pd(va, vb, _CMP_NEQ_OQ);
  } else if constexpr (Op == 2) {  // cmp3 < 0: ordered less
    m = _mm256_cmp_pd(va, vb, _CMP_LT_OQ);
  } else if constexpr (Op == 3) {  // cmp3 <= 0: not greater (NaN passes)
    m = _mm256_cmp_pd(va, vb, _CMP_NGT_US);
  } else if constexpr (Op == 4) {  // cmp3 > 0: ordered greater
    m = _mm256_cmp_pd(va, vb, _CMP_GT_OQ);
  } else {  // cmp3 >= 0: not less (NaN passes)
    m = _mm256_cmp_pd(va, vb, _CMP_NLT_US);
  }
  return static_cast<std::uint32_t>(_mm256_movemask_pd(m));
}

// ---- Scalar tails (same formulas as the portable kernels) ----------------

template <typename T, int Op>
inline bool tail_pred(T x, T y) noexcept {
  if constexpr (Op == 0) {
    return !(x < y) && !(y < x);
  } else if constexpr (Op == 1) {
    return (x < y) || (y < x);
  } else if constexpr (Op == 2) {
    return x < y;
  } else if constexpr (Op == 3) {
    return !(y < x);
  } else if constexpr (Op == 4) {
    return y < x;
  } else {
    return !(x < y);
  }
}

// ---- Word assembly driver ------------------------------------------------

template <typename T, int Op, std::uint32_t (*Mask4)(const T*, const T*)>
void cmp_lanes_avx2(const T* a, const T* b, std::size_t n,
                    std::uint64_t* out) {
  std::size_t i = 0;
  std::size_t w = 0;
  const std::size_t full = (n / 64) * 64;
  for (; i < full; i += 64, ++w) {
    std::uint64_t word = 0;
    for (std::size_t k = 0; k < 64; k += 4) {
      word |= static_cast<std::uint64_t>(Mask4(a + i + k, b + i + k)) << k;
    }
    out[w] = word;
  }
  if (i < n) {
    std::uint64_t word = 0;
    std::size_t k = 0;
    for (; i + k + 4 <= n; k += 4) {
      word |= static_cast<std::uint64_t>(Mask4(a + i + k, b + i + k)) << k;
    }
    for (; i + k < n; ++k) {
      word |= static_cast<std::uint64_t>(
                  tail_pred<T, Op>(a[i + k], b[i + k]) ? 1 : 0)
              << k;
    }
    out[w] = word;
  }
}

template <int Op>
void cmp_i64_avx2(const std::int64_t* a, const std::int64_t* b, std::size_t n,
                  std::uint64_t* out) {
  cmp_lanes_avx2<std::int64_t, Op, mask4_i64<Op>>(a, b, n, out);
}

template <int Op>
void cmp_f64_avx2(const double* a, const double* b, std::size_t n,
                  std::uint64_t* out) {
  cmp_lanes_avx2<double, Op, mask4_f64<Op>>(a, b, n, out);
}

constexpr CmpKernels kAvx2Kernels = {
    {cmp_i64_avx2<0>, cmp_i64_avx2<1>, cmp_i64_avx2<2>, cmp_i64_avx2<3>,
     cmp_i64_avx2<4>, cmp_i64_avx2<5>},
    {cmp_f64_avx2<0>, cmp_f64_avx2<1>, cmp_f64_avx2<2>, cmp_f64_avx2<3>,
     cmp_f64_avx2<4>, cmp_f64_avx2<5>},
};

}  // namespace

const CmpKernels& avx2_cmp_kernels() noexcept { return kAvx2Kernels; }

}  // namespace gems::relational

#endif  // defined(__AVX2__)
