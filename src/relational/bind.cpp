#include "relational/bound_expr.hpp"

namespace gems::relational {

using storage::DataType;
using storage::TypeKind;
using storage::Value;

Result<Slot> TableScope::resolve(std::string_view qualifier,
                                 std::string_view column) const {
  if (!qualifier.empty() && qualifier != alias_ &&
      qualifier != table_.name()) {
    return not_found("unknown qualifier '" + std::string(qualifier) +
                     "' (expected '" + table_.name() + "'" +
                     (alias_.empty() ? "" : " or alias '" + alias_ + "'") +
                     ")");
  }
  auto idx = table_.schema().find(column);
  if (!idx) {
    return not_found("table '" + table_.name() + "' has no column '" +
                     std::string(column) + "'");
  }
  return Slot{0, *idx, table_.schema().column(*idx).type};
}

namespace {

Cell cell_from_value(const Value& v, StringPool& pool) {
  if (v.is_null()) return Cell::null_cell();
  switch (v.kind()) {
    case TypeKind::kBool:
      return Cell::of_bool(v.as_bool());
    case TypeKind::kInt64:
      return Cell::of_int64(v.as_int64());
    case TypeKind::kDate:
      return Cell::of_int64(v.as_int64(), TypeKind::kDate);
    case TypeKind::kDouble:
      return Cell::of_double(v.as_double());
    case TypeKind::kVarchar:
      return Cell::of_string(pool.intern(v.as_string()));
  }
  GEMS_UNREACHABLE("bad value kind");
}

DataType type_of_value(const Value& v) {
  if (v.is_null()) return DataType::int64();  // placeholder; nulls adapt
  switch (v.kind()) {
    case TypeKind::kBool:
      return DataType::boolean();
    case TypeKind::kInt64:
      return DataType::int64();
    case TypeKind::kDate:
      return DataType::date();
    case TypeKind::kDouble:
      return DataType::float64();
    case TypeKind::kVarchar:
      return DataType::varchar(
          static_cast<std::uint32_t>(v.as_string().size()));
  }
  GEMS_UNREACHABLE("bad value kind");
}

bool is_comparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool is_logical(BinaryOp op) {
  return op == BinaryOp::kAnd || op == BinaryOp::kOr;
}

Status op_type_error(BinaryOp op, const DataType& l, const DataType& r) {
  return type_error("operator '" + std::string(binary_op_name(op)) +
                    "' cannot combine " + l.to_string() + " and " +
                    r.to_string());
}

}  // namespace

Result<BoundExprPtr> bind_expr(const ExprPtr& expr, const Scope& scope,
                               const ParamMap& params, StringPool& pool) {
  GEMS_CHECK(expr != nullptr);
  auto out = std::make_unique<BoundExpr>();
  switch (expr->kind) {
    case Expr::Kind::kLiteral: {
      out->kind = BoundExpr::Kind::kConst;
      out->constant = cell_from_value(expr->literal, pool);
      out->type = type_of_value(expr->literal);
      return out;
    }
    case Expr::Kind::kParameter: {
      auto it = params.find(expr->param_name);
      if (it == params.end()) {
        return invalid_argument("unbound query parameter %" +
                                expr->param_name + "%");
      }
      out->kind = BoundExpr::Kind::kConst;
      out->constant = cell_from_value(it->second, pool);
      out->type = type_of_value(it->second);
      return out;
    }
    case Expr::Kind::kColumnRef: {
      GEMS_ASSIGN_OR_RETURN(out->slot,
                            scope.resolve(expr->qualifier, expr->column));
      out->kind = BoundExpr::Kind::kColumnRef;
      out->type = out->slot.type;
      return out;
    }
    case Expr::Kind::kUnary: {
      GEMS_ASSIGN_OR_RETURN(out->lhs,
                            bind_expr(expr->lhs, scope, params, pool));
      out->kind = BoundExpr::Kind::kUnary;
      out->uop = expr->uop;
      if (expr->uop == UnaryOp::kNot) {
        if (out->lhs->type.kind != TypeKind::kBool) {
          return type_error("'not' requires a boolean operand, got " +
                            out->lhs->type.to_string());
        }
        out->type = DataType::boolean();
      } else {  // kNeg
        if (!out->lhs->type.is_numeric()) {
          return type_error("unary '-' requires a numeric operand, got " +
                            out->lhs->type.to_string());
        }
        out->type = out->lhs->type;
      }
      return out;
    }
    case Expr::Kind::kBinary: {
      GEMS_ASSIGN_OR_RETURN(out->lhs,
                            bind_expr(expr->lhs, scope, params, pool));
      GEMS_ASSIGN_OR_RETURN(out->rhs,
                            bind_expr(expr->rhs, scope, params, pool));
      out->kind = BoundExpr::Kind::kBinary;
      out->bop = expr->bop;
      const DataType& lt = out->lhs->type;
      const DataType& rt = out->rhs->type;
      if (is_logical(expr->bop)) {
        if (lt.kind != TypeKind::kBool || rt.kind != TypeKind::kBool) {
          return op_type_error(expr->bop, lt, rt);
        }
        out->type = DataType::boolean();
      } else if (is_comparison(expr->bop)) {
        // The paper's example of a rejected query: "comparing a date to a
        // floating-point number" — enforced here.
        if (!lt.comparable_with(rt)) return op_type_error(expr->bop, lt, rt);
        out->type = DataType::boolean();
      } else {  // arithmetic
        if (!lt.is_numeric() || !rt.is_numeric()) {
          return op_type_error(expr->bop, lt, rt);
        }
        out->type = (lt.kind == TypeKind::kDouble ||
                     rt.kind == TypeKind::kDouble ||
                     expr->bop == BinaryOp::kDiv)
                        ? DataType::float64()
                        : DataType::int64();
      }
      return out;
    }
  }
  GEMS_UNREACHABLE("bad expr kind");
}

Result<BoundExprPtr> bind_predicate(const ExprPtr& expr, const Scope& scope,
                                    const ParamMap& params, StringPool& pool) {
  GEMS_ASSIGN_OR_RETURN(auto bound, bind_expr(expr, scope, params, pool));
  if (bound->type.kind != TypeKind::kBool) {
    return type_error("condition '" + expr->to_string() +
                      "' is not boolean (type " + bound->type.to_string() +
                      ")");
  }
  return bound;
}

}  // namespace gems::relational
