#include "store/snapshot.hpp"

#include <utility>

#include "common/crc32.hpp"
#include "graql/ir.hpp"
#include "store/format.hpp"

namespace gems::store {

namespace {

using graph::EdgeType;
using graph::EdgeTypeId;
using graph::VertexIndex;
using graph::VertexType;
using graph::VertexTypeId;
using storage::Column;
using storage::ColumnDef;
using storage::RowIndex;
using storage::Schema;
using storage::Table;
using storage::TablePtr;
using storage::TypeKind;

// Source-table reference modes for vertex types. Almost always the source
// is a catalog table referenced by name (shared TablePtr after restore);
// the inline mode covers the corner where an `into table` overwrote the
// catalog entry after the vertex type was built, leaving the type bound
// to a table the catalog no longer points at.
constexpr std::uint8_t kSourceByName = 1;
constexpr std::uint8_t kSourceInline = 0;

void encode_bitset(Writer& w, const DynamicBitset& b) {
  w.u64(b.size());
  w.pod_array<std::uint64_t>(b.words());
}

Result<DynamicBitset> decode_bitset(Reader& r, const char* what) {
  const std::size_t at = r.pos();
  GEMS_ASSIGN_OR_RETURN(std::uint64_t size, r.u64());
  GEMS_ASSIGN_OR_RETURN(std::vector<std::uint64_t> words,
                        r.pod_array<std::uint64_t>(what));
  auto bits = DynamicBitset::from_words(static_cast<std::size_t>(size),
                                        std::move(words));
  if (!bits.is_ok()) return r.corrupt(what + (": " + bits.status().message()), at);
  return std::move(bits).value();
}

void encode_table(Writer& w, const Table& t) {
  w.str(t.name());
  w.u32(static_cast<std::uint32_t>(t.schema().num_columns()));
  for (const ColumnDef& def : t.schema().columns()) {
    w.str(def.name);
    w.u8(static_cast<std::uint8_t>(def.type.kind));
    w.u32(def.type.varchar_length);
  }
  w.u64(t.num_rows());
  for (std::size_t c = 0; c < t.num_columns(); ++c) {
    const Column& col = t.column(static_cast<storage::ColumnIndex>(c));
    switch (col.type().kind) {
      case TypeKind::kBool:
      case TypeKind::kInt64:
      case TypeKind::kDate:
        w.pod_array<std::int64_t>(col.int_span());
        break;
      case TypeKind::kDouble:
        w.pod_array<double>(col.double_span());
        break;
      case TypeKind::kVarchar:
        w.pod_array<StringId>(col.string_span());
        break;
    }
    encode_bitset(w, col.validity());
  }
}

Result<TablePtr> decode_table(Reader& r, StringPool& pool) {
  const std::size_t table_at = r.pos();
  GEMS_ASSIGN_OR_RETURN(std::string name, r.str());
  GEMS_ASSIGN_OR_RETURN(std::uint32_t ncols, r.u32());
  if (ncols > (1u << 20)) {
    return r.corrupt("table '" + name + "': implausible column count " +
                         std::to_string(ncols),
                     table_at);
  }
  std::vector<ColumnDef> defs;
  defs.reserve(ncols);
  for (std::uint32_t c = 0; c < ncols; ++c) {
    ColumnDef def;
    GEMS_ASSIGN_OR_RETURN(def.name, r.str());
    GEMS_ASSIGN_OR_RETURN(std::uint8_t kind, r.u8());
    if (kind > static_cast<std::uint8_t>(TypeKind::kDate)) {
      return r.corrupt("table '" + name + "': bad column kind " +
                           std::to_string(kind),
                       table_at);
    }
    def.type.kind = static_cast<TypeKind>(kind);
    GEMS_ASSIGN_OR_RETURN(def.type.varchar_length, r.u32());
    defs.push_back(std::move(def));
  }
  auto schema = Schema::create(std::move(defs));
  if (!schema.is_ok()) {
    return r.corrupt("table '" + name + "': " + schema.status().message(),
                     table_at);
  }
  GEMS_ASSIGN_OR_RETURN(std::uint64_t nrows, r.u64());
  auto table =
      std::make_shared<Table>(name, std::move(schema).value(), pool);
  for (std::uint32_t c = 0; c < ncols; ++c) {
    const std::size_t col_at = r.pos();
    Column& col = table->column_mut(c);
    Status load = Status::ok();
    switch (col.type().kind) {
      case TypeKind::kBool:
      case TypeKind::kInt64:
      case TypeKind::kDate: {
        GEMS_ASSIGN_OR_RETURN(std::vector<std::int64_t> data,
                              r.pod_array<std::int64_t>("int column"));
        GEMS_ASSIGN_OR_RETURN(DynamicBitset bits,
                              decode_bitset(r, "column validity"));
        load = col.load_ints(std::move(data), std::move(bits));
        break;
      }
      case TypeKind::kDouble: {
        GEMS_ASSIGN_OR_RETURN(std::vector<double> data,
                              r.pod_array<double>("double column"));
        GEMS_ASSIGN_OR_RETURN(DynamicBitset bits,
                              decode_bitset(r, "column validity"));
        load = col.load_doubles(std::move(data), std::move(bits));
        break;
      }
      case TypeKind::kVarchar: {
        GEMS_ASSIGN_OR_RETURN(std::vector<StringId> data,
                              r.pod_array<StringId>("varchar column"));
        for (const StringId id : data) {
          if (id != kInvalidStringId && id >= pool.size()) {
            return r.corrupt("table '" + name + "': string id " +
                                 std::to_string(id) + " outside pool (" +
                                 std::to_string(pool.size()) + " strings)",
                             col_at);
          }
        }
        GEMS_ASSIGN_OR_RETURN(DynamicBitset bits,
                              decode_bitset(r, "column validity"));
        load = col.load_strings(std::move(data), std::move(bits));
        break;
      }
    }
    if (!load.is_ok()) {
      return r.corrupt("table '" + name + "': " + load.message(), col_at);
    }
  }
  const Status finish = table->finish_restore();
  if (!finish.is_ok()) {
    return r.corrupt("table '" + name + "': " + finish.message(), table_at);
  }
  if (table->num_rows() != nrows) {
    return r.corrupt("table '" + name + "': row count " +
                         std::to_string(table->num_rows()) +
                         " != declared " + std::to_string(nrows),
                     table_at);
  }
  return table;
}

void encode_body(const exec::ExecContext& ctx, std::uint64_t wal_seq,
                 std::vector<std::uint8_t>& out) {
  Writer w(out);
  w.u64(wal_seq);

  // String pool, in id order (deterministic; ids in column data stay
  // valid because restore re-interns in the same order). The pool is
  // database-global and append-only, and checkpoints encode pinned epochs
  // outside every database lock — capture one consistent prefix under a
  // single for_each (one lock acquisition) rather than calling size()
  // separately, which could tear the count against the entries when a
  // writer interns concurrently.
  std::vector<std::string_view> pool_strings;
  ctx.pool->for_each([&](StringId, std::string_view s) {
    pool_strings.push_back(s);  // views are stable: storage never relocates
  });
  w.u64(pool_strings.size());
  for (const std::string_view s : pool_strings) w.str(s);

  // Catalog tables, in name order (names() sorts).
  const std::vector<std::string> names = ctx.tables.names();
  w.u32(static_cast<std::uint32_t>(names.size()));
  for (const std::string& name : names) {
    encode_table(w, *ctx.tables.find(name).value());
  }

  // DDL declarations, as a single GraQL IR script (reuses the IR codec
  // for the expression trees inside the decls).
  graql::Script decls;
  decls.statements.reserve(ctx.vertex_decls.size() + ctx.edge_decls.size());
  for (const auto& d : ctx.vertex_decls) {
    decls.statements.push_back(graql::CreateVertexStmt{d});
  }
  for (const auto& d : ctx.edge_decls) {
    decls.statements.push_back(graql::CreateEdgeStmt{d});
  }
  w.u32(static_cast<std::uint32_t>(ctx.vertex_decls.size()));
  w.u32(static_cast<std::uint32_t>(ctx.edge_decls.size()));
  const std::vector<std::uint8_t> script = graql::encode_script(decls);
  w.pod_array<std::uint8_t>(script);

  // Built vertex types, in id order.
  w.u32(static_cast<std::uint32_t>(ctx.graph.num_vertex_types()));
  for (std::size_t i = 0; i < ctx.graph.num_vertex_types(); ++i) {
    const VertexType& vt =
        ctx.graph.vertex_type(static_cast<VertexTypeId>(i));
    w.str(vt.name());
    auto by_name = ctx.tables.find(vt.source().name());
    if (by_name.is_ok() && by_name.value().get() == &vt.source()) {
      w.u8(kSourceByName);
      w.str(vt.source().name());
    } else {
      w.u8(kSourceInline);
      encode_table(w, vt.source());
    }
    w.pod_array<storage::ColumnIndex>(vt.key_columns());
    w.u8(vt.one_to_one() ? 1 : 0);
    std::vector<RowIndex> reps;
    reps.reserve(vt.num_vertices());
    for (std::size_t v = 0; v < vt.num_vertices(); ++v) {
      reps.push_back(vt.representative_row(static_cast<VertexIndex>(v)));
    }
    w.pod_array<RowIndex>(reps);
    encode_bitset(w, vt.matching_rows());
  }

  // Built edge types, in id order, with both CSR directions.
  w.u32(static_cast<std::uint32_t>(ctx.graph.num_edge_types()));
  for (std::size_t i = 0; i < ctx.graph.num_edge_types(); ++i) {
    const EdgeType& et = ctx.graph.edge_type(static_cast<EdgeTypeId>(i));
    w.str(et.name());
    w.u16(et.source_type());
    w.u16(et.target_type());
    std::vector<VertexIndex> src, dst;
    src.reserve(et.num_edges());
    dst.reserve(et.num_edges());
    for (std::size_t e = 0; e < et.num_edges(); ++e) {
      src.push_back(et.source_vertex(static_cast<graph::EdgeIndex>(e)));
      dst.push_back(et.target_vertex(static_cast<graph::EdgeIndex>(e)));
    }
    w.pod_array<VertexIndex>(src);
    w.pod_array<VertexIndex>(dst);
    w.u8(et.attr_table() != nullptr ? 1 : 0);
    if (et.attr_table() != nullptr) encode_table(w, *et.attr_table());
    for (const graph::CsrIndex* csr : {&et.forward(), &et.reverse()}) {
      w.pod_array<std::uint32_t>(csr->raw_offsets());
      w.pod_array<VertexIndex>(csr->raw_neighbors());
      w.pod_array<graph::EdgeIndex>(csr->raw_edges());
    }
  }

  // Named subgraphs (std::map iteration: name order).
  w.u32(static_cast<std::uint32_t>(ctx.subgraphs.size()));
  for (const auto& [name, sub] : ctx.subgraphs) {
    w.str(name);
    std::uint32_t nv = 0, ne = 0;
    for (std::size_t t = 0; t < ctx.graph.num_vertex_types(); ++t) {
      if (sub->vertices(static_cast<VertexTypeId>(t)) != nullptr) ++nv;
    }
    for (std::size_t t = 0; t < ctx.graph.num_edge_types(); ++t) {
      if (sub->edges(static_cast<EdgeTypeId>(t)) != nullptr) ++ne;
    }
    w.u32(nv);
    for (std::size_t t = 0; t < ctx.graph.num_vertex_types(); ++t) {
      const DynamicBitset* bits = sub->vertices(static_cast<VertexTypeId>(t));
      if (bits == nullptr) continue;
      w.u16(static_cast<std::uint16_t>(t));
      encode_bitset(w, *bits);
    }
    w.u32(ne);
    for (std::size_t t = 0; t < ctx.graph.num_edge_types(); ++t) {
      const DynamicBitset* bits = sub->edges(static_cast<EdgeTypeId>(t));
      if (bits == nullptr) continue;
      w.u16(static_cast<std::uint16_t>(t));
      encode_bitset(w, *bits);
    }
  }
}

Status decode_body(Reader& r, exec::ExecContext& ctx,
                   SnapshotInfo& info) {
  GEMS_ASSIGN_OR_RETURN(info.wal_seq, r.u64());

  // Pool: re-intern in id order so ids referenced by column data and row
  // keys stay stable.
  GEMS_ASSIGN_OR_RETURN(std::uint64_t num_strings, r.u64());
  for (std::uint64_t i = 0; i < num_strings; ++i) {
    const std::size_t at = r.pos();
    GEMS_ASSIGN_OR_RETURN(std::string s, r.str());
    const StringId id = ctx.pool->intern(s);
    if (id != static_cast<StringId>(i)) {
      return r.corrupt("pool string " + std::to_string(i) +
                           " re-interned to id " + std::to_string(id) +
                           " (duplicate in pool section)",
                       at);
    }
  }

  GEMS_ASSIGN_OR_RETURN(std::uint32_t num_tables, r.u32());
  for (std::uint32_t i = 0; i < num_tables; ++i) {
    GEMS_ASSIGN_OR_RETURN(TablePtr table, decode_table(r, *ctx.pool));
    GEMS_RETURN_IF_ERROR(ctx.tables.add(std::move(table)));
  }

  GEMS_ASSIGN_OR_RETURN(std::uint32_t num_vdecls, r.u32());
  GEMS_ASSIGN_OR_RETURN(std::uint32_t num_edecls, r.u32());
  const std::size_t decls_at = r.pos();
  GEMS_ASSIGN_OR_RETURN(std::vector<std::uint8_t> script_bytes,
                        r.pod_array<std::uint8_t>("decl script"));
  auto script = graql::decode_script(script_bytes);
  if (!script.is_ok()) {
    return r.corrupt("decl script: " + script.status().message(), decls_at);
  }
  if (script->statements.size() !=
      static_cast<std::size_t>(num_vdecls) + num_edecls) {
    return r.corrupt("decl script statement count mismatch", decls_at);
  }
  for (std::size_t i = 0; i < script->statements.size(); ++i) {
    graql::Statement& stmt = script->statements[i];
    if (i < num_vdecls) {
      auto* s = std::get_if<graql::CreateVertexStmt>(&stmt);
      if (s == nullptr) {
        return r.corrupt("decl script: statement " + std::to_string(i) +
                             " is not a vertex declaration",
                         decls_at);
      }
      ctx.vertex_decls.push_back(std::move(s->decl));
    } else {
      auto* s = std::get_if<graql::CreateEdgeStmt>(&stmt);
      if (s == nullptr) {
        return r.corrupt("decl script: statement " + std::to_string(i) +
                             " is not an edge declaration",
                         decls_at);
      }
      ctx.edge_decls.push_back(std::move(s->decl));
    }
  }

  GEMS_ASSIGN_OR_RETURN(std::uint32_t num_vtypes, r.u32());
  if (num_vtypes >= graph::kInvalidVertexType) {
    return r.corrupt("implausible vertex type count " +
                         std::to_string(num_vtypes),
                     r.pos());
  }
  for (std::uint32_t i = 0; i < num_vtypes; ++i) {
    const std::size_t at = r.pos();
    GEMS_ASSIGN_OR_RETURN(std::string name, r.str());
    GEMS_ASSIGN_OR_RETURN(std::uint8_t mode, r.u8());
    TablePtr source;
    if (mode == kSourceByName) {
      GEMS_ASSIGN_OR_RETURN(std::string tname, r.str());
      auto found = ctx.tables.find(tname);
      if (!found.is_ok()) {
        return r.corrupt("vertex type '" + name +
                             "': source table '" + tname + "' not in snapshot",
                         at);
      }
      source = std::move(found).value();
    } else if (mode == kSourceInline) {
      GEMS_ASSIGN_OR_RETURN(source, decode_table(r, *ctx.pool));
    } else {
      return r.corrupt("vertex type '" + name + "': bad source mode " +
                           std::to_string(mode),
                       at);
    }
    GEMS_ASSIGN_OR_RETURN(std::vector<storage::ColumnIndex> key_cols,
                          r.pod_array<storage::ColumnIndex>("key columns"));
    GEMS_ASSIGN_OR_RETURN(std::uint8_t one_to_one, r.u8());
    if (one_to_one > 1) {
      return r.corrupt("vertex type '" + name + "': bad one_to_one flag", at);
    }
    GEMS_ASSIGN_OR_RETURN(std::vector<RowIndex> reps,
                          r.pod_array<RowIndex>("representative rows"));
    GEMS_ASSIGN_OR_RETURN(DynamicBitset matching,
                          decode_bitset(r, "matching rows"));
    auto vt = VertexType::restore(static_cast<VertexTypeId>(i),
                                  std::move(name), std::move(source),
                                  std::move(key_cols), one_to_one != 0,
                                  std::move(reps), std::move(matching));
    if (!vt.is_ok()) return r.corrupt(vt.status().message(), at);
    GEMS_RETURN_IF_ERROR(ctx.graph.add_vertex_type(std::move(vt).value()));
  }

  GEMS_ASSIGN_OR_RETURN(std::uint32_t num_etypes, r.u32());
  if (num_etypes >= graph::kInvalidEdgeType) {
    return r.corrupt("implausible edge type count " +
                         std::to_string(num_etypes),
                     r.pos());
  }
  for (std::uint32_t i = 0; i < num_etypes; ++i) {
    const std::size_t at = r.pos();
    GEMS_ASSIGN_OR_RETURN(std::string name, r.str());
    GEMS_ASSIGN_OR_RETURN(std::uint16_t src_type, r.u16());
    GEMS_ASSIGN_OR_RETURN(std::uint16_t dst_type, r.u16());
    if (src_type >= num_vtypes || dst_type >= num_vtypes) {
      return r.corrupt("edge type '" + name + "': endpoint type out of range",
                       at);
    }
    GEMS_ASSIGN_OR_RETURN(std::vector<VertexIndex> src,
                          r.pod_array<VertexIndex>("edge sources"));
    GEMS_ASSIGN_OR_RETURN(std::vector<VertexIndex> dst,
                          r.pod_array<VertexIndex>("edge targets"));
    GEMS_ASSIGN_OR_RETURN(std::uint8_t has_attrs, r.u8());
    TablePtr attr_table;
    if (has_attrs == 1) {
      GEMS_ASSIGN_OR_RETURN(attr_table, decode_table(r, *ctx.pool));
    } else if (has_attrs != 0) {
      return r.corrupt("edge type '" + name + "': bad attr-table flag", at);
    }
    graph::CsrIndex csrs[2];
    for (graph::CsrIndex& csr : csrs) {
      GEMS_ASSIGN_OR_RETURN(std::vector<std::uint32_t> offsets,
                            r.pod_array<std::uint32_t>("CSR offsets"));
      GEMS_ASSIGN_OR_RETURN(std::vector<VertexIndex> neighbor,
                            r.pod_array<VertexIndex>("CSR neighbors"));
      GEMS_ASSIGN_OR_RETURN(std::vector<graph::EdgeIndex> edge,
                            r.pod_array<graph::EdgeIndex>("CSR edges"));
      auto restored = graph::CsrIndex::restore(
          std::move(offsets), std::move(neighbor), std::move(edge));
      if (!restored.is_ok()) {
        return r.corrupt("edge type '" + name + "': " +
                             restored.status().message(),
                         at);
      }
      csr = std::move(restored).value();
    }
    // The CSR vertex counts must match the endpoint types they index.
    if (csrs[0].num_vertices() !=
            ctx.graph.vertex_type(src_type).num_vertices() ||
        csrs[1].num_vertices() !=
            ctx.graph.vertex_type(dst_type).num_vertices()) {
      return r.corrupt("edge type '" + name +
                           "': CSR vertex count != endpoint type size",
                       at);
    }
    auto et = EdgeType::restore(static_cast<EdgeTypeId>(i), std::move(name),
                                src_type, dst_type, std::move(src),
                                std::move(dst), std::move(attr_table),
                                std::move(csrs[0]), std::move(csrs[1]));
    if (!et.is_ok()) return r.corrupt(et.status().message(), at);
    GEMS_RETURN_IF_ERROR(ctx.graph.add_edge_type(std::move(et).value()));
  }

  GEMS_ASSIGN_OR_RETURN(std::uint32_t num_subgraphs, r.u32());
  for (std::uint32_t i = 0; i < num_subgraphs; ++i) {
    const std::size_t at = r.pos();
    GEMS_ASSIGN_OR_RETURN(std::string name, r.str());
    auto sub = std::make_shared<exec::Subgraph>(name);
    GEMS_ASSIGN_OR_RETURN(std::uint32_t nv, r.u32());
    for (std::uint32_t j = 0; j < nv; ++j) {
      GEMS_ASSIGN_OR_RETURN(std::uint16_t type, r.u16());
      GEMS_ASSIGN_OR_RETURN(DynamicBitset bits,
                            decode_bitset(r, "subgraph vertices"));
      if (type >= num_vtypes ||
          bits.size() !=
              ctx.graph.vertex_type(type).num_vertices()) {
        return r.corrupt("subgraph '" + name +
                             "': bad vertex membership entry",
                         at);
      }
      sub->vertices(type, bits.size()) = std::move(bits);
    }
    GEMS_ASSIGN_OR_RETURN(std::uint32_t ne, r.u32());
    for (std::uint32_t j = 0; j < ne; ++j) {
      GEMS_ASSIGN_OR_RETURN(std::uint16_t type, r.u16());
      GEMS_ASSIGN_OR_RETURN(DynamicBitset bits,
                            decode_bitset(r, "subgraph edges"));
      if (type >= num_etypes ||
          bits.size() != ctx.graph.edge_type(type).num_edges()) {
        return r.corrupt("subgraph '" + name +
                             "': bad edge membership entry",
                         at);
      }
      sub->edges(type, bits.size()) = std::move(bits);
    }
    ctx.subgraphs.emplace(std::move(name), std::move(sub));
  }

  if (!r.at_end()) {
    return r.corrupt(std::to_string(r.remaining()) +
                         " trailing bytes after snapshot body",
                     r.pos());
  }
  if (ctx.graph.num_vertex_types() > 0 || ctx.graph.num_edge_types() > 0) {
    ctx.graph_version = 1;
  }
  return Status::ok();
}

}  // namespace

std::vector<std::uint8_t> encode_snapshot(const exec::ExecContext& ctx,
                                          std::uint64_t wal_seq) {
  std::vector<std::uint8_t> body;
  encode_body(ctx, wal_seq, body);

  std::vector<std::uint8_t> out;
  out.reserve(kSnapshotHeaderBytes + body.size());
  Writer h(out);
  h.u32(kSnapshotMagic);
  h.u16(kSnapshotVersion);
  h.u16(0);  // reserved
  h.u64(body.size());
  h.u32(crc32(body));
  h.u32(crc32(out));  // header CRC over the 20 bytes written so far
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

Result<SnapshotInfo> decode_snapshot(std::span<const std::uint8_t> bytes,
                                     exec::ExecContext& ctx) {
  if (ctx.pool == nullptr) {
    return internal_error("decode_snapshot: context has no string pool");
  }
  if (ctx.pool->size() != 0 || ctx.tables.size() != 0) {
    return internal_error(
        "decode_snapshot: context must be fresh (non-empty pool or catalog)");
  }
  if (bytes.size() < kSnapshotHeaderBytes) {
    return io_error("snapshot truncated: " + std::to_string(bytes.size()) +
                    " bytes, header needs " +
                    std::to_string(kSnapshotHeaderBytes));
  }
  Reader h(bytes.subspan(0, kSnapshotHeaderBytes));
  GEMS_ASSIGN_OR_RETURN(std::uint32_t magic, h.u32());
  GEMS_ASSIGN_OR_RETURN(std::uint16_t version, h.u16());
  GEMS_ASSIGN_OR_RETURN(std::uint16_t reserved, h.u16());
  GEMS_ASSIGN_OR_RETURN(std::uint64_t body_len, h.u64());
  GEMS_ASSIGN_OR_RETURN(std::uint32_t body_crc, h.u32());
  GEMS_ASSIGN_OR_RETURN(std::uint32_t header_crc, h.u32());
  if (crc32(bytes.subspan(0, kSnapshotHeaderBytes - 4)) != header_crc) {
    return io_error("snapshot header CRC mismatch (corrupt header)");
  }
  if (magic != kSnapshotMagic) {
    return io_error("not a GEMS snapshot (bad magic)");
  }
  if (version != kSnapshotVersion) {
    return io_error("unsupported snapshot version " + std::to_string(version) +
                    " (this build reads version " +
                    std::to_string(kSnapshotVersion) + ")");
  }
  (void)reserved;
  if (body_len != bytes.size() - kSnapshotHeaderBytes) {
    return io_error("snapshot body length " + std::to_string(body_len) +
                    " != file body of " +
                    std::to_string(bytes.size() - kSnapshotHeaderBytes) +
                    " bytes (truncated or padded file)");
  }
  const auto body = bytes.subspan(kSnapshotHeaderBytes);
  if (crc32(body) != body_crc) {
    return io_error("snapshot body CRC mismatch (corrupt body)");
  }

  SnapshotInfo info;
  info.body_bytes = body.size();
  Reader r(body);
  GEMS_RETURN_IF_ERROR(decode_body(r, ctx, info));
  return info;
}

}  // namespace gems::store
